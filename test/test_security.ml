(* Security tests: obfuscation, encryption, watermarking, metering. *)

module Jar = Jhdl_bundle.Jar
module Partition = Jhdl_bundle.Partition
module Obfuscator = Jhdl_security.Obfuscator
module Crypto = Jhdl_security.Crypto
module Watermark = Jhdl_security.Watermark
module Metering = Jhdl_security.Metering
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Bits = Jhdl_logic.Bits
module Kcm = Jhdl_modgen.Kcm

(* {1 obfuscation} *)

let test_obfuscate_renames_all () =
  let jar = Partition.jar_of Partition.Viewer in
  let obfuscated, mapping = Obfuscator.obfuscate jar in
  Alcotest.(check int) "entry count preserved" (Jar.entry_count jar)
    (Jar.entry_count obfuscated);
  Alcotest.(check int) "mapping covers everything" (Jar.entry_count jar)
    (List.length mapping);
  Alcotest.(check bool) "no original names survive" true
    (List.for_all
       (fun c -> String.length c.Jhdl_bundle.Class_file.fqcn <= 6)
       obfuscated.Jar.entries)

let test_obfuscate_shrinks () =
  let jar = Partition.jar_of Partition.Base in
  let obfuscated, _ = Obfuscator.obfuscate jar in
  let shrinkage = Obfuscator.shrinkage ~original:jar ~obfuscated in
  Alcotest.(check bool)
    (Printf.sprintf "positive shrinkage (%.1f%%)" (shrinkage *. 100.0))
    true
    (shrinkage > 0.01 && shrinkage < 0.5)

let test_deobfuscate_name () =
  let jar = Partition.jar_of Partition.Applet in
  let _, mapping = Obfuscator.obfuscate jar in
  let original, obfuscated = List.hd mapping in
  Alcotest.(check (option string)) "reverse lookup" (Some original)
    (Obfuscator.deobfuscate_name mapping obfuscated);
  Alcotest.(check (option string)) "unknown" None
    (Obfuscator.deobfuscate_name mapping "o.zzz")

let test_obfuscated_names_unique () =
  let jar = Partition.jar_of Partition.Base in
  let obfuscated, _ = Obfuscator.obfuscate jar in
  let names =
    List.map (fun c -> c.Jhdl_bundle.Class_file.fqcn) obfuscated.Jar.entries
  in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* {1 crypto} *)

let test_encrypt_roundtrip () =
  let key = Crypto.key_of_string "vendor-secret" in
  let plaintext = "(edif kcm_top (edifVersion 2 0 0) ...)" in
  let ciphertext = Crypto.encrypt key plaintext in
  Alcotest.(check bool) "changed" true (ciphertext <> plaintext);
  Alcotest.(check string) "roundtrip" plaintext (Crypto.decrypt key ciphertext)

let test_wrong_key_fails () =
  let k1 = Crypto.key_of_string "alpha" in
  let k2 = Crypto.key_of_string "beta" in
  let plaintext = "protected intellectual property" in
  Alcotest.(check bool) "wrong key garbles" true
    (Crypto.decrypt k2 (Crypto.encrypt k1 plaintext) <> plaintext)

let test_checksum_stable () =
  Alcotest.(check string) "same input same digest" (Crypto.checksum "abc")
    (Crypto.checksum "abc");
  Alcotest.(check bool) "different input different digest" true
    (Crypto.checksum "abc" <> Crypto.checksum "abd")

let prop_encrypt_involutive =
  QCheck.Test.make ~name:"decrypt . encrypt = id" ~count:300
    QCheck.(pair (string_gen_of_size (QCheck.Gen.int_range 0 64) QCheck.Gen.char) string)
    (fun (secret, plaintext) ->
       let key = Crypto.key_of_string secret in
       Crypto.decrypt key (Crypto.encrypt key plaintext) = plaintext)

(* {1 watermark} *)

let kcm_design () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 12 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  d

let test_watermark_embed_verify () =
  let d = kcm_design () in
  Alcotest.(check bool) "absent before" true (Watermark.extract d = None);
  let luts = Watermark.embed d ~vendor:"BYU" () in
  Alcotest.(check int) "64 bits = 4 luts" 4 luts;
  Alcotest.(check bool) "verifies" true (Watermark.verify d ~vendor:"BYU");
  Alcotest.(check bool) "rejects impostor" false
    (Watermark.verify d ~vendor:"EvilCo")

let test_watermark_does_not_change_function () =
  let check d =
    let sim = Simulator.create d in
    Simulator.set_input sim "m" (Bits.of_int ~width:8 100);
    Simulator.get_port sim "p"
  in
  let clean = kcm_design () in
  let before = check clean in
  let marked = kcm_design () in
  let _ = Watermark.embed marked ~vendor:"BYU" () in
  Alcotest.(check bool) "same product" true (Bits.equal before (check marked))

let test_watermark_survives_netlisting () =
  (* the mark is in INITs, which every netlist carries *)
  let d = kcm_design () in
  let _ = Watermark.embed d ~vendor:"BYU" () in
  let edif = Jhdl_netlist.Edif.of_design d in
  let expected =
    Watermark.signature_bits ~vendor:"BYU" ~bits:16
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( + ) 0
  in
  let needle = Printf.sprintf "%04X" expected in
  let rec contains i =
    i + String.length needle <= String.length edif
    && (String.sub edif i (String.length needle) = needle || contains (i + 1))
  in
  Alcotest.(check bool) "first INIT word appears in EDIF" true (contains 0)

let test_watermark_sized () =
  Alcotest.(check int) "128 bits" 8 (Watermark.lut_overhead ~bits:128);
  Alcotest.(check int) "1 bit still costs a lut" 1 (Watermark.lut_overhead ~bits:1);
  let d = kcm_design () in
  let luts = Watermark.embed d ~vendor:"V" ~bits:128 () in
  Alcotest.(check int) "8 luts embedded" 8 luts;
  Alcotest.(check bool) "verifies at 128" true (Watermark.verify d ~vendor:"V")

(* {1 metering} *)

let test_metering_limits () =
  let meter = Metering.create ~limits:[ (Metering.Build, 2) ] in
  Alcotest.(check bool) "first build ok" true
    (Metering.record meter ~user:"u" Metering.Build = Ok (Some 1));
  Alcotest.(check bool) "second build ok" true
    (Metering.record meter ~user:"u" Metering.Build = Ok (Some 0));
  Alcotest.(check bool) "third refused" true
    (Metering.record meter ~user:"u" Metering.Build = Error 2);
  Alcotest.(check int) "usage stuck at cap" 2 (Metering.used meter ~user:"u" Metering.Build)

let test_metering_unlimited () =
  let meter = Metering.create ~limits:[] in
  for _ = 1 to 100 do
    match Metering.record meter ~user:"u" Metering.Simulate with
    | Ok None -> ()
    | Ok (Some _) | Error _ -> Alcotest.fail "expected unlimited"
  done;
  Alcotest.(check int) "counted anyway" 100
    (Metering.used meter ~user:"u" Metering.Simulate)

let test_metering_per_user () =
  let meter = Metering.create ~limits:[ (Metering.Download, 1) ] in
  Alcotest.(check bool) "alice ok" true
    (Result.is_ok (Metering.record meter ~user:"alice" Metering.Download));
  Alcotest.(check bool) "bob unaffected" true
    (Result.is_ok (Metering.record meter ~user:"bob" Metering.Download));
  Alcotest.(check bool) "alice capped" true
    (Result.is_error (Metering.record meter ~user:"alice" Metering.Download))

let test_metering_report () =
  let meter = Metering.create ~limits:[ (Metering.Build, 5) ] in
  let _ = Metering.record meter ~user:"alice" Metering.Build in
  let report = Metering.report meter in
  Alcotest.(check bool) "mentions alice" true
    (let rec contains i =
       i + 5 <= String.length report
       && (String.sub report i 5 = "alice" || contains (i + 1))
     in
     contains 0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_metering_denials_tracked () =
  (* refused over-limit uses used to vanish without a trace — they must
     be tallied per user/action and surfaced in the report *)
  let meter = Metering.create ~limits:[ (Metering.Netlist_export, 1) ] in
  let registry = Jhdl_metrics.Metrics.create "security" in
  Metering.register_metrics meter registry;
  let _ = Metering.record meter ~user:"eve" Metering.Netlist_export in
  for _ = 1 to 3 do
    match Metering.record meter ~user:"eve" Metering.Netlist_export with
    | Error 1 -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected a denial at the cap"
  done;
  Alcotest.(check int) "denials counted" 3
    (Metering.denied meter ~user:"eve" Metering.Netlist_export);
  Alcotest.(check int) "usage unchanged by denials" 1
    (Metering.used meter ~user:"eve" Metering.Netlist_export);
  Alcotest.(check int) "no denials elsewhere" 0
    (Metering.denied meter ~user:"eve" Metering.Build);
  Alcotest.(check bool) "report shows the denial count" true
    (contains ~needle:"1/1 (3 denied)" (Metering.report meter));
  match Jhdl_metrics.Metrics.snapshot registry with
  | [ ("metering_denials_total", Jhdl_metrics.Metrics.Counter_sample 3) ] -> ()
  | _ -> Alcotest.fail "expected metering_denials_total = 3"

let test_metering_denied_only_user_in_report () =
  (* a licensee stuck at a zero-use cap never records a use, but the
     vendor still needs the line *)
  let meter = Metering.create ~limits:[ (Metering.Download, 0) ] in
  (match Metering.record meter ~user:"mallory" Metering.Download with
   | Error 0 -> ()
   | Ok _ | Error _ -> Alcotest.fail "zero cap should deny immediately");
  Alcotest.(check bool) "denied-only user appears" true
    (contains ~needle:"mallory" (Metering.report meter));
  Alcotest.(check bool) "with a denial marker" true
    (contains ~needle:"(1 denied)" (Metering.report meter))

let prop_watermark_vendor_specific =
  QCheck.Test.make ~name:"watermark verifies only its own vendor" ~count:40
    QCheck.(pair (string_gen_of_size (QCheck.Gen.int_range 1 20) QCheck.Gen.printable)
              (string_gen_of_size (QCheck.Gen.int_range 1 20) QCheck.Gen.printable))
    (fun (vendor, impostor) ->
       QCheck.assume (vendor <> impostor);
       let top = Cell.root ~name:"top" () in
       let a = Wire.create top ~name:"a" 1 in
       let o = Wire.create top ~name:"o" 1 in
       let _ = Jhdl_virtex.Virtex.inv top a o in
       let d = Design.create top in
       Design.add_port d "a" Types.Input a;
       Design.add_port d "o" Types.Output o;
       let _ = Watermark.embed d ~vendor () in
       Watermark.verify d ~vendor
       && ((not (Watermark.verify d ~vendor:impostor))
           || Watermark.signature_bits ~vendor ~bits:64
              = Watermark.signature_bits ~vendor:impostor ~bits:64))

let suite =
  [ Alcotest.test_case "obfuscate renames all" `Quick test_obfuscate_renames_all;
    Alcotest.test_case "obfuscate shrinks" `Quick test_obfuscate_shrinks;
    Alcotest.test_case "deobfuscate name" `Quick test_deobfuscate_name;
    Alcotest.test_case "obfuscated names unique" `Quick
      test_obfuscated_names_unique;
    Alcotest.test_case "encrypt roundtrip" `Quick test_encrypt_roundtrip;
    Alcotest.test_case "wrong key fails" `Quick test_wrong_key_fails;
    Alcotest.test_case "checksum stable" `Quick test_checksum_stable;
    Alcotest.test_case "watermark embed/verify" `Quick test_watermark_embed_verify;
    Alcotest.test_case "watermark preserves function" `Quick
      test_watermark_does_not_change_function;
    Alcotest.test_case "watermark survives netlisting" `Quick
      test_watermark_survives_netlisting;
    Alcotest.test_case "watermark sizes" `Quick test_watermark_sized;
    Alcotest.test_case "metering limits" `Quick test_metering_limits;
    Alcotest.test_case "metering unlimited" `Quick test_metering_unlimited;
    Alcotest.test_case "metering per user" `Quick test_metering_per_user;
    Alcotest.test_case "metering report" `Quick test_metering_report;
    Alcotest.test_case "metering denials tracked" `Quick
      test_metering_denials_tracked;
    Alcotest.test_case "denied-only user reported" `Quick
      test_metering_denied_only_user_in_report ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_encrypt_involutive; prop_watermark_vendor_specific ]
