(* Module-generator tests: every generator simulated against a reference
   model. The KCM — the paper's running example — is tested exhaustively
   on small widths and by property on larger ones. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator
module Kcm = Jhdl_modgen.Kcm
module Fir = Jhdl_modgen.Fir
module Adders = Jhdl_modgen.Adders
module Counter = Jhdl_modgen.Counter
module Datapath = Jhdl_modgen.Datapath
module Multiplier = Jhdl_modgen.Multiplier
module Wallace = Jhdl_modgen.Wallace
module Divider = Jhdl_modgen.Divider
module Util = Jhdl_modgen.Util
module Estimate = Jhdl_estimate.Estimate

let bits = Alcotest.testable Bits.pp Bits.equal

(* {1 harness builders} *)

let two_in_one_out ~wa ~wb ~wout build =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" wa in
  let b = Wire.create top ~name:"b" wb in
  let out = Wire.create top ~name:"out" wout in
  build top ~a ~b ~out;
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "out" Types.Output out;
  Simulator.create d

(* {1 adders} *)

let test_carry_chain_adder () =
  let sim =
    two_in_one_out ~wa:8 ~wb:8 ~wout:8 (fun top ~a ~b ~out ->
      ignore (Adders.carry_chain top ~a ~b ~sum:out ()))
  in
  List.iter
    (fun (x, y) ->
       Simulator.set_input sim "a" (Bits.of_int ~width:8 x);
       Simulator.set_input sim "b" (Bits.of_int ~width:8 y);
       Alcotest.check bits
         (Printf.sprintf "%d+%d" x y)
         (Bits.of_int ~width:8 (x + y))
         (Simulator.get_port sim "out"))
    [ (0, 0); (1, 1); (200, 100); (255, 255); (127, 1); (85, 170) ]

let test_carry_chain_cin_cout () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let b = Wire.create top ~name:"b" 4 in
  let sum = Wire.create top ~name:"sum" 4 in
  let cin = Wire.create top ~name:"cin" 1 in
  let cout = Wire.create top ~name:"cout" 1 in
  let _ = Adders.carry_chain top ~a ~b ~sum ~cin ~cout () in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "cin" Types.Input cin;
  Design.add_port d "sum" Types.Output sum;
  Design.add_port d "cout" Types.Output cout;
  let sim = Simulator.create d in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 15);
  Simulator.set_input sim "b" (Bits.of_int ~width:4 0);
  Simulator.set_input sim "cin" (Bits.of_int ~width:1 1);
  Alcotest.check bits "15+0+1 wraps" (Bits.of_int ~width:4 0)
    (Simulator.get_port sim "sum");
  Alcotest.check bits "carry out" (Bits.of_int ~width:1 1)
    (Simulator.get_port sim "cout")

let test_ripple_equals_carry_chain () =
  let mk build = two_in_one_out ~wa:6 ~wb:6 ~wout:6 build in
  let rc =
    mk (fun top ~a ~b ~out -> ignore (Adders.ripple_carry top ~a ~b ~sum:out ()))
  in
  let cc =
    mk (fun top ~a ~b ~out -> ignore (Adders.carry_chain top ~a ~b ~sum:out ()))
  in
  for x = 0 to 63 do
    let y = (x * 37 + 11) land 63 in
    List.iter
      (fun sim ->
         Simulator.set_input sim "a" (Bits.of_int ~width:6 x);
         Simulator.set_input sim "b" (Bits.of_int ~width:6 y))
      [ rc; cc ];
    Alcotest.check bits
      (Printf.sprintf "agree on %d+%d" x y)
      (Simulator.get_port rc "out")
      (Simulator.get_port cc "out")
  done

let test_subtractor () =
  let sim =
    two_in_one_out ~wa:8 ~wb:8 ~wout:8 (fun top ~a ~b ~out ->
      ignore (Adders.subtractor top ~a ~b ~diff:out ()))
  in
  List.iter
    (fun (x, y) ->
       Simulator.set_input sim "a" (Bits.of_int ~width:8 x);
       Simulator.set_input sim "b" (Bits.of_int ~width:8 y);
       Alcotest.check bits
         (Printf.sprintf "%d-%d" x y)
         (Bits.of_int ~width:8 (x - y))
         (Simulator.get_port sim "out"))
    [ (10, 3); (3, 10); (255, 255); (0, 1); (128, 64) ]

let test_add_sub () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 8 in
  let b = Wire.create top ~name:"b" 8 in
  let result = Wire.create top ~name:"r" 8 in
  let sub = Wire.create top ~name:"sub" 1 in
  let _ = Adders.add_sub top ~sub ~a ~b ~result () in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "sub" Types.Input sub;
  Design.add_port d "r" Types.Output result;
  let sim = Simulator.create d in
  Simulator.set_input sim "a" (Bits.of_int ~width:8 100);
  Simulator.set_input sim "b" (Bits.of_int ~width:8 42);
  Simulator.set_input sim "sub" (Bits.of_int ~width:1 0);
  Alcotest.check bits "add mode" (Bits.of_int ~width:8 142)
    (Simulator.get_port sim "r");
  Simulator.set_input sim "sub" (Bits.of_int ~width:1 1);
  Alcotest.check bits "sub mode" (Bits.of_int ~width:8 58)
    (Simulator.get_port sim "r")

let test_accumulator () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 8 in
  let acc = Wire.create top ~name:"acc" 8 in
  let _ = Adders.accumulator top ~clk ~x ~acc () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "acc" Types.Output acc;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "x" (Bits.of_int ~width:8 7);
  Simulator.cycle ~n:4 sim;
  Alcotest.check bits "4 x 7" (Bits.of_int ~width:8 28)
    (Simulator.get_port sim "acc")

(* {1 KCM} *)

let kcm_sim ~n ~pw ~signed_mode ~pipelined_mode ~constant =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" n in
  let p = Wire.create top ~name:"p" pw in
  let kcm =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode ~pipelined_mode
      ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  (Simulator.create ~clock:clk d, kcm)

let check_kcm ~n ~pw ~signed_mode ~constant () =
  let sim, kcm = kcm_sim ~n ~pw ~signed_mode ~pipelined_mode:false ~constant in
  for x = 0 to (1 lsl n) - 1 do
    let xb = Bits.of_int ~width:n x in
    Simulator.set_input sim "m" xb;
    let expected =
      Kcm.expected_product ~signed_mode ~constant
        ~full_width:kcm.Kcm.full_width ~product_width:pw xb
    in
    Alcotest.check bits
      (Printf.sprintf "K=%d x=%d (signed=%b)" constant x signed_mode)
      expected (Simulator.get_port sim "p")
  done

let test_kcm_unsigned_exhaustive () =
  List.iter
    (fun constant ->
       check_kcm ~n:6 ~pw:13 ~signed_mode:false ~constant ())
    [ 0; 1; 3; 7; 13; 56; 100; 127 ]

let test_kcm_signed_exhaustive () =
  List.iter
    (fun constant -> check_kcm ~n:6 ~pw:14 ~signed_mode:true ~constant ())
    [ -56; -1; -128; 0; 5; 127; -100 ]

let test_kcm_paper_example () =
  (* 8-bit multiplicand, constant -56, 12-bit product: the paper's code
     fragment from Section 3.1 *)
  let sim, kcm =
    kcm_sim ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false ~constant:(-56)
  in
  Alcotest.(check int) "two digit tables" 2 kcm.Kcm.table_count;
  List.iter
    (fun x ->
       let xb = Bits.of_int ~width:8 x in
       Simulator.set_input sim "m" xb;
       let expected =
         Kcm.expected_product ~signed_mode:true ~constant:(-56)
           ~full_width:kcm.Kcm.full_width ~product_width:12 xb
       in
       Alcotest.check bits (Printf.sprintf "-56 * %d" x) expected
         (Simulator.get_port sim "p"))
    [ 0; 1; -1; 127; -128; 42; -42; 100; -100 ]

let test_kcm_wide_product_extension () =
  (* product wider than the full product: sign extension *)
  let sim, kcm =
    kcm_sim ~n:4 ~pw:16 ~signed_mode:true ~pipelined_mode:false ~constant:(-3)
  in
  Alcotest.(check bool) "wider than full" true (kcm.Kcm.full_width < 16);
  List.iter
    (fun x ->
       let xb = Bits.of_int ~width:4 x in
       Simulator.set_input sim "m" xb;
       Alcotest.check bits
         (Printf.sprintf "-3 * %d extended" x)
         (Kcm.expected_product ~signed_mode:true ~constant:(-3)
            ~full_width:kcm.Kcm.full_width ~product_width:16 xb)
         (Simulator.get_port sim "p"))
    [ 0; 7; -8; 3; -3 ]

let test_kcm_pipelined_latency () =
  let sim, kcm =
    kcm_sim ~n:12 ~pw:20 ~signed_mode:false ~pipelined_mode:true ~constant:201
  in
  Alcotest.(check int) "3 tables" 3 kcm.Kcm.table_count;
  Alcotest.(check int) "latency = adder stages" 2 kcm.Kcm.latency;
  let x = 3000 in
  Simulator.set_input sim "m" (Bits.of_int ~width:12 x);
  Simulator.cycle ~n:kcm.Kcm.latency sim;
  Alcotest.check bits "pipelined result"
    (Kcm.expected_product ~signed_mode:false ~constant:201
       ~full_width:kcm.Kcm.full_width ~product_width:20
       (Bits.of_int ~width:12 x))
    (Simulator.get_port sim "p")

let test_kcm_pipelined_throughput () =
  (* one new sample per cycle; outputs follow with [latency] lag *)
  let constant = 77 in
  let sim, kcm =
    kcm_sim ~n:8 ~pw:15 ~signed_mode:false ~pipelined_mode:true ~constant
  in
  let samples = [ 4; 255; 0; 19; 200; 1; 77; 128 ] in
  let outputs = ref [] in
  List.iteri
    (fun i x ->
       Simulator.set_input sim "m" (Bits.of_int ~width:8 x);
       Simulator.cycle sim;
       if i >= kcm.Kcm.latency - 1 then
         outputs := Simulator.get_port sim "p" :: !outputs)
    samples;
  let outputs = List.rev !outputs in
  List.iteri
    (fun i x ->
       match List.nth_opt outputs i with
       | None -> ()
       | Some got ->
         Alcotest.check bits
           (Printf.sprintf "pipe sample %d" i)
           (Kcm.expected_product ~signed_mode:false ~constant
              ~full_width:kcm.Kcm.full_width ~product_width:15
              (Bits.of_int ~width:8 x))
           got)
    samples

let test_kcm_single_digit_pipelined () =
  let sim, kcm =
    kcm_sim ~n:4 ~pw:8 ~signed_mode:false ~pipelined_mode:true ~constant:9
  in
  Alcotest.(check int) "one table" 1 kcm.Kcm.table_count;
  Alcotest.(check int) "latency 1" 1 kcm.Kcm.latency;
  Simulator.set_input sim "m" (Bits.of_int ~width:4 11);
  Simulator.cycle sim;
  Alcotest.check bits "9*11 top 8 of full"
    (Kcm.expected_product ~signed_mode:false ~constant:9
       ~full_width:kcm.Kcm.full_width ~product_width:8 (Bits.of_int ~width:4 11))
    (Simulator.get_port sim "p")

let test_kcm_rejects_bad_args () =
  let top = Cell.root ~name:"top" () in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 12 in
  Alcotest.(check bool) "negative constant unsigned" true
    (try
       ignore
         (Kcm.create top ~multiplicand:m ~product:p ~signed_mode:false
            ~pipelined_mode:false ~constant:(-5) ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pipelined without clock" true
    (try
       ignore
         (Kcm.create top ~multiplicand:m ~product:p ~signed_mode:true
            ~pipelined_mode:true ~constant:5 ());
       false
     with Invalid_argument _ -> true)

let prop_kcm_tree_random =
  QCheck.Test.make ~name:"kcm tree matches reference on random parameters"
    ~count:40
    QCheck.(triple (int_range 2 12) (int_range (-200) 200) (int_bound 4095))
    (fun (n, constant, x_seed) ->
       let signed_mode = constant < 0 || x_seed land 1 = 1 in
       let pw = n + 4 in
       let top = Cell.root ~name:"top" () in
       let m = Wire.create top ~name:"m" n in
       let p = Wire.create top ~name:"p" pw in
       let kcm =
         Kcm.create top ~adder_structure:`Tree ~multiplicand:m ~product:p
           ~signed_mode ~pipelined_mode:false ~constant ()
       in
       let d = Design.create top in
       Design.add_port d "m" Types.Input m;
       Design.add_port d "p" Types.Output p;
       let sim = Simulator.create d in
       let x = x_seed land ((1 lsl n) - 1) in
       let xb = Bits.of_int ~width:n x in
       Simulator.set_input sim "m" xb;
       Bits.equal
         (Kcm.expected_product ~signed_mode ~constant
            ~full_width:kcm.Kcm.full_width ~product_width:pw xb)
         (Simulator.get_port sim "p"))

let prop_kcm_random =
  QCheck.Test.make ~name:"kcm matches reference on random parameters" ~count:60
    QCheck.(
      triple (int_range 2 10) (int_range (-200) 200) (int_bound 1023))
    (fun (n, constant, x_seed) ->
       let signed_mode = constant < 0 || x_seed land 1 = 1 in
       let pw = n + 4 in
       let sim, kcm =
         kcm_sim ~n ~pw ~signed_mode ~pipelined_mode:false ~constant
       in
       let x = x_seed land ((1 lsl n) - 1) in
       let xb = Bits.of_int ~width:n x in
       Simulator.set_input sim "m" xb;
       Bits.equal
         (Kcm.expected_product ~signed_mode ~constant
            ~full_width:kcm.Kcm.full_width ~product_width:pw xb)
         (Simulator.get_port sim "p"))

let test_kcm_tree_structure () =
  (* tree accumulation must agree with the chain on every input *)
  List.iter
    (fun (n, constant, signed_mode) ->
       let pw = n + 8 in
       let make structure =
         let top = Cell.root ~name:"top" () in
         let m = Wire.create top ~name:"m" n in
         let p = Wire.create top ~name:"p" pw in
         let kcm =
           Kcm.create top ~adder_structure:structure ~multiplicand:m
             ~product:p ~signed_mode ~pipelined_mode:false ~constant ()
         in
         let d = Design.create top in
         Design.add_port d "m" Types.Input m;
         Design.add_port d "p" Types.Output p;
         (Simulator.create d, kcm)
       in
       let chain_sim, _ = make `Chain in
       let tree_sim, kcm = make `Tree in
       for x = 0 to min 255 ((1 lsl n) - 1) do
         let xb = Bits.of_int ~width:n x in
         Simulator.set_input chain_sim "m" xb;
         Simulator.set_input tree_sim "m" xb;
         let expected =
           Kcm.expected_product ~signed_mode ~constant
             ~full_width:kcm.Kcm.full_width ~product_width:pw xb
         in
         Alcotest.check bits
           (Printf.sprintf "tree K=%d x=%d" constant x)
           expected
           (Simulator.get_port tree_sim "p");
         Alcotest.check bits
           (Printf.sprintf "chain agrees K=%d x=%d" constant x)
           (Simulator.get_port chain_sim "p")
           (Simulator.get_port tree_sim "p")
       done)
    [ (8, -56, true); (12, 201, false); (16, 0xAB, false); (6, -1, true) ]

let test_kcm_tree_fewer_levels () =
  (* carry chains are cheap, so the tree only wins once the chain is
     long: at 8 digits (32 bits) it does, at 4 it is a wash *)
  let timing ~n structure =
    let top = Cell.root ~name:"top" () in
    let m = Wire.create top ~name:"m" n in
    let p = Wire.create top ~name:"p" (n + 8) in
    let _ =
      Kcm.create top ~adder_structure:structure ~multiplicand:m ~product:p
        ~signed_mode:false ~pipelined_mode:false ~constant:0xAB ()
    in
    let d = Design.create top in
    Design.add_port d "m" Types.Input m;
    Design.add_port d "p" Types.Output p;
    (Estimate.timing_of_design d).Estimate.critical_path_ps
  in
  Alcotest.(check bool) "tree is faster at 8 digits" true
    (timing ~n:32 `Tree < timing ~n:32 `Chain);
  Alcotest.(check bool) "near-wash at 4 digits (within 5%)" true
    (let t = timing ~n:16 `Tree and c = timing ~n:16 `Chain in
     abs (t - c) * 20 < max t c)

let test_kcm_tree_rejects_pipelining () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 12 in
  Alcotest.(check bool) "pipelined tree refused" true
    (try
       ignore
         (Kcm.create top ~clk ~adder_structure:`Tree ~multiplicand:m
            ~product:p ~signed_mode:true ~pipelined_mode:true ~constant:5 ());
       false
     with Invalid_argument _ -> true)

(* {1 baseline multipliers} *)

let test_shift_add_constant () =
  List.iter
    (fun constant ->
       let top = Cell.root ~name:"top" () in
       let m = Wire.create top ~name:"m" 6 in
       let p = Wire.create top ~name:"p" 13 in
       let mult =
         Multiplier.shift_add_constant top ~multiplicand:m ~product:p ~constant
           ()
       in
       let d = Design.create top in
       Design.add_port d "m" Types.Input m;
       Design.add_port d "p" Types.Output p;
       let sim = Simulator.create d in
       for x = 0 to 63 do
         let xb = Bits.of_int ~width:6 x in
         Simulator.set_input sim "m" xb;
         Alcotest.check bits
           (Printf.sprintf "shiftadd K=%d x=%d" constant x)
           (Kcm.expected_product ~signed_mode:false ~constant
              ~full_width:mult.Multiplier.full_width ~product_width:13 xb)
           (Simulator.get_port sim "p")
       done)
    [ 0; 1; 3; 85; 127; 64 ]

let test_adder_count_for () =
  Alcotest.(check int) "K=1 no adders" 0 (Multiplier.adder_count_for ~constant:1);
  Alcotest.(check int) "K=85 (1010101)" 3 (Multiplier.adder_count_for ~constant:85);
  (* 255 = 100000001(CSD) - one subtraction *)
  Alcotest.(check int) "K=255 csd" 1 (Multiplier.adder_count_for ~constant:255)

let test_array_mult () =
  let sim =
    two_in_one_out ~wa:5 ~wb:4 ~wout:9 (fun top ~a ~b ~out ->
      ignore (Multiplier.array_mult top ~a ~b ~product:out ()))
  in
  for x = 0 to 31 do
    for y = 0 to 15 do
      Simulator.set_input sim "a" (Bits.of_int ~width:5 x);
      Simulator.set_input sim "b" (Bits.of_int ~width:4 y);
      Alcotest.check bits
        (Printf.sprintf "%d*%d" x y)
        (Bits.of_int ~width:9 (x * y))
        (Simulator.get_port sim "out")
    done
  done

let test_wallace_exhaustive () =
  let sim =
    two_in_one_out ~wa:5 ~wb:4 ~wout:9 (fun top ~a ~b ~out ->
      ignore (Wallace.create top ~a ~b ~product:out ()))
  in
  for x = 0 to 31 do
    for y = 0 to 15 do
      Simulator.set_input sim "a" (Bits.of_int ~width:5 x);
      Simulator.set_input sim "b" (Bits.of_int ~width:4 y);
      Alcotest.check bits
        (Printf.sprintf "%d*%d" x y)
        (Wallace.expected_product ~a_width:5 ~b_width:4 ~product_width:9 x y)
        (Simulator.get_port sim "out")
    done
  done

let test_wallace_truncated_and_counts () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 6 in
  let b = Wire.create top ~name:"b" 6 in
  let out = Wire.create top ~name:"out" 8 in
  let w = Wallace.create top ~a ~b ~product:out () in
  Alcotest.(check int) "full width" 12 w.Wallace.full_width;
  Alcotest.(check bool) "tree is staged" true (w.Wallace.stages >= 2);
  Alcotest.(check bool) "uses full adders" true (w.Wallace.full_adders > 0);
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "out" Types.Output out;
  let sim = Simulator.create d in
  List.iter
    (fun (x, y) ->
       Simulator.set_input sim "a" (Bits.of_int ~width:6 x);
       Simulator.set_input sim "b" (Bits.of_int ~width:6 y);
       Alcotest.check bits
         (Printf.sprintf "%d*%d (truncated)" x y)
         (Wallace.expected_product ~a_width:6 ~b_width:6 ~product_width:8 x y)
         (Simulator.get_port sim "out"))
    [ (0, 0); (63, 63); (17, 42); (31, 2); (55, 9); (1, 1) ]

let divider_sim ~n ~m ~pipelined =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let dividend = Wire.create top ~name:"dividend" n in
  let divisor = Wire.create top ~name:"divisor" m in
  let quotient = Wire.create top ~name:"quotient" n in
  let remainder = Wire.create top ~name:"remainder" m in
  let div =
    Divider.create top ~clk ~dividend ~divisor ~quotient ~remainder
      ~pipelined ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "dividend" Types.Input dividend;
  Design.add_port d "divisor" Types.Input divisor;
  Design.add_port d "quotient" Types.Output quotient;
  Design.add_port d "remainder" Types.Output remainder;
  (Simulator.create ~clock:clk d, div)

let test_divider_exhaustive () =
  let n = 5 and m = 3 in
  let sim, div = divider_sim ~n ~m ~pipelined:false in
  Alcotest.(check int) "combinational" 0 div.Divider.latency;
  for x = 0 to (1 lsl n) - 1 do
    for y = 0 to (1 lsl m) - 1 do
      Simulator.set_input sim "dividend" (Bits.of_int ~width:n x);
      Simulator.set_input sim "divisor" (Bits.of_int ~width:m y);
      let q, r = Divider.reference ~dividend_width:n ~divisor_width:m x y in
      Alcotest.check bits
        (Printf.sprintf "%d/%d quotient" x y)
        (Bits.of_int ~width:n q)
        (Simulator.get_port sim "quotient");
      Alcotest.check bits
        (Printf.sprintf "%d mod %d" x y)
        (Bits.of_int ~width:m r)
        (Simulator.get_port sim "remainder")
    done
  done

let test_divider_pipelined_throughput () =
  let n = 6 and m = 4 in
  let sim, div = divider_sim ~n ~m ~pipelined:true in
  Alcotest.(check int) "latency = dividend width" n div.Divider.latency;
  (* one new division issued per cycle, answers emerge latency later *)
  let jobs = [ (63, 7); (40, 5); (9, 15); (1, 1); (62, 3); (0, 9) ] in
  let fill = List.init div.Divider.latency (fun _ -> (0, 1)) in
  let issued = jobs @ fill in
  let answered = ref [] in
  List.iteri
    (fun i (x, y) ->
       Simulator.set_input sim "dividend" (Bits.of_int ~width:n x);
       Simulator.set_input sim "divisor" (Bits.of_int ~width:m y);
       Simulator.cycle sim;
       if i >= div.Divider.latency - 1 then
         answered :=
           (Simulator.get_port sim "quotient",
            Simulator.get_port sim "remainder")
           :: !answered)
    issued;
  let answered = List.rev !answered in
  List.iteri
    (fun i (x, y) ->
       let q, r = Divider.reference ~dividend_width:n ~divisor_width:m x y in
       let got_q, got_r = List.nth answered i in
       Alcotest.check bits (Printf.sprintf "piped %d/%d q" x y)
         (Bits.of_int ~width:n q) got_q;
       Alcotest.check bits (Printf.sprintf "piped %d/%d r" x y)
         (Bits.of_int ~width:m r) got_r)
    jobs

let test_divider_rejects_bad_args () =
  let top = Cell.root ~name:"top" () in
  let dividend = Wire.create top ~name:"dividend" 4 in
  let divisor = Wire.create top ~name:"divisor" 3 in
  let quotient = Wire.create top ~name:"quotient" 3 in
  let remainder = Wire.create top ~name:"remainder" 3 in
  Alcotest.check_raises "quotient width"
    (Invalid_argument "Divider.create: quotient width must match dividend")
    (fun () ->
       ignore
         (Divider.create top ~dividend ~divisor ~quotient ~remainder
            ~pipelined:false ()));
  let quotient = Wire.create top ~name:"quotient4" 4 in
  Alcotest.check_raises "pipelined needs clock"
    (Invalid_argument "Divider.create: pipelined mode requires a clock")
    (fun () ->
       ignore
         (Divider.create top ~dividend ~divisor ~quotient ~remainder
            ~pipelined:true ()))

let test_signed_mult () =
  let sim =
    two_in_one_out ~wa:5 ~wb:4 ~wout:9 (fun top ~a ~b ~out ->
      ignore (Multiplier.signed_mult top ~a ~b ~product:out ()))
  in
  for x = -16 to 15 do
    for y = -8 to 7 do
      Simulator.set_input sim "a" (Bits.of_int ~width:5 x);
      Simulator.set_input sim "b" (Bits.of_int ~width:4 y);
      Alcotest.(check (option int))
        (Printf.sprintf "%d*%d" x y)
        (Some (x * y))
        (Bits.to_signed_int (Simulator.get_port sim "out"))
    done
  done

let test_signed_mult_truncated () =
  (* narrower product keeps the low bits (mod 2^pw) *)
  let sim =
    two_in_one_out ~wa:4 ~wb:4 ~wout:5 (fun top ~a ~b ~out ->
      ignore (Multiplier.signed_mult top ~a ~b ~product:out ()))
  in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 (-7));
  Simulator.set_input sim "b" (Bits.of_int ~width:4 5);
  (* -35 mod 32 = -3 in 5-bit two's complement *)
  Alcotest.(check (option int)) "low bits of -35" (Some (-3))
    (Bits.to_signed_int (Simulator.get_port sim "out"))

(* {1 counters, comparators} *)

let test_up_counter () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  Alcotest.check bits "starts at 0" (Bits.of_int ~width:4 0)
    (Simulator.get_port sim "q");
  Simulator.cycle ~n:5 sim;
  Alcotest.check bits "counts to 5" (Bits.of_int ~width:4 5)
    (Simulator.get_port sim "q");
  Simulator.cycle ~n:11 sim;
  Alcotest.check bits "wraps" (Bits.of_int ~width:4 0)
    (Simulator.get_port sim "q")

let test_up_counter_ce_sclr () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let ce = Wire.create top ~name:"ce" 1 in
  let sclr = Wire.create top ~name:"sclr" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Counter.up_counter top ~clk ~ce ~sclr ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "ce" Types.Input ce;
  Design.add_port d "sclr" Types.Input sclr;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "ce" (Bits.of_int ~width:1 1);
  Simulator.set_input sim "sclr" (Bits.of_int ~width:1 0);
  Simulator.cycle ~n:3 sim;
  Alcotest.check bits "counted 3" (Bits.of_int ~width:4 3)
    (Simulator.get_port sim "q");
  Simulator.set_input sim "ce" (Bits.of_int ~width:1 0);
  Simulator.cycle ~n:2 sim;
  Alcotest.check bits "held" (Bits.of_int ~width:4 3) (Simulator.get_port sim "q");
  Simulator.set_input sim "ce" (Bits.of_int ~width:1 1);
  Simulator.set_input sim "sclr" (Bits.of_int ~width:1 1);
  Simulator.cycle sim;
  Alcotest.check bits "cleared" (Bits.of_int ~width:4 0)
    (Simulator.get_port sim "q")

let test_equal_const () =
  let top = Cell.root ~name:"top" () in
  let x = Wire.create top ~name:"x" 9 in
  let eq = Wire.create top ~name:"eq" 1 in
  let _ = Counter.equal_const top ~x ~value:261 ~eq () in
  let d = Design.create top in
  Design.add_port d "x" Types.Input x;
  Design.add_port d "eq" Types.Output eq;
  let sim = Simulator.create d in
  Simulator.set_input sim "x" (Bits.of_int ~width:9 261);
  Alcotest.check bits "match" (Bits.of_int ~width:1 1) (Simulator.get_port sim "eq");
  List.iter
    (fun v ->
       Simulator.set_input sim "x" (Bits.of_int ~width:9 v);
       Alcotest.check bits
         (Printf.sprintf "no match %d" v)
         (Bits.of_int ~width:1 0)
         (Simulator.get_port sim "eq"))
    [ 0; 260; 262; 511; 5 ]

let test_less_than () =
  let sim =
    two_in_one_out ~wa:6 ~wb:6 ~wout:1 (fun top ~a ~b ~out ->
      ignore (Counter.less_than top ~a ~b ~lt:out ()))
  in
  List.iter
    (fun (x, y) ->
       Simulator.set_input sim "a" (Bits.of_int ~width:6 x);
       Simulator.set_input sim "b" (Bits.of_int ~width:6 y);
       Alcotest.check bits
         (Printf.sprintf "%d<%d" x y)
         (Bits.of_int ~width:1 (if x < y then 1 else 0))
         (Simulator.get_port sim "out"))
    [ (0, 0); (0, 1); (1, 0); (63, 62); (62, 63); (31, 31); (13, 40) ]

(* {1 datapath} *)

let test_mux_n () =
  let top = Cell.root ~name:"top" () in
  let sel = Wire.create top ~name:"sel" 3 in
  let inputs =
    List.init 5 (fun i -> Wire.create top ~name:(Printf.sprintf "in%d" i) 4)
  in
  let out = Wire.create top ~name:"out" 4 in
  let _ = Datapath.mux_n top ~sel ~inputs ~out () in
  let d = Design.create top in
  Design.add_port d "sel" Types.Input sel;
  List.iteri
    (fun i w -> Design.add_port d (Printf.sprintf "in%d" i) Types.Input w)
    inputs;
  Design.add_port d "out" Types.Output out;
  let sim = Simulator.create d in
  List.iteri
    (fun i _ ->
       Simulator.set_input sim (Printf.sprintf "in%d" i)
         (Bits.of_int ~width:4 (i + 3)))
    inputs;
  for s = 0 to 4 do
    Simulator.set_input sim "sel" (Bits.of_int ~width:3 s);
    Alcotest.check bits
      (Printf.sprintf "select %d" s)
      (Bits.of_int ~width:4 (s + 3))
      (Simulator.get_port sim "out")
  done

let test_parity () =
  let top = Cell.root ~name:"top" () in
  let x = Wire.create top ~name:"x" 11 in
  let p = Wire.create top ~name:"p" 1 in
  let _ = Datapath.parity top ~x ~p () in
  let d = Design.create top in
  Design.add_port d "x" Types.Input x;
  Design.add_port d "p" Types.Output p;
  let sim = Simulator.create d in
  List.iter
    (fun v ->
       Simulator.set_input sim "x" (Bits.of_int ~width:11 v);
       let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
       Alcotest.check bits
         (Printf.sprintf "parity of %d" v)
         (Bits.of_int ~width:1 (pop v land 1))
         (Simulator.get_port sim "p"))
    [ 0; 1; 3; 2047; 1024; 1365; 682 ]

let test_delay_line () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 4 in
  let q = Wire.create top ~name:"q" 4 in
  let ce = Virtex.vcc top in
  let _ = Datapath.delay_line top ~clk ~ce ~depth:5 ~d:d_in ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  let samples = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  List.iteri
    (fun i x ->
       Simulator.set_input sim "d" (Bits.of_int ~width:4 x);
       Simulator.cycle sim;
       ignore x;
       (* tap 4 holds the sample pushed five shifts ago *)
       if i >= 5 then
         Alcotest.check bits
           (Printf.sprintf "delayed sample %d" i)
           (Bits.of_int ~width:4 (List.nth samples (i - 4)))
           (Simulator.get_port sim "q"))
    samples

let test_register_file () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let we = Wire.create top ~name:"we" 1 in
  let waddr = Wire.create top ~name:"waddr" 3 in
  let raddr = Wire.create top ~name:"raddr" 3 in
  let d_in = Wire.create top ~name:"d" 8 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Datapath.register_file top ~clk ~we ~waddr ~raddr ~d:d_in ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "we" Types.Input we;
  Design.add_port d "waddr" Types.Input waddr;
  Design.add_port d "raddr" Types.Input raddr;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "we" (Bits.of_int ~width:1 1);
  for e = 0 to 7 do
    Simulator.set_input sim "waddr" (Bits.of_int ~width:3 e);
    Simulator.set_input sim "d" (Bits.of_int ~width:8 (e * 10));
    Simulator.cycle sim
  done;
  Simulator.set_input sim "we" (Bits.of_int ~width:1 0);
  for e = 0 to 7 do
    Simulator.set_input sim "raddr" (Bits.of_int ~width:3 e);
    Alcotest.check bits
      (Printf.sprintf "entry %d" e)
      (Bits.of_int ~width:8 (e * 10))
      (Simulator.get_port sim "q")
  done

(* {1 FIR} *)

let fir_sim ~xw ~yw ~signed_mode ~coefficients =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" xw in
  let y = Wire.create top ~name:"y" yw in
  let fir = Fir.create top ~clk ~x ~y ~signed_mode ~coefficients () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "y" Types.Output y;
  (Simulator.create ~clock:clk d, fir)

let run_fir sim ~xw samples =
  (* y(n) is combinational in x(n): sample output before each clock edge *)
  List.map
    (fun x ->
       Simulator.set_input sim "x" (Bits.of_int ~width:xw x);
       let y = Simulator.get_port sim "y" in
       Simulator.cycle sim;
       y)
    samples

let test_fir_impulse () =
  let coefficients = [ 3; 7; 1; 5 ] in
  let sim, fir = fir_sim ~xw:4 ~yw:20 ~signed_mode:false ~coefficients in
  let samples = [ 1; 0; 0; 0; 0; 0 ] in
  let got = run_fir sim ~xw:4 samples in
  let expected =
    Fir.expected_response ~signed_mode:false ~coefficients
      ~full_width:fir.Fir.full_width ~out_width:20 samples
  in
  List.iteri
    (fun i (e, g) ->
       Alcotest.check bits (Printf.sprintf "impulse response %d" i) e g)
    (List.combine expected got)

let test_fir_signed_random () =
  let coefficients = [ -2; 5; -7; 3; 1 ] in
  let sim, fir = fir_sim ~xw:6 ~yw:24 ~signed_mode:true ~coefficients in
  let samples = [ 5; -3; 17; -32; 31; 0; 8; -8; 13; 2 ] in
  let got = run_fir sim ~xw:6 samples in
  let expected =
    Fir.expected_response ~signed_mode:true ~coefficients
      ~full_width:fir.Fir.full_width ~out_width:24 samples
  in
  List.iteri
    (fun i (e, g) ->
       Alcotest.check bits (Printf.sprintf "signed fir sample %d" i) e g)
    (List.combine expected got)

let test_fir_rejects_bad () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 4 in
  let y = Wire.create top ~name:"y" 8 in
  Alcotest.(check bool) "empty coefficients" true
    (try
       ignore (Fir.create top ~clk ~x ~y ~signed_mode:false ~coefficients:[] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative unsigned" true
    (try
       ignore
         (Fir.create top ~clk ~x ~y ~signed_mode:false ~coefficients:[ 1; -2 ] ());
       false
     with Invalid_argument _ -> true)

(* {1 util} *)

let test_digit_split () =
  Alcotest.(check (list (pair int int))) "8 bits" [ (0, 3); (4, 7) ]
    (Util.digit_split ~width:8 ~digit_bits:4);
  Alcotest.(check (list (pair int int))) "10 bits" [ (0, 3); (4, 7); (8, 9) ]
    (Util.digit_split ~width:10 ~digit_bits:4);
  Alcotest.(check (list (pair int int))) "3 bits" [ (0, 2) ]
    (Util.digit_split ~width:3 ~digit_bits:4)

let test_bits_for_constant () =
  List.iter
    (fun (k, expect) ->
       Alcotest.(check int) (Printf.sprintf "width of %d" k) expect
         (Util.bits_for_constant k))
    [ (0, 1); (-1, 1); (1, 2); (-2, 2); (5, 4); (-56, 7); (127, 8); (-128, 8) ]

let test_constant_wire () =
  let top = Cell.root ~name:"top" () in
  let w = Util.constant top ~value:(Bits.of_string "1010") () in
  let out = Wire.create top ~name:"out" 4 in
  Util.buffer top ~from:w ~into:out ();
  let d = Design.create top in
  Design.add_port d "out" Types.Output out;
  let sim = Simulator.create d in
  Alcotest.check bits "constant value" (Bits.of_string "1010")
    (Simulator.get_port sim "out")

let suite =
  [ Alcotest.test_case "carry chain adder" `Quick test_carry_chain_adder;
    Alcotest.test_case "carry chain cin/cout" `Quick test_carry_chain_cin_cout;
    Alcotest.test_case "ripple equals carry chain" `Quick
      test_ripple_equals_carry_chain;
    Alcotest.test_case "subtractor" `Quick test_subtractor;
    Alcotest.test_case "add_sub" `Quick test_add_sub;
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    Alcotest.test_case "kcm unsigned exhaustive" `Quick
      test_kcm_unsigned_exhaustive;
    Alcotest.test_case "kcm signed exhaustive" `Quick test_kcm_signed_exhaustive;
    Alcotest.test_case "kcm paper example (-56, 8x8, 12-bit)" `Quick
      test_kcm_paper_example;
    Alcotest.test_case "kcm wide product extension" `Quick
      test_kcm_wide_product_extension;
    Alcotest.test_case "kcm pipelined latency" `Quick test_kcm_pipelined_latency;
    Alcotest.test_case "kcm pipelined throughput" `Quick
      test_kcm_pipelined_throughput;
    Alcotest.test_case "kcm single digit pipelined" `Quick
      test_kcm_single_digit_pipelined;
    Alcotest.test_case "kcm rejects bad args" `Quick test_kcm_rejects_bad_args;
    Alcotest.test_case "kcm tree structure" `Quick test_kcm_tree_structure;
    Alcotest.test_case "kcm tree fewer levels" `Quick test_kcm_tree_fewer_levels;
    Alcotest.test_case "kcm tree rejects pipelining" `Quick
      test_kcm_tree_rejects_pipelining;
    Alcotest.test_case "shift-add constant multiplier" `Quick
      test_shift_add_constant;
    Alcotest.test_case "csd adder count" `Quick test_adder_count_for;
    Alcotest.test_case "array multiplier" `Quick test_array_mult;
    Alcotest.test_case "wallace tree exhaustive" `Quick test_wallace_exhaustive;
    Alcotest.test_case "wallace tree truncated" `Quick
      test_wallace_truncated_and_counts;
    Alcotest.test_case "restoring divider exhaustive" `Quick
      test_divider_exhaustive;
    Alcotest.test_case "divider pipelined throughput" `Quick
      test_divider_pipelined_throughput;
    Alcotest.test_case "divider rejects bad args" `Quick
      test_divider_rejects_bad_args;
    Alcotest.test_case "signed multiplier" `Quick test_signed_mult;
    Alcotest.test_case "signed multiplier truncated" `Quick
      test_signed_mult_truncated;
    Alcotest.test_case "up counter" `Quick test_up_counter;
    Alcotest.test_case "counter ce/sclr" `Quick test_up_counter_ce_sclr;
    Alcotest.test_case "equal const" `Quick test_equal_const;
    Alcotest.test_case "less than" `Quick test_less_than;
    Alcotest.test_case "mux_n" `Quick test_mux_n;
    Alcotest.test_case "parity" `Quick test_parity;
    Alcotest.test_case "delay line" `Quick test_delay_line;
    Alcotest.test_case "register file" `Quick test_register_file;
    Alcotest.test_case "fir impulse" `Quick test_fir_impulse;
    Alcotest.test_case "fir signed random" `Quick test_fir_signed_random;
    Alcotest.test_case "fir rejects bad" `Quick test_fir_rejects_bad;
    Alcotest.test_case "digit split" `Quick test_digit_split;
    Alcotest.test_case "bits for constant" `Quick test_bits_for_constant;
    Alcotest.test_case "constant wire" `Quick test_constant_wire ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_kcm_random; prop_kcm_tree_random ]
