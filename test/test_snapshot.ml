(* Checkpoint blobs: round-trips across every catalog design, kernel <->
   interpreter cross-restores, and rejection of anything that is not an
   intact blob from the same design. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design
module Simulator = Jhdl_sim.Simulator
module Reference = Jhdl_sim.Reference
module Snapshot = Jhdl_sim.Snapshot
module Ip_module = Jhdl_applet.Ip_module
module Catalog = Jhdl_applet.Catalog

let bits = Alcotest.testable Bits.pp Bits.equal

let built_of_ip ip = ip.Ip_module.build (Ip_module.defaults ip)

let clock_of built =
  Option.bind built.Ip_module.clock_port (fun name ->
    Option.map
      (fun p -> p.Design.port_wire)
      (Design.find_port built.Ip_module.design name))

let sim_of built =
  Simulator.create ?clock:(clock_of built) built.Ip_module.design

let ref_of built =
  Reference.create ?clock:(clock_of built) built.Ip_module.design

(* drive every non-clock input with a deterministic pattern and run a
   few cycles, so the snapshot carries non-initial register state *)
let warm_up set_input cycle built step_count =
  let clock_name = built.Ip_module.clock_port in
  List.iteri
    (fun i p ->
       if Some p.Design.port_name <> clock_name then
         set_input p.Design.port_name
           (Bits.of_int
              ~width:(Wire.width p.Design.port_wire)
              ((i * 37) + 13)))
    (Design.inputs built.Ip_module.design);
  cycle step_count

let output_map get_port design =
  List.map
    (fun p -> (p.Design.port_name, get_port p.Design.port_name))
    (Design.outputs design)

(* acceptance: Simulator.restore (snapshot sim) round-trips on every
   catalog design — outputs, cycle counter, and forward behavior *)
let test_roundtrip_every_catalog_design () =
  List.iter
    (fun ip ->
       let name = ip.Ip_module.ip_name in
       let built = built_of_ip ip in
       let sim = sim_of built in
       warm_up
         (fun port v -> Simulator.set_input sim port v)
         (fun n -> Simulator.cycle ~n sim)
         built 5;
       let blob = Simulator.snapshot sim in
       let twin = sim_of (built_of_ip ip) in
       Simulator.restore twin blob;
       Alcotest.(check int)
         (name ^ ": cycle counter restored")
         (Simulator.cycle_count sim) (Simulator.cycle_count twin);
       List.iter2
         (fun (port, expected) (_, actual) ->
            Alcotest.check bits
              (Printf.sprintf "%s: output %s restored" name port)
              expected actual)
         (output_map (Simulator.get_port sim) built.Ip_module.design)
         (output_map (Simulator.get_port twin) built.Ip_module.design);
       (* the restored simulator must also keep simulating identically *)
       Simulator.cycle ~n:3 sim;
       Simulator.cycle ~n:3 twin;
       List.iter2
         (fun (port, expected) (_, actual) ->
            Alcotest.check bits
              (Printf.sprintf "%s: output %s identical after resume" name port)
              expected actual)
         (output_map (Simulator.get_port sim) built.Ip_module.design)
         (output_map (Simulator.get_port twin) built.Ip_module.design))
    Catalog.all

(* blobs are portable between the compiled kernel and the golden
   interpreter: same design signature, same net codes *)
let test_cross_restore_kernel_and_interpreter () =
  List.iter
    (fun ip ->
       let name = ip.Ip_module.ip_name in
       let built = built_of_ip ip in
       let sim = sim_of built in
       warm_up
         (fun port v -> Simulator.set_input sim port v)
         (fun n -> Simulator.cycle ~n sim)
         built 4;
       let blob = Simulator.snapshot sim in
       let interp = ref_of (built_of_ip ip) in
       Reference.restore interp blob;
       List.iter2
         (fun (port, expected) (_, actual) ->
            Alcotest.check bits
              (Printf.sprintf "%s: kernel -> interpreter %s" name port)
              expected actual)
         (output_map (Simulator.get_port sim) built.Ip_module.design)
         (output_map (Reference.get_port interp) built.Ip_module.design);
       (* and back: interpreter blob into a fresh kernel *)
       let back = Reference.snapshot interp in
       let twin = sim_of (built_of_ip ip) in
       Simulator.restore twin back;
       List.iter2
         (fun (port, expected) (_, actual) ->
            Alcotest.check bits
              (Printf.sprintf "%s: interpreter -> kernel %s" name port)
              expected actual)
         (output_map (Simulator.get_port sim) built.Ip_module.design)
         (output_map (Simulator.get_port twin) built.Ip_module.design))
    Catalog.all

let counter_sim () =
  let ip =
    match Catalog.find "UpCounter" with
    | Some ip -> ip
    | None -> Alcotest.fail "no UpCounter in catalog"
  in
  let built = built_of_ip ip in
  (built, sim_of built)

let expect_error label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Snapshot.Error" label
  | exception Snapshot.Error _ -> ()

let test_rejects_damaged_blobs () =
  let _, sim = counter_sim () in
  Simulator.cycle ~n:3 sim;
  let blob = Simulator.snapshot sim in
  let flip i =
    let b = Bytes.of_string blob in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
    Bytes.to_string b
  in
  expect_error "empty" (fun () -> Simulator.restore sim "");
  expect_error "bad magic" (fun () -> Simulator.restore sim (flip 0));
  expect_error "bad version" (fun () -> Simulator.restore sim (flip 4));
  expect_error "flipped signature fails CRC or signature" (fun () ->
    Simulator.restore sim (flip 5));
  expect_error "flipped body byte fails CRC" (fun () ->
    Simulator.restore sim (flip (String.length blob / 2)));
  expect_error "flipped CRC trailer" (fun () ->
    Simulator.restore sim (flip (String.length blob - 1)));
  expect_error "truncated" (fun () ->
    Simulator.restore sim (String.sub blob 0 (String.length blob - 3)));
  expect_error "trailing garbage" (fun () ->
    Simulator.restore sim (blob ^ "\x00"));
  (* the undamaged blob still restores after all those rejections *)
  Simulator.restore sim blob;
  Alcotest.(check int) "still at cycle 3" 3 (Simulator.cycle_count sim)

let test_rejects_wrong_design () =
  let _, counter = counter_sim () in
  Simulator.cycle ~n:2 counter;
  let counter_blob = Simulator.snapshot counter in
  let kcm_ip =
    match Catalog.find "VirtexKCMMultiplier" with
    | Some ip -> ip
    | None -> Alcotest.fail "no VirtexKCMMultiplier in catalog"
  in
  let kcm = sim_of (built_of_ip kcm_ip) in
  (match Simulator.restore kcm counter_blob with
   | () -> Alcotest.fail "expected signature mismatch"
   | exception Snapshot.Error reason ->
     Alcotest.(check bool) "names the mismatch" true
       (let needle = "signature mismatch" in
        let hl = String.length reason and nl = String.length needle in
        let rec scan i =
          i + nl <= hl && (String.sub reason i nl = needle || scan (i + 1))
        in
        scan 0));
  (* the rejected simulator is untouched *)
  Alcotest.(check int) "kcm still at cycle 0" 0 (Simulator.cycle_count kcm)

let test_watch_history_survives () =
  let built, sim = counter_sim () in
  let q =
    match Design.find_port built.Ip_module.design "q" with
    | Some p -> p.Design.port_wire
    | None -> Alcotest.fail "no q port"
  in
  Simulator.watch sim ~label:"q" q;
  Simulator.cycle ~n:4 sim;
  let blob = Simulator.snapshot sim in
  let samples label s =
    match List.assoc_opt label (Simulator.history s) with
    | Some samples -> samples
    | None -> Alcotest.failf "no %s history" label
  in
  let before = samples "q" sim in
  (* keep simulating, then roll back: the history must roll back too *)
  Simulator.cycle ~n:6 sim;
  Alcotest.(check bool) "history grew" true
    (List.length (samples "q" sim) > List.length before);
  Simulator.restore sim blob;
  let after = samples "q" sim in
  Alcotest.(check int) "history rolled back" (List.length before)
    (List.length after);
  List.iter2
    (fun (ca, va) (cb, vb) ->
       Alcotest.(check int) "sample cycle" ca cb;
       Alcotest.check bits "sample value" va vb)
    before after

let test_version_and_signature_exposed () =
  Alcotest.(check int) "format version" 1 Snapshot.version;
  let built, _ = counter_sim () in
  let s1 = Snapshot.signature built.Ip_module.design in
  let built2, _ = counter_sim () in
  let s2 = Snapshot.signature built2.Ip_module.design in
  Alcotest.(check int) "signature is structural, not per-instance" s1 s2;
  let kcm =
    match Catalog.find "VirtexKCMMultiplier" with
    | Some ip -> built_of_ip ip
    | None -> Alcotest.fail "no kcm"
  in
  Alcotest.(check bool) "different designs differ" true
    (s1 <> Snapshot.signature kcm.Ip_module.design)

let suite =
  [ Alcotest.test_case "roundtrip on every catalog design" `Quick
      test_roundtrip_every_catalog_design;
    Alcotest.test_case "kernel/interpreter cross-restore" `Quick
      test_cross_restore_kernel_and_interpreter;
    Alcotest.test_case "damaged blobs rejected" `Quick
      test_rejects_damaged_blobs;
    Alcotest.test_case "wrong design rejected" `Quick test_rejects_wrong_design;
    Alcotest.test_case "watch history survives" `Quick
      test_watch_history_survives;
    Alcotest.test_case "version and signature" `Quick
      test_version_and_signature_exposed ]
