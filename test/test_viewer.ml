(* Viewer tests: hierarchy, schematic, floorplan, waveform, VCD. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Bits = Jhdl_logic.Bits
module Simulator = Jhdl_sim.Simulator
module Hierarchy = Jhdl_viewer.Hierarchy
module Schematic = Jhdl_viewer.Schematic
module Floorplan = Jhdl_viewer.Floorplan
module Waveform = Jhdl_viewer.Waveform
module Vcd = Jhdl_viewer.Vcd
module Adders = Jhdl_modgen.Adders

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let sample_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let b = Wire.create top ~name:"b" 4 in
  let sum = Wire.create top ~name:"sum" 4 in
  let _ = Adders.carry_chain top ~name:"add" ~a ~b ~sum () in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "sum" Types.Output sum;
  d

let test_hierarchy_render () =
  let d = sample_design () in
  let text = Hierarchy.render_design d in
  Alcotest.(check bool) "lists ports" true (contains ~needle:"input  a<4>" text);
  Alcotest.(check bool) "shows the adder" true
    (contains ~needle:"add : CarryChainAdder" text);
  Alcotest.(check bool) "shows a muxcy" true (contains ~needle:"MUXCY" text);
  Alcotest.(check bool) "tree glyphs" true (contains ~needle:"`--" text)

let test_hierarchy_max_depth () =
  let d = sample_design () in
  let shallow = Hierarchy.render ~max_depth:0 (Design.root d) in
  Alcotest.(check bool) "depth 0 hides children" true
    (not (contains ~needle:"MUXCY" shallow))

let test_hierarchy_focus () =
  let d = sample_design () in
  (match Hierarchy.focus d "add" with
   | Some text ->
     Alcotest.(check bool) "focused subtree" true (contains ~needle:"XORCY" text)
   | None -> Alcotest.fail "path add should resolve");
  Alcotest.(check bool) "bad path" true (Hierarchy.focus d "nope" = None)

let test_schematic_render () =
  let d = sample_design () in
  let add_cell = Option.get (Cell.find_path (Design.root d) "add") in
  let text = Schematic.render add_cell in
  Alcotest.(check bool) "port bindings shown" true (contains ~needle:".a <=" text);
  Alcotest.(check bool) "instances listed" true (contains ~needle:"cy0 : MUXCY" text)

let test_schematic_nets () =
  let d = sample_design () in
  let add_cell = Option.get (Cell.find_path (Design.root d) "add") in
  let text = Schematic.render_nets add_cell in
  Alcotest.(check bool) "driver arrow" true (contains ~needle:" -> " text);
  Alcotest.(check bool) "carry net named" true (contains ~needle:"carry" text)

let test_schematic_svg () =
  let d = sample_design () in
  let svg = Schematic.to_svg (Option.get (Cell.find_path (Design.root d) "add")) in
  Alcotest.(check bool) "svg root" true (contains ~needle:"<svg" svg);
  Alcotest.(check bool) "closed" true (contains ~needle:"</svg>" svg);
  Alcotest.(check bool) "boxes drawn" true (contains ~needle:"<rect" svg);
  Alcotest.(check bool) "escaped text" true (not (contains ~needle:"<-" svg))

let test_floorplan () =
  let d = sample_design () in
  let root = Design.root d in
  (match Floorplan.bounding_box root with
   | Some (rows, cols) ->
     Alcotest.(check int) "two bits per row" 2 rows;
     Alcotest.(check int) "one column" 1 cols
   | None -> Alcotest.fail "carry chain is placed");
  let text = Floorplan.render root in
  Alcotest.(check bool) "slice glyph" true (contains ~needle:"S" text);
  Alcotest.(check bool) "legend" true (contains ~needle:"legend" text)

let test_floorplan_empty () =
  let top = Cell.root ~name:"empty" () in
  let text = Floorplan.render top in
  Alcotest.(check bool) "reports nothing placed" true
    (contains ~needle:"no placed primitives" text)

let watched_sim () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"count" 3 in
  let _ = Jhdl_modgen.Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "count" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  Simulator.watch sim ~label:"count" q;
  Simulator.cycle ~n:4 sim;
  sim

let test_waveform_render () =
  let sim = watched_sim () in
  let text = Waveform.render ~radix:`Unsigned sim in
  Alcotest.(check bool) "labels" true (contains ~needle:"count" text);
  Alcotest.(check bool) "counts up" true (contains ~needle:"4" text)

let test_waveform_value_format () =
  Alcotest.(check string) "hex" "2a"
    (Waveform.value_to_string ~radix:`Hex (Bits.of_int ~width:8 42));
  Alcotest.(check string) "binary" "00101010"
    (Waveform.value_to_string ~radix:`Binary (Bits.of_int ~width:8 42));
  Alcotest.(check string) "x falls back" "1x"
    (Waveform.value_to_string ~radix:`Hex (Bits.of_string "1x"))

let test_vcd_export () =
  let sim = watched_sim () in
  let vcd = Vcd.of_history sim in
  Alcotest.(check bool) "header" true (contains ~needle:"$timescale" vcd);
  Alcotest.(check bool) "var decl" true (contains ~needle:"$var wire 3" vcd);
  Alcotest.(check bool) "definitions closed" true
    (contains ~needle:"$enddefinitions" vcd);
  Alcotest.(check bool) "timestamped" true (contains ~needle:"#4" vcd);
  Alcotest.(check bool) "vector value" true (contains ~needle:"b100" vcd)

let test_vcd_dumpvars_initial_values () =
  let sim = watched_sim () in
  let vcd = Vcd.of_history sim in
  (* the first timestamp must open with a $dumpvars block so viewers
     have an initial value for every declared signal *)
  Alcotest.(check bool) "dumpvars present" true
    (contains ~needle:"#0\n$dumpvars\n" vcd);
  (* the counter's reset value is inside it, and the block is closed *)
  Alcotest.(check bool) "initial value emitted" true
    (contains ~needle:"$dumpvars\nb000 !\n$end" vcd);
  (* later cycles are plain timestamped blocks, not re-dumped *)
  Alcotest.(check bool) "per-cycle values follow" true
    (contains ~needle:"#1\nb001 !" vcd)

let test_vcd_id_scheme_extends () =
  (* the identifier space must not run out: the old two-character scheme
     overflowed into unprintable bytes past index 8929 *)
  Alcotest.(check string) "first id" "!" (Vcd.id_of_index 0);
  Alcotest.(check string) "last 1-char id" "~" (Vcd.id_of_index 93);
  Alcotest.(check string) "first 2-char id" "!!" (Vcd.id_of_index 94);
  Alcotest.(check string) "last 2-char id" "~~" (Vcd.id_of_index 8929);
  Alcotest.(check string) "first 3-char id" "!!!" (Vcd.id_of_index 8930);
  let ids = List.init 20000 Vcd.id_of_index in
  List.iter
    (fun id ->
       String.iter
         (fun c ->
            if c < '!' || c > '~' then
              Alcotest.failf "unprintable identifier byte %C" c)
         id)
    ids;
  Alcotest.(check int) "all distinct" 20000
    (List.length (List.sort_uniq compare ids))

let test_vcd_many_signals () =
  (* a >94-signal history forces multi-character identifiers; every
     watched wire must keep a unique, declared, dumped id *)
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"count" 3 in
  let _ = Jhdl_modgen.Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "count" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  for i = 0 to 99 do
    Simulator.watch sim ~label:(Printf.sprintf "w%03d" i) q
  done;
  Simulator.cycle ~n:2 sim;
  let vcd = Vcd.of_history sim in
  Alcotest.(check bool) "two-char id declared" true
    (contains ~needle:"$var wire 3 !! w094 $end" vcd);
  Alcotest.(check bool) "two-char id dumped" true
    (contains ~needle:"b001 !!" vcd)

let suite =
  [ Alcotest.test_case "hierarchy render" `Quick test_hierarchy_render;
    Alcotest.test_case "hierarchy max depth" `Quick test_hierarchy_max_depth;
    Alcotest.test_case "hierarchy focus" `Quick test_hierarchy_focus;
    Alcotest.test_case "schematic render" `Quick test_schematic_render;
    Alcotest.test_case "schematic nets" `Quick test_schematic_nets;
    Alcotest.test_case "schematic svg" `Quick test_schematic_svg;
    Alcotest.test_case "floorplan" `Quick test_floorplan;
    Alcotest.test_case "floorplan empty" `Quick test_floorplan_empty;
    Alcotest.test_case "waveform render" `Quick test_waveform_render;
    Alcotest.test_case "waveform values" `Quick test_waveform_value_format;
    Alcotest.test_case "vcd export" `Quick test_vcd_export;
    Alcotest.test_case "vcd dumpvars initial values" `Quick
      test_vcd_dumpvars_initial_values;
    Alcotest.test_case "vcd id scheme extends" `Quick
      test_vcd_id_scheme_extends;
    Alcotest.test_case "vcd many signals" `Quick test_vcd_many_signals ]
