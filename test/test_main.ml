let () =
  Alcotest.run "jhdl-applets"
    [ ("logic", Test_logic.suite);
      ("metrics", Test_metrics.suite);
      ("circuit", Test_circuit.suite);
      ("sim", Test_sim.suite);
      ("snapshot", Test_snapshot.suite);
      ("netlist", Test_netlist.suite);
      ("estimate", Test_estimate.suite);
      ("modgen", Test_modgen.suite);
      ("cordic", Test_cordic.suite);
      ("dafir", Test_dafir.suite);
      ("testbench", Test_testbench.suite);
      ("misc-logic", Test_misc_logic.suite);
      ("placer", Test_placer.suite);
      ("lint", Test_lint.suite);
      ("equiv", Test_equiv.suite);
      ("analysis", Test_analysis.suite);
      ("differential", Test_differential.suite);
      ("fuzz", Test_fuzz.suite);
      ("viewer", Test_viewer.suite);
      ("bundle", Test_bundle.suite);
      ("security", Test_security.suite);
      ("applet", Test_applet.suite);
      ("cache", Test_cache.suite);
      ("webserver", Test_webserver.suite);
      ("resilience", Test_resilience.suite);
      ("netproto", Test_netproto.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("scale", Test_scale.suite) ]
