(* Bundle tests: class-file model, jar compression, the Table 1
   partition and the download model. *)

module Class_file = Jhdl_bundle.Class_file
module Jar = Jhdl_bundle.Jar
module Partition = Jhdl_bundle.Partition
module Download = Jhdl_bundle.Download

let kb bytes = (bytes + 512) / 1024

let test_class_file_deterministic () =
  let a = Class_file.synthesize ~fqcn:"byucc.jhdl.base.Wire" ~weight:1.0 in
  let b = Class_file.synthesize ~fqcn:"byucc.jhdl.base.Wire" ~weight:1.0 in
  Alcotest.(check int) "same size" (Class_file.size a) (Class_file.size b)

let test_class_file_names () =
  let c = Class_file.synthesize ~fqcn:"byucc.jhdl.base.Wire" ~weight:1.0 in
  Alcotest.(check string) "package" "byucc.jhdl.base" (Class_file.package c);
  Alcotest.(check string) "simple" "Wire" (Class_file.simple_name c)

let test_class_rename_shrinks () =
  let c =
    Class_file.synthesize ~fqcn:"byucc.jhdl.base.VeryLongDescriptiveName"
      ~weight:1.0
  in
  let renamed = Class_file.rename c ~fqcn:"o.a" in
  Alcotest.(check bool) "smaller after rename" true
    (Class_file.size renamed < Class_file.size c);
  Alcotest.(check int) "structural untouched" c.Class_file.structural_bytes
    renamed.Class_file.structural_bytes

let test_jar_sizes_monotone () =
  let jar = Partition.jar_of Partition.Base in
  Alcotest.(check bool) "compression shrinks" true
    (Jar.compressed_size jar < Jar.uncompressed_size jar);
  Alcotest.(check bool) "has entries" true (Jar.entry_count jar > 50)

(* The Table 1 reproduction: each jar within 3 kB of the paper's figure. *)
let test_table1_calibration () =
  let expect =
    [ (Partition.Base, 346); (Partition.Virtex, 293); (Partition.Viewer, 140);
      (Partition.Applet, 16) ]
  in
  List.iter
    (fun (component, paper_kb) ->
       let actual = kb (Jar.compressed_size (Partition.jar_of component)) in
       Alcotest.(check bool)
         (Printf.sprintf "%s ~ %d kB (got %d)"
            (Partition.component_name component)
            paper_kb actual)
         true
         (abs (actual - paper_kb) <= 3))
    expect;
  let total = kb (Partition.total_compressed (Partition.jars_for Partition.all_components)) in
  Alcotest.(check bool)
    (Printf.sprintf "total ~ 795 kB (got %d)" total)
    true
    (abs (total - 795) <= 8)

let test_jars_for_subset () =
  let jars = Partition.jars_for [ Partition.Base; Partition.Applet ] in
  Alcotest.(check (list string)) "canonical order"
    [ "JHDLBase.jar"; "Applet.jar" ]
    (List.map (fun j -> j.Jar.jar_name) jars)

let test_monolithic_merge () =
  let mono = Partition.monolithic () in
  let parts = Partition.jars_for Partition.all_components in
  let part_entries =
    List.fold_left (fun acc j -> acc + Jar.entry_count j) 0 parts
  in
  Alcotest.(check int) "no entries lost" part_entries (Jar.entry_count mono);
  (* merged archive saves per-archive overhead only *)
  Alcotest.(check bool) "roughly the sum" true
    (abs (Jar.compressed_size mono - Partition.total_compressed parts) < 2000)

let test_table_rendering () =
  let text = Partition.table (Partition.jars_for Partition.all_components) in
  Alcotest.(check bool) "header" true
    (String.length text > 0 && String.sub text 0 4 = "File");
  Alcotest.(check bool) "total line" true
    (let rec contains i =
       i + 5 <= String.length text
       && (String.sub text i 5 = "Total" || contains (i + 1))
     in
     contains 0)

let test_download_ordering () =
  let jars = Partition.jars_for Partition.all_components in
  let t_modem = Download.jars_seconds Download.modem_56k jars in
  let t_dsl = Download.jars_seconds Download.dsl_1m jars in
  let t_lan = Download.jars_seconds Download.lan_100m jars in
  Alcotest.(check bool) "modem slowest" true (t_modem > t_dsl && t_dsl > t_lan);
  (* 795 kB over 56k is about 100+ seconds *)
  Alcotest.(check bool) "modem takes minutes" true (t_modem > 60.0);
  Alcotest.(check bool) "lan takes well under a second" true (t_lan < 1.0)

let test_partitioning_saves_bandwidth () =
  (* an estimator-only applet skips the viewer jar *)
  let small =
    Partition.jars_for [ Partition.Base; Partition.Virtex; Partition.Applet ]
  in
  let all = [ Partition.monolithic () ] in
  let link = Download.modem_56k in
  Alcotest.(check bool) "partitioned fetch is smaller" true
    (Download.jars_seconds link small < Download.jars_seconds link all)

let test_update_seconds () =
  let link = Download.dsl_1m in
  let applet_only = Partition.jars_for [ Partition.Applet ] in
  let refetch = Download.update_seconds link ~changed:applet_only () in
  let full =
    Download.jars_seconds link (Partition.jars_for Partition.all_components)
  in
  Alcotest.(check bool) "update is much cheaper than first visit" true
    (refetch < full /. 10.0)

(* {1 faulty links: retried, resumable fetches} *)

module Fault = Jhdl_faults.Fault

let all_jars () = Partition.jars_for Partition.all_components

let test_fetch_without_faults_matches_clean_model () =
  let jars = all_jars () in
  let link = Download.dsl_1m in
  let fetches = Download.fetch_jars link jars in
  Alcotest.(check int) "one attempt per jar" (List.length jars)
    (Download.fetch_attempts fetches);
  Alcotest.(check (list string)) "nothing failed" []
    (List.map (fun j -> j.Jar.jar_name) (Download.fetch_failures fetches));
  Alcotest.(check (float 1e-9)) "timing identical to the clean model"
    (Download.jars_seconds link jars)
    (Download.fetch_total_seconds fetches);
  Alcotest.(check int) "bytes = compressed payload"
    (Partition.total_compressed jars)
    (Download.fetch_total_bytes fetches)

let test_fetch_is_deterministic () =
  let jars = all_jars () in
  let link = Download.modem_56k in
  let faults = Fault.only Fault.Drop ~rate:0.4 ~seed:7 in
  let a = Download.fetch_jars ~faults link jars in
  let b = Download.fetch_jars ~faults link jars in
  Alcotest.(check (float 0.0)) "same seconds"
    (Download.fetch_total_seconds a) (Download.fetch_total_seconds b);
  Alcotest.(check int) "same bytes"
    (Download.fetch_total_bytes a) (Download.fetch_total_bytes b);
  Alcotest.(check int) "same attempts"
    (Download.fetch_attempts a) (Download.fetch_attempts b);
  List.iter2
    (fun x y ->
       Alcotest.(check bool) "same delivery outcome" x.Download.delivered
         y.Download.delivered)
    a b

let test_fetch_retries_cost_time_and_bytes () =
  let jars = all_jars () in
  let link = Download.modem_56k in
  let dropped =
    Download.fetch_jars ~faults:(Fault.only Fault.Drop ~rate:0.5 ~seed:13) link
      jars
  in
  Alcotest.(check bool) "drops force retries" true
    (Download.fetch_attempts dropped > List.length jars);
  Alcotest.(check bool) "retried fetch is slower than the clean link" true
    (Download.fetch_total_seconds dropped > Download.jars_seconds link jars);
  (* resume keeps drops byte-neutral; corruption wastes whole payloads *)
  let corrupted =
    Download.fetch_jars ~faults:(Fault.only Fault.Corrupt ~rate:0.5 ~seed:13)
      link jars
  in
  Alcotest.(check bool) "corruption puts dead bytes on the wire" true
    (Download.fetch_total_bytes corrupted > Partition.total_compressed jars)

let test_fetch_certain_loss_without_retries_fails () =
  let jars = all_jars () in
  let faults = Fault.only Fault.Disconnect ~rate:0.999 ~seed:1 in
  let fetches =
    Download.fetch_jars ~faults ~policy:Download.single_attempt
      Download.dsl_1m jars
  in
  List.iter
    (fun f ->
       Alcotest.(check bool)
         (f.Download.fetch_jar.Jar.jar_name ^ " not delivered")
         false f.Download.delivered)
    fetches;
  Alcotest.(check int) "every jar failed" (List.length jars)
    (List.length (Download.fetch_failures fetches))

let test_fetch_corruption_restarts_from_zero () =
  let jars = Partition.jars_for [ Partition.Base ] in
  let faults = Fault.only Fault.Corrupt ~rate:0.5 ~seed:5 in
  let fetches = Download.fetch_jars ~faults Download.dsl_1m jars in
  match fetches with
  | [ f ] when f.Download.attempts > 1 ->
    (* a corrupted attempt wastes the whole payload, so the wire carries
       at least attempts-1 extra full copies' worth beyond one payload *)
    Alcotest.(check bool) "full payload per corrupted attempt" true
      (f.Download.bytes_on_wire
       >= f.Download.attempts * Jar.compressed_size f.Download.fetch_jar)
  | [ _ ] ->
    (* seed gave a clean run; the determinism test still covers replay *)
    ()
  | _ -> Alcotest.fail "expected one fetch"

let prop_jar_merge_idempotent_names =
  QCheck.Test.make ~name:"merge keeps distinct class names once" ~count:50
    QCheck.(small_list (int_bound 30))
    (fun seeds ->
       let entries =
         List.map
           (fun i ->
              Class_file.synthesize ~fqcn:(Printf.sprintf "p.C%d" i) ~weight:0.5)
           seeds
       in
       let jar = Jar.create ~name:"a.jar" ~description:"" entries in
       let merged = Jar.merge ~name:"m.jar" ~description:"" [ jar; jar ] in
       Jar.entry_count merged
       = List.length (List.sort_uniq Int.compare seeds))

let suite =
  [ Alcotest.test_case "class file deterministic" `Quick
      test_class_file_deterministic;
    Alcotest.test_case "class file names" `Quick test_class_file_names;
    Alcotest.test_case "rename shrinks" `Quick test_class_rename_shrinks;
    Alcotest.test_case "jar sizes monotone" `Quick test_jar_sizes_monotone;
    Alcotest.test_case "table 1 calibration" `Quick test_table1_calibration;
    Alcotest.test_case "jars for subset" `Quick test_jars_for_subset;
    Alcotest.test_case "monolithic merge" `Quick test_monolithic_merge;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "download ordering" `Quick test_download_ordering;
    Alcotest.test_case "partitioning saves bandwidth" `Quick
      test_partitioning_saves_bandwidth;
    Alcotest.test_case "update seconds" `Quick test_update_seconds;
    Alcotest.test_case "fetch without faults matches clean model" `Quick
      test_fetch_without_faults_matches_clean_model;
    Alcotest.test_case "fetch is deterministic" `Quick
      test_fetch_is_deterministic;
    Alcotest.test_case "fetch retries cost time and bytes" `Quick
      test_fetch_retries_cost_time_and_bytes;
    Alcotest.test_case "certain loss without retries fails" `Quick
      test_fetch_certain_loss_without_retries_fails;
    Alcotest.test_case "corruption restarts from zero" `Quick
      test_fetch_corruption_restarts_from_zero ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_jar_merge_idempotent_names ]
