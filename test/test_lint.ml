(* Lint engine tests: every module generator lints clean at error
   severity, deliberately mutated designs trip exactly their rule, the
   legacy Design.validate API surfaces net contention, and the JSON
   report shape is pinned. *)

module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init
module Types = Jhdl_circuit.Types
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Simulator = Jhdl_sim.Simulator
module Estimate = Jhdl_estimate.Estimate
module Placer = Jhdl_place.Placer
module Adders = Jhdl_modgen.Adders
module Dafir = Jhdl_modgen.Dafir
module Datapath = Jhdl_modgen.Datapath
module Multiplier = Jhdl_modgen.Multiplier
module Misc_logic = Jhdl_modgen.Misc_logic
module Catalog = Jhdl_applet.Catalog
module Ip_module = Jhdl_applet.Ip_module
module Lint = Jhdl_lint.Lint
module Const_prop = Jhdl_lint.Const_prop

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let rule_ids report =
  List.sort_uniq compare
    (List.map (fun d -> d.Lint.rule_id) report.Lint.diagnostics)

let has_rule id report = List.mem id (rule_ids report)

(* {1 generator coverage: stock modules lint clean at error severity} *)

let comb_design ~widths build =
  let top = Cell.root ~name:"top" () in
  let wires =
    List.map (fun (name, w, dir) -> (name, dir, Wire.create top ~name w)) widths
  in
  build top (fun name -> match List.find (fun (n, _, _) -> n = name) wires with
    | (_, _, w) -> w);
  let d = Design.create top in
  List.iter (fun (name, dir, w) -> Design.add_port d name dir w) wires;
  d

let generator_designs () =
  let i = Types.Input and o = Types.Output in
  List.map
    (fun ip ->
       ( ip.Ip_module.ip_name,
         (ip.Ip_module.build (Ip_module.defaults ip)).Ip_module.design ))
    Catalog.all
  @ [ ( "carry_chain_adder",
        comb_design
          ~widths:[ ("a", 8, i); ("b", 8, i); ("sum", 8, o) ]
          (fun top w ->
             ignore (Adders.carry_chain top ~a:(w "a") ~b:(w "b") ~sum:(w "sum") ())) );
      ( "ripple_adder",
        comb_design
          ~widths:[ ("a", 6, i); ("b", 6, i); ("sum", 6, o) ]
          (fun top w ->
             ignore (Adders.ripple_carry top ~a:(w "a") ~b:(w "b") ~sum:(w "sum") ())) );
      ( "dafir",
        comb_design
          ~widths:[ ("clk", 1, i); ("x", 6, i); ("y", 12, o) ]
          (fun top w ->
             ignore
               (Dafir.create top ~clk:(w "clk") ~x:(w "x") ~y:(w "y")
                  ~signed_mode:false ~coefficients:[ 1; 2; 3 ] ())) );
      ( "datapath_mux_parity",
        comb_design
          ~widths:[ ("sel", 1, i); ("m0", 4, i); ("m1", 4, i); ("out", 4, o);
                    ("p", 1, o) ]
          (fun top w ->
             ignore
               (Datapath.mux_n top ~sel:(w "sel")
                  ~inputs:[ w "m0"; w "m1" ] ~out:(w "out") ());
             ignore (Datapath.parity top ~x:(w "m0") ~p:(w "p") ())) );
      ( "datapath_delay_regfile",
        comb_design
          ~widths:[ ("clk", 1, i); ("ce", 1, i); ("we", 1, i); ("waddr", 3, i);
                    ("raddr", 3, i); ("d", 4, i); ("dq", 4, o); ("q", 4, o) ]
          (fun top w ->
             ignore
               (Datapath.delay_line top ~clk:(w "clk") ~ce:(w "ce") ~depth:3
                  ~d:(w "d") ~q:(w "dq") ());
             ignore
               (Datapath.register_file top ~clk:(w "clk") ~we:(w "we")
                  ~waddr:(w "waddr") ~raddr:(w "raddr") ~d:(w "d") ~q:(w "q") ())) );
      ( "array_multiplier",
        comb_design
          ~widths:[ ("a", 4, i); ("b", 4, i); ("product", 8, o) ]
          (fun top w ->
             ignore
               (Multiplier.array_mult top ~a:(w "a") ~b:(w "b")
                  ~product:(w "product") ())) );
      ( "signed_multiplier",
        comb_design
          ~widths:[ ("a", 4, i); ("b", 4, i); ("product", 8, o) ]
          (fun top w ->
             ignore
               (Multiplier.signed_mult top ~a:(w "a") ~b:(w "b")
                  ~product:(w "product") ())) );
      ( "misc_logic",
        comb_design
          ~widths:[ ("clk", 1, i); ("x", 8, i); ("amount", 3, i); ("y", 8, o);
                    ("idx", 3, o); ("valid", 1, o); ("lq", 8, o); ("gq", 4, o) ]
          (fun top w ->
             ignore
               (Misc_logic.lfsr top ~clk:(w "clk") ~taps:[ 8; 6; 5; 4 ]
                  ~q:(w "lq") ());
             ignore
               (Misc_logic.barrel_shift_left top ~x:(w "x")
                  ~amount:(w "amount") ~y:(w "y") ());
             ignore
               (Misc_logic.priority_encoder top ~x:(w "x") ~index:(w "idx")
                  ~valid:(w "valid") ());
             ignore
               (Misc_logic.gray_counter top ~clk:(w "clk") ~q:(w "gq") ())) ) ]

let test_generators_clean () =
  List.iter
    (fun (name, d) ->
       let report = Lint.run d in
       Alcotest.(check (list string))
         (name ^ " has no error-severity findings") []
         (List.map (fun diag -> diag.Lint.rule_id ^ ": " ^ diag.Lint.message)
            (Lint.errors report)))
    (generator_designs ())

(* {1 mutants: each defect trips its rule} *)

(* a net with two drivers, built with the opt-in contention flag *)
let contended_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let clash = Wire.create top ~name:"clash" 1 in
  let _ = Cell.prim top ~name:"d0" Prim.Buf ~conns:[ ("I", a); ("O", clash) ] in
  let _ =
    Cell.prim top ~name:"d1" ~allow_contention:true Prim.Buf
      ~conns:[ ("I", b); ("O", clash) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "clash" Types.Output clash;
  d

let test_multi_driver_rule () =
  let report = Lint.run (contended_design ()) in
  Alcotest.(check bool) "L001 fires" true (has_rule "L001" report);
  let diag =
    List.find (fun d -> d.Lint.rule_id = "L001") report.Lint.diagnostics
  in
  Alcotest.(check bool) "error severity" true (diag.Lint.severity = Lint.Error);
  Alcotest.(check bool) "names both drivers" true
    (contains ~needle:"top/d0.O" diag.Lint.message
     && contains ~needle:"top/d1.O" diag.Lint.message)

(* regression: the legacy validate/errors API must surface contention
   (it silently accepted multi-driven nets before the lint engine) *)
let test_multi_driver_legacy_validate () =
  let d = contended_design () in
  let contended =
    List.filter_map
      (function
        | Design.Contended_net { wire; drivers; _ } -> Some (wire, drivers)
        | _ -> None)
      (Design.validate d)
  in
  (match contended with
   | [ (wire, drivers) ] ->
     Alcotest.(check bool) "wire named" true (contains ~needle:"clash" wire);
     Alcotest.(check int) "two drivers" 2 (List.length drivers)
   | _ -> Alcotest.fail "expected exactly one Contended_net violation");
  Alcotest.(check bool) "errors includes contention" true
    (List.exists
       (function Design.Contended_net _ -> true | _ -> false)
       (Design.errors d))

(* an internal driver on a net also bound to a top-level input port *)
let test_input_port_contention () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let x = Wire.create top ~name:"x" 1 in
  let _ = Cell.prim top ~name:"drv" Prim.Buf ~conns:[ ("I", a); ("O", x) ] in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "x" Types.Input x;
  let report = Lint.run d in
  Alcotest.(check bool) "L001 fires" true (has_rule "L001" report);
  Alcotest.(check bool) "pseudo-driver named" true
    (List.exists
       (function
         | Design.Contended_net { drivers; _ } ->
           List.mem "top-level input port" drivers
         | _ -> false)
       (Design.validate d))

let clocked_mutant ~gate_clock () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let en = Wire.create top ~name:"en" 1 in
  let d_in = Wire.create top ~name:"d_in" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let ff_clk =
    if gate_clock then begin
      let gated = Wire.create top ~name:"gated" 1 in
      let _ =
        Cell.prim top ~name:"gate"
          (Prim.Lut (Lut_init.and_all ~inputs:2))
          ~conns:[ ("I0", clk); ("I1", en); ("O", gated) ]
      in
      gated
    end
    else clk
  in
  let _ =
    Cell.prim top ~name:"ff"
      (Prim.Ff
         { clock_enable = false; async_clear = false; sync_reset = false;
           init = Bit.Zero })
      ~conns:[ ("C", ff_clk); ("D", d_in); ("Q", q) ]
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "en" Types.Input en;
  Design.add_port d "d_in" Types.Input d_in;
  Design.add_port d "q" Types.Output q;
  d

let test_gated_clock_rule () =
  let report = Lint.run (clocked_mutant ~gate_clock:true ()) in
  Alcotest.(check bool) "L101 fires" true (has_rule "L101" report);
  let clean = Lint.run (clocked_mutant ~gate_clock:false ()) in
  Alcotest.(check bool) "ungated twin is clean" false (has_rule "L101" clean)

let test_dead_logic_rule () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let live = Wire.create top ~name:"live" 1 in
  let dead1 = Wire.create top ~name:"dead1" 1 in
  let dead2 = Wire.create top ~name:"dead2" 1 in
  let _ = Cell.prim top ~name:"keep" Prim.Inv ~conns:[ ("I", a); ("O", live) ] in
  (* a two-cell cone reaching no output *)
  let _ = Cell.prim top ~name:"lost1" Prim.Inv ~conns:[ ("I", a); ("O", dead1) ] in
  let _ =
    Cell.prim top ~name:"lost2" Prim.Buf ~conns:[ ("I", dead1); ("O", dead2) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "live" Types.Output live;
  Design.add_port d "dead2" Types.Output dead2;
  (* dead2 exposed: nothing is dead *)
  Alcotest.(check bool) "cone reaching a port is live" false
    (has_rule "L008" (Lint.run d));
  (* rebuild without exposing the cone *)
  let top2 = Cell.root ~name:"top" () in
  let a2 = Wire.create top2 ~name:"a" 1 in
  let live2 = Wire.create top2 ~name:"live" 1 in
  let dead1' = Wire.create top2 ~name:"dead1" 1 in
  let dead2' = Wire.create top2 ~name:"dead2" 1 in
  let _ = Cell.prim top2 ~name:"keep" Prim.Inv ~conns:[ ("I", a2); ("O", live2) ] in
  let _ = Cell.prim top2 ~name:"lost1" Prim.Inv ~conns:[ ("I", a2); ("O", dead1') ] in
  let _ =
    Cell.prim top2 ~name:"lost2" Prim.Buf ~conns:[ ("I", dead1'); ("O", dead2') ]
  in
  let d2 = Design.create top2 in
  Design.add_port d2 "a" Types.Input a2;
  Design.add_port d2 "live" Types.Output live2;
  let report = Lint.run d2 in
  Alcotest.(check bool) "L008 fires" true (has_rule "L008" report);
  let diag =
    List.find (fun x -> x.Lint.rule_id = "L008") report.Lint.diagnostics
  in
  Alcotest.(check (list string)) "both cells of the cone listed"
    [ "top/lost1"; "top/lost2" ]
    (List.sort compare diag.Lint.cells)

(* {1 constant propagation} *)

let test_const_prop_stuck_ff () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let zero = Wire.create top ~name:"zero" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let _ = Cell.prim top ~name:"gnd" Prim.Gnd ~conns:[ ("G", zero) ] in
  let _ =
    Cell.prim top ~name:"ff"
      (Prim.Ff
         { clock_enable = false; async_clear = false; sync_reset = false;
           init = Bit.Zero })
      ~conns:[ ("C", clk); ("D", zero); ("Q", q) ]
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let cp = Const_prop.analyze d in
  Alcotest.(check bool) "Q is constant zero" true
    (Const_prop.equal_value
       (Const_prop.net_value cp (Wire.nets q).(0))
       (Const_prop.Const Bit.Zero));
  let report = Lint.run d in
  Alcotest.(check bool) "L006 fires" true (has_rule "L006" report)

let test_const_prop_lut_fold () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let o = Wire.create top ~name:"o" 1 in
  (* x AND (NOT x) through one LUT2 with both inputs tied together *)
  let init = Lut_init.of_function ~inputs:2 (fun addr -> addr = 1) in
  let _ =
    Cell.prim top ~name:"l" (Prim.Lut init)
      ~conns:[ ("I0", a); ("I1", a); ("O", o) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  (* entries 01 and 10 are never addressed; with I0 = I1 the LUT only
     sees 00 and 11, both mapping to 0 — but the pessimistic analysis
     cannot see the correlation, so it must NOT claim constness *)
  let cp = Const_prop.analyze d in
  Alcotest.(check bool) "correlated inputs stay Varies" true
    (Const_prop.equal_value
       (Const_prop.net_value cp (Wire.nets o).(0))
       Const_prop.Varies);
  (* a genuinely constant LUT is claimed *)
  let top2 = Cell.root ~name:"top" () in
  let a2 = Wire.create top2 ~name:"a" 1 in
  let o2 = Wire.create top2 ~name:"o" 1 in
  let _ =
    Cell.prim top2 ~name:"l"
      (Prim.Lut (Lut_init.const_true ~inputs:1))
      ~conns:[ ("I0", a2); ("O", o2) ]
  in
  let d2 = Design.create top2 in
  Design.add_port d2 "a" Types.Input a2;
  Design.add_port d2 "o" Types.Output o2;
  let report = Lint.run d2 in
  Alcotest.(check bool) "L007 fires on const-true LUT" true
    (has_rule "L007" report)

(* {1 clock, identifier and placement rules} *)

let test_clock_as_data_and_roots () =
  let top = Cell.root ~name:"top" () in
  let clk1 = Wire.create top ~name:"clk1" 1 in
  let clk2 = Wire.create top ~name:"clk2" 1 in
  let d_in = Wire.create top ~name:"d_in" 1 in
  let q1 = Wire.create top ~name:"q1" 1 in
  let q2 = Wire.create top ~name:"q2" 1 in
  let leak = Wire.create top ~name:"leak" 1 in
  let ff init_clk name q =
    ignore
      (Cell.prim top ~name
         (Prim.Ff
            { clock_enable = false; async_clear = false; sync_reset = false;
              init = Bit.Zero })
         ~conns:[ ("C", init_clk); ("D", d_in); ("Q", q) ])
  in
  ff clk1 "ff1" q1;
  ff clk2 "ff2" q2;
  (* clk1 also feeds combinational logic *)
  let _ = Cell.prim top ~name:"sniff" Prim.Inv ~conns:[ ("I", clk1); ("O", leak) ] in
  let d = Design.create top in
  Design.add_port d "clk1" Types.Input clk1;
  Design.add_port d "clk2" Types.Input clk2;
  Design.add_port d "d_in" Types.Input d_in;
  Design.add_port d "q1" Types.Output q1;
  Design.add_port d "q2" Types.Output q2;
  Design.add_port d "leak" Types.Output leak;
  let report = Lint.run d in
  Alcotest.(check bool) "L102 multiple roots" true (has_rule "L102" report);
  Alcotest.(check bool) "L103 clock as data" true (has_rule "L103" report)

let test_identifier_rules () =
  let top = Cell.root ~name:"top" () in
  (* distinct names that collide after VHDL case folding *)
  let _sig1 = Wire.create top ~name:"Data" 1 in
  let _sig2 = Wire.create top ~name:"data" 1 in
  (* a VHDL/Verilog reserved word as a wire name *)
  let _sig3 = Wire.create top ~name:"signal" 1 in
  let d = Design.create top in
  let report = Lint.run d in
  Alcotest.(check bool) "L301 collision" true (has_rule "L301" report);
  Alcotest.(check bool) "L302 keyword" true (has_rule "L302" report)

let test_placement_rules () =
  let mk () =
    let top = Cell.root ~name:"top" () in
    let a = Wire.create top ~name:"a" 1 in
    let x = Wire.create top ~name:"x" 1 in
    let y = Wire.create top ~name:"y" 1 in
    let z = Wire.create top ~name:"z" 1 in
    let l1 = Cell.prim top ~name:"l1" Prim.Inv ~conns:[ ("I", a); ("O", x) ] in
    let l2 = Cell.prim top ~name:"l2" Prim.Inv ~conns:[ ("I", a); ("O", y) ] in
    let l3 = Cell.prim top ~name:"l3" Prim.Inv ~conns:[ ("I", a); ("O", z) ] in
    let d = Design.create top in
    Design.add_port d "a" Types.Input a;
    Design.add_port d "x" Types.Output x;
    Design.add_port d "y" Types.Output y;
    Design.add_port d "z" Types.Output z;
    (d, l1, l2, l3)
  in
  (* three inverters on one LUT site (capacity 2) *)
  let d, l1, l2, l3 = mk () in
  Cell.set_rloc l1 ~row:0 ~col:0;
  Cell.set_rloc l2 ~row:0 ~col:0;
  Cell.set_rloc l3 ~row:0 ~col:0;
  Alcotest.(check bool) "L401 fires" true (has_rule "L401" (Lint.run d));
  (* a negative coordinate *)
  let d2, m1, m2, m3 = mk () in
  Cell.set_rloc m1 ~row:0 ~col:0;
  Cell.set_rloc m2 ~row:1 ~col:0;
  Cell.set_rloc m3 ~row:(-1) ~col:0;
  Alcotest.(check bool) "L402 fires" true (has_rule "L402" (Lint.run d2));
  (* grid bounds via config *)
  let d3, n1, n2, n3 = mk () in
  Cell.set_rloc n1 ~row:0 ~col:0;
  Cell.set_rloc n2 ~row:1 ~col:0;
  Cell.set_rloc n3 ~row:5 ~col:0;
  let config = { Lint.default_config with Lint.grid = Some (4, 4) } in
  Alcotest.(check bool) "L402 respects grid" true
    (has_rule "L402" (Lint.run ~config d3));
  (* partially placed designs are skipped *)
  let d4, p1, _, _ = mk () in
  Cell.set_rloc p1 ~row:0 ~col:0;
  Alcotest.(check bool) "partial placement skipped" false
    (has_rule "L402" (Lint.run ~config:{ config with Lint.grid = Some (0, 0) } d4))

(* {1 shared levelization: all three cycle detectors agree} *)

let loop_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let _ = Cell.prim top ~name:"i1" Prim.Inv ~conns:[ ("I", a); ("O", b) ] in
  let _ = Cell.prim top ~name:"i2" Prim.Inv ~conns:[ ("I", b); ("O", a) ] in
  let d = Design.create top in
  Design.add_port d "a" Types.Output a;
  d

let test_cycle_detectors_agree () =
  let d = loop_design () in
  let from_validate =
    List.find_map
      (function Design.Combinational_loop { cells } -> Some cells | _ -> None)
      (Design.validate d)
  in
  let from_sim =
    try
      ignore (Simulator.create d);
      None
    with Simulator.Combinational_cycle cells -> Some cells
  in
  let from_estimate =
    try
      ignore (Estimate.timing_of_design d);
      None
    with Estimate.Combinational_cycle_timing cells -> Some cells
  in
  let from_lint =
    let report = Lint.run d in
    Option.map
      (fun diag -> diag.Lint.cells)
      (List.find_opt (fun x -> x.Lint.rule_id = "L005") report.Lint.diagnostics)
  in
  match from_validate, from_sim, from_estimate, from_lint with
  | Some v, Some s, Some e, Some l ->
    Alcotest.(check (list string)) "simulator agrees" v s;
    Alcotest.(check (list string)) "estimator agrees" v e;
    Alcotest.(check (list string)) "lint agrees" v l
  | _ -> Alcotest.fail "every detector must report the loop"

(* {1 engine configuration and rendering} *)

let test_config_filtering () =
  let d = contended_design () in
  let off = Lint.run ~config:{ Lint.default_config with Lint.disabled = [ "L001" ] } d in
  Alcotest.(check bool) "disabled rule is silent" false (has_rule "L001" off);
  let only =
    Lint.run ~config:{ Lint.default_config with Lint.only = Some [ "L001" ] } d
  in
  Alcotest.(check (list string)) "only runs the named rule" [ "L001" ]
    (rule_ids only);
  let demoted =
    Lint.run
      ~config:{ Lint.default_config with Lint.overrides = [ ("L001", Lint.Info) ] }
      d
  in
  let diag =
    List.find (fun x -> x.Lint.rule_id = "L001") demoted.Lint.diagnostics
  in
  Alcotest.(check bool) "override demotes severity" true
    (diag.Lint.severity = Lint.Info);
  (* the cap needs a design with more than one finding: two contended nets *)
  let noisy =
    let top = Cell.root ~name:"top" () in
    let a = Wire.create top ~name:"a" 1 in
    let c1 = Wire.create top ~name:"c1" 1 in
    let c2 = Wire.create top ~name:"c2" 1 in
    let _ = Cell.prim top ~name:"p0" Prim.Buf ~conns:[ ("I", a); ("O", c1) ] in
    let _ =
      Cell.prim top ~name:"p1" ~allow_contention:true Prim.Buf
        ~conns:[ ("I", a); ("O", c1) ]
    in
    let _ = Cell.prim top ~name:"q0" Prim.Buf ~conns:[ ("I", a); ("O", c2) ] in
    let _ =
      Cell.prim top ~name:"q1" ~allow_contention:true Prim.Buf
        ~conns:[ ("I", a); ("O", c2) ]
    in
    let d = Design.create top in
    Design.add_port d "a" Types.Input a;
    Design.add_port d "c1" Types.Output c1;
    Design.add_port d "c2" Types.Output c2;
    d
  in
  let capped =
    Lint.run ~config:{ Lint.default_config with Lint.max_diagnostics = 1 } noisy
  in
  Alcotest.(check int) "cap keeps one" 1 (List.length capped.Lint.diagnostics);
  Alcotest.(check bool) "dropped counted" true (capped.Lint.dropped > 0)

let test_fanout_threshold () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let outs = Wire.create top ~name:"outs" 4 in
  for k = 0 to 3 do
    ignore
      (Cell.prim top
         ~name:(Printf.sprintf "inv%d" k)
         Prim.Inv
         ~conns:[ ("I", a); ("O", Wire.bit outs k) ])
  done;
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "outs" Types.Output outs;
  let config = { Lint.default_config with Lint.fanout_threshold = 3 } in
  Alcotest.(check bool) "L203 above threshold" true
    (has_rule "L203" (Lint.run ~config d));
  Alcotest.(check bool) "default threshold is quiet" false
    (has_rule "L203" (Lint.run d))

let test_json_shape () =
  let report = Lint.run (contended_design ()) in
  let json = Lint.to_json report in
  Alcotest.(check bool) "design field" true
    (contains ~needle:"\"design\": \"top\"" json);
  Alcotest.(check bool) "summary field" true
    (contains ~needle:"\"summary\": {\"errors\": 1," json);
  Alcotest.(check bool) "rule field" true
    (contains ~needle:"{\"rule\": \"L001\", \"name\": \"multi-driven-net\", \"severity\": \"error\"" json);
  (* one object per diagnostic per line *)
  let diag_lines =
    List.filter
      (fun line -> contains ~needle:"{\"rule\":" line)
      (String.split_on_char '\n' json)
  in
  Alcotest.(check int) "one line per diagnostic"
    (List.length report.Lint.diagnostics)
    (List.length diag_lines);
  (* the baseline key is rule id plus primary location *)
  let diag =
    List.find (fun x -> x.Lint.rule_id = "L001") report.Lint.diagnostics
  in
  Alcotest.(check string) "stable key" "L001 top/clash[0]" (Lint.key diag)

let test_registry_lookup () =
  Alcotest.(check int) "eighteen rules" 18 (List.length Lint.rules);
  (match Lint.find_rule "L101" with
   | Some info ->
     Alcotest.(check string) "name" "gated-clock" info.Lint.name;
     Alcotest.(check bool) "severity" true (info.Lint.default_severity = Lint.Error)
   | None -> Alcotest.fail "L101 must exist");
  Alcotest.(check bool) "unknown id" true (Lint.find_rule "L999" = None)

let test_publish_gate () =
  let module Server = Jhdl_webserver.Server in
  let server = Server.create ~vendor:"lab" () in
  (match Server.publish_checked server Catalog.kcm with
   | Ok 1 -> ()
   | Ok v -> Alcotest.fail (Printf.sprintf "expected version 1, got %d" v)
   | Error m -> Alcotest.fail m);
  (* an IP whose design carries an error-severity finding is refused *)
  let bad =
    { Catalog.kcm with
      Ip_module.ip_name = "BadIp";
      build = (fun _ -> { Ip_module.design = contended_design ();
                          clock_port = None; latency = 0; notes = [] }) }
  in
  (match Server.publish_checked server bad with
   | Ok _ -> Alcotest.fail "lint gate must refuse the contended design"
   | Error m ->
     Alcotest.(check bool) "refusal names the rule" true
       (contains ~needle:"L001" m));
  Alcotest.(check (list (pair string int))) "catalog untouched by refusal"
    [ ("VirtexKCMMultiplier", 1) ]
    (Server.catalog server);
  Alcotest.(check bool) "publish raises on refusal" true
    (try
       ignore (Server.publish server bad);
       false
     with Invalid_argument _ -> true)

let test_catalog_lint_summary () =
  let summary = Catalog.lint_summary Catalog.counter in
  Alcotest.(check bool) "counts present" true
    (contains ~needle:"0 error(s)" summary)

let suite =
  [ Alcotest.test_case "generators lint clean" `Quick test_generators_clean;
    Alcotest.test_case "multi-driver rule" `Quick test_multi_driver_rule;
    Alcotest.test_case "legacy validate reports contention" `Quick
      test_multi_driver_legacy_validate;
    Alcotest.test_case "input-port contention" `Quick test_input_port_contention;
    Alcotest.test_case "gated clock rule" `Quick test_gated_clock_rule;
    Alcotest.test_case "dead logic rule" `Quick test_dead_logic_rule;
    Alcotest.test_case "const-prop stuck flip-flop" `Quick
      test_const_prop_stuck_ff;
    Alcotest.test_case "const-prop LUT folding" `Quick test_const_prop_lut_fold;
    Alcotest.test_case "clock roots and clock-as-data" `Quick
      test_clock_as_data_and_roots;
    Alcotest.test_case "identifier rules" `Quick test_identifier_rules;
    Alcotest.test_case "placement rules" `Quick test_placement_rules;
    Alcotest.test_case "cycle detectors agree" `Quick test_cycle_detectors_agree;
    Alcotest.test_case "config filtering" `Quick test_config_filtering;
    Alcotest.test_case "fanout threshold" `Quick test_fanout_threshold;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "publish lint gate" `Quick test_publish_gate;
    Alcotest.test_case "catalog lint summary" `Quick test_catalog_lint_summary ]
