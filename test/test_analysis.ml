(* Formal analysis engine tests: hash-consing invariants, budget
   behaviour, the Const_prop pessimisms the BDD layer resolves, the
   deep lint rules, and a seeded corpus pinning BDD cone evaluation to
   the compiled simulation kernel. *)

module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Types = Jhdl_circuit.Types
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Bdd = Jhdl_analysis.Bdd
module Cone = Jhdl_analysis.Cone
module Absint = Jhdl_analysis.Absint
module Deep_lint = Jhdl_analysis.Deep_lint
module Lint = Jhdl_lint.Lint
module Const_prop = Jhdl_lint.Const_prop
module Simulator = Jhdl_sim.Simulator
module Snapshot = Jhdl_sim.Snapshot
module Kcm = Jhdl_modgen.Kcm
module Gen = Jhdl_fuzz.Gen
module Recipe = Jhdl_fuzz.Recipe
module Stimulus = Jhdl_fuzz.Stimulus
module Fuzz = Jhdl_fuzz.Fuzz

(* ------------------------------------------------------------------ *)
(* Hash-consing and the node table                                     *)

let test_hash_consing () =
  let m = Bdd.create () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "x&y == y&x" true
    (Bdd.equal (Bdd.and_ m x y) (Bdd.and_ m y x));
  Alcotest.(check bool) "x^x == 0" true (Bdd.equal (Bdd.xor m x x) Bdd.zero);
  Alcotest.(check bool) "~~x == x" true
    (Bdd.equal (Bdd.not_ m (Bdd.not_ m x)) x);
  Alcotest.(check bool) "ite(x,1,0) == x" true
    (Bdd.equal (Bdd.ite m x Bdd.one Bdd.zero) x);
  let before = Bdd.nodes_created m in
  let a = Bdd.or_ m (Bdd.and_ m x y) (Bdd.xor m x y) in
  let b = Bdd.or_ m (Bdd.and_ m x y) (Bdd.xor m x y) in
  Alcotest.(check bool) "rebuilt expression is the same node" true
    (Bdd.equal a b);
  let after_first = Bdd.nodes_created m in
  Alcotest.(check bool) "first build allocates" true (after_first > before);
  (* everything the second build needs is already in the tables *)
  Alcotest.(check int) "second build allocates nothing" after_first
    (Bdd.nodes_created m)

let test_memo_hit_rate_deterministic () =
  (* an xor chain exercises the memo cache; counters must replay
     exactly across fresh managers — CI pins determinism here *)
  let build () =
    let m = Bdd.create () in
    let acc = ref Bdd.zero in
    for i = 0 to 15 do
      acc := Bdd.xor m !acc (Bdd.var m i)
    done;
    for i = 0 to 15 do
      acc := Bdd.and_ m !acc (Bdd.or_ m (Bdd.var m i) (Bdd.var m ((i + 1) mod 16)))
    done;
    (Bdd.nodes_created m, Bdd.cache_lookups m, Bdd.cache_hits m)
  in
  let n1, l1, h1 = build () in
  let n2, l2, h2 = build () in
  Alcotest.(check int) "nodes replay" n1 n2;
  Alcotest.(check int) "lookups replay" l1 l2;
  Alcotest.(check int) "hits replay" h1 h2;
  Alcotest.(check bool) "cache is doing work" true (h1 > 0)

let test_budget_exceeded () =
  let m = Bdd.create ~budget:8 () in
  (* vars are budget-exempt (opaque cuts must always be expressible) *)
  let vars = Array.init 16 (fun i -> Bdd.var m (2 * i)) in
  Alcotest.check_raises "apply overflows the node budget"
    Bdd.Budget_exceeded (fun () ->
      ignore
        (Array.fold_left
           (fun acc v -> Bdd.or_ m (Bdd.and_ m acc v) (Bdd.xor m acc v))
           (Bdd.var m 1) vars))

let wide_xor_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 8 in
  let o = Wire.create top ~name:"o" 1 in
  let stage = Wire.create top ~name:"stage" 4 in
  for i = 0 to 3 do
    let _ =
      Cell.prim top
        ~name:(Printf.sprintf "x%d" i)
        (Prim.Lut (Lut_init.xor_all ~inputs:2))
        ~conns:
          [ ("I0", Wire.bit a (2 * i));
            ("I1", Wire.bit a ((2 * i) + 1));
            ("O", Wire.bit stage i) ]
    in
    ()
  done;
  let _ =
    Cell.prim top ~name:"fin"
      (Prim.Lut (Lut_init.xor_all ~inputs:4))
      ~conns:
        [ ("I0", Wire.bit stage 0);
          ("I1", Wire.bit stage 1);
          ("I2", Wire.bit stage 2);
          ("I3", Wire.bit stage 3);
          ("O", o) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  d

let test_budget_cuts_degrade_gracefully () =
  let d = wide_xor_design () in
  let tight = Cone.analyze ~budget:6 d in
  Alcotest.(check bool) "tight budget cuts" true (Cone.cuts tight > 0);
  Alcotest.(check bool) "cuts become opaque leaves" true
    (Cone.opaque_leaves tight > 0);
  let roomy = Cone.analyze d in
  Alcotest.(check int) "no cuts with room" 0 (Cone.cuts roomy);
  Alcotest.(check int) "no opaque leaves with room" 0
    (Cone.opaque_leaves roomy)

(* ------------------------------------------------------------------ *)
(* The Const_prop pessimisms, resolved                                 *)

let output_net d name =
  match Design.find_port d name with
  | Some p -> p.Design.port_wire.Types.nets.(0)
  | None -> Alcotest.failf "design lost port %s" name

let x_xor_x_design () =
  let top = Cell.root ~name:"top" () in
  let x = Wire.create top ~name:"x" 1 in
  let o = Wire.create top ~name:"o" 1 in
  let _ =
    Cell.prim top ~name:"xx"
      (Prim.Lut (Lut_init.xor_all ~inputs:2))
      ~conns:[ ("I0", x); ("I1", x); ("O", o) ]
  in
  let d = Design.create top in
  Design.add_port d "x" Types.Input x;
  Design.add_port d "o" Types.Output o;
  d

let test_x_xor_x () =
  let d = x_xor_x_design () in
  let o = output_net d "o" in
  (* pessimistic in the lint layer... *)
  (match Const_prop.net_value (Const_prop.analyze d) o with
   | Const_prop.Varies -> ()
   | Const_prop.Const b ->
     Alcotest.failf "Const_prop unexpectedly proves %c" (Bit.to_char b));
  (* ...proved in the analysis layer: 0 whenever x is defined (an X
     input still yields X, so the claim is the gated one) *)
  let absint = Absint.analyze d in
  (match Absint.claim_of_net absint o with
   | Some (Absint.When_defined Bit.Zero) -> ()
   | Some (Absint.Always b) ->
     Alcotest.failf "claim too strong: always %c (X^X is X)" (Bit.to_char b)
   | _ -> Alcotest.fail "no constancy claim for x XOR x");
  (* and surfaced as L501 by the deep rules *)
  let report = Deep_lint.run d in
  Alcotest.(check bool) "L501 fires" true
    (List.exists
       (fun (di : Lint.diagnostic) -> di.Lint.rule_id = "L501")
       report.Lint.diagnostics)

let equal_arm_mux_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let s = Wire.create top ~name:"s" 1 in
  let si = Wire.create top ~name:"si" 1 in
  let o = Wire.create top ~name:"o" 1 in
  let _ = Cell.prim top ~name:"inv_s" Prim.Inv ~conns:[ ("I", s); ("O", si) ] in
  let _ =
    Cell.prim top ~name:"mux" Prim.Muxcy
      ~conns:[ ("S", si); ("DI", a); ("CI", a); ("O", o) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "s" Types.Input s;
  Design.add_port d "o" Types.Output o;
  d

let test_equal_arm_mux () =
  let d = equal_arm_mux_design () in
  let o = output_net d "o" in
  (* not constant, so Const_prop has nothing to say either way... *)
  (match Const_prop.net_value (Const_prop.analyze d) o with
   | Const_prop.Varies -> ()
   | Const_prop.Const b ->
     Alcotest.failf "Const_prop unexpectedly proves %c" (Bit.to_char b));
  let absint = Absint.analyze d in
  (* ...but the cone proves o IS a: the select leg cancels out *)
  let defined = Absint.cone_defined absint in
  let po = Cone.pair_of_net defined o in
  let pa = Cone.pair_of_net defined (output_net d "a") in
  Alcotest.(check bool) "mux(s,a,a) == a (plane 0)" true
    (Bdd.equal po.Cone.p0 pa.Cone.p0);
  Alcotest.(check bool) "mux(s,a,a) == a (plane 1)" true
    (Bdd.equal po.Cone.p1 pa.Cone.p1);
  (* the select inverter is provably unobservable *)
  let report = Deep_lint.run d in
  Alcotest.(check bool) "L503 flags the select leg" true
    (List.exists
       (fun (di : Lint.diagnostic) ->
          di.Lint.rule_id = "L503"
          && List.mem "top/inv_s" di.Lint.cells)
       report.Lint.diagnostics)

let test_redundant_pair_lint () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let o1 = Wire.create top ~name:"o1" 1 in
  let o2 = Wire.create top ~name:"o2" 1 in
  let and2 = Prim.Lut (Lut_init.and_all ~inputs:2) in
  let _ =
    Cell.prim top ~name:"g1" and2 ~conns:[ ("I0", a); ("I1", b); ("O", o1) ]
  in
  let _ =
    (* same function, pins swapped — structurally different, BDD-equal *)
    Cell.prim top ~name:"g2" and2 ~conns:[ ("I0", b); ("I1", a); ("O", o2) ]
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "o1" Types.Output o1;
  Design.add_port d "o2" Types.Output o2;
  let report = Deep_lint.run d in
  match
    List.find_opt
      (fun (di : Lint.diagnostic) -> di.Lint.rule_id = "L502")
      report.Lint.diagnostics
  with
  | Some di ->
    Alcotest.(check (list string)) "both gates named"
      [ "top/g1"; "top/g2" ] di.Lint.cells
  | None -> Alcotest.fail "L502 did not fire on a redundant pair"

(* ------------------------------------------------------------------ *)
(* Absint dominates Const_prop on the KCM                              *)

let kcm_design () =
  let top = Cell.root ~name:"top" () in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 15 in
  let _ =
    Kcm.create top ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  d

let test_absint_dominates_const_prop () =
  let d = kcm_design () in
  let cp = Const_prop.analyze d in
  let absint = Absint.analyze d in
  let cp_consts = ref 0 and extra = ref 0 in
  List.iter
    (fun (n : Types.net) ->
       if n.Types.driver <> None && n.Types.extra_drivers = [] then
         match (Const_prop.net_value cp n, Absint.claim_of_net absint n) with
         | Const_prop.Const b, claim ->
           incr cp_consts;
           (* strict domination: everything Const_prop proves, the
              abstract interpreter proves too (possibly gated) *)
           (match claim with
            | Some (Absint.Always b') | Some (Absint.When_defined b') ->
              if not (Bit.equal b b') then
                Alcotest.failf "net %d: Const_prop %c vs claim %c"
                  n.Types.net_id (Bit.to_char b) (Bit.to_char b')
            | None ->
              Alcotest.failf "net %d: Const_prop proves %c, no claim"
                n.Types.net_id (Bit.to_char b))
         | Const_prop.Varies, Some _ -> incr extra
         | Const_prop.Varies, None -> ())
    (Design.all_nets d);
  Alcotest.(check bool) "Const_prop proves something here" true
    (!cp_consts > 0);
  Alcotest.(check bool) "and the BDD layer strictly more" true (!extra > 0)

(* ------------------------------------------------------------------ *)
(* Cone evaluation vs the compiled kernel, over a seeded corpus        *)

let leaf_env design image inputs_tbl =
  ignore design;
  fun leaf ->
    match leaf with
    | Cone.Input { port; bit } ->
      (match Hashtbl.find_opt inputs_tbl port with
       | Some v when bit < Bits.width v -> Bits.get v bit
       | _ -> Bit.X)
    | Cone.State { key } ->
      (match String.rindex_opt key '#' with
       | None -> Bit.X
       | Some i ->
         let path = String.sub key 0 i in
         let cell =
           int_of_string (String.sub key (i + 1) (String.length key - i - 1))
         in
         (match List.assoc_opt path image.Snapshot.image_seq with
          | Some (Snapshot.Flop code) when cell = 0 -> Bit.of_code code
          | Some (Snapshot.Mem bytes) when cell < Bytes.length bytes ->
            Bit.of_code (Char.code (Bytes.get bytes cell))
          | _ -> Bit.X))
    | Cone.Opaque _ -> Bit.X

let check_cone_vs_kernel ~seed =
  let rng_gen, rng_stim = Fuzz.case_rngs ~seed:90125 ~case:seed in
  let params = { Gen.default_params with Gen.max_cells = 12; max_inputs = 4 } in
  let recipe = Gen.recipe rng_gen ~name:(Printf.sprintf "corpus%d" seed) params in
  let stim = Gen.stimulus rng_stim recipe ~steps:3 in
  let built = Recipe.build recipe in
  let design = built.Recipe.design in
  let cone = Cone.analyze ~mode:Cone.Full design in
  if Cone.opaque_leaves cone > 0 then
    Alcotest.failf "seed %d: unexpected opaque leaves" seed;
  let dut = Simulator.create ?clock:built.Recipe.clock design in
  let inputs_tbl = Hashtbl.create 8 in
  let compare_moment ctx =
    let image = Snapshot.decode (Simulator.snapshot dut) in
    let env = leaf_env design image inputs_tbl in
    List.iter
      (fun (port, pairs) ->
         match Design.find_port design port with
         | None -> ()
         | Some p ->
           let sim = Simulator.get dut p.Design.port_wire in
           Array.iteri
             (fun bit pair ->
                let expect = Cone.eval_pair cone pair env in
                let actual = Bits.get sim bit in
                if expect <> actual then
                  Alcotest.failf "seed %d %s: %s[%d] cone=%c kernel=%c" seed
                    ctx port bit (Bit.to_char expect) (Bit.to_char actual))
             pairs)
      (Cone.output_pairs cone)
  in
  compare_moment "initial";
  Array.iteri
    (fun step row ->
       let stimulus =
         List.mapi (fun k port -> (port, row.(k))) built.Recipe.input_ports
       in
       Simulator.set_inputs dut stimulus;
       List.iter (fun (p, v) -> Hashtbl.replace inputs_tbl p v) stimulus;
       compare_moment (Printf.sprintf "step %d settle" step);
       Simulator.cycle dut;
       compare_moment (Printf.sprintf "step %d edge" step))
    stim.Stimulus.steps

let corpus_property =
  QCheck.Test.make ~count:200 ~name:"cone eval = kernel (200-seed corpus)"
    (QCheck.make (QCheck.Gen.int_bound 199))
    (fun seed ->
       check_cone_vs_kernel ~seed;
       true)

let test_corpus_exhaustive () =
  (* qcheck samples the space; this sweeps it — all 200 seeds, fixed *)
  for seed = 0 to 199 do
    check_cone_vs_kernel ~seed
  done

let suite =
  [ Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "memo counters deterministic" `Quick
      test_memo_hit_rate_deterministic;
    Alcotest.test_case "budget exceeded" `Quick test_budget_exceeded;
    Alcotest.test_case "budget cuts degrade" `Quick
      test_budget_cuts_degrade_gracefully;
    Alcotest.test_case "x xor x" `Quick test_x_xor_x;
    Alcotest.test_case "equal-arm mux" `Quick test_equal_arm_mux;
    Alcotest.test_case "redundant pair lint" `Quick test_redundant_pair_lint;
    Alcotest.test_case "absint dominates const_prop" `Quick
      test_absint_dominates_const_prop;
    QCheck_alcotest.to_alcotest corpus_property;
    Alcotest.test_case "corpus sweep" `Slow test_corpus_exhaustive ]
