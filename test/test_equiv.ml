(* Equivalence-checker tests: true positives, true negatives,
   interface checks, sequential comparison, and the flagship use — the
   KCM chain vs tree structures proven equivalent. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Equiv = Jhdl_verify.Equiv
module Adders = Jhdl_modgen.Adders
module Kcm = Jhdl_modgen.Kcm
module Counter = Jhdl_modgen.Counter

let adder_design builder =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 6 in
  let b = Wire.create top ~name:"b" 6 in
  let sum = Wire.create top ~name:"sum" 6 in
  let _ = builder top ~a ~b ~sum in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "sum" Types.Output sum;
  d

let test_equivalent_adders () =
  let ripple =
    adder_design (fun top ~a ~b ~sum -> Adders.ripple_carry top ~a ~b ~sum ())
  in
  let carry =
    adder_design (fun top ~a ~b ~sum -> Adders.carry_chain top ~a ~b ~sum ())
  in
  (* the proof path settles it without a single vector *)
  (match Equiv.check ripple carry with
   | Equiv.Proved { outputs; sequential; _ } ->
     Alcotest.(check int) "6 output bits" 6 outputs;
     Alcotest.(check bool) "combinational proof" false sequential
   | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other);
  (* and the exhaustive batch sweep, forced, agrees *)
  match Equiv.check ~strategy:`Sweep ripple carry with
  | Equiv.Equivalent { vectors; exhaustive } ->
    Alcotest.(check bool) "exhaustive at 12 bits" true exhaustive;
    Alcotest.(check int) "4096 vectors" 4096 vectors
  | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other

let test_detects_difference () =
  let adder =
    adder_design (fun top ~a ~b ~sum -> Adders.carry_chain top ~a ~b ~sum ())
  in
  let subtractor =
    adder_design (fun top ~a ~b ~sum -> Adders.subtractor top ~a ~b ~diff:sum ())
  in
  match Equiv.check adder subtractor with
  | Equiv.Not_equivalent m ->
    Alcotest.(check string) "on the sum port" "sum" m.Equiv.port
  | other -> Alcotest.failf "expected mismatch, got %a" (fun fmt -> Equiv.pp_result fmt) other

let test_interface_mismatch () =
  let six =
    adder_design (fun top ~a ~b ~sum -> Adders.carry_chain top ~a ~b ~sum ())
  in
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 8 in
  let b = Wire.create top ~name:"b" 8 in
  let sum = Wire.create top ~name:"sum" 8 in
  let _ = Adders.carry_chain top ~a ~b ~sum () in
  let eight = Design.create top in
  Design.add_port eight "a" Types.Input a;
  Design.add_port eight "b" Types.Input b;
  Design.add_port eight "sum" Types.Output sum;
  match Equiv.check six eight with
  | Equiv.Interface_mismatch _ -> ()
  | other -> Alcotest.failf "expected interface mismatch, got %a" (fun fmt -> Equiv.pp_result fmt) other

let kcm_design ~structure () =
  let top = Cell.root ~name:"top" () in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 15 in
  let _ =
    Kcm.create top ~adder_structure:structure ~multiplicand:m ~product:p
      ~signed_mode:true ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  d

let test_kcm_chain_tree_equivalent () =
  (* the flagship: chain-structured vs tree-structured KCM, PROVED *)
  (match Equiv.check (kcm_design ~structure:`Chain ()) (kcm_design ~structure:`Tree ()) with
   | Equiv.Proved { outputs = 15; sequential = false; _ } -> ()
   | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other);
  match
    Equiv.check ~strategy:`Sweep (kcm_design ~structure:`Chain ())
      (kcm_design ~structure:`Tree ())
  with
  | Equiv.Equivalent { vectors = 256; exhaustive = true } -> ()
  | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other

let counter_design ~width () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Counter.up_counter top ~clk ~q () in
  ignore width;
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  d

let gray_as_binary_design () =
  (* a counter that diverges from the plain binary counter over time *)
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Jhdl_modgen.Misc_logic.gray_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  d

let test_sequential_equivalence () =
  match
    Equiv.check ~cycles_per_vector:10
      (counter_design ~width:4 ())
      (counter_design ~width:4 ())
  with
  | Equiv.Proved { sequential = true; _ } -> ()
  | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other

let test_sequential_divergence_found () =
  match
    Equiv.check ~cycles_per_vector:10
      (counter_design ~width:4 ())
      (gray_as_binary_design ())
  with
  | Equiv.Not_equivalent m ->
    (* binary and gray agree at 0 and 1, diverge at the second edge *)
    Alcotest.(check bool) "diverges at a later cycle" true (m.Equiv.cycle >= 2)
  | other -> Alcotest.failf "expected divergence, got %a" (fun fmt -> Equiv.pp_result fmt) other

let test_random_sweep_on_wide_inputs () =
  let wide builder =
    let top = Cell.root ~name:"top" () in
    let a = Wire.create top ~name:"a" 12 in
    let b = Wire.create top ~name:"b" 12 in
    let sum = Wire.create top ~name:"sum" 12 in
    let _ = builder top ~a ~b ~sum in
    let d = Design.create top in
    Design.add_port d "a" Types.Input a;
    Design.add_port d "b" Types.Input b;
    Design.add_port d "sum" Types.Output sum;
    d
  in
  match
    Equiv.check ~strategy:`Sweep ~random_vectors:200
      (wide (fun top ~a ~b ~sum -> Adders.ripple_carry top ~a ~b ~sum ()))
      (wide (fun top ~a ~b ~sum -> Adders.carry_chain top ~a ~b ~sum ()))
  with
  | Equiv.Equivalent { vectors = 200; exhaustive = false } -> ()
  | other -> Alcotest.failf "%a" (fun fmt -> Equiv.pp_result fmt) other

let test_single_lut_difference_caught () =
  (* two 2-input functions differing in one truth-table entry *)
  let build f =
    let top = Cell.root ~name:"top" () in
    let a = Wire.create top ~name:"a" 1 in
    let b = Wire.create top ~name:"b" 1 in
    let o = Wire.create top ~name:"o" 1 in
    let _ = Virtex.lut_of_function top [ a; b ] o ~f in
    let d = Design.create top in
    Design.add_port d "a" Types.Input a;
    Design.add_port d "b" Types.Input b;
    Design.add_port d "o" Types.Output o;
    d
  in
  match
    Equiv.check
      (build (fun addr -> addr = 3))
      (build (fun addr -> addr = 3 || addr = 0))
  with
  | Equiv.Not_equivalent m ->
    Alcotest.(check int) "found the 00 input" 0
      (List.fold_left
         (fun acc (_, v) -> acc + Option.value (Bits.to_int v) ~default:1)
         0 m.Equiv.inputs)
  | other -> Alcotest.failf "expected mismatch, got %a" (fun fmt -> Equiv.pp_result fmt) other

let suite =
  [ Alcotest.test_case "equivalent adders" `Quick test_equivalent_adders;
    Alcotest.test_case "detects difference" `Quick test_detects_difference;
    Alcotest.test_case "interface mismatch" `Quick test_interface_mismatch;
    Alcotest.test_case "kcm chain = tree" `Quick test_kcm_chain_tree_equivalent;
    Alcotest.test_case "sequential equivalence" `Quick
      test_sequential_equivalence;
    Alcotest.test_case "sequential divergence" `Quick
      test_sequential_divergence_found;
    Alcotest.test_case "random sweep" `Quick test_random_sweep_on_wide_inputs;
    Alcotest.test_case "single lut difference" `Quick
      test_single_lut_difference_caught ]
