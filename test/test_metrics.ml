(* The observability subsystem itself: instrument semantics, bucket
   boundaries, ring-buffer wraparound, renderer goldens, and the nil
   registry's contract that disabled call sites still work. *)

module M = Jhdl_metrics.Metrics

let test_counter () =
  let reg = M.create "t" in
  let c = M.counter reg "hits" in
  Alcotest.(check int) "starts at zero" 0 (M.count c);
  M.incr c;
  M.incr c;
  M.add c 40;
  Alcotest.(check int) "incr and add" 42 (M.count c);
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Metrics: duplicate metric t.hits") (fun () ->
      ignore (M.counter reg "hits"))

let test_gauge () =
  let g = M.gauge (M.create "t") "level" in
  Alcotest.(check int) "initial" 0 (M.value g);
  M.set g 7;
  M.set g 3;
  Alcotest.(check int) "last write wins" 3 (M.value g)

let test_histogram_buckets () =
  let reg = M.create "t" in
  let h = M.histogram ~bounds:[| 10; 100; 1000 |] reg "size" in
  (* a value exactly on a bound lands in that bucket (inclusive upper) *)
  List.iter (M.observe h) [ 1; 10; 11; 100; 101; 1000 ];
  let s = M.summary h in
  Alcotest.(check int) "count" 6 s.M.count;
  Alcotest.(check int) "sum" 1223 s.M.sum;
  Alcotest.(check int) "max" 1000 s.M.max;
  (* ceil(0.5 * 6) = 3rd value; buckets hold 2/2/2 so the 3rd closes in
     the second bucket, bound 100 *)
  Alcotest.(check int) "p50 is a bucket bound" 100 s.M.p50;
  Alcotest.(check int) "p95 is the last bound" 1000 s.M.p95

let test_histogram_overflow () =
  let h = M.histogram ~bounds:[| 10 |] (M.create "t") "size" in
  M.observe h 5000;
  let s = M.summary h in
  (* overflow quantiles report the observed max, not a fake bound *)
  Alcotest.(check int) "overflow p50" 5000 s.M.p50;
  Alcotest.(check int) "overflow max" 5000 s.M.max;
  let empty = M.summary (M.histogram ~bounds:[| 10 |] (M.create "e") "z") in
  Alcotest.(check int) "empty count" 0 empty.M.count;
  Alcotest.(check int) "empty p95" 0 empty.M.p95

let test_probe () =
  let reg = M.create "t" in
  let state = ref 5 in
  M.probe reg "live" (fun () -> !state);
  state := 9;
  (* probes are read at snapshot time, not registration time *)
  match M.snapshot reg with
  | [ ("live", M.Counter_sample v) ] -> Alcotest.(check int) "pull" 9 v
  | _ -> Alcotest.fail "expected one probe sample"

let test_nil_noop () =
  Alcotest.(check bool) "nil is nil" true (M.is_nil M.nil);
  (* instruments minted from nil are live but unregistered: the same
     call sites work with metrics off, and duplicates never trip *)
  let c = M.counter M.nil "x" in
  let c2 = M.counter M.nil "x" in
  M.incr c;
  M.incr c2;
  Alcotest.(check int) "nil counter still counts" 1 (M.count c);
  Alcotest.(check (list string)) "nothing registered" []
    (List.map fst (M.snapshot M.nil));
  let tr = M.tracer M.nil in
  M.trace tr "ev";
  Alcotest.(check int) "nil tracer drops" 0 (List.length (M.events tr));
  Alcotest.(check int) "nil tracer is a full no-op" 0 (M.trace_total tr);
  Alcotest.(check string) "nil renders empty" "" (M.all_to_text [ M.nil ])

let test_tracer_wraparound () =
  let tr = M.tracer ~capacity:4 (M.create "t") in
  for i = 1 to 10 do
    M.trace tr ~span:M.Point ~value:i "step"
  done;
  Alcotest.(check int) "total counts overwrites" 10 (M.trace_total tr);
  let evs = M.events tr in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest first, newest kept" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.M.ev_value) evs);
  Alcotest.(check (list int)) "seq is stream position" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.M.ev_seq) evs)

let test_text_golden () =
  let reg = M.create "demo" in
  let c = M.counter reg "requests_total" in
  let g = M.gauge reg "in_flight" in
  let h = M.histogram ~bounds:[| 1; 2; 5 |] reg "latency" in
  M.add c 3;
  M.set g 1;
  M.observe h 2;
  M.observe h 9;
  Alcotest.(check string) "aligned text"
    ("[demo] 3 metric(s)\n"
    ^ "  gauge     in_flight                        1\n"
    ^ "  histogram latency                          count=2 sum=11 p50=2 \
       p95=9 max=9\n"
    ^ "  counter   requests_total                   3\n")
    (M.to_text reg)

let test_json_golden () =
  let reg = M.create "demo" in
  M.add (M.counter reg "a\"b") 1;
  M.set (M.gauge reg "g") 2;
  Alcotest.(check string) "escaped, one object per line"
    ("{\n  \"component\": \"demo\",\n  \"metrics\": [\n"
    ^ "    {\"name\": \"a\\\"b\", \"type\": \"counter\", \"value\": 1},\n"
    ^ "    {\"name\": \"g\", \"type\": \"gauge\", \"value\": 2}\n"
    ^ "  ]\n}\n")
    (M.to_json reg)

let test_trace_text () =
  let tr = M.tracer ~capacity:8 (M.create "t") in
  M.trace tr ~span:M.Enter ~value:1 "exchange";
  M.trace tr ~span:M.Exit ~value:1 "exchange";
  M.trace tr "tick";
  let text = M.trace_to_text ~last:2 tr in
  Alcotest.(check string) "tail rendering"
    ("trace: 3 event(s) recorded, showing last 2\n"
    ^ "  [     1] exit  exchange                     1\n"
    ^ "  [     2] point tick                         0\n")
    text

let test_crc16_known_answers () =
  let crc = Jhdl_logic.Crc16.checksum in
  (* CRC-16/CCITT-FALSE check values; both wire formats (simulator
     snapshots and the cosim protocol) share this implementation *)
  Alcotest.(check int) "empty" 0xFFFF (crc "");
  Alcotest.(check int) "123456789" 0x29B1 (crc "123456789");
  Alcotest.(check int) "A" 0xB915 (crc "A")

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
    Alcotest.test_case "probe" `Quick test_probe;
    Alcotest.test_case "nil registry is a no-op" `Quick test_nil_noop;
    Alcotest.test_case "tracer wraparound" `Quick test_tracer_wraparound;
    Alcotest.test_case "text golden" `Quick test_text_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "trace text" `Quick test_trace_text;
    Alcotest.test_case "crc16 known answers" `Quick test_crc16_known_answers
  ]
