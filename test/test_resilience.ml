(* Overload-control tests: admission queues and the brownout ladder,
   circuit breakers, reap-before-quota supervision, typed failure
   accounting on the server, the atomic-admission property, and the
   chaos recovery invariants across seeds. *)

module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker
module Chaos = Jhdl_chaos.Chaos
module Server = Jhdl_webserver.Server
module Session_manager = Jhdl_webserver.Session_manager
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Download = Jhdl_bundle.Download
module Fault = Jhdl_faults.Fault
module Metrics = Jhdl_metrics.Metrics
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Counter = Jhdl_modgen.Counter
module Endpoint = Jhdl_netproto.Endpoint

let counter_value registry name =
  match List.assoc_opt name (Metrics.snapshot registry) with
  | Some (Metrics.Counter_sample n) -> n
  | _ -> Alcotest.failf "no counter %s in the registry" name

let shed_reason = Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Admission.shed_reason_name r))
    ( = )

let counter_endpoint () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  Endpoint.of_simulator ~name:"counter"
    (Simulator.create
       ~clock:(match Design.find_port d "clk" with
               | Some p -> p.Design.port_wire
               | None -> assert false)
       d)

(* {1 admission} *)

let submit ?(tier = License.Licensed) ?(user = "alice") ?deadline_s adm ~now cls
  =
  Admission.submit adm ~now ~cls ~tier ~user ?deadline_s ()

let test_admit_now_roundtrip () =
  let adm = Admission.create () in
  match
    Admission.admit_now adm ~now:0.0 ~cls:Admission.Browse
      ~tier:License.Evaluator ~user:"alice" ()
  with
  | Error _ -> Alcotest.fail "an empty controller must admit"
  | Ok ticket ->
    Admission.complete adm ~now:0.5 ticket;
    let s = Admission.stats adm in
    Alcotest.(check int) "submitted" 1 s.Admission.submitted;
    Alcotest.(check int) "completed" 1 s.Admission.completed;
    Alcotest.(check int) "inflight drained" 0 s.Admission.inflight;
    Alcotest.(check bool) "accounting closes" true
      (Admission.accounting_closes adm)

let small_queues =
  { Admission.default_config with
    Admission.browse = { Admission.queue_cap = 4; deadline_budget_s = 0.0 };
    download = { Admission.queue_cap = 4; deadline_budget_s = 0.0 };
    elaborate = { Admission.queue_cap = 4; deadline_budget_s = 0.0 };
    cosim = { Admission.queue_cap = 4; deadline_budget_s = 0.0 } }

let test_queue_cap_sheds () =
  let adm = Admission.create ~config:small_queues () in
  for _ = 1 to 4 do
    match submit adm ~now:0.0 Admission.Elaborate with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "under capacity must queue"
  done;
  match submit adm ~now:0.0 Admission.Elaborate with
  | Ok _ -> Alcotest.fail "queue is full, fifth submit must shed"
  | Error shed ->
    Alcotest.check shed_reason "typed as queue-full" Admission.Queue_full
      shed.Admission.shed_reason;
    Alcotest.(check bool) "carries a retry hint" true
      (shed.Admission.retry_after_s <> None);
    Alcotest.(check bool) "accounting closes" true
      (Admission.accounting_closes adm)

let test_tier_preemption () =
  let config =
    { small_queues with
      Admission.download = { Admission.queue_cap = 1; deadline_budget_s = 0.0 }
    }
  in
  let adm = Admission.create ~config () in
  (match submit ~tier:License.Passive ~user:"lurker" adm ~now:0.0
           Admission.Jar_download
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first download must queue");
  (* the paying customer preempts the passive one from the full queue *)
  (match submit ~tier:License.Licensed ~user:"customer" adm ~now:0.1
           Admission.Jar_download
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "higher tier must preempt, not shed");
  (match Admission.shed_log adm with
   | [ shed ] ->
     Alcotest.check shed_reason "the passive request was tier-shed"
       Admission.Tier_shed shed.Admission.shed_reason;
     Alcotest.(check string) "and it was the lurker's" "lurker"
       shed.Admission.shed_ticket.Admission.user
   | sheds -> Alcotest.failf "expected exactly one shed, got %d"
                (List.length sheds));
  (* a passive newcomer cannot preempt the licensed holder *)
  match submit ~tier:License.Passive ~user:"lurker" adm ~now:0.2
          Admission.Jar_download
  with
  | Ok _ -> Alcotest.fail "a lower tier must not displace a higher one"
  | Error shed ->
    Alcotest.check shed_reason "sheds as queue-full" Admission.Queue_full
      shed.Admission.shed_reason

let test_deadline_expiry () =
  let adm = Admission.create ~config:small_queues () in
  (match submit ~deadline_s:1.0 adm ~now:0.0 Admission.Jar_download with
   | Ok ticket ->
     Alcotest.(check (float 1e-9)) "absolute deadline" 1.0
       ticket.Admission.deadline
   | Error _ -> Alcotest.fail "must queue with a live deadline");
  (* the dispatcher reaches it only after the deadline passed *)
  (match Admission.start adm ~now:2.0 with
   | Some _ -> Alcotest.fail "expired work must be shed, not served"
   | None -> ());
  (match Admission.shed_log adm with
   | [ shed ] ->
     Alcotest.check shed_reason "typed as deadline-expired"
       Admission.Deadline_expired shed.Admission.shed_reason
   | _ -> Alcotest.fail "expected exactly one shed");
  Alcotest.(check bool) "accounting closes" true
    (Admission.accounting_closes adm)

let brownout = Alcotest.testable
    (fun fmt l -> Format.pp_print_string fmt (Admission.brownout_name l))
    ( = )

let test_brownout_ladder () =
  (* 16 queue slots in all; default thresholds 0.5 / 0.75 / 0.9 *)
  let adm = Admission.create ~config:small_queues () in
  Alcotest.check brownout "empty controller serves fully"
    Admission.Full_service (Admission.brownout adm);
  let fill cls n =
    for _ = 1 to n do
      match submit adm ~now:0.0 cls with
      | Ok _ -> ()
      | Error shed ->
        Alcotest.failf "unexpected shed while filling: %s"
          (Admission.shed_reason_name shed.Admission.shed_reason)
    done
  in
  fill Admission.Elaborate 4;
  fill Admission.Cosim_exchange 4;
  Alcotest.check brownout "8/16 queued serves stale" Admission.Serve_stale
    (Admission.brownout adm);
  fill Admission.Jar_download 4;
  Alcotest.check brownout "12/16 queued is catalog-only" Admission.Catalog_only
    (Admission.brownout adm);
  (* the ladder has dropped downloads; browsing still gets through *)
  (match submit adm ~now:0.0 Admission.Jar_download with
   | Ok _ -> Alcotest.fail "catalog-only must shed downloads"
   | Error shed ->
     Alcotest.check shed_reason "typed as brownout"
       Admission.Brownout_rejected shed.Admission.shed_reason);
  fill Admission.Browse 3;
  Alcotest.check brownout "15/16 queued rejects all" Admission.Reject_all
    (Admission.brownout adm);
  match submit adm ~now:0.0 Admission.Browse with
  | Ok _ -> Alcotest.fail "reject-all must shed even browsing"
  | Error shed ->
    Alcotest.check shed_reason "typed as brownout" Admission.Brownout_rejected
      shed.Admission.shed_reason;
    Alcotest.(check bool) "with a retry hint" true
      (shed.Admission.retry_after_s <> None)

let test_admit_now_respects_backlog () =
  let adm = Admission.create ~config:small_queues () in
  (match submit ~user:"first" adm ~now:0.0 Admission.Jar_download with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "must queue");
  (* the synchronous path must not jump ahead of queued work *)
  (match
     Admission.admit_now adm ~now:0.1 ~cls:Admission.Jar_download
       ~tier:License.Licensed ~user:"second" ()
   with
   | Ok _ -> Alcotest.fail "admit_now must not overtake the backlog"
   | Error shed ->
     Alcotest.check shed_reason "sheds as queue-full" Admission.Queue_full
       shed.Admission.shed_reason);
  match Admission.start adm ~now:0.2 with
  | Some ticket ->
    Alcotest.(check string) "the queued request serves first" "first"
      ticket.Admission.user
  | None -> Alcotest.fail "the backlog must still be servable"

(* {1 breakers} *)

let breaker_state = Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Breaker.state_name s))
    ( = )

let test_breaker_lifecycle () =
  let b = Breaker.create ~name:"dl" ~seed:11 () in
  Alcotest.check breaker_state "starts closed" Breaker.Closed
    (Breaker.state b);
  Breaker.on_failure b ~now:0.0;
  Breaker.on_failure b ~now:0.1;
  Alcotest.check breaker_state "below threshold stays closed" Breaker.Closed
    (Breaker.state b);
  Breaker.on_failure b ~now:0.2;
  Alcotest.check breaker_state "third consecutive failure trips"
    Breaker.Open (Breaker.state b);
  Alcotest.(check int) "opened once" 1 (Breaker.times_opened b);
  Alcotest.(check bool) "open refuses" false (Breaker.allow b ~now:0.3);
  (match Breaker.retry_after_s b ~now:0.3 with
   | Some s ->
     (* probe at 0.2 + 2 s ± 25%, so the hint sits inside [1.2, 2.4] *)
     Alcotest.(check bool) "retry hint within the jittered window" true
       (s >= 1.2 && s <= 2.4)
   | None -> Alcotest.fail "an open breaker must hint a retry");
  (* past the worst-case probe delay the breaker half-opens *)
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~now:3.0);
  Alcotest.check breaker_state "probing" Breaker.Half_open (Breaker.state b);
  Breaker.on_success b ~now:3.0;
  Alcotest.check breaker_state "one probe success is not enough"
    Breaker.Half_open (Breaker.state b);
  Breaker.on_success b ~now:3.1;
  Alcotest.check breaker_state "two probe successes close it"
    Breaker.Closed (Breaker.state b)

let test_breaker_probe_failure_reopens () =
  let b = Breaker.create ~name:"dl" ~seed:11 () in
  Breaker.on_failure b ~now:0.0;
  Breaker.on_failure b ~now:0.1;
  Breaker.on_failure b ~now:0.2;
  ignore (Breaker.allow b ~now:3.0);
  Alcotest.check breaker_state "probing" Breaker.Half_open (Breaker.state b);
  Breaker.on_failure b ~now:3.0;
  Alcotest.check breaker_state "a failed probe re-opens" Breaker.Open
    (Breaker.state b);
  Alcotest.(check int) "counted as a second trip" 2 (Breaker.times_opened b)

let drive_breaker b =
  Breaker.on_failure b ~now:0.0;
  Breaker.on_failure b ~now:0.1;
  Breaker.on_failure b ~now:0.2;
  ignore (Breaker.allow b ~now:3.0);
  Breaker.on_success b ~now:3.0;
  Breaker.on_success b ~now:3.1;
  Breaker.on_failure b ~now:4.0;
  Breaker.on_failure b ~now:4.1;
  Breaker.on_failure b ~now:4.2;
  List.map
    (fun (t, s) -> Printf.sprintf "%.6f %s" t (Breaker.state_name s))
    (Breaker.history b)

let test_breaker_probe_determinism () =
  let a = drive_breaker (Breaker.create ~name:"dl" ~seed:7 ()) in
  let b = drive_breaker (Breaker.create ~name:"dl" ~seed:7 ()) in
  Alcotest.(check (list string)) "same seed, same transition history" a b;
  Alcotest.(check bool) "and the run actually transitioned" true
    (List.length a >= 4)

(* {1 session supervision} *)

let test_reap_before_quota () =
  let config =
    { Session_manager.heartbeat_timeout_s = 5.0;
      idle_timeout_s = 0.0;
      max_sessions_per_user = 1 }
  in
  let sm = Session_manager.create ~config () in
  (match Session_manager.open_session sm ~user:"eve" ~now:0.0
           (counter_endpoint ())
   with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "first open failed: %s" m);
  (* quota genuinely full: typed refusal with the expiry-based hint *)
  (match Session_manager.try_open_session sm ~user:"eve" ~now:1.0
           (counter_endpoint ())
   with
   | Ok _ -> Alcotest.fail "quota of one must reject a live second session"
   | Error r ->
     (match r.Session_manager.rej_retry_after_s with
      | Some s ->
        Alcotest.(check (float 1e-6))
          "hint is the soonest heartbeat expiry" 4.0 s
      | None -> Alcotest.fail "quota refusal must hint a retry"));
  (* the regression: once the heartbeat lapses, the dead session is
     reaped before the quota check and admission succeeds *)
  (match Session_manager.open_session sm ~user:"eve" ~now:10.0
           (counter_endpoint ())
   with
   | Ok _ -> ()
   | Error m ->
     Alcotest.failf "dead session blocked a live user's admission: %s" m);
  let s = Session_manager.stats sm in
  Alcotest.(check int) "one quota rejection" 1 s.Session_manager.quota_rejections;
  Alcotest.(check int) "one heartbeat reap" 1 s.Session_manager.reaped_heartbeat;
  match Session_manager.reap_report sm with
  | [ reaped ] ->
    Alcotest.(check string) "reported as heartbeat-lost" "heartbeat lost"
      (Session_manager.reap_reason_name reaped.Session_manager.reason)
  | report ->
    Alcotest.failf "expected one reaped session in the report, got %d"
      (List.length report)

(* {1 server failure accounting} *)

let fresh_counted_server () =
  let registry = Metrics.create "t" in
  let server = Server.create ~vendor:"test-vendor" ~metrics:registry () in
  ignore (Server.publish server Catalog.kcm);
  Server.register_user server ~user:"alice" ~tier:License.Licensed;
  (registry, server)

let test_failure_paths_counted () =
  let registry, server = fresh_counted_server () in
  (match Server.user_request server ~now:0.0 ~user:"mallory"
           ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ()
   with
   | Error r ->
     Alcotest.(check bool) "plain failures carry no shed reason" true
       (r.Server.rej_shed = None)
   | Ok _ -> Alcotest.fail "unknown user must fail");
  (match Server.user_request server ~now:1.0 ~user:"alice" ~ip_name:"Nope"
           ~link:Download.dsl_1m ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown IP must fail");
  (match Server.secure_request server ~user:"mallory"
           ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "secure request for an unknown user must fail");
  Alcotest.(check int) "every refusal counted" 3
    (counter_value registry "request_failures_total");
  (* overload sheds count too, and carry hint + typed reason *)
  let admission =
    Admission.create
      ~config:{ Admission.default_config with Admission.max_inflight = 1 } ()
  in
  (match
     Admission.admit_now admission ~now:0.0 ~cls:Admission.Browse
       ~tier:License.Vendor ~user:"holder" ()
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "the slot holder must be admitted");
  (match Server.user_request server ~admission ~now:2.0 ~user:"alice"
           ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ()
   with
   | Ok _ -> Alcotest.fail "a saturated controller must shed"
   | Error r ->
     Alcotest.(check bool) "shed reason is typed" true
       (r.Server.rej_shed = Some Admission.Queue_full);
     Alcotest.(check bool) "with a retry hint" true
       (r.Server.rej_retry_after_s <> None));
  Alcotest.(check int) "the shed counted as a failure too" 4
    (counter_value registry "request_failures_total")

let test_server_breaker_trips_and_recovers () =
  let registry = Metrics.create "t" in
  let breaker = Breaker.create ~metrics:registry ~name:"download" ~seed:9 () in
  let server =
    Server.create ~vendor:"test-vendor" ~cache_cap:1 ~breaker ~metrics:registry
      ()
  in
  ignore (Server.publish server Catalog.kcm);
  Server.register_user server ~user:"alice" ~tier:License.Licensed;
  let faults = Fault.only Fault.Drop ~rate:0.97 ~seed:5 in
  let policy =
    { Download.default_fetch_policy with Download.max_attempts = 1 }
  in
  let now = ref 0.0 in
  let attempts = ref 0 in
  while Breaker.state breaker <> Breaker.Open && !attempts < 12 do
    incr attempts;
    now := !now +. 0.1;
    ignore
      (Server.user_request server ~now:!now ~user:"alice"
         ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ~faults ~policy
         ())
  done;
  Alcotest.check breaker_state "the download storm trips the breaker"
    Breaker.Open (Breaker.state breaker);
  (* open circuit: fast fail, typed shed, retry hint, counted *)
  let before = counter_value registry "request_failures_total" in
  (match Server.user_request server ~now:(!now +. 0.01) ~user:"alice"
           ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ()
   with
   | Ok _ -> Alcotest.fail "an open breaker must refuse"
   | Error r ->
     Alcotest.(check bool) "typed as breaker-open" true
       (r.Server.rej_shed = Some Admission.Breaker_open);
     Alcotest.(check bool) "with a retry hint" true
       (r.Server.rej_retry_after_s <> None));
  Alcotest.(check int) "the refusal counted" (before + 1)
    (counter_value registry "request_failures_total");
  (* past the worst-case probe delay, clean probes close the circuit *)
  let probe request_now =
    match Server.user_request server ~now:request_now ~user:"alice"
            ~ip_name:"VirtexKCMMultiplier" ~link:Download.dsl_1m ()
    with
    | Ok _ -> ()
    | Error r -> Alcotest.failf "clean probe failed: %s" r.Server.rej_reason
  in
  probe (!now +. 2.6);
  probe (!now +. 2.7);
  Alcotest.check breaker_state "the breaker recovered" Breaker.Closed
    (Breaker.state breaker)

(* {1 the atomic-admission property} *)

let prop_shed_leaves_no_trace =
  QCheck.Test.make ~count:40
    ~name:"a shed request leaves the server digest byte-identical"
    QCheck.(pair (int_bound 1000) (int_range 0 5))
    (fun (seed, warmups) ->
       let make () =
         let server = Server.create ~vendor:"twin" () in
         ignore (Server.publish server Catalog.kcm);
         ignore (Server.publish server Catalog.fir);
         Server.register_user server ~user:"alice" ~tier:License.Licensed;
         Server.register_user server ~user:"bob" ~tier:License.Passive;
         server
       in
       let a = make () and b = make () in
       let users = [| "alice"; "bob" |] in
       let ips = [| "VirtexKCMMultiplier"; "FirFilter" |] in
       (* identical random warm-up traffic on both twins *)
       let warm server =
         for i = 0 to warmups - 1 do
           ignore
             (Server.user_request server ~now:(float_of_int i)
                ~user:users.((seed + i) mod 2)
                ~ip_name:ips.((seed + (3 * i)) mod 2)
                ~link:Download.dsl_1m ())
         done
       in
       warm a;
       warm b;
       (* a saturated controller: one held slot, max_inflight 1 *)
       let admission =
         Admission.create
           ~config:{ Admission.default_config with Admission.max_inflight = 1 }
           ()
       in
       (match
          Admission.admit_now admission ~now:0.0 ~cls:Admission.Browse
            ~tier:License.Vendor ~user:"holder" ()
        with
        | Ok _ -> ()
        | Error _ -> QCheck.Test.fail_report "holder not admitted");
       (* the shed request hits only twin [a]; twin [b] never sees it *)
       match
         Server.user_request a ~admission ~now:100.0
           ~user:users.(seed mod 2) ~ip_name:ips.(seed mod 2)
           ~link:Download.dsl_1m ()
       with
       | Ok _ -> QCheck.Test.fail_report "the saturated controller admitted"
       | Error r ->
         r.Server.rej_shed <> None
         && String.equal (Server.state_digest a) (Server.state_digest b))

(* {1 chaos invariants} *)

let chaos_seeds = [ 1; 2; 3; 42; 1234 ]

let test_chaos_invariants () =
  List.iter
    (fun scenario ->
       List.iter
         (fun seed ->
            let report = Chaos.run ~seed scenario in
            List.iter
              (fun inv ->
                 Alcotest.(check bool)
                   (Printf.sprintf "%s seed %d: %s (%s)"
                      scenario.Chaos.scenario_name seed inv.Chaos.inv_name
                      inv.Chaos.inv_detail)
                   true inv.Chaos.inv_pass)
              report.Chaos.invariants;
            (* shed requests never exceed the typed tallies *)
            let typed =
              List.fold_left
                (fun acc (_, n) -> acc + n)
                0 report.Chaos.shed_by_reason
            in
            Alcotest.(check int)
              (Printf.sprintf "%s seed %d: sheds all typed"
                 scenario.Chaos.scenario_name seed)
              typed
              (report.Chaos.offered - report.Chaos.ok - report.Chaos.failed))
         chaos_seeds)
    Chaos.scenarios

let test_chaos_replay_bit_identical () =
  List.iter
    (fun scenario ->
       List.iter
         (fun seed ->
            let first = Chaos.report_to_text (Chaos.run ~seed scenario) in
            let second = Chaos.report_to_text (Chaos.run ~seed scenario) in
            Alcotest.(check string)
              (Printf.sprintf "%s seed %d replays bit-identical"
                 scenario.Chaos.scenario_name seed)
              first second)
         chaos_seeds)
    Chaos.scenarios

let suite =
  [ Alcotest.test_case "admit-now roundtrip closes accounting" `Quick
      test_admit_now_roundtrip;
    Alcotest.test_case "full queues shed with a hint" `Quick
      test_queue_cap_sheds;
    Alcotest.test_case "higher tiers preempt lower ones" `Quick
      test_tier_preemption;
    Alcotest.test_case "queued work sheds on deadline expiry" `Quick
      test_deadline_expiry;
    Alcotest.test_case "the brownout ladder degrades in steps" `Quick
      test_brownout_ladder;
    Alcotest.test_case "admit-now respects the backlog" `Quick
      test_admit_now_respects_backlog;
    Alcotest.test_case "breaker lifecycle closed-open-half-open" `Quick
      test_breaker_lifecycle;
    Alcotest.test_case "a failed probe re-opens the breaker" `Quick
      test_breaker_probe_failure_reopens;
    Alcotest.test_case "probe schedule is seed-deterministic" `Quick
      test_breaker_probe_determinism;
    Alcotest.test_case "expired sessions reap before the quota check" `Quick
      test_reap_before_quota;
    Alcotest.test_case "every request refusal is counted" `Quick
      test_failure_paths_counted;
    Alcotest.test_case "server breaker trips and recovers" `Quick
      test_server_breaker_trips_and_recovers;
    Alcotest.test_case "chaos invariants hold across seeds" `Slow
      test_chaos_invariants;
    Alcotest.test_case "chaos replays are bit-identical" `Slow
      test_chaos_replay_bit_identical ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_shed_leaves_no_trace ]
