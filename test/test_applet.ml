(* Applet tests: license gating by construction, metering, the KCM and
   FIR catalog entries, parameter handling and netlist policy. *)

module Applet = Jhdl_applet.Applet
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Feature = Jhdl_applet.Feature
module Ip_module = Jhdl_applet.Ip_module
module Partition = Jhdl_bundle.Partition
module Bits = Jhdl_logic.Bits
module Watermark = Jhdl_security.Watermark

let make ?(tier = License.Licensed) ?(ip = Catalog.kcm) () =
  Applet.create ~ip ~license:(License.of_tier tier) ~user:"tester" ()

let ok applet command =
  match Applet.exec applet command with
  | Ok text -> text
  | Error message ->
    Alcotest.failf "command %s failed: %s"
      (Applet.command_to_string command)
      message

let err applet command =
  match Applet.exec applet command with
  | Error message -> message
  | Ok _ ->
    Alcotest.failf "command %s unexpectedly succeeded"
      (Applet.command_to_string command)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let build_kcm ?tier ~constant ~pipelined () =
  let applet = make ?tier () in
  let _ = ok applet (Applet.Set_param ("constant", string_of_int constant)) in
  let _ = ok applet (Applet.Set_param ("pipelined", string_of_bool pipelined)) in
  let _ = ok applet Applet.Build in
  applet

(* {1 the paper's session} *)

let test_paper_session () =
  let applet = build_kcm ~constant:(-56) ~pipelined:true () in
  let text = ok applet (Applet.Set_input ("multiplicand", "100")) in
  Alcotest.(check bool) "input echoed" true (contains ~needle:"multiplicand" text);
  let _ = ok applet (Applet.Cycle 2) in
  let output = ok applet (Applet.Get_output "product") in
  (* -56 * 100 = -5600; top 12 of the 15-bit product = -700 *)
  Alcotest.(check bool) "product = -700" true (contains ~needle:"(3396)" output)

let test_build_reports_structure () =
  let applet = build_kcm ~constant:(-56) ~pipelined:true () in
  (match Applet.built_design applet with
   | None -> Alcotest.fail "design should exist"
   | Some design ->
     let stats = Jhdl_circuit.Design.stats design in
     Alcotest.(check bool) "nontrivial" true
       (stats.Jhdl_circuit.Design.primitive_instances > 50));
  Alcotest.(check (option int)) "latency known" (Some 1) (Applet.latency applet)

(* {1 gating by construction} *)

let test_passive_refusals () =
  let applet = make ~tier:License.Passive () in
  let _ = ok applet Applet.Build in
  let _ = ok applet Applet.Estimate in
  List.iter
    (fun command ->
       let message = err applet command in
       Alcotest.(check bool) "mentions missing tool" true
         (contains ~needle:"not included" message))
    [ Applet.View_hierarchy; Applet.View_schematic None; Applet.View_layout;
      Applet.Cycle 1; Applet.Reset; Applet.Get_output "product";
      Applet.View_waveform; Applet.Netlist "EDIF" ];
  Alcotest.(check bool) "no simulator object exists" true
    (Applet.simulator applet = None)

let test_evaluator_no_netlist () =
  let applet = make ~tier:License.Evaluator () in
  let _ = ok applet Applet.Build in
  let _ = ok applet (Applet.View_hierarchy) in
  let _ = ok applet (Applet.Cycle 1) in
  let message = err applet (Applet.Netlist "EDIF") in
  Alcotest.(check bool) "netlister absent" true
    (contains ~needle:"netlister" message)

let test_vendor_everything () =
  let applet = make ~tier:License.Vendor () in
  let _ = ok applet Applet.Build in
  List.iter
    (fun command -> ignore (ok applet command))
    [ Applet.Estimate; Applet.View_hierarchy; Applet.View_layout;
      Applet.Cycle 1; Applet.View_waveform; Applet.Netlist "Verilog" ]

(* {1 parameters} *)

let test_param_validation () =
  let applet = make () in
  Alcotest.(check bool) "out of range" true
    (contains ~needle:"outside"
       (err applet (Applet.Set_param ("multiplicand_width", "99"))));
  Alcotest.(check bool) "bad bool" true
    (contains ~needle:"boolean"
       (err applet (Applet.Set_param ("signed", "maybe"))));
  Alcotest.(check bool) "unknown param" true
    (contains ~needle:"unknown"
       (err applet (Applet.Set_param ("frequency", "5"))))

let test_build_before_anything () =
  let applet = make () in
  Alcotest.(check bool) "estimate needs build" true
    (contains ~needle:"no circuit built" (err applet Applet.Estimate))

let test_unsigned_negative_constant_refused () =
  let applet = make () in
  let _ = ok applet (Applet.Set_param ("signed", "false")) in
  let _ = ok applet (Applet.Set_param ("constant", "-5")) in
  Alcotest.(check bool) "generator refuses" true
    (contains ~needle:"signed" (err applet Applet.Build))

(* {1 metering} *)

let test_netlist_metering () =
  (* licensed tier caps netlist exports at 50 *)
  let applet = build_kcm ~constant:7 ~pipelined:false () in
  for _ = 1 to 50 do
    ignore (ok applet (Applet.Netlist "EDIF"))
  done;
  Alcotest.(check bool) "51st refused" true
    (contains ~needle:"limit" (err applet (Applet.Netlist "EDIF")))

let test_build_metering_passive () =
  let applet = make ~tier:License.Passive () in
  for _ = 1 to 20 do
    ignore (ok applet Applet.Build)
  done;
  Alcotest.(check bool) "21st build refused" true
    (contains ~needle:"limit" (err applet Applet.Build))

(* {1 netlist policy} *)

let test_netlist_watermarked () =
  let applet = build_kcm ~constant:(-56) ~pipelined:false () in
  let _ = ok applet (Applet.Netlist "EDIF") in
  match Applet.built_design applet with
  | None -> Alcotest.fail "design should exist"
  | Some design ->
    Alcotest.(check bool) "vendor watermark present" true
      (Watermark.verify design ~vendor:(Catalog.kcm).Ip_module.vendor)

let test_netlist_unknown_format () =
  let applet = build_kcm ~constant:7 ~pipelined:false () in
  Alcotest.(check bool) "xml refused" true
    (contains ~needle:"unknown format" (err applet (Applet.Netlist "xml")))

(* {1 jar components} *)

let test_jar_components_by_tier () =
  let components tier = Applet.jar_components (make ~tier ()) in
  Alcotest.(check bool) "passive skips viewer jar" true
    (not (List.mem Partition.Viewer (components License.Passive)));
  Alcotest.(check bool) "evaluator needs viewer jar" true
    (List.mem Partition.Viewer (components License.Evaluator));
  Alcotest.(check bool) "all need base" true
    (List.for_all
       (fun tier -> List.mem Partition.Base (components tier))
       License.all_tiers)

(* {1 FIR and counter catalog entries} *)

let test_fir_applet_session () =
  let applet = make ~ip:Catalog.fir () in
  let _ = ok applet (Applet.Set_param ("taps", "boxcar4")) in
  let _ = ok applet (Applet.Set_param ("signed", "false")) in
  let _ = ok applet Applet.Build in
  let _ = ok applet (Applet.Set_input ("x", "3")) in
  (* boxcar over a constant input converges to 4*x *)
  let _ = ok applet (Applet.Cycle 4) in
  let text = ok applet (Applet.Get_output "y") in
  Alcotest.(check bool) "converged to 12" true (contains ~needle:"(12)" text)

let test_fir_invalid_tap_set () =
  let applet = make ~ip:Catalog.fir () in
  Alcotest.(check bool) "unknown set" true
    (contains ~needle:"not one of"
       (err applet (Applet.Set_param ("taps", "butterworth"))))

let test_counter_applet () =
  let applet = make ~ip:Catalog.counter () in
  let _ = ok applet (Applet.Set_param ("width", "5")) in
  let _ = ok applet Applet.Build in
  let _ = ok applet (Applet.Cycle 9) in
  let text = ok applet (Applet.Get_output "q") in
  Alcotest.(check bool) "counted to 9" true (contains ~needle:"(9)" text)

let test_catalog_lookup () =
  Alcotest.(check bool) "kcm found" true
    (Catalog.find "virtexkcmmultiplier" <> None);
  Alcotest.(check bool) "missing" true (Catalog.find "Booth" = None);
  Alcotest.(check bool) "cordic found" true (Catalog.find "CordicRotator" <> None);
  Alcotest.(check bool) "wallace found" true
    (Catalog.find "WallaceTreeMultiplier" <> None);
  Alcotest.(check bool) "divider found" true
    (Catalog.find "PipelinedDivider" <> None);
  Alcotest.(check int) "six entries" 6 (List.length Catalog.all)

let test_self_test_kcm () =
  List.iter
    (fun pipelined ->
       let applet = build_kcm ~constant:(-56) ~pipelined () in
       let text = ok applet Applet.Self_test in
       Alcotest.(check bool)
         (Printf.sprintf "kcm self-test passes (pipelined=%b): %s" pipelined text)
         true
         (contains ~needle:"0 failure(s)" text))
    [ false; true ]

let test_self_test_fir () =
  let applet = make ~ip:Catalog.fir () in
  let _ = ok applet Applet.Build in
  let text = ok applet Applet.Self_test in
  Alcotest.(check bool) "fir self-test passes" true
    (contains ~needle:"0 failure(s)" text)

let test_self_test_cordic () =
  let applet = make ~ip:Catalog.cordic () in
  let _ = ok applet Applet.Build in
  let text = ok applet Applet.Self_test in
  Alcotest.(check bool) "cordic self-test passes" true
    (contains ~needle:"0 failure(s)" text)

let test_self_test_counter () =
  List.iter
    (fun enable ->
       let applet = make ~ip:Catalog.counter () in
       let _ = ok applet (Applet.Set_param ("has_enable", string_of_bool enable)) in
       let _ = ok applet Applet.Build in
       let text = ok applet Applet.Self_test in
       Alcotest.(check bool)
         (Printf.sprintf "counter self-test (ce=%b): %s" enable text)
         true
         (contains ~needle:"0 failure(s)" text))
    [ false; true ]

let test_self_test_needs_simulator () =
  let applet = make ~tier:License.Passive () in
  let _ = ok applet Applet.Build in
  Alcotest.(check bool) "passive tier lacks simulator" true
    (contains ~needle:"not included" (err applet Applet.Self_test))

let test_export_vcd () =
  let applet = build_kcm ~constant:(-56) ~pipelined:true () in
  let _ = ok applet (Applet.Set_input ("multiplicand", "100")) in
  let _ = ok applet (Applet.Cycle 3) in
  let vcd = ok applet Applet.Export_vcd in
  Alcotest.(check bool) "vcd header" true (contains ~needle:"$timescale" vcd);
  Alcotest.(check bool) "vcd values" true (contains ~needle:"#3" vcd)

let test_transcript () =
  let applet = make ~tier:License.Passive () in
  let transcript = Applet.run_script applet [ Applet.Build; Applet.Cycle 1 ] in
  Alcotest.(check bool) "echoes commands" true (contains ~needle:"> build" transcript);
  Alcotest.(check bool) "records refusals" true (contains ~needle:"ERROR" transcript)

let test_feature_matrix_rendering () =
  let matrix = License.feature_matrix () in
  Alcotest.(check bool) "has tiers" true (contains ~needle:"licensed" matrix);
  Alcotest.(check bool) "has netlister row" true (contains ~needle:"netlister" matrix)

let suite =
  [ Alcotest.test_case "paper session" `Quick test_paper_session;
    Alcotest.test_case "build reports structure" `Quick
      test_build_reports_structure;
    Alcotest.test_case "passive refusals" `Quick test_passive_refusals;
    Alcotest.test_case "evaluator no netlist" `Quick test_evaluator_no_netlist;
    Alcotest.test_case "vendor everything" `Quick test_vendor_everything;
    Alcotest.test_case "param validation" `Quick test_param_validation;
    Alcotest.test_case "build before anything" `Quick test_build_before_anything;
    Alcotest.test_case "unsigned negative constant" `Quick
      test_unsigned_negative_constant_refused;
    Alcotest.test_case "netlist metering" `Quick test_netlist_metering;
    Alcotest.test_case "build metering passive" `Quick test_build_metering_passive;
    Alcotest.test_case "netlist watermarked" `Quick test_netlist_watermarked;
    Alcotest.test_case "unknown format" `Quick test_netlist_unknown_format;
    Alcotest.test_case "jar components by tier" `Quick test_jar_components_by_tier;
    Alcotest.test_case "fir applet session" `Quick test_fir_applet_session;
    Alcotest.test_case "fir invalid tap set" `Quick test_fir_invalid_tap_set;
    Alcotest.test_case "counter applet" `Quick test_counter_applet;
    Alcotest.test_case "catalog lookup" `Quick test_catalog_lookup;
    Alcotest.test_case "self test kcm" `Quick test_self_test_kcm;
    Alcotest.test_case "self test fir" `Quick test_self_test_fir;
    Alcotest.test_case "self test cordic" `Quick test_self_test_cordic;
    Alcotest.test_case "self test counter" `Quick test_self_test_counter;
    Alcotest.test_case "self test needs simulator" `Quick
      test_self_test_needs_simulator;
    Alcotest.test_case "export vcd" `Quick test_export_vcd;
    Alcotest.test_case "transcript" `Quick test_transcript;
    Alcotest.test_case "feature matrix" `Quick test_feature_matrix_rendering ]
