(* The fuzz layer's own contract: generated recipes are valid by
   construction, campaigns are byte-identically replayable from one
   seed, all seven oracles hold on generated designs, and the reducer
   converges onto an injected defect. *)

module Prng = Jhdl_faults.Prng
module Design = Jhdl_circuit.Design
module Recipe = Jhdl_fuzz.Recipe
module Gen = Jhdl_fuzz.Gen
module Stimulus = Jhdl_fuzz.Stimulus
module Oracle = Jhdl_fuzz.Oracle
module Reduce = Jhdl_fuzz.Reduce
module Fuzz = Jhdl_fuzz.Fuzz

let small_params = { Gen.default_params with Gen.max_cells = 24 }

(* ------------------------------------------------------------------ *)

let test_generated_designs_are_valid () =
  for seed = 0 to 39 do
    let rng = Prng.create seed in
    let recipe =
      Gen.recipe rng ~name:(Printf.sprintf "valid_%d" seed) Gen.default_params
    in
    (match Recipe.well_formed recipe with
     | Ok () -> ()
     | Error m -> Alcotest.failf "seed %d: recipe not well-formed: %s" seed m);
    let built = Recipe.build recipe in
    match Design.errors built.Recipe.design with
    | [] -> ()
    | violations ->
      Alcotest.failf "seed %d: %d design-rule error(s): %s" seed
        (List.length violations)
        (String.concat "; "
           (List.map
              (fun v -> Format.asprintf "%a" Design.pp_violation v)
              violations))
  done

let test_every_unconsumed_signal_is_observable () =
  let rng = Prng.create 11 in
  let recipe = Gen.recipe rng ~name:"observable" Gen.default_params in
  let built = Recipe.build recipe in
  let uses = Recipe.signal_uses recipe in
  let expected = ref 0 in
  Array.iteri
    (fun i e ->
       if e.Recipe.node <> Recipe.Input && uses.(i) = 0 then incr expected)
    recipe.Recipe.entries;
  Alcotest.(check int) "one output port per unconsumed signal" !expected
    (List.length built.Recipe.output_ports)

(* ------------------------------------------------------------------ *)
(* Seed-replay determinism (mirrors the PR 1 fault-matrix test): the
   recipe, the stimulus and the whole campaign report must be
   byte-identical across two runs from the same seed. *)

let test_seed_replay_is_byte_identical () =
  List.iter
    (fun seed ->
       let once () =
         let gen_rng, stim_rng = Fuzz.case_rngs ~seed ~case:0 in
         let recipe = Gen.recipe gen_rng ~name:"replay" Gen.default_params in
         let stim = Gen.stimulus stim_rng recipe ~steps:10 in
         (Recipe.to_string recipe, Stimulus.to_string stim)
       in
       let r1, s1 = once () in
       let r2, s2 = once () in
       Alcotest.(check string) "recipe bytes" r1 r2;
       Alcotest.(check string) "stimulus bytes" s1 s2)
    [ 0; 1; 42; 31337 ]

let test_campaign_report_is_byte_identical () =
  let config =
    { Fuzz.default_config with
      Fuzz.seed = 9;
      count = 8;
      params = small_params;
      steps = 8 }
  in
  let a = Fuzz.summary (Fuzz.run config) in
  let b = Fuzz.summary (Fuzz.run config) in
  Alcotest.(check string) "campaign summaries" a b;
  (* and the verdicts really ran: seven oracles times eight cases *)
  let outcome = Fuzz.run config in
  List.iter
    (fun (_, runs, _) -> Alcotest.(check int) "runs per oracle" 8 runs)
    outcome.Fuzz.oracle_runs

let test_case_rngs_replay_campaign_cases () =
  (* regenerating case k from (seed, k) alone matches what the
     campaign generated for that case *)
  let seed = 23 in
  let config =
    { Fuzz.default_config with
      Fuzz.seed;
      count = 4;
      params = small_params;
      steps = 6;
      oracles = [ Oracle.Lint_clean ] }
  in
  ignore (Fuzz.run config);
  for case = 0 to 3 do
    let once () =
      let gen_rng, _ = Fuzz.case_rngs ~seed ~case in
      Recipe.to_string
        (Gen.recipe gen_rng
           ~name:(Printf.sprintf "fuzz_c%d" case)
           small_params)
    in
    Alcotest.(check string)
      (Printf.sprintf "case %d replays" case)
      (once ()) (once ())
  done

(* ------------------------------------------------------------------ *)
(* Oracles. *)

let test_all_oracles_green_on_generated_designs () =
  let outcome =
    Fuzz.run
      { Fuzz.default_config with
        Fuzz.seed = 2;
        count = 12;
        params = small_params;
        steps = 10 }
  in
  Alcotest.(check int) "no failures" 0 (Fuzz.total_failures outcome);
  Alcotest.(check int) "seven oracles ran" 7
    (List.length outcome.Fuzz.oracle_runs)

let test_coverage_spans_the_primitive_set () =
  let outcome =
    Fuzz.run
      { Fuzz.default_config with
        Fuzz.seed = 3;
        count = 60;
        params = Gen.default_params;
        steps = 2;
        oracles = [ Oracle.Lint_clean ] }
  in
  let covered = List.map fst outcome.Fuzz.coverage in
  List.iter
    (fun kind ->
       if not (List.mem kind covered) then
         Alcotest.failf "primitive kind %s never generated" kind)
    [ "INPUT"; "GND"; "VCC"; "LUT1"; "LUT2"; "LUT3"; "LUT4"; "FD"; "FDE";
      "FDCE"; "FDRE"; "MUXCY"; "XORCY"; "MULT_AND"; "SRL16E"; "RAM16X1S";
      "BUF"; "INV" ]

let test_oracle_flags_a_broken_recipe () =
  (* the lint oracle must fail loudly when handed an actually-broken
     design, not only pass on valid ones: an FF clocked from a LUT
     output is a gated clock, which builds fine but lints as an error *)
  let recipe =
    { Recipe.name = "gated";
      entries =
        [| { Recipe.node = Recipe.Input; group = None };
           { Recipe.node = Recipe.Input; group = None };
           { Recipe.node = Recipe.Lut { init = 0b1000; inputs = [| 0; 1 |] };
             group = None }
        |] }
  in
  let built = Recipe.build recipe in
  (* rewire: drive the FF's clock from the LUT output via a raw prim *)
  let top = Design.root built.Recipe.design in
  let gated = Jhdl_circuit.Wire.create top ~name:"gated" 1 in
  (match Design.find_port built.Recipe.design "out2" with
   | None -> Alcotest.fail "expected the AND output to be exported"
   | Some p ->
     ignore
       (Jhdl_circuit.Cell.prim top ~name:"gate" Jhdl_circuit.Prim.Buf
          ~conns:[ ("I", p.Design.port_wire); ("O", gated) ]);
     ignore
       (Jhdl_circuit.Cell.prim top ~name:"bad_ff"
          (Jhdl_circuit.Prim.Ff
             { clock_enable = false;
               async_clear = false;
               sync_reset = false;
               init = Jhdl_logic.Bit.Zero })
          ~conns:[ ("C", gated); ("D", p.Design.port_wire); ("Q", Jhdl_circuit.Wire.create top ~name:"bad_q" 1) ]));
  let report = Jhdl_lint.Lint.run built.Recipe.design in
  Alcotest.(check bool) "gated clock caught" true
    (List.exists
       (fun d -> String.equal d.Jhdl_lint.Lint.rule_id "L101")
       (Jhdl_lint.Lint.errors report))

let test_estimate_monotone_over_prefixes () =
  for seed = 50 to 58 do
    let rng = Prng.create seed in
    let recipe = Gen.recipe rng ~name:"mono" Gen.default_params in
    let stim = { Stimulus.steps = [||] } in
    match Oracle.run Oracle.Estimate_mono recipe stim with
    | Oracle.Pass -> ()
    | Oracle.Fail m -> Alcotest.failf "seed %d: %s" seed m
  done

(* ------------------------------------------------------------------ *)
(* Reducer. *)

let find_mult_and_case () =
  (* campaign seed 42 generates MULT_AND-bearing designs (pinned by
     the coverage test above); find one for the reducer to chew on *)
  let rec go case =
    if case > 50 then Alcotest.fail "no MULT_AND case within 50 seeds"
    else begin
      let gen_rng, stim_rng = Fuzz.case_rngs ~seed:42 ~case in
      let recipe =
        Gen.recipe gen_rng
          ~name:(Printf.sprintf "fuzz_c%d" case)
          small_params
      in
      if
        Array.exists
          (fun e ->
             match e.Recipe.node with
             | Recipe.Mult_and _ -> true
             | _ -> false)
          recipe.Recipe.entries
      then (recipe, Gen.stimulus stim_rng recipe ~steps:8)
      else go (case + 1)
    end
  in
  go 0

let test_reducer_converges_on_injected_bug () =
  let recipe, stim = find_mult_and_case () in
  let still_fails r s =
    match Oracle.run ~inject_bug:true Oracle.Sim_vs_ref r s with
    | Oracle.Fail _ -> true
    | Oracle.Pass -> false
  in
  Alcotest.(check bool) "original case fails under the injected bug" true
    (still_fails recipe stim);
  let result = Reduce.minimize ~still_fails recipe stim in
  let n = Array.length result.Reduce.recipe.Recipe.entries in
  if n > 4 then
    Alcotest.failf "reducer stopped at %d entries (expected <= 4):\n%s" n
      (Recipe.to_string result.Reduce.recipe);
  Alcotest.(check bool) "reduced case still fails" true
    (still_fails result.Reduce.recipe result.Reduce.stimulus);
  Alcotest.(check bool) "reduced recipe still holds a MULT_AND" true
    (Array.exists
       (fun e ->
          match e.Recipe.node with
          | Recipe.Mult_and _ -> true
          | _ -> false)
       result.Reduce.recipe.Recipe.entries);
  Alcotest.(check bool) "stimulus shrank to one step" true
    (Stimulus.step_count result.Reduce.stimulus <= 1)

let test_reducer_output_is_well_formed_and_buildable () =
  let recipe, stim = find_mult_and_case () in
  let still_fails r s =
    match Oracle.run ~inject_bug:true Oracle.Sim_vs_ref r s with
    | Oracle.Fail _ -> true
    | Oracle.Pass -> false
  in
  let result = Reduce.minimize ~still_fails recipe stim in
  (match Recipe.well_formed result.Reduce.recipe with
   | Ok () -> ()
   | Error m -> Alcotest.failf "reduced recipe ill-formed: %s" m);
  let built = Recipe.build result.Reduce.recipe in
  Alcotest.(check int) "reduced design has no rule errors" 0
    (List.length (Design.errors built.Recipe.design))

let test_reducer_respects_check_budget () =
  let recipe, stim = find_mult_and_case () in
  let calls = ref 0 in
  let still_fails r s =
    incr calls;
    match Oracle.run ~inject_bug:true Oracle.Sim_vs_ref r s with
    | Oracle.Fail _ -> true
    | Oracle.Pass -> false
  in
  let result = Reduce.minimize ~max_checks:5 ~still_fails recipe stim in
  Alcotest.(check bool) "stays within budget" true (result.Reduce.checks <= 5);
  Alcotest.(check bool) "result still fails" true
    (still_fails result.Reduce.recipe result.Reduce.stimulus)

(* ------------------------------------------------------------------ *)
(* Campaign plumbing. *)

let test_campaign_reports_injected_failures () =
  let outcome =
    Fuzz.run
      { Fuzz.seed = 42;
        count = 10;
        params = { Gen.default_params with Gen.max_cells = 20 };
        steps = 8;
        oracles = [ Oracle.Sim_vs_ref ];
        reduce = true;
        inject_bug = true }
  in
  Alcotest.(check bool) "some cases trip the injected bug" true
    (Fuzz.total_failures outcome > 0);
  List.iter
    (fun f ->
       match f.Fuzz.reduced with
       | None -> Alcotest.fail "reduce:true must minimize every failure"
       | Some r ->
         Alcotest.(check bool) "minimized below original" true
           (Array.length r.Reduce.recipe.Recipe.entries
            <= Array.length f.Fuzz.recipe.Recipe.entries))
    outcome.Fuzz.failures;
  (* the summary names the injected defect *)
  Alcotest.(check bool) "summary carries the failure" true
    (let s = Fuzz.summary outcome in
     let needle = "injected defect" in
     let n = String.length needle and len = String.length s in
     let rec scan i =
       i + n <= len && (String.sub s i n = needle || scan (i + 1))
     in
     scan 0)

let suite =
  [ Alcotest.test_case "generated designs pass validate" `Quick
      test_generated_designs_are_valid;
    Alcotest.test_case "unconsumed signals become output ports" `Quick
      test_every_unconsumed_signal_is_observable;
    Alcotest.test_case "seed replay is byte-identical" `Quick
      test_seed_replay_is_byte_identical;
    Alcotest.test_case "campaign report is byte-identical" `Quick
      test_campaign_report_is_byte_identical;
    Alcotest.test_case "case streams replay in isolation" `Quick
      test_case_rngs_replay_campaign_cases;
    Alcotest.test_case "all oracles green on generated designs" `Quick
      test_all_oracles_green_on_generated_designs;
    Alcotest.test_case "coverage spans the primitive set" `Quick
      test_coverage_spans_the_primitive_set;
    Alcotest.test_case "lint oracle catches a real gated clock" `Quick
      test_oracle_flags_a_broken_recipe;
    Alcotest.test_case "estimator monotone over prefixes" `Quick
      test_estimate_monotone_over_prefixes;
    Alcotest.test_case "reducer converges on injected bug" `Quick
      test_reducer_converges_on_injected_bug;
    Alcotest.test_case "reducer output is well-formed" `Quick
      test_reducer_output_is_well_formed_and_buildable;
    Alcotest.test_case "reducer respects its check budget" `Quick
      test_reducer_respects_check_budget;
    Alcotest.test_case "campaign reports injected failures" `Quick
      test_campaign_reports_injected_failures ]
