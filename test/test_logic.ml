(* Unit and property tests for the four-valued logic foundation. *)

module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init

let bit = Alcotest.testable Bit.pp Bit.equal
let bits = Alcotest.testable Bits.pp Bits.equal

let check_bit = Alcotest.check bit
let check_bits = Alcotest.check bits

(* {1 Bit} *)

let test_bit_of_bool () =
  check_bit "true" Bit.One (Bit.of_bool true);
  check_bit "false" Bit.Zero (Bit.of_bool false)

let test_bit_to_bool () =
  Alcotest.(check (option bool)) "one" (Some true) (Bit.to_bool Bit.One);
  Alcotest.(check (option bool)) "zero" (Some false) (Bit.to_bool Bit.Zero);
  Alcotest.(check (option bool)) "x" None (Bit.to_bool Bit.X);
  Alcotest.(check (option bool)) "z" None (Bit.to_bool Bit.Z)

let test_bit_chars () =
  List.iter
    (fun (c, b) ->
       check_bit (Printf.sprintf "of_char %c" c) b (Bit.of_char c);
       Alcotest.(check char) "roundtrip" (Char.lowercase_ascii c) (Bit.to_char b))
    [ ('0', Bit.Zero); ('1', Bit.One); ('x', Bit.X); ('z', Bit.Z) ];
  Alcotest.check_raises "bad char" (Invalid_argument "Bit.of_char: '2'")
    (fun () -> ignore (Bit.of_char '2'))

let test_bit_and_dominance () =
  check_bit "0 & x = 0" Bit.Zero (Bit.and_ Bit.Zero Bit.X);
  check_bit "x & 0 = 0" Bit.Zero (Bit.and_ Bit.X Bit.Zero);
  check_bit "1 & x = x" Bit.X (Bit.and_ Bit.One Bit.X);
  check_bit "z & 1 = x" Bit.X (Bit.and_ Bit.Z Bit.One);
  check_bit "1 & 1 = 1" Bit.One (Bit.and_ Bit.One Bit.One)

let test_bit_or_dominance () =
  check_bit "1 | x = 1" Bit.One (Bit.or_ Bit.One Bit.X);
  check_bit "x | 1 = 1" Bit.One (Bit.or_ Bit.X Bit.One);
  check_bit "0 | x = x" Bit.X (Bit.or_ Bit.Zero Bit.X);
  check_bit "0 | 0 = 0" Bit.Zero (Bit.or_ Bit.Zero Bit.Zero)

let test_bit_xor () =
  check_bit "1 ^ 1 = 0" Bit.Zero (Bit.xor Bit.One Bit.One);
  check_bit "1 ^ 0 = 1" Bit.One (Bit.xor Bit.One Bit.Zero);
  check_bit "x ^ 0 = x" Bit.X (Bit.xor Bit.X Bit.Zero);
  check_bit "1 ^ z = x" Bit.X (Bit.xor Bit.One Bit.Z)

let test_bit_not () =
  check_bit "~0" Bit.One (Bit.not_ Bit.Zero);
  check_bit "~1" Bit.Zero (Bit.not_ Bit.One);
  check_bit "~x" Bit.X (Bit.not_ Bit.X);
  check_bit "~z" Bit.X (Bit.not_ Bit.Z)

let test_bit_mux () =
  check_bit "sel=0" Bit.One (Bit.mux ~sel:Bit.Zero Bit.One Bit.Zero);
  check_bit "sel=1" Bit.Zero (Bit.mux ~sel:Bit.One Bit.One Bit.Zero);
  check_bit "sel=x, agree" Bit.One (Bit.mux ~sel:Bit.X Bit.One Bit.One);
  check_bit "sel=x, disagree" Bit.X (Bit.mux ~sel:Bit.X Bit.One Bit.Zero)

let test_bit_resolve () =
  check_bit "z resolves away" Bit.One (Bit.resolve Bit.Z Bit.One);
  check_bit "z resolves away 2" Bit.Zero (Bit.resolve Bit.Zero Bit.Z);
  check_bit "conflict" Bit.X (Bit.resolve Bit.Zero Bit.One);
  check_bit "agreement" Bit.One (Bit.resolve Bit.One Bit.One)

let test_bit_derived_gates () =
  check_bit "nand" Bit.Zero (Bit.nand Bit.One Bit.One);
  check_bit "nor" Bit.Zero (Bit.nor Bit.One Bit.Zero);
  check_bit "xnor" Bit.One (Bit.xnor Bit.One Bit.One)

(* {1 Bits} *)

let test_bits_of_int () =
  check_bits "5 as 4 bits" (Bits.of_string "0101") (Bits.of_int ~width:4 5);
  check_bits "-1 as 4 bits" (Bits.of_string "1111") (Bits.of_int ~width:4 (-1));
  check_bits "-56 as 8 bits" (Bits.of_string "11001000")
    (Bits.of_int ~width:8 (-56))

let test_bits_to_int () =
  Alcotest.(check (option int)) "to_int" (Some 10)
    (Bits.to_int (Bits.of_string "1010"));
  Alcotest.(check (option int)) "to_int with x" None
    (Bits.to_int (Bits.of_string "1x10"));
  Alcotest.(check (option int)) "signed negative" (Some (-6))
    (Bits.to_signed_int (Bits.of_string "1010"));
  Alcotest.(check (option int)) "signed positive" (Some 5)
    (Bits.to_signed_int (Bits.of_string "0101"));
  Alcotest.(check (option int)) "empty" (Some 0) (Bits.to_int (Bits.zero 0))

let test_bits_string_roundtrip () =
  let s = "1x0z_1010" in
  Alcotest.(check string) "roundtrip drops underscore" "1x0z1010"
    (Bits.to_string (Bits.of_string s));
  Alcotest.(check string) "0b prefix" "101"
    (Bits.to_string (Bits.of_string "0b101"))

let test_bits_slice_concat () =
  let v = Bits.of_string "110010" in
  check_bits "slice low" (Bits.of_string "10") (Bits.slice v ~lo:0 ~hi:1);
  check_bits "slice mid" (Bits.of_string "100") (Bits.slice v ~lo:2 ~hi:4);
  check_bits "concat"
    (Bits.of_string "11010")
    (Bits.concat (Bits.of_string "110") (Bits.of_string "10"))

let test_bits_extend () =
  check_bits "zero extend" (Bits.of_string "00101")
    (Bits.zero_extend (Bits.of_string "101") 5);
  check_bits "sign extend" (Bits.of_string "11101")
    (Bits.sign_extend (Bits.of_string "101") 5);
  check_bits "truncate" (Bits.of_string "01")
    (Bits.sign_extend (Bits.of_string "101") 2)

let test_bits_add_sub () =
  let a = Bits.of_int ~width:8 100 and b = Bits.of_int ~width:8 55 in
  Alcotest.(check (option int)) "100+55" (Some 155) (Bits.to_int (Bits.add a b));
  Alcotest.(check (option int)) "100-55" (Some 45) (Bits.to_int (Bits.sub a b));
  Alcotest.(check (option int)) "overflow wraps" (Some 44)
    (Bits.to_int (Bits.add (Bits.of_int ~width:8 200) (Bits.of_int ~width:8 100)));
  let sum, carry = Bits.add_carry (Bits.of_int ~width:4 15) (Bits.of_int ~width:4 1) ~cin:Bit.Zero in
  Alcotest.(check (option int)) "carry sum" (Some 0) (Bits.to_int sum);
  check_bit "carry out" Bit.One carry

let test_bits_add_x_poisons () =
  let a = Bits.of_string "1x10" and b = Bits.of_int ~width:4 1 in
  Alcotest.(check bool) "result has x" false (Bits.is_fully_defined (Bits.add a b))

let test_bits_neg () =
  Alcotest.(check (option int)) "neg 5" (Some (-5))
    (Bits.to_signed_int (Bits.neg (Bits.of_int ~width:8 5)));
  Alcotest.(check (option int)) "neg 0" (Some 0)
    (Bits.to_signed_int (Bits.neg (Bits.of_int ~width:8 0)))

let test_bits_mul () =
  Alcotest.(check (option int)) "12*13" (Some 156)
    (Bits.to_int (Bits.mul (Bits.of_int ~width:4 12) (Bits.of_int ~width:4 13)));
  Alcotest.(check (option int)) "signed -3*7" (Some (-21))
    (Bits.to_signed_int
       (Bits.mul_signed (Bits.of_int ~width:4 (-3)) (Bits.of_int ~width:4 7)));
  Alcotest.(check (option int)) "signed -8*-8 (min*min)" (Some 64)
    (Bits.to_signed_int
       (Bits.mul_signed (Bits.of_int ~width:4 (-8)) (Bits.of_int ~width:4 (-8))))

let test_bits_shift () =
  check_bits "shl" (Bits.of_string "0100") (Bits.shift_left (Bits.of_string "0001") 2);
  check_bits "shr" (Bits.of_string "0001") (Bits.shift_right (Bits.of_string "0100") 2)

let test_bits_reduce () =
  check_bit "and all ones" Bit.One (Bits.reduce_and (Bits.ones 5));
  check_bit "or of zero" Bit.Zero (Bits.reduce_or (Bits.zero 5));
  check_bit "xor parity" Bit.One (Bits.reduce_xor (Bits.of_string "0111"))

let test_bits_bitwise () =
  check_bits "and" (Bits.of_string "1000")
    (Bits.logand (Bits.of_string "1100") (Bits.of_string "1010"));
  check_bits "or" (Bits.of_string "1110")
    (Bits.logor (Bits.of_string "1100") (Bits.of_string "1010"));
  check_bits "xor" (Bits.of_string "0110")
    (Bits.logxor (Bits.of_string "1100") (Bits.of_string "1010"));
  check_bits "not" (Bits.of_string "0011") (Bits.lognot (Bits.of_string "1100"))

(* {1 Lut_init} *)

let test_lut_of_function () =
  let and2 = Lut_init.of_function ~inputs:2 (fun a -> a = 3) in
  Alcotest.(check int) "and2 init" 0x8 (Lut_init.to_int and2);
  Alcotest.(check string) "and2 hex" "8" (Lut_init.to_hex and2);
  let xor4 = Lut_init.xor_all ~inputs:4 in
  Alcotest.(check string) "xor4 hex" "6996" (Lut_init.to_hex xor4)

let test_lut_eval_defined () =
  let mux = Lut_init.of_function ~inputs:3 (fun a ->
    let x = a land 1 = 1 and y = a land 2 = 2 and s = a land 4 = 4 in
    if s then y else x)
  in
  check_bit "sel 0 picks x" Bit.One
    (Lut_init.eval mux [| Bit.One; Bit.Zero; Bit.Zero |]);
  check_bit "sel 1 picks y" Bit.Zero
    (Lut_init.eval mux [| Bit.One; Bit.Zero; Bit.One |])

let test_lut_eval_x () =
  let and2 = Lut_init.and_all ~inputs:2 in
  check_bit "0 & x = 0 through lut" Bit.Zero
    (Lut_init.eval and2 [| Bit.Zero; Bit.X |]);
  check_bit "1 & x = x through lut" Bit.X
    (Lut_init.eval and2 [| Bit.One; Bit.X |]);
  let const1 = Lut_init.const_true ~inputs:2 in
  check_bit "const is immune to x" Bit.One
    (Lut_init.eval const1 [| Bit.X; Bit.X |])

let test_lut_hex_roundtrip () =
  let t = Lut_init.of_hex ~inputs:4 "CAFE" in
  Alcotest.(check string) "roundtrip" "CAFE" (Lut_init.to_hex t);
  Alcotest.(check int) "int" 0xCAFE (Lut_init.to_int t)

let test_lut_passthrough () =
  let p = Lut_init.passthrough ~inputs:4 ~input:2 in
  check_bit "passes input 2" Bit.One
    (Lut_init.eval p [| Bit.Zero; Bit.Zero; Bit.One; Bit.Zero |]);
  check_bit "ignores others" Bit.Zero
    (Lut_init.eval p [| Bit.One; Bit.One; Bit.Zero; Bit.One |])

let test_lut_bad_inputs () =
  Alcotest.check_raises "0 inputs" (Invalid_argument "Lut_init: 0 inputs not in 1..6")
    (fun () -> ignore (Lut_init.of_int ~inputs:0 0));
  Alcotest.check_raises "7 inputs" (Invalid_argument "Lut_init: 7 inputs not in 1..6")
    (fun () -> ignore (Lut_init.of_int ~inputs:7 0))

(* {1 Properties} *)

let bits_gen width =
  QCheck.Gen.(map (fun k -> Bits.of_int ~width k) (int_bound ((1 lsl width) - 1)))

let arb_bits width =
  QCheck.make ~print:Bits.to_string (bits_gen width)

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches integer addition mod 2^w" ~count:500
    (QCheck.pair (arb_bits 10) (arb_bits 10))
    (fun (a, b) ->
       let expect =
         (Option.get (Bits.to_int a) + Option.get (Bits.to_int b)) land 1023
       in
       Bits.to_int (Bits.add a b) = Some expect)

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"sub (add a b) b = a" ~count:500
    (QCheck.pair (arb_bits 12) (arb_bits 12))
    (fun (a, b) -> Bits.equal (Bits.sub (Bits.add a b) b) a)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches integer product" ~count:500
    (QCheck.pair (arb_bits 8) (arb_bits 8))
    (fun (a, b) ->
       Bits.to_int (Bits.mul a b)
       = Some (Option.get (Bits.to_int a) * Option.get (Bits.to_int b)))

let prop_mul_signed_matches_int =
  QCheck.Test.make ~name:"mul_signed matches signed product" ~count:500
    (QCheck.pair (arb_bits 8) (arb_bits 8))
    (fun (a, b) ->
       Bits.to_signed_int (Bits.mul_signed a b)
       = Some
           (Option.get (Bits.to_signed_int a) * Option.get (Bits.to_signed_int b)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300
    (arb_bits 16)
    (fun v -> Bits.equal (Bits.of_string (Bits.to_string v)) v)

let prop_neg_involutive =
  QCheck.Test.make ~name:"neg (neg v) = v" ~count:300 (arb_bits 9)
    (fun v -> Bits.equal (Bits.neg (Bits.neg v)) v)

let prop_add_carry_is_wide_add =
  QCheck.Test.make ~name:"add_carry agrees with one-bit-wider addition"
    ~count:300
    (QCheck.pair (arb_bits 9) (arb_bits 9))
    (fun (a, b) ->
       let sum, carry = Bits.add_carry a b ~cin:Bit.Zero in
       let wide =
         Bits.add (Bits.zero_extend a 10) (Bits.zero_extend b 10)
       in
       Bits.equal (Bits.concat (Bits.of_list [ carry ]) sum) wide)

let prop_shift_left_multiplies =
  QCheck.Test.make ~name:"shift_left k multiplies by 2^k (mod width)"
    ~count:300
    (QCheck.pair (arb_bits 10) (QCheck.int_bound 9))
    (fun (v, k) ->
       Bits.to_int (Bits.shift_left v k)
       = Some ((Option.get (Bits.to_int v) lsl k) land 1023))

let prop_slice_concat_roundtrip =
  QCheck.Test.make ~name:"concat (slice hi) (slice lo) = id" ~count:300
    (QCheck.pair (arb_bits 12) (QCheck.int_range 1 11))
    (fun (v, cut) ->
       let lo = Bits.slice v ~lo:0 ~hi:(cut - 1) in
       let hi = Bits.slice v ~lo:cut ~hi:11 in
       Bits.equal (Bits.concat hi lo) v)

let prop_lut_eval_matches_function =
  QCheck.Test.make ~name:"lut eval matches defining function" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound 15))
    (fun (init, addr) ->
       let t = Lut_init.of_int ~inputs:4 init in
       let addr_bits =
         Array.init 4 (fun i -> Bit.of_bool ((addr lsr i) land 1 = 1))
       in
       Bit.equal (Lut_init.eval t addr_bits) (Bit.of_bool (Lut_init.eval_int t addr)))

(* {1 Packed plane view} *)

let test_planes_roundtrip () =
  let v = Bits.of_string "10xz01zx" in
  let p0, p1 = Bits.to_planes v in
  check_bits "roundtrip" v (Bits.of_planes ~width:8 p0 p1);
  (* the encoding itself: Zero=(0,0) One=(1,0) X=(0,1) Z=(1,1); bit i
     of each plane word is index i, and of_string is MSB-first, so the
     string reads i7..i0 left to right *)
  Alcotest.(check int) "plane0" 0b10010110 p0;
  Alcotest.(check int) "plane1" 0b00110011 p1

let test_planes_bounds () =
  Alcotest.check_raises "to_planes over 63"
    (Invalid_argument "Bits.to_planes: width 64 exceeds 63") (fun () ->
      ignore (Bits.to_planes (Bits.zero 64)));
  Alcotest.check_raises "of_planes over 63"
    (Invalid_argument "Bits.of_planes: width 64 out of 0..63") (fun () ->
      ignore (Bits.of_planes ~width:64 0 0));
  Alcotest.check_raises "of_planes negative"
    (Invalid_argument "Bits.of_planes: width -1 out of 0..63") (fun () ->
      ignore (Bits.of_planes ~width:(-1) 0 0));
  check_bits "empty ok" (Bits.zero 0) (Bits.of_planes ~width:0 0 0)

let arb_xz_bits width =
  QCheck.make
    ~print:(fun v -> Bits.to_string v)
    QCheck.Gen.(
      map
        (fun codes -> Bits.init width (fun i -> Bit.of_code codes.(i)))
        (array_repeat width (int_bound 3)))

let prop_planes_roundtrip =
  QCheck.Test.make ~name:"to_planes/of_planes roundtrip over 4 values"
    ~count:500 (arb_xz_bits 63) (fun v ->
      Bits.equal (Bits.of_planes ~width:63 (fst (Bits.to_planes v))
                    (snd (Bits.to_planes v)))
        v)

let suite =
  [ Alcotest.test_case "bit of_bool" `Quick test_bit_of_bool;
    Alcotest.test_case "bit to_bool" `Quick test_bit_to_bool;
    Alcotest.test_case "bit chars" `Quick test_bit_chars;
    Alcotest.test_case "bit and dominance" `Quick test_bit_and_dominance;
    Alcotest.test_case "bit or dominance" `Quick test_bit_or_dominance;
    Alcotest.test_case "bit xor" `Quick test_bit_xor;
    Alcotest.test_case "bit not" `Quick test_bit_not;
    Alcotest.test_case "bit mux" `Quick test_bit_mux;
    Alcotest.test_case "bit resolve" `Quick test_bit_resolve;
    Alcotest.test_case "bit derived gates" `Quick test_bit_derived_gates;
    Alcotest.test_case "bits of_int" `Quick test_bits_of_int;
    Alcotest.test_case "bits to_int" `Quick test_bits_to_int;
    Alcotest.test_case "bits string roundtrip" `Quick test_bits_string_roundtrip;
    Alcotest.test_case "bits slice/concat" `Quick test_bits_slice_concat;
    Alcotest.test_case "bits extend" `Quick test_bits_extend;
    Alcotest.test_case "bits add/sub" `Quick test_bits_add_sub;
    Alcotest.test_case "bits add x poisons" `Quick test_bits_add_x_poisons;
    Alcotest.test_case "bits neg" `Quick test_bits_neg;
    Alcotest.test_case "bits mul" `Quick test_bits_mul;
    Alcotest.test_case "bits shift" `Quick test_bits_shift;
    Alcotest.test_case "bits reduce" `Quick test_bits_reduce;
    Alcotest.test_case "bits bitwise" `Quick test_bits_bitwise;
    Alcotest.test_case "lut of_function" `Quick test_lut_of_function;
    Alcotest.test_case "lut eval defined" `Quick test_lut_eval_defined;
    Alcotest.test_case "lut eval x" `Quick test_lut_eval_x;
    Alcotest.test_case "lut hex roundtrip" `Quick test_lut_hex_roundtrip;
    Alcotest.test_case "lut passthrough" `Quick test_lut_passthrough;
    Alcotest.test_case "lut bad inputs" `Quick test_lut_bad_inputs;
    Alcotest.test_case "plane view roundtrip" `Quick test_planes_roundtrip;
    Alcotest.test_case "plane view bounds" `Quick test_planes_bounds ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_add_matches_int;
        prop_sub_add_inverse;
        prop_mul_matches_int;
        prop_mul_signed_matches_int;
        prop_string_roundtrip;
        prop_neg_involutive;
        prop_add_carry_is_wide_add;
        prop_shift_left_multiplies;
        prop_slice_concat_roundtrip;
        prop_lut_eval_matches_function;
        prop_planes_roundtrip ]
