(* Network-protocol tests: wire format, endpoints, black-box
   co-simulation against the monolithic simulator, and the Figure 4 /
   C1 cost model's shape. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Network = Jhdl_netproto.Network
module Protocol = Jhdl_netproto.Protocol
module Endpoint = Jhdl_netproto.Endpoint
module Cosim = Jhdl_netproto.Cosim
module Kcm = Jhdl_modgen.Kcm
module Counter = Jhdl_modgen.Counter
module Prng = Jhdl_faults.Prng
module Fault = Jhdl_faults.Fault

let bits = Alcotest.testable Bits.pp Bits.equal

(* {1 protocol} *)

let roundtrip message =
  match Protocol.decode (Protocol.encode message) with
  | Ok decoded -> decoded
  | Error reason -> Alcotest.failf "decode failed: %s" reason

let test_protocol_roundtrips () =
  let messages =
    [ Protocol.Set_inputs [ ("a", Bits.of_string "1x0z"); ("clk", Bits.of_string "1") ];
      Protocol.Cycle 1;
      Protocol.Cycle 1_000_000;
      Protocol.Reset;
      Protocol.Get_outputs [ "p"; "q" ];
      Protocol.Outputs_are [ ("p", Bits.of_string "0101") ];
      Protocol.Ack;
      Protocol.Protocol_error "no such port" ]
  in
  List.iter
    (fun m ->
       let back = roundtrip m in
       Alcotest.(check string)
         (Format.asprintf "%a" Protocol.pp m)
         (Format.asprintf "%a" Protocol.pp m)
         (Format.asprintf "%a" Protocol.pp back))
    messages

let test_protocol_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Protocol.decode ""));
  Alcotest.(check bool) "unknown tag" true (Result.is_error (Protocol.decode "Z"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Protocol.decode "I\x00\x02"));
  Alcotest.(check bool) "trailing" true
    (Result.is_error (Protocol.decode (Protocol.encode Protocol.Ack ^ "x")))

let test_protocol_sizes () =
  Alcotest.(check int) "ack is one byte" 1 (Protocol.size Protocol.Ack);
  Alcotest.(check bool) "inputs scale with payload" true
    (Protocol.size (Protocol.Set_inputs [ ("a", Bits.zero 64) ])
     > Protocol.size (Protocol.Set_inputs [ ("a", Bits.zero 8) ]))

let prop_protocol_roundtrip =
  let gen =
    QCheck.Gen.(
      let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
      let value =
        map
          (fun (w, k) -> Bits.of_int ~width:w k)
          (pair (int_range 1 24) (int_bound 0xFFFF))
      in
      oneof
        [ map (fun pairs -> Protocol.Set_inputs pairs)
            (small_list (pair name value));
          map (fun n -> Protocol.Cycle n) (int_bound 1000000);
          return Protocol.Reset;
          map (fun names -> Protocol.Get_outputs names) (small_list name);
          map (fun pairs -> Protocol.Outputs_are pairs)
            (small_list (pair name value));
          return Protocol.Ack;
          map (fun s -> Protocol.Protocol_error s) name ])
  in
  QCheck.Test.make ~name:"protocol encode/decode roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Protocol.pp) gen)
    (fun m ->
       match Protocol.decode (Protocol.encode m) with
       | Ok back ->
         Format.asprintf "%a" Protocol.pp back = Format.asprintf "%a" Protocol.pp m
       | Error _ -> false)

(* {1 packets: sequence numbers + checksums} *)

(* seeded message generator for the packet roundtrip sweep *)
let random_message prng =
  let name () =
    String.init
      (1 + Prng.int prng 8)
      (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
  in
  let value () =
    Bits.of_int ~width:(1 + Prng.int prng 24) (Prng.int prng 0x10000)
  in
  let pairs () = List.init (Prng.int prng 4) (fun _ -> (name (), value ())) in
  match Prng.int prng 7 with
  | 0 -> Protocol.Set_inputs (pairs ())
  | 1 -> Protocol.Cycle (Prng.int prng 1_000_000)
  | 2 -> Protocol.Reset
  | 3 -> Protocol.Get_outputs (List.init (Prng.int prng 5) (fun _ -> name ()))
  | 4 -> Protocol.Outputs_are (pairs ())
  | 5 -> Protocol.Ack
  | _ -> Protocol.Protocol_error (name ())

let test_packet_roundtrip_sweep () =
  let prng = Prng.create 7 in
  for _ = 1 to 200 do
    let message = random_message prng in
    let seq = Prng.int prng (Protocol.max_seq + 1) in
    Alcotest.(check int) "size matches encoded length"
      (String.length (Protocol.encode message))
      (Protocol.size message);
    let frame = Protocol.encode_packet ~seq message in
    Alcotest.(check int) "packet_size matches framed length"
      (String.length frame)
      (Protocol.packet_size { Protocol.seq; payload = message });
    match Protocol.decode_packet frame with
    | Error reason -> Alcotest.failf "decode_packet failed: %s" reason
    | Ok packet ->
      Alcotest.(check int) "seq survives" seq packet.Protocol.seq;
      Alcotest.(check string) "payload survives"
        (Format.asprintf "%a" Protocol.pp message)
        (Format.asprintf "%a" Protocol.pp packet.Protocol.payload)
  done

let test_packet_detects_any_single_byte_corruption () =
  let frame =
    Protocol.encode_packet ~seq:513
      (Protocol.Set_inputs [ ("multiplicand", Bits.of_string "1x0z1010") ])
  in
  (* flip every byte in turn, including the seq and checksum fields:
     CRC-16 must reject each one *)
  String.iteri
    (fun i _ ->
       let mangled = Bytes.of_string frame in
       Bytes.set mangled i (Char.chr (Char.code frame.[i] lxor 0x41));
       Alcotest.(check bool)
         (Printf.sprintf "corruption at byte %d detected" i)
         true
         (Result.is_error (Protocol.decode_packet (Bytes.to_string mangled))))
    frame;
  Alcotest.(check bool) "short frame rejected" true
    (Result.is_error (Protocol.decode_packet "ab"))

let test_prng_determinism_and_split () =
  let a = Prng.create 5 and b = Prng.create 5 in
  let child_a = Prng.split a and child_b = Prng.split b in
  for _ = 1 to 50 do
    Alcotest.(check (float 0.0)) "same seed, same stream" (Prng.float a)
      (Prng.float b);
    Alcotest.(check (float 0.0)) "same split, same child stream"
      (Prng.float child_a) (Prng.float child_b)
  done;
  let c = Prng.create 6 in
  Alcotest.(check bool) "different seeds diverge" true
    (Prng.float a <> Prng.float c);
  let d = Prng.create 9 in
  for _ = 1 to 100 do
    let f = Prng.float d in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let k = Prng.int d 10 in
    Alcotest.(check bool) "int in bound" true (k >= 0 && k < 10)
  done

(* {1 network model} *)

let test_network_accounting () =
  let channel = Network.create (Network.with_rtt Network.lan 0.010) in
  Network.send channel ~bytes:100;
  Network.send channel ~bytes:100;
  Alcotest.(check int) "two messages" 2 (Network.messages channel);
  Alcotest.(check bool) "latency dominates small messages" true
    (Network.elapsed_seconds channel > 0.0099);
  let before = Network.elapsed_seconds channel in
  Network.add_compute channel 1.0;
  Alcotest.(check bool) "compute added" true
    (Network.elapsed_seconds channel -. before >= 1.0)

let test_network_bandwidth_term () =
  let fast = Network.create Network.lan in
  let slow = Network.create Network.modem in
  Network.send fast ~bytes:100_000;
  Network.send slow ~bytes:100_000;
  Alcotest.(check bool) "modem slower" true
    (Network.elapsed_seconds slow > Network.elapsed_seconds fast)

(* {1 endpoints and cosim} *)

let kcm_design ~constant =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 19 in
  let kcm =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  (d, kcm)

let kcm_endpoint ~constant =
  let d, kcm = kcm_design ~constant in
  let clk =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  (Endpoint.of_simulator ~name:"kcm" (Simulator.create ~clock:clk d), kcm)

let test_endpoint_handles_messages () =
  let endpoint, kcm = kcm_endpoint ~constant:(-56) in
  ignore kcm;
  (match
     Endpoint.handle endpoint
       (Protocol.Set_inputs [ ("multiplicand", Bits.of_int ~width:8 100) ])
   with
   | Protocol.Ack -> ()
   | _ -> Alcotest.fail "expected ack");
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "product" ]) with
  | Protocol.Outputs_are [ ("product", v) ] ->
    Alcotest.(check (option int)) "-56*100" (Some (-5600)) (Bits.to_signed_int v)
  | _ -> Alcotest.fail "expected outputs"

let test_endpoint_bad_port () =
  let endpoint, _ = kcm_endpoint ~constant:7 in
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "bogus" ]) with
  | Protocol.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected protocol error"

let test_endpoint_reset () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let endpoint =
    Endpoint.of_simulator ~name:"counter"
      (Simulator.create
         ~clock:(match Design.find_port d "clk" with
                 | Some p -> p.Design.port_wire
                 | None -> assert false)
         d)
  in
  let _ = Endpoint.handle endpoint (Protocol.Cycle 5) in
  let _ = Endpoint.handle endpoint Protocol.Reset in
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "q" ]) with
  | Protocol.Outputs_are [ (_, v) ] ->
    Alcotest.check bits "back to zero" (Bits.zero 4) v
  | _ -> Alcotest.fail "expected outputs"

(* black-box co-simulation must agree with direct simulation *)
let test_cosim_matches_monolithic () =
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.campus;
  let direct_design, _ = kcm_design ~constant:(-56) in
  let direct = Simulator.create direct_design in
  List.iter
    (fun x ->
       let xb = Bits.of_int ~width:8 x in
       Cosim.set_inputs cosim ~box:"kcm" [ ("multiplicand", xb) ];
       Simulator.set_input direct "multiplicand" xb;
       let remote = Cosim.get_output cosim ~box:"kcm" "product" in
       Alcotest.check bits
         (Printf.sprintf "agree on %d" x)
         (Simulator.get_port direct "product")
         remote;
       Cosim.cycle cosim;
       Simulator.cycle direct)
    [ 0; 1; -1; 100; -100; 127; -128 ];
  Alcotest.(check bool) "traffic recorded" true (Cosim.total_messages cosim > 20)

let test_cosim_duplicate_names_rejected () =
  let e1, _ = kcm_endpoint ~constant:1 in
  let e2, _ = kcm_endpoint ~constant:2 in
  let cosim = Cosim.create () in
  Cosim.attach cosim e1 Network.loopback;
  Alcotest.(check bool) "duplicate refused" true
    (try Cosim.attach cosim e2 Network.loopback; false
     with Invalid_argument _ -> true)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_cosim_unknown_box () =
  let endpoint, _ = kcm_endpoint ~constant:3 in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.loopback;
  Alcotest.(check bool) "unknown box refused" true
    (try
       let _ = Cosim.get_output cosim ~box:"nonexistent" "product" in
       false
     with Invalid_argument message ->
       (* the message must name the missing box *)
       contains_substring message "nonexistent")

let test_cosim_protocol_error_surfaces () =
  let endpoint, _ = kcm_endpoint ~constant:3 in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.loopback;
  Alcotest.(check bool) "bad port surfaces as Invalid_argument naming the box"
    true
    (try
       Cosim.set_inputs cosim ~box:"kcm" [ ("bogus", Bits.of_int ~width:8 1) ];
       false
     with Invalid_argument message -> contains_substring message "kcm")

(* {1 fault injection and recovery} *)

let counter_endpoint () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  Endpoint.of_simulator ~name:"counter"
    (Simulator.create
       ~clock:(match Design.find_port d "clk" with
               | Some p -> p.Design.port_wire
               | None -> assert false)
       d)

let test_endpoint_dedupes_retransmissions () =
  let endpoint = counter_endpoint () in
  let cycle_packet = { Protocol.seq = 17; payload = Protocol.Cycle 1 } in
  let first = Endpoint.handle_packet endpoint cycle_packet in
  (* the reply was "lost"; the sender retransmits the same sequence *)
  let second = Endpoint.handle_packet endpoint cycle_packet in
  Alcotest.(check bool) "replayed reply matches" true
    (Format.asprintf "%a" Protocol.pp first.Protocol.payload
     = Format.asprintf "%a" Protocol.pp second.Protocol.payload);
  match
    Endpoint.handle_packet endpoint
      { Protocol.seq = 18; payload = Protocol.Get_outputs [ "q" ] }
  with
  | { Protocol.payload = Protocol.Outputs_are [ (_, v) ]; _ } ->
    (* two deliveries of seq 17 must clock the counter exactly once *)
    Alcotest.check bits "clocked once, not twice" (Bits.of_int ~width:8 1) v
  | _ -> Alcotest.fail "expected outputs"

let test_network_transmit_faults () =
  let clean = Network.create Network.lan in
  (match Network.transmit clean ~bytes:50 with
   | Network.Delivered -> ()
   | _ -> Alcotest.fail "clean channel must deliver");
  let lossy =
    Network.create
      ~faults:(Fault.only Fault.Drop ~rate:1.0 ~seed:3)
      Network.lan
  in
  (match Network.transmit lossy ~bytes:50 with
   | Network.Dropped -> ()
   | _ -> Alcotest.fail "certain drop must drop");
  Alcotest.(check int) "drop tallied" 1
    (List.assoc Fault.Drop (Network.fault_counts lossy));
  let flaky =
    Network.create
      ~faults:(Fault.only Fault.Latency_spike ~rate:1.0 ~seed:3)
      Network.lan
  in
  let before = Network.elapsed_seconds flaky in
  (match Network.transmit flaky ~bytes:50 with
   | Network.Delivered -> ()
   | _ -> Alcotest.fail "spikes still deliver");
  Alcotest.(check bool) "spike charged extra time" true
    (Network.elapsed_seconds flaky -. before > 0.2)

(* drive a short session and collect every observed output *)
let drive_session cosim =
  let outputs = ref [] in
  for i = 0 to 11 do
    Cosim.set_inputs cosim ~box:"kcm"
      [ ("multiplicand", Bits.of_int ~width:8 (17 * i land 0xFF)) ];
    outputs := Cosim.get_output cosim ~box:"kcm" "product" :: !outputs;
    Cosim.cycle cosim
  done;
  List.rev !outputs

let baseline_outputs () =
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.campus;
  drive_session cosim

(* The fault matrix: {kind} x {rate} x {retry on/off}. Every cell must
   either recover (outputs byte-identical to the fault-free run) or fail
   cleanly with Exchange_failed — never return wrong data. *)
let test_fault_matrix () =
  let baseline = baseline_outputs () in
  List.iter
    (fun kind ->
       List.iter
         (fun rate ->
            List.iter
              (fun (retry_name, retry) ->
                 let cell =
                   Printf.sprintf "%s @ %.0f%% (%s)" (Fault.kind_name kind)
                     (rate *. 100.0) retry_name
                 in
                 let endpoint, _ = kcm_endpoint ~constant:(-56) in
                 let cosim = Cosim.create () in
                 Cosim.attach cosim
                   ?faults:
                     (if rate > 0.0 then
                        Some (Fault.only kind ~rate ~seed:11)
                      else None)
                   ~retry endpoint Network.campus;
                 match drive_session cosim with
                 | outputs ->
                   Alcotest.(check int)
                     (cell ^ ": recovered run has every output")
                     (List.length baseline) (List.length outputs);
                   List.iteri
                     (fun i (expected, actual) ->
                        Alcotest.check bits
                          (Printf.sprintf "%s: output %d identical" cell i)
                          expected actual)
                     (List.combine baseline outputs);
                   if rate > 0.0 && Cosim.total_faults_injected cosim > 0 then
                     Alcotest.(check bool)
                       (cell ^ ": recovery cost simulated time")
                       true
                       (Cosim.total_retries cosim > 0
                        || List.assoc Fault.Duplicate (Cosim.fault_counts cosim)
                           > 0
                        || List.assoc Fault.Latency_spike
                             (Cosim.fault_counts cosim)
                           > 0)
                 | exception Cosim.Exchange_failed _ ->
                   (* clean failure: only acceptable on an actually
                      faulty channel *)
                   Alcotest.(check bool)
                     (cell ^ ": clean failure only under faults") true
                     (rate > 0.0))
              [ ("retries on", Cosim.default_retry);
                ("retries off", Cosim.no_retry) ])
         [ 0.0; 0.05; 0.5 ])
    Fault.all_kinds

(* 5% drop with retries must recover fully: every cell of this config
   is the acceptance criterion of the fault-injection PR *)
let test_drop_with_retries_recovers () =
  let baseline = baseline_outputs () in
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  let cosim = Cosim.create () in
  Cosim.attach cosim
    ~faults:(Fault.only Fault.Drop ~rate:0.05 ~seed:42)
    ~retry:Cosim.default_retry endpoint Network.campus;
  let outputs = drive_session cosim in
  List.iteri
    (fun i (expected, actual) ->
       Alcotest.check bits (Printf.sprintf "output %d identical" i) expected
         actual)
    (List.combine baseline outputs)

(* acceptance: seed fixed, 5% drop + retries => byte-identical outputs,
   strictly more simulated wall time, nonzero retry accounting *)
let test_faulty_run_determinism_and_cost () =
  let collect ?faults () =
    let endpoint, _ = kcm_endpoint ~constant:(-56) in
    let acc = ref [] in
    let cost =
      Cosim.simulation_cost ~arch:Cosim.Webcad ~network:Network.campus
        ~endpoint ~cycles:200
        ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 (i land 0xFF)) ])
        ~observe:[ "product" ] ?faults
        ~on_outputs:(fun _ pairs -> acc := pairs :: !acc)
        ()
    in
    (cost, List.rev !acc)
  in
  let faults = Fault.only Fault.Drop ~rate:0.05 ~seed:42 in
  let clean_cost, clean_outputs = collect () in
  let faulty_cost, faulty_outputs = collect ~faults () in
  let faulty_cost2, faulty_outputs2 = collect ~faults () in
  Alcotest.(check int) "same sample count"
    (List.length clean_outputs) (List.length faulty_outputs);
  List.iter2
    (fun a b ->
       match (a, b) with
       | [ (_, va) ], [ (_, vb) ] ->
         Alcotest.check bits "faulty run output identical to clean run" va vb
       | _ -> Alcotest.fail "unexpected shape")
    clean_outputs faulty_outputs;
  Alcotest.(check bool) "faults were actually injected" true
    (faulty_cost.Cosim.faults_injected > 0);
  Alcotest.(check bool) "retries happened" true
    (faulty_cost.Cosim.retry_count > 0);
  Alcotest.(check bool) "recovery retransmitted bytes" true
    (faulty_cost.Cosim.retransmitted_bytes > 0);
  Alcotest.(check bool) "recovery costs wall time" true
    (faulty_cost.Cosim.wall_seconds > clean_cost.Cosim.wall_seconds);
  Alcotest.(check bool) "clean run pays no recovery" true
    (clean_cost.Cosim.retry_count = 0
     && clean_cost.Cosim.faults_injected = 0);
  (* same seed => bit-for-bit replay, including the cost accounting *)
  Alcotest.(check (float 0.0)) "replay: same wall clock"
    faulty_cost.Cosim.wall_seconds faulty_cost2.Cosim.wall_seconds;
  Alcotest.(check int) "replay: same retries"
    faulty_cost.Cosim.retry_count faulty_cost2.Cosim.retry_count;
  List.iter2
    (fun a b ->
       match (a, b) with
       | [ (_, va) ], [ (_, vb) ] -> Alcotest.check bits "replay: same outputs" va vb
       | _ -> Alcotest.fail "unexpected shape")
    faulty_outputs faulty_outputs2

(* {1 architecture cost model (claim C1)} *)

let session_cost ~arch ~rtt =
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  Cosim.simulation_cost ~arch ~network:(Network.with_rtt Network.campus rtt)
    ~endpoint ~cycles:100
    ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 (i land 0x7F)) ])
    ~observe:[ "product" ] ()

let test_local_beats_remote () =
  let rtt = 0.020 in
  let local = session_cost ~arch:Cosim.Local_applet ~rtt in
  let webcad = session_cost ~arch:Cosim.Webcad ~rtt in
  let javacad = session_cost ~arch:Cosim.Javacad ~rtt in
  Alcotest.(check bool) "local is fastest" true
    (local.Cosim.wall_seconds < webcad.Cosim.wall_seconds
     && local.Cosim.wall_seconds < javacad.Cosim.wall_seconds);
  Alcotest.(check bool) "rmi overhead costs more than raw sockets" true
    (javacad.Cosim.byte_count > webcad.Cosim.byte_count)

let test_remote_scales_with_rtt () =
  let webcad_slow = session_cost ~arch:Cosim.Webcad ~rtt:0.100 in
  let webcad_fast = session_cost ~arch:Cosim.Webcad ~rtt:0.001 in
  let local_slow = session_cost ~arch:Cosim.Local_applet ~rtt:0.100 in
  let local_fast = session_cost ~arch:Cosim.Local_applet ~rtt:0.001 in
  Alcotest.(check bool) "webcad grows with rtt" true
    (webcad_slow.Cosim.wall_seconds > 10.0 *. webcad_fast.Cosim.wall_seconds);
  Alcotest.(check bool) "local is rtt-independent" true
    (abs_float (local_slow.Cosim.wall_seconds -. local_fast.Cosim.wall_seconds)
     < 1e-9)

let test_outputs_functionally_identical_across_archs () =
  let collect arch =
    let acc = ref [] in
    let _ =
      let endpoint, _ = kcm_endpoint ~constant:(-56) in
      Cosim.simulation_cost ~arch ~network:Network.campus ~endpoint ~cycles:10
        ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 (i * 11)) ])
        ~observe:[ "product" ]
        ~on_outputs:(fun _ pairs -> acc := pairs :: !acc)
        ()
    in
    List.rev !acc
  in
  let local = collect Cosim.Local_applet in
  let webcad = collect Cosim.Webcad in
  Alcotest.(check int) "same sample count" (List.length local) (List.length webcad);
  List.iter2
    (fun a b ->
       match a, b with
       | [ (_, va) ], [ (_, vb) ] -> Alcotest.check bits "same value" va vb
       | _ -> Alcotest.fail "unexpected shape")
    local webcad

(* {1 crash-safe sessions} *)

module Reference = Jhdl_sim.Reference

let port_wire d name =
  match Design.find_port d name with
  | Some p -> p.Design.port_wire
  | None -> Alcotest.failf "no port %s" name

(* the unfaulted golden run: the interpreter, no network at all *)
let golden_kcm_run () =
  let d, _ = kcm_design ~constant:(-56) in
  let r = Reference.create ~clock:(port_wire d "clk") d in
  Reference.watch r ~label:"product" (port_wire d "product");
  let outputs = ref [] in
  for i = 0 to 11 do
    Reference.set_input r "multiplicand"
      (Bits.of_int ~width:8 (17 * i land 0xFF));
    outputs := Reference.get_port r "product" :: !outputs;
    Reference.cycle r
  done;
  (List.rev !outputs, Reference.history r)

let kcm_endpoint_watched () =
  let d, _ = kcm_design ~constant:(-56) in
  let sim = Simulator.create ~clock:(port_wire d "clk") d in
  Simulator.watch sim ~label:"product" (port_wire d "product");
  (Endpoint.of_simulator ~name:"kcm" sim, sim)

let check_against_golden label (golden_outputs, golden_history) outputs sim =
  List.iteri
    (fun i (expected, actual) ->
       Alcotest.check bits
         (Printf.sprintf "%s: output %d matches golden" label i)
         expected actual)
    (List.combine golden_outputs outputs);
  List.iter2
    (fun (glabel, gsamples) (slabel, ssamples) ->
       Alcotest.(check string) (label ^ ": history label") glabel slabel;
       Alcotest.(check int)
         (label ^ ": history length")
         (List.length gsamples) (List.length ssamples);
       List.iter2
         (fun (gc, gv) (sc, sv) ->
            Alcotest.(check int) (label ^ ": sample cycle") gc sc;
            Alcotest.check bits (label ^ ": sample value") gv sv)
         gsamples ssamples)
    golden_history (Simulator.history sim)

(* a scripted mid-run crash with the session layer armed is invisible in
   the answers: checkpoint + journal replay + resume reconstruct
   everything, including the waveform history *)
let test_scripted_crash_resumes_bit_identical () =
  let golden = golden_kcm_run () in
  let run () =
    let endpoint, sim = kcm_endpoint_watched () in
    let cosim = Cosim.create () in
    Cosim.attach cosim ~session:Cosim.default_session_policy endpoint
      Network.campus;
    Cosim.crash_at cosim ~box:"kcm" ~exchange:9;
    let outputs = drive_session cosim in
    (cosim, outputs, sim)
  in
  let cosim, outputs, sim = run () in
  check_against_golden "crash_at" golden outputs sim;
  Alcotest.(check int) "exactly one crash" 1
    (Cosim.total_session_crashes cosim);
  Alcotest.(check bool) "resumed at least once" true
    (Cosim.total_resumes cosim >= 1);
  Alcotest.(check bool) "journal replayed" true
    (Cosim.total_replayed_messages cosim > 0);
  (* scripted crashes are deterministic: byte-for-byte replay *)
  let cosim2, outputs2, _ = run () in
  Alcotest.(check int) "replay: same messages"
    (Cosim.total_messages cosim) (Cosim.total_messages cosim2);
  Alcotest.(check int) "replay: same bytes"
    (Cosim.total_bytes cosim) (Cosim.total_bytes cosim2);
  Alcotest.(check (float 0.0)) "replay: same wall clock"
    (Cosim.elapsed_seconds cosim) (Cosim.elapsed_seconds cosim2);
  List.iter2 (Alcotest.check bits "replay: same outputs") outputs outputs2

(* a crash without the session layer stays a clean failure *)
let test_scripted_crash_without_session_fails_cleanly () =
  let endpoint, _ = kcm_endpoint_watched () in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.campus;
  Cosim.crash_at cosim ~box:"kcm" ~exchange:2;
  (match drive_session cosim with
   | _ -> Alcotest.fail "expected Exchange_failed"
   | exception Cosim.Exchange_failed reason ->
     Alcotest.(check bool) "failure names the box" true
       (contains_substring reason "kcm"));
  Alcotest.(check bool) "endpoint is dead" true
    (not (Endpoint.is_alive endpoint))

(* the chaos run: randomized crash, drop and corruption points, several
   seeds — every recovered run must be bit-identical to the golden
   interpreter run, and each seed must replay deterministically *)
let test_chaos_crash_points_match_golden () =
  let golden = golden_kcm_run () in
  let chaos_faults seed =
    { Fault.none with
      Fault.drop_rate = 0.10;
      corrupt_rate = 0.05;
      session_crash_rate = 0.08;
      seed }
  in
  let run seed =
    let endpoint, sim = kcm_endpoint_watched () in
    let cosim = Cosim.create () in
    Cosim.attach cosim ~faults:(chaos_faults seed)
      ~session:
        { Cosim.default_session_policy with
          Cosim.checkpoint_every = 4;
          (* heavy chaos: a resume can itself be crashed, so give each
             exchange a deep recovery budget *)
          resume_attempts = 10 }
      endpoint Network.campus;
    let outputs = drive_session cosim in
    (cosim, outputs, sim)
  in
  let total_crashes = ref 0 in
  List.iter
    (fun seed ->
       let label = Printf.sprintf "chaos seed %d" seed in
       let cosim, outputs, sim = run seed in
       check_against_golden label golden outputs sim;
       total_crashes := !total_crashes + Cosim.total_session_crashes cosim;
       let cosim2, outputs2, _ = run seed in
       Alcotest.(check int) (label ^ ": replay same crashes")
         (Cosim.total_session_crashes cosim)
         (Cosim.total_session_crashes cosim2);
       Alcotest.(check int) (label ^ ": replay same resumes")
         (Cosim.total_resumes cosim) (Cosim.total_resumes cosim2);
       Alcotest.(check (float 0.0)) (label ^ ": replay same wall clock")
         (Cosim.elapsed_seconds cosim) (Cosim.elapsed_seconds cosim2);
       List.iter2
         (Alcotest.check bits (label ^ ": replay same outputs"))
         outputs outputs2)
    [ 3; 7; 11; 42; 1337 ];
  (* the sweep is pointless if nothing ever crashed *)
  Alcotest.(check bool) "some seed actually crashed the endpoint" true
    (!total_crashes > 0)

(* {1 endpoint edge cases} *)

(* a late duplicate from before a Reset must be refused, not re-executed:
   replaying it would clock the freshly-reset counter *)
let test_stale_duplicate_across_reset_refused () =
  let endpoint = counter_endpoint () in
  let cycle_packet = { Protocol.seq = 10; payload = Protocol.Cycle 1 } in
  let _ = Endpoint.handle_packet endpoint cycle_packet in
  let _ =
    Endpoint.handle_packet endpoint { Protocol.seq = 11; payload = Protocol.Reset }
  in
  (match Endpoint.handle_packet endpoint cycle_packet with
   | { Protocol.payload = Protocol.Protocol_error reason; _ } ->
     Alcotest.(check bool) "refusal says stale" true
       (contains_substring reason "stale")
   | _ -> Alcotest.fail "expected stale-sequence refusal");
  match
    Endpoint.handle_packet endpoint
      { Protocol.seq = 12; payload = Protocol.Get_outputs [ "q" ] }
  with
  | { Protocol.payload = Protocol.Outputs_are [ (_, v) ]; _ } ->
    Alcotest.check bits "counter still reset" (Bits.zero 8) v
  | _ -> Alcotest.fail "expected outputs"

(* sequence numbers wrap at 2^16: 0 right after 65535 is the next
   request, not a 65535-step-old duplicate *)
let test_sequence_wraparound () =
  let endpoint = counter_endpoint () in
  let _ =
    Endpoint.handle_packet endpoint
      { Protocol.seq = Protocol.max_seq; payload = Protocol.Cycle 1 }
  in
  (match
     Endpoint.handle_packet endpoint
       { Protocol.seq = 0; payload = Protocol.Cycle 1 }
   with
   | { Protocol.payload = Protocol.Ack; _ } -> ()
   | _ -> Alcotest.fail "wrapped sequence must execute");
  (match
     Endpoint.handle_packet endpoint
       { Protocol.seq = 1; payload = Protocol.Get_outputs [ "q" ] }
   with
   | { Protocol.payload = Protocol.Outputs_are [ (_, v) ]; _ } ->
     Alcotest.check bits "both cycles applied" (Bits.of_int ~width:8 2) v
   | _ -> Alcotest.fail "expected outputs");
  (* and the old pre-wrap sequence is now stale *)
  match
    Endpoint.handle_packet endpoint
      { Protocol.seq = Protocol.max_seq; payload = Protocol.Cycle 1 }
  with
  | { Protocol.payload = Protocol.Protocol_error reason; _ } ->
    Alcotest.(check bool) "pre-wrap duplicate refused" true
      (contains_substring reason "stale")
  | _ -> Alcotest.fail "expected stale-sequence refusal"

(* a retransmitted request whose cached reply was corrupted in flight:
   the sender asks again with the same sequence number and must get the
   same answer, computed zero additional times *)
let test_corrupted_reply_retransmission_replays_cache () =
  let endpoint = counter_endpoint () in
  let _ =
    Endpoint.handle_packet endpoint { Protocol.seq = 1; payload = Protocol.Cycle 3 }
  in
  let read = { Protocol.seq = 2; payload = Protocol.Get_outputs [ "q" ] } in
  let first = Endpoint.handle_packet endpoint read in
  let journal_after_first = Endpoint.journal_length endpoint in
  (* the reply is mangled on the wire; the sender's CRC rejects it and
     retransmits the identical request *)
  let second = Endpoint.handle_packet endpoint read in
  Alcotest.(check string) "cached reply replayed verbatim"
    (Format.asprintf "%a" Protocol.pp first.Protocol.payload)
    (Format.asprintf "%a" Protocol.pp second.Protocol.payload);
  Alcotest.(check int) "replay did not re-journal" journal_after_first
    (Endpoint.journal_length endpoint);
  match
    Endpoint.handle_packet endpoint
      { Protocol.seq = 3; payload = Protocol.Get_outputs [ "q" ] }
  with
  | { Protocol.payload = Protocol.Outputs_are [ (_, v) ]; _ } ->
    Alcotest.check bits "counter advanced exactly 3" (Bits.of_int ~width:8 3) v
  | _ -> Alcotest.fail "expected outputs"

(* the journal is bounded: overflow forces an automatic checkpoint, and
   a crash right after still restarts to the exact state *)
let test_journal_overflow_autocheckpoints () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let endpoint =
    Endpoint.of_simulator ~journal_cap:4 ~name:"counter"
      (Simulator.create ~clock:(port_wire d "clk") d)
  in
  (match
     Endpoint.handle_packet endpoint
       { Protocol.seq = 0; payload = Protocol.Hello "s" }
   with
   | { Protocol.payload = Protocol.Ack; _ } -> ()
   | _ -> Alcotest.fail "hello refused");
  for i = 1 to 12 do
    match
      Endpoint.handle_packet endpoint
        { Protocol.seq = i; payload = Protocol.Cycle 1 }
    with
    | { Protocol.payload = Protocol.Ack; _ } -> ()
    | _ -> Alcotest.failf "cycle %d refused" i
  done;
  Alcotest.(check bool) "journal stays bounded" true
    (Endpoint.journal_length endpoint <= 4);
  Alcotest.(check bool) "overflow forced checkpoints" true
    (Endpoint.checkpoints_taken endpoint >= 2);
  Endpoint.crash endpoint;
  (match Endpoint.restart endpoint with
   | Ok replayed ->
     Alcotest.(check bool) "replay bounded by journal cap" true (replayed <= 4)
   | Error reason -> Alcotest.failf "restart failed: %s" reason);
  match
    Endpoint.handle_packet endpoint
      { Protocol.seq = 13; payload = Protocol.Get_outputs [ "q" ] }
  with
  | { Protocol.payload = Protocol.Outputs_are [ (_, v) ]; _ } ->
    Alcotest.check bits "all 12 cycles survive the crash"
      (Bits.of_int ~width:8 12) v
  | _ -> Alcotest.fail "expected outputs"

(* restart without a session has nothing durable to restore *)
let test_restart_without_session_fails () =
  let endpoint = counter_endpoint () in
  Endpoint.crash endpoint;
  (match Endpoint.restart endpoint with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "restart must fail without a session");
  Alcotest.(check bool) "dead endpoint refuses packets" true
    (try
       let _ =
         Endpoint.handle_packet endpoint
           { Protocol.seq = 0; payload = Protocol.Ack }
       in
       false
     with Invalid_argument _ -> true)

(* fuzz: arbitrary bytes never crash the decoder *)
let prop_decode_fuzz =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 64) QCheck.Gen.char)
    (fun junk ->
       match Protocol.decode junk with
       | Ok _ | Error _ -> true)

let suite =
  [ Alcotest.test_case "protocol roundtrips" `Quick test_protocol_roundtrips;
    Alcotest.test_case "protocol rejects garbage" `Quick
      test_protocol_rejects_garbage;
    Alcotest.test_case "protocol sizes" `Quick test_protocol_sizes;
    Alcotest.test_case "network accounting" `Quick test_network_accounting;
    Alcotest.test_case "network bandwidth term" `Quick
      test_network_bandwidth_term;
    Alcotest.test_case "endpoint handles messages" `Quick
      test_endpoint_handles_messages;
    Alcotest.test_case "endpoint bad port" `Quick test_endpoint_bad_port;
    Alcotest.test_case "endpoint reset" `Quick test_endpoint_reset;
    Alcotest.test_case "cosim matches monolithic" `Quick
      test_cosim_matches_monolithic;
    Alcotest.test_case "cosim duplicate names" `Quick
      test_cosim_duplicate_names_rejected;
    Alcotest.test_case "cosim unknown box" `Quick test_cosim_unknown_box;
    Alcotest.test_case "cosim protocol error surfaces" `Quick
      test_cosim_protocol_error_surfaces;
    Alcotest.test_case "packet roundtrip sweep" `Quick
      test_packet_roundtrip_sweep;
    Alcotest.test_case "packet detects single-byte corruption" `Quick
      test_packet_detects_any_single_byte_corruption;
    Alcotest.test_case "prng determinism and split" `Quick
      test_prng_determinism_and_split;
    Alcotest.test_case "endpoint dedupes retransmissions" `Quick
      test_endpoint_dedupes_retransmissions;
    Alcotest.test_case "network transmit faults" `Quick
      test_network_transmit_faults;
    Alcotest.test_case "fault matrix" `Quick test_fault_matrix;
    Alcotest.test_case "5% drop with retries recovers" `Quick
      test_drop_with_retries_recovers;
    Alcotest.test_case "faulty run determinism and cost" `Quick
      test_faulty_run_determinism_and_cost;
    Alcotest.test_case "local beats remote" `Quick test_local_beats_remote;
    Alcotest.test_case "remote scales with rtt" `Quick test_remote_scales_with_rtt;
    Alcotest.test_case "outputs identical across archs" `Quick
      test_outputs_functionally_identical_across_archs;
    Alcotest.test_case "scripted crash resumes bit-identical" `Quick
      test_scripted_crash_resumes_bit_identical;
    Alcotest.test_case "crash without session fails cleanly" `Quick
      test_scripted_crash_without_session_fails_cleanly;
    Alcotest.test_case "chaos crash points match golden" `Quick
      test_chaos_crash_points_match_golden;
    Alcotest.test_case "stale duplicate across reset refused" `Quick
      test_stale_duplicate_across_reset_refused;
    Alcotest.test_case "sequence wraparound" `Quick test_sequence_wraparound;
    Alcotest.test_case "corrupted reply retransmission replays cache" `Quick
      test_corrupted_reply_retransmission_replays_cache;
    Alcotest.test_case "journal overflow autocheckpoints" `Quick
      test_journal_overflow_autocheckpoints;
    Alcotest.test_case "restart without session fails" `Quick
      test_restart_without_session_fails ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_protocol_roundtrip; prop_decode_fuzz ]
