(* Differential tests: the compiled dense kernel (Simulator) against the
   retained interpreter (Reference) on randomized designs and input
   sequences, including X/Z stimulus. Both simulators share one Design
   instance (all run-time state is per-simulator) and must agree on
   every port value and watch sample, cycle for cycle. A Gc probe
   asserts the kernel's steady-state cycle path allocates nothing. *)

module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator
module Reference = Jhdl_sim.Reference
module Kcm = Jhdl_modgen.Kcm
module Fir = Jhdl_modgen.Fir
module Multiplier = Jhdl_modgen.Multiplier

type harness = {
  design : Design.t;
  clock : Wire.t option;
  inputs : (string * int) list; (* driven port, width *)
  outputs : string list;
}

(* ------------------------------------------------------------------ *)
(* Harness builders (test_equiv.ml style).                             *)

let kcm_harness ~n ~pw ~signed_mode ~pipelined_mode ~structure ~constant () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" n in
  let p = Wire.create top ~name:"p" pw in
  let _ =
    Kcm.create top ~clk ~adder_structure:structure ~multiplicand:m ~product:p
      ~signed_mode ~pipelined_mode ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  { design = d; clock = Some clk; inputs = [ ("m", n) ]; outputs = [ "p" ] }

let shift_add_harness ~n ~pw ~constant () =
  let top = Cell.root ~name:"top" () in
  let m = Wire.create top ~name:"m" n in
  let p = Wire.create top ~name:"p" pw in
  let _ = Multiplier.shift_add_constant top ~multiplicand:m ~product:p ~constant () in
  let d = Design.create top in
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  { design = d; clock = None; inputs = [ ("m", n) ]; outputs = [ "p" ] }

let fir_harness ~xw ~coefficients () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" xw in
  let yw = Fir.accumulation_width ~x_width:xw ~coefficients in
  let y = Wire.create top ~name:"y" yw in
  let _ = Fir.create top ~clk ~x ~y ~signed_mode:true ~coefficients () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "y" Types.Output y;
  { design = d; clock = Some clk; inputs = [ ("x", xw) ]; outputs = [ "y" ] }

let ram_harness ~init () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let we = Wire.create top ~name:"we" 1 in
  let d = Wire.create top ~name:"d" 1 in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 1 in
  let _ = Virtex.ram16x1s top ~init ~wclk:clk ~we ~d ~a ~o () in
  let dsg = Design.create top in
  Design.add_port dsg "clk" Types.Input clk;
  Design.add_port dsg "we" Types.Input we;
  Design.add_port dsg "d" Types.Input d;
  Design.add_port dsg "a" Types.Input a;
  Design.add_port dsg "o" Types.Output o;
  { design = dsg;
    clock = Some clk;
    inputs = [ ("we", 1); ("d", 1); ("a", 4) ];
    outputs = [ "o" ] }

let srl_harness ~init () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let ce = Wire.create top ~name:"ce" 1 in
  let d = Wire.create top ~name:"d" 1 in
  let a = Wire.create top ~name:"a" 4 in
  let q = Wire.create top ~name:"q" 1 in
  let _ = Virtex.srl16e top ~init ~clk ~ce ~d ~a ~q () in
  let dsg = Design.create top in
  Design.add_port dsg "clk" Types.Input clk;
  Design.add_port dsg "ce" Types.Input ce;
  Design.add_port dsg "d" Types.Input d;
  Design.add_port dsg "a" Types.Input a;
  Design.add_port dsg "q" Types.Output q;
  { design = dsg;
    clock = Some clk;
    inputs = [ ("ce", 1); ("d", 1); ("a", 4) ];
    outputs = [ "q" ] }

(* ------------------------------------------------------------------ *)
(* Differential driver.                                                *)

let random_bits st ~allow_xz width =
  Bits.init width (fun _ ->
    if allow_xz && Random.State.int st 8 = 0 then
      if Random.State.bool st then Bit.X else Bit.Z
    else Bit.of_bool (Random.State.bool st))

let check_outputs ~ctx harness dut rf =
  List.iter
    (fun port ->
       let a = Simulator.get_port dut port and b = Reference.get_port rf port in
       if not (Bits.equal a b) then
         Alcotest.failf "%s: port %s: kernel=%s reference=%s" ctx port
           (Bits.to_string a) (Bits.to_string b))
    harness.outputs

let check_histories h_dut h_ref =
  Alcotest.(check int) "watch count" (List.length h_ref) (List.length h_dut);
  List.iter2
    (fun (l1, s1) (l2, s2) ->
       Alcotest.(check string) "watch label" l2 l1;
       Alcotest.(check int) (l1 ^ " sample count") (List.length s2) (List.length s1);
       List.iter2
         (fun (c1, v1) (c2, v2) ->
            if c1 <> c2 || not (Bits.equal v1 v2) then
              Alcotest.failf "watch %s: kernel (%d,%s) vs reference (%d,%s)" l1 c1
                (Bits.to_string v1) c2 (Bits.to_string v2))
         s1 s2)
    h_dut h_ref

(* Drive both simulators with the same random stimulus, comparing every
   output port after each input change and each clock edge, and the full
   watch histories (and a reset) at the end. *)
let run_differential ?(allow_xz = true) ?(use_batch = false) ~seed ~steps harness =
  let st = Random.State.make [| seed |] in
  let clock = harness.clock in
  let dut = Simulator.create ?clock harness.design in
  let rf = Reference.create ?clock harness.design in
  List.iter
    (fun port ->
       match Design.find_port harness.design port with
       | Some p ->
         Simulator.watch dut ~label:port p.Design.port_wire;
         Reference.watch rf ~label:port p.Design.port_wire
       | None -> Alcotest.failf "harness lists unknown port %s" port)
    harness.outputs;
  check_outputs ~ctx:"initial" harness dut rf;
  for step = 1 to steps do
    let stimulus =
      List.map (fun (port, w) -> (port, random_bits st ~allow_xz w)) harness.inputs
    in
    if use_batch then Simulator.set_inputs dut stimulus
    else List.iter (fun (port, v) -> Simulator.set_input dut port v) stimulus;
    List.iter (fun (port, v) -> Reference.set_input rf port v) stimulus;
    check_outputs ~ctx:(Printf.sprintf "step %d, after inputs" step) harness dut rf;
    Simulator.cycle dut;
    Reference.cycle rf;
    check_outputs ~ctx:(Printf.sprintf "step %d, after cycle" step) harness dut rf
  done;
  Alcotest.(check int) "cycle counters" (Reference.cycle_count rf)
    (Simulator.cycle_count dut);
  check_histories (Simulator.history dut) (Reference.history rf);
  Simulator.reset dut;
  Reference.reset rf;
  check_outputs ~ctx:"after reset" harness dut rf;
  check_histories (Simulator.history dut) (Reference.history rf)

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let prop_kcm_matches_reference =
  QCheck.Test.make ~name:"kernel = reference on randomized KCMs" ~count:30
    QCheck.(
      quad (int_range 4 10) (int_range (-128) 127) bool (int_range 0 3))
    (fun (n, raw_constant, signed_mode, shape) ->
       let pipelined_mode = shape land 1 = 1 in
       (* pipelined `Tree is rejected by the generator *)
       let structure = if shape land 2 = 2 && not pipelined_mode then `Tree else `Chain in
       let constant = if signed_mode then raw_constant else abs raw_constant in
       let pw = n + 4 + (shape * 2) in
       let harness =
         kcm_harness ~n ~pw ~signed_mode ~pipelined_mode ~structure ~constant ()
       in
       run_differential ~seed:(((n * 131) + raw_constant + 128) lxor shape)
         ~steps:16 harness;
       true)

let prop_memory_matches_reference =
  QCheck.Test.make ~name:"kernel = reference on SRL16/RAM16 with X stimulus"
    ~count:25
    QCheck.(pair (int_bound 65535) (int_bound 1000))
    (fun (init, seed) ->
       run_differential ~seed ~steps:24 (ram_harness ~init ());
       run_differential ~seed:(seed + 1) ~steps:24 (srl_harness ~init ());
       true)

let test_shift_add_differential () =
  List.iter
    (fun (constant, seed) ->
       run_differential ~seed ~steps:20
         (shift_add_harness ~n:8 ~pw:14 ~constant ()))
    [ (1, 11); (85, 12); (255, 13); (170, 14) ]

let test_fir_differential () =
  run_differential ~seed:42 ~steps:24
    (fir_harness ~xw:6 ~coefficients:[ 3; -5; 7; 2 ] ());
  run_differential ~seed:43 ~steps:24
    (fir_harness ~xw:8 ~coefficients:[ -1; 9; 4 ] ())

let test_batch_inputs_match_sequential () =
  (* the endpoint's set_inputs fast path must settle to the same values
     as per-port set_input calls against the reference *)
  run_differential ~use_batch:true ~seed:7 ~steps:20 (ram_harness ~init:0xBEEF ());
  run_differential ~use_batch:true ~seed:8 ~steps:16
    (kcm_harness ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:true
       ~structure:`Chain ~constant:(-77) ())

let test_hook_order_matches () =
  let harness =
    kcm_harness ~n:4 ~pw:8 ~signed_mode:false ~pipelined_mode:true
      ~structure:`Chain ~constant:9 ()
  in
  let dut = Simulator.create ?clock:harness.clock harness.design in
  let rf = Reference.create ?clock:harness.clock harness.design in
  let dut_calls = ref [] and ref_calls = ref [] in
  List.iter
    (fun tag ->
       Simulator.on_cycle dut (fun c -> dut_calls := (tag, c) :: !dut_calls);
       Reference.on_cycle rf (fun c -> ref_calls := (tag, c) :: !ref_calls))
    [ 1; 2; 3 ];
  Simulator.cycle ~n:2 dut;
  Reference.cycle ~n:2 rf;
  Alcotest.(check (list (pair int int)))
    "hooks fire in registration order in both simulators"
    [ (3, 2); (2, 2); (1, 2); (3, 1); (2, 1); (1, 1) ]
    !dut_calls;
  Alcotest.(check (list (pair int int))) "reference agrees" !ref_calls !dut_calls

let test_steady_state_cycle_allocates_nothing () =
  let harness =
    kcm_harness ~n:8 ~pw:16 ~signed_mode:true ~pipelined_mode:true
      ~structure:`Chain ~constant:93 ()
  in
  let dut = Simulator.create ?clock:harness.clock harness.design in
  Simulator.set_input dut "m" (Bits.of_int ~width:8 55);
  (* flush the pipeline so the state is steady *)
  Simulator.cycle ~n:32 dut;
  let before = Gc.minor_words () in
  Simulator.cycle ~n:1000 dut;
  let after = Gc.minor_words () in
  let per_cycle = (after -. before) /. 1000.0 in
  if per_cycle > 0.26 then
    Alcotest.failf "steady-state cycle allocates %.2f words/cycle" per_cycle

let test_instrumented_cycle_allocates_nothing () =
  (* the observability hooks must not cost the kernel its pinned
     zero-allocation steady state: counter bumps are int field writes
     and the per-cycle histogram observe is an int-array increment *)
  let harness =
    kcm_harness ~n:8 ~pw:16 ~signed_mode:true ~pipelined_mode:true
      ~structure:`Chain ~constant:93 ()
  in
  let dut = Simulator.create ?clock:harness.clock harness.design in
  let registry = Jhdl_metrics.Metrics.create "sim" in
  Simulator.register_metrics dut registry;
  Simulator.set_input dut "m" (Bits.of_int ~width:8 55);
  Simulator.cycle ~n:32 dut;
  let evals_before = Simulator.eval_count dut in
  let before = Gc.minor_words () in
  Simulator.cycle ~n:1000 dut;
  let after = Gc.minor_words () in
  let per_cycle = (after -. before) /. 1000.0 in
  if per_cycle > 0.26 then
    Alcotest.failf "instrumented cycle allocates %.2f words/cycle" per_cycle;
  (* a settled pipeline with a constant input evaluates nothing — the
     counters must reflect the warm-up work and then hold still *)
  Alcotest.(check bool) "counters live and consistent" true
    (evals_before > 0
     && Simulator.eval_count dut >= evals_before
     && Simulator.event_count dut > 0);
  match Jhdl_metrics.Metrics.snapshot registry with
  | [] -> Alcotest.fail "registry should expose the kernel probes"
  | samples ->
    Alcotest.(check bool) "cycles probe live" true
      (List.exists
         (function
           | "cycles_total", Jhdl_metrics.Metrics.Counter_sample n -> n = 1032
           | _ -> false)
         samples)

(* ------------------------------------------------------------------ *)
(* First-wave fuzz corpus (PR 6). A 1300+-case campaign across seeds
   1, 2, 3, 5, 99 and 1234 at up to 120 cells found NO divergence
   between the kernel and the reference interpreter. Pin that fact: a
   200-seed corpus, one generated design per seed, must stay clean.
   Any regression in either simulator that breaks their agreement
   shows up here with the seed to replay it from. *)

let test_fuzz_corpus_kernel_matches_reference () =
  let module Fuzz = Jhdl_fuzz.Fuzz in
  let module Gen = Jhdl_fuzz.Gen in
  let module Oracle = Jhdl_fuzz.Oracle in
  let params = { Gen.default_params with Gen.max_cells = 24 } in
  for seed = 0 to 199 do
    let gen_rng, stim_rng = Fuzz.case_rngs ~seed ~case:0 in
    let recipe =
      Gen.recipe gen_rng ~name:(Printf.sprintf "corpus_%d" seed) params
    in
    let stim = Jhdl_fuzz.Gen.stimulus stim_rng recipe ~steps:8 in
    match Oracle.run Oracle.Sim_vs_ref recipe stim with
    | Oracle.Pass -> ()
    | Oracle.Fail m ->
      Alcotest.failf
        "seed %d: kernel diverged from reference (replay with fuzz_tool \
         --seed %d --count 1 --max-cells 24 --steps 8): %s"
        seed seed m
  done

(* ------------------------------------------------------------------ *)
(* Bit-parallel batch kernel (PR 7): N packed stimulus lanes against N
   scalar kernel runs must agree on every port of every lane, cycle for
   cycle — including X/Z-heavy stimulus, mid-run lane checkpointing and
   the packed kernel's own allocation-free steady state. *)

module Batch = Jhdl_sim.Simulator.Batch

(* heavier than random_bits: 1/4 X, 1/4 Z, so the plane formulas see
   undefined values on most words *)
let xz_heavy_bits st width =
  Bits.init width (fun _ ->
    match Random.State.int st 4 with
    | 0 -> Bit.X
    | 1 -> Bit.Z
    | _ -> Bit.of_bool (Random.State.bool st))

let check_lanes ~ctx harness batch scalars =
  Array.iteri
    (fun lane dut ->
       List.iter
         (fun port ->
            let a = Batch.get_port batch ~lane port
            and b = Simulator.get_port dut port in
            if not (Bits.equal a b) then
              Alcotest.failf "%s: lane %d port %s: batch=%s kernel=%s" ctx
                lane port (Bits.to_string a) (Bits.to_string b))
         harness.outputs)
    scalars

let run_lane_differential ~seed ~lanes ~steps harness =
  let st = Random.State.make [| seed |] in
  let clock = harness.clock in
  let batch = Batch.create ?clock ~lanes harness.design in
  let scalars =
    Array.init lanes (fun _ -> Simulator.create ?clock harness.design)
  in
  check_lanes ~ctx:"initial" harness batch scalars;
  for step = 1 to steps do
    Array.iteri
      (fun lane dut ->
         List.iter
           (fun (port, w) ->
              let v = xz_heavy_bits st w in
              Batch.set_input batch ~lane port v;
              Simulator.set_input dut port v)
           harness.inputs)
      scalars;
    check_lanes ~ctx:(Printf.sprintf "step %d, after inputs" step) harness
      batch scalars;
    Batch.cycle batch;
    Array.iter (fun dut -> Simulator.cycle dut) scalars;
    check_lanes ~ctx:(Printf.sprintf "step %d, after cycle" step) harness
      batch scalars
  done;
  Array.iter
    (fun dut ->
       Alcotest.(check int) "cycle counters" (Simulator.cycle_count dut)
         (Batch.cycle_count batch))
    scalars;
  Batch.reset batch;
  Array.iter Simulator.reset scalars;
  check_lanes ~ctx:"after reset" harness batch scalars

let prop_batch_lanes_match_kernel =
  QCheck.Test.make ~name:"batch lanes = scalar kernels (X/Z-heavy)" ~count:15
    QCheck.(pair (int_range 1 63) (int_bound 10000))
    (fun (lanes, seed) ->
       let lanes = max 1 (min 63 lanes) in
       let signed_mode = seed land 1 = 1 in
       let constant =
         let c = (seed mod 63) - 31 in
         if signed_mode then c else abs c
       in
       run_lane_differential ~seed ~lanes ~steps:8
         (ram_harness ~init:(seed land 0xFFFF) ());
       run_lane_differential ~seed:(seed + 1) ~lanes ~steps:8
         (srl_harness ~init:(seed land 0xFFFF) ());
       run_lane_differential ~seed:(seed + 2) ~lanes ~steps:6
         (kcm_harness ~n:6 ~pw:10 ~signed_mode ~pipelined_mode:true
            ~structure:`Chain ~constant ());
       true)

(* deterministic 4-valued stimulus so the snapshot test needs no RNG
   bookkeeping: lane/step/index select the value *)
let det_bit ~lane ~step ~port ~i =
  match (lane * 7 + step * 13 + port * 3 + i) mod 6 with
  | 0 -> Bit.X
  | 1 -> Bit.Z
  | k -> Bit.of_bool (k land 1 = 1)

let det_stimulus harness ~lane ~step =
  List.mapi
    (fun port (name, w) ->
       (name, Bits.init w (fun i -> det_bit ~lane ~step ~port ~i)))
    harness.inputs

let test_batch_snapshot_restore_mid_run () =
  let harness = ram_harness ~init:0x5A5A () in
  let lanes = 7 and target = 4 and total = 24 and mid = 11 in
  let clock = harness.clock in
  let batch = Batch.create ?clock ~lanes harness.design in
  (* the scalar twin is watchless, so its blob and the lane blob must
     be byte-identical *)
  let scalar = Simulator.create ?clock harness.design in
  let drive_step ~step =
    for lane = 0 to lanes - 1 do
      List.iter
        (fun (name, v) -> Batch.set_input batch ~lane name v)
        (det_stimulus harness ~lane ~step)
    done;
    List.iter
      (fun (name, v) -> Simulator.set_input scalar name v)
      (det_stimulus harness ~lane:target ~step);
    Batch.cycle batch;
    Simulator.cycle scalar
  in
  for step = 1 to mid do
    drive_step ~step
  done;
  let blob = Batch.snapshot_lane batch ~lane:target in
  Alcotest.(check string)
    "lane blob byte-identical to the scalar snapshot"
    (Simulator.snapshot scalar) blob;
  (* restore the lane into a fresh batch sim and keep driving: the
     restored lane must shadow the scalar run to the end *)
  let batch2 = Batch.create ?clock ~lanes harness.design in
  Batch.restore_lane batch2 ~lane:target blob;
  for step = mid + 1 to total do
    List.iter
      (fun (name, v) ->
         Batch.set_input batch2 ~lane:target name v;
         Simulator.set_input scalar name v)
      (det_stimulus harness ~lane:target ~step);
    Batch.cycle batch2;
    Simulator.cycle scalar;
    List.iter
      (fun port ->
         let a = Batch.get_port batch2 ~lane:target port
         and b = Simulator.get_port scalar port in
         if not (Bits.equal a b) then
           Alcotest.failf "step %d after restore: port %s: batch=%s kernel=%s"
             step port (Bits.to_string a) (Bits.to_string b))
      harness.outputs
  done

let test_batch_steady_state_allocates_nothing () =
  let harness =
    kcm_harness ~n:8 ~pw:16 ~signed_mode:true ~pipelined_mode:true
      ~structure:`Chain ~constant:93 ()
  in
  let batch = Batch.create ?clock:harness.clock ~lanes:63 harness.design in
  for lane = 0 to 62 do
    Batch.set_input batch ~lane "m"
      (Bits.of_int ~width:8 (((lane * 5) + 7) land 0xFF))
  done;
  Batch.cycle ~n:32 batch;
  let before = Gc.minor_words () in
  Batch.cycle ~n:1000 batch;
  let after = Gc.minor_words () in
  let per_cycle = (after -. before) /. 1000.0 in
  if per_cycle > 0.26 then
    Alcotest.failf "batch steady-state cycle allocates %.2f words/cycle"
      per_cycle

let test_batch_lane_bounds () =
  let harness = ram_harness ~init:0 () in
  Alcotest.check_raises "zero lanes"
    (Invalid_argument
       "Simulator.Batch.create: lanes must be within 1..63 (got 0)")
    (fun () ->
      ignore (Batch.create ?clock:harness.clock ~lanes:0 harness.design));
  Alcotest.check_raises "64 lanes never silently truncate"
    (Invalid_argument
       "Simulator.Batch.create: lanes must be within 1..63 (got 64)")
    (fun () ->
      ignore (Batch.create ?clock:harness.clock ~lanes:64 harness.design));
  let batch = Batch.create ?clock:harness.clock ~lanes:2 harness.design in
  Alcotest.check_raises "lane index past the lane count"
    (Invalid_argument "Simulator.Batch: lane 2 out of range 0..1") (fun () ->
      Batch.set_input batch ~lane:2 "d" (Bits.of_int ~width:1 1));
  Alcotest.check_raises "negative lane index"
    (Invalid_argument "Simulator.Batch: lane -1 out of range 0..1") (fun () ->
      ignore (Batch.get_port batch ~lane:(-1) "o"))

(* the 200-seed corpus again (same seeds as the kernel-vs-reference
   sweep above), now batch-vs-kernel: every generated design runs with
   a seed-dependent lane count against that many scalar kernels, each
   lane on its own rotated stimulus *)
let test_fuzz_corpus_batch_matches_kernel () =
  let module Fuzz = Jhdl_fuzz.Fuzz in
  let module Gen = Jhdl_fuzz.Gen in
  let module Oracle = Jhdl_fuzz.Oracle in
  let module Recipe = Jhdl_fuzz.Recipe in
  let module Stimulus = Jhdl_fuzz.Stimulus in
  let params = { Gen.default_params with Gen.max_cells = 24 } in
  for seed = 0 to 199 do
    let gen_rng, stim_rng = Fuzz.case_rngs ~seed ~case:0 in
    let recipe =
      Gen.recipe gen_rng ~name:(Printf.sprintf "bcorpus_%d" seed) params
    in
    let stim = Gen.stimulus stim_rng recipe ~steps:8 in
    let built = Recipe.build recipe in
    let clock = built.Recipe.clock in
    let lanes = 1 + (seed mod Batch.max_lanes) in
    let batch = Batch.create ?clock ~lanes built.Recipe.design in
    let scalars =
      Array.init lanes (fun _ -> Simulator.create ?clock built.Recipe.design)
    in
    let lane_stims =
      Array.init lanes (fun lane -> Oracle.lane_stimulus stim ~lane)
    in
    let check ctx =
      Array.iteri
        (fun lane dut ->
           List.iter
             (fun port ->
                let a = Batch.get_port batch ~lane port
                and b = Simulator.get_port dut port in
                if not (Bits.equal a b) then
                  Alcotest.failf
                    "seed %d, %s: lane %d port %s: batch=%s kernel=%s" seed
                    ctx lane port (Bits.to_string a) (Bits.to_string b))
             built.Recipe.output_ports)
        scalars
    in
    check "initial";
    for s = 0 to Stimulus.step_count stim - 1 do
      Array.iteri
        (fun lane dut ->
           let row = lane_stims.(lane).Stimulus.steps.(s) in
           List.iteri
             (fun k port ->
                Batch.set_input batch ~lane port row.(k);
                Simulator.set_input dut port row.(k))
             built.Recipe.input_ports)
        scalars;
      check (Printf.sprintf "step %d after inputs" s);
      Batch.cycle batch;
      Array.iter (fun dut -> Simulator.cycle dut) scalars;
      check (Printf.sprintf "step %d after cycle" s)
    done
  done

let suite =
  [ Alcotest.test_case "shift-add vs reference" `Quick test_shift_add_differential;
    Alcotest.test_case "200-seed fuzz corpus: kernel = reference" `Quick
      test_fuzz_corpus_kernel_matches_reference;
    Alcotest.test_case "fir vs reference" `Quick test_fir_differential;
    Alcotest.test_case "batch inputs = sequential" `Quick
      test_batch_inputs_match_sequential;
    Alcotest.test_case "hook order" `Quick test_hook_order_matches;
    Alcotest.test_case "steady-state cycle is allocation-free" `Quick
      test_steady_state_cycle_allocates_nothing;
    Alcotest.test_case "instrumented cycle is allocation-free" `Quick
      test_instrumented_cycle_allocates_nothing;
    Alcotest.test_case "batch lane snapshot/restore mid-run" `Quick
      test_batch_snapshot_restore_mid_run;
    Alcotest.test_case "batch steady-state cycle is allocation-free" `Quick
      test_batch_steady_state_allocates_nothing;
    Alcotest.test_case "batch lane counts 0 and 64 are rejected" `Quick
      test_batch_lane_bounds;
    Alcotest.test_case "200-seed fuzz corpus: batch = kernel" `Quick
      test_fuzz_corpus_batch_matches_kernel ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_kcm_matches_reference;
        prop_memory_matches_reference;
        prop_batch_lanes_match_kernel ]
