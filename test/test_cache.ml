(* The content-addressed delivery cache: LRU mechanics, closed
   accounting, byte-identical hits, and the collision regression — two
   designs whose 32-bit JSNP signatures collide must never cross-serve
   each other's artifacts. *)

module Store = Jhdl_cache.Store
module Delivery = Jhdl_cache.Delivery
module Snapshot = Jhdl_sim.Snapshot
module Catalog = Jhdl_applet.Catalog
module Ip_module = Jhdl_applet.Ip_module
module Lint = Jhdl_lint.Lint
module Edif = Jhdl_netlist.Edif
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

(* ------------------------------------------------------------------ *)
(* store mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let mk ?(cap_entries = 4) ?(cap_bytes = max_int) () =
  Store.create ~cap_entries ~cap_bytes ()

let test_lru_eviction_order () =
  let s = mk ~cap_entries:2 () in
  Alcotest.(check (list string)) "no eviction below cap" []
    (Store.add s ~now:0. ~descriptor:"a" ~bytes:1 "A");
  Alcotest.(check (list string)) "still none" []
    (Store.add s ~now:1. ~descriptor:"b" ~bytes:1 "B");
  (* touch a so b becomes least recently used *)
  Alcotest.(check (option string)) "a hit" (Some "A")
    (Store.find s ~now:2. ~descriptor:"a");
  Alcotest.(check (list string)) "b evicted, LRU first" [ "b" ]
    (Store.add s ~now:3. ~descriptor:"c" ~bytes:1 "C");
  Alcotest.(check (option string)) "b gone" None
    (Store.find s ~now:4. ~descriptor:"b");
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ]
    (List.map fst (Store.to_list s))

let test_byte_capacity () =
  let s = mk ~cap_entries:100 ~cap_bytes:10 () in
  ignore (Store.add s ~now:0. ~descriptor:"a" ~bytes:6 "A" : string list);
  Alcotest.(check (list string)) "a pushed out by bytes" [ "a" ]
    (Store.add s ~now:1. ~descriptor:"b" ~bytes:6 "B");
  (* an artifact bigger than the whole store is refused, not inserted *)
  Alcotest.(check (list string)) "oversized refused" []
    (Store.add s ~now:2. ~descriptor:"huge" ~bytes:11 "H");
  Alcotest.(check bool) "not present" false (Store.mem s ~descriptor:"huge");
  let st = Store.stats s in
  Alcotest.(check int) "live bytes" 6 st.Store.live_bytes;
  Alcotest.(check bool) "accounting closes" true
    (Store.accounting_closes st)

let test_replace_same_key () =
  let s = mk () in
  ignore (Store.add s ~now:0. ~descriptor:"a" ~bytes:2 "v1" : string list);
  Alcotest.(check (list string)) "replacement evicts nothing" []
    (Store.add s ~now:1. ~descriptor:"a" ~bytes:3 "v2");
  Alcotest.(check (option string)) "latest wins" (Some "v2")
    (Store.find s ~now:2. ~descriptor:"a");
  let st = Store.stats s in
  Alcotest.(check int) "one replaced" 1 st.Store.replaced;
  Alcotest.(check int) "one live" 1 st.Store.live_entries;
  Alcotest.(check int) "bytes follow the replacement" 3 st.Store.live_bytes;
  Alcotest.(check bool) "accounting closes" true
    (Store.accounting_closes st)

let test_find_or_add_builds_once () =
  let s = mk () in
  let builds = ref 0 in
  let build () = incr builds; "artifact" in
  let a1 = Store.find_or_add s ~now:0. ~descriptor:"k" ~bytes:String.length build in
  let a2 = Store.find_or_add s ~now:1. ~descriptor:"k" ~bytes:String.length build in
  Alcotest.(check string) "same artifact" a1 a2;
  Alcotest.(check int) "built once" 1 !builds;
  Alcotest.(check (float 1e-9)) "hit rate 1/2" 0.5 (Store.hit_rate s)

(* ------------------------------------------------------------------ *)
(* collision regression                                                *)
(* ------------------------------------------------------------------ *)

(* a tiny but real design whose canonical descriptor varies only in the
   root cell's name *)
let design_named name =
  let top = Cell.root ~name () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let _ = Virtex.inv top ~name:"n" a b in
  let design = Design.create top in
  Design.add_port design "a" Types.Input a;
  Design.add_port design "b" Types.Output b;
  design

let replace_all ~marker ~by s =
  let buf = Buffer.create (String.length s) in
  let mlen = String.length marker in
  let i = ref 0 in
  while !i <= String.length s - mlen do
    if String.sub s !i mlen = marker then begin
      Buffer.add_string buf by;
      i := !i + mlen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

(* Birthday-search two root-cell names whose descriptors collide under
   FNV-1a/32 — the JSNP signature. The search hashes template
   substitutions instead of elaborating ~80k designs; the winning pair
   is re-verified against real elaborations below. *)
let find_colliding_names () =
  let marker = "XCOLLIDEX" in
  let template = Snapshot.descriptor (design_named marker) in
  let descriptor_for name = replace_all ~marker ~by:name template in
  let seen = Hashtbl.create (1 lsl 18) in
  let rec go i =
    if i > 1_000_000 then failwith "no 32-bit collision in 1e6 names";
    let name = Printf.sprintf "cell%06x" i in
    let h = Snapshot.fnv1a32 (descriptor_for name) in
    match Hashtbl.find_opt seen h with
    | Some earlier -> (earlier, name)
    | None ->
      Hashtbl.add seen h name;
      go (i + 1)
  in
  go 0

let test_colliding_signatures_never_cross_serve () =
  let name1, name2 = find_colliding_names () in
  let d1 = design_named name1 and d2 = design_named name2 in
  let desc1 = Snapshot.descriptor d1 and desc2 = Snapshot.descriptor d2 in
  (* the regression's premise: a genuine 32-bit signature collision
     between two structurally different designs *)
  Alcotest.(check int) "32-bit signatures collide"
    (Snapshot.signature d1) (Snapshot.signature d2);
  Alcotest.(check bool) "descriptors differ" true (desc1 <> desc2);
  Alcotest.(check bool) "64-bit signatures differ" true
    (Snapshot.signature64 d1 <> Snapshot.signature64 d2);
  (* a cache keyed by the 32-bit signature would cross-serve here; the
     store must keep the two designs' artifacts fully apart *)
  let s = mk ~cap_entries:8 () in
  ignore (Store.add s ~now:0. ~descriptor:desc1 ~bytes:1 "artifact-1"
          : string list);
  Alcotest.(check (option string)) "collider misses, not cross-served" None
    (Store.find s ~now:1. ~descriptor:desc2);
  ignore (Store.add s ~now:2. ~descriptor:desc2 ~bytes:1 "artifact-2"
          : string list);
  Alcotest.(check (option string)) "first still its own" (Some "artifact-1")
    (Store.find s ~now:3. ~descriptor:desc1);
  Alcotest.(check (option string)) "second its own" (Some "artifact-2")
    (Store.find s ~now:4. ~descriptor:desc2);
  let st = Store.stats s in
  Alcotest.(check int) "both live" 2 st.Store.live_entries;
  Alcotest.(check bool) "accounting closes" true (Store.accounting_closes st)

(* ------------------------------------------------------------------ *)
(* delivery-layer artifacts                                            *)
(* ------------------------------------------------------------------ *)

let wallace_assignment ~a_width ~b_width =
  let ip =
    match Catalog.find "WallaceTreeMultiplier" with
    | Some ip -> ip
    | None -> Alcotest.fail "wallace missing from catalog"
  in
  match
    Ip_module.validate ip
      [ ("a_width", Ip_module.Int_value a_width);
        ("b_width", Ip_module.Int_value b_width) ]
  with
  | Ok assignment -> (ip, assignment)
  | Error message -> Alcotest.fail message

let test_generator_descriptor_canonical () =
  let d1 =
    Delivery.generator_descriptor ~generator:"g"
      ~params:[ ("b", "2"); ("a", "1") ]
  and d2 =
    Delivery.generator_descriptor ~generator:"g"
      ~params:[ ("a", "1"); ("b", "2") ]
  in
  Alcotest.(check string) "parameter order cannot split the cache" d1 d2

let test_verdict_and_netlist_served_from_cache () =
  let delivery = Delivery.create ~cap_entries:16 ~cap_bytes:max_int () in
  let ip, assignment = wallace_assignment ~a_width:4 ~b_width:3 in
  let fresh () = (ip.Ip_module.build assignment).Ip_module.design in
  let d1 = fresh () in
  let expected_netlist = Edif.of_design d1 in
  let expected_verdict = Lint.to_json (Lint.run d1) in
  let n1 =
    Delivery.netlist delivery ~now:0. ~kind:"edif" d1 (fun () ->
        Edif.of_design d1)
  in
  let v1 = Delivery.verdict delivery ~now:0. d1 (fun () -> Lint.run d1) in
  (* an independent re-elaboration must hit: same generator, same
     parameters, same tech library — and the hit must be byte-identical
     to what a fresh export would produce *)
  let d2 = fresh () in
  let n2 =
    Delivery.netlist delivery ~now:1. ~kind:"edif" d2 (fun () ->
        Alcotest.fail "netlist should be a cache hit")
  in
  let v2 =
    Delivery.verdict delivery ~now:1. d2 (fun () ->
        Alcotest.fail "verdict should be a cache hit")
  in
  Alcotest.(check string) "netlist byte-identical" expected_netlist n1;
  Alcotest.(check string) "hit byte-identical" expected_netlist n2;
  Alcotest.(check string) "verdict identical" expected_verdict
    (Lint.to_json v1);
  Alcotest.(check string) "verdict hit identical" expected_verdict
    (Lint.to_json v2);
  Alcotest.(check (float 1e-9)) "half the lookups hit" 0.5
    (Delivery.hit_rate delivery)

(* ------------------------------------------------------------------ *)
(* properties                                                          *)
(* ------------------------------------------------------------------ *)

(* random op soup against a tight store: the closed accounting identity
   inserted = live + evicted + replaced + removed and both capacity
   bounds must hold after every single operation *)
let prop_accounting_closes_under_churn =
  QCheck.Test.make ~count:300 ~name:"accounting closes after every op"
    QCheck.(small_list (triple (int_bound 2) (int_bound 11) (int_bound 40)))
    (fun ops ->
       let s = Store.create ~cap_entries:3 ~cap_bytes:64 () in
       List.for_all
         (fun (kind, key, bytes) ->
            let descriptor = Printf.sprintf "artifact-%02d" key in
            (match kind with
             | 0 ->
               ignore
                 (Store.add s ~now:0. ~descriptor ~bytes
                    (string_of_int key)
                  : string list)
             | 1 -> ignore (Store.find s ~now:0. ~descriptor : string option)
             | _ -> ignore (Store.remove s ~descriptor : bool));
            let st = Store.stats s in
            Store.accounting_closes st
            && st.Store.live_entries <= 3
            && st.Store.live_bytes <= 64
            && st.Store.live_entries = List.length (Store.to_list s))
         ops)

(* a hit can never disagree with a fresh elaboration: whatever the
   parameter point, the cached EDIF equals a from-scratch export *)
let prop_hit_byte_identical_to_fresh =
  QCheck.Test.make ~count:12 ~name:"cache hit = fresh elaboration, bytewise"
    QCheck.(pair (int_range 2 6) (int_range 2 6))
    (fun (a_width, b_width) ->
       let delivery = Delivery.create ~cap_entries:8 ~cap_bytes:max_int () in
       let ip, assignment = wallace_assignment ~a_width ~b_width in
       let fresh () = (ip.Ip_module.build assignment).Ip_module.design in
       let d1 = fresh () in
       let n1 =
         Delivery.netlist delivery ~now:0. ~kind:"edif" d1 (fun () ->
             Edif.of_design d1)
       in
       let d2 = fresh () in
       let n2 =
         Delivery.netlist delivery ~now:1. ~kind:"edif" d2 (fun () ->
             QCheck.Test.fail_report "expected a cache hit")
       in
       String.equal n1 (Edif.of_design d2) && String.equal n1 n2)

let suite =
  [ Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "byte capacity" `Quick test_byte_capacity;
    Alcotest.test_case "replace same key" `Quick test_replace_same_key;
    Alcotest.test_case "find_or_add builds once" `Quick
      test_find_or_add_builds_once;
    Alcotest.test_case "32-bit collision never cross-serves" `Quick
      test_colliding_signatures_never_cross_serve;
    Alcotest.test_case "generator descriptor canonical" `Quick
      test_generator_descriptor_canonical;
    Alcotest.test_case "verdict and netlist served from cache" `Quick
      test_verdict_and_netlist_served_from_cache ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_accounting_closes_under_churn; prop_hit_byte_identical_to_fresh ]
