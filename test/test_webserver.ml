(* Web server tests: per-license serving, browser caching, updates. *)

module Server = Jhdl_webserver.Server
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Applet = Jhdl_applet.Applet
module Feature = Jhdl_applet.Feature
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download

let fresh_server () =
  let server = Server.create ~vendor:"test-vendor" () in
  let _ = Server.publish server Catalog.kcm in
  let _ = Server.publish server Catalog.fir in
  Server.register_user server ~user:"alice" ~tier:License.Licensed;
  Server.register_user server ~user:"bob" ~tier:License.Passive;
  server

let request ?(user = "alice") ?(ip = "VirtexKCMMultiplier") server =
  match Server.request server ~user ~ip_name:ip ~link:Download.dsl_1m () with
  | Ok session -> session
  | Error message -> Alcotest.failf "request failed: %s" message

let test_unknown_user () =
  let server = fresh_server () in
  match
    Server.request server ~user:"mallory" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message ->
    Alcotest.(check bool) "names the user" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "should fail"

let test_unknown_ip () =
  let server = fresh_server () in
  match
    Server.request server ~user:"alice" ~ip_name:"Cordic" ~link:Download.dsl_1m ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail"

let test_catalog () =
  let server = fresh_server () in
  Alcotest.(check (list (pair string int))) "two entries at v1"
    [ ("VirtexKCMMultiplier", 1); ("FirFilter", 1) ]
    (Server.catalog server)

let test_license_drives_applet () =
  let server = fresh_server () in
  let alice = request server in
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "alice can netlist" true
    (List.mem Feature.Netlister (Applet.features alice.Server.applet));
  Alcotest.(check bool) "bob cannot" false
    (List.mem Feature.Netlister (Applet.features bob.Server.applet));
  Alcotest.(check bool) "bob's jar set is smaller" true
    (List.length bob.Server.jars < List.length alice.Server.jars)

let test_first_visit_fetches_everything () =
  let server = fresh_server () in
  let session = request server in
  Alcotest.(check int) "cache empty: all jars fetched"
    (List.length session.Server.jars)
    (List.length session.Server.fetched);
  Alcotest.(check bool) "download takes time" true
    (session.Server.download_seconds > 1.0)

let test_revisit_hits_cache () =
  let server = fresh_server () in
  let _ = request server in
  let second = request server in
  Alcotest.(check int) "nothing re-fetched" 0
    (List.length second.Server.fetched);
  Alcotest.(check bool) "instant" true (second.Server.download_seconds < 0.001)

let test_update_refetches_applet_jar_only () =
  let server = fresh_server () in
  let _ = request server in
  let v = Server.publish server Catalog.kcm in
  Alcotest.(check int) "version bumped" 2 v;
  let session = request server in
  Alcotest.(check int) "served the new version" 2 session.Server.version;
  Alcotest.(check (list string)) "only the applet jar moved"
    [ "Applet.jar" ]
    (List.map (fun j -> j.Jar.jar_name) session.Server.fetched)

let test_cache_is_per_user () =
  let server = fresh_server () in
  let _ = request server in
  (* bob's first visit still downloads everything *)
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "bob fetched jars" true
    (List.length bob.Server.fetched > 0)

let test_access_log () =
  let server = fresh_server () in
  let _ = request server in
  let _ = request ~user:"bob" server in
  Alcotest.(check int) "two entries" 2 (List.length (Server.access_log server))

let test_served_applet_works () =
  let server = fresh_server () in
  let session = request server in
  let applet = session.Server.applet in
  (match Applet.exec applet Applet.Build with
   | Ok _ -> ()
   | Error message -> Alcotest.failf "build failed: %s" message);
  match Applet.exec applet (Applet.Netlist "VHDL") with
  | Ok text -> Alcotest.(check bool) "vhdl produced" true (String.length text > 500)
  | Error message -> Alcotest.failf "netlist failed: %s" message

let test_secure_request () =
  let server = fresh_server () in
  match
    Server.secure_request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message -> Alcotest.fail message
  | Ok (session, sealed) ->
    Alcotest.(check int) "one sealed jar per fetched jar"
      (List.length session.Server.fetched)
      (List.length sealed);
    let token = Option.get (Server.user_token server ~user:"alice") in
    List.iter
      (fun s ->
         match Jhdl_webserver.Secure_channel.open_sealed ~token s with
         | Ok _ -> ()
         | Error m -> Alcotest.fail m)
      sealed;
    (* another user's token cannot open alice's jars *)
    Server.register_user server ~user:"mallory" ~tier:License.Passive;
    let bad = Option.get (Server.user_token server ~user:"mallory") in
    (match sealed with
     | s :: _ ->
       Alcotest.(check bool) "cross-user decryption fails" true
         (Result.is_error (Jhdl_webserver.Secure_channel.open_sealed ~token:bad s))
     | [] -> Alcotest.fail "expected sealed jars")

(* regression: secure_request used to lose the plain request's error in
   a dead Result.map branch, so the unknown-user path crashed instead of
   reporting — it must propagate the message *)
let test_secure_request_unknown_user () =
  let server = fresh_server () in
  match
    Server.secure_request server ~user:"mallory" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message ->
    Alcotest.(check bool) "error mentions the user" true
      (let needle = "mallory" in
       let hl = String.length message and nl = String.length needle in
       let rec scan i =
         i + nl <= hl && (String.sub message i nl = needle || scan (i + 1))
       in
       scan 0)
  | Ok _ -> Alcotest.fail "unknown user must be refused"

(* {1 lossy delivery: degraded sessions and cache hygiene} *)

module Fault = Jhdl_faults.Fault

let faulty_request server ~seed =
  Server.request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
    ~link:Download.modem_56k
    ~faults:(Fault.only Fault.Disconnect ~rate:0.6 ~seed)
    ~policy:Download.single_attempt ()

(* scan seeds for a run where an optional jar failed but the page still
   loaded — the graceful-degradation path *)
let find_degraded_session () =
  let rec scan seed =
    if seed > 500 then None
    else
      match faulty_request (fresh_server ()) ~seed with
      | Ok session when session.Server.failed <> [] -> Some (seed, session)
      | Ok _ | Error _ -> scan (seed + 1)
  in
  scan 0

let test_degraded_session_grays_out_tools () =
  match find_degraded_session () with
  | None -> Alcotest.fail "no degraded session in 500 seeds"
  | Some (_, session) ->
    (* only non-essential jars can fail in an Ok session *)
    List.iter
      (fun jar ->
         Alcotest.(check bool)
           (jar.Jar.jar_name ^ " is not an essential jar") false
           (List.mem jar.Jar.jar_name
              [ "JHDLBase.jar"; "Virtex.jar"; "Applet.jar" ]))
      session.Server.failed;
    Alcotest.(check bool) "lost jars gray out tools" true
      (session.Server.unavailable <> []);
    Alcotest.(check bool) "the rest of the page still works" true
      (List.length (Applet.features session.Server.applet)
       > List.length session.Server.unavailable);
    Alcotest.(check bool) "attempts were spent" true
      (session.Server.fetch_attempts >= List.length session.Server.fetched)

let test_failed_jar_is_refetched_on_revisit () =
  match find_degraded_session () with
  | None -> Alcotest.fail "no degraded session in 500 seeds"
  | Some (seed, _) ->
    (* replay the degraded visit on a fresh server, then revisit over a
       clean link: the failed jar must not be served from cache *)
    let server = fresh_server () in
    (match faulty_request server ~seed with
     | Error m -> Alcotest.failf "replay diverged: %s" m
     | Ok degraded ->
       let failed_names =
         List.map (fun j -> j.Jar.jar_name) degraded.Server.failed
       in
       let second = request server in
       Alcotest.(check bool) "no failures on the clean link" true
         (second.Server.failed = []);
       List.iter
         (fun name ->
            Alcotest.(check bool) (name ^ " re-fetched") true
              (List.exists
                 (fun j -> j.Jar.jar_name = name)
                 second.Server.fetched))
         failed_names)

let test_essential_failure_is_an_error () =
  (* certain disconnection with one attempt: the base jar cannot arrive,
     so the page must refuse to load rather than serve a broken applet *)
  let server = fresh_server () in
  match
    Server.request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.modem_56k
      ~faults:(Fault.only Fault.Disconnect ~rate:0.999 ~seed:3)
      ~policy:Download.single_attempt ()
  with
  | Error message ->
    Alcotest.(check bool) "error says what is missing" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "essential jar loss must fail the request"

let suite =
  [ Alcotest.test_case "unknown user" `Quick test_unknown_user;
    Alcotest.test_case "secure request unknown user" `Quick
      test_secure_request_unknown_user;
    Alcotest.test_case "degraded session grays out tools" `Quick
      test_degraded_session_grays_out_tools;
    Alcotest.test_case "failed jar refetched on revisit" `Quick
      test_failed_jar_is_refetched_on_revisit;
    Alcotest.test_case "essential failure is an error" `Quick
      test_essential_failure_is_an_error;
    Alcotest.test_case "secure request" `Quick test_secure_request;
    Alcotest.test_case "unknown ip" `Quick test_unknown_ip;
    Alcotest.test_case "catalog" `Quick test_catalog;
    Alcotest.test_case "license drives applet" `Quick test_license_drives_applet;
    Alcotest.test_case "first visit fetches all" `Quick
      test_first_visit_fetches_everything;
    Alcotest.test_case "revisit hits cache" `Quick test_revisit_hits_cache;
    Alcotest.test_case "update refetches applet jar" `Quick
      test_update_refetches_applet_jar_only;
    Alcotest.test_case "cache is per user" `Quick test_cache_is_per_user;
    Alcotest.test_case "access log" `Quick test_access_log;
    Alcotest.test_case "served applet works" `Quick test_served_applet_works ]
