(* Web server tests: per-license serving, browser caching, updates. *)

module Server = Jhdl_webserver.Server
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Applet = Jhdl_applet.Applet
module Feature = Jhdl_applet.Feature
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download

let fresh_server () =
  let server = Server.create ~vendor:"test-vendor" () in
  let _ = Server.publish server Catalog.kcm in
  let _ = Server.publish server Catalog.fir in
  Server.register_user server ~user:"alice" ~tier:License.Licensed;
  Server.register_user server ~user:"bob" ~tier:License.Passive;
  server

let request ?(user = "alice") ?(ip = "VirtexKCMMultiplier") server =
  match Server.request server ~user ~ip_name:ip ~link:Download.dsl_1m () with
  | Ok session -> session
  | Error message -> Alcotest.failf "request failed: %s" message

let test_unknown_user () =
  let server = fresh_server () in
  match
    Server.request server ~user:"mallory" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message ->
    Alcotest.(check bool) "names the user" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "should fail"

let test_unknown_ip () =
  let server = fresh_server () in
  match
    Server.request server ~user:"alice" ~ip_name:"Cordic" ~link:Download.dsl_1m ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail"

let test_catalog () =
  let server = fresh_server () in
  Alcotest.(check (list (pair string int))) "two entries at v1"
    [ ("VirtexKCMMultiplier", 1); ("FirFilter", 1) ]
    (Server.catalog server)

let test_license_drives_applet () =
  let server = fresh_server () in
  let alice = request server in
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "alice can netlist" true
    (List.mem Feature.Netlister (Applet.features alice.Server.applet));
  Alcotest.(check bool) "bob cannot" false
    (List.mem Feature.Netlister (Applet.features bob.Server.applet));
  Alcotest.(check bool) "bob's jar set is smaller" true
    (List.length bob.Server.jars < List.length alice.Server.jars)

let test_first_visit_fetches_everything () =
  let server = fresh_server () in
  let session = request server in
  Alcotest.(check int) "cache empty: all jars fetched"
    (List.length session.Server.jars)
    (List.length session.Server.fetched);
  Alcotest.(check bool) "download takes time" true
    (session.Server.download_seconds > 1.0)

let test_revisit_hits_cache () =
  let server = fresh_server () in
  let _ = request server in
  let second = request server in
  Alcotest.(check int) "nothing re-fetched" 0
    (List.length second.Server.fetched);
  Alcotest.(check bool) "instant" true (second.Server.download_seconds < 0.001)

let test_update_refetches_applet_jar_only () =
  let server = fresh_server () in
  let _ = request server in
  let v = Server.publish server Catalog.kcm in
  Alcotest.(check int) "version bumped" 2 v;
  let session = request server in
  Alcotest.(check int) "served the new version" 2 session.Server.version;
  Alcotest.(check (list string)) "only the applet jar moved"
    [ "Applet.jar" ]
    (List.map (fun j -> j.Jar.jar_name) session.Server.fetched)

let test_cache_is_per_user () =
  let server = fresh_server () in
  let _ = request server in
  (* bob's first visit still downloads everything *)
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "bob fetched jars" true
    (List.length bob.Server.fetched > 0)

let test_access_log () =
  let server = fresh_server () in
  let _ = request server in
  let _ = request ~user:"bob" server in
  Alcotest.(check int) "two entries" 2 (List.length (Server.access_log server))

let test_served_applet_works () =
  let server = fresh_server () in
  let session = request server in
  let applet = session.Server.applet in
  (match Applet.exec applet Applet.Build with
   | Ok _ -> ()
   | Error message -> Alcotest.failf "build failed: %s" message);
  match Applet.exec applet (Applet.Netlist "VHDL") with
  | Ok text -> Alcotest.(check bool) "vhdl produced" true (String.length text > 500)
  | Error message -> Alcotest.failf "netlist failed: %s" message

let test_secure_request () =
  let server = fresh_server () in
  match
    Server.secure_request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message -> Alcotest.fail message
  | Ok (session, sealed) ->
    Alcotest.(check int) "one sealed jar per fetched jar"
      (List.length session.Server.fetched)
      (List.length sealed);
    let token = Option.get (Server.user_token server ~user:"alice") in
    List.iter
      (fun s ->
         match Jhdl_webserver.Secure_channel.open_sealed ~token s with
         | Ok _ -> ()
         | Error m -> Alcotest.fail m)
      sealed;
    (* another user's token cannot open alice's jars *)
    Server.register_user server ~user:"mallory" ~tier:License.Passive;
    let bad = Option.get (Server.user_token server ~user:"mallory") in
    (match sealed with
     | s :: _ ->
       Alcotest.(check bool) "cross-user decryption fails" true
         (Result.is_error (Jhdl_webserver.Secure_channel.open_sealed ~token:bad s))
     | [] -> Alcotest.fail "expected sealed jars")

(* regression: secure_request used to lose the plain request's error in
   a dead Result.map branch, so the unknown-user path crashed instead of
   reporting — it must propagate the message *)
let test_secure_request_unknown_user () =
  let server = fresh_server () in
  match
    Server.secure_request server ~user:"mallory" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message ->
    Alcotest.(check bool) "error mentions the user" true
      (let needle = "mallory" in
       let hl = String.length message and nl = String.length needle in
       let rec scan i =
         i + nl <= hl && (String.sub message i nl = needle || scan (i + 1))
       in
       scan 0)
  | Ok _ -> Alcotest.fail "unknown user must be refused"

(* {1 lossy delivery: degraded sessions and cache hygiene} *)

module Fault = Jhdl_faults.Fault

let faulty_request server ~seed =
  Server.request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
    ~link:Download.modem_56k
    ~faults:(Fault.only Fault.Disconnect ~rate:0.6 ~seed)
    ~policy:Download.single_attempt ()

(* scan seeds for a run where an optional jar failed but the page still
   loaded — the graceful-degradation path *)
let find_degraded_session () =
  let rec scan seed =
    if seed > 500 then None
    else
      match faulty_request (fresh_server ()) ~seed with
      | Ok session when session.Server.failed <> [] -> Some (seed, session)
      | Ok _ | Error _ -> scan (seed + 1)
  in
  scan 0

let test_degraded_session_grays_out_tools () =
  match find_degraded_session () with
  | None -> Alcotest.fail "no degraded session in 500 seeds"
  | Some (_, session) ->
    (* only non-essential jars can fail in an Ok session *)
    List.iter
      (fun jar ->
         Alcotest.(check bool)
           (jar.Jar.jar_name ^ " is not an essential jar") false
           (List.mem jar.Jar.jar_name
              [ "JHDLBase.jar"; "Virtex.jar"; "Applet.jar" ]))
      session.Server.failed;
    Alcotest.(check bool) "lost jars gray out tools" true
      (session.Server.unavailable <> []);
    Alcotest.(check bool) "the rest of the page still works" true
      (List.length (Applet.features session.Server.applet)
       > List.length session.Server.unavailable);
    Alcotest.(check bool) "attempts were spent" true
      (session.Server.fetch_attempts >= List.length session.Server.fetched)

let test_failed_jar_is_refetched_on_revisit () =
  match find_degraded_session () with
  | None -> Alcotest.fail "no degraded session in 500 seeds"
  | Some (seed, _) ->
    (* replay the degraded visit on a fresh server, then revisit over a
       clean link: the failed jar must not be served from cache *)
    let server = fresh_server () in
    (match faulty_request server ~seed with
     | Error m -> Alcotest.failf "replay diverged: %s" m
     | Ok degraded ->
       let failed_names =
         List.map (fun j -> j.Jar.jar_name) degraded.Server.failed
       in
       let second = request server in
       Alcotest.(check bool) "no failures on the clean link" true
         (second.Server.failed = []);
       List.iter
         (fun name ->
            Alcotest.(check bool) (name ^ " re-fetched") true
              (List.exists
                 (fun j -> j.Jar.jar_name = name)
                 second.Server.fetched))
         failed_names)

let test_essential_failure_is_an_error () =
  (* certain disconnection with one attempt: the base jar cannot arrive,
     so the page must refuse to load rather than serve a broken applet *)
  let server = fresh_server () in
  match
    Server.request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.modem_56k
      ~faults:(Fault.only Fault.Disconnect ~rate:0.999 ~seed:3)
      ~policy:Download.single_attempt ()
  with
  | Error message ->
    Alcotest.(check bool) "error says what is missing" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "essential jar loss must fail the request"

(* {1 bounded browser cache} *)

(* with the default cap nothing is ever evicted; with a tight cap the
   LRU drops components, they get transferred again, and the evictions
   are visible in the session stats *)
let test_lru_cache_eviction_and_refetch () =
  let unbounded = fresh_server () in
  let s1 = request unbounded in
  let s2 = request unbounded in
  Alcotest.(check int) "default cap: revisit is all cache hits" 0
    (List.length s2.Server.fetched);
  Alcotest.(check (list string)) "default cap: nothing evicted" []
    (List.map Jhdl_bundle.Partition.component_name s2.Server.evicted);
  Alcotest.(check int) "default cap: no evictions counted" 0
    (Server.cache_evictions unbounded);
  let tiny = Server.create ~vendor:"tiny" ~cache_cap:1 () in
  let _ = Server.publish tiny Catalog.kcm in
  Server.register_user tiny ~user:"alice" ~tier:License.Licensed;
  let t1 = request tiny in
  Alcotest.(check int) "first visit fetches the full set"
    (List.length s1.Server.fetched)
    (List.length t1.Server.fetched);
  Alcotest.(check bool) "filling a one-entry cache evicts" true
    (List.length t1.Server.evicted > 0);
  let t2 = request tiny in
  Alcotest.(check bool) "revisit must re-transfer evicted components" true
    (List.length t2.Server.fetched > 0);
  Alcotest.(check bool) "evictions surface in server stats" true
    (Server.cache_evictions tiny
     >= List.length t1.Server.evicted + List.length t2.Server.evicted);
  Alcotest.(check bool) "bad cap rejected" true
    (try
       let _ = Server.create ~vendor:"x" ~cache_cap:0 () in
       false
     with Invalid_argument _ -> true)

(* {1 supervised session manager} *)

module Session_manager = Jhdl_webserver.Session_manager
module Endpoint = Jhdl_netproto.Endpoint
module Simulator = Jhdl_sim.Simulator
module Snapshot = Jhdl_sim.Snapshot
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Counter = Jhdl_modgen.Counter
module Protocol = Jhdl_netproto.Protocol

let counter_endpoint name =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let clock =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  Endpoint.of_simulator ~name (Simulator.create ~clock d)

let manager_config =
  { Session_manager.heartbeat_timeout_s = 10.0;
    idle_timeout_s = 60.0;
    max_sessions_per_user = 2 }

let open_ok manager ~user ~now endpoint =
  match Session_manager.open_session manager ~user ~now endpoint with
  | Ok key -> key
  | Error reason -> Alcotest.failf "open_session failed: %s" reason

let test_session_quota () =
  let m = Session_manager.create ~config:manager_config () in
  let _ = open_ok m ~user:"alice" ~now:0.0 (counter_endpoint "a1") in
  let _ = open_ok m ~user:"alice" ~now:0.0 (counter_endpoint "a2") in
  let _ = open_ok m ~user:"bob" ~now:0.0 (counter_endpoint "b1") in
  (match
     Session_manager.open_session m ~user:"alice" ~now:0.0
       (counter_endpoint "a3")
   with
   | Error reason ->
     Alcotest.(check bool) "refusal names the quota" true
       (String.length reason > 0)
   | Ok _ -> Alcotest.fail "third alice session must be refused");
  let stats = Session_manager.stats m in
  Alcotest.(check int) "three live" 3 stats.Session_manager.live;
  Alcotest.(check int) "one rejection" 1
    stats.Session_manager.quota_rejections

let test_session_timeouts_reap_with_checkpoints () =
  let m = Session_manager.create ~config:manager_config () in
  let quiet = open_ok m ~user:"alice" ~now:0.0 (counter_endpoint "quiet") in
  let chatty = open_ok m ~user:"bob" ~now:0.0 (counter_endpoint "chatty") in
  (* the chatty session keeps its heartbeat fresh; the quiet one stops *)
  (match Session_manager.heartbeat m ~now:8.0 chatty with
   | Ok () -> ()
   | Error reason -> Alcotest.failf "heartbeat failed: %s" reason);
  let reaped = Session_manager.tick m ~now:11.0 in
  (match reaped with
   | [ r ] ->
     Alcotest.(check string) "the quiet session was reaped" quiet
       r.Session_manager.reaped_key;
     (match r.Session_manager.reason with
      | Session_manager.Heartbeat_lost -> ()
      | Session_manager.Idle -> Alcotest.fail "expected heartbeat loss");
     (match r.Session_manager.checkpoint with
      | Ok blob ->
        Alcotest.(check bool) "parting checkpoint is a real blob" true
          (String.length blob > 0)
      | Error reason -> Alcotest.failf "no parting checkpoint: %s" reason)
   | other -> Alcotest.failf "expected one reap, got %d" (List.length other));
  Alcotest.(check (list string)) "chatty survives" [ chatty ]
    (Session_manager.live_sessions m);
  (* heartbeats alone do not count as activity forever: idle reaps too *)
  let rec beat t =
    if t <= 70.0 then begin
      (match Session_manager.heartbeat m ~now:t chatty with
       | Ok () -> ()
       | Error reason -> Alcotest.failf "heartbeat failed: %s" reason);
      beat (t +. 5.0)
    end
  in
  beat 10.0;
  Alcotest.(check int) "heartbeats keep it alive" 0
    (List.length (Session_manager.tick m ~now:70.0));
  let stats = Session_manager.stats m in
  Alcotest.(check int) "one heartbeat reap" 1
    stats.Session_manager.reaped_heartbeat

let test_session_shutdown_reports_preserved () =
  let m = Session_manager.create ~config:manager_config () in
  let alive_key = open_ok m ~user:"alice" ~now:0.0 (counter_endpoint "alive") in
  let doomed = counter_endpoint "doomed" in
  let doomed_key = open_ok m ~user:"bob" ~now:0.0 doomed in
  (* advance the live one so its checkpoint carries real state *)
  (match Session_manager.endpoint m alive_key with
   | Some e ->
     let _ =
       Endpoint.handle_packet e { Protocol.seq = 0; payload = Protocol.Cycle 5 }
     in
     ()
   | None -> Alcotest.fail "no endpoint for live session");
  Endpoint.crash doomed;
  let report = Session_manager.shutdown m in
  (match report.Session_manager.preserved with
   | [ (key, blob) ] ->
     Alcotest.(check string) "live session preserved" alive_key key;
     (* the preserved blob restores into a fresh simulator of the design *)
     let twin = counter_endpoint "twin" in
     (match Endpoint.restore twin blob with
      | Ok () -> ()
      | Error reason -> Alcotest.failf "preserved blob rejected: %s" reason);
     (match
        Endpoint.handle twin (Protocol.Get_outputs [ "q" ])
      with
      | Protocol.Outputs_are [ (_, v) ] ->
        Alcotest.(check (option int)) "preserved state is the real state"
          (Some 5) (Jhdl_logic.Bits.to_int v)
      | _ -> Alcotest.fail "expected outputs")
   | other -> Alcotest.failf "expected one preserved, got %d" (List.length other));
  (match report.Session_manager.lost with
   | [ (key, _) ] ->
     Alcotest.(check string) "crashed session reported lost" doomed_key key
   | other -> Alcotest.failf "expected one lost, got %d" (List.length other));
  Alcotest.(check int) "registry emptied" 0
    (Session_manager.stats m).Session_manager.live

let suite =
  [ Alcotest.test_case "unknown user" `Quick test_unknown_user;
    Alcotest.test_case "lru cache eviction and refetch" `Quick
      test_lru_cache_eviction_and_refetch;
    Alcotest.test_case "session quota" `Quick test_session_quota;
    Alcotest.test_case "session timeouts reap with checkpoints" `Quick
      test_session_timeouts_reap_with_checkpoints;
    Alcotest.test_case "session shutdown reports preserved" `Quick
      test_session_shutdown_reports_preserved;
    Alcotest.test_case "secure request unknown user" `Quick
      test_secure_request_unknown_user;
    Alcotest.test_case "degraded session grays out tools" `Quick
      test_degraded_session_grays_out_tools;
    Alcotest.test_case "failed jar refetched on revisit" `Quick
      test_failed_jar_is_refetched_on_revisit;
    Alcotest.test_case "essential failure is an error" `Quick
      test_essential_failure_is_an_error;
    Alcotest.test_case "secure request" `Quick test_secure_request;
    Alcotest.test_case "unknown ip" `Quick test_unknown_ip;
    Alcotest.test_case "catalog" `Quick test_catalog;
    Alcotest.test_case "license drives applet" `Quick test_license_drives_applet;
    Alcotest.test_case "first visit fetches all" `Quick
      test_first_visit_fetches_everything;
    Alcotest.test_case "revisit hits cache" `Quick test_revisit_hits_cache;
    Alcotest.test_case "update refetches applet jar" `Quick
      test_update_refetches_applet_jar_only;
    Alcotest.test_case "cache is per user" `Quick test_cache_is_per_user;
    Alcotest.test_case "access log" `Quick test_access_log;
    Alcotest.test_case "served applet works" `Quick test_served_applet_works ]
