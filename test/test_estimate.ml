(* Estimator tests: area bookkeeping and static timing shape. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Estimate = Jhdl_estimate.Estimate
module Adders = Jhdl_modgen.Adders
module Kcm = Jhdl_modgen.Kcm

let adder_design ~width builder =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" width in
  let b = Wire.create top ~name:"b" width in
  let sum = Wire.create top ~name:"sum" width in
  let _ = builder top ~a ~b ~sum in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "sum" Types.Output sum;
  d

let test_area_carry_chain () =
  let d =
    adder_design ~width:8 (fun top ~a ~b ~sum ->
      Adders.carry_chain top ~a ~b ~sum ())
  in
  let r = Estimate.area_of_design d in
  Alcotest.(check int) "8 luts" 8 r.Estimate.area.Jhdl_virtex.Virtex.luts;
  Alcotest.(check int) "16 carry cells" 16
    r.Estimate.area.Jhdl_virtex.Virtex.carry_muxes;
  Alcotest.(check int) "no ffs" 0 r.Estimate.area.Jhdl_virtex.Virtex.ffs

let test_area_ripple_bigger () =
  let cc =
    Estimate.area_of_design
      (adder_design ~width:8 (fun top ~a ~b ~sum ->
         Adders.carry_chain top ~a ~b ~sum ()))
  in
  let rc =
    Estimate.area_of_design
      (adder_design ~width:8 (fun top ~a ~b ~sum ->
         Adders.ripple_carry top ~a ~b ~sum ()))
  in
  Alcotest.(check bool) "ripple uses more LUTs" true
    (rc.Estimate.area.Jhdl_virtex.Virtex.luts
     > cc.Estimate.area.Jhdl_virtex.Virtex.luts)

let test_timing_carry_chain_faster () =
  let cc =
    Estimate.timing_of_design
      (adder_design ~width:12 (fun top ~a ~b ~sum ->
         Adders.carry_chain top ~a ~b ~sum ()))
  in
  let rc =
    Estimate.timing_of_design
      (adder_design ~width:12 (fun top ~a ~b ~sum ->
         Adders.ripple_carry top ~a ~b ~sum ()))
  in
  Alcotest.(check bool) "carry chain is faster" true
    (cc.Estimate.critical_path_ps < rc.Estimate.critical_path_ps);
  Alcotest.(check bool) "ripple has more levels" true
    (rc.Estimate.logic_levels > cc.Estimate.logic_levels)

let test_timing_grows_with_width () =
  let time w =
    (Estimate.timing_of_design
       (adder_design ~width:w (fun top ~a ~b ~sum ->
          Adders.carry_chain top ~a ~b ~sum ())))
      .Estimate.critical_path_ps
  in
  Alcotest.(check bool) "wider is slower" true (time 16 > time 4)

let test_timing_register_path () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let t = Wire.create top 1 in
  let _ = Virtex.fd top ~c:clk ~d:d_in ~q:t () in
  let t2 = Wire.create top 1 in
  let _ = Virtex.inv top t t2 in
  let _ = Virtex.fd top ~c:clk ~d:t2 ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "q" Types.Output q;
  let r = Estimate.timing_of_design d in
  (* clk->q + net + lut + net + setup *)
  let expected =
    Jhdl_virtex.Virtex.clk_to_q_ps
    + Jhdl_virtex.Virtex.net_delay_ps ~fanout:1
    + 470
    + Jhdl_virtex.Virtex.net_delay_ps ~fanout:1
    + Jhdl_virtex.Virtex.setup_ps
  in
  Alcotest.(check int) "reg-to-reg path" expected r.Estimate.critical_path_ps;
  (match r.Estimate.path_end with
   | Estimate.At_register _ -> ()
   | Estimate.At_output _ -> Alcotest.fail "expected a register endpoint")

let test_pipelining_shortens_critical_path () =
  let kcm_timing ~pipelined =
    let top = Cell.root ~name:"top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let m = Wire.create top ~name:"m" 12 in
    let p = Wire.create top ~name:"p" 20 in
    let _ =
      Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:false
        ~pipelined_mode:pipelined ~constant:201 ()
    in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "m" Types.Input m;
    Design.add_port d "p" Types.Output p;
    (Estimate.timing_of_design d).Estimate.critical_path_ps
  in
  Alcotest.(check bool) "pipelined kcm has shorter critical path" true
    (kcm_timing ~pipelined:true < kcm_timing ~pipelined:false)

let test_black_box_counted_separately () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 4 in
  let make_behavior () =
    { Jhdl_circuit.Prim.comb = (fun ~read -> [ ("O", read "A") ]);
      clock_edge = None;
      state_reset = None }
  in
  let _ =
    Cell.black_box top ~model_name:"BB" ~make_behavior
      ~ports:[ ("A", Types.Input, a); ("O", Types.Output, o) ]
      ()
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  let r = Estimate.area_of_design d in
  Alcotest.(check int) "no luts" 0 r.Estimate.area.Jhdl_virtex.Virtex.luts;
  Alcotest.(check int) "one black box" 1 r.Estimate.black_boxes

let test_area_of_cell_subtree () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let b = Wire.create top ~name:"b" 4 in
  let s1 = Wire.create top ~name:"s1" 4 in
  let s2 = Wire.create top ~name:"s2" 4 in
  let add1 = Adders.carry_chain top ~name:"add1" ~a ~b ~sum:s1 () in
  let _ = Adders.carry_chain top ~name:"add2" ~a:s1 ~b ~sum:s2 () in
  let whole = Estimate.area_of_design (Design.create top) in
  let part = Estimate.area_of_cell add1 in
  Alcotest.(check int) "subtree is half the carry"
    (whole.Estimate.area.Jhdl_virtex.Virtex.carry_muxes / 2)
    part.Estimate.area.Jhdl_virtex.Virtex.carry_muxes

let test_combined_report () =
  let d =
    adder_design ~width:4 (fun top ~a ~b ~sum ->
      Adders.carry_chain top ~a ~b ~sum ())
  in
  let text = Estimate.to_string (Estimate.of_design d) in
  Alcotest.(check bool) "mentions slices" true
    (String.length text > 0
     &&
     let rec contains i =
       i + 6 <= String.length text
       && (String.sub text i 6 = "slices" || contains (i + 1))
     in
     contains 0)

let test_placement_aware_timing () =
  let build () =
    adder_design ~width:12 (fun top ~a ~b ~sum ->
      Adders.carry_chain top ~a ~b ~sum ())
  in
  let placed =
    (Estimate.timing_of_design ~use_placement:true (build ()))
      .Estimate.critical_path_ps
  in
  let generic =
    (Estimate.timing_of_design (build ())).Estimate.critical_path_ps
  in
  Alcotest.(check bool) "tight placement beats the generic estimate" true
    (placed < generic);
  (* stripping the RLOCs makes placement-aware timing match the generic *)
  let stripped = build () in
  Cell.iter_rec Cell.clear_rloc (Design.root stripped);
  Alcotest.(check int) "stripped equals generic" generic
    (Estimate.timing_of_design ~use_placement:true stripped)
      .Estimate.critical_path_ps

let test_placed_net_delay_model () =
  Alcotest.(check bool) "adjacent hop is cheap" true
    (Estimate.placed_net_delay_ps ~distance:0 ~fanout:1
     < Jhdl_virtex.Virtex.net_delay_ps ~fanout:1);
  Alcotest.(check bool) "long hops cost more" true
    (Estimate.placed_net_delay_ps ~distance:10 ~fanout:1
     > Estimate.placed_net_delay_ps ~distance:1 ~fanout:1)

let test_zero_length_path_has_no_frequency () =
  (* a pure-wire design (output port driven straight from an input) has
     a zero-length critical path; it used to report a fake clamped 1 ps
     path and 1e6 MHz — now the path is honestly 0 and the frequency a
     sentinel [None] instead of infinity *)
  let top = Cell.root ~name:"top" () in
  let w = Wire.create top ~name:"w" 4 in
  let d = Design.create top in
  Design.add_port d "i" Types.Input w;
  Design.add_port d "o" Types.Output w;
  let report = Estimate.timing_of_design d in
  Alcotest.(check int) "zero-length path" 0 report.Estimate.critical_path_ps;
  Alcotest.(check bool) "no frequency cap" true
    (report.Estimate.max_frequency_mhz = None);
  let text = Format.asprintf "%a" Estimate.pp_timing_report report in
  Alcotest.(check bool) "printable without inf" true
    (let rec contains i =
       i + 3 <= String.length text
       && (String.sub text i 3 = "inf" || contains (i + 1))
     in
     not (contains 0));
  (* real designs still get a finite frequency *)
  let adder = adder_design ~width:4 (fun top ~a ~b ~sum ->
      Adders.carry_chain top ~name:"add" ~a ~b ~sum ())
  in
  match (Estimate.timing_of_design adder).Estimate.max_frequency_mhz with
  | Some mhz -> Alcotest.(check bool) "finite MHz" true (mhz > 0.0)
  | None -> Alcotest.fail "adder should have a frequency"

let suite =
  [ Alcotest.test_case "area carry chain" `Quick test_area_carry_chain;
    Alcotest.test_case "zero-length path has no frequency" `Quick
      test_zero_length_path_has_no_frequency;
    Alcotest.test_case "placement-aware timing" `Quick
      test_placement_aware_timing;
    Alcotest.test_case "placed net delay model" `Quick
      test_placed_net_delay_model;
    Alcotest.test_case "ripple bigger than carry" `Quick test_area_ripple_bigger;
    Alcotest.test_case "carry chain faster" `Quick
      test_timing_carry_chain_faster;
    Alcotest.test_case "timing grows with width" `Quick
      test_timing_grows_with_width;
    Alcotest.test_case "register path timing" `Quick test_timing_register_path;
    Alcotest.test_case "pipelining shortens path" `Quick
      test_pipelining_shortens_critical_path;
    Alcotest.test_case "black box counted separately" `Quick
      test_black_box_counted_separately;
    Alcotest.test_case "area of subtree" `Quick test_area_of_cell_subtree;
    Alcotest.test_case "combined report" `Quick test_combined_report ]
