The fuzzer generates valid-by-construction designs and drives each
through all seven differential oracles. Everything derives from the
single --seed, so the whole report is byte-stable.

  $ jhdl-fuzz-tool --seed 1 --count 6 --max-cells 16 --steps 6
  fuzz: seed=1 max-cells=16 steps=6
  cases: 6 (86 recipe entries)
  oracle sim-vs-ref    6 run, 0 failed
  oracle snapshot      6 run, 0 failed
  oracle netlist       6 run, 0 failed
  oracle lint          6 run, 0 failed
  oracle estimate      6 run, 0 failed
  oracle batch         6 run, 0 failed
  oracle absint        6 run, 0 failed
  coverage: BUF=7 FDCE=3 FDRE=2 GND=2 INPUT=26 LUT1=5 LUT2=7 LUT3=11 LUT4=6 MULT_AND=1 MUXCY=3 RAM16X1S=5 SRL16E=3 XORCY=5
  result: PASS

The oracle set is selectable and enumerable:

  $ jhdl-fuzz-tool --list-oracles
  sim-vs-ref
  snapshot
  netlist
  lint
  estimate
  batch
  absint

  $ jhdl-fuzz-tool --oracle bogus
  fuzz_tool: unknown oracle bogus (try sim-vs-ref, snapshot, netlist, lint, estimate, batch, absint or all)
  [2]

The batch oracle packs 63 derived testbench lanes into one
bit-parallel kernel and pins it bit-identical to 63 scalar
golden-model runs; --metrics surfaces the packed-kernel instruments
(all deterministic from the seed):

  $ jhdl-fuzz-tool --seed 1 --count 3 --max-cells 12 --steps 4 --oracle batch --metrics
  fuzz: seed=1 max-cells=12 steps=4
  cases: 3 (29 recipe entries)
  oracle batch         3 run, 0 failed
  coverage: BUF=2 FDRE=1 INPUT=11 LUT1=3 LUT2=1 LUT3=3 LUT4=3 MUXCY=1 SRL16E=2 VCC=1 XORCY=1
  result: PASS
  [fuzz] 6 metric(s)
    counter   batch_cases_total                3
    counter   batch_lane_steps_total           756
    counter   batch_net_events_total           2120
    counter   batch_settle_evals_total         114
    counter   lanes_active                     63
    histogram words_per_settle                 count=23 sum=96 p50=5 p95=10 max=9

--inject-bug arms a simulated kernel defect (inverted MULT_AND
partial product) to prove the failure path end to end: the sim-vs-ref
oracle trips, the delta-debugging reducer shrinks each failing case
to a minimal reproducer, and --out writes replayable repro files.

  $ jhdl-fuzz-tool --seed 42 --count 8 --max-cells 20 --steps 8 --inject-bug --reduce --oracle sim-vs-ref --out repro
  fuzz: seed=42 max-cells=20 steps=8
  cases: 8 (93 recipe entries)
  oracle sim-vs-ref    8 run, 2 failed
  coverage: BUF=2 FD=3 FDCE=3 FDE=3 FDRE=3 INPUT=26 INV=2 LUT1=4 LUT2=4 LUT3=8 LUT4=8 MULT_AND=3 MUXCY=1 RAM16X1S=10 SRL16E=5 VCC=2 XORCY=6
  FAIL case 5 oracle sim-vs-ref: injected defect: MULT_AND partial product inverted
    reduced: 15 -> 3 entries, 8 -> 1 steps (63 checks)
  FAIL case 6 oracle sim-vs-ref: injected defect: MULT_AND partial product inverted
    reduced: 11 -> 3 entries, 8 -> 1 steps (21 checks)
  result: FAIL
  wrote repro/repro_00_case5_sim-vs-ref.txt
  wrote repro/repro_01_case6_sim-vs-ref.txt
  [1]

The reproducer is the minimized recipe plus its seed coordinates —
three cells suffice to reproduce the injected defect:

  $ cat repro/repro_00_case5_sim-vs-ref.txt
  # fuzz reproducer: seed=42 case=5 oracle=sim-vs-ref
  # injected defect: MULT_AND partial product inverted
  recipe fuzz_c5 3
  0 gnd
  1 gnd group=0
  2 mult_and i0=0 i1=1 group=0
  stimulus
  

