The lint tool's demo design carries one defect per analysis family:
a doubly-driven net, a gated clock and a cone of dead logic. Each is
reported under its stable rule id and the exit code is non-zero.

  $ jhdl-lint-tool --broken
  error   L001 [multi-driven-net] net broken_top/clash[0] has 2 driving sources: broken_top/drv0.O, broken_top/drv1.O
  warning L003 [dangling-driver] net broken_top/dead[0] is driven but read by nothing
  warning L008 [dead-logic] 1 primitive(s) feed no design output (dead logic): broken_top/dead_inv
  error   L101 [gated-clock] clock net broken_top/gated_clk[0] of 1 sequential cell(s) is driven by LUT2 output broken_top/clk_gate.O, not a clock buffer or top-level input
  broken_top: 2 error(s), 2 warning(s), 0 info
  [1]

The JSON rendering is stable: fixed field names and order, one object
per diagnostic per line, so reports diff cleanly in CI.

  $ jhdl-lint-tool --broken --json
  {
    "design": "broken_top",
    "summary": {"errors": 2, "warnings": 2, "info": 0, "dropped": 0},
    "diagnostics": [
      {"rule": "L001", "name": "multi-driven-net", "severity": "error", "message": "net broken_top/clash[0] has 2 driving sources: broken_top/drv0.O, broken_top/drv1.O", "cells": ["broken_top/drv0.O", "broken_top/drv1.O"], "nets": ["broken_top/clash[0]"]},
      {"rule": "L003", "name": "dangling-driver", "severity": "warning", "message": "net broken_top/dead[0] is driven but read by nothing", "cells": [], "nets": ["broken_top/dead[0]"]},
      {"rule": "L008", "name": "dead-logic", "severity": "warning", "message": "1 primitive(s) feed no design output (dead logic): broken_top/dead_inv", "cells": ["broken_top/dead_inv"], "nets": []},
      {"rule": "L101", "name": "gated-clock", "severity": "error", "message": "clock net broken_top/gated_clk[0] of 1 sequential cell(s) is driven by LUT2 output broken_top/clk_gate.O, not a clock buffer or top-level input", "cells": ["broken_top/ff"], "nets": ["broken_top/gated_clk[0]"]}
    ]
  }
  [1]

A baseline file acknowledges known findings by key (rule id plus
primary location); suppressed findings no longer fail the run.

  $ cat > known.baseline <<'EOF'
  > # accepted legacy defects
  > L001 broken_top/clash[0]
  > L101 broken_top/gated_clk[0]
  > EOF
  $ jhdl-lint-tool --broken --baseline known.baseline
  warning L003 [dangling-driver] net broken_top/dead[0] is driven but read by nothing
  warning L008 [dead-logic] 1 primitive(s) feed no design output (dead logic): broken_top/dead_inv
  broken_top: 0 error(s), 2 warning(s), 0 info

The same run still fails when warnings are made fatal.

  $ jhdl-lint-tool --broken --baseline known.baseline --fail-on warning
  warning L003 [dangling-driver] net broken_top/dead[0] is driven but read by nothing
  warning L008 [dead-logic] 1 primitive(s) feed no design output (dead logic): broken_top/dead_inv
  broken_top: 0 error(s), 2 warning(s), 0 info
  [1]

Rules can be disabled by id.

  $ jhdl-lint-tool --broken --disable L001 --disable L101 --disable L003 --disable L008
  broken_top: 0 error(s), 0 warning(s), 0 info

The registry is self-describing.

  $ jhdl-lint-tool --rules | head -3
  L001  error     multi-driven-net         A net with more than one driving source (contention).
  L002  error     undriven-net             A net with sinks but no driver and no top-level input binding.
  L003  warning   dangling-driver          A driven net that nothing reads and no output port exposes.

--deep adds the BDD-backed analysis rules (L5xx): proof-backed
findings the structural rules cannot see, reported at info severity
through the same renderers.

  $ jhdl-lint-tool --ip UpCounter --deep
  warning L003 [dangling-driver] net counter_top/counter/inc_add/carry[8] is driven but read by nothing
  warning L008 [dead-logic] 1 primitive(s) feed no design output (dead logic): counter_top/counter/inc_add/cy7
  info    L502 [redundant-cell-pair] 2 cells compute the same 4-valued function (BDD-proved): counter_top/counter/inc_add/prop0, counter_top/counter/inc_add/sum0
  counter_top: 0 error(s), 2 warning(s), 1 info

The BDD manager's counters are deterministic, so the metrics dump is
pinned byte-for-byte.

  $ jhdl-lint-tool --ip UpCounter --deep --metrics | tail -4
  [analysis] 3 metric(s)
    counter   bdd_cache_hits_total             2146
    counter   bdd_cache_lookups_total          3867
    counter   bdd_nodes_total                  1098

  $ jhdl-lint-tool --rules | tail -3
  L501  info      provable-constant-net    Net is provably constant by BDD cone analysis but invisible to constant propagation (e.g. x XOR x, a mux with equal arms).
  L502  info      redundant-cell-pair      Two or more combinational cells compute the same 4-valued function of the same leaves (hash-consed cone pairs coincide); all but one can be removed.
  L503  info      unobservable-cone        Cell is structurally connected toward an output but provably cannot affect any output port for defined inputs.

Stock catalog designs lint clean at error severity.

  $ jhdl-lint-tool --all > report.txt; echo "exit $?"
  exit 0
  $ grep -c "0 error(s)" report.txt
  6

With --cache-cap the verdicts go through a bounded content-addressed
store; one cold pass over the catalog is all misses, and the traffic
counters land in the metrics dump.

  $ jhdl-lint-tool --all --cache-cap 8 --metrics > cached.txt; echo "exit $?"
  exit 0
  $ grep "error(s)" report.txt > plain.sum; grep "error(s)" cached.txt > cached.sum
  $ diff plain.sum cached.sum
  $ grep "lint.cache" cached.txt
    counter   lint.cache_bytes                 24386
    counter   lint.cache_entries               6
    counter   lint.cache_evictions_total       0
    counter   lint.cache_hits_total            0
    counter   lint.cache_insertions_total      6
    counter   lint.cache_lookups_total         6
    counter   lint.cache_misses_total          6
    counter   lint.cache_removals_total        0
    counter   lint.cache_replacements_total    0
    counter   lint.cache_verify_rejects_total  0

Unknown IP names are rejected.

  $ jhdl-lint-tool --ip Booth 2>&1
  lint_tool: unknown IP Booth
  [2]
