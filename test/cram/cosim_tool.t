A Verilog testbench drives the protected KCM over the PLI wrapper.

  $ cat > bench.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd10;
  >     #1;
  >     $check(p, -19'd560);
  >     $display("product:", p);
  >     $finish;
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  product: p=-560
  1/1 checks passed, 1 cycles, 8 protocol messages (684 bytes)

Fault injection is seeded: two runs with the same seed replay the same
faults, the same retries and the same byte counts, and recovery never
changes the simulation's answers.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.3 --retries 6 --seed 7 \
  >   | tee run_a.txt
  product: p=-560
  1/1 checks passed, 1 cycles, 19 protocol messages (1562 bytes)
  fault model drop 30% (seed 7): 8 injected, 8 retries, 137 bytes retransmitted

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.3 --retries 6 --seed 7 \
  >   > run_b.txt && diff run_a.txt run_b.txt

Without retries the first lost message kills the session cleanly.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.9 --retries 1 --seed 7
  cosim_tool: channel gave out: dut: request seq 0 lost after 1 attempt(s)
  [2]

Bad fault arguments are rejected before anything runs.

  $ jhdl-cosim-tool --tb bench.v --fault gremlins --fault-rate 0.1
  cosim_tool: faults: drop, corrupt, duplicate, latency, disconnect
  [2]

A failing check exits non-zero and reports expected/got.

  $ cat > bad.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd1;
  >     #1;
  >     $check(p, 19'd42);
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bad.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  FAIL $check p: expected 0000000000000101010, got 1111111111111001000
  0/1 checks passed, 1 cycles, 6 protocol messages (499 bytes)
  [1]
