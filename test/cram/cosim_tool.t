A Verilog testbench drives the protected KCM over the PLI wrapper.

  $ cat > bench.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd10;
  >     #1;
  >     $check(p, -19'd560);
  >     $display("product:", p);
  >     $finish;
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  product: p=-560
  1/1 checks passed, 1 cycles, 8 protocol messages (684 bytes)

Fault injection is seeded: two runs with the same seed replay the same
faults, the same retries and the same byte counts, and recovery never
changes the simulation's answers.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.3 --retries 6 --seed 7 \
  >   | tee run_a.txt
  product: p=-560
  1/1 checks passed, 1 cycles, 19 protocol messages (1562 bytes)
  fault model drop 30% (seed 7): 8 injected, 8 retries, 137 bytes retransmitted

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.3 --retries 6 --seed 7 \
  >   > run_b.txt && diff run_a.txt run_b.txt

Without retries the first lost message kills the session cleanly.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault drop --fault-rate 0.9 --retries 1 --seed 7
  cosim_tool: channel gave out: dut: request seq 0 lost after 1 attempt(s)
  [2]

Bad fault arguments are rejected before anything runs.

  $ jhdl-cosim-tool --tb bench.v --fault gremlins --fault-rate 0.1
  cosim_tool: faults: drop, corrupt, duplicate, latency, disconnect, session-crash
  [2]

A scripted endpoint crash without the session layer kills the run
cleanly — the channel looks dead and retries burn out.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product --crash-at 3
  cosim_tool: channel gave out: dut: request seq 2 lost after 6 attempt(s)
  [2]

With the session layer armed (--checkpoint-every) the same crash is
survived: the endpoint restarts from its checkpoint, replays its
journal, resumes the session, and the answers are bit-identical.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --crash-at 3 --checkpoint-every 4
  product: p=-560
  1/1 checks passed, 1 cycles, 15 protocol messages (1250 bytes)
  session: 1 crash(es), 1 resume(s), 2 checkpoint(s), 1 message(s) replayed

Injected session crashes are seeded like every other fault: the same
seed replays the same crashes, resumes and byte counts.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault session-crash --fault-rate 0.2 --seed 11 \
  >   --checkpoint-every 4 | tee crash_a.txt
  product: p=-560
  1/1 checks passed, 1 cycles, 55 protocol messages (4848 bytes)
  fault model session-crash 20% (seed 11): 13 injected, 20 retries, 440 bytes retransmitted
  session: 8 crash(es), 8 resume(s), 2 checkpoint(s), 19 message(s) replayed

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault session-crash --fault-rate 0.2 --seed 11 \
  >   --checkpoint-every 4 > crash_b.txt && diff crash_a.txt crash_b.txt

A checkpoint file written after one run restores into the next: the
counter picks up at 5 and reaches 10. The blob is signature-checked, so
it refuses to restore into a different design.

  $ cat > count.v <<'VEOF'
  > module tb;
  >   reg ce;
  >   wire [7:0] q;
  >   initial begin
  >     ce = 1'b1;
  >     #5;
  >     $display("count:", q);
  >     $finish;
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --ip UpCounter -p has_enable=true --tb count.v \
  >   --bind ce=ce --bind q=q --checkpoint cnt.ckpt
  count: q=5
  0/0 checks passed, 5 cycles, 14 protocol messages (1043 bytes)
  checkpoint written to cnt.ckpt (535 bytes)

  $ jhdl-cosim-tool --ip UpCounter -p has_enable=true --tb count.v \
  >   --bind ce=ce --bind q=q --resume cnt.ckpt
  resumed from cnt.ckpt (535 bytes)
  count: q=10
  0/0 checks passed, 5 cycles, 14 protocol messages (1043 bytes)

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --resume cnt.ckpt
  cosim_tool: resume: snapshot: design signature mismatch (blob 102e60aa, design kcm_top is 26b91cad)
  [2]

A failing check exits non-zero and reports expected/got.

  $ cat > bad.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd1;
  >     #1;
  >     $check(p, 19'd42);
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bad.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  FAIL $check p: expected 0000000000000101010, got 1111111111111001000
  0/1 checks passed, 1 cycles, 6 protocol messages (499 bytes)
  [1]

Metrics: --metrics dumps per-component counters and histograms after
the run, and --trace N prints the tail of the channel event ring.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --metrics --trace 4
  product: p=-560
  1/1 checks passed, 1 cycles, 8 protocol messages (684 bytes)
  [sim] 6 metric(s)
    counter   cycles_total                     1
    counter   levels                           13
    counter   net_events_total                 83
    counter   prims                            75
    histogram settle_evals_per_cycle           count=1 sum=70 p50=100 p95=100 max=70
    counter   settle_evals_total               145
  [cosim] 21 metric(s)
    counter   dut.bytes_total                  684
    histogram dut.checkpoint_bytes             count=0 sum=0 p50=0 p95=0 max=0
    counter   dut.checkpoints_total            0
    counter   dut.crashes_total                0
    counter   dut.exchanges_total              4
    counter   dut.faults_corrupt               0
    counter   dut.faults_disconnect            0
    counter   dut.faults_drop                  0
    counter   dut.faults_duplicate             0
    counter   dut.faults_injected_total        0
    counter   dut.faults_latency               0
    counter   dut.faults_session-crash         0
    counter   dut.heartbeats_total             0
    counter   dut.journal_entries              0
    histogram dut.journal_message_bytes        count=0 sum=0 p50=0 p95=0 max=0
    counter   dut.messages_total               8
    counter   dut.replayed_messages_total      0
    counter   dut.resume_handshakes_total      0
    counter   dut.retransmitted_bytes_total    0
    counter   dut.retries_total                0
    histogram dut.rtt_us                       count=4 sum=2052 p50=1000 p95=1000 max=514
  trace: 8 event(s) recorded, showing last 4
    [     4] enter get_outputs                  2
    [     5] exit  get_outputs                  2
    [     6] enter get_outputs                  3
    [     7] exit  get_outputs                  3

A seeded chaos session (drops, retries, crash/resume) reports
byte-identical metric totals across reruns: the whole observability
layer is driven by the simulated clock and seeded fault stream.

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault session-crash --fault-rate 0.2 --seed 11 \
  >   --checkpoint-every 4 --metrics=json | tee met_a.txt | tail -8
      {"name": "dut.messages_total", "type": "counter", "value": 55},
      {"name": "dut.replayed_messages_total", "type": "counter", "value": 19},
      {"name": "dut.resume_handshakes_total", "type": "counter", "value": 8},
      {"name": "dut.retransmitted_bytes_total", "type": "counter", "value": 440},
      {"name": "dut.retries_total", "type": "counter", "value": 20},
      {"name": "dut.rtt_us", "type": "histogram", "count": 6, "sum": 38313876, "p50": 18143524, "p95": 18143524, "max": 18143524}
    ]
  }

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product \
  >   --network campus --fault session-crash --fault-rate 0.2 --seed 11 \
  >   --checkpoint-every 4 --metrics=json > met_b.txt && diff met_a.txt met_b.txt

Unknown metric formats are rejected.

  $ jhdl-cosim-tool --tb bench.v --metrics=xml
  cosim_tool: --metrics formats: text, json (got xml)
  [2]

The same chaos scenarios run from the co-simulation tool (no
testbench needed), and both CLIs replay a seed byte-identically.

  $ jhdl-cosim-tool --chaos smoke --seed 42 > chaos_cosim.txt
  $ jhdl-ip-server --chaos smoke --seed 42 > chaos_server.txt && diff chaos_cosim.txt chaos_server.txt

Without a scenario, a testbench is still required.

  $ jhdl-cosim-tool --ip VirtexKCMMultiplier
  cosim_tool: --tb is required (unless running --chaos)
  [2]
