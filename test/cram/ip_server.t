The vendor server serves per-license applets with browser caching.

  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nlog\nquit\n' \
  >   | jhdl-ip-server | grep -vE '^server> *$'
  IP delivery server for BYU Configurable Computing Lab (type `help`)
  server> registered pat as licensed
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 4 jar(s) in 6.98 s: JHDLBase.jar, Virtex.jar, Viewer.jar, Applet.jar
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 0 jar(s) in 0.00 s: 
  server>   pat GET /applets/FirFilter v1 (licensed license, 4 jar(s), 7.0 s)
    pat GET /applets/FirFilter v1 (licensed license, 0 jar(s), 0.0 s)

With --metrics the console collects server counters (cache hits and
misses, jar bytes, per-jar fetch latency, the content-addressed
delivery cache's delivery.cache_* traffic — its entry capacity is
--cache-cap) and dumps them on exit; the `metrics` command shows them
live. The delivery rows already see traffic here: publishing the
catalog at startup lints six generators (six verdict misses), and the
two served pages share one cached jar bundle (a miss, then a hit).

  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nget pat NoSuchIP dsl\nquit\n' \
  >   | jhdl-ip-server --metrics --trace 3 | grep -vE '^server> *$' | grep -v '^server>\|^IP delivery\|^served\|^fetched\|^registered\|^ERROR'
    counter   admitted_total                   3
    counter   brownout_level                   0
    counter   cache_evictions_total            0
    counter   cache_hits_total                 4
    counter   cache_misses_total               4
    counter   catalog_entries                  6
    counter   delivery.cache_bytes             836461
    counter   delivery.cache_entries           7
    counter   delivery.cache_evictions_total   0
    counter   delivery.cache_hits_total        1
    counter   delivery.cache_insertions_total  7
    counter   delivery.cache_lookups_total     8
    counter   delivery.cache_misses_total      7
    counter   delivery.cache_verify_rejects_total 0
    counter   download.breaker_opened_total    0
    counter   download.breaker_probes_total    0
    counter   download.breaker_state           0
    counter   download.breaker_transitions_total 0
    histogram download_ms                      count=2 sum=6976 p50=1 p95=10000 max=6976
    counter   fetch_attempts_total             4
    counter   fetch_bytes_total                812075
    counter   inflight                         0
    histogram jar_fetch_ms                     count=4 sum=6976 p50=2000 p95=5000 max=2952
    counter   jars_delivered_total             4
    counter   jars_failed_total                0
    counter   jars_fetched_total               4
    counter   queue_depth_browse               0
    counter   queue_depth_cosim                0
    counter   queue_depth_download             0
    counter   queue_depth_elaborate            0
    histogram queue_wait_ms                    count=3 sum=0 p50=1 p95=1 max=0
    counter   request_failures_total           1
    counter   requests_total                   3
    counter   shed_breaker-open_total          0
    counter   shed_brownout-rejected_total     0
    counter   shed_deadline-expired_total      0
    counter   shed_queue-full_total            0
    counter   shed_tier-shed_total             0
    counter   shed_total                       0
  trace: 3 event(s) recorded, showing last 3
    [     0] point request_ok                   4
    [     1] point request_ok                   0
    [     2] point request_error                0

A chaos scenario replaces the console: a seeded fault storm plays
against a fresh delivery stack and the exit code says whether every
recovery invariant held. Same seed, same report, byte for byte.

  $ jhdl-ip-server --chaos smoke --seed 42
  chaos smoke (seed 42)
    offered 109 | ok 57 | failed 6 | shed 46
      shed deadline-expired  8
      shed breaker-open      38
    phase baseline   offered  17 | ok  17 | shed   0 | failed   0
    phase storm      offered  60 | ok  15 | shed  39 | failed   6
    phase recovery   offered  32 | ok  25 | shed   7 | failed   0
    goodput baseline 1.000 -> recovery 1.000 | p95 queue wait 600.0 ms
    breaker: download opened 2, cosim opened 0 | crashes 2, resumes 2
    sessions: opened 8, reaped 6, preserved 2, lost 0, quota-rejected 3
    PASS accounting-closes    submitted=109 ok=57 failed=6 shed=46 queued=0 inflight=0
    PASS sessions-conserved   opened=8 reaped=6 preserved=2 lost=0
    PASS breaker-download-recovers opened=2 final=closed budget=3.25s
    PASS breaker-cosim-recovers opened=0 final=closed budget=4.50s
    PASS goodput-recovered    baseline=1.000 recovery=1.000 floor=0.900

  $ jhdl-ip-server --chaos smoke --seed 42 > replay_a.txt
  $ jhdl-ip-server --chaos smoke --seed 42 > replay_b.txt && diff replay_a.txt replay_b.txt

Unknown scenarios are refused with the choices.

  $ jhdl-ip-server --chaos typhoon
  unknown scenario typhoon; choices: smoke, crash-burst, loss-spike, slow-clients, quota-storm, republish-load
  [2]
