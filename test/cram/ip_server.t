The vendor server serves per-license applets with browser caching.

  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nlog\nquit\n' \
  >   | jhdl-ip-server | grep -vE '^server> *$'
  IP delivery server for BYU Configurable Computing Lab (type `help`)
  server> registered pat as licensed
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 4 jar(s) in 6.98 s: JHDLBase.jar, Virtex.jar, Viewer.jar, Applet.jar
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 0 jar(s) in 0.00 s: 
  server>   pat GET /applets/FirFilter v1 (licensed license, 4 jar(s), 7.0 s)
    pat GET /applets/FirFilter v1 (licensed license, 0 jar(s), 0.0 s)

With --metrics the console collects server counters (cache hits and
misses, jar bytes, per-jar fetch latency) and dumps them on exit; the
`metrics` command shows them live.

  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nget pat NoSuchIP dsl\nquit\n' \
  >   | jhdl-ip-server --metrics --trace 3 | grep -vE '^server> *$' | grep -v '^server>\|^IP delivery\|^served\|^fetched\|^registered\|^ERROR'
    counter   cache_evictions_total            0
    counter   cache_hits_total                 4
    counter   cache_misses_total               4
    counter   catalog_entries                  4
    histogram download_ms                      count=2 sum=6976 p50=1 p95=10000 max=6976
    counter   fetch_attempts_total             4
    counter   fetch_bytes_total                812075
    histogram jar_fetch_ms                     count=4 sum=6976 p50=2000 p95=5000 max=2952
    counter   jars_delivered_total             4
    counter   jars_failed_total                0
    counter   jars_fetched_total               4
    counter   request_failures_total           1
    counter   requests_total                   3
  trace: 3 event(s) recorded, showing last 3
    [     0] point request_ok                   4
    [     1] point request_ok                   0
    [     2] point request_error                0
