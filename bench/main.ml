(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the quantitative claims and two ablations, as laid
   out in DESIGN.md Section 4 and EXPERIMENTS.md:

     T1  Table 1   jar files used by the KCM applet
     F1  Figure 1  the KCM executable's GUI session (parameters+estimate)
     F2  Figure 2  two IP-executable configurations
     F3  Figure 3  the transparent KCM evaluation applet, self-checked
     F4  Figure 4  black-box co-simulation in a system simulator
     C1  Section 1.2.1/4.2 claim: local applet vs Web-CAD vs JavaCAD
     C2  Section 4.4 claim: partitioned jar download time
     A1  ablation: KCM vs shift-add constant multiplier
     A1b ablation: KCM-FIR vs distributed-arithmetic FIR
     A2  ablation: obfuscation / watermark / encryption overheads
     A3  ablation: delivery forms (netlist vs JBits bitstream vs applet)
     A4  ablation: relative placement (hand / auto / random / stripped)
     A5  ablation: KCM accumulation structure (chain vs tree)
     S1  simulator throughput: compiled dense kernel vs reference
         interpreter (writes BENCH_sim.json)
     AN1 formal analysis: BDD proof vs batch/scalar vector sweeps on
         the chain-vs-tree KCM pair (writes BENCH_analysis.json)
     C3  content-addressed delivery cache: capacity x zipf skew ->
         hit rate, served requests/second (writes BENCH_cache.json)
     R1  overload resilience: offered load x fault rate -> goodput,
         shed rate, p95 queue wait (writes BENCH_resil.json)

   Each experiment prints its rows; a Bechamel micro-benchmark suite then
   measures the real cost of each experiment's core operation. *)

open Jhdl

let section id title =
  Printf.printf "\n=====================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "=====================================================\n"

let kb bytes = (bytes + 512) / 1024

(* ------------------------------------------------------------------ *)
(* shared circuit builders                                             *)
(* ------------------------------------------------------------------ *)

let kcm_design ~n ~pw ~signed_mode ~pipelined_mode ~constant =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" n in
  let p = Wire.create top ~name:"product" pw in
  let kcm =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode
      ~pipelined_mode ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  (d, kcm)

let shift_add_design ~n ~pw ~constant =
  let top = Cell.root ~name:"sa_top" () in
  let m = Wire.create top ~name:"multiplicand" n in
  let p = Wire.create top ~name:"product" pw in
  let _ =
    Multiplier.shift_add_constant top ~multiplicand:m ~product:p ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  d

let kcm_endpoint ~constant =
  let d, _ =
    kcm_design ~n:8 ~pw:19 ~signed_mode:true ~pipelined_mode:false ~constant
  in
  let clk =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  Endpoint.of_simulator ~name:"kcm" (Simulator.create ~clock:clk d)

(* ------------------------------------------------------------------ *)
(* T1: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1" "Table 1: JAR files used by the constant multiplier applet";
  let jars = Partition.jars_for Partition.all_components in
  print_string (Partition.table jars);
  print_endline
    "\npaper reported: JHDLBase 346 kB, Virtex 293 kB, Viewer 140 kB,";
  print_endline "                Applet 16 kB, Total 795 kB";
  let total = kb (Partition.total_compressed jars) in
  Printf.printf "measured total: %d kB (%.1f%% of paper's 795 kB)\n" total
    (100.0 *. float_of_int total /. 795.0)

(* ------------------------------------------------------------------ *)
(* F1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "F1"
    "Figure 1: GUI executable for the constant coefficient multiplier";
  let applet =
    Applet.create ~ip:Catalog.kcm ~license:(License.of_tier License.Evaluator)
      ~user:"figure1-user" ()
  in
  print_string
    (Applet.run_script applet
       [ Applet.Show_form;
         Applet.Set_param ("multiplicand_width", "8");
         Applet.Set_param ("product_width", "12");
         Applet.Set_param ("signed", "true");
         Applet.Set_param ("pipelined", "true");
         Applet.Set_param ("constant", "-56");
         Applet.Build;
         Applet.Estimate ])

(* ------------------------------------------------------------------ *)
(* F2: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "F2" "Figure 2: two configurations of an IP delivery executable";
  print_endline (License.feature_matrix ());
  print_endline "per-configuration footprint (jar set and 56k download):";
  Printf.printf "%-12s %-42s %8s %10s\n" "tier" "jars" "size" "download";
  List.iter
    (fun tier ->
       let license = License.of_tier tier in
       let components = Feature.components license.License.features in
       let jars = Partition.jars_for components in
       let size = Partition.total_compressed jars in
       Printf.printf "%-12s %-42s %5d kB %8.1f s\n" (License.tier_name tier)
         (String.concat "," (List.map (fun j -> j.Jar.jar_name) jars))
         (kb size)
         (Download.jars_seconds Download.modem_56k jars))
    License.all_tiers

(* ------------------------------------------------------------------ *)
(* F3: Figure 3                                                        *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  section "F3" "Figure 3: transparent KCM evaluation applet (self-checked)";
  let applet =
    Applet.create ~ip:Catalog.kcm ~license:(License.of_tier License.Licensed)
      ~user:"figure3-user" ()
  in
  List.iter
    (fun (param, value) ->
       match Applet.exec applet (Applet.Set_param (param, value)) with
       | Ok _ -> ()
       | Error message -> failwith message)
    [ ("multiplicand_width", "8"); ("product_width", "12");
      ("signed", "true"); ("pipelined", "false"); ("constant", "-56") ];
  (match Applet.exec applet Applet.Build with
   | Ok text -> print_endline text
   | Error message -> failwith message);
  (* exhaustive simulation self-check through the applet's simulator *)
  let sim =
    match Applet.simulator applet with
    | Some sim -> sim
    | None -> failwith "licensed applet must have a simulator"
  in
  let checked = ref 0 and failed = ref 0 in
  for x = 0 to 255 do
    let xb = Bits.of_int ~width:8 x in
    Simulator.set_input sim "multiplicand" xb;
    let expected =
      Kcm.expected_product ~signed_mode:true ~constant:(-56) ~full_width:15
        ~product_width:12 xb
    in
    incr checked;
    if not (Bits.equal (Simulator.get_port sim "product") expected) then
      incr failed
  done;
  Printf.printf "simulation self-check: %d/%d inputs match the golden model\n"
    (!checked - !failed) !checked;
  (match Applet.exec applet (Applet.Netlist "EDIF") with
   | Ok edif ->
     let lines = String.split_on_char '\n' edif in
     Printf.printf "EDIF netlist generated: %d lines, %d bytes\n"
       (List.length lines) (String.length edif)
   | Error message -> failwith message);
  match Applet.built_design applet with
  | Some design ->
    Printf.printf "vendor watermark verifies: %b\n"
      (Watermark.verify design ~vendor:Catalog.kcm.Ip_module.vendor)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* F4: Figure 4                                                        *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  section "F4" "Figure 4: black-box co-simulation in a system simulator";
  let cosim = Cosim.create () in
  Cosim.attach cosim (kcm_endpoint ~constant:(-56)) Network.campus;
  let fir_coefficients = [ -1; -2; 6; -2; -1 ] in
  let fir_ep =
    let top = Cell.root ~name:"fir_top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" 8 in
    let y = Wire.create top ~name:"y" 20 in
    let _ =
      Fir.create top ~clk ~x ~y ~signed_mode:true
        ~coefficients:fir_coefficients ()
    in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "x" Types.Input x;
    Design.add_port d "y" Types.Output y;
    let clk_wire =
      match Design.find_port d "clk" with
      | Some p -> p.Design.port_wire
      | None -> assert false
    in
    Endpoint.of_simulator ~name:"fir" (Simulator.create ~clock:clk_wire d)
  in
  Cosim.attach cosim fir_ep Network.campus;
  let samples = List.init 32 (fun i -> (i * 37 mod 256) - 128) in
  let fir_ref =
    Fir.expected_response ~signed_mode:true ~coefficients:fir_coefficients
      ~full_width:
        (Fir.accumulation_width ~x_width:8 ~coefficients:fir_coefficients)
      ~out_width:20 samples
  in
  let mismatches = ref 0 in
  List.iteri
    (fun n x ->
       let xb = Bits.of_int ~width:8 x in
       Cosim.set_inputs cosim ~box:"kcm" [ ("multiplicand", xb) ];
       Cosim.set_inputs cosim ~box:"fir" [ ("x", xb) ];
       let y = Cosim.get_output cosim ~box:"fir" "y" in
       let p = Cosim.get_output cosim ~box:"kcm" "product" in
       Cosim.cycle cosim;
       let p_ok = Bits.to_signed_int p = Some (-56 * x) in
       let y_ok = Bits.equal y (List.nth fir_ref n) in
       if not (p_ok && y_ok) then incr mismatches)
    samples;
  Printf.printf
    "co-simulated %d cycles against 2 black boxes: %d mismatches vs golden \
     models\n"
    (List.length samples) !mismatches;
  Printf.printf
    "protocol traffic: %d messages, %d bytes, %.2f ms simulated wall time\n"
    (Cosim.total_messages cosim) (Cosim.total_bytes cosim)
    (Cosim.elapsed_seconds cosim *. 1000.0)

(* ------------------------------------------------------------------ *)
(* C1: local vs remote simulation                                      *)
(* ------------------------------------------------------------------ *)

let claim_c1 () =
  section "C1"
    "claim (Sections 1.2.1, 4.2): local applet simulation vs networked \
     architectures";
  let cycles = 1000 in
  Printf.printf
    "simulating %d cycles of the KCM (per-event exchange), time in seconds:\n\n"
    cycles;
  Printf.printf "%-10s %14s %14s %14s %12s\n" "RTT" "local applet" "Web-CAD"
    "JavaCAD" "speedup";
  let rtts = [ 0.0002; 0.001; 0.005; 0.010; 0.020; 0.050; 0.100; 0.200 ] in
  List.iter
    (fun rtt ->
       let run arch =
         let endpoint = kcm_endpoint ~constant:(-56) in
         Cosim.simulation_cost ~arch
           ~network:(Network.with_rtt Network.campus rtt) ~endpoint ~cycles
           ~drive:(fun i ->
             [ ("multiplicand", Bits.of_int ~width:8 (i land 0xFF)) ])
           ~observe:[ "product" ] ()
       in
       let local = run Cosim.Local_applet in
       let webcad = run Cosim.Webcad in
       let javacad = run Cosim.Javacad in
       Printf.printf "%7.1f ms %14.4f %14.3f %14.3f %11.0fx\n" (rtt *. 1000.0)
         local.Cosim.wall_seconds webcad.Cosim.wall_seconds
         javacad.Cosim.wall_seconds
         (webcad.Cosim.wall_seconds /. local.Cosim.wall_seconds))
    rtts;
  print_endline
    "\nshape check: local is flat in RTT; Web-CAD/JavaCAD grow linearly \
     (per-event round trips);";
  print_endline
    "the applet pays instead a one-time download (C2) - the paper's trade.";
  (* amortization: cycles after which local wins including its download *)
  let jars = Partition.jars_for Partition.all_components in
  let download = Download.jars_seconds Download.dsl_1m jars in
  let rtt = 0.020 in
  let per_cycle_remote =
    let endpoint = kcm_endpoint ~constant:(-56) in
    let cost =
      Cosim.simulation_cost ~arch:Cosim.Webcad
        ~network:(Network.with_rtt Network.campus rtt) ~endpoint ~cycles:100
        ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 i) ])
        ~observe:[ "product" ] ()
    in
    cost.Cosim.wall_seconds /. 100.0
  in
  Printf.printf
    "\namortization at 20 ms RTT over 1M DSL: applet download %.1f s ~ %.0f \
     simulated cycles of Web-CAD\n"
    download
    (download /. per_cycle_remote)

(* ------------------------------------------------------------------ *)
(* C1f: local vs remote simulation under loss                          *)
(* ------------------------------------------------------------------ *)

let claim_c1_faulty () =
  section "C1f"
    "claim C1 under loss: per-event RPC architectures degrade faster than \
     the local applet";
  let cycles = 300 in
  let rtt = 0.020 in
  let seed = 2002 in
  Printf.printf
    "%d cycles at %.0f ms RTT, drop faults with recovery (seq numbers, \
     checksums,\nretransmission with backoff); the applet's loopback cannot \
     drop:\n\n"
    cycles (rtt *. 1000.0);
  Printf.printf "%-10s %14s %14s %14s %10s %10s\n" "drop rate" "local applet"
    "Web-CAD" "JavaCAD" "retries" "slowdown";
  let clean_webcad = ref 0.0 in
  let rows =
    List.map
      (fun rate ->
         let run arch =
           let endpoint = kcm_endpoint ~constant:(-56) in
           Cosim.simulation_cost ~arch
             ~network:(Network.with_rtt Network.campus rtt) ~endpoint ~cycles
             ~drive:(fun i ->
               [ ("multiplicand", Bits.of_int ~width:8 (i land 0xFF)) ])
             ~observe:[ "product" ]
             ?faults:
               (if rate > 0.0 then Some (Fault.only Fault.Drop ~rate ~seed)
                else None)
             ()
         in
         let local = run Cosim.Local_applet in
         match (run Cosim.Webcad, run Cosim.Javacad) with
         | exception Cosim.Exchange_failed reason ->
           (* enough consecutive losses exhaust the retry budget: at this
              rate the remote session dies mid-run *)
           Printf.printf "%8.0f %% %14.4f %14s %14s %10s  session died (%s)\n"
             (rate *. 100.0) local.Cosim.wall_seconds "-" "-" "-" reason;
           (rate, local.Cosim.wall_seconds, None)
         | webcad, javacad ->
           if rate = 0.0 then clean_webcad := webcad.Cosim.wall_seconds;
           Printf.printf "%8.0f %% %14.4f %14.3f %14.3f %10d %9.1fx\n"
             (rate *. 100.0) local.Cosim.wall_seconds webcad.Cosim.wall_seconds
             javacad.Cosim.wall_seconds
             (webcad.Cosim.retry_count + javacad.Cosim.retry_count)
             (webcad.Cosim.wall_seconds /. !clean_webcad);
           ( rate,
             local.Cosim.wall_seconds,
             Some
               ( webcad.Cosim.wall_seconds,
                 javacad.Cosim.wall_seconds,
                 webcad.Cosim.retry_count + javacad.Cosim.retry_count,
                 webcad.Cosim.faults_injected + javacad.Cosim.faults_injected
               ) ))
      [ 0.0; 0.01; 0.05; 0.10; 0.20 ]
  in
  print_endline
    "\nshape check: every retransmission costs a timeout plus backoff on top \
     of the RTT, so the";
  print_endline
    "remote architectures' slowdown compounds with loss while the local \
     applet column never";
  print_endline
    "moves - claim C1 is strictly stronger on the consumer links the paper \
     targets.";
  rows

(* ------------------------------------------------------------------ *)
(* C2: download time                                                   *)
(* ------------------------------------------------------------------ *)

(* C2f: the partitioned download story under loss - resumable fetches *)
let claim_c2_faulty () =
  section "C2f"
    "claim C2 under loss: retried, byte-offset-resumable jar fetches";
  let jars = Partition.jars_for Partition.all_components in
  let clean = Download.jars_seconds Download.modem_56k jars in
  Printf.printf
    "full applet jar set over a 56k modem (clean transfer: %.1f s):\n\n" clean;
  Printf.printf "%-12s %12s %12s %14s %12s\n" "drop rate" "delivered"
    "attempts" "dead bytes" "total time";
  let rows =
    List.map
      (fun rate ->
         let fetches =
           Download.fetch_jars
             ?faults:
               (if rate > 0.0 then
                  Some (Fault.only Fault.Drop ~rate ~seed:2002)
                else None)
             Download.modem_56k jars
         in
         let delivered =
           List.length (List.filter (fun f -> f.Download.delivered) fetches)
         in
         let payload = Partition.total_compressed jars in
         let dead = max 0 (Download.fetch_total_bytes fetches - payload) in
         Printf.printf "%10.0f %% %9d/%d %12d %11d kB %10.1f s\n"
           (rate *. 100.0) delivered (List.length jars)
           (Download.fetch_attempts fetches)
           (kb dead)
           (Download.fetch_total_seconds fetches);
         ( rate,
           delivered,
           List.length jars,
           Download.fetch_attempts fetches,
           dead,
           Download.fetch_total_seconds fetches ))
      [ 0.0; 0.10; 0.30; 0.50 ]
  in
  print_endline
    "\nshape check: resume-at-offset keeps the dead-byte overhead to the \
     lost tail of each";
  print_endline
    "attempt, so even heavy loss costs retries and backoff, not whole-jar \
     re-downloads.";
  print_endline
    "The monolithic baseline re-pays its full 795 kB on every corruption - \
     partitioning wins again.";
  rows

(* Machine-readable record of the loss sweeps, schema-matched to
   BENCH_sim.json: one "designs" array of named rows. *)
let write_bench_cosim c1_rows c2_rows =
  let oc = open_out "BENCH_cosim.json" in
  output_string oc "{\n  \"experiment\": \"C1f/C2f loss sweeps\",\n";
  output_string oc "  \"unit\": \"seconds\",\n  \"designs\": [\n";
  let total = List.length c1_rows + List.length c2_rows in
  let emitted = ref 0 in
  let comma () =
    incr emitted;
    if !emitted = total then "" else ","
  in
  List.iter
    (fun (rate, local, remote) ->
       match remote with
       | Some (webcad, javacad, retries, faults) ->
         Printf.fprintf oc
           "    {\"name\": \"C1f drop %.0f%%\", \"local\": %.6f, \
            \"webcad\": %.4f, \"javacad\": %.4f, \"retries\": %d, \
            \"faults_injected\": %d}%s\n"
           (rate *. 100.0) local webcad javacad retries faults (comma ())
       | None ->
         Printf.fprintf oc
           "    {\"name\": \"C1f drop %.0f%%\", \"local\": %.6f, \
            \"webcad\": null, \"javacad\": null, \"retries\": null, \
            \"faults_injected\": null}%s\n"
           (rate *. 100.0) local (comma ()))
    c1_rows;
  List.iter
    (fun (rate, delivered, jar_count, attempts, dead_bytes, seconds) ->
       Printf.fprintf oc
         "    {\"name\": \"C2f drop %.0f%%\", \"delivered\": %d, \
          \"jars\": %d, \"attempts\": %d, \"dead_bytes\": %d, \
          \"seconds\": %.2f}%s\n"
         (rate *. 100.0) delivered jar_count attempts dead_bytes seconds
         (comma ()))
    c2_rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "\nwrote BENCH_cosim.json (C1f + C2f loss-sweep rows)"

let claim_c2 () =
  section "C2" "claim (Section 4.4): partitioned jars vs monolithic download";
  let links =
    [ Download.modem_56k; Download.isdn_128k; Download.dsl_1m;
      Download.lan_10m; Download.lan_100m ]
  in
  let passive_jars =
    Partition.jars_for [ Partition.Base; Partition.Virtex; Partition.Applet ]
  in
  let full_jars = Partition.jars_for Partition.all_components in
  let mono = [ Partition.monolithic () ] in
  let update = Partition.jars_for [ Partition.Applet ] in
  Printf.printf "%-10s %12s %12s %12s %14s\n" "link" "passive" "full applet"
    "monolithic" "update revisit";
  List.iter
    (fun link ->
       Printf.printf "%-10s %10.1f s %10.1f s %10.1f s %12.2f s\n"
         (Download.link_name link)
         (Download.jars_seconds link passive_jars)
         (Download.jars_seconds link full_jars)
         (Download.jars_seconds link mono)
         (Download.update_seconds link ~changed:update ()))
    links;
  Printf.printf
    "\npassive applets skip %d kB of viewer classes; revisits after a vendor \
     update move only the %d kB applet jar.\n"
    (kb (Jar.compressed_size (Partition.jar_of Partition.Viewer)))
    (kb (Jar.compressed_size (Partition.jar_of Partition.Applet)))

(* ------------------------------------------------------------------ *)
(* A1: KCM vs shift-add                                                *)
(* ------------------------------------------------------------------ *)

let ablation_a1 () =
  section "A1"
    "ablation: KCM vs shift-add constant multiplier (FPL 2001 context)";
  Printf.printf "width sweep at dense constant K=0xAB (CSD nonzeros: %d):\n\n"
    (Multiplier.adder_count_for ~constant:0xAB + 1);
  Printf.printf "%6s %16s %16s %18s %18s\n" "width" "KCM LUTs"
    "shift-add LUTs" "KCM path (ps)" "shift-add path (ps)";
  List.iter
    (fun n ->
       let pw = n + 8 in
       let d_kcm, _ =
         kcm_design ~n ~pw ~signed_mode:false ~pipelined_mode:false
           ~constant:0xAB
       in
       let d_sa = shift_add_design ~n ~pw ~constant:0xAB in
       let a_kcm = (Estimate.area_of_design d_kcm).Estimate.area.Virtex.luts in
       let a_sa = (Estimate.area_of_design d_sa).Estimate.area.Virtex.luts in
       let t_kcm =
         (Estimate.timing_of_design d_kcm).Estimate.critical_path_ps
       in
       let t_sa = (Estimate.timing_of_design d_sa).Estimate.critical_path_ps in
       Printf.printf "%6d %16d %16d %18d %18d\n" n a_kcm a_sa t_kcm t_sa)
    [ 4; 8; 12; 16 ];
  Printf.printf "\nconstant-density sweep at width 8 (KCM is density-blind):\n\n";
  Printf.printf "%10s %10s %16s %16s %18s %18s\n" "constant" "CSD adds"
    "KCM LUTs" "shift-add LUTs" "KCM path (ps)" "shift-add path (ps)";
  List.iter
    (fun constant ->
       let pw = 16 in
       let d_kcm, _ =
         kcm_design ~n:8 ~pw ~signed_mode:false ~pipelined_mode:false ~constant
       in
       let d_sa = shift_add_design ~n:8 ~pw ~constant in
       Printf.printf "%10d %10d %16d %16d %18d %18d\n" constant
         (Multiplier.adder_count_for ~constant)
         (Estimate.area_of_design d_kcm).Estimate.area.Virtex.luts
         (Estimate.area_of_design d_sa).Estimate.area.Virtex.luts
         (Estimate.timing_of_design d_kcm).Estimate.critical_path_ps
         (Estimate.timing_of_design d_sa).Estimate.critical_path_ps)
    [ 64; 129; 85; 171; 219; 255 ];
  print_endline
    "\nshape check: KCM cost depends only on widths; shift-add grows with \
     CSD density and";
  print_endline "its critical path stacks one adder per non-zero digit.";
  let unpipelined, _ =
    kcm_design ~n:16 ~pw:24 ~signed_mode:false ~pipelined_mode:false
      ~constant:0xAB
  in
  let pipelined, _ =
    kcm_design ~n:16 ~pw:24 ~signed_mode:false ~pipelined_mode:true
      ~constant:0xAB
  in
  Printf.printf "\npipelining the 16-bit KCM: %d ps -> %d ps critical path\n"
    (Estimate.timing_of_design unpipelined).Estimate.critical_path_ps
    (Estimate.timing_of_design pipelined).Estimate.critical_path_ps

(* ------------------------------------------------------------------ *)
(* A1b: filter architectures - KCM-FIR vs distributed arithmetic       *)
(* ------------------------------------------------------------------ *)

let ablation_a1b () =
  section "A1b"
    "ablation: KCM-based FIR vs distributed-arithmetic FIR (same response)";
  let coefficients = [ 3; 5; 7; 9 ] in
  let build_kcm_fir xw =
    let top = Cell.root ~name:"fir_top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" xw in
    let y = Wire.create top ~name:"y" 24 in
    let _ = Fir.create top ~clk ~x ~y ~signed_mode:false ~coefficients () in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "x" Types.Input x;
    Design.add_port d "y" Types.Output y;
    d
  in
  let build_da_fir xw =
    let top = Cell.root ~name:"da_top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" xw in
    let y = Wire.create top ~name:"y" 24 in
    let _ = Dafir.create top ~clk ~x ~y ~signed_mode:false ~coefficients () in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "x" Types.Input x;
    Design.add_port d "y" Types.Output y;
    d
  in
  Printf.printf "4 taps %s, input width sweep:\n\n"
    (String.concat "," (List.map string_of_int coefficients));
  Printf.printf "%6s %14s %14s %14s %14s\n" "width" "KCM-FIR LUTs"
    "DA-FIR LUTs" "KCM FFs" "DA FFs";
  List.iter
    (fun xw ->
       let a_kcm = (Estimate.area_of_design (build_kcm_fir xw)).Estimate.area in
       let a_da = (Estimate.area_of_design (build_da_fir xw)).Estimate.area in
       Printf.printf "%6d %14d %14d %14d %14d\n" xw a_kcm.Virtex.luts
         a_da.Virtex.luts a_kcm.Virtex.ffs a_da.Virtex.ffs)
    [ 4; 6; 8; 10; 12 ];
  print_endline
    "\nshape check: DA table area grows with input width (one LUT bank per \
     bit); the KCM filter's";
  print_endline
    "partial-product tables grow with coefficient width - the classic \
     trade between the";
  print_endline "two Virtex filter styles. Both match the same golden response \
     (test dafir/da matches kcm fir)."

(* ------------------------------------------------------------------ *)
(* A2: security overhead                                               *)
(* ------------------------------------------------------------------ *)

let ablation_a2 () =
  section "A2" "ablation: IP protection overheads (Section 4.3)";
  print_endline "class-file obfuscation (renaming shrinks constant pools):";
  Printf.printf "%-14s %10s %12s %10s\n" "jar" "original" "obfuscated" "saved";
  List.iter
    (fun component ->
       let jar = Partition.jar_of component in
       let obfuscated, _ = Obfuscator.obfuscate jar in
       let shrinkage = Obfuscator.shrinkage ~original:jar ~obfuscated in
       Printf.printf "%-14s %7d kB %9d kB %9.1f%%\n"
         (Partition.component_name component)
         (kb (Jar.compressed_size jar))
         (kb (Jar.compressed_size obfuscated))
         (shrinkage *. 100.0))
    Partition.all_components;
  print_endline "\nwatermarking (signature in inert LUT INITs):";
  Printf.printf "%10s %12s %16s %14s %10s\n" "bits" "extra LUTs"
    "KCM LUTs before" "LUTs after" "verifies";
  List.iter
    (fun bits ->
       let d, _ =
         kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
           ~constant:(-56)
       in
       let before = (Estimate.area_of_design d).Estimate.area.Virtex.luts in
       let added = Watermark.embed d ~vendor:"BYU" ~bits () in
       let after = (Estimate.area_of_design d).Estimate.area.Virtex.luts in
       Printf.printf "%10d %12d %16d %14d %10b\n" bits added before after
         (Watermark.verify d ~vendor:"BYU"))
    [ 16; 64; 128; 256 ];
  let key = Crypto.key_of_string "vendor-secret" in
  let d, _ =
    kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
      ~constant:(-56)
  in
  let edif = Edif.of_design d in
  let encrypted = Crypto.encrypt key edif in
  Printf.printf
    "\nclass/netlist encryption: %d bytes -> %d bytes (stream cipher, \
     size-preserving); roundtrip ok: %b\n"
    (String.length edif) (String.length encrypted)
    (Crypto.decrypt key encrypted = edif)

(* ------------------------------------------------------------------ *)
(* A3: delivery-form comparison (the JBits contrast of Section 1.2.3)  *)
(* ------------------------------------------------------------------ *)

let ablation_a3 () =
  section "A3"
    "ablation: delivery forms - structural netlist vs JBits bitstream vs \
     black-box applet (Section 1.2.3)";
  let d, _ =
    kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
      ~constant:(-56)
  in
  let p = Jbits.package ~device_rows:32 ~device_cols:16 d in
  let edif_bytes = String.length (Edif.of_design d) in
  Format.printf "%a"
    Jbits.pp_visibility_table
    [ Jbits.visibility_of_netlist ~bytes:edif_bytes;
      Jbits.visibility_of_package p;
      Jbits.visibility_of_applet
        ~bytes:(Jar.compressed_size (Partition.jar_of Partition.Applet)) ];
  Printf.printf
    "\nthe KCM occupies %d slice resources; its partial bitstream touches \
     %d/%d columns.\n"
    p.Jbits.slices_used
    (List.length p.Jbits.frames)
    16;
  (* delivery roundtrip check: customer-side install equals vendor config *)
  let customer = Config_mem.create ~rows:32 ~cols:16 in
  Jbits.install ~into:customer p;
  let vendor_side = Config_mem.create ~rows:32 ~cols:16 in
  let _ = Config_mem.configure vendor_side d in
  Printf.printf "bitstream install reproduces the vendor configuration: %b\n"
    (Config_mem.equal customer vendor_side);
  Printf.printf
    "readback from the bitstream recovers %d LUT INITs but no names, \
     hierarchy or connectivity\n"
    (List.length (Config_mem.readback_luts customer));
  print_endline
    "shape check (paper): bitstream delivery hides structure but cannot be \
     simulated or retargeted;";
  print_endline
    "the applet keeps the structure hidden while staying simulatable - the \
     paper's middle ground."

(* ------------------------------------------------------------------ *)
(* A4: relative placement ablation (Section 2.1 motivation)            *)
(* ------------------------------------------------------------------ *)

let ablation_a4 () =
  section "A4"
    "ablation: pre-placed macro vs stripped placement (placement-aware \
     timing)";
  Printf.printf "%-22s %18s %18s %10s\n" "design" "placed path (ps)"
    "stripped path (ps)" "gain";
  let strip design =
    Cell.iter_rec Cell.clear_rloc (Design.root design);
    design
  in
  List.iter
    (fun (label, build) ->
       let placed =
         (Estimate.timing_of_design ~use_placement:true (build ()))
           .Estimate.critical_path_ps
       in
       let stripped =
         (Estimate.timing_of_design ~use_placement:true (strip (build ())))
           .Estimate.critical_path_ps
       in
       Printf.printf "%-22s %18d %18d %9.1f%%\n" label placed stripped
         (100.0 *. float_of_int (stripped - placed) /. float_of_int stripped))
    [ ("kcm 8x8 (preplaced)",
       fun () ->
         fst
           (kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
              ~constant:(-56)));
      ("kcm 16-bit",
       fun () ->
         fst
           (kcm_design ~n:16 ~pw:24 ~signed_mode:false ~pipelined_mode:false
              ~constant:0xAB));
      ("16-bit adder",
       fun () ->
         let top = Cell.root ~name:"add_top" () in
         let a = Wire.create top ~name:"a" 16 in
         let b = Wire.create top ~name:"b" 16 in
         let sum = Wire.create top ~name:"sum" 16 in
         let _ = Adders.carry_chain top ~a ~b ~sum () in
         let d = Design.create top in
         Design.add_port d "a" Types.Input a;
         Design.add_port d "b" Types.Input b;
         Design.add_port d "sum" Types.Output sum;
         d) ];
  (* generator placement vs automatic vs random, on the same netlist *)
  let build () =
    fst
      (kcm_design ~n:8 ~pw:15 ~signed_mode:true ~pipelined_mode:false
         ~constant:(-56))
  in
  let time d =
    (Estimate.timing_of_design ~use_placement:true d)
      .Estimate.critical_path_ps
  in
  let hand = build () in
  let auto = build () in
  let auto_result = Placer.auto_place auto ~rows:16 ~cols:16 in
  let random = build () in
  let random_result = Placer.random_place random ~rows:16 ~cols:16 ~seed:7 in
  Printf.printf
    "\nplacement source comparison (8x8 KCM):\n%-22s %18s %14s\n" "placement"
    "critical path (ps)" "wirelength";
  Printf.printf "%-22s %18d %14s\n" "generator RLOCs" (time hand)
    (match Placer.wirelength hand with
     | Some wl -> string_of_int wl
     | None -> "-");
  Printf.printf "%-22s %18d %14d\n" "auto placer" (time auto)
    auto_result.Placer.wirelength;
  Printf.printf "%-22s %18d %14d\n" "random placer" (time random)
    random_result.Placer.wirelength;
  print_endline
    "\nshape check (paper Section 2.1): \"the designer can view the relative \
     layout of FPGA circuits";
  print_endline
    "that include performance enhancing placement attributes\" - stripping \
     the RLOCs costs timing";
  print_endline
    "because every macro-internal net falls back to the generic loaded-net \
     estimate; the greedy";
  print_endline
    "auto placer recovers most of the hand placement's quality, the random \
     baseline none of it."

(* ------------------------------------------------------------------ *)
(* A5: KCM accumulation structure - chain vs tree                      *)
(* ------------------------------------------------------------------ *)

let ablation_a5 () =
  section "A5" "ablation: KCM partial-product accumulation - chain vs tree";
  let build ~n structure =
    let top = Cell.root ~name:"kcm_top" () in
    let m = Wire.create top ~name:"m" n in
    let p = Wire.create top ~name:"p" (n + 8) in
    let _ =
      Kcm.create top ~adder_structure:structure ~multiplicand:m ~product:p
        ~signed_mode:false ~pipelined_mode:false ~constant:0xAB ()
    in
    let d = Design.create top in
    Design.add_port d "m" Types.Input m;
    Design.add_port d "p" Types.Output p;
    d
  in
  Printf.printf "%6s %8s %16s %16s %16s %16s\n" "width" "digits"
    "chain path (ps)" "tree path (ps)" "chain LUTs" "tree LUTs";
  List.iter
    (fun n ->
       let measure structure =
         let d = build ~n structure in
         ( (Estimate.timing_of_design d).Estimate.critical_path_ps,
           (Estimate.area_of_design d).Estimate.area.Virtex.luts )
       in
       let chain_t, chain_a = measure `Chain in
       let tree_t, tree_a = measure `Tree in
       Printf.printf "%6d %8d %16d %16d %16d %16d\n" n ((n + 3) / 4) chain_t
         tree_t chain_a tree_a)
    [ 8; 16; 24; 32 ];
  print_endline
    "\nshape check: on carry-chain fabric the tree only pays off once the \
     chain is long";
  print_endline
    "(crossover near 6-8 digits); below that the cheap MUXCY hops make the \
     chain's narrow,";
  print_endline
    "low-bit-passthrough adders as fast as the tree's full-width levels - \
     which is why";
  print_endline
    "FPGA module generators (the paper's included) ship chains by default."

(* ------------------------------------------------------------------ *)
(* S1: simulator throughput - compiled kernel vs reference             *)
(* ------------------------------------------------------------------ *)

(* One step = drive the multiplicand/sample input, settle, clock. Rate
   is cycles/second measured over at least [min_seconds] of Sys.time. *)
let steps_per_second ~min_seconds step =
  let t0 = Sys.time () in
  let count = ref 0 in
  let i = ref 0 in
  while Sys.time () -. t0 < min_seconds do
    for _ = 1 to 100 do
      step !i;
      incr i
    done;
    count := !count + 100
  done;
  float_of_int !count /. (Sys.time () -. t0)

let s1_designs () =
  let kcm8 () =
    let d, _ =
      kcm_design ~n:8 ~pw:16 ~signed_mode:true ~pipelined_mode:true
        ~constant:(-56)
    in
    (d, "multiplicand", 8)
  in
  let fir16 () =
    let coefficients =
      [ -1; 3; -5; 7; -9; 11; 13; 17; 17; 13; 11; -9; 7; -5; 3; -1 ]
    in
    let top = Cell.root ~name:"fir_top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" 8 in
    let y = Wire.create top ~name:"y" 20 in
    let _ = Fir.create top ~clk ~x ~y ~signed_mode:true ~coefficients () in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "x" Types.Input x;
    Design.add_port d "y" Types.Output y;
    (d, "x", 8)
  in
  let kcm24_tree () =
    let top = Cell.root ~name:"kcm_top" () in
    let m = Wire.create top ~name:"multiplicand" 24 in
    let p = Wire.create top ~name:"product" 32 in
    let _ =
      Kcm.create top ~adder_structure:`Tree ~multiplicand:m ~product:p
        ~signed_mode:false ~pipelined_mode:false ~constant:0xAB ()
    in
    let d = Design.create top in
    Design.add_port d "multiplicand" Types.Input m;
    Design.add_port d "product" Types.Output p;
    (d, "multiplicand", 24)
  in
  [ ("kcm 8x8 pipelined", kcm8);
    ("fir 16-tap", fir16);
    ("kcm 24-bit tree", kcm24_tree) ]

let sim_throughput () =
  section "S1"
    "simulator throughput: compiled dense kernel vs reference interpreter";
  Printf.printf "%-20s %8s %7s %16s %16s %9s\n" "design" "prims" "levels"
    "kernel cyc/s" "reference cyc/s" "speedup";
  List.map
    (fun (label, build) ->
       let design, port, width = build () in
       let clock =
         Option.map
           (fun p -> p.Design.port_wire)
           (Design.find_port design "clk")
       in
       let mask = (1 lsl width) - 1 in
       let kernel = Simulator.create ?clock design in
       let kernel_rate =
         steps_per_second ~min_seconds:0.3 (fun i ->
           Simulator.set_input kernel port
             (Bits.of_int ~width (i * 37 land mask));
           Simulator.cycle kernel)
       in
       let reference = Reference.create ?clock design in
       let reference_rate =
         steps_per_second ~min_seconds:0.3 (fun i ->
           Reference.set_input reference port
             (Bits.of_int ~width (i * 37 land mask));
           Reference.cycle reference)
       in
       let prims = Simulator.prim_count kernel in
       let levels = Simulator.levels kernel in
       (* why a throughput number moved: the kernel's own work counters,
          normalised per cycle (evals = primitive settles, events = net
          value changes) *)
       let per_cycle count =
         float_of_int count
         /. float_of_int (max 1 (Simulator.cycle_count kernel))
       in
       let evals = per_cycle (Simulator.eval_count kernel) in
       let events = per_cycle (Simulator.event_count kernel) in
       Printf.printf "%-20s %8d %7d %16.0f %16.0f %8.1fx\n" label prims
         levels kernel_rate reference_rate (kernel_rate /. reference_rate);
       (label, prims, levels, kernel_rate, reference_rate, evals, events))
    (s1_designs ())

(* ------------------------------------------------------------------ *)
(* S2: batch throughput - 63 packed lanes vs the scalar kernel         *)
(* ------------------------------------------------------------------ *)

(* The same S1 designs, but the bit-parallel batch kernel carries 63
   independent testbench lanes per machine word (two bit-planes for the
   4-valued codes). Each step forces a distinct value into every lane,
   so no lane degenerates into a constant, then clocks once; effective
   throughput is batch cycles/s x 63 lanes against the scalar kernel's
   cycles/s from S1. *)
let batch_throughput s1_rows =
  section "S2"
    "batch throughput: 63-lane bit-parallel kernel vs scalar kernel";
  Printf.printf "%-20s %8s %14s %16s %18s %10s\n" "design" "lanes"
    "batch cyc/s" "kernel cyc/s" "effective cyc*ln/s" "speedup";
  List.map2
    (fun (label, build) (_, prims, _, kernel_rate, _, _, _) ->
       let design, port, width = build () in
       let clock =
         Option.map
           (fun p -> p.Design.port_wire)
           (Design.find_port design "clk")
       in
       let mask = (1 lsl width) - 1 in
       let lanes = Simulator.Batch.max_lanes in
       let batch = Simulator.Batch.create ?clock ~lanes design in
       let batch_rate =
         steps_per_second ~min_seconds:0.3 (fun i ->
           for lane = 0 to lanes - 1 do
             Simulator.Batch.set_input batch ~lane port
               (Bits.of_int ~width (((i * 37) + (lane * 17)) land mask))
           done;
           Simulator.Batch.cycle batch)
       in
       let effective = batch_rate *. float_of_int lanes in
       let speedup = effective /. kernel_rate in
       Printf.printf "%-20s %8d %14.0f %16.0f %18.0f %9.1fx\n" label lanes
         batch_rate kernel_rate effective speedup;
       (label, lanes, prims, batch_rate, kernel_rate, speedup))
    (s1_designs ()) s1_rows

let write_bench_sim s1_rows s2_rows =
  let oc = open_out "BENCH_sim.json" in
  output_string oc "{\n  \"experiment\": \"S1/S2 simulator throughput\",\n";
  output_string oc "  \"unit\": \"cycles_per_second\",\n  \"designs\": [\n";
  List.iteri
    (fun i (label, prims, levels, kr, rr, evals, events) ->
       Printf.fprintf oc
         "    {\"name\": \"%s\", \"prims\": %d, \"levels\": %d, \
          \"kernel\": %.0f, \"reference\": %.0f, \"speedup\": %.2f, \
          \"evals_per_cycle\": %.1f, \"events_per_cycle\": %.1f}%s\n"
         label prims levels kr rr (kr /. rr) evals events
         (if i = List.length s1_rows - 1 then "" else ","))
    s1_rows;
  output_string oc "  ],\n  \"batch\": [\n";
  List.iteri
    (fun i (label, lanes, prims, br, kr, speedup) ->
       Printf.fprintf oc
         "    {\"name\": \"%s\", \"lanes\": %d, \"prims\": %d, \
          \"batch_cycles_per_s\": %.0f, \"kernel_cycles_per_s\": %.0f, \
          \"effective_speedup\": %.2f}%s\n"
         label lanes prims br kr speedup
         (if i = List.length s2_rows - 1 then "" else ","))
    s2_rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline
    "\nwrote BENCH_sim.json (S1 designs + S2 batch rows); the reference \
     column is the";
  print_endline
    "pre-compilation interpreter retained as the differential golden model, \
     and the";
  print_endline
    "batch rows hold the 63-lane packed kernel's effective cycles*lanes/s."

(* ------------------------------------------------------------------ *)
(* FZ1: fuzzer throughput and oracle coverage                          *)
(* ------------------------------------------------------------------ *)

(* Two rates matter for nightly budget planning: raw generation
   (recipe + design build, what bounds corpus growth) and full
   seven-oracle validation (what bounds the differential campaign).
   Rates are designs/second over at least [min_seconds] of Sys.time. *)
let fuzz_rate ~min_seconds f =
  let t0 = Sys.time () in
  let count = ref 0 in
  let case = ref 0 in
  while Sys.time () -. t0 < min_seconds do
    f !case;
    incr case;
    incr count
  done;
  float_of_int !count /. (Sys.time () -. t0)

let fuzz_throughput () =
  section "FZ1" "fuzzer throughput: generation vs full differential validation";
  let params = { Fuzz_gen.default_params with Fuzz_gen.max_cells = 40 } in
  let steps = 12 in
  let seed = 1 in
  let gen_rate =
    fuzz_rate ~min_seconds:0.3 (fun case ->
        let gen_rng, _ = Fuzz.case_rngs ~seed ~case in
        let recipe = Fuzz_gen.recipe gen_rng ~name:"bench" params in
        ignore (Fuzz_recipe.build recipe))
  in
  let oracle_rate =
    fuzz_rate ~min_seconds:0.6 (fun case ->
        let gen_rng, stim_rng = Fuzz.case_rngs ~seed ~case in
        let recipe = Fuzz_gen.recipe gen_rng ~name:"bench" params in
        let stim = Fuzz_gen.stimulus stim_rng recipe ~steps in
        List.iter
          (fun k ->
             match Fuzz_oracle.run k recipe stim with
             | Fuzz_oracle.Pass -> ()
             | Fuzz_oracle.Fail m ->
               failwith (Printf.sprintf "FZ1 oracle failure: %s" m))
          Fuzz_oracle.all)
  in
  (* coverage from a fixed-seed campaign so the row set is stable *)
  let outcome =
    Fuzz.run
      { Fuzz.default_config with Fuzz.seed; count = 40; params; steps }
  in
  Printf.printf "design params: max-cells=%d steps=%d\n" params.Fuzz_gen.max_cells
    steps;
  Printf.printf "%-28s %10.0f designs/s\n" "generation + build" gen_rate;
  Printf.printf "%-28s %10.1f designs/s\n" "all seven oracles" oracle_rate;
  Printf.printf "campaign: %d cases, %d failures, %d primitive kinds covered\n"
    outcome.Fuzz.cases
    (Fuzz.total_failures outcome)
    (List.length outcome.Fuzz.coverage);
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc "{\n  \"experiment\": \"FZ1 fuzzer throughput\",\n";
  output_string oc "  \"unit\": \"designs_per_second\",\n";
  Printf.fprintf oc "  \"max_cells\": %d,\n  \"steps\": %d,\n"
    params.Fuzz_gen.max_cells steps;
  Printf.fprintf oc "  \"generation\": %.1f,\n  \"validation\": %.2f,\n"
    gen_rate oracle_rate;
  Printf.fprintf oc "  \"campaign_cases\": %d,\n  \"campaign_failures\": %d,\n"
    outcome.Fuzz.cases
    (Fuzz.total_failures outcome);
  output_string oc "  \"oracles\": [\n";
  let n_oracles = List.length outcome.Fuzz.oracle_runs in
  List.iteri
    (fun i (k, runs, failed) ->
       Printf.fprintf oc "    {\"name\": \"%s\", \"runs\": %d, \"failed\": %d}%s\n"
         (Fuzz_oracle.kind_to_string k)
         runs failed
         (if i = n_oracles - 1 then "" else ","))
    outcome.Fuzz.oracle_runs;
  output_string oc "  ],\n  \"coverage\": {";
  let n_kinds = List.length outcome.Fuzz.coverage in
  List.iteri
    (fun i (kind, n) ->
       Printf.fprintf oc "\"%s\": %d%s" kind n
         (if i = n_kinds - 1 then "" else ", "))
    outcome.Fuzz.coverage;
  output_string oc "}\n}\n";
  close_out oc;
  print_endline
    "\nwrote BENCH_fuzz.json; validation rate is the nightly campaign's \
     budget anchor."

(* ------------------------------------------------------------------ *)
(* O1: observability overhead                                          *)
(* ------------------------------------------------------------------ *)

(* The same pipelined-KCM cycle loop as S1, run three ways: without
   metrics, registered on the nil registry, and registered on a live
   registry (probes + the per-cycle settle histogram). The claim: the
   kernel's work counters are plain field writes the baseline already
   pays, so the nil registry costs ~0% and the live one stays within
   noise of 5%. *)
let observability_overhead () =
  section "O1" "observability overhead: metrics off vs nil vs live registry";
  let fresh_sim () =
    let d, _ =
      kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:true
        ~constant:(-56)
    in
    let clk =
      match Design.find_port d "clk" with
      | Some p -> p.Design.port_wire
      | None -> assert false
    in
    Simulator.create ~clock:clk d
  in
  let rate_with prepare =
    let sim = fresh_sim () in
    prepare sim;
    steps_per_second ~min_seconds:0.5 (fun i ->
      Simulator.set_input sim "multiplicand"
        (Bits.of_int ~width:8 (i * 37 land 0xFF));
      Simulator.cycle sim)
  in
  let off = rate_with (fun _ -> ()) in
  let nil = rate_with (fun sim -> Simulator.register_metrics sim Metrics.nil) in
  let live_reg = Metrics.create "sim" in
  let live = rate_with (fun sim -> Simulator.register_metrics sim live_reg) in
  let overhead rate = (off -. rate) /. off *. 100.0 in
  Printf.printf "%-18s %16s %10s\n" "registry" "cycles/s" "overhead";
  Printf.printf "%-18s %16.0f %10s\n" "none (baseline)" off "-";
  Printf.printf "%-18s %16.0f %9.1f%%\n" "nil (no-op)" nil (overhead nil);
  Printf.printf "%-18s %16.0f %9.1f%%\n" "live" live (overhead live);
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"O1 observability overhead\",\n\
    \  \"unit\": \"cycles_per_second\",\n  \"designs\": [\n\
    \    {\"name\": \"kcm 8x8 pipelined off\", \"kernel\": %.0f},\n\
    \    {\"name\": \"kcm 8x8 pipelined nil\", \"kernel\": %.0f, \
     \"overhead_pct\": %.1f},\n\
    \    {\"name\": \"kcm 8x8 pipelined live\", \"kernel\": %.0f, \
     \"overhead_pct\": %.1f}\n  ]\n}\n"
    off nil (overhead nil) live (overhead live);
  close_out oc;
  print_endline
    "\nwrote BENCH_obs.json; the live column includes the snapshot probes \
     and the per-cycle";
  print_endline
    "settle-evals histogram - the only observer that runs inside the cycle \
     loop."

(* ------------------------------------------------------------------ *)
(* AN1: formal analysis - BDD proof vs vector sweeps                   *)
(* ------------------------------------------------------------------ *)

(* The flagship equivalence query - chain-structured vs tree-structured
   KCM - three ways: the BDD proof (closed-form over all defined
   inputs), the 63-lane batch sweep and the retained scalar sweep
   (both exhaustive at these widths). The proof row carries its node
   count; the sweep rows quantify the batch kernel's speedup. *)
let analysis_bench () =
  section "AN1" "formal analysis: BDD proof vs vector sweeps (chain vs tree KCM)";
  let build ~n structure =
    let top = Cell.root ~name:"kcm_top" () in
    let m = Wire.create top ~name:"m" n in
    let p = Wire.create top ~name:"p" (n + 8) in
    let _ =
      Kcm.create top ~adder_structure:structure ~multiplicand:m ~product:p
        ~signed_mode:false ~pipelined_mode:false ~constant:0xAB ()
    in
    let d = Design.create top in
    Design.add_port d "m" Types.Input m;
    Design.add_port d "p" Types.Output p;
    d
  in
  let time_ms f =
    let t0 = Sys.time () in
    let r = f () in
    (r, (Sys.time () -. t0) *. 1000.0)
  in
  Printf.printf "%6s %12s %10s %12s %12s %12s %8s\n" "width" "proof(ms)"
    "nodes" "batch(ms)" "scalar(ms)" "vectors" "speedup";
  let rows =
    List.map
      (fun n ->
         let chain = build ~n `Chain and tree = build ~n `Tree in
         let proved, proof_ms =
           time_ms (fun () -> Equiv.check chain tree)
         in
         let nodes, outputs =
           match proved with
           | Equiv.Proved { bdd_nodes; outputs; _ } -> (bdd_nodes, outputs)
           | other ->
             failwith
               (Format.asprintf "AN1: expected a proof at width %d, got %a" n
                  Equiv.pp_result other)
         in
         let swept, batch_ms =
           time_ms (fun () -> Equiv.check ~strategy:`Sweep chain tree)
         in
         let vectors =
           match swept with
           | Equiv.Equivalent { vectors; _ } -> vectors
           | other ->
             failwith
               (Format.asprintf "AN1: sweep disagrees at width %d: %a" n
                  Equiv.pp_result other)
         in
         let _, scalar_ms =
           time_ms (fun () -> Equiv.check ~strategy:`Scalar_sweep chain tree)
         in
         Printf.printf "%6d %12.2f %10d %12.2f %12.2f %12d %7.1fx\n" n
           proof_ms nodes batch_ms scalar_ms vectors (scalar_ms /. batch_ms);
         (n, proof_ms, nodes, outputs, batch_ms, scalar_ms, vectors))
      [ 6; 8; 10; 12 ]
  in
  let oc = open_out "BENCH_analysis.json" in
  output_string oc "{\n  \"experiment\": \"AN1 BDD proof vs vector sweeps\",\n";
  output_string oc
    "  \"pair\": \"KCM chain vs tree, unsigned, constant 0xAB\",\n  \"rows\": [\n";
  List.iteri
    (fun i (n, proof_ms, nodes, outputs, batch_ms, scalar_ms, vectors) ->
       Printf.fprintf oc
         "    {\"width\": %d, \"proof_ms\": %.2f, \"bdd_nodes\": %d, \
          \"output_bits\": %d, \"batch_sweep_ms\": %.2f, \
          \"scalar_sweep_ms\": %.2f, \"vectors\": %d, \
          \"batch_speedup\": %.2f}%s\n"
         n proof_ms nodes outputs batch_ms scalar_ms vectors
         (scalar_ms /. batch_ms)
         (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline
    "\nwrote BENCH_analysis.json; the proof needs no vectors at all and \
     its cost grows";
  print_endline
    "with BDD size, not input count. Both sweep columns pay the same \
     one-off compile,";
  print_endline
    "so the batch kernel's advantage only shows once the vector count \
     dwarfs it \
     (the";
  print_endline
    "speedup column climbs with width; S2 measures the asymptotic \
     per-cycle ratio)."

(* ------------------------------------------------------------------ *)
(* C3: content-addressed delivery cache - capacity x zipf skew sweep   *)
(* ------------------------------------------------------------------ *)

(* A zipfian request mix over real generator invocations. Every catalog
   IP contributes its defaults plus single-parameter nudges that still
   elaborate, so the population has genuine parameter diversity (the
   Wallace multiplier and pipelined divider exist exactly so this mix
   is not six near-identical designs). Each request runs the whole
   delivery path - elaborate the design, export its EDIF - through one
   Delivery_cache.t; the no-cache baseline pays both stages fresh on
   every request. *)

let cache_population ~per_ip =
  let point ip assignment =
    let params =
      List.map
        (fun (k, v) -> (k, Ip_module.param_to_string v))
        assignment
    in
    let descriptor =
      Delivery_cache.generator_descriptor ~generator:ip.Ip_module.ip_name
        ~params
    in
    (ip, assignment, descriptor)
  in
  let variants ip =
    let defaults = Ip_module.defaults ip in
    (* nudge one parameter at a time, clamped to its schema range; a
       nudge that trips a coupled constraint (e.g. a product width too
       narrow for the operand widths) is simply skipped *)
    let nudge name step dir =
      List.map
        (fun (n, v) ->
           if not (String.equal n name) then (n, v)
           else
             match (v, List.assoc n ip.Ip_module.params) with
             | ( Ip_module.Int_value d,
                 Ip_module.Int_param { min_value; max_value; _ } ) ->
               (n, Ip_module.Int_value
                     (max min_value (min max_value (d + (dir * step)))))
             | Ip_module.Bool_value b, _ -> (n, Ip_module.Bool_value (not b))
             | ( Ip_module.Choice_value c,
                 Ip_module.Choice_param { choices; _ } ) ->
               let rec index i = function
                 | [] -> 0
                 | x :: rest ->
                   if String.equal x c then i else index (i + 1) rest
               in
               let i = index 0 choices in
               (n, Ip_module.Choice_value
                     (List.nth choices
                        ((i + step) mod List.length choices)))
             | other, _ -> (n, other))
        defaults
    in
    let candidates =
      List.concat_map
        (fun step ->
           List.concat_map
             (fun (name, _) -> [ nudge name step 1; nudge name step (-1) ])
             ip.Ip_module.params)
        [ 1; 2; 3; 4 ]
    in
    let elaborates assignment =
      match ip.Ip_module.build assignment with
      | _ -> true
      | exception Invalid_argument _ -> false
      | exception Failure _ -> false
    in
    let rec take acc seen = function
      | [] -> List.rev acc
      | _ when List.length acc >= per_ip -> List.rev acc
      | assignment :: rest ->
        let _, _, descriptor = point ip assignment in
        if List.mem descriptor seen || not (elaborates assignment) then
          take acc seen rest
        else take (point ip assignment :: acc) (descriptor :: seen) rest
    in
    take [ point ip defaults ]
      [ (let _, _, d = point ip defaults in d) ]
      candidates
  in
  Array.of_list (List.concat_map variants Catalog.all)

(* P(rank r) proportional to 1/(r+1)^skew; ranks map onto the
   population through a seeded shuffle so popularity is not aligned
   with catalog order *)
let zipf_sampler st ~skew ~k =
  let cdf = Array.make k 0.0 in
  let total = ref 0.0 in
  for r = 0 to k - 1 do
    total := !total +. (1.0 /. (float_of_int (r + 1) ** skew));
    cdf.(r) <- !total
  done;
  let perm = Array.init k (fun i -> i) in
  let shuffle = Random.State.make [| 77 |] in
  for i = k - 1 downto 1 do
    let j = Random.State.int shuffle (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  fun () ->
    let u = Random.State.float st !total in
    let rec find r = if u <= cdf.(r) || r = k - 1 then r else find (r + 1) in
    perm.(find 0)

let cache_bench () =
  section "C3"
    "content-addressed delivery cache: capacity x zipf skew sweep";
  let population = cache_population ~per_ip:8 in
  let k = Array.length population in
  let requests = 1500 in
  let seed = 4004 in
  let serve delivery (ip, assignment, descriptor) =
    let built =
      Cache_store.find_or_add delivery.Delivery_cache.designs ~now:0.
        ~descriptor
        ~bytes:(fun b -> String.length (Snapshot.descriptor b.Ip_module.design))
        (fun () -> ip.Ip_module.build assignment)
    in
    let netlist =
      Delivery_cache.netlist_keyed delivery ~now:0. ~kind:"edif" ~descriptor
        (fun () -> Edif.of_design built.Ip_module.design)
    in
    String.length netlist
  in
  let trace ~skew n =
    let st = Random.State.make [| seed |] in
    let sample = zipf_sampler st ~skew ~k in
    Array.init n (fun _ -> population.(sample ()))
  in
  (* the no-cache baseline: every request re-elaborates and re-exports *)
  let baseline_requests = 150 in
  let baseline_req_per_s =
    let reqs = trace ~skew:1.0 baseline_requests in
    let t0 = Sys.time () in
    Array.iter
      (fun (ip, assignment, _) ->
         let built = ip.Ip_module.build assignment in
         ignore (String.length (Edif.of_design built.Ip_module.design) : int))
      reqs;
    float_of_int baseline_requests /. (Sys.time () -. t0)
  in
  Printf.printf
    "population %d generator invocations over %d IPs; %d requests per \
     cell\nno-cache baseline: %.0f req/s (fresh elaboration + EDIF export \
     each time)\n\n"
    k (List.length Catalog.all) requests baseline_req_per_s;
  let caps = [ 6; 16; k ] in
  let skews = [ 0.5; 1.0; 1.5 ] in
  Printf.printf "%6s %6s %9s %11s %9s %10s %8s\n" "cap" "skew" "hit-rate"
    "req/s" "speedup" "evictions" "rejects";
  let rows =
    List.concat_map
      (fun cap ->
         List.map
           (fun skew ->
              let delivery =
                Delivery_cache.create ~cap_entries:cap
                  ~cap_bytes:(64 * 1024 * 1024) ()
              in
              let reqs = trace ~skew requests in
              let t0 = Sys.time () in
              Array.iter (fun r -> ignore (serve delivery r : int)) reqs;
              let elapsed = Sys.time () -. t0 in
              let req_per_s = float_of_int requests /. elapsed in
              let hit_rate = Delivery_cache.hit_rate delivery in
              let stats = Delivery_cache.combined_stats delivery in
              let speedup = req_per_s /. baseline_req_per_s in
              Printf.printf "%6d %6.1f %8.1f%% %11.0f %8.1fx %10d %8d\n" cap
                skew (100.0 *. hit_rate) req_per_s speedup
                stats.Cache_store.evicted stats.Cache_store.verify_rejects;
              ( cap, skew, hit_rate, req_per_s, speedup,
                stats.Cache_store.evicted, stats.Cache_store.verify_rejects ))
           skews)
      caps
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc
    "{\n  \"experiment\": \"C3 delivery cache capacity x zipf skew\",\n";
  Printf.fprintf oc
    "  \"population\": %d,\n  \"requests\": %d,\n  \"seed\": %d,\n" k
    requests seed;
  Printf.fprintf oc "  \"baseline_req_per_s\": %.0f,\n  \"rows\": [\n"
    baseline_req_per_s;
  List.iteri
    (fun i (cap, skew, hit_rate, req_per_s, speedup, evicted, rejects) ->
       Printf.fprintf oc
         "    {\"cap_entries\": %d, \"zipf_skew\": %.1f, \"hit_rate\": \
          %.4f, \"req_per_s\": %.0f, \"speedup_vs_nocache\": %.1f, \
          \"evictions\": %d, \"verify_rejects\": %d}%s\n"
         cap skew hit_rate req_per_s speedup evicted rejects
         (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  (* acceptance floors: at catalog-sized capacity the mix must hit at
     least 80% and serve at least 10x the no-cache request rate *)
  List.iter
    (fun (cap, skew, hit_rate, _, speedup, _, _) ->
       if cap >= k && hit_rate < 0.80 then
         failwith
           (Printf.sprintf
              "C3: hit rate %.1f%% below the 80%% floor at cap %d skew %.1f"
              (100.0 *. hit_rate) cap skew);
       if cap >= k && speedup < 10.0 then
         failwith
           (Printf.sprintf
              "C3: speedup %.1fx below the 10x floor at cap %d skew %.1f"
              speedup cap skew))
    rows;
  print_endline
    "\nwrote BENCH_cache.json; shape check: hit rate climbs with both \
     capacity and skew,";
  print_endline
    "and at catalog-sized capacity every skew clears the 80% hit-rate and \
     10x request-";
  print_endline
    "rate floors - the cache turns the delivery path from re-elaboration \
     into lookups."

(* ------------------------------------------------------------------ *)
(* R1: overload resilience - load x fault-rate sweep                   *)
(* ------------------------------------------------------------------ *)

(* The chaos engine's parametric scenario (calm / storm / calm) played
   over a grid of offered loads and download-fault rates, all on one
   fixed seed. The service rate is ~20 req/s, so the 40 rps column runs
   2x oversubscribed: goodput there is the brownout ladder and breaker
   doing their job - typed sheds instead of failures - and the recovery
   column shows goodput returning once the storm passes. *)
let resilience_bench () =
  section "R1"
    "overload resilience: offered load x fault rate (chaos sweep scenario)";
  let seed = 2002 in
  let loads = [ 10.0; 20.0; 40.0 ] in
  let rates = [ 0.0; 0.15; 0.35 ] in
  Printf.printf
    "%8s %8s %9s %9s %9s %9s %13s %9s %6s\n" "load" "faults" "offered"
    "goodput" "shed" "failed" "p95 wait(ms)" "recovery" "pass";
  let rows =
    List.concat_map
      (fun load_rps ->
         List.map
           (fun fault_rate ->
              let scenario = Chaos.sweep ~load_rps ~fault_rate () in
              let r = Chaos.run ~seed scenario in
              let offered = float_of_int r.Chaos.offered in
              let goodput = float_of_int r.Chaos.ok /. offered in
              let shed =
                r.Chaos.offered - r.Chaos.ok - r.Chaos.failed
              in
              let shed_rate = float_of_int shed /. offered in
              Printf.printf
                "%6.0f/s %7.0f%% %9d %9.3f %9.3f %9d %13.1f %9.3f %6s\n"
                load_rps (fault_rate *. 100.0) r.Chaos.offered goodput
                shed_rate r.Chaos.failed r.Chaos.p95_queue_wait_ms
                r.Chaos.recovery_goodput
                (if Chaos.passed r then "ok" else "FAIL");
              ( load_rps, fault_rate, r.Chaos.offered, goodput, shed_rate,
                r.Chaos.failed, r.Chaos.p95_queue_wait_ms,
                r.Chaos.recovery_goodput, r.Chaos.breaker_opened,
                Chaos.passed r ))
           rates)
      loads
  in
  let oc = open_out "BENCH_resil.json" in
  output_string oc
    "{\n  \"experiment\": \"R1 overload resilience sweep\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n  \"rows\": [\n" seed;
  List.iteri
    (fun i
      ( load, rate, offered, goodput, shed_rate, failed, p95, recovery,
        opened, pass ) ->
      Printf.fprintf oc
        "    {\"load_rps\": %.0f, \"fault_rate\": %.2f, \"offered\": %d, \
         \"goodput\": %.4f, \"shed_rate\": %.4f, \"failed\": %d, \
         \"p95_queue_wait_ms\": %.1f, \"recovery_goodput\": %.4f, \
         \"breaker_opened\": %d, \"invariants_pass\": %b}%s\n"
        load rate offered goodput shed_rate failed p95 recovery opened pass
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  (if List.exists (fun (_, _, _, _, _, _, _, _, _, pass) -> not pass) rows
   then failwith "R1: a sweep cell violated a recovery invariant");
  print_endline
    "\nwrote BENCH_resil.json; shape check: goodput falls with \
     oversubscription but the";
  print_endline
    "shed column absorbs the loss as typed refusals, and every cell's \
     recovery goodput";
  print_endline
    "returns to >= 90% of its calm baseline once the storm passes - the \
     brownout ladder";
  print_endline "sheds load, it does not lose it."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "uB" "Bechamel micro-benchmarks (real measured time per operation)";
  let open Bechamel in
  let t1 =
    Test.make ~name:"T1 jar compression model"
      (Staged.stage (fun () -> Jar.compressed_size (Partition.monolithic ())))
  in
  let f1 =
    Test.make ~name:"F1 KCM generator elaboration (8x8->12)"
      (Staged.stage (fun () ->
         kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:true
           ~constant:(-56)))
  in
  let sim_for_bench =
    let d, _ =
      kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:true
        ~constant:(-56)
    in
    let clk =
      match Design.find_port d "clk" with
      | Some p -> p.Design.port_wire
      | None -> assert false
    in
    let sim = Simulator.create ~clock:clk d in
    Simulator.set_input sim "multiplicand" (Bits.of_int ~width:8 100);
    sim
  in
  let f3_sim =
    Test.make ~name:"F3 simulator cycle (pipelined KCM)"
      (Staged.stage (fun () -> Simulator.cycle sim_for_bench))
  in
  let netlist_design =
    let d, _ =
      kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
        ~constant:(-56)
    in
    d
  in
  let f3_netlist =
    Test.make ~name:"F3 EDIF netlist generation"
      (Staged.stage (fun () -> Edif.of_design netlist_design))
  in
  let f2 =
    Test.make ~name:"F2 applet assembly from a license"
      (Staged.stage (fun () ->
         Applet.create ~ip:Catalog.kcm
           ~license:(License.of_tier License.Licensed) ~user:"bench" ()))
  in
  let cosim_for_bench =
    let cosim = Cosim.create () in
    Cosim.attach cosim (kcm_endpoint ~constant:(-56)) Network.loopback;
    Cosim.set_inputs cosim ~box:"kcm"
      [ ("multiplicand", Bits.of_int ~width:8 42) ];
    cosim
  in
  let f4 =
    Test.make ~name:"F4 co-sim cycle over loopback protocol"
      (Staged.stage (fun () -> Cosim.cycle cosim_for_bench))
  in
  let c1 =
    let message =
      Protocol.Set_inputs [ ("multiplicand", Bits.of_int ~width:8 42) ]
    in
    Test.make ~name:"C1 protocol encode+decode"
      (Staged.stage (fun () -> Protocol.decode (Protocol.encode message)))
  in
  let c2 =
    let jars = Partition.jars_for Partition.all_components in
    Test.make ~name:"C2 download-time model (4 jars x 5 links)"
      (Staged.stage (fun () ->
         List.map
           (fun link -> Download.jars_seconds link jars)
           [ Download.modem_56k; Download.isdn_128k; Download.dsl_1m;
             Download.lan_10m; Download.lan_100m ]))
  in
  let a1 =
    let d, _ =
      kcm_design ~n:16 ~pw:24 ~signed_mode:false ~pipelined_mode:false
        ~constant:0xAB
    in
    Test.make ~name:"A1 static timing of a 16-bit KCM"
      (Staged.stage (fun () -> Estimate.timing_of_design d))
  in
  let a2 =
    let jar = Partition.jar_of Partition.Applet in
    Test.make ~name:"A2 jar obfuscation (Applet.jar)"
      (Staged.stage (fun () -> Obfuscator.obfuscate jar))
  in
  let a3 =
    let d, _ =
      kcm_design ~n:8 ~pw:12 ~signed_mode:true ~pipelined_mode:false
        ~constant:(-56)
    in
    Test.make ~name:"A3 bitstream packaging (32x16 device)"
      (Staged.stage (fun () -> Jbits.package ~device_rows:32 ~device_cols:16 d))
  in
  let tests = [ t1; f1; f3_sim; f3_netlist; f2; f4; c1; c2; a1; a2; a3 ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  Printf.printf "%-42s %16s\n" "operation" "time per run";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let analysis =
         Analyze.all ols Toolkit.Instance.monotonic_clock results
       in
       Hashtbl.iter
         (fun name ols_result ->
            let nanoseconds =
              match Analyze.OLS.estimates ols_result with
              | Some (estimate :: _) -> estimate
              | Some [] | None -> Float.nan
            in
            Printf.printf "%-42s %13.1f ns\n" name nanoseconds)
         analysis)
    tests

let () =
  table1 ();
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  claim_c1 ();
  let c1f_rows = claim_c1_faulty () in
  claim_c2 ();
  let c2f_rows = claim_c2_faulty () in
  write_bench_cosim c1f_rows c2f_rows;
  ablation_a1 ();
  ablation_a1b ();
  ablation_a2 ();
  ablation_a3 ();
  ablation_a4 ();
  ablation_a5 ();
  let s1_rows = sim_throughput () in
  let s2_rows = batch_throughput s1_rows in
  write_bench_sim s1_rows s2_rows;
  fuzz_throughput ();
  observability_overhead ();
  analysis_bench ();
  cache_bench ();
  resilience_bench ();
  bechamel_suite ();
  print_endline "\nall experiments complete."
