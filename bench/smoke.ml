(* Sub-second S1 smoke check, wired into `dune runtest` via the
   @bench-smoke alias: a short differential run of the compiled kernel
   against the reference interpreter on the pipelined KCM, plus a
   sanity floor on the kernel's measured throughput machinery (the full
   measurement lives in the S1 section of bench/main.ml), plus a
   snapshot/restore round-trip timing floor. Exits non-zero on any
   divergence. *)

open Jhdl

let () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 16 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:true ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  let kernel = Simulator.create ~clock:clk d in
  let reference = Reference.create ~clock:clk d in
  let mismatches = ref 0 in
  for i = 0 to 299 do
    let x = Bits.of_int ~width:8 (i * 93 land 0xFF) in
    Simulator.set_input kernel "multiplicand" x;
    Reference.set_input reference "multiplicand" x;
    Simulator.cycle kernel;
    Reference.cycle reference;
    if
      not
        (Bits.equal
           (Simulator.get_port kernel "product")
           (Reference.get_port reference "product"))
    then incr mismatches
  done;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-smoke: %d/300 cycles diverged from the reference\n"
      !mismatches;
    exit 1
  end;
  Printf.printf "bench-smoke: kernel = reference over 300 KCM cycles (%d prims)\n"
    (Simulator.prim_count kernel);
  (* checkpoint machinery must stay cheap enough to fire mid-simulation:
     100 snapshot/restore round-trips have to fit in well under a second *)
  let rounds = 100 in
  let t0 = Unix.gettimeofday () in
  let blob = ref "" in
  for _ = 1 to rounds do
    blob := Simulator.snapshot kernel;
    Simulator.restore kernel !blob
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if
    not
      (Bits.equal
         (Simulator.get_port kernel "product")
         (Reference.get_port reference "product"))
  then begin
    Printf.eprintf "bench-smoke: restore diverged from the reference\n";
    exit 1
  end;
  if elapsed >= 1.0 then begin
    Printf.eprintf
      "bench-smoke: %d snapshot round-trips took %.2fs (budget 1s)\n" rounds
      elapsed;
    exit 1
  end;
  Printf.printf
    "bench-smoke: %d snapshot round-trips under a second (%d-byte blob)\n"
    rounds (String.length !blob)
