(* Sub-second S1/S2 smoke check, wired into `dune runtest` via the
   @bench-smoke alias: a short differential run of the compiled kernel
   against the reference interpreter on the pipelined KCM, a
   snapshot/restore round-trip timing floor, and the 63-lane batch
   kernel pinned bit-identical to scalar runs plus a conservative
   effective-throughput floor (the full measurement lives in the S1/S2
   sections of bench/main.ml). Exits non-zero on any divergence. *)

open Jhdl

let () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 16 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:true ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  let kernel = Simulator.create ~clock:clk d in
  let reference = Reference.create ~clock:clk d in
  let mismatches = ref 0 in
  for i = 0 to 299 do
    let x = Bits.of_int ~width:8 (i * 93 land 0xFF) in
    Simulator.set_input kernel "multiplicand" x;
    Reference.set_input reference "multiplicand" x;
    Simulator.cycle kernel;
    Reference.cycle reference;
    if
      not
        (Bits.equal
           (Simulator.get_port kernel "product")
           (Reference.get_port reference "product"))
    then incr mismatches
  done;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-smoke: %d/300 cycles diverged from the reference\n"
      !mismatches;
    exit 1
  end;
  Printf.printf "bench-smoke: kernel = reference over 300 KCM cycles (%d prims)\n"
    (Simulator.prim_count kernel);
  (* checkpoint machinery must stay cheap enough to fire mid-simulation:
     100 snapshot/restore round-trips have to fit in well under a second *)
  let rounds = 100 in
  let t0 = Unix.gettimeofday () in
  let blob = ref "" in
  for _ = 1 to rounds do
    blob := Simulator.snapshot kernel;
    Simulator.restore kernel !blob
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if
    not
      (Bits.equal
         (Simulator.get_port kernel "product")
         (Reference.get_port reference "product"))
  then begin
    Printf.eprintf "bench-smoke: restore diverged from the reference\n";
    exit 1
  end;
  if elapsed >= 1.0 then begin
    Printf.eprintf
      "bench-smoke: %d snapshot round-trips took %.2fs (budget 1s)\n" rounds
      elapsed;
    exit 1
  end;
  Printf.printf
    "bench-smoke: %d snapshot round-trips under a second (%d-byte blob)\n"
    rounds (String.length !blob);
  (* S2: the 63-lane batch kernel on the same KCM. Every lane gets its
     own stimulus; after 300 cycles a lane's checkpoint blob must be
     byte-identical to a scalar kernel run of that lane's testbench. *)
  let lanes = Simulator.Batch.max_lanes in
  let batch = Simulator.Batch.create ~clock:clk ~lanes d in
  let lane_value i lane = ((i * 93) + (lane * 17)) land 0xFF in
  for i = 0 to 299 do
    for lane = 0 to lanes - 1 do
      Simulator.Batch.set_input batch ~lane "multiplicand"
        (Bits.of_int ~width:8 (lane_value i lane))
    done;
    Simulator.Batch.cycle batch
  done;
  List.iter
    (fun lane ->
       let scalar = Simulator.create ~clock:clk d in
       for i = 0 to 299 do
         Simulator.set_input scalar "multiplicand"
           (Bits.of_int ~width:8 (lane_value i lane));
         Simulator.cycle scalar
       done;
       if
         not
           (String.equal
              (Simulator.Batch.snapshot_lane batch ~lane)
              (Simulator.snapshot scalar))
       then begin
         Printf.eprintf
           "bench-smoke: batch lane %d diverged from its scalar run\n" lane;
         exit 1
       end)
    [ 0; 31; lanes - 1 ];
  Printf.printf
    "bench-smoke: batch lanes 0/31/%d byte-identical to scalar runs over \
     300 cycles\n"
    (lanes - 1);
  (* effective-throughput floor: fixed work, generous margin (the full
     S2 bench measures the real ratio; expected well above 10x) *)
  let work = 2000 in
  let time_scalar () =
    let sim = Simulator.create ~clock:clk d in
    let t0 = Unix.gettimeofday () in
    for i = 0 to work - 1 do
      Simulator.set_input sim "multiplicand"
        (Bits.of_int ~width:8 (lane_value i 0));
      Simulator.cycle sim
    done;
    Unix.gettimeofday () -. t0
  in
  let time_batch () =
    let sim = Simulator.Batch.create ~clock:clk ~lanes d in
    let t0 = Unix.gettimeofday () in
    for i = 0 to work - 1 do
      for lane = 0 to lanes - 1 do
        Simulator.Batch.set_input sim ~lane "multiplicand"
          (Bits.of_int ~width:8 (lane_value i lane))
      done;
      Simulator.Batch.cycle sim
    done;
    Unix.gettimeofday () -. t0
  in
  let scalar_s = time_scalar () and batch_s = time_batch () in
  let effective =
    float_of_int lanes *. scalar_s /. (if batch_s > 0.0 then batch_s else 1e-9)
  in
  if effective < 3.0 then begin
    Printf.eprintf
      "bench-smoke: batch effective throughput %.1fx scalar (floor 3.0x)\n"
      effective;
    exit 1
  end;
  Printf.printf
    "bench-smoke: batch effective throughput %.1fx scalar over %d cycles x \
     %d lanes\n"
    effective work lanes;
  (* AN1 floor: the chain-vs-tree KCM pair must close with a BDD proof
     (not a vector sweep), and quickly — the full measurement lives in
     the AN1 section of bench/main.ml *)
  let kcm_variant structure =
    let top = Cell.root ~name:"kcm_top" () in
    let m = Wire.create top ~name:"m" 8 in
    let p = Wire.create top ~name:"p" 16 in
    let _ =
      Kcm.create top ~adder_structure:structure ~multiplicand:m ~product:p
        ~signed_mode:false ~pipelined_mode:false ~constant:0xAB ()
    in
    let d = Design.create top in
    Design.add_port d "m" Types.Input m;
    Design.add_port d "p" Types.Output p;
    d
  in
  let chain = kcm_variant `Chain and tree = kcm_variant `Tree in
  let t0 = Unix.gettimeofday () in
  (match Equiv.check chain tree with
   | Equiv.Proved { outputs; bdd_nodes; sequential } ->
     let elapsed = Unix.gettimeofday () -. t0 in
     if elapsed >= 2.0 then begin
       Printf.eprintf
         "bench-smoke: chain-vs-tree proof took %.2fs (budget 2s)\n" elapsed;
       exit 1
     end;
     if sequential then begin
       Printf.eprintf
         "bench-smoke: combinational KCM pair proved as sequential\n";
       exit 1
     end;
     Printf.printf
       "bench-smoke: chain-vs-tree KCM proved equivalent (%d outputs, %d BDD \
        nodes)\n"
       outputs bdd_nodes
   | other ->
     Format.eprintf
       "bench-smoke: expected a chain-vs-tree proof, got %a@." Equiv.pp_result
       other;
     exit 1)

(* C3 floor: a delivery-cache hit (elaborated design + EDIF export,
   both content-addressed) must beat fresh re-elaboration by 10x
   across the whole modgen catalog at defaults - the property the
   server's delivery path depends on; the full capacity x zipf sweep
   lives in the C3 section of bench/main.ml *)
let () =
  let delivery =
    Delivery_cache.create ~cap_entries:16 ~cap_bytes:(16 * 1024 * 1024) ()
  in
  let serve ip =
    let assignment = Ip_module.defaults ip in
    let descriptor =
      Delivery_cache.generator_descriptor ~generator:ip.Ip_module.ip_name
        ~params:
          (List.map
             (fun (k, v) -> (k, Ip_module.param_to_string v))
             assignment)
    in
    let built =
      Cache_store.find_or_add delivery.Delivery_cache.designs ~now:0.
        ~descriptor
        ~bytes:(fun b -> String.length (Snapshot.descriptor b.Ip_module.design))
        (fun () -> ip.Ip_module.build assignment)
    in
    ignore
      (Delivery_cache.netlist_keyed delivery ~now:0. ~kind:"edif" ~descriptor
         (fun () -> Edif.of_design built.Ip_module.design)
        : string)
  in
  List.iter serve Catalog.all;
  let rounds = 10 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    List.iter serve Catalog.all
  done;
  let hit_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    List.iter
      (fun ip ->
         let built = ip.Ip_module.build (Ip_module.defaults ip) in
         ignore (Edif.of_design built.Ip_module.design : string))
      Catalog.all
  done;
  let fresh_s = Unix.gettimeofday () -. t0 in
  let ratio = fresh_s /. (if hit_s > 0.0 then hit_s else 1e-9) in
  if ratio < 10.0 then begin
    Printf.eprintf
      "bench-smoke: cache hit path only %.1fx faster than re-elaboration \
       (floor 10x)\n"
      ratio;
    exit 1
  end;
  let stats = Delivery_cache.combined_stats delivery in
  if stats.Cache_store.verify_rejects > 0 then begin
    Printf.eprintf "bench-smoke: %d unexpected cache verify reject(s)\n"
      stats.Cache_store.verify_rejects;
    exit 1
  end;
  Printf.printf
    "bench-smoke: delivery-cache hits %.0fx faster than re-elaboration \
     over %d catalog passes\n"
    ratio rounds
