(* Seeded netlist fuzzer: random valid designs driven differentially
   through the whole stack (kernel vs reference, snapshot round-trip,
   netlist re-parse, lint, estimator monotonicity).

   Usage: fuzz_tool --seed 42 --count 100
          fuzz_tool --oracle sim-vs-ref --oracle lint
          fuzz_tool --reduce --out repro/    (minimized reproducer files)
          fuzz_tool --list-oracles *)

open Cmdliner

module Fuzz = Jhdl_fuzz.Fuzz
module Gen = Jhdl_fuzz.Gen
module Oracle = Jhdl_fuzz.Oracle

let list_oracles () =
  List.iter
    (fun k -> print_endline (Oracle.kind_to_string k))
    Oracle.all

let parse_oracles names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "all" :: rest -> go (List.rev_append Oracle.all acc) rest
    | name :: rest ->
      (match Oracle.kind_of_string name with
       | Some k -> go (k :: acc) rest
       | None ->
         Error
           (Printf.sprintf
              "unknown oracle %s (try sim-vs-ref, snapshot, netlist, lint, \
               estimate, batch, absint or all)"
              name))
  in
  match names with
  | [] -> Ok Oracle.all
  | names -> go [] names

let write_reproducers dir seed failures =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iteri
    (fun i f ->
       let path =
         Filename.concat dir
           (Printf.sprintf "repro_%02d_case%d_%s.txt" i f.Fuzz.case
              (Oracle.kind_to_string f.Fuzz.oracle))
       in
       let oc = open_out path in
       output_string oc (Fuzz.failure_report ~f ~seed);
       close_out oc;
       Printf.printf "wrote %s\n" path)
    failures

let run seed count max_cells max_inputs steps oracle_names reduce inject_bug
    out metrics_format list_only =
  if list_only then begin
    list_oracles ();
    0
  end
  else
    let metrics_format =
      match metrics_format with
      | None | Some "text" | Some "json" -> Ok metrics_format
      | Some other ->
        Error (Printf.sprintf "--metrics formats: text, json (got %s)" other)
    in
    match (parse_oracles oracle_names, metrics_format) with
    | Error m, _ | _, Error m ->
      Printf.eprintf "fuzz_tool: %s\n" m;
      2
    | Ok oracles, Ok metrics_format ->
      let module Metrics = Jhdl_metrics.Metrics in
      let registry =
        if Option.is_some metrics_format then Metrics.create "fuzz"
        else Metrics.nil
      in
      let config =
        { Fuzz.seed;
          count;
          params =
            { Gen.default_params with Gen.max_cells; max_inputs };
          steps;
          oracles;
          reduce;
          inject_bug }
      in
      let outcome = Fuzz.run ~metrics:registry config in
      Printf.printf "fuzz: seed=%d max-cells=%d steps=%d\n" seed max_cells
        steps;
      print_string (Fuzz.summary outcome);
      (match metrics_format with
       | Some "json" -> print_string (Metrics.to_json registry)
       | Some _ -> print_string (Metrics.to_text registry)
       | None -> ());
      (match out with
       | Some dir when outcome.Fuzz.failures <> [] ->
         write_reproducers dir seed outcome.Fuzz.failures
       | _ -> ());
      if Fuzz.total_failures outcome = 0 then 0 else 1

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign master seed.")

let count_arg =
  Arg.(value & opt int 25 & info [ "count" ] ~doc:"Number of designs to generate.")

let max_cells_arg =
  Arg.(
    value
    & opt int Gen.default_params.Gen.max_cells
    & info [ "max-cells" ] ~doc:"Upper bound on body cells per design.")

let max_inputs_arg =
  Arg.(
    value
    & opt int Gen.default_params.Gen.max_inputs
    & info [ "max-inputs" ] ~doc:"Upper bound on stimulus ports per design.")

let steps_arg =
  Arg.(value & opt int 12 & info [ "steps" ] ~doc:"Stimulus steps per design.")

let oracle_arg =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ]
        ~doc:
          "Oracle to run (repeatable): sim-vs-ref, snapshot, netlist, lint, \
           estimate, batch, absint or all. Default: all.")

let reduce_arg =
  Arg.(
    value & flag
    & info [ "reduce" ]
        ~doc:"Delta-debug failing cases down to minimal reproducers.")

let inject_arg =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Arm a simulated kernel defect (MULT_AND divergence) to exercise \
           the failure and reduction paths.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~doc:"Directory for reproducer files of failing cases.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ]
        ~doc:
          "Dump campaign batch-kernel metrics after the summary: \
           $(b,--metrics) for aligned text, $(b,--metrics=json) for one \
           JSON object.")

let list_arg =
  Arg.(value & flag & info [ "list-oracles" ] ~doc:"List the oracles and exit.")

let cmd =
  let doc = "seeded netlist fuzzer with differential validation oracles" in
  Cmd.v
    (Cmd.info "fuzz_tool" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ max_cells_arg $ max_inputs_arg
      $ steps_arg $ oracle_arg $ reduce_arg $ inject_arg $ out_arg
      $ metrics_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
