(* Rule-based netlist lint over catalog designs: the CI-facing face of
   the lint engine.

   Usage: lint_tool --ip FirFilter --param taps=edge3 --json
          lint_tool --all --fail-on warning
          lint_tool --broken            (deliberately bad demo design)
          lint_tool --rules             (print the registry and exit) *)

open Jhdl
open Cmdliner

let build_design ip params =
  let split_param p =
    match String.index_opt p '=' with
    | Some i ->
      Ok (String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
    | None -> Error (Printf.sprintf "--param expects name=value, got %s" p)
  in
  let rec split_all acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match split_param p with
       | Ok v -> split_all (v :: acc) rest
       | Error _ as e -> e)
  in
  let parse (name, text) =
    match List.assoc_opt name ip.Ip_module.params with
    | None -> Error (Printf.sprintf "unknown parameter %s" name)
    | Some kind ->
      Result.map (fun v -> (name, v)) (Ip_module.parse_param kind text)
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match parse p with
       | Ok v -> parse_all (v :: acc) rest
       | Error _ as e -> e)
  in
  match Result.bind (split_all [] params) (parse_all []) with
  | Error message -> Error message
  | Ok assignment ->
    (match Ip_module.validate ip assignment with
     | Error message -> Error message
     | Ok complete ->
       (match ip.Ip_module.build complete with
        | built -> Ok built.Ip_module.design
        | exception Invalid_argument message -> Error message))

(* a deliberately broken design exercising the three analysis families:
   a doubly-driven net, a LUT-gated clock and a cone of dead logic *)
let broken_design () =
  let top = Cell.root ~name:"broken_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let clash = Wire.create top ~name:"clash" 1 in
  let gated_clk = Wire.create top ~name:"gated_clk" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let dead = Wire.create top ~name:"dead" 1 in
  (* contention: two buffers fight over one net *)
  let _ = Cell.prim top ~name:"drv0" Prim.Buf ~conns:[ ("I", a); ("O", clash) ] in
  let _ =
    Cell.prim top ~name:"drv1" ~allow_contention:true Prim.Buf
      ~conns:[ ("I", b); ("O", clash) ]
  in
  (* gated clock: clk AND b feeds a flip-flop's clock pin *)
  let _ =
    Cell.prim top ~name:"clk_gate"
      (Prim.Lut (Lut_init.and_all ~inputs:2))
      ~conns:[ ("I0", clk); ("I1", b); ("O", gated_clk) ]
  in
  let _ =
    Cell.prim top ~name:"ff"
      (Prim.Ff
         { clock_enable = false;
           async_clear = false;
           sync_reset = false;
           init = Bit.Zero })
      ~conns:[ ("C", gated_clk); ("D", clash); ("Q", q) ]
  in
  (* dead logic: an inverter whose output reaches no design output *)
  let _ = Cell.prim top ~name:"dead_inv" Prim.Inv ~conns:[ ("I", a); ("O", dead) ] in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "a" Types.Input a;
  Design.add_port design "b" Types.Input b;
  Design.add_port design "q" Types.Output q;
  design

let print_rules () =
  List.iter
    (fun (r : Lint.rule_info) ->
       Printf.printf "%s  %-9s %-24s %s\n" r.Lint.id
         (Lint.severity_to_string r.Lint.default_severity)
         r.Lint.name r.Lint.doc)
    (Lint.rules @ Deep_lint.rules)

let load_baseline path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no such baseline file %s" path)
  else begin
    let ic = open_in path in
    let keys = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && not (String.length line > 0 && line.[0] = '#') then
           keys := line :: !keys
       done
     with End_of_file -> ());
    close_in ic;
    Ok !keys
  end

let apply_baseline baseline report =
  match baseline with
  | None -> report
  | Some keys ->
    { report with
      Lint.diagnostics =
        List.filter
          (fun d -> not (List.mem (Lint.key d) keys))
          report.Lint.diagnostics }

let run_lint all broken ip_name params json rules_only deep fail_on disabled
    fanout_threshold max_diagnostics baseline_path metrics_format cache_cap =
  if rules_only then begin
    print_rules ();
    0
  end
  else begin
    let module Metrics = Jhdl_metrics.Metrics in
    let registry =
      if Option.is_some metrics_format then Metrics.create "analysis"
      else Metrics.nil
    in
    (* the verdict cache only answers for runs at the default analysis
       configuration — a verdict computed under different rule settings
       must never be served for another *)
    let cacheable =
      (not deep) && disabled = []
      && fanout_threshold = Lint.default_config.Lint.fanout_threshold
      && max_diagnostics = Lint.default_config.Lint.max_diagnostics
    in
    let cache =
      if cache_cap > 0 && cacheable then
        Some
          (Cache_store.create ~metrics:registry ~name:"lint"
             ~cap_entries:cache_cap ~cap_bytes:max_int ())
      else None
    in
    let result =
      match metrics_format with
      | Some f when f <> "text" && f <> "json" ->
        Error (Printf.sprintf "--metrics formats: text, json (got %s)" f)
      | _ ->
        (match Lint.severity_of_string fail_on with
      | None -> Error (Printf.sprintf "--fail-on expects info, warning or error, got %s" fail_on)
      | Some fail_severity ->
        let baseline =
          match baseline_path with
          | None -> Ok None
          | Some path -> Result.map Option.some (load_baseline path)
        in
        (match baseline with
         | Error message -> Error message
         | Ok baseline ->
           let config =
             { Lint.default_config with
               Lint.disabled;
               fanout_threshold;
               max_diagnostics }
           in
           let lint d =
             let base = Lint.run ~config d in
             if deep then
               Deep_lint.merge ~max_diagnostics base
                 (Deep_lint.run ~config ~metrics:registry d)
             else base
           in
           let raw_reports =
             if broken then Ok [ lint (broken_design ()) ]
             else if all then
               (match cache with
                | Some store ->
                  (* content-addressed by generator invocation: the
                     verdict store skips elaboration on a repeat *)
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | ip :: rest ->
                      (match Catalog.lint_verdict ~cache:store ip with
                       | Ok r -> go (r :: acc) rest
                       | Error e ->
                         Error (Catalog.elaboration_error_to_string e))
                  in
                  go [] Catalog.all
                | None ->
                  Ok
                    (List.map
                       (fun ip ->
                          lint
                            (ip.Ip_module.build (Ip_module.defaults ip))
                              .Ip_module.design)
                       Catalog.all))
             else
               (match Catalog.find ip_name with
                | None -> Error (Printf.sprintf "unknown IP %s" ip_name)
                | Some ip ->
                  Result.map (fun d -> [ lint d ]) (build_design ip params))
           in
           (match raw_reports with
            | Error message -> Error message
            | Ok raw_reports ->
              let reports = List.map (apply_baseline baseline) raw_reports in
              List.iter
                (fun r ->
                   if json then print_string (Lint.to_json r)
                   else print_string (Lint.to_text r))
                reports;
              let failing =
                List.exists
                  (fun r ->
                     match Lint.worst r with
                     | None -> false
                     | Some w -> Lint.compare_severity w fail_severity >= 0)
                  reports
              in
              Ok failing)))
    in
    match result with
    | Error message ->
      Printf.eprintf "lint_tool: %s\n" message;
      2
    | Ok failing ->
      (match metrics_format with
       | Some "json" -> print_string (Metrics.to_json registry)
       | Some _ -> print_string (Metrics.to_text registry)
       | None -> ());
      if failing then 1 else 0
  end

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Lint every catalog IP at its default parameters.")

let broken_arg =
  Arg.(
    value & flag
    & info [ "broken" ]
        ~doc:"Lint a deliberately broken demo design (contention, gated \
              clock, dead logic).")

let ip_arg =
  Arg.(
    value
    & opt string "VirtexKCMMultiplier"
    & info [ "ip" ] ~doc:"IP module name from the catalog.")

let param_arg =
  Arg.(
    value & opt_all string []
    & info [ "param"; "p" ] ~doc:"Generator parameter as name=value.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the stable JSON report instead of text.")

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the rule registry and exit.")

let deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ]
        ~doc:"Also run the BDD-backed analysis rules (L5xx): provable \
              constants the const-propagator misses, redundant cell \
              pairs, unobservable cones.")

let fail_on_arg =
  Arg.(
    value & opt string "error"
    & info [ "fail-on" ]
        ~doc:"Exit non-zero when a finding of this severity (or worse) \
              survives: info, warning or error.")

let disable_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable" ] ~doc:"Rule id to skip (repeatable).")

let fanout_arg =
  Arg.(
    value & opt int Lint.default_config.Lint.fanout_threshold
    & info [ "fanout-threshold" ] ~doc:"High-fanout (L203) trigger.")

let max_arg =
  Arg.(
    value & opt int Lint.default_config.Lint.max_diagnostics
    & info [ "max-diagnostics" ] ~doc:"Cap on reported findings per design.")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ]
        ~doc:"Suppress findings whose key (rule id + primary location) \
              appears in this file, one per line.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ]
        ~doc:
          "Dump analysis counters after the reports: with $(b,--deep) the \
           BDD manager's (nodes allocated, apply/memo cache hits, budget \
           cuts), with $(b,--cache-cap) the verdict store's \
           $(b,lint.cache_*) rows. $(b,--metrics) for aligned text, \
           $(b,--metrics=json) for one JSON object per metric.")

let cache_cap_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-cap" ]
        ~doc:"With $(b,--all), serve verdicts through a bounded \
              content-addressed store of this many entries (0 disables). \
              Only runs at the default analysis configuration are \
              cacheable.")

let cmd =
  let doc = "rule-based lint over JHDL module-generator designs" in
  Cmd.v
    (Cmd.info "lint_tool" ~doc)
    Term.(
      const run_lint $ all_arg $ broken_arg $ ip_arg $ param_arg $ json_arg
      $ rules_arg $ deep_arg $ fail_on_arg $ disable_arg $ fanout_arg
      $ max_arg $ baseline_arg $ metrics_arg $ cache_cap_arg)

let () = exit (Cmd.eval' cmd)
