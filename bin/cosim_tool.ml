(* Run a customer Verilog testbench against a catalog IP through the
   PLI wrapper — the Section 4.2 flow as a command-line tool.

   Usage:
     cosim_tool --ip VirtexKCMMultiplier -p constant=-56 -p product_width=19 \
       --bind x=multiplicand --bind p=product --tb bench.v [--network dsl]

   The testbench subset is documented in lib/netproto/verilog_tb.mli. *)

open Jhdl
open Cmdliner

let network_of = function
  | "loopback" -> Some Network.loopback
  | "lan" -> Some Network.lan
  | "campus" -> Some Network.campus
  | "dsl" -> Some Network.dsl
  | "modem" -> Some Network.modem
  | _ -> None

let split_eq what s =
  match String.index_opt s '=' with
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> Error (Printf.sprintf "%s expects name=value, got %s" what s)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    (match f x with
     | Error _ as e -> e
     | Ok v -> Result.map (fun vs -> v :: vs) (collect f rest))

let build_applet ip params =
  let applet =
    Applet.create ~ip ~license:(License.of_tier License.Evaluator)
      ~user:"cosim-tool" ()
  in
  let rec apply = function
    | [] -> Ok ()
    | (name, text) :: rest ->
      (match Applet.exec applet (Applet.Set_param (name, text)) with
       | Ok _ -> apply rest
       | Error m -> Error m)
  in
  match apply params with
  | Error _ as e -> Result.map (fun () -> applet) e
  | Ok () ->
    (match Applet.exec applet Applet.Build with
     | Ok _ -> Ok applet
     | Error m -> Error m)

let read_binary path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let write_binary path contents =
  try
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc;
    Ok ()
  with Sys_error m -> Error m

(* --chaos: play one named scenario (co-simulation link, breakers and
   all) against a fresh delivery stack and exit. Exit 0 only when every
   recovery invariant held; 1 on a failed invariant; 2 for an unknown
   scenario. *)
let run_chaos name seed metrics_format =
  match metrics_format with
  | Some other when other <> "text" && other <> "json" ->
    Printf.eprintf "cosim_tool: --metrics formats: text, json (got %s)\n" other;
    2
  | _ ->
    (match Chaos.find_scenario name with
     | None ->
       Printf.eprintf "unknown scenario %s; choices: %s\n" name
         (String.concat ", " (Chaos.scenario_names ()));
       2
     | Some scenario ->
       let registry =
         if Option.is_some metrics_format then Metrics.create "chaos"
         else Metrics.nil
       in
       let report = Chaos.run ~metrics:registry ~seed scenario in
       print_string (Chaos.report_to_text report);
       (match metrics_format with
        | Some "json" -> print_string (Metrics.all_to_json [ registry ])
        | Some _ -> print_string (Metrics.all_to_text [ registry ])
        | None -> ());
       if Chaos.passed report then 0 else 1)

let run ip_name params binds tb_path network_name fault_name fault_rate retries
    seed crash_at checkpoint_every resume_path checkpoint_path chaos
    metrics_format trace_last =
  match chaos with
  | Some name -> run_chaos name seed metrics_format
  | None ->
  match tb_path with
  | None ->
    Printf.eprintf "cosim_tool: --tb is required (unless running --chaos)\n";
    2
  | Some tb_path ->
  let ( let* ) = Result.bind in
  let result =
    let* () =
      match metrics_format with
      | None | Some "text" | Some "json" -> Ok ()
      | Some other ->
        Error (Printf.sprintf "--metrics formats: text, json (got %s)" other)
    in
    let* () =
      if trace_last < 0 then Error "--trace must be non-negative" else Ok ()
    in
    let want_metrics = Option.is_some metrics_format in
    let sim_reg = if want_metrics then Metrics.create "sim" else Metrics.nil in
    let cosim_reg =
      if want_metrics then Metrics.create "cosim" else Metrics.nil
    in
    (* the tracer lives even when only --trace is given, so it is minted
       from its own live registry rather than the possibly-nil cosim one *)
    let tracer =
      if trace_last > 0 then
        Some
          (Metrics.tracer
             ~capacity:(max Metrics.default_trace_capacity trace_last)
             (Metrics.create "trace"))
      else None
    in
    let* ip =
      Option.to_result ~none:(Printf.sprintf "unknown IP %s" ip_name)
        (Catalog.find ip_name)
    in
    let* network =
      Option.to_result
        ~none:"networks: loopback, lan, campus, dsl, modem"
        (network_of network_name)
    in
    let* fault_kind =
      Option.to_result
        ~none:"faults: drop, corrupt, duplicate, latency, disconnect, \
               session-crash"
        (Fault.kind_of_string fault_name)
    in
    let* () =
      if fault_rate < 0.0 || fault_rate >= 1.0 then
        Error "--fault-rate must be in [0, 1)"
      else Ok ()
    in
    let* () =
      if retries < 1 then Error "--retries must be at least 1" else Ok ()
    in
    let* () =
      if crash_at < 0 then Error "--crash-at must be at least 1" else Ok ()
    in
    let* () =
      if checkpoint_every < 0 then Error "--checkpoint-every must be positive"
      else Ok ()
    in
    let faults =
      if fault_rate > 0.0 then Some (Fault.only fault_kind ~rate:fault_rate ~seed)
      else None
    in
    let retry = { Cosim.default_retry with Cosim.max_attempts = retries } in
    let* params = collect (split_eq "--param") params in
    let* binds = collect (split_eq "--bind") binds in
    let bindings =
      List.map
        (fun (signal, port) -> { Verilog_tb.signal; box = "dut"; port })
        binds
    in
    let* source =
      try
        let ic = open_in tb_path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Ok s
      with Sys_error m -> Error m
    in
    let* program = Verilog_tb.parse source in
    let* applet = build_applet ip params in
    (match Applet.simulator applet with
     | Some sim -> Simulator.register_metrics sim sim_reg
     | None -> ());
    let* endpoint =
      Option.to_result ~none:"applet has no simulator"
        (Endpoint.of_applet ~metrics:cosim_reg ~name:"dut" applet)
    in
    (* resume before anything touches the wire, so the session's opening
       checkpoint captures the restored state *)
    let* () =
      match resume_path with
      | None -> Ok ()
      | Some path ->
        let* blob = read_binary path in
        (match Endpoint.restore endpoint blob with
         | Ok () ->
           Printf.printf "resumed from %s (%d bytes)\n" path
             (String.length blob);
           Ok ()
         | Error reason -> Error (Printf.sprintf "resume: %s" reason))
    in
    let session =
      if checkpoint_every > 0 then
        Some
          { Cosim.default_session_policy with
            Cosim.checkpoint_every }
      else None
    in
    let cosim = Cosim.create () in
    Cosim.attach cosim ?faults ~retry ?session ~metrics:cosim_reg ?tracer
      endpoint network;
    if crash_at > 0 then Cosim.crash_at cosim ~box:"dut" ~exchange:crash_at;
    let* result =
      try Ok (Verilog_tb.run program ~cosim ~bindings)
      with Cosim.Exchange_failed reason ->
        Error (Printf.sprintf "channel gave out: %s" reason)
    in
    List.iter print_endline result.Verilog_tb.transcript;
    let passed =
      List.filter (fun c -> c.Verilog_tb.passed) result.Verilog_tb.checks
    in
    List.iter
      (fun c ->
         if not c.Verilog_tb.passed then
           Printf.printf "FAIL $check %s: expected %s, got %s\n"
             c.Verilog_tb.check_signal
             (Bits.to_string c.Verilog_tb.expected)
             (Bits.to_string c.Verilog_tb.actual))
      result.Verilog_tb.checks;
    Printf.printf
      "%d/%d checks passed, %d cycles, %d protocol messages (%d bytes)\n"
      (List.length passed)
      (List.length result.Verilog_tb.checks)
      result.Verilog_tb.cycles_run
      (Cosim.total_messages cosim) (Cosim.total_bytes cosim);
    (match faults with
     | None -> ()
     | Some config ->
       Printf.printf
         "fault model %s: %d injected, %d retries, %d bytes retransmitted\n"
         (Fault.describe config)
         (Cosim.total_faults_injected cosim)
         (Cosim.total_retries cosim)
         (Cosim.total_retransmitted_bytes cosim));
    if Option.is_some session then
      Printf.printf
        "session: %d crash(es), %d resume(s), %d checkpoint(s), %d message(s) \
         replayed\n"
        (Cosim.total_session_crashes cosim)
        (Cosim.total_resumes cosim)
        (Cosim.total_checkpoints cosim)
        (Cosim.total_replayed_messages cosim);
    let* () =
      match checkpoint_path with
      | None -> Ok ()
      | Some path ->
        (match Endpoint.snapshot endpoint with
         | Error reason -> Error (Printf.sprintf "checkpoint: %s" reason)
         | Ok blob ->
           let* () = write_binary path blob in
           Printf.printf "checkpoint written to %s (%d bytes)\n" path
             (String.length blob);
           Ok ())
    in
    (match metrics_format with
     | Some "json" -> print_string (Metrics.all_to_json [ sim_reg; cosim_reg ])
     | Some _ -> print_string (Metrics.all_to_text [ sim_reg; cosim_reg ])
     | None -> ());
    (match tracer with
     | Some tr -> print_string (Metrics.trace_to_text ~last:trace_last tr)
     | None -> ());
    Ok (List.length passed = List.length result.Verilog_tb.checks)
  in
  match result with
  | Ok true -> 0
  | Ok false -> 1
  | Error message ->
    Printf.eprintf "cosim_tool: %s\n" message;
    2

let ip_arg =
  Arg.(
    value
    & opt string "VirtexKCMMultiplier"
    & info [ "ip" ] ~doc:"Catalog IP to evaluate.")

let param_arg =
  Arg.(
    value & opt_all string []
    & info [ "param"; "p" ] ~doc:"Generator parameter as name=value.")

let bind_arg =
  Arg.(
    value & opt_all string []
    & info [ "bind" ] ~doc:"Testbench signal binding as signal=port.")

let tb_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "tb" ]
        ~doc:"Verilog testbench file (required unless $(b,--chaos) runs a \
              scenario instead).")

let network_arg =
  Arg.(
    value & opt string "lan"
    & info [ "network" ] ~doc:"Channel model: loopback, lan, campus, dsl, modem.")

let fault_arg =
  Arg.(
    value & opt string "drop"
    & info [ "fault" ]
        ~doc:"Fault kind to inject: drop, corrupt, duplicate, latency, \
              disconnect.")

let fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ]
        ~doc:"Probability in [0,1) that a message suffers the fault; 0 \
              disables injection.")

let retries_arg =
  Arg.(
    value & opt int Jhdl.Cosim.default_retry.Jhdl.Cosim.max_attempts
    & info [ "retries" ]
        ~doc:"Attempts per exchange, including the first; 1 disables \
              recovery.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ]
        ~doc:"Fault-stream seed; identical seeds replay identical runs.")

let crash_at_arg =
  Arg.(
    value & opt int 0
    & info [ "crash-at" ]
        ~doc:"Kill the endpoint process as its Nth exchange starts \
              (deterministic); 0 disables. Recovery needs \
              $(b,--checkpoint-every).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ]
        ~doc:"Arm the crash-safe session layer and checkpoint the endpoint \
              every N data exchanges; 0 leaves the session layer off.")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ]
        ~doc:"Restore the endpoint from this checkpoint file before the \
              testbench runs. The blob must come from the same design \
              (signature-checked).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ]
        ~doc:"Write the endpoint's final state to this file after the run.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ]
        ~doc:"Run one chaos scenario (deterministic under $(b,--seed)) \
              instead of a testbench: smoke, crash-burst, loss-spike, \
              slow-clients, quota-storm, republish-load. Exit 0 when every \
              recovery invariant holds.")

let metrics_format_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ]
        ~doc:"Dump simulator and channel metrics after the run: \
              $(b,--metrics) for aligned text, $(b,--metrics=json) for one \
              JSON object per metric.")

let trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ]
        ~doc:"Record channel events in a bounded ring buffer and print the \
              last N after the run; 0 disables tracing.")

let cmd =
  let doc = "drive a black-box IP with a Verilog testbench (PLI wrapper)" in
  Cmd.v
    (Cmd.info "cosim_tool" ~doc)
    Term.(
      const run $ ip_arg $ param_arg $ bind_arg $ tb_arg $ network_arg
      $ fault_arg $ fault_rate_arg $ retries_arg $ seed_arg $ crash_at_arg
      $ checkpoint_every_arg $ resume_arg $ checkpoint_arg $ chaos_arg
      $ metrics_format_arg $ trace_arg)

let () = exit (Cmd.eval' cmd)
