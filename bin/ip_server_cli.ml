(* Interactive vendor server console: publish IP, register users, serve
   applet pages and inspect the access log — the vendor-side half of the
   paper's delivery story, driven from a prompt.

   Usage: ip_server_cli [--vendor NAME]
   Commands:
     catalog                        list published IP and versions
     publish <ip>                   publish or bump a catalog IP
     register <user> <tier>         create/update an account
     token <user>                   show a user's license token
     get <user> <ip> [link]         serve the IP page (link: modem|isdn|dsl|lan10|lan100)
     secure <user> <ip>             serve with encrypted jars
     log                            access log
     quit

   `get` runs through the overload-aware path: an admission controller
   and a download circuit breaker front the server, and rejections
   carry retry-after hints. The console clock is deterministic (one
   second per command). `--chaos SCENARIO` skips the console entirely
   and plays a seeded fault storm against a fresh delivery stack,
   exiting 0 only when every recovery invariant holds.              *)

open Jhdl

let link_of = function
  | "modem" -> Some Download.modem_56k
  | "isdn" -> Some Download.isdn_128k
  | "dsl" | "" -> Some Download.dsl_1m
  | "lan10" -> Some Download.lan_10m
  | "lan100" -> Some Download.lan_100m
  | _ -> None

let tier_of = function
  | "passive" -> Some License.Passive
  | "evaluator" -> Some License.Evaluator
  | "licensed" -> Some License.Licensed
  | "vendor" -> Some License.Vendor
  | _ -> None

let show_session (session : Server.session) =
  Printf.printf "served v%d; tools: %s\n" session.Server.version
    (String.concat ", "
       (List.map Feature.name (Applet.features session.Server.applet)));
  Printf.printf "fetched %d jar(s) in %.2f s: %s\n"
    (List.length session.Server.fetched)
    session.Server.download_seconds
    (String.concat ", "
       (List.map (fun j -> j.Jar.jar_name) session.Server.fetched));
  if session.Server.failed <> [] then begin
    Printf.printf "DEGRADED: %s never arrived (%d transfer attempts)\n"
      (String.concat ", "
         (List.map (fun j -> j.Jar.jar_name) session.Server.failed))
      session.Server.fetch_attempts;
    Printf.printf "unavailable tools: %s\n"
      (String.concat ", " (List.map Feature.name session.Server.unavailable))
  end

(* lossy-link settings shared by every get/secure command of a session *)
type delivery = {
  faults : Fault.config option;
  policy : Download.fetch_policy;
}

(* the console's deterministic clock: one second per command, so the
   breaker's probe schedule and retry-after hints replay exactly *)
let console_clock = ref 0.0

let handle server admission delivery registry tracer line =
  let trace ?value label =
    match tracer with
    | Some tr -> Metrics.trace tr ?value label
    | None -> ()
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | [ "catalog" ] ->
    List.iter
      (fun (name, version) -> Printf.printf "  %s (v%d)\n" name version)
      (Server.catalog server)
  | [ "publish"; ip_name ] ->
    (match Catalog.find ip_name with
     | Some ip ->
       Printf.printf "published %s as v%d\n" ip.Ip_module.ip_name
         (Server.publish server ip)
     | None ->
       Printf.printf "unknown IP %s; choices: %s\n" ip_name
         (String.concat ", "
            (List.map (fun ip -> ip.Ip_module.ip_name) Catalog.all)))
  | [ "register"; user; tier_name ] ->
    (match tier_of tier_name with
     | Some tier ->
       Server.register_user server ~user ~tier;
       Printf.printf "registered %s as %s\n" user tier_name
     | None -> print_endline "tiers: passive, evaluator, licensed, vendor")
  | [ "token"; user ] ->
    (match Server.user_token server ~user with
     | Some token -> print_endline token
     | None -> Printf.printf "unknown user %s\n" user)
  | "get" :: user :: ip_name :: rest ->
    let link_name = match rest with [ l ] -> l | _ -> "" in
    (match link_of link_name with
     | None -> print_endline "links: modem, isdn, dsl, lan10, lan100"
     | Some link ->
       let now = !console_clock in
       console_clock := now +. 1.0;
       (match
          Server.user_request server ~admission ~now ~user ~ip_name ~link
            ?faults:delivery.faults ~policy:delivery.policy ()
        with
        | Ok session ->
          trace "request_ok" ~value:(List.length session.Server.fetched);
          show_session session
        | Error rejection ->
          trace "request_error";
          print_endline ("ERROR: " ^ rejection.Server.rej_reason);
          (match rejection.Server.rej_retry_after_s with
           | Some s -> Printf.printf "retry after %.1f s\n" s
           | None -> ())))
  | [ "secure"; user; ip_name ] ->
    (match
       Server.secure_request server ~user ~ip_name ~link:Download.dsl_1m
         ?faults:delivery.faults ~policy:delivery.policy ()
     with
     | Ok (session, sealed) ->
       trace "secure_ok" ~value:(List.length sealed);
       show_session session;
       List.iter
         (fun s ->
            Printf.printf "  sealed %s (%d bytes, digest %s)\n"
              s.Secure_channel.jar_name
              (String.length s.Secure_channel.ciphertext)
              s.Secure_channel.digest)
         sealed
     | Error message ->
       trace "secure_error";
       print_endline ("ERROR: " ^ message))
  | [ "log" ] ->
    List.iter (fun l -> print_endline ("  " ^ l)) (Server.access_log server)
  | [ "metrics" ] ->
    if Metrics.is_nil registry then
      print_endline "metrics are off (start with --metrics)"
    else print_string (Metrics.to_text registry)
  | [ "help" ] ->
    print_endline
      "commands: catalog, publish <ip>, register <user> <tier>, token <user>,\n\
      \          get <user> <ip> [link], secure <user> <ip>, log, metrics, quit"
  | _ -> print_endline "unrecognized command (try `help`)"

open Cmdliner

let vendor_arg =
  Arg.(
    value
    & opt string "BYU Configurable Computing Lab"
    & info [ "vendor" ] ~doc:"Vendor name for the server.")

let fault_arg =
  Arg.(
    value & opt string "drop"
    & info [ "fault" ]
        ~doc:"Fault kind on the download link: drop, corrupt, duplicate, \
              latency, disconnect.")

let fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ]
        ~doc:"Probability in [0,1) that a jar transfer suffers the fault; \
              0 keeps the link clean.")

let retries_arg =
  Arg.(
    value & opt int Download.default_fetch_policy.Download.max_attempts
    & info [ "retries" ] ~doc:"Transfer attempts per jar, including the first.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~doc:"Fault-stream seed (same seed, same faults).")

(* --chaos: play one named scenario against a fresh stack and exit.
   Exit 0 only when every recovery invariant held; 1 on a failed
   invariant; 2 for an unknown scenario. *)
let run_chaos name seed metrics_format =
  match Chaos.find_scenario name with
  | None ->
    Printf.eprintf "unknown scenario %s; choices: %s\n" name
      (String.concat ", " (Chaos.scenario_names ()));
    2
  | Some scenario ->
    let registry =
      if Option.is_some metrics_format then Metrics.create "chaos"
      else Metrics.nil
    in
    let report = Chaos.run ~metrics:registry ~seed scenario in
    print_string (Chaos.report_to_text report);
    (match metrics_format with
     | Some "json" -> print_string (Metrics.all_to_json [ registry ])
     | Some _ -> print_string (Metrics.all_to_text [ registry ])
     | None -> ());
    if Chaos.passed report then 0 else 1

let run vendor fault_name fault_rate retries seed chaos metrics_format
    trace_last cache_cap =
  match Fault.kind_of_string fault_name with
  | None ->
    prerr_endline "faults: drop, corrupt, duplicate, latency, disconnect";
    2
  | Some _
    when (match metrics_format with
          | None | Some "text" | Some "json" -> false
          | Some _ -> true) ->
    prerr_endline "--metrics formats: text, json";
    2
  | Some _ when Option.is_some chaos ->
    run_chaos (Option.get chaos) seed metrics_format
  | Some _ when cache_cap < 1 ->
    prerr_endline "--cache-cap must be at least 1";
    2
  | Some kind when fault_rate >= 0.0 && fault_rate < 1.0 && retries >= 1
                && trace_last >= 0 ->
    let delivery =
      { faults =
          (if fault_rate > 0.0 then Some (Fault.only kind ~rate:fault_rate ~seed)
           else None);
        policy =
          { Download.default_fetch_policy with Download.max_attempts = retries } }
    in
    let registry =
      if Option.is_some metrics_format then Metrics.create "webserver"
      else Metrics.nil
    in
    let tracer =
      if trace_last > 0 then
        Some
          (Metrics.tracer
             ~capacity:(max Metrics.default_trace_capacity trace_last)
             (Metrics.create "trace"))
      else None
    in
    (* the overload-aware front door: breaker + admission share the
       registry, so --metrics dumps fold in their counters *)
    let breaker =
      Breaker.create ~metrics:registry ~name:"download" ~seed ()
    in
    let server =
      Server.create ~vendor ~delivery_cap:cache_cap ~breaker
        ~metrics:registry ()
    in
    let admission = Admission.create ~metrics:registry () in
    console_clock := 0.0;
    List.iter (fun ip -> ignore (Server.publish server ip)) Catalog.all;
    Printf.printf "IP delivery server for %s (type `help`)\n" vendor;
    (match delivery.faults with
     | Some config ->
       Printf.printf "download link faults: %s, %d attempt(s) per jar\n"
         (Fault.describe config) retries
     | None -> ());
    let finish () =
      (match metrics_format with
       | Some "json" -> print_string (Metrics.all_to_json [ registry ])
       | Some _ -> print_string (Metrics.all_to_text [ registry ])
       | None -> ());
      (match tracer with
       | Some tr -> print_string (Metrics.trace_to_text ~last:trace_last tr)
       | None -> ());
      0
    in
    let rec loop () =
      print_string "server> ";
      match read_line () with
      | exception End_of_file -> finish ()
      | "quit" | "exit" -> finish ()
      | line ->
        handle server admission delivery registry tracer line;
        loop ()
    in
    loop ()
  | Some _ ->
    prerr_endline
      "--fault-rate must be in [0,1), --retries at least 1, --trace \
       non-negative";
    2

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ]
        ~doc:"Run one chaos scenario (deterministic under $(b,--seed)) \
              instead of the console: smoke, crash-burst, loss-spike, \
              slow-clients, quota-storm, republish-load. Exit 0 when every \
              recovery invariant holds.")

let metrics_format_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ]
        ~doc:"Collect server metrics and dump them on exit: $(b,--metrics) \
              for aligned text, $(b,--metrics=json) for one JSON object per \
              metric. Also enables the $(b,metrics) console command.")

let trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ]
        ~doc:"Record request events in a bounded ring buffer and print the \
              last N on exit; 0 disables tracing.")

let cache_cap_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-cap" ]
        ~doc:"Entry capacity of the server's content-addressed delivery \
              cache (elaborated designs, lint verdicts, netlists, jar \
              bundles). With $(b,--metrics), its counters dump as the \
              $(b,delivery.cache_*) rows.")

let cmd =
  let doc = "run the vendor's IP delivery web server console" in
  Cmd.v (Cmd.info "ip_server_cli" ~doc)
    Term.(
      const run $ vendor_arg $ fault_arg $ fault_rate_arg $ retries_arg
      $ seed_arg $ chaos_arg $ metrics_format_arg $ trace_arg
      $ cache_cap_arg)

let () = exit (Cmd.eval' cmd)
