open Jhdl_circuit.Types
module Bit = Jhdl_logic.Bit
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Levelize = Jhdl_circuit.Levelize
module Ident = Jhdl_netlist.Ident
module Placer = Jhdl_place.Placer

type severity =
  | Info
  | Warning
  | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

type diagnostic = {
  rule_id : string;
  rule_name : string;
  severity : severity;
  message : string;
  cells : string list;
  nets : string list;
}

let key d =
  let primary =
    match d.nets, d.cells with
    | n :: _, _ -> n
    | [], c :: _ -> c
    | [], [] -> "-"
  in
  d.rule_id ^ " " ^ primary

type rule_info = {
  id : string;
  name : string;
  default_severity : severity;
  doc : string;
}

type config = {
  disabled : string list;
  only : string list option;
  overrides : (string * severity) list;
  max_diagnostics : int;
  fanout_threshold : int;
  grid : (int * int) option;
}

let default_config =
  { disabled = [];
    only = None;
    overrides = [];
    max_diagnostics = 1000;
    fanout_threshold = 64;
    grid = None }

type report = {
  design : string;
  diagnostics : diagnostic list;
  dropped : int;
}

(* ------------------------------------------------------------------ *)
(* Shared analysis context; each piece computed at most once per run.  *)

type clock_use = {
  seq_inst : cell;
  clk_port : string;
  clk_net : net;
  root : net;  (** end of the buffer chain from the clock pin *)
  gate : terminal option;  (** non-buffer driver terminating the walk *)
}

type ctx = {
  design : Design.t;
  cfg : config;
  violations : Design.violation list Lazy.t;
  sources : Levelize.source list Lazy.t;
  cp : Const_prop.t Lazy.t;
  clocks : clock_use list Lazy.t;
}

let net_label n =
  match n.source_wire with
  | Some w -> Printf.sprintf "%s[%d]" (Wire.full_name w) n.source_bit
  | None -> Printf.sprintf "net#%d" n.net_id

let binding_net inst formal =
  List.find_map
    (fun b ->
       if String.equal b.formal formal && Array.length b.actual.nets > 0 then
         Some b.actual.nets.(0)
       else None)
    inst.port_bindings

(* follow the driver back through BUF chains to the net a clock really
   originates from *)
let clock_root_of net =
  let visited = Hashtbl.create 4 in
  let rec walk n =
    if Hashtbl.mem visited n.net_id then (n, None)
    else begin
      Hashtbl.replace visited n.net_id ();
      match n.driver with
      | None -> (n, None)
      | Some t ->
        (match Cell.prim_of t.term_cell with
         | Some Prim.Buf ->
           (match binding_net t.term_cell "I" with
            | Some upstream -> walk upstream
            | None -> (n, Some t))
         | Some _ | None -> (n, Some t))
    end
  in
  walk net

let clock_uses_of sources =
  List.filter_map
    (fun (s : Levelize.source) ->
       match Prim.clock_port s.prim with
       | None -> None
       | Some port ->
         (match List.assoc_opt port s.in_ports with
          | Some nets when Array.length nets > 0 ->
            let clk_net = nets.(0) in
            let root, gate = clock_root_of clk_net in
            Some { seq_inst = s.inst; clk_port = port; clk_net; root; gate }
          | Some _ | None -> None))
    sources

let make_ctx cfg design =
  let sources =
    lazy (Levelize.sources_of_root (Design.root design))
  in
  { design;
    cfg;
    violations = lazy (Design.validate design);
    sources;
    cp = lazy (Const_prop.analyze design);
    clocks = lazy (clock_uses_of (Lazy.force sources)) }

let diag info ?(cells = []) ?(nets = []) message =
  { rule_id = info.id;
    rule_name = info.name;
    severity = info.default_severity;
    message;
    cells;
    nets }

let wire_bit wire bit = Printf.sprintf "%s[%d]" wire bit

let ellipsis limit names =
  let n = List.length names in
  if n <= limit then String.concat ", " names
  else
    String.concat ", " (List.filteri (fun i _ -> i < limit) names)
    ^ Printf.sprintf ", ... (%d total)" n

(* ------------------------------------------------------------------ *)
(* L0xx — electrical and structural checks (shared with
   Design.validate) plus constant-propagation findings.                *)

let check_contended info ctx =
  List.filter_map
    (function
      | Design.Contended_net { wire; bit; drivers } ->
        Some
          (diag info ~cells:drivers
             ~nets:[ wire_bit wire bit ]
             (Printf.sprintf "net %s has %d driving sources: %s"
                (wire_bit wire bit) (List.length drivers)
                (ellipsis 4 drivers)))
      | _ -> None)
    (Lazy.force ctx.violations)

let check_undriven info ctx =
  List.filter_map
    (function
      | Design.Undriven_net { wire; bit; sink_count } ->
        Some
          (diag info
             ~nets:[ wire_bit wire bit ]
             (Printf.sprintf "net %s has %d sink(s) but no driver"
                (wire_bit wire bit) sink_count))
      | _ -> None)
    (Lazy.force ctx.violations)

let check_dangling info ctx =
  List.filter_map
    (function
      | Design.Dangling_driver { wire; bit } ->
        Some
          (diag info
             ~nets:[ wire_bit wire bit ]
             (Printf.sprintf "net %s is driven but read by nothing"
                (wire_bit wire bit)))
      | _ -> None)
    (Lazy.force ctx.violations)

let check_port_wire info ctx =
  List.filter_map
    (function
      | Design.Port_wire_not_root { port } ->
        Some
          (diag info
             (Printf.sprintf "port %s is bound to a wire the root cell does not own"
                port))
      | _ -> None)
    (Lazy.force ctx.violations)

let check_comb_loop info ctx =
  List.filter_map
    (function
      | Design.Combinational_loop { cells } ->
        Some
          (diag info ~cells
             (Printf.sprintf "combinational loop through %d cell(s): %s"
                (List.length cells) (ellipsis 6 cells)))
      | _ -> None)
    (Lazy.force ctx.violations)

let seq_output_port prim =
  match prim with
  | Prim.Ff _ | Prim.Srl16 _ -> Some "Q"
  | Prim.Ram16x1 _ -> Some "O"
  | _ -> None

let check_stuck info ctx =
  let cp = Lazy.force ctx.cp in
  List.filter_map
    (fun (s : Levelize.source) ->
       match seq_output_port s.prim with
       | None -> None
       | Some port ->
         (match List.assoc_opt port s.out_ports with
          | Some nets when Array.length nets > 0 ->
            (match Const_prop.net_value cp nets.(0) with
             | Const (Bit.Zero | Bit.One) as v ->
               let b = match v with Const b -> b | Varies -> Bit.X in
               Some
                 (diag info
                    ~cells:[ Cell.path s.inst ]
                    ~nets:[ net_label nets.(0) ]
                    (Printf.sprintf
                       "%s output %s of %s is stuck at %c; the element never changes state"
                       (Prim.name s.prim) port (Cell.path s.inst) (Bit.to_char b)))
             | Const _ | Varies -> None)
          | Some _ | None -> None))
    (Lazy.force ctx.sources)

let check_const_lut info ctx =
  let cp = Lazy.force ctx.cp in
  List.filter_map
    (fun (s : Levelize.source) ->
       match s.prim with
       | Prim.Lut _ ->
         (match List.assoc_opt "O" s.out_ports with
          | Some nets when Array.length nets > 0 ->
            (match Const_prop.net_value cp nets.(0) with
             | Const (Bit.Zero | Bit.One) as v ->
               let b = match v with Const b -> b | Varies -> Bit.X in
               Some
                 (diag info
                    ~cells:[ Cell.path s.inst ]
                    ~nets:[ net_label nets.(0) ]
                    (Printf.sprintf
                       "LUT %s always outputs %c; it can be folded to a constant"
                       (Cell.path s.inst) (Bit.to_char b)))
             | Const _ | Varies -> None)
          | Some _ | None -> None)
       | _ -> None)
    (Lazy.force ctx.sources)

let check_dead_logic info ctx =
  let outputs = Design.outputs ctx.design in
  if outputs = [] then []
  else begin
    let live_nets = Hashtbl.create 256 in
    let live_cells = Hashtbl.create 256 in
    let by_cell = Hashtbl.create 256 in
    List.iter
      (fun (s : Levelize.source) -> Hashtbl.replace by_cell s.inst.cell_id s)
      (Lazy.force ctx.sources);
    let queue = Queue.create () in
    let touch_net n =
      if not (Hashtbl.mem live_nets n.net_id) then begin
        Hashtbl.replace live_nets n.net_id ();
        Queue.add n queue
      end
    in
    List.iter
      (fun p -> Array.iter touch_net p.Design.port_wire.nets)
      outputs;
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      List.iter
        (fun t ->
           if not (Hashtbl.mem live_cells t.term_cell.cell_id) then begin
             Hashtbl.replace live_cells t.term_cell.cell_id ();
             match Hashtbl.find_opt by_cell t.term_cell.cell_id with
             | None -> ()
             | Some s ->
               List.iter
                 (fun (_, nets) -> Array.iter touch_net nets)
                 s.Levelize.in_ports
           end)
        ((match n.driver with Some t -> [ t ] | None -> []) @ n.extra_drivers)
    done;
    let dead =
      List.filter
        (fun (s : Levelize.source) ->
           (not (Hashtbl.mem live_cells s.inst.cell_id))
           && (match s.prim with Prim.Black_box _ -> false | _ -> true))
        (Lazy.force ctx.sources)
    in
    match dead with
    | [] -> []
    | _ ->
      let cells = List.map (fun (s : Levelize.source) -> Cell.path s.inst) dead in
      [ diag info ~cells
          (Printf.sprintf
             "%d primitive(s) feed no design output (dead logic): %s"
             (List.length cells) (ellipsis 6 cells)) ]
  end

(* ------------------------------------------------------------------ *)
(* L1xx — clock discipline.                                            *)

let check_gated_clock info ctx =
  (* one diagnostic per gated clock net, naming its sequential sinks *)
  let by_net = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun u ->
       match u.gate with
       | None -> ()
       | Some gate ->
         (match Hashtbl.find_opt by_net u.clk_net.net_id with
          | Some (g, cells) ->
            Hashtbl.replace by_net u.clk_net.net_id (g, u.seq_inst :: cells)
          | None ->
            Hashtbl.replace by_net u.clk_net.net_id
              ((u.clk_net, gate), [ u.seq_inst ]);
            order := u.clk_net.net_id :: !order))
    (Lazy.force ctx.clocks);
  List.rev_map
    (fun id ->
       let (clk_net, gate), cells = Hashtbl.find by_net id in
       let cells = List.rev_map Cell.path cells in
       let gate_name =
         Printf.sprintf "%s.%s"
           (Cell.path gate.term_cell) gate.term_port
       in
       let gate_prim =
         match Cell.prim_of gate.term_cell with
         | Some p -> Prim.name p
         | None -> "?"
       in
       diag info ~cells
         ~nets:[ net_label clk_net ]
         (Printf.sprintf
            "clock net %s of %d sequential cell(s) is driven by %s output %s, not a clock buffer or top-level input"
            (net_label clk_net) (List.length cells) gate_prim gate_name))
    !order

let check_clock_roots info ctx =
  let roots = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun u ->
       if not (Hashtbl.mem roots u.root.net_id) then begin
         Hashtbl.replace roots u.root.net_id u.root;
         order := u.root :: !order
       end)
    (Lazy.force ctx.clocks);
  match List.rev !order with
  | [] | [ _ ] -> []
  | nets ->
    [ diag info
        ~nets:(List.map net_label nets)
        (Printf.sprintf "%d distinct clock roots drive sequential logic: %s"
           (List.length nets)
           (ellipsis 4 (List.map net_label nets))) ]

let check_clock_as_data info ctx =
  let uses = Lazy.force ctx.clocks in
  let roots = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun u ->
       if u.gate = None && not (Hashtbl.mem roots u.root.net_id) then begin
         Hashtbl.replace roots u.root.net_id ();
         order := u.root :: !order
       end)
    uses;
  List.filter_map
    (fun root ->
       let data_pins =
         List.filter
           (fun t ->
              match Cell.prim_of t.term_cell with
              | Some Prim.Buf -> false (* clock distribution *)
              | Some p -> Prim.clock_port p <> Some t.term_port
              | None -> false)
           (List.rev root.sinks)
       in
       match data_pins with
       | [] -> None
       | pins ->
         let cells =
           List.map
             (fun t -> Printf.sprintf "%s.%s" (Cell.path t.term_cell) t.term_port)
             pins
         in
         Some
           (diag info ~cells
              ~nets:[ net_label root ]
              (Printf.sprintf
                 "clock root %s also feeds %d non-clock pin(s): %s"
                 (net_label root) (List.length cells) (ellipsis 4 cells))))
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* L2xx — connection hygiene.                                          *)

let composite_signature c =
  List.map
    (fun b ->
       (b.formal, (match b.dir with Input -> "in" | Output -> "out"),
        Array.length b.actual.nets))
    (Cell.port_bindings c)
  |> List.sort compare

let check_signatures info ctx =
  let by_type = Hashtbl.create 32 in
  let order = ref [] in
  Cell.iter_rec
    (fun c ->
       if (not (Cell.is_primitive c)) && c.parent <> None then begin
         let tn = Cell.type_name c in
         let signature = composite_signature c in
         match Hashtbl.find_opt by_type tn with
         | None ->
           Hashtbl.replace by_type tn [ (signature, c) ];
           order := tn :: !order
         | Some groups ->
           if not (List.mem_assoc signature groups) then
             Hashtbl.replace by_type tn ((signature, c) :: groups)
       end)
    (Design.root ctx.design);
  List.filter_map
    (fun tn ->
       match Hashtbl.find_opt by_type tn with
       | Some ((_ :: _ :: _) as groups) ->
         let cells = List.rev_map (fun (_, c) -> Cell.path c) groups in
         Some
           (diag info ~cells
              (Printf.sprintf
                 "instances of %s disagree on their port signature (%d variants), e.g. %s"
                 tn (List.length groups) (ellipsis 3 cells)))
       | Some _ | None -> None)
    (List.rev !order)

let check_floating_inputs info ctx =
  let input_nets = Hashtbl.create 64 in
  List.iter
    (fun p ->
       if p.Design.port_dir = Input then
         Array.iter
           (fun n -> Hashtbl.replace input_nets n.net_id ())
           p.Design.port_wire.nets)
    (Design.ports ctx.design);
  List.filter_map
    (fun n ->
       if n.driver = None && n.extra_drivers = [] && n.sinks <> []
          && not (Hashtbl.mem input_nets n.net_id)
       then begin
         let pins =
           List.rev_map
             (fun t -> Printf.sprintf "%s.%s" (Cell.path t.term_cell) t.term_port)
             n.sinks
         in
         Some
           (diag info ~cells:pins
              ~nets:[ net_label n ]
              (Printf.sprintf "input pin(s) float on undriven net %s: %s"
                 (net_label n) (ellipsis 4 pins)))
       end
       else None)
    (Design.all_nets ctx.design)

let check_fanout info ctx =
  let clock_net_ids = Hashtbl.create 8 in
  List.iter
    (fun u ->
       Hashtbl.replace clock_net_ids u.clk_net.net_id ();
       Hashtbl.replace clock_net_ids u.root.net_id ())
    (Lazy.force ctx.clocks);
  let threshold = ctx.cfg.fanout_threshold in
  List.filter_map
    (fun n ->
       let fanout = List.length n.sinks in
       let constant_source =
         match n.driver with
         | Some t ->
           (match Cell.prim_of t.term_cell with
            | Some (Prim.Gnd | Prim.Vcc) -> true
            | Some _ | None -> false)
         | None -> false
       in
       if fanout > threshold
          && (not (Hashtbl.mem clock_net_ids n.net_id))
          && not constant_source
       then
         Some
           (diag info
              ~nets:[ net_label n ]
              (Printf.sprintf "net %s fans out to %d sinks (threshold %d)"
                 (net_label n) fanout threshold))
       else None)
    (Design.all_nets ctx.design)

(* ------------------------------------------------------------------ *)
(* L3xx — netlist-export safety. The netlisters keep separate
   namespaces for ports, nets and instances inside each emitted
   definition; the same grouping is checked here, per target style.    *)

let style_name = function
  | Ident.Edif -> "EDIF"
  | Ident.Vhdl -> "VHDL"
  | Ident.Verilog -> "Verilog"

(* one representative cell per composite definition, hierarchy order *)
let definitions design =
  let seen = Hashtbl.create 32 in
  let defs = ref [] in
  Cell.iter_rec
    (fun c ->
       if not (Cell.is_primitive c) then begin
         let tn = Cell.type_name c in
         if not (Hashtbl.mem seen tn) then begin
           Hashtbl.replace seen tn ();
           defs := c :: !defs
         end
       end)
    (Design.root design);
  List.rev !defs

let namespaces_of design c =
  let is_root = c.parent = None in
  let ports =
    if is_root then List.map (fun p -> p.Design.port_name) (Design.ports design)
    else List.map (fun b -> b.formal) (Cell.port_bindings c)
  in
  let nets = List.map Wire.name (Cell.owned_wires c) in
  let insts = List.map Cell.name (Cell.children c) in
  [ ("port", ports); ("net", nets); ("instance", insts) ]

let check_ident_collisions info ctx =
  let styles = [ Ident.Vhdl; Ident.Verilog; Ident.Edif ] in
  List.concat_map
    (fun c ->
       let tn = Cell.type_name c in
       List.concat_map
         (fun (ns, names) ->
            List.concat_map
              (fun style ->
                 let groups = Hashtbl.create 16 in
                 let order = ref [] in
                 List.iter
                   (fun name ->
                      let k = Ident.case_key style (Ident.sanitize style name) in
                      match Hashtbl.find_opt groups k with
                      | None ->
                        Hashtbl.replace groups k [ name ];
                        order := k :: !order
                      | Some names -> Hashtbl.replace groups k (name :: names))
                   names;
                 List.filter_map
                   (fun k ->
                      match Hashtbl.find_opt groups k with
                      | Some ((_ :: _ :: _) as clash) ->
                        let clash = List.rev clash in
                        Some
                          (diag info
                             ~cells:[ Cell.path c ]
                             (Printf.sprintf
                                "%s names %s of %s all sanitize to %s %s; the netlister will rename them"
                                ns
                                (String.concat ", " clash)
                                tn (style_name style) k))
                      | Some _ | None -> None)
                   (List.rev !order))
              styles)
         (namespaces_of ctx.design c))
    (definitions ctx.design)

let check_keywords info ctx =
  List.concat_map
    (fun c ->
       let tn = Cell.type_name c in
       List.concat_map
         (fun (ns, names) ->
            List.filter_map
              (fun name ->
                 let styles =
                   List.filter
                     (fun style -> Ident.is_reserved style name)
                     [ Ident.Vhdl; Ident.Verilog ]
                 in
                 match styles with
                 | [] -> None
                 | _ ->
                   Some
                     (diag info
                        ~cells:[ Cell.path c ]
                        (Printf.sprintf
                           "%s name %s of %s is a reserved word in %s; the netlister will rename it"
                           ns name tn
                           (String.concat ", " (List.map style_name styles)))))
              names)
         (namespaces_of ctx.design c))
    (definitions ctx.design)

(* ------------------------------------------------------------------ *)
(* L4xx — placement legality over accumulated RLOCs.                   *)

let resource_name = function
  | Placer.Lut_site -> "LUT site"
  | Placer.Ff_site -> "FF site"
  | Placer.Carry_site -> "carry site"

(* Placement checks only apply to fully-placed designs (what
   {!Placer.auto_place} produces). Hand-placed macros carry RLOCs that
   are relative to their own frame; until every area-consuming primitive
   has a position, the accumulated coordinates of independent macros are
   not comparable and overlap reports would be noise. *)
let placement_of ctx =
  let positions = Placer.positions_of ctx.design in
  let area =
    List.filter
      (fun c -> Option.bind (Cell.prim_of c) Placer.resource_of <> None)
      (Design.all_prims ctx.design)
  in
  if List.exists (fun c -> not (Hashtbl.mem positions c.cell_id)) area then []
  else
    List.filter_map
      (fun c ->
         match Hashtbl.find_opt positions c.cell_id with
         | None -> None
         | Some (row, col) ->
           (match Option.bind (Cell.prim_of c) Placer.resource_of with
            | None -> None
            | Some resource -> Some (c, resource, row, col)))
      area

let check_overlaps info ctx =
  let by_site = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (c, resource, row, col) ->
       (* A Virtex carry site stacks two of each carry primitive kind per
          slice (two Muxcy, two Xorcy, two Mult_and), so carry cells are
          counted per kind rather than pooled across the site. *)
       let kind =
         match resource with
         | Placer.Carry_site ->
           (match Cell.prim_of c with Some p -> Prim.name p | None -> "")
         | _ -> ""
       in
       let k = (resource, kind, row, col) in
       match Hashtbl.find_opt by_site k with
       | None ->
         Hashtbl.replace by_site k [ c ];
         order := k :: !order
       | Some cells -> Hashtbl.replace by_site k (c :: cells))
    (placement_of ctx);
  List.filter_map
    (fun ((resource, _, row, col) as k) ->
       match Hashtbl.find_opt by_site k with
       | Some cells when List.length cells > 2 ->
         let cells = List.rev_map Cell.path cells in
         Some
           (diag info ~cells
              (Printf.sprintf
                 "%d cells share %s (%d,%d), capacity 2: %s"
                 (List.length cells) (resource_name resource) row col
                 (ellipsis 4 cells)))
       | Some _ | None -> None)
    (List.rev !order)

let check_bounds info ctx =
  List.filter_map
    (fun (c, _, row, col) ->
       let out =
         row < 0 || col < 0
         ||
         match ctx.cfg.grid with
         | Some (rows, cols) -> row >= rows || col >= cols
         | None -> false
       in
       if out then
         Some
           (diag info
              ~cells:[ Cell.path c ]
              (Printf.sprintf "%s placed at (%d,%d), outside %s" (Cell.path c)
                 row col
                 (match ctx.cfg.grid with
                  | Some (rows, cols) ->
                    Printf.sprintf "the %dx%d grid" rows cols
                  | None -> "the non-negative quadrant")))
       else None)
    (placement_of ctx)

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

type rule = {
  info : rule_info;
  check : rule_info -> ctx -> diagnostic list;
}

let rule id name default_severity doc check =
  { info = { id; name; default_severity; doc }; check }

let registry =
  [ rule "L001" "multi-driven-net" Error
      "A net with more than one driving source (contention)."
      check_contended;
    rule "L002" "undriven-net" Error
      "A net with sinks but no driver and no top-level input binding."
      check_undriven;
    rule "L003" "dangling-driver" Warning
      "A driven net that nothing reads and no output port exposes."
      check_dangling;
    rule "L004" "port-wire-not-root" Error
      "A top-level port bound to a wire the root cell does not own."
      check_port_wire;
    rule "L005" "combinational-loop" Error
      "A cycle through combinational logic (canonical cell set, shared \
       with the simulators and the timing estimator)."
      check_comb_loop;
    rule "L006" "stuck-at-net" Warning
      "A sequential element whose output is provably constant (constant \
       propagation)."
      check_stuck;
    rule "L007" "constant-lut" Warning
      "A LUT whose output is provably constant and can be folded."
      check_const_lut;
    rule "L008" "dead-logic" Warning
      "Primitives outside the input cone of every design output."
      check_dead_logic;
    rule "L101" "gated-clock" Error
      "A sequential clock pin driven by logic rather than a clock buffer \
       or top-level input."
      check_gated_clock;
    rule "L102" "multiple-clock-roots" Warning
      "More than one distinct clock root drives sequential logic."
      check_clock_roots;
    rule "L103" "clock-as-data" Warning
      "A clock root that also feeds non-clock pins."
      check_clock_as_data;
    rule "L201" "port-signature-mismatch" Warning
      "Composite instances sharing a definition name with differing port \
       signatures (the netlisters flatten, so this is hygiene, not an \
       export error)."
      check_signatures;
    rule "L202" "floating-input" Info
      "Pin-level detail for undriven nets: the input terminals left \
       floating."
      check_floating_inputs;
    rule "L203" "high-fanout" Warning
      "A non-clock, non-constant net whose fanout exceeds the configured \
       threshold."
      check_fanout;
    rule "L301" "identifier-collision" Warning
      "Distinct names in one netlist namespace that sanitize to the same \
       identifier for a target format."
      check_ident_collisions;
    rule "L302" "keyword-identifier" Warning
      "A name that is a reserved word of a target netlist language."
      check_keywords;
    rule "L401" "placement-overlap" Error
      "More cells assigned to one placement site than its capacity \
       (checked only when the design is fully placed; relative macro \
       placement is skipped)."
      check_overlaps;
    rule "L402" "placement-out-of-bounds" Error
      "A placed cell outside the device grid or at negative coordinates \
       (fully-placed designs only)."
      check_bounds ]

let rules = List.map (fun r -> r.info) registry
let find_rule id = List.find_opt (fun (i : rule_info) -> i.id = id) rules

(* ------------------------------------------------------------------ *)
(* Engine.                                                             *)

let run ?(config = default_config) design =
  let ctx = make_ctx config design in
  let enabled r =
    (match config.only with
     | Some ids -> List.mem r.info.id ids
     | None -> true)
    && not (List.mem r.info.id config.disabled)
  in
  let all =
    List.concat_map
      (fun r ->
         if not (enabled r) then []
         else
           let ds = r.check r.info ctx in
           match List.assoc_opt r.info.id config.overrides with
           | None -> ds
           | Some severity -> List.map (fun d -> { d with severity }) ds)
      registry
  in
  let total = List.length all in
  let kept =
    if total <= config.max_diagnostics then all
    else List.filteri (fun i _ -> i < config.max_diagnostics) all
  in
  { design = Design.name design;
    diagnostics = kept;
    dropped = total - List.length kept }

let count (r : report) sev =
  List.length (List.filter (fun d -> d.severity = sev) r.diagnostics)

let errors (r : report) = List.filter (fun d -> d.severity = Error) r.diagnostics

let worst (r : report) =
  List.fold_left
    (fun acc d ->
       match acc with
       | None -> Some d.severity
       | Some w ->
         Some (if compare_severity d.severity w > 0 then d.severity else w))
    None r.diagnostics

let summary (r : report) =
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count r Error)
    (count r Warning) (count r Info)
  ^ (if r.dropped > 0 then Printf.sprintf " (+%d dropped)" r.dropped else "")

let to_text (r : report) =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun d ->
       Buffer.add_string buffer
         (Printf.sprintf "%-7s %s [%s] %s\n"
            (severity_to_string d.severity)
            d.rule_id d.rule_name d.message))
    r.diagnostics;
  Buffer.add_string buffer
    (Printf.sprintf "%s: %s\n" r.design (summary r));
  Buffer.contents buffer

(* minimal JSON string escaping; identifiers here are ASCII *)
let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buffer "\\\""
       | '\\' -> Buffer.add_string buffer "\\\\"
       | '\n' -> Buffer.add_string buffer "\\n"
       | '\t' -> Buffer.add_string buffer "\\t"
       | c when Char.code c < 32 ->
         Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_list items =
  Printf.sprintf "[%s]" (String.concat ", " (List.map json_string items))

(* stable shape: fixed field names and order, one diagnostic per line *)
let to_json (r : report) =
  let buffer = Buffer.create 2048 in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"design\": %s,\n" (json_string r.design));
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"summary\": {\"errors\": %d, \"warnings\": %d, \"info\": %d, \"dropped\": %d},\n"
       (count r Error) (count r Warning) (count r Info) r.dropped);
  Buffer.add_string buffer "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
       if i > 0 then Buffer.add_char buffer ',';
       Buffer.add_string buffer "\n    ";
       Buffer.add_string buffer
         (Printf.sprintf
            "{\"rule\": %s, \"name\": %s, \"severity\": %s, \"message\": %s, \"cells\": %s, \"nets\": %s}"
            (json_string d.rule_id) (json_string d.rule_name)
            (json_string (severity_to_string d.severity))
            (json_string d.message) (json_list d.cells) (json_list d.nets)))
    r.diagnostics;
  if r.diagnostics <> [] then Buffer.add_string buffer "\n  ";
  Buffer.add_string buffer "]\n}\n";
  Buffer.contents buffer
