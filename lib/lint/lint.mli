(** Netlist lint engine: rule-based design checks over the open circuit
    data structure.

    The paper's argument is that an open structural API lets arbitrary
    tools be layered over delivered IP; the lint engine is such a tool: a
    registry of identified rules ([L001]...) spanning electrical checks
    (contention, floating nets), dataflow analyses (constant propagation,
    dead logic), clock discipline, netlist-export safety and placement
    legality. Each finding is a structured diagnostic carrying the
    hierarchical instance and net paths involved, renderable as text or
    as stable JSON for CI diffing.

    The classic checks ([L001]-[L005]) share one implementation with
    {!Jhdl_circuit.Design.validate} — the validator stays the circuit
    layer's facade, the lint engine wraps the same violations with rule
    ids, severities and configuration. *)

type severity =
  | Info
  | Warning
  | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val compare_severity : severity -> severity -> int

type diagnostic = {
  rule_id : string;  (** stable id, e.g. ["L001"] *)
  rule_name : string;  (** slug, e.g. ["multi-driven-net"] *)
  severity : severity;  (** after any configured override *)
  message : string;
  cells : string list;  (** hierarchical instance paths involved *)
  nets : string list;  (** net labels, [wire\[bit\]] form *)
}

(** [key d] — a stable suppression key ([rule_id] plus primary location),
    used by baseline files to acknowledge known findings. *)
val key : diagnostic -> string

type rule_info = {
  id : string;
  name : string;
  default_severity : severity;
  doc : string;
}

(** The registry, in id order. *)
val rules : rule_info list

val find_rule : string -> rule_info option

type config = {
  disabled : string list;  (** rule ids to skip *)
  only : string list option;  (** when set, run just these rule ids *)
  overrides : (string * severity) list;  (** per-rule severity override *)
  max_diagnostics : int;  (** cap per run; excess counted, not kept *)
  fanout_threshold : int;  (** [L203] trigger, default 64 *)
  grid : (int * int) option;
      (** (rows, cols) bounds for [L402]; negative coordinates are
          always out of bounds *)
}

val default_config : config

type report = {
  design : string;
  diagnostics : diagnostic list;  (** rule-id order, capped *)
  dropped : int;  (** diagnostics beyond [max_diagnostics] *)
}

val run : ?config:config -> Jhdl_circuit.Design.t -> report

(** [count r sev] — diagnostics of exactly severity [sev]. *)
val count : report -> severity -> int

(** [worst r] — the highest severity present, [None] when clean. *)
val worst : report -> severity option

(** [errors r] — the error-severity diagnostics. *)
val errors : report -> diagnostic list

(** [to_text r] — human-readable rendering, one line per diagnostic plus
    a summary line. *)
val to_text : report -> string

(** [to_json r] — stable machine rendering: field names and ordering are
    fixed, one object per diagnostic per line, suitable for committing
    as a CI baseline. *)
val to_json : report -> string

(** [summary r] — a one-line count summary, e.g.
    ["2 errors, 1 warning, 0 info"]. *)
val summary : report -> string
