open Jhdl_circuit.Types
module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init
module Prim = Jhdl_circuit.Prim
module Design = Jhdl_circuit.Design
module Levelize = Jhdl_circuit.Levelize

type value =
  | Const of Bit.t
  | Varies

let equal_value a b =
  match a, b with
  | Const x, Const y -> Bit.equal x y
  | Varies, Varies -> true
  | Const _, Varies | Varies, Const _ -> false

let pp_value fmt = function
  | Const b -> Format.fprintf fmt "const %a" Bit.pp b
  | Varies -> Format.pp_print_string fmt "varies"

let join a b = if equal_value a b then a else Varies

(* join of an optional contribution: [None] is bottom *)
let join_opt acc = function None -> acc | Some v -> join acc v

type t = {
  values : (int, value) Hashtbl.t; (* net_id -> value; absent = bottom *)
  pinned : (int, unit) Hashtbl.t; (* contended nets, held at Varies *)
}

let net_value t n =
  Option.value (Hashtbl.find_opt t.values n.net_id) ~default:Varies

(* ------------------------------------------------------------------ *)
(* Transfer functions. Each returns [None] (bottom) when a required
   input has not been reached yet; writing only happens on a value, so
   values climb the lattice monotonically and the worklist terminates. *)

let read values (n : net) = Hashtbl.find_opt values n.net_id

let port1 values ports name =
  match List.assoc_opt name ports with
  | Some nets when Array.length nets > 0 -> read values nets.(0)
  | Some _ | None -> None

(* a gating input "can be high" unless it is known constant-zero; an
   unreached gate conservatively can (its contribution may only appear
   later, never disappear, keeping the fixpoint monotone) *)
let can_be_high = function Some (Const Bit.Zero) -> false | Some _ | None -> true
let can_be_low = function Some (Const Bit.One) -> false | Some _ | None -> true

let to_bit = function Const b -> b | Varies -> Bit.X

(* pessimistic evaluation: defined results are independent of every
   input mapped to X, so a [Const] claim holds for all their values *)
let eval_lut init ins =
  if List.exists Option.is_none ins then None
  else
    let vs = List.map Option.get ins in
    let r = Lut_init.eval init (Array.of_list (List.map to_bit vs)) in
    if Bit.is_defined r then Some (Const r)
    else if List.for_all (function Const _ -> true | Varies -> false) vs then
      Some (Const r)
    else Some Varies

let eval_mux sel a b =
  match sel, a, b with
  | None, _, _ | _, None, _ | _, _, None -> None
  | Some (Const Bit.Zero), Some a, _ -> Some a
  | Some (Const Bit.One), _, Some b -> Some b
  | Some sel, Some a, Some b ->
    (match sel, a, b with
     | Const s, Const x, Const y -> Some (Const (Bit.mux ~sel:s x y))
     | Varies, Const x, Const y when Bit.equal x y -> Some (Const x)
     | _, _, _ -> Some Varies)

let eval_xor a b =
  match a, b with
  | None, _ | _, None -> None
  | Some (Const x), Some (Const y) -> Some (Const (Bit.xor x y))
  (* xor with an undefined operand is X whatever the other side does *)
  | Some (Const x), Some Varies | Some Varies, Some (Const x)
    when not (Bit.is_defined x) -> Some (Const Bit.X)
  | Some _, Some _ -> Some Varies

let eval_and a b =
  match a, b with
  | Some (Const Bit.Zero), _ | _, Some (Const Bit.Zero) ->
    Some (Const Bit.Zero)
  | None, _ | _, None -> None
  | Some (Const x), Some (Const y) -> Some (Const (Bit.and_ x y))
  | Some _, Some _ -> Some Varies

(* flip-flop steady-state set: power-on init, plus D whenever the clock
   enable can pass, plus zero whenever a clear/reset can fire *)
let eval_ff values ins ~clock_enable ~async_clear ~sync_reset ~init =
  let d = port1 values ins "D" in
  let ce = if clock_enable then port1 values ins "CE" else Some (Const Bit.One) in
  let clr = if async_clear then port1 values ins "CLR" else Some (Const Bit.Zero) in
  let r = if sync_reset then port1 values ins "R" else Some (Const Bit.Zero) in
  let acc = Const init in
  let acc = if can_be_high clr then join acc (Const Bit.Zero) else acc in
  let acc = if can_be_high r then join acc (Const Bit.Zero) else acc in
  let acc = if can_be_high ce && can_be_low r then join_opt acc d else acc in
  Some acc

(* memory steady-state set: every initialization bit plus the write data
   whenever a write can happen *)
let eval_mem values ins ~write_port ~init =
  let acc = ref None in
  for i = 0 to 15 do
    let b = Const (Bit.of_bool ((init lsr i) land 1 = 1)) in
    acc := Some (match !acc with None -> b | Some a -> join a b)
  done;
  let we = port1 values ins write_port in
  let acc = Option.get !acc in
  if can_be_high we then
    match port1 values ins "D" with
    | None -> Some acc (* D unreached: its contribution arrives later *)
    | Some d -> Some (join acc d)
  else Some acc

(* outputs of one node from current net values; [(port, value)] list
   with unreached outputs omitted *)
let transfer values (s : Levelize.source) =
  let out1 v = match s.out_ports with (p, _) :: _ -> [ (p, v) ] | [] -> [] in
  match s.prim with
  | Prim.Gnd -> [ ("G", Const Bit.Zero) ]
  | Prim.Vcc -> [ ("P", Const Bit.One) ]
  | Prim.Buf ->
    (match port1 values s.in_ports "I" with None -> [] | Some v -> out1 v)
  | Prim.Inv ->
    (match port1 values s.in_ports "I" with
     | None -> []
     | Some (Const b) -> out1 (Const (Bit.not_ b))
     | Some Varies -> out1 Varies)
  | Prim.Lut init ->
    let k = Lut_init.inputs init in
    let ins =
      List.init k (fun i -> port1 values s.in_ports (Printf.sprintf "I%d" i))
    in
    (match eval_lut init ins with None -> [] | Some v -> out1 v)
  | Prim.Muxcy ->
    let v =
      eval_mux (port1 values s.in_ports "S") (port1 values s.in_ports "DI")
        (port1 values s.in_ports "CI")
    in
    (match v with None -> [] | Some v -> out1 v)
  | Prim.Xorcy ->
    (match eval_xor (port1 values s.in_ports "LI") (port1 values s.in_ports "CI")
     with
     | None -> []
     | Some v -> out1 v)
  | Prim.Mult_and ->
    (match eval_and (port1 values s.in_ports "I0") (port1 values s.in_ports "I1")
     with
     | None -> []
     | Some v -> out1 v)
  | Prim.Ff { clock_enable; async_clear; sync_reset; init } ->
    (match eval_ff values s.in_ports ~clock_enable ~async_clear ~sync_reset ~init
     with
     | None -> []
     | Some v -> [ ("Q", v) ])
  | Prim.Srl16 { init } ->
    (match eval_mem values s.in_ports ~write_port:"CE" ~init with
     | None -> []
     | Some v -> [ ("Q", v) ])
  | Prim.Ram16x1 { init } ->
    (match eval_mem values s.in_ports ~write_port:"WE" ~init with
     | None -> []
     | Some v -> [ ("O", v) ])
  | Prim.Black_box _ -> List.map (fun (p, _) -> (p, Varies)) s.out_ports

(* ------------------------------------------------------------------ *)

let analyze design =
  let values = Hashtbl.create 1024 in
  let pinned = Hashtbl.create 16 in
  let sources = Levelize.sources_of_root (Design.root design) in
  (* consumers over every input port: D/CE/R of registers matter to the
     value analysis even though they are not combinational edges *)
  let consumers = Hashtbl.create 1024 in
  List.iter
    (fun s ->
       List.iter
         (fun (_, nets) ->
            Array.iter
              (fun n ->
                 Hashtbl.replace consumers n.net_id
                   (s
                    :: Option.value
                      (Hashtbl.find_opt consumers n.net_id)
                      ~default:[]))
              nets)
         s.Levelize.in_ports)
    sources;
  let input_nets = Hashtbl.create 64 in
  List.iter
    (fun p ->
       if p.Design.port_dir = Input then
         Array.iter
           (fun n -> Hashtbl.replace input_nets n.net_id ())
           p.Design.port_wire.nets)
    (Design.ports design);
  let queue = Queue.create () in
  let queued = Hashtbl.create 256 in
  let enqueue s =
    if not (Hashtbl.mem queued s.Levelize.inst.cell_id) then begin
      Hashtbl.replace queued s.Levelize.inst.cell_id ();
      Queue.add s queue
    end
  in
  let write n v =
    if not (Hashtbl.mem pinned n.net_id) then begin
      let changed =
        match Hashtbl.find_opt values n.net_id with
        | None -> true
        | Some before -> not (equal_value before v)
      in
      if changed then begin
        Hashtbl.replace values n.net_id v;
        List.iter enqueue
          (Option.value (Hashtbl.find_opt consumers n.net_id) ~default:[])
      end
    end
  in
  (* seeds *)
  List.iter
    (fun n ->
       let contended =
         n.extra_drivers <> []
         || (n.driver <> None && Hashtbl.mem input_nets n.net_id)
       in
       if contended then begin
         Hashtbl.replace values n.net_id Varies;
         Hashtbl.replace pinned n.net_id ()
       end
       else if Hashtbl.mem input_nets n.net_id then
         Hashtbl.replace values n.net_id Varies
       else if n.driver = None then
         (* the simulator's default for unwritten nets *)
         Hashtbl.replace values n.net_id (Const Bit.X))
    (Design.all_nets design);
  List.iter enqueue sources;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Hashtbl.remove queued s.Levelize.inst.cell_id;
    List.iter
      (fun (port, v) ->
         match List.assoc_opt port s.Levelize.out_ports with
         | None -> ()
         | Some nets -> Array.iter (fun n -> write n v) nets)
      (transfer values s)
  done;
  { values; pinned }
