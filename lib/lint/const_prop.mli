(** Constant propagation over the netlist by abstract interpretation.

    Net values are abstracted into a three-level lattice over the
    4-valued logic of {!Jhdl_logic.Bit}: bottom (not yet reached),
    [Const b] (the net settles to [b] in every reachable steady state)
    and [Varies] (top). Transfer functions mirror the simulator's
    pessimistic semantics — a [Const] claim is only made when the
    primitive's output is independent of every varying input — so the
    analysis can flag stuck-at nets and foldable LUTs without false
    positives.

    Sequential elements are modelled by joining every value their state
    can take: a flip-flop contributes its power-on [init], its [D] input
    whenever the clock enable can be high, and zero whenever a clear or
    reset can fire; memories contribute their 16 initialization bits plus
    the write data. *)

type value =
  | Const of Jhdl_logic.Bit.t  (** the net always carries this value *)
  | Varies

val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

type t

(** [analyze d] runs the fixpoint over every net of [d]. Top-level input
    nets start at [Varies]; undriven nets at [Const X] (the simulator's
    default); contended nets are pinned to [Varies]. *)
val analyze : Jhdl_circuit.Design.t -> t

(** [net_value t n] — the final abstract value of [n]. Nets the fixpoint
    never reached (members of combinational cycles) conservatively
    report [Varies]. *)
val net_value : t -> Jhdl_circuit.Types.net -> value
