(** Supervised co-simulation sessions on the vendor server.

    The delivery server keeps a registry of live black-box endpoints —
    one per customer co-simulation — and supervises them the way an
    operator would: heartbeat and idle timeouts reap abandoned sessions
    (checkpointing each on the way out), per-user quotas stop one
    customer from monopolizing the simulation farm, and a graceful
    shutdown checkpoints everything that is still alive and reports
    exactly what was preserved.

    Time is the caller's: every operation that ages sessions takes
    [~now] (seconds, any consistent clock), so supervision is
    deterministic in tests and benches. *)

type config = {
  heartbeat_timeout_s : float;
      (** reap a session this long after its last heartbeat; 0 disables *)
  idle_timeout_s : float;
      (** reap a session this long after its last activity; 0 disables *)
  max_sessions_per_user : int;  (** concurrent live sessions per user *)
}

(** [default_config] — 30 s heartbeat timeout, 300 s idle timeout,
    4 sessions per user. *)
val default_config : config

type t

(** Raises [Invalid_argument] when the quota is not positive. A live
    [metrics] registry gains probes over the supervisor's tallies:
    [sessions_live], [sessions_opened_total], [quota_rejections_total],
    [reaped_heartbeat_total], [reaped_idle_total]. *)
val create : ?config:config -> ?metrics:Jhdl_metrics.Metrics.t -> unit -> t

(** A typed refusal: the reason plus, when the server can predict it,
    how long until retrying is worthwhile. *)
type rejection = {
  rej_reason : string;
  rej_retry_after_s : float option;
      (** for quota refusals: seconds until the user's soonest session
          expires on its own ([None] when both timeouts are off) *)
}

(** [open_session t ~user ~now endpoint] — register a live endpoint
    under [user]. Heartbeat- and idle-expired sessions are reaped
    {e before} the quota check (and land in {!reap_report}), so a dead
    session can never block a live user's admission. [Error _] (counted
    in {!stats}) when the user's quota is genuinely full. Returns the
    session key. *)
val open_session :
  t -> user:string -> now:float -> Jhdl_netproto.Endpoint.t ->
  (string, string) result

(** [try_open_session] — {!open_session} with the typed rejection:
    quota refusals carry a [rej_retry_after_s] hint. *)
val try_open_session :
  t -> user:string -> now:float -> Jhdl_netproto.Endpoint.t ->
  (string, rejection) result

(** [heartbeat t ~now key] — the client pinged: refreshes both the
    heartbeat and activity clocks. [Error _] for unknown keys. *)
val heartbeat : t -> now:float -> string -> (unit, string) result

(** [activity t ~now key] — the session did real work (an exchange
    reached its endpoint): refreshes the idle clock only. *)
val activity : t -> now:float -> string -> (unit, string) result

val live_sessions : t -> string list
val endpoint : t -> string -> Jhdl_netproto.Endpoint.t option

type reap_reason =
  | Heartbeat_lost
  | Idle

val reap_reason_name : reap_reason -> string

type reaped = {
  reaped_key : string;
  reason : reap_reason;
  checkpoint : (string, string) result;
      (** the parting snapshot blob, or why none could be taken (e.g.
          the endpoint had crashed) *)
}

(** [tick t ~now] — supervision pass: reap every session whose
    heartbeat or idle clock has expired, checkpointing each. Reaped
    sessions leave the registry. *)
val tick : t -> now:float -> reaped list

(** [reap_report t] — every session ever reaped (by {!tick} or by the
    pre-admission pass inside {!open_session}), oldest first. Together
    with {!shutdown}'s report this accounts for every session that ever
    left the registry — the chaos suite's conservation invariant. *)
val reap_report : t -> reaped list

type shutdown_report = {
  preserved : (string * string) list;  (** (session key, snapshot blob) *)
  lost : (string * string) list;  (** (session key, failure reason) *)
}

(** [shutdown t] — graceful stop: checkpoint every live session and
    empty the registry. The report says exactly what state survived. *)
val shutdown : t -> shutdown_report

type stats = {
  live : int;
  opened : int;  (** sessions ever opened *)
  quota_rejections : int;
  reaped_heartbeat : int;
  reaped_idle : int;
}

val stats : t -> stats
