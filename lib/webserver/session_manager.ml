module Endpoint = Jhdl_netproto.Endpoint
module Metrics = Jhdl_metrics.Metrics

let log_src =
  Logs.Src.create "jhdl.sessions" ~doc:"supervised co-simulation sessions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  heartbeat_timeout_s : float;
  idle_timeout_s : float;
  max_sessions_per_user : int;
}

let default_config =
  { heartbeat_timeout_s = 30.0;
    idle_timeout_s = 300.0;
    max_sessions_per_user = 4 }

type session = {
  key : string;
  user : string;
  endpoint : Endpoint.t;
  opened_at : float;
  mutable last_heartbeat : float;
  mutable last_activity : float;
}

type reap_reason =
  | Heartbeat_lost
  | Idle

let reap_reason_name = function
  | Heartbeat_lost -> "heartbeat lost"
  | Idle -> "idle"

type reaped = {
  reaped_key : string;
  reason : reap_reason;
  checkpoint : (string, string) result;
}

type shutdown_report = {
  preserved : (string * string) list;
  lost : (string * string) list;
}

type stats = {
  live : int;
  opened : int;
  quota_rejections : int;
  reaped_heartbeat : int;
  reaped_idle : int;
}

type rejection = {
  rej_reason : string;
  rej_retry_after_s : float option;
}

type t = {
  config : config;
  mutable sessions : session list; (* open order *)
  mutable next_id : int;
  mutable opened_count : int;
  mutable quota_count : int;
  mutable heartbeat_reaps : int;
  mutable idle_reaps : int;
  mutable reap_log : reaped list; (* newest first *)
}

let create ?(config = default_config) ?(metrics = Metrics.nil) () =
  if config.max_sessions_per_user < 1 then
    invalid_arg "Session_manager.create: max_sessions_per_user must be positive";
  let t =
    { config;
      sessions = [];
      next_id = 1;
      opened_count = 0;
      quota_count = 0;
      heartbeat_reaps = 0;
      idle_reaps = 0;
      reap_log = [] }
  in
  (* the supervisor already tracks everything worth exporting in its own
     mutable fields; sample them as probes *)
  Metrics.probe metrics "sessions_live" (fun () -> List.length t.sessions);
  Metrics.probe metrics "sessions_opened_total" (fun () -> t.opened_count);
  Metrics.probe metrics "quota_rejections_total" (fun () -> t.quota_count);
  Metrics.probe metrics "reaped_heartbeat_total" (fun () -> t.heartbeat_reaps);
  Metrics.probe metrics "reaped_idle_total" (fun () -> t.idle_reaps);
  t

let user_load t user =
  List.length (List.filter (fun s -> String.equal s.user user) t.sessions)

let find t key =
  List.find_opt (fun s -> String.equal s.key key) t.sessions

let heartbeat t ~now key =
  match find t key with
  | None -> Error (Printf.sprintf "no session %s" key)
  | Some s ->
    s.last_heartbeat <- now;
    s.last_activity <- now;
    Ok ()

let activity t ~now key =
  match find t key with
  | None -> Error (Printf.sprintf "no session %s" key)
  | Some s ->
    s.last_activity <- now;
    Ok ()

let live_sessions t = List.map (fun s -> s.key) t.sessions
let endpoint t key = Option.map (fun s -> s.endpoint) (find t key)

(* Checkpoint a session on its way out. A crashed endpoint has no live
   simulator to snapshot; its durable journal may still allow a restart
   later, but the supervisor can preserve nothing here. *)
let final_checkpoint s =
  if Endpoint.is_alive s.endpoint then Endpoint.snapshot s.endpoint
  else Error "endpoint crashed; nothing live to checkpoint"

let expiry t ~now s =
  if
    t.config.heartbeat_timeout_s > 0.0
    && now -. s.last_heartbeat > t.config.heartbeat_timeout_s
  then Some Heartbeat_lost
  else if
    t.config.idle_timeout_s > 0.0
    && now -. s.last_activity > t.config.idle_timeout_s
  then Some Idle
  else None

(* one supervision pass: reap everything expired, checkpointing each on
   the way out and appending to the durable reap log (the chaos
   invariants audit it — a session may never vanish unreported) *)
let reap_expired t ~now =
  let expired, live =
    List.partition (fun s -> expiry t ~now s <> None) t.sessions
  in
  t.sessions <- live;
  let reaped =
    List.map
      (fun s ->
         let reason =
           match expiry t ~now s with Some r -> r | None -> assert false
         in
         (match reason with
          | Heartbeat_lost -> t.heartbeat_reaps <- t.heartbeat_reaps + 1
          | Idle -> t.idle_reaps <- t.idle_reaps + 1);
         Log.info (fun m -> m "reaped %s (%s)" s.key (reap_reason_name reason));
         { reaped_key = s.key; reason; checkpoint = final_checkpoint s })
      expired
  in
  t.reap_log <- List.rev_append reaped t.reap_log;
  reaped

let tick t ~now = reap_expired t ~now

let reap_report t = List.rev t.reap_log

let try_open_session t ~user ~now endpoint =
  (* reap first: a dead session must never hold a live user's quota
     slot — expired peers free their slots before the check *)
  let _ = reap_expired t ~now in
  if user_load t user >= t.config.max_sessions_per_user then begin
    t.quota_count <- t.quota_count + 1;
    Log.warn (fun m ->
      m "refused session for %s: quota of %d reached" user
        t.config.max_sessions_per_user);
    (* the soonest this user's slot can free up without traffic: the
       earliest heartbeat or idle expiry among their live sessions *)
    let expiry_at s =
      let hb =
        if t.config.heartbeat_timeout_s > 0.0 then
          Some (s.last_heartbeat +. t.config.heartbeat_timeout_s)
        else None
      in
      let idle =
        if t.config.idle_timeout_s > 0.0 then
          Some (s.last_activity +. t.config.idle_timeout_s)
        else None
      in
      match (hb, idle) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as x), None | None, (Some _ as x) -> x
      | None, None -> None
    in
    let retry_after =
      List.fold_left
        (fun acc s ->
           if not (String.equal s.user user) then acc
           else
             match (expiry_at s, acc) with
             | Some e, Some best -> Some (Float.min e best)
             | (Some _ as x), None -> x
             | None, acc -> acc)
        None t.sessions
      |> Option.map (fun e -> Float.max 0.0 (e -. now))
    in
    Error
      { rej_reason =
          Printf.sprintf "quota: %s already has %d live session(s)" user
            t.config.max_sessions_per_user;
        rej_retry_after_s = retry_after }
  end
  else begin
    let key =
      Printf.sprintf "%s/%s#%d" user (Endpoint.name endpoint) t.next_id
    in
    t.next_id <- t.next_id + 1;
    t.opened_count <- t.opened_count + 1;
    t.sessions <-
      t.sessions
      @ [ { key; user; endpoint; opened_at = now; last_heartbeat = now;
            last_activity = now } ];
    Log.info (fun m -> m "opened %s" key);
    Ok key
  end

let open_session t ~user ~now endpoint =
  Result.map_error
    (fun r -> r.rej_reason)
    (try_open_session t ~user ~now endpoint)

let shutdown t =
  let preserved, lost =
    List.fold_left
      (fun (preserved, lost) s ->
         match final_checkpoint s with
         | Ok blob -> ((s.key, blob) :: preserved, lost)
         | Error reason -> (preserved, (s.key, reason) :: lost))
      ([], []) t.sessions
  in
  t.sessions <- [];
  let report = { preserved = List.rev preserved; lost = List.rev lost } in
  Log.info (fun m ->
    m "shutdown: %d session(s) preserved, %d lost"
      (List.length report.preserved) (List.length report.lost));
  report

let stats t =
  { live = List.length t.sessions;
    opened = t.opened_count;
    quota_rejections = t.quota_count;
    reaped_heartbeat = t.heartbeat_reaps;
    reaped_idle = t.idle_reaps }
