module Applet = Jhdl_applet.Applet
module Ip_module = Jhdl_applet.Ip_module
module License = Jhdl_applet.License
module Feature = Jhdl_applet.Feature
module Partition = Jhdl_bundle.Partition
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download
module Lint = Jhdl_lint.Lint
module Metrics = Jhdl_metrics.Metrics
module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker

let log_src = Logs.Src.create "jhdl.webserver" ~doc:"IP delivery server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type entry = {
  ip : Ip_module.t;
  mutable version : int;
}

type account = {
  tier : License.tier;
  (* browser cache: bounded LRU of (component, version downloaded),
     most recently used first *)
  mutable cache : (Partition.component * int) list;
}

(* request-path instruments; nil unless [create] got a live registry *)
type server_metrics = {
  sm_requests : Metrics.counter;
  sm_request_failures : Metrics.counter;
  sm_cache_hits : Metrics.counter;
  sm_cache_misses : Metrics.counter;
  sm_download_ms : Metrics.histogram; (* per-request download time *)
  sm_download : Download.metrics; (* jar-level counters, same registry *)
}

type t = {
  vendor : string;
  cache_cap : int;
  mutable entries : (string * entry) list;
  accounts : (string, account) Hashtbl.t;
  (* component versions: base libraries move slowly, applet jars bump
     with each publication *)
  component_versions : (Partition.component, int) Hashtbl.t;
  mutable evictions : int;
  mutable log : string list; (* newest first *)
  breaker : Breaker.t option; (* guards the jar download path *)
  sm : server_metrics;
}

let create ~vendor ?cache_cap ?breaker ?(metrics = Metrics.nil) () =
  let cache_cap =
    match cache_cap with
    | None -> List.length Partition.all_components
    | Some cap when cap >= 1 -> cap
    | Some cap ->
      invalid_arg
        (Printf.sprintf "Server.create: cache_cap %d must be positive" cap)
  in
  let component_versions = Hashtbl.create 4 in
  List.iter
    (fun c -> Hashtbl.replace component_versions c 1)
    Partition.all_components;
  let sm =
    { sm_requests = Metrics.counter metrics "requests_total";
      sm_request_failures = Metrics.counter metrics "request_failures_total";
      sm_cache_hits = Metrics.counter metrics "cache_hits_total";
      sm_cache_misses = Metrics.counter metrics "cache_misses_total";
      sm_download_ms = Metrics.histogram metrics "download_ms";
      sm_download = Download.metrics metrics }
  in
  let server =
    { vendor; cache_cap; entries = []; accounts = Hashtbl.create 8;
      component_versions; evictions = 0; log = []; breaker; sm }
  in
  Metrics.probe metrics "cache_evictions_total" (fun () -> server.evictions);
  Metrics.probe metrics "catalog_entries" (fun () ->
      List.length server.entries);
  server

let cache_evictions server = server.evictions

let publish_unchecked server ip =
  let name = ip.Ip_module.ip_name in
  match List.assoc_opt name server.entries with
  | Some entry ->
    entry.version <- entry.version + 1;
    Hashtbl.replace server.component_versions Partition.Applet
      (1 + Hashtbl.find server.component_versions Partition.Applet);
    Log.info (fun m -> m "republished %s as v%d" name entry.version);
    entry.version
  | None ->
    server.entries <- server.entries @ [ (name, { ip; version = 1 }) ];
    1

(* publication gate: a module whose default elaboration carries
   error-severity lint findings never reaches the catalog *)
let publish_checked server ip =
  let report =
    match ip.Ip_module.build (Ip_module.defaults ip) with
    | built -> Ok (Lint.run built.Ip_module.design)
    | exception e ->
      Error
        (Printf.sprintf "%s failed to elaborate: %s" ip.Ip_module.ip_name
           (Printexc.to_string e))
  in
  match report with
  | Error message -> Error message
  | Ok report ->
    (match Lint.errors report with
     | [] -> Ok (publish_unchecked server ip)
     | first :: _ as errors ->
       Log.warn (fun m ->
         m "refused %s: %d lint error(s)" ip.Ip_module.ip_name
           (List.length errors));
       Error
         (Printf.sprintf "%s refused: %d lint error(s), first %s: %s"
            ip.Ip_module.ip_name (List.length errors) first.Lint.rule_id
            first.Lint.message))

let publish server ip =
  match publish_checked server ip with
  | Ok version -> version
  | Error message -> invalid_arg ("publish: " ^ message)

let catalog server =
  List.map (fun (name, e) -> (name, e.version)) server.entries

let register_user server ~user ~tier =
  let account =
    match Hashtbl.find_opt server.accounts user with
    | Some account -> { account with tier }
    | None -> { tier; cache = [] }
  in
  Hashtbl.replace server.accounts user account

(* Move [component] to the front of the account's LRU at [version] and
   trim past the cap; trimmed components must be transferred again next
   time they are needed. Returns the components trimmed out. *)
let cache_touch server account component version =
  let cache =
    (component, version) :: List.remove_assoc component account.cache
  in
  let rec split n = function
    | [] -> ([], [])
    | entry :: rest when n > 0 ->
      let keep, drop = split (n - 1) rest in
      (entry :: keep, drop)
    | overflow -> ([], overflow)
  in
  let keep, drop = split server.cache_cap cache in
  account.cache <- keep;
  server.evictions <- server.evictions + List.length drop;
  List.map fst drop

type session = {
  applet : Applet.t;
  version : int;
  jars : Jar.t list;
  fetched : Jar.t list;
  failed : Jar.t list;
  unavailable : Feature.t list;
  evicted : Partition.component list;
  fetch_attempts : int;
  download_seconds : float;
}

(* no applet can run at all without the core classes, the technology
   library and the applet glue *)
let essential_components = [ Partition.Base; Partition.Virtex; Partition.Applet ]

let component_of_jar jar =
  List.find_opt
    (fun c -> (Partition.jar_of c).Jar.jar_name = jar.Jar.jar_name)
    Partition.all_components

let request_inner server ?(stale_ok = false) ~user ~ip_name ~link ?faults
    ?policy () =
  match Hashtbl.find_opt server.accounts user with
  | None -> Error (Printf.sprintf "unknown user %s" user)
  | Some account ->
    (match List.assoc_opt ip_name server.entries with
     | None -> Error (Printf.sprintf "no IP named %s on this server" ip_name)
     | Some entry ->
       let license = License.of_tier account.tier in
       let applet =
         Applet.create ~ip:entry.ip ~license ~user ()
       in
       let components = Applet.jar_components applet in
       let jars = Partition.jars_for components in
       let evicted = ref [] in
       let fetched_components =
         List.filter
           (fun component ->
              let current = Hashtbl.find server.component_versions component in
              (* under the serve-stale brownout rung, any cached version
                 answers the request — the customer gets a possibly
                 outdated jar instantly instead of queueing on a
                 saturated download path *)
              let miss, record_version =
                match List.assoc_opt component account.cache with
                | Some cached when cached = current -> (false, current)
                | Some cached when stale_ok -> (false, cached)
                | Some _ | None -> (true, current)
              in
              Metrics.incr
                (if miss then server.sm.sm_cache_misses
                 else server.sm.sm_cache_hits);
              (* hits refresh recency (stale hits keep their stale
                 version, so full service refetches later); misses enter
                 at the front, and a full cache drops its least recently
                 used entry *)
              evicted :=
                !evicted @ cache_touch server account component record_version;
              miss)
           components
       in
       let fetched = Partition.jars_for fetched_components in
       let fetches =
         Download.fetch_jars ?faults ?policy ~metrics:server.sm.sm_download
           link fetched
       in
       let failed = Download.fetch_failures fetches in
       let failed_components = List.filter_map component_of_jar failed in
       (* a failed transfer must not poison the cache: the revisit
          re-fetches the component instead of assuming it is present *)
       account.cache <-
         List.filter
           (fun (c, _) -> not (List.mem c failed_components))
           account.cache;
       let download_seconds = Download.fetch_total_seconds fetches in
       let fetch_attempts = Download.fetch_attempts fetches in
       Metrics.observe server.sm.sm_download_ms
         (int_of_float (download_seconds *. 1e3));
       if List.exists (fun c -> List.mem c essential_components) failed_components
       then
         Error
           (Printf.sprintf "download failed for %s: %s did not arrive"
              ip_name
              (String.concat ", " (List.map (fun j -> j.Jar.jar_name) failed)))
       else begin
         (* the page still loads: tools whose jars never arrived are
            greyed out, everything else works *)
         let unavailable =
           List.filter
             (fun feature ->
                List.exists
                  (fun c -> List.mem c failed_components)
                  (Feature.components [ feature ]))
             (Applet.features applet)
         in
         Log.info (fun m ->
           m "GET /applets/%s for %s (%s)" ip_name user
             (License.tier_name account.tier));
         server.log <-
           Printf.sprintf "%s GET /applets/%s v%d (%s license, %d jar(s), %.1f s)"
             user ip_name entry.version
             (License.tier_name account.tier)
             (List.length fetched) download_seconds
           :: server.log;
         Ok
           { applet; version = entry.version; jars; fetched; failed;
             unavailable; evicted = !evicted; fetch_attempts;
             download_seconds }
       end)

let request server ~user ~ip_name ~link ?faults ?policy () =
  Metrics.incr server.sm.sm_requests;
  let result = request_inner server ~user ~ip_name ~link ?faults ?policy () in
  (match result with
   | Error _ -> Metrics.incr server.sm.sm_request_failures
   | Ok _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* overload-aware request path                                         *)
(* ------------------------------------------------------------------ *)

type rejection = {
  rej_reason : string;
  rej_retry_after_s : float option;
  rej_shed : Admission.shed_reason option;
}

let breaker server = server.breaker

let reject ?(count = true) server ?retry_after_s ?shed reason =
  if count then Metrics.incr server.sm.sm_request_failures;
  Error
    { rej_reason = reason;
      rej_retry_after_s = retry_after_s;
      rej_shed = shed }

(* The post-admission service path, shared by the synchronous front
   door ({!user_request}) and the queued dispatcher
   ({!serve_admitted}). [adm_ticket] is an already-admitted ticket
   whose accounting this function closes (complete, or give up as
   [Breaker_open] when the circuit refuses the call). *)
let serve_with server ?adm_ticket ~now ~user ~ip_name ~link ?faults ?policy
    () =
  let stale_ok =
    match adm_ticket with
    | Some (adm, _) -> Admission.brownout adm = Admission.Serve_stale
    | None -> false
  in
  (* the breaker guards the whole download path: while open, the
     request fails fast without touching the link *)
  match server.breaker with
  | Some b when not (Breaker.allow b ~now) ->
    (match adm_ticket with
     | Some (adm, tk) ->
       Admission.give_up adm ~now tk Admission.Breaker_open
         ?retry_after_s:(Breaker.retry_after_s b ~now) ()
     | None -> ());
    reject server ?retry_after_s:(Breaker.retry_after_s b ~now)
      ~shed:Admission.Breaker_open
      (Printf.sprintf "downloads suspended (circuit %s open)"
         (Breaker.name b))
  | _ ->
    let result =
      request_inner server ~stale_ok ~user ~ip_name ~link ?faults ?policy ()
    in
    (match adm_ticket with
     | Some (adm, tk) -> Admission.complete adm ~now tk
     | None -> ());
    (match result with
     | Ok session ->
       (match server.breaker with
        | Some b ->
          (* lost optional jars already degrade the page; only a
             failed page (essential loss) trips the breaker *)
          Breaker.on_success b ~now
        | None -> ());
       Ok session
     | Error reason ->
       (match server.breaker with
        | Some b -> Breaker.on_failure b ~now
        | None -> ());
       reject server reason)

let user_request server ?admission ~now ~user ~ip_name ~link ?deadline_s
    ?faults ?policy () =
  Metrics.incr server.sm.sm_requests;
  match Hashtbl.find_opt server.accounts user with
  | None -> reject server (Printf.sprintf "unknown user %s" user)
  | Some account ->
    let tier = account.tier in
    (* admission first: shedding must cost nothing downstream *)
    (match admission with
     | None -> serve_with server ~now ~user ~ip_name ~link ?faults ?policy ()
     | Some adm ->
       (match
          Admission.admit_now adm ~now ~cls:Admission.Jar_download ~tier
            ~user ?deadline_s ()
        with
        | Error shed ->
          reject server ?retry_after_s:shed.Admission.retry_after_s
            ~shed:shed.Admission.shed_reason
            (Printf.sprintf "overload: request shed (%s)"
               (Admission.shed_reason_name shed.Admission.shed_reason))
        | Ok ticket ->
          serve_with server ~adm_ticket:(adm, ticket) ~now ~user ~ip_name
            ~link ?faults ?policy ()))

let serve_admitted server ~admission ~ticket ~now ~ip_name ~link ?faults
    ?policy () =
  Metrics.incr server.sm.sm_requests;
  let user = ticket.Admission.user in
  match Hashtbl.find_opt server.accounts user with
  | None ->
    Admission.complete admission ~now ticket;
    reject server (Printf.sprintf "unknown user %s" user)
  | Some _ ->
    serve_with server ~adm_ticket:(admission, ticket) ~now ~user ~ip_name
      ~link ?faults ?policy ()

let access_log server = List.rev server.log

let server_secret server = "vendor-secret/" ^ server.vendor

let user_token server ~user =
  if Hashtbl.mem server.accounts user then
    Some
      (Secure_channel.issue_token ~server_secret:(server_secret server) ~user)
  else None

let secure_request server ~user ~ip_name ~link ?faults ?policy () =
  match request server ~user ~ip_name ~link ?faults ?policy () with
  | Error message -> Error message
  | Ok session ->
    (match user_token server ~user with
     | None ->
       (* this denial used to skip the failure counter *)
       Metrics.incr server.sm.sm_request_failures;
       Error (Printf.sprintf "no token for %s" user)
     | Some token ->
       (* only what actually arrived gets sealed and handed over *)
       let delivered =
         List.filter
           (fun jar ->
              not
                (List.exists
                   (fun f -> f.Jar.jar_name = jar.Jar.jar_name)
                   session.failed))
           session.fetched
       in
       let sealed = List.map (Secure_channel.seal ~token) delivered in
       Ok (session, sealed))

(* Canonical rendering of every piece of durable server state. The
   atomic-admission property pins it: a shed or expired request must
   leave the digest byte-identical to never having arrived. Accounts
   are sorted by user so the hashtable's iteration order cannot leak
   into the digest. *)
let state_digest server =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("vendor " ^ server.vendor ^ "\n");
  List.iter
    (fun (name, (e : entry)) ->
       Buffer.add_string buf (Printf.sprintf "catalog %s v%d\n" name e.version))
    server.entries;
  List.iter
    (fun c ->
       Buffer.add_string buf
         (Printf.sprintf "component %s v%d\n" (Partition.component_name c)
            (Hashtbl.find server.component_versions c)))
    Partition.all_components;
  let accounts =
    Hashtbl.fold (fun user account acc -> (user, account) :: acc)
      server.accounts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (user, account) ->
       Buffer.add_string buf
         (Printf.sprintf "account %s %s cache=[%s]\n" user
            (License.tier_name account.tier)
            (String.concat "; "
               (List.map
                  (fun (c, v) ->
                     Printf.sprintf "%s v%d" (Partition.component_name c) v)
                  account.cache))))
    accounts;
  Buffer.add_string buf (Printf.sprintf "evictions %d\n" server.evictions);
  List.iter
    (fun line -> Buffer.add_string buf ("log " ^ line ^ "\n"))
    (List.rev server.log);
  Buffer.contents buf
