module Applet = Jhdl_applet.Applet
module Ip_module = Jhdl_applet.Ip_module
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Feature = Jhdl_applet.Feature
module Partition = Jhdl_bundle.Partition
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download
module Lint = Jhdl_lint.Lint
module Metrics = Jhdl_metrics.Metrics
module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker
module Store = Jhdl_cache.Store
module Delivery = Jhdl_cache.Delivery
module Snapshot = Jhdl_sim.Snapshot
module Edif = Jhdl_netlist.Edif

let log_src = Logs.Src.create "jhdl.webserver" ~doc:"IP delivery server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type entry = {
  ip : Ip_module.t;
  mutable version : int;
}

type account = {
  tier : License.tier;
  (* browser cache: a bounded LRU store of downloaded component
     versions, keyed by component name *)
  cache : int Store.t;
}

(* request-path instruments; nil unless [create] got a live registry *)
type server_metrics = {
  sm_requests : Metrics.counter;
  sm_request_failures : Metrics.counter;
  sm_cache_hits : Metrics.counter;
  sm_cache_misses : Metrics.counter;
  sm_cache_evictions : Metrics.counter;
      (* browser-cache LRU drops, across every account *)
  sm_download_ms : Metrics.histogram; (* per-request download time *)
  sm_download : Download.metrics; (* jar-level counters, same registry *)
}

type t = {
  vendor : string;
  cache_cap : int;
  mutable entries : (string * entry) list;
  accounts : (string, account) Hashtbl.t;
  (* component versions: base libraries move slowly, applet jars bump
     with each publication *)
  component_versions : (Partition.component, int) Hashtbl.t;
  (* the content-addressed delivery cache: elaborated designs, lint
     verdicts, exported netlists and jar bundles *)
  delivery : Ip_module.built Delivery.t;
  mutable log : string list; (* newest first *)
  breaker : Breaker.t option; (* guards the jar download path *)
  sm : server_metrics;
}

let create ~vendor ?cache_cap ?(delivery_cap = 256)
    ?(delivery_bytes = 64 * 1024 * 1024) ?breaker ?(metrics = Metrics.nil) ()
    =
  let cache_cap =
    match cache_cap with
    | None -> List.length Partition.all_components
    | Some cap when cap >= 1 -> cap
    | Some cap ->
      invalid_arg
        (Printf.sprintf "Server.create: cache_cap %d must be positive" cap)
  in
  let component_versions = Hashtbl.create 4 in
  List.iter
    (fun c -> Hashtbl.replace component_versions c 1)
    Partition.all_components;
  let sm =
    { sm_requests = Metrics.counter metrics "requests_total";
      sm_request_failures = Metrics.counter metrics "request_failures_total";
      sm_cache_hits = Metrics.counter metrics "cache_hits_total";
      sm_cache_misses = Metrics.counter metrics "cache_misses_total";
      sm_cache_evictions = Metrics.counter metrics "cache_evictions_total";
      sm_download_ms = Metrics.histogram metrics "download_ms";
      sm_download = Download.metrics metrics }
  in
  let delivery =
    Delivery.create ~metrics ~name:"delivery" ~cap_entries:delivery_cap
      ~cap_bytes:delivery_bytes ()
  in
  let server =
    { vendor; cache_cap; entries = []; accounts = Hashtbl.create 8;
      component_versions; delivery; log = []; breaker; sm }
  in
  Metrics.probe metrics "catalog_entries" (fun () ->
      List.length server.entries);
  server

let cache_evictions server = Metrics.count server.sm.sm_cache_evictions

let delivery_cache server = server.delivery

let publish_unchecked server ip =
  let name = ip.Ip_module.ip_name in
  match List.assoc_opt name server.entries with
  | Some entry ->
    entry.version <- entry.version + 1;
    Hashtbl.replace server.component_versions Partition.Applet
      (1 + Hashtbl.find server.component_versions Partition.Applet);
    Log.info (fun m -> m "republished %s as v%d" name entry.version);
    entry.version
  | None ->
    server.entries <- server.entries @ [ (name, { ip; version = 1 }) ];
    1

(* publication gate: a module whose default elaboration carries
   error-severity lint findings never reaches the catalog. The verdict
   is content-addressed through the delivery cache, so republishing an
   unchanged generator (or publishing one a catalog listing already
   linted) skips re-elaboration. *)
let publish_checked server ?(now = 0.) ip =
  match Catalog.lint_verdict ~cache:server.delivery.Delivery.verdicts ~now ip with
  | Error e -> Error (Catalog.elaboration_error_to_string e)
  | Ok report ->
    (match Lint.errors report with
     | [] -> Ok (publish_unchecked server ip)
     | first :: _ as errors ->
       Log.warn (fun m ->
         m "refused %s: %d lint error(s)" ip.Ip_module.ip_name
           (List.length errors));
       Error
         (Printf.sprintf "%s refused: %d lint error(s), first %s: %s"
            ip.Ip_module.ip_name (List.length errors) first.Lint.rule_id
            first.Lint.message))

let publish server ip =
  match publish_checked server ip with
  | Ok version -> version
  | Error message -> invalid_arg ("publish: " ^ message)

let catalog server =
  List.map (fun (name, e) -> (name, e.version)) server.entries

let register_user server ~user ~tier =
  let account =
    match Hashtbl.find_opt server.accounts user with
    | Some account -> { account with tier }
    | None ->
      { tier;
        (* per-account browser cache; the shared server-level counters
           do the metric accounting, so the store itself stays
           unregistered *)
        cache =
          Store.create ~cap_entries:server.cache_cap ~cap_bytes:max_int () }
  in
  Hashtbl.replace server.accounts user account

let component_descriptor = Partition.component_name

let component_of_name name =
  List.find
    (fun c -> String.equal (Partition.component_name c) name)
    Partition.all_components

type session = {
  applet : Applet.t;
  version : int;
  jars : Jar.t list;
  fetched : Jar.t list;
  failed : Jar.t list;
  unavailable : Feature.t list;
  evicted : Partition.component list;
  elaborated : (Ip_module.built * string) option;
      (* server-side build + EDIF export, when the request carried
         parameters; both served from the delivery cache *)
  fetch_attempts : int;
  download_seconds : float;
}

(* no applet can run at all without the core classes, the technology
   library and the applet glue *)
let essential_components = [ Partition.Base; Partition.Virtex; Partition.Applet ]

let component_of_jar jar =
  List.find_opt
    (fun c -> (Partition.jar_of c).Jar.jar_name = jar.Jar.jar_name)
    Partition.all_components

(* parse and validate form-field parameter strings against the IP's
   schema; the result is the complete canonical assignment [build]
   expects *)
let parse_params ip fields =
  let rec go acc = function
    | [] -> Ip_module.validate ip (List.rev acc)
    | (pname, text) :: rest ->
      (match List.assoc_opt pname ip.Ip_module.params with
       | None -> Error (Printf.sprintf "unknown parameter %s" pname)
       | Some kind ->
         (match Ip_module.parse_param kind text with
          | Error message -> Error (Printf.sprintf "%s: %s" pname message)
          | Ok value -> go ((pname, value) :: acc) rest))
  in
  go [] fields

(* server-side elaboration of a parameterized request: the built module
   and its EDIF export are both content-addressed by the generator
   invocation, so repeat requests at the same parameter point skip
   elaboration and export entirely *)
let elaborate_cached server ~now entry assignment =
  let descriptor =
    Delivery.generator_descriptor ~generator:entry.ip.Ip_module.ip_name
      ~params:
        (List.map
           (fun (k, v) -> (k, Ip_module.param_to_string v))
           assignment)
  in
  let built =
    Store.find_or_add server.delivery.Delivery.designs ~now ~descriptor
      ~bytes:(fun b -> String.length (Snapshot.descriptor b.Ip_module.design))
      (fun () -> entry.ip.Ip_module.build assignment)
  in
  let netlist =
    Delivery.netlist_keyed server.delivery ~now ~kind:"edif" ~descriptor
      (fun () -> Edif.of_design built.Ip_module.design)
  in
  (built, netlist)

let request_inner server ?(stale_ok = false) ?(now = 0.) ?params ~user
    ~ip_name ~link ?faults ?policy () =
  match Hashtbl.find_opt server.accounts user with
  | None -> Error (Printf.sprintf "unknown user %s" user)
  | Some account ->
    (match List.assoc_opt ip_name server.entries with
     | None -> Error (Printf.sprintf "no IP named %s on this server" ip_name)
     | Some entry ->
       let license = License.of_tier account.tier in
       let applet =
         Applet.create ~ip:entry.ip ~license ~user ()
       in
       (* parameterized requests elaborate server-side before anything
          ships; both the build and its export come from the delivery
          cache *)
       let elaborated_result =
         match params with
         | None -> Ok None
         | Some fields ->
           (match parse_params entry.ip fields with
            | Error message ->
              Error
                (Printf.sprintf "bad parameters for %s: %s" ip_name message)
            | Ok assignment ->
              Ok (Some (elaborate_cached server ~now entry assignment)))
       in
       match elaborated_result with
       | Error message -> Error message
       | Ok elaborated ->
       let components = Applet.jar_components applet in
       (* the jar set for a component/version mix is itself a delivery
          artifact: repeat sessions share one bundle entry *)
       let bundle_descriptor =
         "bundle:"
         ^ String.concat ","
             (List.map
                (fun c ->
                   Printf.sprintf "%s@v%d" (Partition.component_name c)
                     (Hashtbl.find server.component_versions c))
                components)
       in
       let jars =
         Store.find_or_add server.delivery.Delivery.bundles ~now
           ~descriptor:bundle_descriptor
           ~bytes:(fun jars ->
             List.fold_left (fun acc j -> acc + Jar.compressed_size j) 0 jars)
           (fun () -> Partition.jars_for components)
       in
       let evicted = ref [] in
       let fetched_components =
         List.filter
           (fun component ->
              let current = Hashtbl.find server.component_versions component in
              let descriptor = component_descriptor component in
              (* under the serve-stale brownout rung, any cached version
                 answers the request — the customer gets a possibly
                 outdated jar instantly instead of queueing on a
                 saturated download path *)
              let miss, record_version =
                match Store.peek account.cache ~descriptor with
                | Some cached when cached = current -> (false, current)
                | Some cached when stale_ok -> (false, cached)
                | Some _ | None -> (true, current)
              in
              Metrics.incr
                (if miss then server.sm.sm_cache_misses
                 else server.sm.sm_cache_hits);
              (* hits refresh recency (stale hits keep their stale
                 version, so full service refetches later); misses enter
                 at the front, and a full cache drops its least recently
                 used entry *)
              if miss then begin
                let dropped =
                  Store.add account.cache ~now ~descriptor ~bytes:0
                    record_version
                in
                Metrics.add server.sm.sm_cache_evictions
                  (List.length dropped);
                evicted := !evicted @ List.map component_of_name dropped
              end
              else
                ignore (Store.find account.cache ~now ~descriptor : int option);
              miss)
           components
       in
       let fetched = Partition.jars_for fetched_components in
       let fetches =
         Download.fetch_jars ?faults ?policy ~metrics:server.sm.sm_download
           link fetched
       in
       let failed = Download.fetch_failures fetches in
       let failed_components = List.filter_map component_of_jar failed in
       (* a failed transfer must not poison the cache: the revisit
          re-fetches the component instead of assuming it is present *)
       List.iter
         (fun c ->
            ignore
              (Store.remove account.cache
                 ~descriptor:(component_descriptor c)
                : bool))
         failed_components;
       let download_seconds = Download.fetch_total_seconds fetches in
       let fetch_attempts = Download.fetch_attempts fetches in
       Metrics.observe server.sm.sm_download_ms
         (int_of_float (download_seconds *. 1e3));
       if List.exists (fun c -> List.mem c essential_components) failed_components
       then
         Error
           (Printf.sprintf "download failed for %s: %s did not arrive"
              ip_name
              (String.concat ", " (List.map (fun j -> j.Jar.jar_name) failed)))
       else begin
         (* the page still loads: tools whose jars never arrived are
            greyed out, everything else works *)
         let unavailable =
           List.filter
             (fun feature ->
                List.exists
                  (fun c -> List.mem c failed_components)
                  (Feature.components [ feature ]))
             (Applet.features applet)
         in
         Log.info (fun m ->
           m "GET /applets/%s for %s (%s)" ip_name user
             (License.tier_name account.tier));
         server.log <-
           Printf.sprintf "%s GET /applets/%s v%d (%s license, %d jar(s), %.1f s)"
             user ip_name entry.version
             (License.tier_name account.tier)
             (List.length fetched) download_seconds
           :: server.log;
         Ok
           { applet; version = entry.version; jars; fetched; failed;
             unavailable; evicted = !evicted; elaborated; fetch_attempts;
             download_seconds }
       end)

let request server ?now ?params ~user ~ip_name ~link ?faults ?policy () =
  Metrics.incr server.sm.sm_requests;
  let result =
    request_inner server ?now ?params ~user ~ip_name ~link ?faults ?policy ()
  in
  (match result with
   | Error _ -> Metrics.incr server.sm.sm_request_failures
   | Ok _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* overload-aware request path                                         *)
(* ------------------------------------------------------------------ *)

type rejection = {
  rej_reason : string;
  rej_retry_after_s : float option;
  rej_shed : Admission.shed_reason option;
}

let breaker server = server.breaker

let reject ?(count = true) server ?retry_after_s ?shed reason =
  if count then Metrics.incr server.sm.sm_request_failures;
  Error
    { rej_reason = reason;
      rej_retry_after_s = retry_after_s;
      rej_shed = shed }

(* The post-admission service path, shared by the synchronous front
   door ({!user_request}) and the queued dispatcher
   ({!serve_admitted}). [adm_ticket] is an already-admitted ticket
   whose accounting this function closes (complete, or give up as
   [Breaker_open] when the circuit refuses the call). *)
let serve_with server ?adm_ticket ?params ~now ~user ~ip_name ~link ?faults
    ?policy () =
  let stale_ok =
    match adm_ticket with
    | Some (adm, _) -> Admission.brownout adm = Admission.Serve_stale
    | None -> false
  in
  (* the breaker guards the whole download path: while open, the
     request fails fast without touching the link *)
  match server.breaker with
  | Some b when not (Breaker.allow b ~now) ->
    (match adm_ticket with
     | Some (adm, tk) ->
       Admission.give_up adm ~now tk Admission.Breaker_open
         ?retry_after_s:(Breaker.retry_after_s b ~now) ()
     | None -> ());
    reject server ?retry_after_s:(Breaker.retry_after_s b ~now)
      ~shed:Admission.Breaker_open
      (Printf.sprintf "downloads suspended (circuit %s open)"
         (Breaker.name b))
  | _ ->
    let result =
      request_inner server ~stale_ok ~now ?params ~user ~ip_name ~link ?faults
        ?policy ()
    in
    (match adm_ticket with
     | Some (adm, tk) -> Admission.complete adm ~now tk
     | None -> ());
    (match result with
     | Ok session ->
       (match server.breaker with
        | Some b ->
          (* lost optional jars already degrade the page; only a
             failed page (essential loss) trips the breaker *)
          Breaker.on_success b ~now
        | None -> ());
       Ok session
     | Error reason ->
       (match server.breaker with
        | Some b -> Breaker.on_failure b ~now
        | None -> ());
       reject server reason)

let user_request server ?admission ?params ~now ~user ~ip_name ~link
    ?deadline_s ?faults ?policy () =
  Metrics.incr server.sm.sm_requests;
  match Hashtbl.find_opt server.accounts user with
  | None -> reject server (Printf.sprintf "unknown user %s" user)
  | Some account ->
    let tier = account.tier in
    (* admission first: shedding must cost nothing downstream *)
    (match admission with
     | None ->
       serve_with server ?params ~now ~user ~ip_name ~link ?faults ?policy ()
     | Some adm ->
       (match
          Admission.admit_now adm ~now ~cls:Admission.Jar_download ~tier
            ~user ?deadline_s ()
        with
        | Error shed ->
          reject server ?retry_after_s:shed.Admission.retry_after_s
            ~shed:shed.Admission.shed_reason
            (Printf.sprintf "overload: request shed (%s)"
               (Admission.shed_reason_name shed.Admission.shed_reason))
        | Ok ticket ->
          serve_with server ~adm_ticket:(adm, ticket) ?params ~now ~user
            ~ip_name ~link ?faults ?policy ()))

let serve_admitted server ~admission ~ticket ~now ~ip_name ~link ?faults
    ?policy () =
  Metrics.incr server.sm.sm_requests;
  let user = ticket.Admission.user in
  match Hashtbl.find_opt server.accounts user with
  | None ->
    Admission.complete admission ~now ticket;
    reject server (Printf.sprintf "unknown user %s" user)
  | Some _ ->
    serve_with server ~adm_ticket:(admission, ticket) ~now ~user ~ip_name
      ~link ?faults ?policy ()

let access_log server = List.rev server.log

let server_secret server = "vendor-secret/" ^ server.vendor

let user_token server ~user =
  if Hashtbl.mem server.accounts user then
    Some
      (Secure_channel.issue_token ~server_secret:(server_secret server) ~user)
  else None

let secure_request server ~user ~ip_name ~link ?faults ?policy () =
  match request server ~user ~ip_name ~link ?faults ?policy () with
  | Error message -> Error message
  | Ok session ->
    (match user_token server ~user with
     | None ->
       (* this denial used to skip the failure counter *)
       Metrics.incr server.sm.sm_request_failures;
       Error (Printf.sprintf "no token for %s" user)
     | Some token ->
       (* only what actually arrived gets sealed and handed over *)
       let delivered =
         List.filter
           (fun jar ->
              not
                (List.exists
                   (fun f -> f.Jar.jar_name = jar.Jar.jar_name)
                   session.failed))
           session.fetched
       in
       let sealed = List.map (Secure_channel.seal ~token) delivered in
       Ok (session, sealed))

(* Canonical rendering of every piece of durable server state. The
   atomic-admission property pins it: a shed or expired request must
   leave the digest byte-identical to never having arrived. Accounts
   are sorted by user so the hashtable's iteration order cannot leak
   into the digest. *)
let state_digest server =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("vendor " ^ server.vendor ^ "\n");
  List.iter
    (fun (name, (e : entry)) ->
       Buffer.add_string buf (Printf.sprintf "catalog %s v%d\n" name e.version))
    server.entries;
  List.iter
    (fun c ->
       Buffer.add_string buf
         (Printf.sprintf "component %s v%d\n" (Partition.component_name c)
            (Hashtbl.find server.component_versions c)))
    Partition.all_components;
  let accounts =
    Hashtbl.fold (fun user account acc -> (user, account) :: acc)
      server.accounts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (user, account) ->
       Buffer.add_string buf
         (Printf.sprintf "account %s %s cache=[%s]\n" user
            (License.tier_name account.tier)
            (String.concat "; "
               (List.map
                  (fun (descriptor, v) ->
                     Printf.sprintf "%s v%d" descriptor v)
                  (Store.to_list account.cache)))))
    accounts;
  Buffer.add_string buf
    (Printf.sprintf "evictions %d\n" (cache_evictions server));
  List.iter
    (fun line -> Buffer.add_string buf ("log " ^ line ^ "\n"))
    (List.rev server.log);
  Buffer.contents buf
