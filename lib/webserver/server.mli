(** The vendor's web server, simulated.

    Carries the three delivery advantages of Section 1.1: (1) customers
    install nothing — an applet arrives with its jar set; (2) the vendor
    updates executables centrally — republishing bumps versions and the
    next request serves the latest code, with the browser cache
    re-fetching only changed archives; (3) the executable served is
    customized to the requesting user's license. *)

type t

(** [create ~vendor ?cache_cap ?metrics ()] — an empty server.
    [cache_cap] bounds each user's browser cache to that many component
    entries (LRU: a full cache drops its least recently used component,
    which must then be transferred again); the default admits every
    component, reproducing an unbounded cache. Raises
    [Invalid_argument] when the cap is not positive.

    [delivery_cap] / [delivery_bytes] bound the server-side
    content-addressed delivery cache ({!delivery_cache}): elaborated
    designs, lint verdicts, exported netlists and jar bundles, each
    keyed by collision-safe descriptors
    ({!Jhdl_sim.Snapshot.signature64} discipline — hits are
    descriptor-verified, so a hash collision degrades to a miss, never
    a wrong artifact).

    [breaker] guards the jar download path of {!user_request}: requests
    fail fast with a retry-after hint while it is open; an essential
    download failure counts against it and a served page closes it.

    A live [metrics] registry gains the request-path instruments:
    [requests_total] / [request_failures_total],
    [cache_hits_total] / [cache_misses_total] /
    [cache_evictions_total], a [download_ms] per-request histogram,
    the [catalog_entries] probe, the aggregate [delivery.cache_*]
    rows of the delivery cache, and the jar-level
    {!Jhdl_bundle.Download.metrics} counters. *)
val create :
  vendor:string -> ?cache_cap:int ->
  ?delivery_cap:int -> ?delivery_bytes:int ->
  ?breaker:Jhdl_resilience.Breaker.t ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  unit -> t

(** [breaker server] — the download-path breaker, when one was armed. *)
val breaker : t -> Jhdl_resilience.Breaker.t option

(** [cache_evictions server] — total LRU evictions across all user
    caches since the server started. *)
val cache_evictions : t -> int

(** [delivery_cache server] — the server-side content-addressed
    delivery cache, for inspection and for sharing its verdict store
    with catalog listings ({!Jhdl_applet.Catalog.lint_verdict}). *)
val delivery_cache : t -> Jhdl_applet.Ip_module.built Jhdl_cache.Delivery.t

(** [publish server ip] — put an IP on the catalog (version 1), or bump
    its version (and the applet jar's) when already present. Returns the
    new version. The lint gate applies: raises [Invalid_argument] when
    the IP's default elaboration has error-severity lint findings. *)
val publish : t -> Jhdl_applet.Ip_module.t -> int

(** [publish_checked server ?now ip] — like {!publish}, but the lint
    gate's refusal (error-severity findings at the default parameters,
    or an elaboration failure) comes back as [Error message] instead of
    an exception. The verdict is served from the delivery cache when a
    catalog listing (or earlier publication) already linted the same
    generator invocation; [now] stamps the cache recency. *)
val publish_checked :
  t -> ?now:float -> Jhdl_applet.Ip_module.t -> (int, string) result

val catalog : t -> (string * int) list
(** [(ip name, current version)] *)

(** [register_user server ~user ~tier] — create or update an account. *)
val register_user : t -> user:string -> tier:Jhdl_applet.License.tier -> unit

(** One served applet page: the assembled executable plus what the
    browser had to download to run it. *)
type session = {
  applet : Jhdl_applet.Applet.t;
  version : int;
  jars : Jhdl_bundle.Jar.t list;  (** full jar set the page references *)
  fetched : Jhdl_bundle.Jar.t list;  (** cache misses the browser tried to transfer *)
  failed : Jhdl_bundle.Jar.t list;
      (** fetched jars that never arrived (retries exhausted) *)
  unavailable : Jhdl_applet.Feature.t list;
      (** licensed tools greyed out because their jar failed *)
  evicted : Jhdl_bundle.Partition.component list;
      (** components this request's cache traffic pushed out of the
          bounded LRU (empty with the default cap) *)
  elaborated : (Jhdl_applet.Ip_module.built * string) option;
      (** when the request carried parameters: the server-side build
          and its EDIF export, both served from the delivery cache *)
  fetch_attempts : int;  (** total transfer attempts across all jars *)
  download_seconds : float;  (** includes retries, backoff and dead bytes *)
}

(** [request server ~user ~ip_name ~link ?faults ?policy ()] — serve the
    IP evaluation page to [user] over [link]. Fails for unknown users or
    IPs. The per-user browser cache persists across requests: revisits
    after a republish fetch only the bumped applet jar.

    [faults] makes the link lossy (seeded, deterministic); [policy]
    governs per-jar retries ({!Jhdl_bundle.Download.default_fetch_policy}
    by default). The session degrades gracefully: when an optional jar
    (the viewer classes) is lost, the applet still launches and
    [unavailable] lists the greyed-out tools; losing an essential jar
    (base / technology / applet glue) is an [Error]. Failed components
    are evicted from the browser cache so a revisit re-fetches them.

    [params] requests a server-side elaboration at the given
    (name, form-field string) parameter point; the build and its EDIF
    export land in [session.elaborated], served from the delivery
    cache on repeats. Malformed or out-of-range parameters are an
    [Error]. [now] stamps cache recency (defaults to 0 — LRU order is
    structural either way). *)
val request :
  t ->
  ?now:float ->
  ?params:(string * string) list ->
  user:string ->
  ip_name:string ->
  link:Jhdl_bundle.Download.link ->
  ?faults:Jhdl_faults.Fault.config ->
  ?policy:Jhdl_bundle.Download.fetch_policy ->
  unit ->
  (session, string) result

(** [access_log server] — one line per request, oldest first. *)
val access_log : t -> string list

(** {1 Overload-aware request path}

    The front door for the "millions of users" regime: the same page
    service as {!request}, behind admission control and the download
    breaker, with every refusal typed and counted. *)

(** A typed refusal. Overload rejections (admission sheds, open
    breaker) carry both a retry-after hint and the
    {!Jhdl_resilience.Admission.shed_reason} they were accounted
    under; plain failures (unknown user or IP, essential download
    loss) carry neither. *)
type rejection = {
  rej_reason : string;
  rej_retry_after_s : float option;
  rej_shed : Jhdl_resilience.Admission.shed_reason option;
}

(** [user_request server ?admission ~now ~user ~ip_name ~link
    ?deadline_s ?faults ?policy ()] — serve the IP page under overload
    control. With [admission], the request is admitted as a
    [Jar_download] (shed requests are refused before costing
    anything, with the controller's retry-after hint); under the
    [Serve_stale] brownout rung a stale browser-cache entry answers
    instead of re-fetching. With a download breaker armed
    ({!create}'s [breaker]), an open circuit fails the request fast —
    and, when admitted, the ticket is given up as [Breaker_open] so
    the typed accounting still closes. Every early-return branch
    counts in [request_failures_total]. *)
val user_request :
  t ->
  ?admission:Jhdl_resilience.Admission.t ->
  ?params:(string * string) list ->
  now:float ->
  user:string ->
  ip_name:string ->
  link:Jhdl_bundle.Download.link ->
  ?deadline_s:float ->
  ?faults:Jhdl_faults.Fault.config ->
  ?policy:Jhdl_bundle.Download.fetch_policy ->
  unit ->
  (session, rejection) result

(** [serve_admitted server ~admission ~ticket ~now ~ip_name ~link
    ?faults ?policy ()] — serve a download ticket that a queued
    dispatcher already admitted ({!Jhdl_resilience.Admission.start}).
    Same semantics as the admitted arm of {!user_request} — serve-stale
    under brownout, breaker fast-fail with the ticket given up as
    [Breaker_open] — and the ticket's accounting is always closed. The
    chaos load scheduler drives this path. *)
val serve_admitted :
  t ->
  admission:Jhdl_resilience.Admission.t ->
  ticket:Jhdl_resilience.Admission.ticket ->
  now:float ->
  ip_name:string ->
  link:Jhdl_bundle.Download.link ->
  ?faults:Jhdl_faults.Fault.config ->
  ?policy:Jhdl_bundle.Download.fetch_policy ->
  unit ->
  (session, rejection) result

(** [state_digest server] — canonical rendering of all durable server
    state (catalog and component versions, accounts with their cache
    contents, eviction count, access log), accounts sorted by user.
    The atomic-admission property test pins that shed requests leave
    it byte-identical. *)
val state_digest : t -> string

(** {1 Encrypted delivery (Section 4.3 hardening)} *)

(** [user_token server ~user] — the license token the loader uses with
    {!Secure_channel}; [None] for unknown users. *)
val user_token : t -> user:string -> string option

(** [secure_request server ~user ~ip_name ~link ?faults ?policy ()] —
    like {!request}, but the jars that actually arrived come sealed
    under the user's token (failed jars are not sealed). The session's
    timing is unchanged (the stream cipher is size-preserving). Unknown
    users and IPs surface {!request}'s error directly. *)
val secure_request :
  t ->
  user:string ->
  ip_name:string ->
  link:Jhdl_bundle.Download.link ->
  ?faults:Jhdl_faults.Fault.config ->
  ?policy:Jhdl_bundle.Download.fetch_policy ->
  unit ->
  (session * Secure_channel.sealed list, string) result
