module Bits = Jhdl_logic.Bits
module Simulator = Jhdl_sim.Simulator

(* Short printable VCD identifiers: index 0..93 maps to one printable
   ASCII character ('!'..'~'), then the scheme extends to as many
   characters as needed (bijective base 94, most significant first), so
   arbitrarily wide histories stay printable — the old two-character
   ceiling broke past 8 929 signals. *)
let id_of_index i =
  let alphabet_size = 94 in
  let char_of k = Char.chr (33 + k) in
  let rec build acc i =
    let acc = String.make 1 (char_of (i mod alphabet_size)) ^ acc in
    let rest = (i / alphabet_size) - 1 in
    if rest < 0 then acc else build acc rest
  in
  build "" i

let sanitize label =
  String.map (fun c -> if c = ' ' || c = '$' then '_' else c) label

let of_history sim =
  let history = Simulator.history sim in
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "$date 2002-06-10 $end\n";
  add "$version JHDL-OCaml simulator $end\n";
  add "$timescale 1 ns $end\n";
  add "$scope module %s $end\n"
    (sanitize (Jhdl_circuit.Design.name (Simulator.design sim)));
  let signals =
    List.mapi
      (fun i (label, samples) ->
         let width =
           match samples with
           | (_, v) :: _ -> Bits.width v
           | [] -> 1
         in
         let id = id_of_index i in
         add "$var wire %d %s %s $end\n" width id (sanitize label);
         (id, width, samples))
      history
  in
  add "$upscope $end\n$enddefinitions $end\n";
  (* group samples by cycle *)
  let cycles =
    List.concat_map (fun (_, _, samples) -> List.map fst samples) signals
    |> List.sort_uniq Int.compare
  in
  let emit_value id width v =
    if width = 1 then
      add "%c%s\n" (Jhdl_logic.Bit.to_char (Bits.get v 0)) id
    else add "b%s %s\n" (Bits.to_string v) id
  in
  (* initial-value block: every declared signal gets a value at the
     first timestamp (its first sample if it has one there, else x of
     the right width), so viewers never render undefined leaders *)
  (match cycles with
   | [] -> ()
   | first :: rest ->
     add "#%d\n$dumpvars\n" first;
     List.iter
       (fun (id, width, samples) ->
          let v =
            match List.assoc_opt first samples with
            | Some v -> v
            | None -> Bits.of_string (String.make width 'x')
          in
          emit_value id width v)
       signals;
     add "$end\n";
     List.iter
       (fun cycle ->
          add "#%d\n" cycle;
          List.iter
            (fun (id, width, samples) ->
               match List.assoc_opt cycle samples with
               | Some v -> emit_value id width v
               | None -> ())
            signals)
       rest);
  Buffer.contents buffer
