(** Value-change-dump (VCD) export of the simulator's watch history, so
    recorded waveforms can be opened in a conventional viewer — one of the
    "interfaces with more tools" directions the paper's conclusion
    names. *)

(** [of_history sim] renders an IEEE-1364 VCD document from the watched
    signals; one timescale unit per clock cycle. The first timestamp
    carries a [$dumpvars] block giving every declared signal an initial
    value (x when the signal has no sample there). *)
val of_history : Jhdl_sim.Simulator.t -> string

(** [id_of_index i] — the printable VCD identifier for the [i]-th
    declared signal: bijective base 94 over ['!'..'~'], one character for
    indices 0–93, two up to 8 929, growing as needed beyond. Exposed for
    tests. *)
val id_of_index : int -> string
