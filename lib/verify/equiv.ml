module Bits = Jhdl_logic.Bits
module Bit = Jhdl_logic.Bit
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Levelize = Jhdl_circuit.Levelize
module Simulator = Jhdl_sim.Simulator
module Batch = Jhdl_sim.Simulator.Batch
module Bdd = Jhdl_analysis.Bdd
module Cone = Jhdl_analysis.Cone
open Jhdl_circuit.Types

type mismatch = {
  inputs : (string * Bits.t) list;
  cycle : int;
  port : string;
  value_a : Bits.t;
  value_b : Bits.t;
}

type result =
  | Proved of { outputs : int; bdd_nodes : int; sequential : bool }
  | Equivalent of { vectors : int; exhaustive : bool }
  | Not_equivalent of mismatch
  | Interface_mismatch of string

type strategy = [ `Auto | `Sweep | `Scalar_sweep ]

(* ------------------------------------------------------------------ *)
(* Metrics: instruments are minted once per registry (duplicate names
   raise on a live registry) and cached by physical equality.          *)

module Metrics = Jhdl_metrics.Metrics

type instruments = {
  ins_registry : Metrics.t;
  ins_proofs : Metrics.counter;
  ins_fallbacks : Metrics.counter;
  ins_refutations : Metrics.counter;
  ins_sweeps : Metrics.counter;
  ins_nodes : Metrics.histogram;
}

let ins_cache : instruments option ref = ref None

let instruments registry =
  match !ins_cache with
  | Some i when i.ins_registry == registry -> i
  | _ ->
    let i =
      { ins_registry = registry;
        ins_proofs = Metrics.counter registry "equiv_proofs_total";
        ins_fallbacks = Metrics.counter registry "equiv_proof_fallbacks_total";
        ins_refutations = Metrics.counter registry "equiv_refutations_total";
        ins_sweeps = Metrics.counter registry "equiv_sweep_vectors_total";
        ins_nodes = Metrics.histogram registry "equiv_proof_bdd_nodes" }
    in
    ins_cache := Some i;
    i

(* ------------------------------------------------------------------ *)

let interface design =
  List.map
    (fun p ->
       (p.Design.port_name, p.Design.port_dir, Wire.width p.Design.port_wire))
    (Design.ports design)
  |> List.sort compare

type proof_outcome =
  | Proof_ok of { outputs : int; bdd_nodes : int; sequential : bool }
  | Proof_refuted of (string * Bits.t) list
  | Proof_unknown

(* The BDD proof. Both designs are analysed in Defined mode on one
   shared manager/allocator, so input-port leaves coincide and pair
   equality is physical. A Defined-mode pair describes behaviour under
   every defined input vector — exactly what an exhaustive sweep
   samples — and because the gate rules mirror the batch kernel's
   plane rules, "both planes equal" means "bit-for-bit equal outputs,
   including X-ness, on every defined stimulus".

   Sequential designs use matched FF frontiers: the FFs of both
   designs are partitioned by (pin configuration, INIT), each class
   gets one shared state leaf, and the partition is refined until each
   class's members have physically equal next-state cones. Equal INITs
   plus equal next-state functions give, by induction over clock
   edges, equal states forever — so physically equal output cones over
   the class leaves prove equivalence without unrolling. A mismatch
   here is NOT a refutation (the distinguishing state may be
   unreachable); only the combinational path extracts and confirms
   counterexamples. *)
let prove ~node_budget ~clock ~has_clock ~inputs ~outputs a b =
  let scope_ok d =
    List.for_all (fun n -> n.extra_drivers = []) (Design.all_nets d)
    && List.for_all
         (fun s ->
            match s.Levelize.prim with
            | Prim.Black_box _ -> false
            | _ -> true)
         (Levelize.sources_of_root (Design.root d))
  in
  if not (scope_ok a && scope_ok b) then Proof_unknown
  else begin
    let seq_sources d =
      List.filter
        (fun s -> Prim.is_sequential s.Levelize.prim)
        (Levelize.sources_of_root (Design.root d))
    in
    let seq_a = seq_sources a and seq_b = seq_sources b in
    let clock_net d =
      match Design.find_port d clock with
      | Some p when Array.length p.Design.port_wire.nets = 1 ->
        Some p.Design.port_wire.nets.(0).net_id
      | _ -> None
    in
    let ff_ok d (s : Levelize.source) =
      match s.Levelize.prim with
      | Prim.Ff { init; _ } ->
        Bit.is_defined init
        && (match
              (List.assoc_opt "C" s.Levelize.in_ports, clock_net d)
            with
            | Some nets, Some cn when Array.length nets = 1 ->
              nets.(0).net_id = cn
            | _ -> false)
      | _ -> false  (* SRL/RAM frontiers: fall back to the sweep *)
    in
    let sequential = seq_a <> [] || seq_b <> [] in
    if
      sequential
      && not
           (has_clock
            && List.for_all (ff_ok a) seq_a
            && List.for_all (ff_ok b) seq_b)
    then Proof_unknown
    else begin
      let man = Bdd.create ~budget:node_budget () in
      let al = Cone.allocator man in
      let compare_outputs ca cb =
        let pa = Cone.output_pairs ca and pb = Cone.output_pairs cb in
        let diffs = ref [] in
        let bits = ref 0 in
        List.iter
          (fun port ->
             match (List.assoc_opt port pa, List.assoc_opt port pb) with
             | Some xs, Some ys when Array.length xs = Array.length ys ->
               Array.iteri
                 (fun i x ->
                    incr bits;
                    let y = ys.(i) in
                    if
                      not
                        (Bdd.equal x.Cone.p0 y.Cone.p0
                         && Bdd.equal x.Cone.p1 y.Cone.p1)
                    then diffs := (x, y) :: !diffs)
                 xs
             | _ -> diffs := (Cone.const_pair Bit.X, Cone.const_pair Bit.Z) :: !diffs)
          outputs;
        (!bits, List.rev !diffs)
      in
      try
        if not sequential then begin
          let ca = Cone.analyze ~mode:Cone.Defined ~alloc:al a in
          let cb = Cone.analyze ~mode:Cone.Defined ~alloc:al b in
          if Cone.opaque_leaves ca > 0 || Cone.opaque_leaves cb > 0 then
            Proof_unknown
          else begin
            let bits, diffs = compare_outputs ca cb in
            match diffs with
            | [] ->
              Proof_ok
                { outputs = bits;
                  bdd_nodes = Bdd.nodes_created man;
                  sequential = false }
            | (x, y) :: _ ->
              let d =
                Bdd.or_ man
                  (Bdd.xor man x.Cone.p0 y.Cone.p0)
                  (Bdd.xor man x.Cone.p1 y.Cone.p1)
              in
              (match Bdd.any_sat d with
               | None -> Proof_unknown
               | Some assignment ->
                 (* defined-mode leaves: variable 2i is the value of
                    leaf i; unassigned variables are don't-cares and
                    default to zero *)
                 let leaves = Cone.leaves al in
                 let values =
                   List.map (fun (nm, w) -> (nm, Array.make w false)) inputs
                 in
                 List.iter
                   (fun (v, bv) ->
                      if v land 1 = 0 then
                        match leaves.(v / 2) with
                        | Cone.Input { port; bit } ->
                          (match List.assoc_opt port values with
                           | Some arr when bit < Array.length arr ->
                             arr.(bit) <- bv
                           | _ -> ())
                        | _ -> ())
                   assignment;
                 Proof_refuted
                   (List.map
                      (fun (nm, arr) ->
                         ( nm,
                           Bits.of_string
                             (String.init (Array.length arr) (fun i ->
                                  if arr.(Array.length arr - 1 - i) then '1'
                                  else '0')) ))
                      values))
          end
        end
        else begin
          (* matched FF frontiers: partition refinement to a fixpoint *)
          let ffs =
            List.map (fun s -> (a, s)) seq_a @ List.map (fun s -> (b, s)) seq_b
          in
          let config_key (s : Levelize.source) =
            match s.Levelize.prim with
            | Prim.Ff { clock_enable; async_clear; sync_reset; init } ->
              Printf.sprintf "%b%b%b%d" clock_enable async_clear sync_reset
                (Bit.to_code init)
            | _ -> assert false
          in
          let class_of = Hashtbl.create 32 in
          let n_classes = ref 0 in
          let assign key_of =
            Hashtbl.reset class_of;
            let ids = Hashtbl.create 32 in
            n_classes := 0;
            List.iter
              (fun (_, s) ->
                 let key = key_of s in
                 let id =
                   match Hashtbl.find_opt ids key with
                   | Some id -> id
                   | None ->
                     let id = !n_classes in
                     incr n_classes;
                     Hashtbl.add ids key id;
                     id
                 in
                 Hashtbl.replace class_of s.Levelize.inst.cell_id id)
              ffs
          in
          assign config_key;
          let round = ref 0 in
          let analyzed = ref None in
          let rec refine () =
            incr round;
            let state (s : Levelize.source) _cell =
              Cone.State_leaf
                (Printf.sprintf "r%d:c%d" !round
                   (Hashtbl.find class_of s.Levelize.inst.cell_id))
            in
            let ca = Cone.analyze ~mode:Cone.Defined ~alloc:al ~state a in
            let cb = Cone.analyze ~mode:Cone.Defined ~alloc:al ~state b in
            if Cone.opaque_leaves ca > 0 || Cone.opaque_leaves cb > 0 then
              false
            else begin
              analyzed := Some (ca, cb);
              let signature (d, (s : Levelize.source)) =
                let c = if d == a then ca else cb in
                let next = (Cone.next_state c s).(0) in
                Printf.sprintf "%d:%d.%d"
                  (Hashtbl.find class_of s.Levelize.inst.cell_id)
                  (Bdd.id next.Cone.p0) (Bdd.id next.Cone.p1)
              in
              let sigs =
                List.map (fun ff -> (snd ff, signature ff)) ffs
              in
              let before = !n_classes in
              assign (fun s -> List.assq s sigs);
              if !n_classes = before then true else refine ()
            end
          in
          if not (refine ()) then Proof_unknown
          else
            match !analyzed with
            | None -> Proof_unknown
            | Some (ca, cb) ->
              let bits, diffs = compare_outputs ca cb in
              if diffs = [] then
                Proof_ok
                  { outputs = bits;
                    bdd_nodes = Bdd.nodes_created man;
                    sequential = true }
              else Proof_unknown
        end
      with Bdd.Budget_exceeded -> Proof_unknown
    end
  end

let check ?(max_exhaustive_bits = 14) ?(random_vectors = 500)
    ?cycles_per_vector ?(clock = "clk") ?(strategy = (`Auto : strategy))
    ?(node_budget = 200_000) ?metrics a b =
  let ia = interface a and ib = interface b in
  if ia <> ib then
    Interface_mismatch
      (Printf.sprintf "A has ports {%s}, B has {%s}"
         (String.concat ", " (List.map (fun (n, _, w) -> Printf.sprintf "%s<%d>" n w) ia))
         (String.concat ", " (List.map (fun (n, _, w) -> Printf.sprintf "%s<%d>" n w) ib)))
  else begin
    let ins = Option.map instruments metrics in
    let has_clock = List.exists (fun (n, d, _) -> n = clock && d = Input) ia in
    let cycles =
      match cycles_per_vector with
      | Some n -> n
      | None -> if has_clock then 1 else 0
    in
    let inputs =
      List.filter (fun (n, d, _) -> d = Input && n <> clock) ia
      |> List.map (fun (n, _, w) -> (n, w))
    in
    let outputs =
      List.filter (fun (_, d, _) -> d = Output) ia |> List.map (fun (n, _, _) -> n)
    in
    let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 inputs in
    let clock_wire design =
      if has_clock then
        Option.map (fun p -> p.Design.port_wire) (Design.find_port design clock)
      else None
    in
    (* split an integer seed into per-port values, LSB first *)
    let vector_of_int value =
      let rec split acc value = function
        | [] -> List.rev acc
        | (name, width) :: rest ->
          let mask = (1 lsl width) - 1 in
          split ((name, Bits.of_int ~width (value land mask)) :: acc)
            (value lsr width) rest
      in
      split [] value inputs
    in
    let exhaustive = total_bits <= max_exhaustive_bits in
    let vectors =
      if exhaustive then List.init (1 lsl total_bits) vector_of_int
      else begin
        let state = ref 0x2545F491 in
        List.init random_vectors (fun _ ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFFF;
          vector_of_int (!state lsr 13))
      end
    in
    (* scalar path: retained for black boxes and for benchmarking the
       batch kernel against (`Scalar_sweep) *)
    let scalar_sweep () =
      let sim_a = Simulator.create ?clock:(clock_wire a) a in
      let sim_b = Simulator.create ?clock:(clock_wire b) b in
      let compare_outputs ~stimulus ~cycle =
        List.find_map
          (fun port ->
             let value_a = Simulator.get_port sim_a port in
             let value_b = Simulator.get_port sim_b port in
             if Bits.equal value_a value_b then None
             else Some { inputs = stimulus; cycle; port; value_a; value_b })
          outputs
      in
      let run_vector stimulus =
        Simulator.reset sim_a;
        Simulator.reset sim_b;
        List.iter
          (fun (port, value) ->
             Simulator.set_input sim_a port value;
             Simulator.set_input sim_b port value)
          stimulus;
        let rec step cycle =
          match compare_outputs ~stimulus ~cycle with
          | Some m -> Some m
          | None ->
            if cycle >= cycles then None
            else begin
              Simulator.cycle sim_a;
              Simulator.cycle sim_b;
              step (cycle + 1)
            end
        in
        step 0
      in
      let rec sweep count = function
        | [] -> Equivalent { vectors = count; exhaustive }
        | stimulus :: rest ->
          (match run_vector stimulus with
           | Some m -> Not_equivalent m
           | None ->
             Option.iter (fun i -> Metrics.incr i.ins_sweeps) ins;
             sweep (count + 1) rest)
      in
      sweep 0 vectors
    in
    (* batch path: 63 vectors share every settle *)
    let batch_sweep () =
      let v_arr = Array.of_list vectors in
      let n = Array.length v_arr in
      if n = 0 then Equivalent { vectors = 0; exhaustive }
      else begin
        let lanes = min n Batch.max_lanes in
        let ba = Batch.create ?clock:(clock_wire a) ~lanes a in
        let bb = Batch.create ?clock:(clock_wire b) ~lanes b in
        let result = ref None in
        let idx = ref 0 in
        while !result = None && !idx < n do
          let chunk = min lanes (n - !idx) in
          Batch.reset ba;
          Batch.reset bb;
          for l = 0 to chunk - 1 do
            Batch.set_inputs ba ~lane:l v_arr.(!idx + l);
            Batch.set_inputs bb ~lane:l v_arr.(!idx + l)
          done;
          let compare_cycle cycle =
            let rec lane l =
              if l >= chunk then None
              else
                match
                  List.find_map
                    (fun port ->
                       let value_a = Batch.get_port ba ~lane:l port in
                       let value_b = Batch.get_port bb ~lane:l port in
                       if Bits.equal value_a value_b then None
                       else
                         Some
                           { inputs = v_arr.(!idx + l);
                             cycle;
                             port;
                             value_a;
                             value_b })
                    outputs
                with
                | Some m -> Some m
                | None -> lane (l + 1)
            in
            lane 0
          in
          let rec step cycle =
            match compare_cycle cycle with
            | Some m -> result := Some m
            | None ->
              if cycle < cycles then begin
                Batch.cycle ba;
                Batch.cycle bb;
                step (cycle + 1)
              end
          in
          step 0;
          Option.iter (fun i -> Metrics.add i.ins_sweeps chunk) ins;
          idx := !idx + chunk
        done;
        match !result with
        | Some m -> Not_equivalent m
        | None -> Equivalent { vectors = n; exhaustive }
      end
    in
    let sweep () =
      match strategy with
      | `Scalar_sweep -> scalar_sweep ()
      | `Auto | `Sweep ->
        (* the batch kernel rejects behavioural black boxes *)
        (try batch_sweep () with Invalid_argument _ -> scalar_sweep ())
    in
    let confirm stimulus =
      (* replay a BDD counterexample on the real simulators before
         claiming anything — the proof layer never gets the last word
         on a refutation *)
      let sim_a = Simulator.create ?clock:(clock_wire a) a in
      let sim_b = Simulator.create ?clock:(clock_wire b) b in
      List.iter
        (fun (port, value) ->
           Simulator.set_input sim_a port value;
           Simulator.set_input sim_b port value)
        stimulus;
      List.find_map
        (fun port ->
           let value_a = Simulator.get_port sim_a port in
           let value_b = Simulator.get_port sim_b port in
           if Bits.equal value_a value_b then None
           else Some { inputs = stimulus; cycle = 0; port; value_a; value_b })
        outputs
    in
    match strategy with
    | `Sweep | `Scalar_sweep -> sweep ()
    | `Auto ->
      (match
         prove ~node_budget ~clock ~has_clock ~inputs ~outputs a b
       with
       | Proof_ok { outputs; bdd_nodes; sequential } ->
         Option.iter
           (fun i ->
              Metrics.incr i.ins_proofs;
              Metrics.observe i.ins_nodes bdd_nodes)
           ins;
         Proved { outputs; bdd_nodes; sequential }
       | Proof_refuted stimulus ->
         (match confirm stimulus with
          | Some m ->
            Option.iter (fun i -> Metrics.incr i.ins_refutations) ins;
            Not_equivalent m
          | None ->
            Option.iter (fun i -> Metrics.incr i.ins_fallbacks) ins;
            sweep ())
       | Proof_unknown ->
         Option.iter (fun i -> Metrics.incr i.ins_fallbacks) ins;
         sweep ())
  end

let pp_result fmt = function
  | Proved { outputs; bdd_nodes; sequential } ->
    Format.fprintf fmt "PROVED equivalent (%s, %d output bit(s), %d BDD nodes)"
      (if sequential then "sequential induction" else "combinational")
      outputs bdd_nodes
  | Equivalent { vectors; exhaustive } ->
    Format.fprintf fmt "equivalent over %d %s vector(s)" vectors
      (if exhaustive then "exhaustive" else "random")
  | Not_equivalent m ->
    Format.fprintf fmt
      "NOT equivalent: at cycle %d, port %s: A=%s B=%s under {%s}" m.cycle
      m.port (Bits.to_string m.value_a) (Bits.to_string m.value_b)
      (String.concat ", "
         (List.map
            (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_string v))
            m.inputs))
  | Interface_mismatch reason ->
    Format.fprintf fmt "interface mismatch: %s" reason
