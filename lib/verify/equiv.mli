(** Equivalence checking between two designs: BDD proof first,
    vector sweep as the fallback.

    The customer side of "the more visibility available to the customer,
    the more confidence he or she has that the IP operates as specified":
    given two designs with the same external interface — say, the netlist
    a licensed applet exported and the black-box model the evaluation
    applet exposed, or a chain-structured KCM against a tree-structured
    one — show their outputs agree on every stimulus.

    Two mechanisms, strongest first:

    - {b Proof}: both designs are compiled to dual-rail BDD cones
      ({!Jhdl_analysis.Cone}) on one shared manager, in defined-input
      mode. Combinational designs are {!Proved} equivalent when every
      output bit's pair is physically equal — a closed-form statement
      over {e all} defined input vectors, not a sample. Sequential
      designs use matched FF frontiers: flip-flops of both designs are
      partitioned by pin configuration and INIT, the partition is
      refined until next-state cones agree per class, and physically
      equal output cones over the class leaves prove equivalence by
      induction, without unrolling. A combinational BDD difference is
      turned into a concrete counterexample and {e confirmed on the
      real simulators} before being reported; a sequential difference
      is inconclusive (the distinguishing state may be unreachable)
      and falls back to the sweep.

    - {b Sweep}: small input spaces are checked exhaustively, larger
      ones with a deterministic pseudo-random sample. The sweep runs
      both designs through {!Jhdl_sim.Simulator.Batch}, 63 vectors per
      settle; behavioural black boxes (which the batch kernel rejects)
      drop to the retained scalar path. Clocked designs are compared
      over [cycles_per_vector] cycles with outputs sampled after every
      cycle and a reset between vector chunks.

    The proof path is exercised against the sweep by the [absint] fuzz
    oracle: every [Proved] verdict must survive a differential batch
    sweep. *)

type mismatch = {
  inputs : (string * Jhdl_logic.Bits.t) list;  (** the failing stimulus *)
  cycle : int;  (** cycle at which the divergence was observed (0 = comb) *)
  port : string;
  value_a : Jhdl_logic.Bits.t;
  value_b : Jhdl_logic.Bits.t;
}

type result =
  | Proved of { outputs : int; bdd_nodes : int; sequential : bool }
      (** BDD-proved equal on every defined stimulus: [outputs] output
          bits compared, [bdd_nodes] allocated by the proof,
          [sequential] when FF-frontier induction was used *)
  | Equivalent of { vectors : int; exhaustive : bool }
      (** sweep-equivalent: no proof, but no divergence over [vectors] *)
  | Not_equivalent of mismatch
  | Interface_mismatch of string
      (** differing port names, directions or widths *)

(** Which machinery to use. [`Auto] (default) tries the proof and
    falls back to the batched sweep; [`Sweep] skips the proof;
    [`Scalar_sweep] additionally bypasses the batch kernel — the
    benchmark baseline, and never needed otherwise. *)
type strategy = [ `Auto | `Sweep | `Scalar_sweep ]

(** [check ?max_exhaustive_bits ?random_vectors ?cycles_per_vector ?clock
    ?strategy ?node_budget ?metrics a b]:
    - ports are matched by name; a clock port named by [clock] (default
      ["clk"]) is excluded from stimulus and used to clock both sides;
    - the proof path is attempted first under [`Auto] with at most
      [node_budget] BDD nodes (default 200k; overflow falls back to
      the sweep);
    - if the total input width is at most [max_exhaustive_bits]
      (default 14), the sweep applies every input combination;
      otherwise [random_vectors] (default 500) deterministic
      pseudo-random vectors;
    - for sequential designs set [cycles_per_vector] (default 1 when a
      clock port exists, 0 otherwise): outputs are compared before the
      first edge and after each of the cycles, with resets between
      vectors;
    - [metrics] registers proof/fallback/refutation counters and a
      proof-size histogram on the given registry. *)
val check :
  ?max_exhaustive_bits:int ->
  ?random_vectors:int ->
  ?cycles_per_vector:int ->
  ?clock:string ->
  ?strategy:strategy ->
  ?node_budget:int ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  Jhdl_circuit.Design.t ->
  Jhdl_circuit.Design.t ->
  result

val pp_result : Format.formatter -> result -> unit
