open Jhdl_circuit.Types
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Levelize = Jhdl_circuit.Levelize
module Virtex = Jhdl_virtex.Virtex

type area_report = {
  area : Virtex.area;
  slices : int;
  prims_by_type : (string * int) list;
  black_boxes : int;
}

let area_of_cell c =
  let area = ref Virtex.area_zero in
  let by_type = Hashtbl.create 16 in
  let black_boxes = ref 0 in
  let count prim =
    area := Virtex.area_add !area (Virtex.prim_area prim);
    (match prim with
     | Prim.Black_box _ -> incr black_boxes
     | Prim.Lut _ | Prim.Ff _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and
     | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Buf | Prim.Inv | Prim.Gnd
     | Prim.Vcc -> ());
    let key = Prim.name prim in
    Hashtbl.replace by_type key
      (1 + Option.value (Hashtbl.find_opt by_type key) ~default:0)
  in
  Cell.iter_rec
    (fun c -> match Cell.prim_of c with Some p -> count p | None -> ())
    c;
  { area = !area;
    slices = Virtex.slices !area;
    prims_by_type =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_type []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    black_boxes = !black_boxes }

let area_of_design d = area_of_cell (Design.root d)

let pp_area_report fmt r =
  Format.fprintf fmt "@[<v>area: %a@,by type:@,%a@]" Virtex.pp_area r.area
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (t, n) ->
       Format.fprintf fmt "  %-10s %4d" t n))
    r.prims_by_type;
  if r.black_boxes > 0 then
    Format.fprintf fmt "@,(%d behavioural black box(es) not counted)"
      r.black_boxes

type path_end =
  | At_register of string
  | At_output of string

type timing_report = {
  critical_path_ps : int;
  max_frequency_mhz : float option;
  logic_levels : int;
  path : string list;
  path_end : path_end;
}

exception Combinational_cycle_timing of string list

(* Static timing by longest-path over the combinational graph. Arrival
   times start at 0 for top inputs and clk->Q for register outputs; a
   path's cost accumulates net delay (fanout-loaded) plus the sink
   primitive's propagation delay. Register D pins add setup. *)

type tnode = {
  inst : cell;
  prim : Prim.t;
  t_in : (string * net array) list;
  t_out : (string * net array) list;
  mutable arrival : int;
  mutable levels : int;
  mutable pred : tnode option;
}

(* Ports whose value combinationally affects the node's outputs — the
   shared Levelize table, so the estimator draws the same edges as the
   simulators and the validator. *)
let comb_inputs prim t_in =
  match prim with
  | Prim.Black_box _ -> List.map fst t_in
  | p -> Levelize.comb_input_ports p

let is_register prim =
  match prim with
  | Prim.Ff _ | Prim.Srl16 _ -> true
  | Prim.Ram16x1 _ | Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and
  | Prim.Buf | Prim.Inv | Prim.Gnd | Prim.Vcc | Prim.Black_box _ -> false

let counts_as_level prim =
  match prim with
  | Prim.Lut _ | Prim.Ram16x1 _ | Prim.Buf | Prim.Inv | Prim.Black_box _ ->
    true
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> false (* carry chain *)
  | Prim.Ff _ | Prim.Srl16 _ | Prim.Gnd | Prim.Vcc -> false

let placed_net_delay_ps ~distance ~fanout =
  120 + (55 * distance) + (90 * max 0 (fanout - 1))

(* accumulated-RLOC placements of placed primitives (as in the floorplan
   viewer); unplaced primitives are absent *)
let placements_of d =
  let table = Hashtbl.create 256 in
  let rec walk ~row ~col ~placed c =
    let row, col, placed =
      match Cell.rloc c with
      | Some (r, k) -> (row + r, col + k, true)
      | None -> (row, col, placed)
    in
    match c.kind with
    | Primitive _ -> if placed then Hashtbl.replace table c.cell_id (row, col)
    | Composite _ -> List.iter (walk ~row ~col ~placed) (Cell.children c)
  in
  walk ~row:0 ~col:0 ~placed:false (Design.root d);
  table

let timing_of_design ?(use_placement = false) d =
  let placements = if use_placement then placements_of d else Hashtbl.create 0 in
  let net_cost ~producer ~consumer ~fanout =
    if use_placement then
      match
        ( Hashtbl.find_opt placements producer.inst.cell_id,
          Hashtbl.find_opt placements consumer.inst.cell_id )
      with
      | Some (r1, c1), Some (r2, c2) ->
        placed_net_delay_ps ~distance:(abs (r1 - r2) + abs (c1 - c2)) ~fanout
      | (Some _ | None), (Some _ | None) -> Virtex.net_delay_ps ~fanout
    else Virtex.net_delay_ps ~fanout
  in
  let prims = Design.all_prims d in
  let nodes =
    List.filter_map
      (fun c ->
         match Cell.prim_of c with
         | None -> None
         | Some prim ->
           let ins = ref [] and outs = ref [] in
           List.iter
             (fun b ->
                match b.dir with
                | Input -> ins := (b.formal, b.actual.nets) :: !ins
                | Output -> outs := (b.formal, b.actual.nets) :: !outs)
             c.port_bindings;
           Some
             { inst = c; prim; t_in = !ins; t_out = !outs;
               arrival = 0; levels = 0; pred = None })
      prims
  in
  let by_cell = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace by_cell n.inst.cell_id n) nodes;
  let driver_of_net = Hashtbl.create 256 in
  List.iter
    (fun n ->
       List.iter
         (fun (_, nets) ->
            Array.iter (fun net -> Hashtbl.replace driver_of_net net.net_id n) nets)
         n.t_out)
    nodes;
  (* topological order over combinational edges (Kahn) *)
  let in_degree = Hashtbl.create 256 in
  let succs = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace in_degree n.inst.cell_id 0) nodes;
  List.iter
    (fun n ->
       List.iter
         (fun port ->
            match List.assoc_opt port n.t_in with
            | None -> ()
            | Some nets ->
              Array.iter
                (fun net ->
                   match Hashtbl.find_opt driver_of_net net.net_id with
                   | None -> ()
                   | Some producer ->
                     Hashtbl.replace in_degree n.inst.cell_id
                       (Hashtbl.find in_degree n.inst.cell_id + 1);
                     Hashtbl.replace succs producer.inst.cell_id
                       ((n, net)
                        :: Option.value
                          (Hashtbl.find_opt succs producer.inst.cell_id)
                          ~default:[]))
                nets)
         (comb_inputs n.prim n.t_in))
    nodes;
  let queue = Queue.create () in
  List.iter
    (fun n ->
       if Hashtbl.find in_degree n.inst.cell_id = 0 then begin
         n.arrival <- (if is_register n.prim then Virtex.clk_to_q_ps else 0);
         Queue.add n queue
       end)
    nodes;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr processed;
    let out_arrival = n.arrival + Virtex.prim_delay_ps n.prim in
    (* constants are configuration, not timing paths: GND/VCC arcs carry
       no arrival *)
    let is_constant =
      match n.prim with
      | Prim.Gnd | Prim.Vcc -> true
      | Prim.Lut _ | Prim.Ff _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and
      | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Buf | Prim.Inv
      | Prim.Black_box _ -> false
    in
    List.iter
      (fun (succ, net) ->
         let fanout = List.length net.sinks in
         let arr =
           if is_constant then 0
           else out_arrival + net_cost ~producer:n ~consumer:succ ~fanout
         in
         if arr > succ.arrival then begin
           succ.arrival <- arr;
           succ.levels <- n.levels + (if counts_as_level n.prim then 1 else 0);
           succ.pred <- Some n
         end;
         let deg = Hashtbl.find in_degree succ.inst.cell_id - 1 in
         Hashtbl.replace in_degree succ.inst.cell_id deg;
         if deg = 0 then Queue.add succ queue)
      (Option.value (Hashtbl.find_opt succs n.inst.cell_id) ~default:[])
  done;
  if !processed <> List.length nodes then begin
    (* report the same canonical cycle membership as the validator and
       the simulators *)
    let cells =
      match Levelize.find_cycle (Design.root d) with
      | Some cells -> List.map Cell.path cells
      | None ->
        List.filter_map
          (fun n ->
             if Hashtbl.find in_degree n.inst.cell_id > 0 then
               Some (Cell.path n.inst)
             else None)
          nodes
    in
    raise (Combinational_cycle_timing cells)
  end;
  (* worst endpoint: register D pins (+setup) and top output nets *)
  let best = ref 0 and best_node = ref None and best_end = ref (At_output "-") in
  List.iter
    (fun n ->
       if is_register n.prim then begin
         (* the path into this register: arrival at its D pin *)
         let d_arrival =
           List.fold_left
             (fun acc (port, nets) ->
                if List.mem port [ "D"; "CE"; "R" ] then
                  Array.fold_left
                    (fun acc net ->
                       match Hashtbl.find_opt driver_of_net net.net_id with
                       | None -> acc
                       | Some producer ->
                         let fanout = List.length net.sinks in
                         max acc
                           (producer.arrival
                            + Virtex.prim_delay_ps producer.prim
                            + Virtex.net_delay_ps ~fanout)
                    )
                    acc nets
                else acc)
             0 n.t_in
         in
         let total = d_arrival + Virtex.setup_ps in
         if total > !best then begin
           best := total;
           best_end := At_register (Cell.path n.inst);
           best_node :=
             List.fold_left
               (fun acc (port, nets) ->
                  if List.mem port [ "D"; "CE"; "R" ] then
                    Array.fold_left
                      (fun acc net ->
                         match Hashtbl.find_opt driver_of_net net.net_id with
                         | None -> acc
                         | Some p ->
                           (match acc with
                            | Some q when q.arrival >= p.arrival -> acc
                            | Some _ | None -> Some p))
                      acc nets
                  else acc)
               None n.t_in
         end
       end)
    nodes;
  List.iter
    (fun p ->
       Array.iter
         (fun net ->
            match Hashtbl.find_opt driver_of_net net.net_id with
            | None -> ()
            | Some producer ->
              let fanout = max 1 (List.length net.sinks) in
              let total =
                producer.arrival
                + Virtex.prim_delay_ps producer.prim
                + Virtex.net_delay_ps ~fanout
              in
              if total > !best then begin
                best := total;
                best_end := At_output p.Design.port_name;
                best_node := Some producer
              end)
         (Jhdl_circuit.Wire.nets p.Design.port_wire))
    (Design.outputs d);
  let rec trace acc = function
    | None -> acc
    | Some n -> trace (Cell.path n.inst :: acc) n.pred
  in
  let path = trace [] !best_node in
  let levels =
    match !best_node with
    | None -> 0
    | Some n -> n.levels + (if counts_as_level n.prim then 1 else 0)
  in
  (* a zero-length path (empty or pure-wire designs) has no meaningful
     frequency — 1e6/0 would report infinity, so it becomes [None] *)
  { critical_path_ps = !best;
    max_frequency_mhz =
      (if !best <= 0 then None
       else Some (1_000_000.0 /. float_of_int !best));
    logic_levels = levels;
    path;
    path_end = !best_end }

let pp_timing_report fmt r =
  Format.fprintf fmt
    "@[<v>critical path: %d ps (%s)@,logic levels: %d@,ends at: %s@]"
    r.critical_path_ps
    (match r.max_frequency_mhz with
     | Some mhz -> Printf.sprintf "%.1f MHz max" mhz
     | None -> "no combinational path")
    r.logic_levels
    (match r.path_end with
     | At_register s -> "register " ^ s
     | At_output s -> "output " ^ s)

type t = {
  area_report : area_report;
  timing_report : timing_report option;
}

let of_design ?(use_placement = false) d =
  let area_report = area_of_design d in
  let timing_report =
    if area_report.prims_by_type = [] then None
    else Some (timing_of_design ~use_placement d)
  in
  { area_report; timing_report }

let pp fmt t =
  pp_area_report fmt t.area_report;
  match t.timing_report with
  | None -> ()
  | Some timing -> Format.fprintf fmt "@,%a" pp_timing_report timing

let to_string t = Format.asprintf "@[<v>%a@]" pp t
