(** Circuit estimators: area and timing.

    The "circuit estimator" tool of the paper's IP executables (Figures 1
    and 2): given a generated circuit it reports the FPGA resources used
    and a static timing estimate, without needing simulation or netlist
    export — the minimum-visibility evaluation a passive customer gets. *)

(** {1 Area} *)

type area_report = {
  area : Jhdl_virtex.Virtex.area;
  slices : int;
  prims_by_type : (string * int) list;
  black_boxes : int;
      (** behavioural models excluded from the resource count *)
}

val area_of_design : Jhdl_circuit.Design.t -> area_report

(** [area_of_cell c] restricts the estimate to one subtree, so an applet
    can report the cost of the generated macro alone. *)
val area_of_cell : Jhdl_circuit.Cell.t -> area_report

val pp_area_report : Format.formatter -> area_report -> unit

(** {1 Static timing} *)

type path_end =
  | At_register of string  (** path ends at a flip-flop data pin *)
  | At_output of string  (** path ends at a top-level output port net *)

type timing_report = {
  critical_path_ps : int;  (** 0 when the design has no timed path *)
  max_frequency_mhz : float option;
      (** [None] when the critical path has zero length (empty or
          pure-wire designs) — there is no meaningful frequency cap *)
  logic_levels : int;  (** LUT/carry levels on the critical path *)
  path : string list;  (** instance paths, source to sink *)
  path_end : path_end;
}

exception Combinational_cycle_timing of string list

(** [timing_of_design ?use_placement d] computes worst arrival over all
    input-to-register, register-to-register and register/input-to-output
    paths, using the {!Jhdl_virtex.Virtex} delay model plus a
    fanout-loaded net delay.

    With [use_placement:true] (default false), a net between two placed
    primitives is charged by Manhattan distance instead of the generic
    loaded-net estimate — pre-placed macros with tight RLOCs then time
    faster than unplaced ones, the Section 2.1 motivation for relative
    placement. Registered outputs include clock-to-out; register
    destinations include setup. *)
val timing_of_design :
  ?use_placement:bool -> Jhdl_circuit.Design.t -> timing_report

(** [placed_net_delay_ps ~distance ~fanout] — the placement-aware net
    cost: short hops between adjacent slices beat the generic estimate,
    long hops cost more. Exposed for the placement ablation. *)
val placed_net_delay_ps : distance:int -> fanout:int -> int

val pp_timing_report : Format.formatter -> timing_report -> unit

(** {1 Combined report} *)

type t = {
  area_report : area_report;
  timing_report : timing_report option;
      (** [None] for designs with no primitives *)
}

val of_design : ?use_placement:bool -> Jhdl_circuit.Design.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
