(** Automatic placement for unplaced designs.

    The paper's module generators carry hand-crafted relative placement;
    this placer provides the other path: given any design, assign RLOCs
    over a slice grid (two LUT sites, two flip-flops and two carry cells
    per slice, matching the {!Jhdl_bitstream} and {!Jhdl_virtex} models).
    A greedy constructive heuristic walks the netlist breadth-first from
    the ports and puts each primitive on the free site nearest the
    centroid of its already-placed neighbours.

    Together with {!Jhdl_estimate.Estimate.timing_of_design}'s
    placement-aware mode this closes the loop the paper motivates in
    Section 2.1: placement quality is measurable, and hand-placed macros
    can be compared against auto- and randomly-placed versions of the
    same netlist (bench A4). *)

type result = {
  placed : int;  (** primitives that received a location *)
  skipped : int;  (** zero-area primitives (BUF/GND/VCC/black boxes) *)
  wirelength : int;  (** half-perimeter total after placement *)
  rows : int;
  cols : int;
}

(** Slice site kinds; each slice holds two of each (matching the
    {!Jhdl_virtex} and {!Jhdl_bitstream} models). *)
type resource =
  | Lut_site
  | Ff_site
  | Carry_site

(** [resource_of prim] — the site kind [prim] occupies, [None] for
    zero-area primitives. *)
val resource_of : Jhdl_circuit.Prim.t -> resource option

(** [positions_of d] — accumulated-RLOC absolute position of every placed
    primitive, keyed by cell id. Shared with the timing estimator and the
    lint engine's placement checks. *)
val positions_of : Jhdl_circuit.Design.t -> (int, int * int) Hashtbl.t

(** [wirelength d] — half-perimeter wirelength over nets whose driver
    and sinks are all placed; [None] when nothing is placed. *)
val wirelength : Jhdl_circuit.Design.t -> int option

(** [auto_place d ~rows ~cols] — strip existing RLOCs and place every
    area-consuming primitive. Raises [Invalid_argument] when the design
    does not fit the grid. *)
val auto_place : Jhdl_circuit.Design.t -> rows:int -> cols:int -> result

(** [random_place d ~rows ~cols ~seed] — the baseline: same legality
    rules, positions drawn from a deterministic PRNG. *)
val random_place :
  Jhdl_circuit.Design.t -> rows:int -> cols:int -> seed:int -> result
