module Metering = Jhdl_security.Metering

type command =
  | List_ips
  | Select of string
  | Ip_command of Applet.command

let command_to_string = function
  | List_ips -> "ips"
  | Select name -> Printf.sprintf "select %s" name
  | Ip_command c -> Applet.command_to_string c

type entry = {
  ip : Ip_module.t;
  applet : Applet.t;
}

type t = {
  entries : entry list;
  mutable active : entry;
  lint_cache : Jhdl_lint.Lint.report Jhdl_cache.Store.t option;
  clock : unit -> float;
}

let create ?lint_cache ?(clock = fun () -> 0.) ~ips ~license ~user () =
  match ips with
  | [] -> invalid_arg "Suite.create: no IP modules"
  | _ :: _ ->
    let meter = Metering.create ~limits:license.License.limits in
    let entries =
      List.map
        (fun ip -> { ip; applet = Applet.create ~ip ~license ~user ~meter () })
        ips
    in
    (match entries with
     | first :: _ -> { entries; active = first; lint_cache; clock }
     | [] -> assert false)

let selected t = t.active.ip

let find t name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun e -> String.lowercase_ascii e.ip.Ip_module.ip_name = lower)
    t.entries

let applet_of t name = Option.map (fun e -> e.applet) (find t name)

let exec t command =
  match command with
  | List_ips ->
    let lines =
      List.map
        (fun e ->
           Printf.sprintf "%s %-24s %s [lint: %s]"
             (if e == t.active then "*" else " ")
             e.ip.Ip_module.ip_name e.ip.Ip_module.description
             (Catalog.lint_summary ?cache:t.lint_cache ~now:(t.clock ())
                e.ip))
        t.entries
    in
    Ok (String.concat "\n" lines)
  | Select name ->
    (match find t name with
     | Some entry ->
       t.active <- entry;
       Ok (Printf.sprintf "selected %s" entry.ip.Ip_module.ip_name)
     | None -> Error (Printf.sprintf "no IP named %s in this applet" name))
  | Ip_command c -> Applet.exec t.active.applet c

let run_script t commands =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun command ->
       Buffer.add_string buffer ("> " ^ command_to_string command ^ "\n");
       (match exec t command with
        | Ok text -> Buffer.add_string buffer text
        | Error message -> Buffer.add_string buffer ("ERROR: " ^ message));
       Buffer.add_char buffer '\n')
    commands;
  Buffer.contents buffer
