module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Bits = Jhdl_logic.Bits
module Kcm = Jhdl_modgen.Kcm
module Fir = Jhdl_modgen.Fir
module Counter = Jhdl_modgen.Counter
module Cordic = Jhdl_modgen.Cordic
module Wallace = Jhdl_modgen.Wallace
module Divider = Jhdl_modgen.Divider
module Testbench = Jhdl_sim.Testbench
module Store = Jhdl_cache.Store
module Delivery = Jhdl_cache.Delivery

let vendor = "BYU Configurable Computing Lab"

let kcm_build assignment =
  let n = Ip_module.int_param assignment "multiplicand_width" in
  let pw = Ip_module.int_param assignment "product_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let pipelined_mode = Ip_module.bool_param assignment "pipelined" in
  let constant = Ip_module.int_param assignment "constant" in
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let multiplicand = Wire.create top ~name:"multiplicand" n in
  let product = Wire.create top ~name:"product" pw in
  let kcm =
    Kcm.create top ~clk ~multiplicand ~product ~signed_mode ~pipelined_mode
      ~constant ()
  in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "multiplicand" Types.Input multiplicand;
  Design.add_port design "product" Types.Output product;
  { Ip_module.design;
    clock_port = Some "clk";
    latency = kcm.Kcm.latency;
    notes =
      [ Printf.sprintf "full product width %d, %d partial-product table(s)"
          kcm.Kcm.full_width kcm.Kcm.table_count ] }

let kcm_reference assignment inputs =
  let n = Ip_module.int_param assignment "multiplicand_width" in
  let pw = Ip_module.int_param assignment "product_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let constant = Ip_module.int_param assignment "constant" in
  let kw = Jhdl_modgen.Util.bits_for_constant constant in
  List.map
    (fun x ->
       Kcm.expected_product ~signed_mode ~constant ~full_width:(n + kw)
         ~product_width:pw x)
    inputs

(* vendor-shipped validation bench: drive a spread of multiplicands,
   expect the golden products, honouring the pipeline latency *)
let kcm_bench assignment (built : Ip_module.built) =
  let n = Ip_module.int_param assignment "multiplicand_width" in
  let pw = Ip_module.int_param assignment "product_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let constant = Ip_module.int_param assignment "constant" in
  let kw = Jhdl_modgen.Util.bits_for_constant constant in
  let latency = built.Ip_module.latency in
  let sample i = (i * 37) land ((1 lsl n) - 1) in
  List.concat_map
    (fun i ->
       let x = Bits.of_int ~width:n (sample i) in
       let expected =
         Kcm.expected_product ~signed_mode ~constant ~full_width:(n + kw)
           ~product_width:pw x
       in
       [ Testbench.Drive ("multiplicand", x) ]
       @ (if latency = 0 then [ Testbench.Settle ]
          else [ Testbench.Step latency ])
       @ [ Testbench.Expect ("product", expected) ])
    (List.init 12 (fun i -> i))

let kcm =
  { Ip_module.ip_name = "VirtexKCMMultiplier";
    vendor;
    description =
      "Optimized constant coefficient multiplier using partial-product \
       look-up tables (Virtex, pre-placed)";
    params =
      [ ("multiplicand_width",
         Ip_module.Int_param { min_value = 2; max_value = 16; default = 8 });
        ("product_width",
         Ip_module.Int_param { min_value = 2; max_value = 32; default = 12 });
        ("signed", Ip_module.Bool_param { default = true });
        ("pipelined", Ip_module.Bool_param { default = true });
        ("constant",
         Ip_module.Int_param
           { min_value = -32768; max_value = 32767; default = -56 }) ];
    build = kcm_build;
    reference = Some kcm_reference;
    shipped_bench = Some kcm_bench }

let fir_coefficient_sets =
  [ ("lowpass5", [ 1; 4; 6; 4; 1 ]);
    ("highpass5", [ -1; -2; 6; -2; -1 ]);
    ("edge3", [ -1; 2; -1 ]);
    ("boxcar4", [ 1; 1; 1; 1 ]) ]

let fir_build assignment =
  let xw = Ip_module.int_param assignment "input_width" in
  let yw = Ip_module.int_param assignment "output_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let set_name = Ip_module.choice_param assignment "taps" in
  let coefficients = List.assoc set_name fir_coefficient_sets in
  if (not signed_mode) && List.exists (fun c -> c < 0) coefficients then
    invalid_arg
      (Printf.sprintf "coefficient set %s needs signed mode" set_name);
  let top = Cell.root ~name:"fir_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" xw in
  let y = Wire.create top ~name:"y" yw in
  let fir = Fir.create top ~clk ~x ~y ~signed_mode ~coefficients () in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "x" Types.Input x;
  Design.add_port design "y" Types.Output y;
  { Ip_module.design;
    clock_port = Some "clk";
    latency = 0;
    notes =
      [ Printf.sprintf "%d taps (%s), accumulation width %d" fir.Fir.taps
          set_name fir.Fir.full_width ] }

let fir_reference assignment inputs =
  let xw = Ip_module.int_param assignment "input_width" in
  let yw = Ip_module.int_param assignment "output_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let set_name = Ip_module.choice_param assignment "taps" in
  let coefficients = List.assoc set_name fir_coefficient_sets in
  let full_width = Fir.accumulation_width ~x_width:xw ~coefficients in
  let samples =
    List.map
      (fun v ->
         match
           if signed_mode then Bits.to_signed_int v else Bits.to_int v
         with
         | Some n -> n
         | None -> 0)
      inputs
  in
  Fir.expected_response ~signed_mode ~coefficients ~full_width ~out_width:yw
    samples

let fir_bench assignment (_ : Ip_module.built) =
  let xw = Ip_module.int_param assignment "input_width" in
  let yw = Ip_module.int_param assignment "output_width" in
  let signed_mode = Ip_module.bool_param assignment "signed" in
  let set_name = Ip_module.choice_param assignment "taps" in
  let coefficients = List.assoc set_name fir_coefficient_sets in
  let full_width = Fir.accumulation_width ~x_width:xw ~coefficients in
  let limit = 1 lsl (xw - 1) in
  let samples = List.init 10 (fun i -> ((i * 23) mod (2 * limit)) - limit) in
  let samples =
    if signed_mode then samples else List.map (fun s -> abs s) samples
  in
  let expected =
    Fir.expected_response ~signed_mode ~coefficients ~full_width
      ~out_width:yw samples
  in
  List.concat
    (List.map2
       (fun x e ->
          (* y(n) is combinational in x(n): check before the edge *)
          [ Testbench.Drive ("x", Bits.of_int ~width:xw x);
            Testbench.Settle;
            Testbench.Expect ("y", e);
            Testbench.Step 1 ])
       samples expected)

let fir =
  { Ip_module.ip_name = "FirFilter";
    vendor;
    description =
      "Transposed-form constant-coefficient FIR filter built from KCM \
       multipliers";
    params =
      [ ("input_width",
         Ip_module.Int_param { min_value = 2; max_value = 12; default = 8 });
        ("output_width",
         Ip_module.Int_param { min_value = 4; max_value = 40; default = 20 });
        ("signed", Ip_module.Bool_param { default = true });
        ("taps",
         Ip_module.Choice_param
           { choices = List.map fst fir_coefficient_sets;
             default = "lowpass5" }) ];
    build = fir_build;
    reference = Some fir_reference;
    shipped_bench = Some fir_bench }

let counter_build assignment =
  let width = Ip_module.int_param assignment "width" in
  let has_enable = Ip_module.bool_param assignment "has_enable" in
  let top = Cell.root ~name:"counter_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" width in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  if has_enable then begin
    let ce = Wire.create top ~name:"ce" 1 in
    let _ = Counter.up_counter top ~clk ~ce ~q () in
    Design.add_port design "ce" Types.Input ce
  end
  else begin
    let _ = Counter.up_counter top ~clk ~q () in
    ()
  end;
  Design.add_port design "q" Types.Output q;
  { Ip_module.design; clock_port = Some "clk"; latency = 1; notes = [] }

let counter_bench assignment (_ : Ip_module.built) =
  let width = Ip_module.int_param assignment "width" in
  let has_enable = Ip_module.bool_param assignment "has_enable" in
  let wrap = 1 lsl width in
  (if has_enable then [ Testbench.Drive ("ce", Bits.of_int ~width:1 1) ]
   else [])
  @ [ Testbench.Expect ("q", Bits.zero width);
      Testbench.Step 5;
      Testbench.Expect ("q", Bits.of_int ~width (5 mod wrap));
      Testbench.Step wrap;
      Testbench.Expect ("q", Bits.of_int ~width (5 mod wrap)) ]
  @
  if has_enable then
    [ Testbench.Drive ("ce", Bits.of_int ~width:1 0);
      Testbench.Step 3;
      Testbench.Expect ("q", Bits.of_int ~width (5 mod wrap)) ]
  else []

let counter =
  { Ip_module.ip_name = "UpCounter";
    vendor;
    description = "Carry-chain binary up-counter";
    params =
      [ ("width",
         Ip_module.Int_param { min_value = 1; max_value = 16; default = 8 });
        ("has_enable", Ip_module.Bool_param { default = false }) ];
    build = counter_build;
    reference = None;
    shipped_bench = Some counter_bench }

let cordic_build assignment =
  let width = Ip_module.int_param assignment "width" in
  let iterations = Ip_module.int_param assignment "iterations" in
  let pipelined = Ip_module.bool_param assignment "pipelined" in
  let top = Cell.root ~name:"cordic_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let angle = Wire.create top ~name:"angle" width in
  let cos_out = Wire.create top ~name:"cos" width in
  let sin_out = Wire.create top ~name:"sin" width in
  let cordic =
    Cordic.create top ~clk ~angle ~cos_out ~sin_out ~iterations ~pipelined ()
  in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "angle" Types.Input angle;
  Design.add_port design "cos" Types.Output cos_out;
  Design.add_port design "sin" Types.Output sin_out;
  { Ip_module.design;
    clock_port = Some "clk";
    latency = cordic.Cordic.latency;
    notes =
      [ Printf.sprintf "%d unrolled iterations; outputs scaled by 2^%d"
          cordic.Cordic.iterations (width - 2) ] }

let cordic_bench assignment (built : Ip_module.built) =
  let width = Ip_module.int_param assignment "width" in
  let iterations = Ip_module.int_param assignment "iterations" in
  let latency = built.Ip_module.latency in
  let quarter = 1 lsl (width - 2) in
  List.concat_map
    (fun angle ->
       let cos_ref, sin_ref = Cordic.reference ~width ~iterations angle in
       [ Testbench.Drive ("angle", Bits.of_int ~width angle) ]
       @ (if latency = 0 then [ Testbench.Settle ]
          else [ Testbench.Step latency ])
       @ [ Testbench.Expect ("cos", Bits.of_int ~width cos_ref);
           Testbench.Expect ("sin", Bits.of_int ~width sin_ref) ])
    [ 0; quarter / 2; -quarter / 2; quarter; -quarter; 1; -1 ]

let cordic =
  { Ip_module.ip_name = "CordicRotator";
    vendor;
    description = "Fixed-point CORDIC sine/cosine rotator (unrolled)";
    params =
      [ ("width",
         Ip_module.Int_param { min_value = 6; max_value = 32; default = 12 });
        ("iterations",
         Ip_module.Int_param { min_value = 1; max_value = 32; default = 10 });
        ("pipelined", Ip_module.Bool_param { default = false }) ];
    build = cordic_build;
    reference = None;
    shipped_bench = Some cordic_bench }

let wallace_build assignment =
  let aw = Ip_module.int_param assignment "a_width" in
  let bw = Ip_module.int_param assignment "b_width" in
  let pw = Ip_module.int_param assignment "product_width" in
  let top = Cell.root ~name:"wallace_top" () in
  let a = Wire.create top ~name:"a" aw in
  let b = Wire.create top ~name:"b" bw in
  let product = Wire.create top ~name:"product" pw in
  let w = Wallace.create top ~a ~b ~product () in
  let design = Design.create top in
  Design.add_port design "a" Types.Input a;
  Design.add_port design "b" Types.Input b;
  Design.add_port design "product" Types.Output product;
  { Ip_module.design;
    clock_port = None;
    latency = 0;
    notes =
      [ Printf.sprintf
          "%d reduction stage(s), %d full + %d half adders, full width %d"
          w.Wallace.stages w.Wallace.full_adders w.Wallace.half_adders
          w.Wallace.full_width ] }

let wallace_bench assignment (_ : Ip_module.built) =
  let aw = Ip_module.int_param assignment "a_width" in
  let bw = Ip_module.int_param assignment "b_width" in
  let pw = Ip_module.int_param assignment "product_width" in
  List.concat_map
    (fun i ->
       let x = (i * 37) land ((1 lsl aw) - 1) in
       let y = (i * 23) land ((1 lsl bw) - 1) in
       [ Testbench.Drive ("a", Bits.of_int ~width:aw x);
         Testbench.Drive ("b", Bits.of_int ~width:bw y);
         Testbench.Settle;
         Testbench.Expect
           ("product",
            Wallace.expected_product ~a_width:aw ~b_width:bw ~product_width:pw
              x y) ])
    (List.init 12 (fun i -> i))

let wallace =
  { Ip_module.ip_name = "WallaceTreeMultiplier";
    vendor;
    description =
      "Variable-by-variable unsigned multiplier with column-compressed \
       Wallace-tree reduction";
    params =
      [ ("a_width",
         Ip_module.Int_param { min_value = 2; max_value = 12; default = 8 });
        ("b_width",
         Ip_module.Int_param { min_value = 2; max_value = 12; default = 8 });
        ("product_width",
         Ip_module.Int_param { min_value = 2; max_value = 24; default = 16 }) ];
    build = wallace_build;
    reference = None;
    shipped_bench = Some wallace_bench }

let divider_build assignment =
  let n = Ip_module.int_param assignment "dividend_width" in
  let m = Ip_module.int_param assignment "divisor_width" in
  let pipelined = Ip_module.bool_param assignment "pipelined" in
  let top = Cell.root ~name:"divider_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let dividend = Wire.create top ~name:"dividend" n in
  let divisor = Wire.create top ~name:"divisor" m in
  let quotient = Wire.create top ~name:"quotient" n in
  let remainder = Wire.create top ~name:"remainder" m in
  let div =
    Divider.create top ~clk ~dividend ~divisor ~quotient ~remainder
      ~pipelined ()
  in
  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "dividend" Types.Input dividend;
  Design.add_port design "divisor" Types.Input divisor;
  Design.add_port design "quotient" Types.Output quotient;
  Design.add_port design "remainder" Types.Output remainder;
  { Ip_module.design;
    clock_port = Some "clk";
    latency = div.Divider.latency;
    notes =
      [ Printf.sprintf "%d restoring stage(s), one division per cycle"
          div.Divider.stages ] }

let divider_bench assignment (built : Ip_module.built) =
  let n = Ip_module.int_param assignment "dividend_width" in
  let m = Ip_module.int_param assignment "divisor_width" in
  let latency = built.Ip_module.latency in
  List.concat_map
    (fun i ->
       let x = (i * 41) land ((1 lsl n) - 1) in
       let y = (i * 13) land ((1 lsl m) - 1) in
       let q, r = Divider.reference ~dividend_width:n ~divisor_width:m x y in
       [ Testbench.Drive ("dividend", Bits.of_int ~width:n x);
         Testbench.Drive ("divisor", Bits.of_int ~width:m y) ]
       @ (if latency = 0 then [ Testbench.Settle ]
          else [ Testbench.Step latency ])
       @ [ Testbench.Expect ("quotient", Bits.of_int ~width:n q);
           Testbench.Expect ("remainder", Bits.of_int ~width:m r) ])
    (List.init 10 (fun i -> i + 1))

let divider =
  { Ip_module.ip_name = "PipelinedDivider";
    vendor;
    description =
      "Unsigned restoring-array divider, one stage per dividend bit, \
       optionally fully pipelined";
    params =
      [ ("dividend_width",
         Ip_module.Int_param { min_value = 2; max_value = 12; default = 8 });
        ("divisor_width",
         Ip_module.Int_param { min_value = 2; max_value = 8; default = 4 });
        ("pipelined", Ip_module.Bool_param { default = true }) ];
    build = divider_build;
    reference = None;
    shipped_bench = Some divider_bench }

let all = [ kcm; fir; counter; cordic; wallace; divider ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun ip -> String.lowercase_ascii ip.Ip_module.ip_name = lower)
    all

type elaboration_error = {
  failed_ip : string;
  exception_name : string;
  detail : string;
}

let elaboration_error_to_string e =
  Printf.sprintf "failed to elaborate %s: %s" e.failed_ip e.detail

(* the verdict cache is keyed by the generator invocation — name,
   canonicalized default parameters, tech-library version — so a hit
   skips elaboration entirely; elaboration is deterministic in exactly
   those inputs, which is what makes the address honest *)
let lint_descriptor ip =
  Delivery.generator_descriptor
    ~generator:("lint:" ^ ip.Ip_module.ip_name)
    ~params:
      (List.map
         (fun (k, v) -> (k, Ip_module.param_to_string v))
         (Ip_module.defaults ip))

let lint_verdict ?cache ?(now = 0.) ip =
  let descriptor = lint_descriptor ip in
  let cached =
    match cache with
    | Some store -> Store.find store ~now ~descriptor
    | None -> None
  in
  match cached with
  | Some report -> Ok report
  | None ->
    (match ip.Ip_module.build (Ip_module.defaults ip) with
     | exception e ->
       Error
         { failed_ip = ip.Ip_module.ip_name;
           exception_name = Printexc.exn_slot_name e;
           detail = Printexc.to_string e }
     | built ->
       let report = Jhdl_lint.Lint.run built.Ip_module.design in
       (match cache with
        | Some store ->
          ignore
            (Store.add store ~now ~descriptor
               ~bytes:(String.length (Jhdl_lint.Lint.to_json report))
               report
             : string list)
        | None -> ());
       Ok report)

(* catalog-facing lint summary: counts only (the full report is the
   lint tool's job) *)
let lint_summary ?cache ?now ip =
  match lint_verdict ?cache ?now ip with
  | Ok report -> Jhdl_lint.Lint.summary report
  | Error e -> elaboration_error_to_string e
