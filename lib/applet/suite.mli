(** Multi-IP delivery applet.

    The paper's future work names "developing applets that deliver more
    than one IP module". A suite wraps one applet per catalog entry
    behind a single executable with an IP selector; the license (and its
    meters) is shared across the suite, so an evaluation cap applies to
    the customer, not per module. *)

type t

type command =
  | List_ips  (** show the catalog slice this suite carries *)
  | Select of string  (** switch the active IP by name *)
  | Ip_command of Applet.command  (** forwarded to the active IP's applet *)

val command_to_string : command -> string

(** [create ?lint_cache ?clock ~ips ~license ~user ()] — one shared
    license and meter; the first IP is initially selected. [ips] must be
    non-empty. With [lint_cache], catalog listings serve each entry's
    lint verdict content-addressed instead of re-elaborating per
    listing; [clock] timestamps cache recency (defaults to a constant —
    LRU order is maintained structurally either way). *)
val create :
  ?lint_cache:Jhdl_lint.Lint.report Jhdl_cache.Store.t ->
  ?clock:(unit -> float) ->
  ips:Ip_module.t list ->
  license:License.t ->
  user:string ->
  unit ->
  t

val selected : t -> Ip_module.t

(** [applet_of t name] — the per-IP applet, for tools layered on top;
    [None] for names outside the suite. *)
val applet_of : t -> string -> Applet.t option

val exec : t -> command -> (string, string) result
val run_script : t -> command list -> string
