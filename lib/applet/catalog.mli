(** The vendor's IP catalog: module generators packaged as deliverable
    {!Ip_module.t} values. [kcm] is the paper's constant coefficient
    multiplier applet (Figures 1 and 3); [fir] is the "more complicated
    IP" of the future-work section and the second black box in the
    Figure 4 scenario; [counter] is a small logic module rounding out the
    catalog. *)

(** Parameters: [multiplicand_width] (2..16), [product_width] (2..32),
    [signed], [pipelined], [constant] (-32768..32767). Ports:
    [multiplicand], [product], [clk]. *)
val kcm : Ip_module.t

(** Parameters: [input_width] (2..12), [output_width] (4..40), [signed],
    [taps] as a choice of preset coefficient sets. Ports: [x], [y],
    [clk]. *)
val fir : Ip_module.t

(** Parameters: [width] (1..16), [has_enable]. Ports: [q], [clk],
    optionally [ce]. *)
val counter : Ip_module.t

(** Parameters: [width] (6..32), [iterations] (1..32), [pipelined].
    Ports: [angle], [cos], [sin], [clk]. *)
val cordic : Ip_module.t

(** Parameters: [a_width] (2..12), [b_width] (2..12), [product_width]
    (2..24). Ports: [a], [b], [product] — combinational. *)
val wallace : Ip_module.t

(** Parameters: [dividend_width] (2..12), [divisor_width] (2..8),
    [pipelined]. Ports: [dividend], [divisor], [quotient], [remainder],
    [clk]. *)
val divider : Ip_module.t

val all : Ip_module.t list

(** [find name] — case-insensitive catalog lookup. *)
val find : string -> Ip_module.t option

(** [fir_coefficient_sets] — the named presets the [taps] choice offers. *)
val fir_coefficient_sets : (string * int list) list

(** Why an [ip]'s default-parameter elaboration failed — a typed
    verdict, not a swallowed exception string. *)
type elaboration_error = {
  failed_ip : string;
  exception_name : string;  (** exception constructor, e.g.
                                ["Invalid_argument"] *)
  detail : string;  (** [Printexc] rendering of the payload *)
}

val elaboration_error_to_string : elaboration_error -> string

(** [lint_verdict ?cache ?now ip] — the lint report for [ip] elaborated
    at its default parameters. With [cache] the verdict is served
    content-addressed (key: generator name, canonical defaults,
    tech-library version — all the elaboration depends on), so a hit
    skips elaboration entirely; misses populate the store at [now]. *)
val lint_verdict :
  ?cache:Jhdl_lint.Lint.report Jhdl_cache.Store.t ->
  ?now:float ->
  Ip_module.t ->
  (Jhdl_lint.Lint.report, elaboration_error) result

(** [lint_summary ?cache ?now ip] — one-line count summary of
    {!lint_verdict} (e.g. ["0 error(s), 14 warning(s), 0 info"]), or the
    elaboration-failure note. Shown next to catalog entries. *)
val lint_summary :
  ?cache:Jhdl_lint.Lint.report Jhdl_cache.Store.t ->
  ?now:float ->
  Ip_module.t ->
  string
