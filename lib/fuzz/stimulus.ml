module Bits = Jhdl_logic.Bits

type t = { steps : Bits.t array array }

let step_count s = Array.length s.steps

let truncate s n =
  let n = max 1 (min n (Array.length s.steps)) in
  { steps = Array.sub s.steps 0 n }

let keep_columns s keep =
  { steps =
      Array.map
        (fun row ->
           let kept = ref [] in
           Array.iteri
             (fun k v -> if k < Array.length keep && keep.(k) then kept := v :: !kept)
             row;
           Array.of_list (List.rev !kept))
        s.steps }

let drop_column s k =
  let width = match s.steps with [||] -> 0 | _ -> Array.length s.steps.(0) in
  let keep = Array.init width (fun i -> i <> k) in
  keep_columns s keep

let to_string s =
  let b = Buffer.create 128 in
  Array.iter
    (fun row ->
       Array.iter (fun v -> Buffer.add_string b (Bits.to_string v)) row;
       Buffer.add_char b '\n')
    s.steps;
  Buffer.contents b
