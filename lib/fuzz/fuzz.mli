(** Fuzz campaign driver: generate, validate, reduce, report.

    A campaign is a pure function of its configuration: the master
    seed fans out through {!Jhdl_faults.Prng.split} to one independent
    stream per case (and per role — generation vs stimulus), so any
    failing case replays in isolation from the campaign seed and its
    index, and the whole report is byte-identical across runs. *)

type config = {
  seed : int;
  count : int;  (** cases to generate *)
  params : Gen.params;
  steps : int;  (** stimulus steps per case *)
  oracles : Oracle.kind list;
  reduce : bool;  (** minimize failing cases *)
  inject_bug : bool;  (** arm the simulated MULT_AND kernel defect *)
}

val default_config : config

type failure = {
  case : int;
  oracle : Oracle.kind;
  message : string;
  recipe : Recipe.t;
  stimulus : Stimulus.t;
  reduced : Reduce.result option;  (** present when [reduce] was set *)
}

type outcome = {
  cases : int;
  total_entries : int;  (** recipe entries generated, all cases *)
  oracle_runs : (Oracle.kind * int * int) list;  (** kind, runs, fails *)
  coverage : (string * int) list;
      (** primitive-kind histogram over all generated recipes,
          name-sorted *)
  failures : failure list;
}

(** [run ?metrics config] — [metrics], when a live registry, collects
    campaign-wide batch-kernel instruments (see {!Oracle.run}). *)
val run : ?metrics:Jhdl_metrics.Metrics.t -> config -> outcome

val total_failures : outcome -> int

(** [summary o] — deterministic multi-line report (coverage, per-oracle
    verdicts, failure details with reduced sizes), suitable for cram
    pinning. *)
val summary : outcome -> string

(** [failure_report f] — full reproducer text for one failure: seed
    context, minimized (or original) recipe and stimulus, message. *)
val failure_report : f:failure -> seed:int -> string

(** [case_rngs ~seed ~case] — the (generation, stimulus) streams the
    campaign uses for case [case]; exposed so a reproducer can be
    regenerated without running the whole campaign. *)
val case_rngs :
  seed:int -> case:int -> Jhdl_faults.Prng.t * Jhdl_faults.Prng.t
