(** Seeded random design generation over the full Virtex primitive set.

    Every decision draws from one {!Jhdl_faults.Prng} stream in a fixed
    order, so a recipe (and its stimulus) is a pure function of the
    stream's seed — the same replay discipline as the fault model.
    Generated recipes are valid by construction: references only point
    backward (DAG wiring), sequential primitives clock from the single
    dedicated clock, and input selection prefers signals below the
    fan-out cap. [Black_box] is deliberately excluded — its opaque
    closure state cannot be snapshotted, and the snapshot oracle runs
    on every generated design. *)

type params = {
  max_inputs : int;  (** stimulus ports drawn: 1..max_inputs *)
  max_cells : int;  (** body entries drawn: 1..max_cells *)
  fanout_cap : int;
      (** soft per-signal consumer cap; selection falls back to the
          full signal pool only when every candidate is saturated *)
}

val default_params : params

(** [recipe rng ?name params] — draw a well-formed recipe. *)
val recipe : Jhdl_faults.Prng.t -> ?name:string -> params -> Recipe.t

(** [stimulus rng recipe ~steps] — draw a [steps]-row stimulus matrix
    for [recipe]'s input entries; roughly one bit in eight is X or Z. *)
val stimulus : Jhdl_faults.Prng.t -> Recipe.t -> steps:int -> Stimulus.t
