module Bits = Jhdl_logic.Bits
module Design = Jhdl_circuit.Design
module Simulator = Jhdl_sim.Simulator
module Reference = Jhdl_sim.Reference
module Snapshot = Jhdl_sim.Snapshot
module Model = Jhdl_netlist.Model
module Edif = Jhdl_netlist.Edif
module Edif_reader = Jhdl_netlist.Edif_reader
module Vhdl = Jhdl_netlist.Vhdl
module Verilog = Jhdl_netlist.Verilog
module Xnf = Jhdl_netlist.Xnf
module Estimate = Jhdl_estimate.Estimate
module Lint = Jhdl_lint.Lint
module Virtex = Jhdl_virtex.Virtex

type kind =
  | Sim_vs_ref
  | Snapshot_rt
  | Netlist_rt
  | Lint_clean
  | Estimate_mono
  | Batch_equiv
  | Absint_sound

type verdict =
  | Pass
  | Fail of string

let all =
  [ Sim_vs_ref; Snapshot_rt; Netlist_rt; Lint_clean; Estimate_mono;
    Batch_equiv; Absint_sound ]

let kind_to_string = function
  | Sim_vs_ref -> "sim-vs-ref"
  | Snapshot_rt -> "snapshot"
  | Netlist_rt -> "netlist"
  | Lint_clean -> "lint"
  | Estimate_mono -> "estimate"
  | Batch_equiv -> "batch"
  | Absint_sound -> "absint"

let kind_of_string = function
  | "sim-vs-ref" | "sim" -> Some Sim_vs_ref
  | "snapshot" -> Some Snapshot_rt
  | "netlist" -> Some Netlist_rt
  | "lint" -> Some Lint_clean
  | "estimate" -> Some Estimate_mono
  | "batch" -> Some Batch_equiv
  | "absint" -> Some Absint_sound
  | _ -> None

exception Divergence of string

let divergef fmt = Printf.ksprintf (fun m -> raise (Divergence m)) fmt

(* ------------------------------------------------------------------ *)
(* Sim_vs_ref                                                          *)

let assignments (built : Recipe.built) row =
  List.mapi (fun k port -> (port, row.(k))) built.input_ports

let check_ports ~ctx (built : Recipe.built) dut rf =
  List.iter
    (fun port ->
       let a = Simulator.get_port dut port
       and b = Reference.get_port rf port in
       if not (Bits.equal a b) then
         divergef "%s: port %s: kernel=%s reference=%s" ctx port
           (Bits.to_string a) (Bits.to_string b))
    built.output_ports

let check_histories ~ctx h_dut h_ref =
  if List.length h_dut <> List.length h_ref then
    divergef "%s: watch count: kernel=%d reference=%d" ctx
      (List.length h_dut) (List.length h_ref);
  List.iter2
    (fun (l1, s1) (l2, s2) ->
       if not (String.equal l1 l2) then
         divergef "%s: watch label %s vs %s" ctx l1 l2;
       if List.length s1 <> List.length s2 then
         divergef "%s: watch %s: %d vs %d samples" ctx l1 (List.length s1)
           (List.length s2);
       List.iter2
         (fun (c1, v1) (c2, v2) ->
            if c1 <> c2 || not (Bits.equal v1 v2) then
              divergef "%s: watch %s: kernel (%d,%s) vs reference (%d,%s)"
                ctx l1 c1 (Bits.to_string v1) c2 (Bits.to_string v2))
         s1 s2)
    h_dut h_ref

let watch_all (built : Recipe.built) dut rf =
  List.iter
    (fun port ->
       match Design.find_port built.design port with
       | Some p ->
         Simulator.watch dut ~label:port p.Design.port_wire;
         Reference.watch rf ~label:port p.Design.port_wire
       | None -> divergef "built design lost port %s" port)
    built.output_ports

let sim_vs_ref ~inject_bug recipe stim =
  let built = Recipe.build recipe in
  let clock = built.Recipe.clock in
  let dut = Simulator.create ?clock built.Recipe.design in
  let rf = Reference.create ?clock built.Recipe.design in
  watch_all built dut rf;
  let dut_hooks = ref [] and ref_hooks = ref [] in
  List.iter
    (fun tag ->
       Simulator.on_cycle dut (fun c -> dut_hooks := (tag, c) :: !dut_hooks);
       Reference.on_cycle rf (fun c -> ref_hooks := (tag, c) :: !ref_hooks))
    [ 1; 2 ];
  check_ports ~ctx:"initial" built dut rf;
  Array.iteri
    (fun step row ->
       let stimulus = assignments built row in
       (* kernel takes the endpoint's batch path, the reference the
          per-port path: both orders must settle identically *)
       Simulator.set_inputs dut stimulus;
       List.iter (fun (port, v) -> Reference.set_input rf port v) stimulus;
       check_ports ~ctx:(Printf.sprintf "step %d, after inputs" step) built
         dut rf;
       Simulator.cycle dut;
       Reference.cycle rf;
       check_ports ~ctx:(Printf.sprintf "step %d, after cycle" step) built
         dut rf)
    stim.Stimulus.steps;
  if Simulator.cycle_count dut <> Reference.cycle_count rf then
    divergef "cycle counters: kernel=%d reference=%d"
      (Simulator.cycle_count dut) (Reference.cycle_count rf);
  if !dut_hooks <> !ref_hooks then divergef "cycle hook order diverged";
  check_histories ~ctx:"final" (Simulator.history dut) (Reference.history rf);
  (* the injected defect used by the reducer-convergence tests: claim
     the kernel mis-evaluates MULT_AND partial products *)
  if
    inject_bug
    && Array.exists
         (fun e ->
            match e.Recipe.node with
            | Recipe.Mult_and _ -> true
            | _ -> false)
         recipe.Recipe.entries
  then divergef "injected defect: MULT_AND partial product inverted";
  Simulator.reset dut;
  Reference.reset rf;
  check_ports ~ctx:"after reset" built dut rf;
  check_histories ~ctx:"after reset" (Simulator.history dut)
    (Reference.history rf)

(* ------------------------------------------------------------------ *)
(* Snapshot_rt                                                         *)

let snapshot_rt recipe stim =
  let built = Recipe.build recipe in
  let clock = built.Recipe.clock in
  let dut = Simulator.create ?clock built.Recipe.design in
  let rf = Reference.create ?clock built.Recipe.design in
  watch_all built dut rf;
  let steps = stim.Stimulus.steps in
  let half = Array.length steps / 2 in
  let drive sim_assign ref_assign row =
    sim_assign (assignments built row);
    ref_assign (assignments built row)
  in
  for i = 0 to half - 1 do
    drive (Simulator.set_inputs dut)
      (List.iter (fun (p, v) -> Reference.set_input rf p v))
      steps.(i);
    Simulator.cycle dut;
    Reference.cycle rf
  done;
  let blob_k = Simulator.snapshot dut in
  let blob_r = Reference.snapshot rf in
  if not (String.equal blob_k blob_r) then
    divergef "kernel and reference snapshots differ (%d vs %d bytes)"
      (String.length blob_k) (String.length blob_r);
  let image =
    try Snapshot.decode blob_k with
    | Snapshot.Error m -> divergef "snapshot does not decode: %s" m
  in
  if image.Snapshot.image_signature <> Snapshot.signature built.Recipe.design
  then divergef "snapshot signature does not match its design";
  if image.Snapshot.image_cycles <> Simulator.cycle_count dut then
    divergef "snapshot cycles %d, simulator at %d"
      image.Snapshot.image_cycles (Simulator.cycle_count dut);
  let reencoded = Snapshot.encode image in
  if not (String.equal reencoded blob_k) then
    divergef "decode/encode round-trip is not byte-identical";
  (* cross-restore into a fresh build of the same recipe: the rebuilt
     design must carry the same signature, and both simulator
     implementations must accept the blob *)
  let rebuilt = Recipe.build recipe in
  let clock2 = rebuilt.Recipe.clock in
  let dut2 = Simulator.create ?clock:clock2 rebuilt.Recipe.design in
  let rf2 = Reference.create ?clock:clock2 rebuilt.Recipe.design in
  watch_all rebuilt dut2 rf2;
  (try Simulator.restore dut2 blob_k with
   | Snapshot.Error m -> divergef "kernel restore into rebuild failed: %s" m);
  (try Reference.restore rf2 blob_k with
   | Snapshot.Error m ->
     divergef "reference restore into rebuild failed: %s" m);
  let check_four ctx =
    check_ports ~ctx built dut rf;
    check_ports ~ctx:(ctx ^ " (restored)") rebuilt dut2 rf2;
    List.iter2
      (fun port port2 ->
         let a = Simulator.get_port dut port
         and b = Simulator.get_port dut2 port2 in
         if not (Bits.equal a b) then
           divergef "%s: port %s: original=%s restored=%s" ctx port
             (Bits.to_string a) (Bits.to_string b))
      built.Recipe.output_ports rebuilt.Recipe.output_ports
  in
  check_four "after restore";
  for i = half to Array.length steps - 1 do
    let row = steps.(i) in
    Simulator.set_inputs dut (assignments built row);
    List.iter (fun (p, v) -> Reference.set_input rf p v) (assignments built row);
    Simulator.set_inputs dut2 (assignments rebuilt row);
    List.iter
      (fun (p, v) -> Reference.set_input rf2 p v)
      (assignments rebuilt row);
    Simulator.cycle dut;
    Reference.cycle rf;
    Simulator.cycle dut2;
    Reference.cycle rf2;
    check_four (Printf.sprintf "step %d after restore" i)
  done;
  check_histories ~ctx:"original pair" (Simulator.history dut)
    (Reference.history rf);
  check_histories ~ctx:"restored pair" (Simulator.history dut2)
    (Reference.history rf2)

(* ------------------------------------------------------------------ *)
(* Netlist_rt                                                          *)

let netlist_rt recipe =
  let built = Recipe.build recipe in
  let model = Model.of_design built.Recipe.design in
  let edif = Edif.to_string model in
  (match Edif_reader.read edif with
   | Error m -> divergef "EDIF writer output does not re-parse: %s" m
   | Ok summary ->
     if summary.Edif_reader.instance_count <> Model.instance_count model then
       divergef "EDIF re-parse: %d instances, model has %d"
         summary.Edif_reader.instance_count (Model.instance_count model);
     if summary.Edif_reader.net_count <> Model.net_count model then
       divergef "EDIF re-parse: %d nets, model has %d"
         summary.Edif_reader.net_count (Model.net_count model);
     if summary.Edif_reader.port_count <> List.length model.Model.ports then
       divergef "EDIF re-parse: %d ports, model has %d"
         summary.Edif_reader.port_count
         (List.length model.Model.ports);
     let model_inits =
       Array.fold_left
         (fun acc inst ->
            if
              List.exists
                (fun a -> String.equal a.Model.attr_name "INIT")
                inst.Model.inst_attrs
            then acc + 1
            else acc)
         0 model.Model.instances
     in
     let parsed_inits = List.length summary.Edif_reader.init_properties in
     if model_inits <> parsed_inits then
       divergef "EDIF re-parse: %d INIT properties, model carries %d"
         parsed_inits model_inits);
  List.iter
    (fun (tag, text) ->
       if String.length (String.trim text) = 0 then
         divergef "%s writer produced empty output" tag)
    [ ("VHDL", Vhdl.to_string model);
      ("Verilog", Verilog.to_string model);
      ("XNF", Xnf.to_string model) ]

(* ------------------------------------------------------------------ *)
(* Lint_clean                                                          *)

let lint_clean recipe =
  let built = Recipe.build recipe in
  let report = Lint.run built.Recipe.design in
  match Lint.errors report with
  | [] -> ()
  | errs ->
    divergef "lint reports %d error(s) on a valid design: %s"
      (List.length errs)
      (String.concat "; "
         (List.map
            (fun d ->
               Printf.sprintf "%s %s" d.Lint.rule_id d.Lint.message)
            errs))

(* ------------------------------------------------------------------ *)
(* Estimate_mono                                                       *)

let estimate_mono recipe =
  let n = Array.length recipe.Recipe.entries in
  let sizes =
    List.sort_uniq compare
      [ max 1 (n / 4); max 1 (n / 2); max 1 (3 * n / 4); n ]
  in
  let reports =
    List.map
      (fun size ->
         let built = Recipe.build (Recipe.truncate recipe size) in
         (size, (Estimate.area_of_design built.Recipe.design)))
      sizes
  in
  let check field name =
    ignore
      (List.fold_left
         (fun prev (size, report) ->
            let v = field report in
            (match prev with
             | Some (psize, pv) when v < pv ->
               divergef
                 "%s shrank from %d (at %d entries) to %d (at %d entries)"
                 name pv psize v size
             | _ -> ());
            Some (size, v))
         None reports)
  in
  check (fun r -> r.Estimate.area.Virtex.luts) "LUT count";
  check (fun r -> r.Estimate.area.Virtex.ffs) "FF count";
  check (fun r -> r.Estimate.area.Virtex.carry_muxes) "carry mux count";
  check (fun r -> r.Estimate.area.Virtex.rams) "RAM site count";
  check (fun r -> r.Estimate.slices) "slice count";
  (* the combined estimate (area + static timing) must also succeed *)
  let built = Recipe.build recipe in
  ignore (Estimate.of_design built.Recipe.design)

(* ------------------------------------------------------------------ *)
(* Batch_equiv                                                         *)

module Metrics = Jhdl_metrics.Metrics
module Batch = Jhdl_sim.Simulator.Batch

let lane_stimulus stim ~lane =
  let steps = stim.Stimulus.steps in
  let n = Array.length steps in
  if lane = 0 || n = 0 then stim
  else
    { Stimulus.steps =
        Array.init n (fun s ->
          let row = steps.((s + lane) mod n) in
          let w = Array.length row in
          if w = 0 then [||]
          else Array.init w (fun k -> row.((k + lane) mod w))) }

(* Campaign-wide batch instruments, minted once per registry (duplicate
   instrument names on a live registry raise): the per-sim counters of
   every short-lived batch kernel aggregate into one set following the
   [Batch.register_metrics] naming. *)
type batch_instruments = {
  bi_registry : Metrics.t;
  bi_lanes : int ref;
  bi_cases : Metrics.counter;
  bi_lane_steps : Metrics.counter;
  bi_evals : Metrics.counter;
  bi_events : Metrics.counter;
  bi_hist : Metrics.histogram;
}

let bi_cache = ref None

let batch_instruments registry =
  match !bi_cache with
  | Some bi when bi.bi_registry == registry -> bi
  | _ ->
    let bi_lanes = ref 0 in
    Metrics.probe registry "lanes_active" (fun () -> !bi_lanes);
    let bi =
      { bi_registry = registry;
        bi_lanes;
        bi_cases = Metrics.counter registry "batch_cases_total";
        bi_lane_steps = Metrics.counter registry "batch_lane_steps_total";
        bi_evals = Metrics.counter registry "batch_settle_evals_total";
        bi_events = Metrics.counter registry "batch_net_events_total";
        bi_hist = Metrics.histogram registry "words_per_settle" }
    in
    bi_cache := Some bi;
    bi

(* One batch kernel carrying [max_lanes] testbenches against as many
   scalar golden-model runs: every output port of every lane after
   every settle and every edge, shared cycle counter, then per-lane
   extraction — each lane's snapshot blob must be byte-identical to its
   reference's. Lane stimulus derives from the generated one by the
   deterministic [lane_stimulus] rotation. *)
let batch_equiv ?metrics recipe stim =
  let built = Recipe.build recipe in
  let clock = built.Recipe.clock in
  let lanes = Batch.max_lanes in
  let batch = Batch.create ?clock ~lanes built.Recipe.design in
  let bi =
    match metrics with
    | Some reg when not (Metrics.is_nil reg) -> Some (batch_instruments reg)
    | _ -> None
  in
  (match bi with
   | Some bi ->
     bi.bi_lanes := lanes;
     Metrics.incr bi.bi_cases;
     Batch.attach_settle_histogram batch bi.bi_hist
   | None -> ());
  let refs =
    Array.init lanes (fun _ -> Reference.create ?clock built.Recipe.design)
  in
  let stims = Array.init lanes (fun l -> lane_stimulus stim ~lane:l) in
  let check_lanes ctx =
    for l = 0 to lanes - 1 do
      List.iter
        (fun port ->
           let a = Batch.get_port batch ~lane:l port
           and b = Reference.get_port refs.(l) port in
           if not (Bits.equal a b) then
             divergef "%s: lane %d port %s: batch=%s reference=%s" ctx l port
               (Bits.to_string a) (Bits.to_string b))
        built.Recipe.output_ports
    done
  in
  check_lanes "initial";
  let n_steps = Array.length stim.Stimulus.steps in
  for step = 0 to n_steps - 1 do
    for l = 0 to lanes - 1 do
      let row = stims.(l).Stimulus.steps.(step) in
      Batch.set_inputs batch ~lane:l (assignments built row);
      List.iter
        (fun (p, v) -> Reference.set_input refs.(l) p v)
        (assignments built row)
    done;
    check_lanes (Printf.sprintf "step %d, after inputs" step);
    Batch.cycle batch;
    Array.iter (fun r -> Reference.cycle r) refs;
    check_lanes (Printf.sprintf "step %d, after cycle" step)
  done;
  Array.iteri
    (fun l r ->
       if Reference.cycle_count r <> Batch.cycle_count batch then
         divergef "lane %d cycle counters: batch=%d reference=%d" l
           (Batch.cycle_count batch) (Reference.cycle_count r))
    refs;
  for l = 0 to lanes - 1 do
    let blob_b = Batch.snapshot_lane batch ~lane:l in
    let blob_r = Reference.snapshot refs.(l) in
    if not (String.equal blob_b blob_r) then
      divergef "lane %d snapshot differs from its reference (%d vs %d bytes)"
        l (String.length blob_b) (String.length blob_r)
  done;
  Batch.reset batch;
  Array.iter Reference.reset refs;
  check_lanes "after reset";
  match bi with
  | Some bi ->
    Metrics.add bi.bi_lane_steps (lanes * n_steps);
    Metrics.add bi.bi_evals (Batch.eval_count batch);
    Metrics.add bi.bi_events (Batch.event_count batch)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Absint_sound                                                        *)

module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init
module Types = Jhdl_circuit.Types
module Wire = Jhdl_circuit.Wire
module Cone = Jhdl_analysis.Cone
module Absint = Jhdl_analysis.Absint
module Equiv = Jhdl_verify.Equiv

let net_name (n : Types.net) =
  match n.Types.source_wire with
  | Some w -> Printf.sprintf "%s[%d]" (Wire.full_name w) n.Types.source_bit
  | None -> Printf.sprintf "net#%d" n.Types.net_id

(* Address-bit reversal: bit [i] of the result is bit [k-1-i] of [j]. *)
let rev_bits ~k j =
  let r = ref 0 in
  for i = 0 to k - 1 do
    if (j lsr i) land 1 = 1 then r := !r lor (1 lsl (k - 1 - i))
  done;
  !r

(* An equivalence-preserving rewrite of the combinational layer: every
   LUT gets its input pins reversed (with the truth table permuted to
   match), INV becomes LUT1 0b01 and BUF becomes LUT1 0b10. The result
   is structurally different but functionally identical, so any
   [Not_equivalent] verdict from {!Equiv.check} is an analysis bug. *)
let comb_variant (recipe : Recipe.t) =
  let rewrite (e : Recipe.entry) =
    let node =
      match e.Recipe.node with
      | Recipe.Lut { init; inputs } ->
        let k = Array.length inputs in
        let tbl = Lut_init.of_int ~inputs:k init in
        let init' =
          Lut_init.to_int
            (Lut_init.of_function ~inputs:k (fun j ->
                 Lut_init.eval_int tbl (rev_bits ~k j)))
        in
        Recipe.Lut
          { init = init';
            inputs = Array.init k (fun i -> inputs.(k - 1 - i)) }
      | Recipe.Inv { i } -> Recipe.Lut { init = 0b01; inputs = [| i |] }
      | Recipe.Buf { i } -> Recipe.Lut { init = 0b10; inputs = [| i |] }
      | n -> n
    in
    { e with Recipe.node }
  in
  { recipe with Recipe.entries = Array.map rewrite recipe.Recipe.entries }

(* Soundness of the formal analysis layer against the simulators:

   1. every {!Absint} constancy claim must hold at every observation
      point of a simulated run ([Always] unconditionally, [When_defined]
      whenever the claim's gate leaves hold defined values);
   2. with no budget cuts, the Full-mode BDD cone evaluated under the
      simulator's concrete leaf values must reproduce every output bit
      exactly (4-valued, X and all);
   3. {!Equiv.check} must never refute the [comb_variant] rewrite, and
      a [Proved] verdict must additionally survive a differential
      batch-kernel sweep of the same pair. *)
let absint_sound ?metrics recipe stim =
  let built = Recipe.build recipe in
  let design = built.Recipe.design in
  let absint = Absint.analyze design in
  let full = Absint.cone_full absint in
  let claims = Absint.claims absint in
  let net_idx = Hashtbl.create 64 in
  List.iteri
    (fun i (n : Types.net) -> Hashtbl.replace net_idx n.Types.net_id i)
    (Design.all_nets design);
  let dut = Simulator.create ?clock:built.Recipe.clock design in
  let inputs_tbl = Hashtbl.create 8 in
  let leaf_value image = function
    | Cone.Input { port; bit } ->
      (match Hashtbl.find_opt inputs_tbl port with
       | Some v when bit < Bits.width v -> Bits.get v bit
       | _ -> Bit.X)
    | Cone.State { key } ->
      (match String.rindex_opt key '#' with
       | None -> Bit.X
       | Some i ->
         let path = String.sub key 0 i in
         let cell =
           int_of_string (String.sub key (i + 1) (String.length key - i - 1))
         in
         (match List.assoc_opt path image.Snapshot.image_seq with
          | Some (Snapshot.Flop code) when cell = 0 -> Bit.of_code code
          | Some (Snapshot.Mem bytes) when cell < Bytes.length bytes ->
            Bit.of_code (Char.code (Bytes.get bytes cell))
          | _ -> Bit.X))
    | Cone.Opaque _ -> Bit.X
  in
  let check_moment ctx =
    let image = Snapshot.decode (Simulator.snapshot dut) in
    let value_of_net (n : Types.net) =
      match Hashtbl.find_opt net_idx n.Types.net_id with
      | Some i ->
        Bit.of_code (Char.code (Bytes.get image.Snapshot.image_nets i))
      | None -> Bit.X
    in
    List.iter
      (fun (c : Absint.claim_info) ->
         let actual = value_of_net c.Absint.net in
         match c.Absint.claim with
         | Absint.Always b ->
           if actual <> b then
             divergef "%s: net %s proved always %c but simulates as %c" ctx
               (net_name c.Absint.net) (Bit.to_char b) (Bit.to_char actual)
         | Absint.When_defined b ->
           let gated =
             List.for_all
               (fun l -> Bit.is_defined (leaf_value image l))
               c.Absint.gate
           in
           if gated && actual <> b then
             divergef
               "%s: net %s proved %c under defined leaves but simulates \
                as %c"
               ctx (net_name c.Absint.net) (Bit.to_char b)
               (Bit.to_char actual))
      claims;
    if Cone.opaque_leaves full = 0 then
      List.iter
        (fun (port, pairs) ->
           match Design.find_port design port with
           | None -> ()
           | Some p ->
             let sim = Simulator.get dut p.Design.port_wire in
             Array.iteri
               (fun bit pair ->
                  let expect = Cone.eval_pair full pair (leaf_value image) in
                  let actual = Bits.get sim bit in
                  if expect <> actual then
                    divergef
                      "%s: output %s[%d]: BDD cone gives %c, kernel gives %c"
                      ctx port bit (Bit.to_char expect) (Bit.to_char actual))
               pairs)
        (Cone.output_pairs full)
  in
  check_moment "initial";
  Array.iteri
    (fun step row ->
       let stimulus = assignments built row in
       Simulator.set_inputs dut stimulus;
       List.iter (fun (p, v) -> Hashtbl.replace inputs_tbl p v) stimulus;
       check_moment (Printf.sprintf "step %d, after inputs" step);
       Simulator.cycle dut;
       check_moment (Printf.sprintf "step %d, after cycle" step))
    stim.Stimulus.steps;
  let variant = Recipe.build (comb_variant recipe) in
  let describe r = Format.asprintf "%a" Equiv.pp_result r in
  let recheck strategy =
    Equiv.check ~max_exhaustive_bits:10 ~random_vectors:64
      ~cycles_per_vector:2 ~strategy ?metrics design variant.Recipe.design
  in
  match recheck `Auto with
  | Equiv.Not_equivalent _ as r ->
    divergef "equivalence-preserving rewrite refuted: %s" (describe r)
  | Equiv.Interface_mismatch m ->
    divergef "equivalence-preserving rewrite changed the interface: %s" m
  | Equiv.Proved _ -> (
      (* the issue's contract: every proof survives a differential
         batch-kernel sweep of the same pair *)
      match recheck `Sweep with
      | Equiv.Not_equivalent _ as r ->
        divergef "proved verdict refuted by batch sweep: %s" (describe r)
      | _ -> ())
  | Equiv.Equivalent _ -> ()

(* ------------------------------------------------------------------ *)

let run ?(inject_bug = false) ?metrics kind recipe stim =
  try
    (match kind with
     | Sim_vs_ref -> sim_vs_ref ~inject_bug recipe stim
     | Snapshot_rt -> snapshot_rt recipe stim
     | Netlist_rt -> netlist_rt recipe
     | Lint_clean -> lint_clean recipe
     | Estimate_mono -> estimate_mono recipe
     | Batch_equiv -> batch_equiv ?metrics recipe stim
     | Absint_sound -> absint_sound ?metrics recipe stim);
    Pass
  with
  | Divergence m -> Fail m
  | e ->
    Fail
      (Printf.sprintf "oracle crashed: %s" (Printexc.to_string e))
