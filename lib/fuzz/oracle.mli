(** Differential oracles: one generated design, every pipeline stage.

    Each oracle takes a recipe plus its stimulus and answers
    [Pass]/[Fail]. Oracles never raise — an escaped exception from any
    layer under test is itself a finding and is reported as [Fail].

    - [Sim_vs_ref] — compiled kernel vs golden interpreter on the same
      design: batch-input settles vs per-port settles, every output
      port after every settle and every clock edge, cycle counters,
      watch histories and cycle-hook order, then a reset and a final
      comparison.
    - [Snapshot_rt] — both simulators checkpoint mid-run to
      byte-identical blobs; the blob decodes, re-encodes byte-
      identically, restores into a {e fresh build} of the recipe (both
      simulator implementations), and all four simulators agree for the
      rest of the run.
    - [Netlist_rt] — EDIF output re-parsed with {!Jhdl_netlist.Edif_reader}
      and checked against the flattened model (instance/net/port/INIT
      counts); VHDL, Verilog and XNF writers must produce non-empty
      text.
    - [Lint_clean] — the lint engine must neither crash nor report any
      error-severity diagnostic on a valid-by-construction design.
    - [Estimate_mono] — area estimates over recipe prefixes: adding
      entries never shrinks any resource count (LUTs, FFs, carry muxes,
      RAM sites, slices), and the full combined estimate succeeds.
    - [Batch_equiv] — one bit-parallel {!Jhdl_sim.Simulator.Batch}
      kernel carrying 63 stimulus lanes (derived from the generated
      stimulus by {!lane_stimulus}) against 63 scalar golden-model
      runs: every output port of every lane after every settle and
      every clock edge, the shared cycle counter, a per-lane
      {!Jhdl_sim.Simulator.Batch.snapshot_lane} blob byte-identical to
      the reference's snapshot, and agreement again after reset.
    - [Absint_sound] — soundness of the formal analysis layer: every
      {!Jhdl_analysis.Absint} constancy claim must hold at every
      observation point of a simulated run ([Always] unconditionally,
      [When_defined] whenever its gate leaves are defined), the
      Full-mode BDD cone must reproduce every output bit exactly under
      the simulator's concrete leaf values, and {!Jhdl_verify.Equiv}
      must never refute an equivalence-preserving rewrite of the
      design (LUT pin reversal with permuted INIT, INV/BUF folded to
      LUT1) — with any [Proved] verdict re-validated by a differential
      batch-kernel sweep.

    [inject_bug] simulates a kernel defect behind a flag (any design
    containing a MULT_AND is reported divergent by [Sim_vs_ref]) so the
    reducer's convergence is testable against a known ground truth. *)

type kind =
  | Sim_vs_ref
  | Snapshot_rt
  | Netlist_rt
  | Lint_clean
  | Estimate_mono
  | Batch_equiv
  | Absint_sound

type verdict =
  | Pass
  | Fail of string

(** All seven oracles, in fixed order. *)
val all : kind list

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** [lane_stimulus stim ~lane] — the deterministic per-lane variation
    [Batch_equiv] drives: lane [l] takes, at step [s] for input [k],
    the base value at step [(s+l) mod steps], input [(k+l) mod inputs].
    63 distinct-but-reproducible testbenches from one generated
    stimulus, no extra RNG draws — and reducing the base stimulus
    reduces every lane with it. Lane 0 is the base stimulus itself. *)
val lane_stimulus : Stimulus.t -> lane:int -> Stimulus.t

(** [run ?inject_bug ?metrics kind recipe stim] — [metrics], when a
    live registry, aggregates batch-kernel instruments across every
    [Batch_equiv] case run under it ([lanes_active],
    [batch_cases_total], [batch_lane_steps_total],
    [batch_settle_evals_total], [batch_net_events_total] and the
    [words_per_settle] histogram), plus {!Jhdl_verify.Equiv}'s
    proof/fallback/sweep counters across every [Absint_sound] case's
    re-proved rewrite. *)
val run :
  ?inject_bug:bool ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  kind -> Recipe.t -> Stimulus.t -> verdict
