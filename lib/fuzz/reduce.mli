(** Greedy delta-debugging reducer for failing fuzz cases.

    Given a recipe+stimulus pair on which a failure predicate holds
    (typically "oracle X still fails"), the reducer shrinks both while
    preserving the failure:

    - {e drop}: remove one entry together with its forward cone (every
      transitive consumer), re-indexing the survivors — backward-only
      references keep any such cut well formed;
    - {e simplify}: replace a complex entry by [Gnd] or by a [Buf] of
      its first source, freeing its other sources to be dropped;
    - {e shrink}: halve, then trim, the stimulus step count.

    Passes repeat until a fixpoint (or the attempt budget runs out);
    the result is a locally-minimal reproducer. Deleting an input entry
    also deletes its stimulus column, keeping the pair consistent. *)

type result = {
  recipe : Recipe.t;
  stimulus : Stimulus.t;
  checks : int;  (** failure-predicate evaluations spent *)
}

(** [minimize ~still_fails recipe stimulus] — [still_fails] must hold
    on the initial pair; the returned pair still satisfies it.
    [max_checks] (default 2000) bounds the predicate evaluations. *)
val minimize :
  ?max_checks:int ->
  still_fails:(Recipe.t -> Stimulus.t -> bool) ->
  Recipe.t ->
  Stimulus.t ->
  result
