module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Prng = Jhdl_faults.Prng

type params = {
  max_inputs : int;
  max_cells : int;
  fanout_cap : int;
}

let default_params = { max_inputs = 6; max_cells = 40; fanout_cap = 8 }

(* Pick a driver signal among entries 0..limit-1, preferring signals
   still under the fan-out cap. The candidate filter only looks at the
   prefix already drawn, so generation stays prefix-deterministic. *)
let pick rng uses ~cap limit =
  let under = ref 0 in
  for i = 0 to limit - 1 do
    if uses.(i) < cap then incr under
  done;
  if !under = 0 then Prng.int rng limit
  else begin
    let k = ref (Prng.int rng !under) in
    let chosen = ref 0 in
    (try
       for i = 0 to limit - 1 do
         if uses.(i) < cap then begin
           if !k = 0 then begin
             chosen := i;
             raise Exit
           end;
           decr k
         end
       done
     with Exit -> ());
    !chosen
  end

let draw_bit_init rng =
  if Prng.int rng 8 = 0 then Bit.X
  else if Prng.int rng 2 = 0 then Bit.Zero
  else Bit.One

let recipe rng ?(name = "fuzz") params =
  let n_inputs = 1 + Prng.int rng params.max_inputs in
  let n_body = 1 + Prng.int rng params.max_cells in
  let n = n_inputs + n_body in
  let uses = Array.make n 0 in
  let entries = ref [] in
  let group = ref None in
  let remaining = ref 0 in
  let next_group = ref (-1) in
  for _ = 1 to n_inputs do
    entries := { Recipe.node = Recipe.Input; group = None } :: !entries
  done;
  for j = 0 to n_body - 1 do
    let i = n_inputs + j in
    (* group assignment: occasionally open a composite macro covering
       the next few entries *)
    if !remaining = 0 then begin
      if Prng.int rng 8 = 0 then begin
        incr next_group;
        group := Some !next_group;
        remaining := 2 + Prng.int rng 6
      end
      else group := None
    end;
    let this_group = if !remaining > 0 then !group else None in
    if !remaining > 0 then decr remaining;
    let p x =
      let chosen = pick rng uses ~cap:params.fanout_cap i in
      ignore x;
      uses.(chosen) <- uses.(chosen) + 1;
      chosen
    in
    let node =
      let k = Prng.int rng 100 in
      if k < 14 then begin
        let kind =
          match Prng.int rng 4 with
          | 0 -> Recipe.Fd
          | 1 -> Recipe.Fde
          | 2 -> Recipe.Fdce
          | _ -> Recipe.Fdre
        in
        let init = draw_bit_init rng in
        let d = p "d" in
        let ce = if kind = Recipe.Fd then None else Some (p "ce") in
        let srst =
          match kind with
          | Recipe.Fdce | Recipe.Fdre -> Some (p "srst")
          | Recipe.Fd | Recipe.Fde -> None
        in
        Recipe.Ff { kind; init; d; ce; srst }
      end
      else if k < 22 then begin
        let x = p "i" in
        if Prng.int rng 2 = 0 then Recipe.Buf { i = x }
        else Recipe.Inv { i = x }
      end
      else if k < 36 then begin
        match Prng.int rng 3 with
        | 0 ->
          let s = p "s" in
          let di = p "di" in
          let ci = p "ci" in
          Recipe.Muxcy { s; di; ci }
        | 1 ->
          let li = p "li" in
          let ci = p "ci" in
          Recipe.Xorcy { li; ci }
        | _ ->
          let i0 = p "i0" in
          let i1 = p "i1" in
          Recipe.Mult_and { i0; i1 }
      end
      else if k < 43 then begin
        let init = Prng.int rng 65536 in
        let ce = p "ce" in
        let d = p "d" in
        let a = Array.init 4 (fun _ -> p "a") in
        Recipe.Srl16 { init; ce; d; a }
      end
      else if k < 50 then begin
        let init = Prng.int rng 65536 in
        let we = p "we" in
        let d = p "d" in
        let a = Array.init 4 (fun _ -> p "a") in
        Recipe.Ram16 { init; we; d; a }
      end
      else if k < 56 then
        if Prng.int rng 2 = 0 then Recipe.Gnd else Recipe.Vcc
      else begin
        let width = 1 + Prng.int rng 4 in
        let init = Prng.int rng (1 lsl (1 lsl width)) in
        let inputs = Array.init width (fun _ -> p "i") in
        Recipe.Lut { init; inputs }
      end
    in
    entries := { Recipe.node; group = this_group } :: !entries
  done;
  { Recipe.name; entries = Array.of_list (List.rev !entries) }

let stimulus rng recipe ~steps =
  let inputs = Recipe.input_count recipe in
  let draw_bit () =
    if Prng.int rng 8 = 0 then
      if Prng.int rng 2 = 0 then Bit.X else Bit.Z
    else Bit.of_bool (Prng.int rng 2 = 1)
  in
  { Stimulus.steps =
      Array.init steps (fun _ ->
        Array.init inputs (fun _ -> Bits.create 1 (draw_bit ()))) }
