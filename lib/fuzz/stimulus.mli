(** Replayable four-valued stimulus for a generated design.

    A stimulus is a step matrix: row = one simulation step, column =
    the k-th {!Recipe.Input} entry of the recipe (in entry order). Each
    step drives every stimulus port, settles, then advances one clock
    cycle. Keying columns by input {e order} rather than port name is
    what keeps a stimulus meaningful while the reducer deletes input
    entries: dropping input k deletes column k. *)

type t = { steps : Jhdl_logic.Bits.t array array }

val step_count : t -> int

(** [truncate s n] — keep the first [n] steps (at least 1). *)
val truncate : t -> int -> t

(** [drop_column s k] — remove stimulus column [k] (when the k-th input
    entry was deleted). *)
val drop_column : t -> int -> t

(** [keep_columns s keep] — retain the columns whose index is in
    [keep], in order. *)
val keep_columns : t -> bool array -> t

(** [to_string s] — canonical text rendering ('0'/'1'/'x'/'z' per
    column), for determinism checks and reproducer files. *)
val to_string : t -> string
