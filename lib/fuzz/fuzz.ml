module Prng = Jhdl_faults.Prng

type config = {
  seed : int;
  count : int;
  params : Gen.params;
  steps : int;
  oracles : Oracle.kind list;
  reduce : bool;
  inject_bug : bool;
}

let default_config =
  { seed = 1;
    count = 25;
    params = Gen.default_params;
    steps = 12;
    oracles = Oracle.all;
    reduce = false;
    inject_bug = false }

type failure = {
  case : int;
  oracle : Oracle.kind;
  message : string;
  recipe : Recipe.t;
  stimulus : Stimulus.t;
  reduced : Reduce.result option;
}

type outcome = {
  cases : int;
  total_entries : int;
  oracle_runs : (Oracle.kind * int * int) list;
  coverage : (string * int) list;
  failures : failure list;
}

(* Each case gets its own split streams so per-case draw counts cannot
   interfere: replaying case k needs only (seed, k). *)
let case_rngs ~seed ~case =
  let master = Prng.create seed in
  let case_rng = ref (Prng.split master) in
  for _ = 1 to case do
    case_rng := Prng.split master
  done;
  let gen_rng = Prng.split !case_rng in
  let stim_rng = Prng.split !case_rng in
  (gen_rng, stim_rng)

let run ?metrics config =
  let coverage = Hashtbl.create 16 in
  let bump name =
    Hashtbl.replace coverage name
      (1 + Option.value ~default:0 (Hashtbl.find_opt coverage name))
  in
  let runs = Hashtbl.create 8 in
  let fails = Hashtbl.create 8 in
  let bump_tbl tbl kind =
    Hashtbl.replace tbl kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl kind))
  in
  let failures = ref [] in
  let total_entries = ref 0 in
  let master = Prng.create config.seed in
  for case = 0 to config.count - 1 do
    let case_rng = Prng.split master in
    let gen_rng = Prng.split case_rng in
    let stim_rng = Prng.split case_rng in
    let recipe =
      Gen.recipe gen_rng ~name:(Printf.sprintf "fuzz_c%d" case) config.params
    in
    total_entries := !total_entries + Array.length recipe.Recipe.entries;
    Array.iter (fun e -> bump (Recipe.kind_name e.Recipe.node)) recipe.Recipe.entries;
    let stimulus = Gen.stimulus stim_rng recipe ~steps:config.steps in
    List.iter
      (fun kind ->
         bump_tbl runs kind;
         match
           Oracle.run ~inject_bug:config.inject_bug ?metrics kind recipe
             stimulus
         with
         | Oracle.Pass -> ()
         | Oracle.Fail message ->
           bump_tbl fails kind;
           let reduced =
             if config.reduce then
               Some
                 (Reduce.minimize
                    ~still_fails:(fun r s ->
                      match
                        Oracle.run ~inject_bug:config.inject_bug kind r s
                      with
                      | Oracle.Fail _ -> true
                      | Oracle.Pass -> false)
                    recipe stimulus)
             else None
           in
           failures :=
             { case; oracle = kind; message; recipe; stimulus; reduced }
             :: !failures)
      config.oracles
  done;
  { cases = config.count;
    total_entries = !total_entries;
    oracle_runs =
      List.map
        (fun kind ->
           ( kind,
             Option.value ~default:0 (Hashtbl.find_opt runs kind),
             Option.value ~default:0 (Hashtbl.find_opt fails kind) ))
        config.oracles;
    coverage =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) coverage []);
    failures = List.rev !failures }

let total_failures o =
  List.fold_left (fun acc (_, _, f) -> acc + f) 0 o.oracle_runs

let summary o =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "cases: %d (%d recipe entries)\n" o.cases o.total_entries);
  List.iter
    (fun (kind, runs, fails) ->
       Buffer.add_string b
         (Printf.sprintf "oracle %-10s %4d run, %d failed\n"
            (Oracle.kind_to_string kind) runs fails))
    o.oracle_runs;
  Buffer.add_string b "coverage:";
  List.iter
    (fun (name, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" name n))
    o.coverage;
  Buffer.add_char b '\n';
  List.iter
    (fun f ->
       Buffer.add_string b
         (Printf.sprintf "FAIL case %d oracle %s: %s\n" f.case
            (Oracle.kind_to_string f.oracle) f.message);
       match f.reduced with
       | Some r ->
         Buffer.add_string b
           (Printf.sprintf
              "  reduced: %d -> %d entries, %d -> %d steps (%d checks)\n"
              (Array.length f.recipe.Recipe.entries)
              (Array.length r.Reduce.recipe.Recipe.entries)
              (Stimulus.step_count f.stimulus)
              (Stimulus.step_count r.Reduce.stimulus)
              r.Reduce.checks)
       | None -> ())
    o.failures;
  Buffer.add_string b
    (if o.failures = [] then "result: PASS\n" else "result: FAIL\n");
  Buffer.contents b

let failure_report ~f ~seed =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "# fuzz reproducer: seed=%d case=%d oracle=%s\n" seed
       f.case
       (Oracle.kind_to_string f.oracle));
  Buffer.add_string b (Printf.sprintf "# %s\n" f.message);
  let recipe, stimulus =
    match f.reduced with
    | Some r -> (r.Reduce.recipe, r.Reduce.stimulus)
    | None -> (f.recipe, f.stimulus)
  in
  Buffer.add_string b (Recipe.to_string recipe);
  Buffer.add_string b "stimulus\n";
  Buffer.add_string b (Stimulus.to_string stimulus);
  Buffer.contents b
