module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Types = Jhdl_circuit.Types

type ff_kind =
  | Fd
  | Fde
  | Fdce
  | Fdre

type node =
  | Input
  | Gnd
  | Vcc
  | Lut of {
      init : int;
      inputs : int array;
    }
  | Ff of {
      kind : ff_kind;
      init : Bit.t;
      d : int;
      ce : int option;
      srst : int option;
    }
  | Muxcy of { s : int; di : int; ci : int }
  | Xorcy of { li : int; ci : int }
  | Mult_and of { i0 : int; i1 : int }
  | Srl16 of { init : int; ce : int; d : int; a : int array }
  | Ram16 of { init : int; we : int; d : int; a : int array }
  | Buf of { i : int }
  | Inv of { i : int }

type entry = {
  node : node;
  group : int option;
}

type t = {
  name : string;
  entries : entry array;
}

let refs = function
  | Input | Gnd | Vcc -> []
  | Lut { inputs; _ } -> Array.to_list inputs
  | Ff { d; ce; srst; _ } ->
    (d :: Option.to_list ce) @ Option.to_list srst
  | Muxcy { s; di; ci } -> [ s; di; ci ]
  | Xorcy { li; ci } -> [ li; ci ]
  | Mult_and { i0; i1 } -> [ i0; i1 ]
  | Srl16 { ce; d; a; _ } -> ce :: d :: Array.to_list a
  | Ram16 { we; d; a; _ } -> we :: d :: Array.to_list a
  | Buf { i } | Inv { i } -> [ i ]

let is_sequential = function
  | Ff _ | Srl16 _ | Ram16 _ -> true
  | Input | Gnd | Vcc | Lut _ | Muxcy _ | Xorcy _ | Mult_and _ | Buf _ | Inv _
    ->
    false

let ff_kind_name = function
  | Fd -> "FD"
  | Fde -> "FDE"
  | Fdce -> "FDCE"
  | Fdre -> "FDRE"

let kind_name = function
  | Input -> "INPUT"
  | Gnd -> "GND"
  | Vcc -> "VCC"
  | Lut { inputs; _ } -> Printf.sprintf "LUT%d" (Array.length inputs)
  | Ff { kind; _ } -> ff_kind_name kind
  | Muxcy _ -> "MUXCY"
  | Xorcy _ -> "XORCY"
  | Mult_and _ -> "MULT_AND"
  | Srl16 _ -> "SRL16E"
  | Ram16 _ -> "RAM16X1S"
  | Buf _ -> "BUF"
  | Inv _ -> "INV"

let well_formed r =
  let n = Array.length r.entries in
  let fail i fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "entry %d: %s" i m)) fmt
  in
  if n = 0 then Error "recipe has no entries"
  else begin
    let rec check i =
      if i >= n then Ok ()
      else begin
        let e = r.entries.(i) in
        let bad_ref =
          List.find_opt (fun x -> x < 0 || x >= i) (refs e.node)
        in
        match bad_ref with
        | Some x -> fail i "reference %d is not strictly backward" x
        | None ->
          let shape_ok =
            match e.node with
            | Lut { inputs; init } ->
              let w = Array.length inputs in
              if w < 1 || w > 4 then
                fail i "LUT arity %d outside 1..4" w
              else if init < 0 || init >= 1 lsl (1 lsl w) then
                fail i "LUT init %d outside its truth table" init
              else Ok ()
            | Ff { kind; ce; srst; _ } ->
              (match kind, ce, srst with
               | Fd, None, None
               | Fde, Some _, None
               | Fdce, Some _, Some _
               | Fdre, Some _, Some _ ->
                 Ok ()
               | _ -> fail i "FF option pins do not match kind %s"
                        (ff_kind_name kind))
            | Srl16 { a; _ } | Ram16 { a; _ } ->
              if Array.length a <> 4 then
                fail i "memory address needs 4 refs, got %d" (Array.length a)
              else Ok ()
            | Input | Gnd | Vcc | Muxcy _ | Xorcy _ | Mult_and _ | Buf _
            | Inv _ ->
              Ok ()
          in
          (match shape_ok with
           | Ok () -> check (i + 1)
           | Error _ as e -> e)
      end
    in
    check 0
  end

let truncate r n =
  let n = max 1 (min n (Array.length r.entries)) in
  { r with entries = Array.sub r.entries 0 n }

let input_count r =
  Array.fold_left
    (fun acc e -> if e.node = Input then acc + 1 else acc)
    0 r.entries

let signal_uses r =
  let use = Array.make (Array.length r.entries) 0 in
  Array.iter
    (fun e -> List.iter (fun x -> use.(x) <- use.(x) + 1) (refs e.node))
    r.entries;
  use

type built = {
  design : Design.t;
  clock : Wire.t option;
  input_ports : string list;
  output_ports : string list;
}

(* Group ports reflect the actual cross-boundary signal flow: a formal
   input per outside-produced signal read inside, a formal output per
   inside-produced signal read outside (or exported as a top-level
   port), plus the clock when the group holds sequential state. *)
let group_ports r group uses clk_wire wires =
  let n = Array.length r.entries in
  let in_group i = r.entries.(i).group = Some group in
  let in_refs = Hashtbl.create 8 in
  let outs = ref [] in
  for i = 0 to n - 1 do
    if in_group i then
      List.iter
        (fun x -> if not (in_group x) then Hashtbl.replace in_refs x ())
        (refs r.entries.(i).node)
  done;
  (* outputs: signal i produced in the group and consumed outside it,
     or unconsumed (it becomes a top-level output port) *)
  let consumed_outside = Array.make n false in
  for j = 0 to n - 1 do
    if not (in_group j) then
      List.iter
        (fun x -> if in_group x then consumed_outside.(x) <- true)
        (refs r.entries.(j).node)
  done;
  for i = n - 1 downto 0 do
    if in_group i && (consumed_outside.(i) || uses.(i) = 0) then
      outs := i :: !outs
  done;
  let ins = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) in_refs []) in
  let seq =
    Array.exists (fun e -> e.group = Some group && is_sequential e.node)
      r.entries
  in
  let clk_port =
    match clk_wire with
    | Some w when seq -> [ ("ck", Types.Input, w) ]
    | _ -> []
  in
  clk_port
  @ List.map (fun i -> (Printf.sprintf "i%d" i, Types.Input, wires.(i))) ins
  @ List.map (fun i -> (Printf.sprintf "o%d" i, Types.Output, wires.(i))) !outs

let build r =
  (match well_formed r with
   | Ok () -> ()
   | Error m -> invalid_arg (Printf.sprintf "Recipe.build: %s" m));
  let n = Array.length r.entries in
  let top = Cell.root ~name:r.name () in
  let has_seq = Array.exists (fun e -> is_sequential e.node) r.entries in
  let clk = if has_seq then Some (Wire.create top ~name:"clk" 1) else None in
  let clk_of () =
    match clk with
    | Some w -> w
    | None -> assert false
  in
  let wires =
    Array.init n (fun i ->
      let name =
        match r.entries.(i).node with
        | Input -> Printf.sprintf "in%d" i
        | _ -> Printf.sprintf "s%d" i
      in
      Wire.create top ~name 1)
  in
  let uses = signal_uses r in
  (* composite cells, created on first member *)
  let composites = Hashtbl.create 8 in
  let parent_of i =
    match r.entries.(i).group with
    | None -> top
    | Some g ->
      (match Hashtbl.find_opt composites g with
       | Some c -> c
       | None ->
         let ports = group_ports r g uses clk wires in
         let c =
           Cell.composite top ~name:(Printf.sprintf "m%d" g) ~ports ()
         in
         Hashtbl.replace composites g c;
         c)
  in
  Array.iteri
    (fun i e ->
       let name = Printf.sprintf "n%d" i in
       let w = wires.(i) in
       let s x = wires.(x) in
       match e.node with
       | Input -> ()
       | Gnd ->
         ignore (Cell.prim (parent_of i) ~name Prim.Gnd ~conns:[ ("G", w) ])
       | Vcc ->
         ignore (Cell.prim (parent_of i) ~name Prim.Vcc ~conns:[ ("P", w) ])
       | Lut { init; inputs } ->
         let width = Array.length inputs in
         let conns =
           Array.to_list
             (Array.mapi
                (fun k x -> (Printf.sprintf "I%d" k, s x))
                inputs)
           @ [ ("O", w) ]
         in
         ignore
           (Cell.prim (parent_of i) ~name
              (Prim.Lut (Lut_init.of_int ~inputs:width init))
              ~conns)
       | Ff { kind; init; d; ce; srst } ->
         let clock_enable = kind <> Fd in
         let async_clear = kind = Fdce in
         let sync_reset = kind = Fdre in
         let conns =
           [ ("C", clk_of ()); ("D", s d) ]
           @ (match ce with
              | Some x -> [ ("CE", s x) ]
              | None -> [])
           @ (match kind, srst with
              | Fdce, Some x -> [ ("CLR", s x) ]
              | Fdre, Some x -> [ ("R", s x) ]
              | _ -> [])
           @ [ ("Q", w) ]
         in
         ignore
           (Cell.prim (parent_of i) ~name
              (Prim.Ff { clock_enable; async_clear; sync_reset; init })
              ~conns)
       | Muxcy { s = sel; di; ci } ->
         ignore
           (Cell.prim (parent_of i) ~name Prim.Muxcy
              ~conns:[ ("S", s sel); ("DI", s di); ("CI", s ci); ("O", w) ])
       | Xorcy { li; ci } ->
         ignore
           (Cell.prim (parent_of i) ~name Prim.Xorcy
              ~conns:[ ("LI", s li); ("CI", s ci); ("O", w) ])
       | Mult_and { i0; i1 } ->
         ignore
           (Cell.prim (parent_of i) ~name Prim.Mult_and
              ~conns:[ ("I0", s i0); ("I1", s i1); ("LO", w) ])
       | Srl16 { init; ce; d; a } ->
         ignore
           (Cell.prim (parent_of i) ~name
              (Prim.Srl16 { init })
              ~conns:
                [ ("CLK", clk_of ()); ("CE", s ce); ("D", s d);
                  ("A0", s a.(0)); ("A1", s a.(1)); ("A2", s a.(2));
                  ("A3", s a.(3)); ("Q", w) ])
       | Ram16 { init; we; d; a } ->
         ignore
           (Cell.prim (parent_of i) ~name
              (Prim.Ram16x1 { init })
              ~conns:
                [ ("WCLK", clk_of ()); ("WE", s we); ("D", s d);
                  ("A0", s a.(0)); ("A1", s a.(1)); ("A2", s a.(2));
                  ("A3", s a.(3)); ("O", w) ])
       | Buf { i = x } ->
         ignore
           (Cell.prim (parent_of i) ~name Prim.Buf
              ~conns:[ ("I", s x); ("O", w) ])
       | Inv { i = x } ->
         ignore
           (Cell.prim (parent_of i) ~name Prim.Inv
              ~conns:[ ("I", s x); ("O", w) ]))
    r.entries;
  let design = Design.create top in
  (match clk with
   | Some w -> Design.add_port design "clk" Types.Input w
   | None -> ());
  let input_ports = ref [] and output_ports = ref [] in
  Array.iteri
    (fun i e ->
       match e.node with
       | Input ->
         let p = Printf.sprintf "in%d" i in
         Design.add_port design p Types.Input wires.(i);
         input_ports := p :: !input_ports
       | _ ->
         if uses.(i) = 0 then begin
           let p = Printf.sprintf "out%d" i in
           Design.add_port design p Types.Output wires.(i);
           output_ports := p :: !output_ports
         end)
    r.entries;
  { design;
    clock = clk;
    input_ports = List.rev !input_ports;
    output_ports = List.rev !output_ports }

let node_to_string = function
  | Input -> "input"
  | Gnd -> "gnd"
  | Vcc -> "vcc"
  | Lut { init; inputs } ->
    Printf.sprintf "lut init=%d inputs=%s" init
      (String.concat "," (List.map string_of_int (Array.to_list inputs)))
  | Ff { kind; init; d; ce; srst } ->
    Printf.sprintf "ff kind=%s init=%c d=%d%s%s"
      (String.lowercase_ascii (ff_kind_name kind))
      (Bit.to_char init) d
      (match ce with
       | Some x -> Printf.sprintf " ce=%d" x
       | None -> "")
      (match srst with
       | Some x -> Printf.sprintf " srst=%d" x
       | None -> "")
  | Muxcy { s; di; ci } -> Printf.sprintf "muxcy s=%d di=%d ci=%d" s di ci
  | Xorcy { li; ci } -> Printf.sprintf "xorcy li=%d ci=%d" li ci
  | Mult_and { i0; i1 } -> Printf.sprintf "mult_and i0=%d i1=%d" i0 i1
  | Srl16 { init; ce; d; a } ->
    Printf.sprintf "srl16 init=%d ce=%d d=%d a=%d,%d,%d,%d" init ce d a.(0)
      a.(1) a.(2) a.(3)
  | Ram16 { init; we; d; a } ->
    Printf.sprintf "ram16 init=%d we=%d d=%d a=%d,%d,%d,%d" init we d a.(0)
      a.(1) a.(2) a.(3)
  | Buf { i } -> Printf.sprintf "buf i=%d" i
  | Inv { i } -> Printf.sprintf "inv i=%d" i

let to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "recipe %s %d\n" r.name (Array.length r.entries));
  Array.iteri
    (fun i e ->
       Buffer.add_string b
         (Printf.sprintf "%d %s%s\n" i (node_to_string e.node)
            (match e.group with
             | Some g -> Printf.sprintf " group=%d" g
             | None -> "")))
    r.entries;
  Buffer.contents b
