type result = {
  recipe : Recipe.t;
  stimulus : Stimulus.t;
  checks : int;
}

(* Rebuild a node with every signal reference pushed through [f]. *)
let map_refs f node =
  match node with
  | Recipe.Input | Recipe.Gnd | Recipe.Vcc -> node
  | Recipe.Lut { init; inputs } ->
    Recipe.Lut { init; inputs = Array.map f inputs }
  | Recipe.Ff { kind; init; d; ce; srst } ->
    Recipe.Ff
      { kind; init; d = f d; ce = Option.map f ce; srst = Option.map f srst }
  | Recipe.Muxcy { s; di; ci } ->
    Recipe.Muxcy { s = f s; di = f di; ci = f ci }
  | Recipe.Xorcy { li; ci } -> Recipe.Xorcy { li = f li; ci = f ci }
  | Recipe.Mult_and { i0; i1 } -> Recipe.Mult_and { i0 = f i0; i1 = f i1 }
  | Recipe.Srl16 { init; ce; d; a } ->
    Recipe.Srl16 { init; ce = f ce; d = f d; a = Array.map f a }
  | Recipe.Ram16 { init; we; d; a } ->
    Recipe.Ram16 { init; we = f we; d = f d; a = Array.map f a }
  | Recipe.Buf { i } -> Recipe.Buf { i = f i }
  | Recipe.Inv { i } -> Recipe.Inv { i = f i }

(* [i] plus every transitive consumer of its signal. *)
let forward_cone (r : Recipe.t) i =
  let n = Array.length r.entries in
  let in_cone = Array.make n false in
  in_cone.(i) <- true;
  for j = i + 1 to n - 1 do
    if List.exists (fun x -> in_cone.(x)) (Recipe.refs r.entries.(j).node)
    then in_cone.(j) <- true
  done;
  in_cone

(* Remove the marked entries, re-indexing survivors and deleting the
   stimulus columns of removed inputs. [None] when nothing survives. *)
let drop (r : Recipe.t) stim in_cone =
  let n = Array.length r.entries in
  let map = Array.make n (-1) in
  let next = ref 0 in
  for idx = 0 to n - 1 do
    if not in_cone.(idx) then begin
      map.(idx) <- !next;
      incr next
    end
  done;
  if !next = 0 then None
  else begin
    let entries = ref [] in
    for idx = n - 1 downto 0 do
      if not in_cone.(idx) then begin
        let e = r.entries.(idx) in
        entries :=
          { e with Recipe.node = map_refs (fun x -> map.(x)) e.Recipe.node }
          :: !entries
      end
    done;
    let keep_col = ref [] in
    for idx = n - 1 downto 0 do
      if r.entries.(idx).Recipe.node = Recipe.Input then
        keep_col := (not in_cone.(idx)) :: !keep_col
    done;
    let stim = Stimulus.keep_columns stim (Array.of_list !keep_col) in
    Some ({ r with Recipe.entries = Array.of_list !entries }, stim)
  end

let replace_node (r : Recipe.t) i node =
  let entries = Array.copy r.entries in
  entries.(i) <- { (entries.(i)) with Recipe.node };
  { r with Recipe.entries }

exception Budget

let minimize ?(max_checks = 2000) ~still_fails recipe stimulus =
  let checks = ref 0 in
  let fails r s =
    if !checks >= max_checks then raise Budget;
    incr checks;
    match Recipe.well_formed r with
    | Error _ -> false
    | Ok () -> still_fails r s
  in
  let current = ref (recipe, stimulus) in
  let try_commit candidate =
    match candidate with
    | Some (r, s) when fails r s ->
      current := (r, s);
      true
    | _ -> false
  in
  (* one greedy sweep of each pass; returns whether anything shrank *)
  let drop_pass () =
    let improved = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let r, s = !current in
      let n = Array.length r.Recipe.entries in
      if n > 1 then begin
        let i = ref (n - 1) in
        while !i >= 0 && not !continue_ do
          let cone = forward_cone r !i in
          if try_commit (drop r s cone) then begin
            improved := true;
            continue_ := true
          end;
          decr i
        done
      end
    done;
    !improved
  in
  let simplify_pass () =
    let improved = ref false in
    let r0, _ = !current in
    let n = Array.length r0.Recipe.entries in
    for i = 0 to n - 1 do
      let r, s = !current in
      if i < Array.length r.Recipe.entries then begin
        let e = r.Recipe.entries.(i) in
        match e.Recipe.node with
        | Recipe.Input | Recipe.Gnd | Recipe.Vcc | Recipe.Buf _ -> ()
        | node ->
          if try_commit (Some (replace_node r i Recipe.Gnd, s)) then
            improved := true
          else
            (match Recipe.refs node with
             | first :: _ ->
               if
                 try_commit
                   (Some (replace_node r i (Recipe.Buf { i = first }), s))
               then improved := true
             | [] -> ())
      end
    done;
    !improved
  in
  let shrink_stimulus_pass () =
    let improved = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let r, s = !current in
      let n = Stimulus.step_count s in
      if n > 1 then begin
        let half = Stimulus.truncate s (n / 2) in
        if try_commit (Some (r, half)) then begin
          improved := true;
          continue_ := true
        end
        else begin
          let trimmed = Stimulus.truncate s (n - 1) in
          if try_commit (Some (r, trimmed)) then begin
            improved := true;
            continue_ := true
          end
        end
      end
    done;
    !improved
  in
  (try
     let rounds = ref 0 in
     let progress = ref true in
     while !progress && !rounds < 20 do
       incr rounds;
       let a = drop_pass () in
       let b = simplify_pass () in
       let c = shrink_stimulus_pass () in
       progress := a || b || c
     done
   with Budget -> ());
  let r, s = !current in
  { recipe = r; stimulus = s; checks = !checks }
