(** Reducible description of a randomly generated design.

    A recipe is a flat, index-addressed list of entries; entry [i]
    produces exactly one 1-bit signal, signal [i], and may reference
    only strictly earlier signals. That single invariant gives DAG
    wiring by construction — no combinational loop can be expressed —
    and makes every structural edit the delta-debugging reducer wants
    (drop a cell, substitute a simpler one, truncate to a prefix) a
    pure array transformation that preserves validity.

    {!build} turns a recipe into a real {!Jhdl_circuit.Design.t}:
    one root-scope 1-bit wire per signal, one primitive instance per
    non-input entry, a single dedicated clock input feeding every
    sequential clock pin directly (legal clocking by construction),
    every input entry bound as a top-level input port and every
    unconsumed signal bound as a top-level output port (no dangling
    drivers). Entries may carry a group id; each group becomes a
    composite cell with ports computed from the actual cross-group
    signal flow, so hierarchy-sensitive layers (netlist naming,
    snapshot instance paths) see non-trivial trees. *)

type ff_kind =
  | Fd
  | Fde
  | Fdce
  | Fdre

type node =
  | Input  (** a 1-bit top-level stimulus port *)
  | Gnd
  | Vcc
  | Lut of {
      init : int;  (** truth table, [2^(Array.length inputs)] bits *)
      inputs : int array;  (** 1 to 4 signal refs, I0 first *)
    }
  | Ff of {
      kind : ff_kind;
      init : Jhdl_logic.Bit.t;
      d : int;
      ce : int option;  (** required for [Fde]/[Fdce]/[Fdre] *)
      srst : int option;  (** CLR for [Fdce], R for [Fdre] *)
    }
  | Muxcy of { s : int; di : int; ci : int }
  | Xorcy of { li : int; ci : int }
  | Mult_and of { i0 : int; i1 : int }
  | Srl16 of { init : int; ce : int; d : int; a : int array (** 4 refs *) }
  | Ram16 of { init : int; we : int; d : int; a : int array (** 4 refs *) }
  | Buf of { i : int }
  | Inv of { i : int }

type entry = {
  node : node;
  group : int option;
      (** entries sharing a group id land in one composite cell *)
}

type t = {
  name : string;  (** becomes the design name *)
  entries : entry array;
}

(** [refs node] — the signal indices [node] reads, in port order. *)
val refs : node -> int list

(** [is_sequential node] — true for FF/SRL/RAM entries (need a clock). *)
val is_sequential : node -> bool

(** [kind_name node] — the library cell name ("LUT3", "FDCE", ...);
    ["INPUT"] for input entries. Used for coverage accounting. *)
val kind_name : node -> string

(** [well_formed r] — checks every reference points strictly backward,
    LUT/address arities are legal and FF option fields match the FF
    kind. [Error message] pinpoints the first offending entry. *)
val well_formed : t -> (unit, string) result

(** [truncate r n] — the prefix of the first [n] entries (at least 1).
    Backward-only references make any prefix well formed. *)
val truncate : t -> int -> t

(** [input_count r] / [signal_uses r] — stimulus port count and the
    per-signal consumer counts. *)
val input_count : t -> int

val signal_uses : t -> int array

type built = {
  design : Jhdl_circuit.Design.t;
  clock : Jhdl_circuit.Wire.t option;
      (** present iff the recipe holds a sequential entry *)
  input_ports : string list;
      (** stimulus ports (clock excluded), in entry order *)
  output_ports : string list;  (** unconsumed signals, in entry order *)
}

(** [build r] — elaborates the recipe into a fresh design. Raises
    [Invalid_argument] if the recipe is not {!well_formed}. Two builds
    of one recipe produce structurally identical designs (same ports,
    instance paths and snapshot signature). *)
val build : t -> built

(** [to_string r] — canonical one-line-per-entry text rendering, used
    for byte-identical replay checks and reproducer files. *)
val to_string : t -> string
