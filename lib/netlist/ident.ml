type style =
  | Edif
  | Vhdl
  | Verilog

type t = {
  style : style;
  forward : (string, string) Hashtbl.t;
  taken : (string, unit) Hashtbl.t;
  mutable order : (string * string) list; (* reverse first-use order *)
}

let create style =
  { style; forward = Hashtbl.create 64; taken = Hashtbl.create 64; order = [] }

let vhdl_reserved =
  [ "abs"; "access"; "after"; "alias"; "all"; "and"; "architecture"; "array";
    "assert"; "attribute"; "begin"; "block"; "body"; "buffer"; "bus"; "case";
    "component"; "configuration"; "constant"; "disconnect"; "downto"; "else";
    "elsif"; "end"; "entity"; "exit"; "file"; "for"; "function"; "generate";
    "generic"; "group"; "guarded"; "if"; "impure"; "in"; "inertial"; "inout";
    "is"; "label"; "library"; "linkage"; "literal"; "loop"; "map"; "mod";
    "nand"; "new"; "next"; "nor"; "not"; "null"; "of"; "on"; "open"; "or";
    "others"; "out"; "package"; "port"; "postponed"; "procedure"; "process";
    "pure"; "range"; "record"; "register"; "reject"; "rem"; "report";
    "return"; "rol"; "ror"; "select"; "severity"; "signal"; "shared"; "sla";
    "sll"; "sra"; "srl"; "subtype"; "then"; "to"; "transport"; "type";
    "unaffected"; "units"; "until"; "use"; "variable"; "wait"; "when";
    "while"; "with"; "xnor"; "xor" ]

let verilog_reserved =
  [ "always"; "and"; "assign"; "begin"; "buf"; "bufif0"; "bufif1"; "case";
    "casex"; "casez"; "cmos"; "deassign"; "default"; "defparam"; "disable";
    "edge"; "else"; "end"; "endcase"; "endfunction"; "endmodule";
    "endprimitive"; "endspecify"; "endtable"; "endtask"; "event"; "for";
    "force"; "forever"; "fork"; "function"; "highz0"; "highz1"; "if";
    "ifnone"; "initial"; "inout"; "input"; "integer"; "join"; "large";
    "macromodule"; "medium"; "module"; "nand"; "negedge"; "nmos"; "nor";
    "not"; "notif0"; "notif1"; "or"; "output"; "parameter"; "pmos";
    "posedge"; "primitive"; "pull0"; "pull1"; "pulldown"; "pullup";
    "rcmos"; "real"; "realtime"; "reg"; "release"; "repeat"; "rnmos";
    "rpmos"; "rtran"; "rtranif0"; "rtranif1"; "scalared"; "small";
    "specify"; "specparam"; "strong0"; "strong1"; "supply0"; "supply1";
    "table"; "task"; "time"; "tran"; "tranif0"; "tranif1"; "tri"; "tri0";
    "tri1"; "triand"; "trior"; "trireg"; "vectored"; "wait"; "wand";
    "weak0"; "weak1"; "while"; "wire"; "wor"; "xnor"; "xor" ]

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_reserved style s =
  let reserved =
    match style with
    | Vhdl -> vhdl_reserved
    | Verilog -> verilog_reserved
    | Edif -> []
  in
  List.mem (String.lowercase_ascii s) reserved

let case_key style s =
  match style with
  | Vhdl -> String.lowercase_ascii s
  | Edif | Verilog -> s

let sanitize style name =
  let buffer = Buffer.create (String.length name) in
  String.iter
    (fun c -> Buffer.add_char buffer (if is_word_char c then c else '_'))
    name;
  let s = Buffer.contents buffer in
  let s = if s = "" then "n" else s in
  let s =
    if (s.[0] >= '0' && s.[0] <= '9') || s.[0] = '_' then "n" ^ s else s
  in
  (* VHDL forbids double and trailing underscores *)
  let s =
    match style with
    | Vhdl ->
      let b = Buffer.create (String.length s) in
      let last_underscore = ref false in
      String.iter
        (fun c ->
           if c = '_' then begin
             if not !last_underscore then Buffer.add_char b c;
             last_underscore := true
           end
           else begin
             Buffer.add_char b c;
             last_underscore := false
           end)
        s;
      let s = Buffer.contents b in
      if String.length s > 0 && s.[String.length s - 1] = '_' then s ^ "n"
      else s
    | Edif | Verilog -> s
  in
  if is_reserved style s then s ^ "_id" else s

let legalize t name =
  match Hashtbl.find_opt t.forward name with
  | Some s -> s
  | None ->
    let base = sanitize t.style name in
    let key s = case_key t.style s in
    let chosen =
      if not (Hashtbl.mem t.taken (key base)) then base
      else
        let rec pick k =
          let candidate = Printf.sprintf "%s_%d" base k in
          if Hashtbl.mem t.taken (key candidate) then pick (k + 1) else candidate
        in
        pick 1
    in
    Hashtbl.replace t.taken (key chosen) ();
    Hashtbl.replace t.forward name chosen;
    t.order <- (name, chosen) :: t.order;
    chosen

let mapping t = List.rev t.order
