(** Identifier legalization for netlist formats.

    Flattened names contain ['/'], ['['], [']'] and may collide after
    sanitizing; a legalizer rewrites them into the target format's
    identifier syntax and keeps the mapping stable and collision-free
    within one netlist. *)

type t

(** Which syntax to legalize for. *)
type style =
  | Edif  (** letters, digits, underscore; must start with a letter *)
  | Vhdl  (** VHDL-93 basic identifiers; reserved words avoided *)
  | Verilog  (** Verilog simple identifiers; reserved words avoided *)

val create : style -> t

(** [legalize t name] returns the legal identifier for [name], allocating
    one on first use; the same input always maps to the same output and
    distinct inputs never collide. *)
val legalize : t -> string -> string

(** [mapping t] lists [(original, legalized)] pairs in first-use order. *)
val mapping : t -> (string * string) list

(** [sanitize style name] is the stateless first step of {!legalize}: the
    name rewritten into the style's identifier syntax, before any
    collision uniquification. Exposed for the lint engine, which checks
    whether distinct names sanitize to the same identifier. *)
val sanitize : style -> string -> string

(** [is_reserved style name] — [name] (case-insensitively) is a reserved
    word of the target language. *)
val is_reserved : style -> string -> bool

(** [case_key style name] — the collision key used when allocating
    identifiers: lowercased for case-insensitive VHDL, verbatim
    otherwise. *)
val case_key : style -> string -> string
