(** Splittable deterministic pseudo-random stream (SplitMix64).

    Every fault decision in the repository draws from one of these
    streams, so a run is a pure function of its seeds: same seed, same
    faults, same recovery, byte-identical output. [split] derives an
    independent child stream, which lets one user-facing seed fan out to
    per-channel / per-jar streams whose draw counts cannot interfere. *)

type t

(** [create seed] — a fresh stream. Streams with different seeds are
    statistically independent. *)
val create : int -> t

(** [split t] — derive an independent child stream and advance [t]. *)
val split : t -> t

(** [float t] — uniform draw in [0, 1). *)
val float : t -> float

(** [int t bound] — uniform draw in [0, bound). Raises
    [Invalid_argument] when [bound <= 0]. *)
val int : t -> int -> int
