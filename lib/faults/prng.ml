(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): one 64-bit counter
   advanced by a fixed odd gamma, output through a bit-mixing finalizer.
   Trivially splittable: a child seeded from the parent's next output is
   statistically independent of the parent's subsequent draws. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed =
  (* pre-mix the user seed so small seeds (0, 1, 2...) land far apart *)
  { state = Int64.mul (Int64.add (Int64.of_int seed) 1L) gamma }

let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

(* top 53 bits over 2^53: uniform in [0,1) with full double precision *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))
