type kind =
  | Drop
  | Corrupt
  | Duplicate
  | Latency_spike
  | Disconnect
  | Session_crash

let all_kinds = [ Drop; Corrupt; Duplicate; Latency_spike; Disconnect; Session_crash ]

let kind_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Latency_spike -> "latency"
  | Disconnect -> "disconnect"
  | Session_crash -> "session-crash"

let kind_of_string = function
  | "drop" -> Some Drop
  | "corrupt" -> Some Corrupt
  | "duplicate" | "dup" -> Some Duplicate
  | "latency" | "latency-spike" | "spike" -> Some Latency_spike
  | "disconnect" -> Some Disconnect
  | "session-crash" | "crash" -> Some Session_crash
  | _ -> None

type config = {
  drop_rate : float;
  corrupt_rate : float;
  duplicate_rate : float;
  latency_spike_rate : float;
  latency_spike_s : float;
  disconnect_rate : float;
  session_crash_rate : float;
  seed : int;
}

let none =
  { drop_rate = 0.0;
    corrupt_rate = 0.0;
    duplicate_rate = 0.0;
    latency_spike_rate = 0.0;
    latency_spike_s = 0.25;
    disconnect_rate = 0.0;
    session_crash_rate = 0.0;
    seed = 0 }

let only kind ~rate ~seed =
  let base = { none with seed } in
  match kind with
  | Drop -> { base with drop_rate = rate }
  | Corrupt -> { base with corrupt_rate = rate }
  | Duplicate -> { base with duplicate_rate = rate }
  | Latency_spike -> { base with latency_spike_rate = rate }
  | Disconnect -> { base with disconnect_rate = rate }
  | Session_crash -> { base with session_crash_rate = rate }

(* [degraded] deliberately leaves [session_crash_rate] at zero: it is the
   "everything wrong with the wire at once" preset, and crashing the peer
   process is a different failure class (armed explicitly where a session
   layer exists to recover from it). *)
let degraded ~rate ~seed =
  { none with
    drop_rate = rate;
    corrupt_rate = rate;
    duplicate_rate = rate;
    latency_spike_rate = rate;
    disconnect_rate = rate;
    seed }

let rate_of config = function
  | Drop -> config.drop_rate
  | Corrupt -> config.corrupt_rate
  | Duplicate -> config.duplicate_rate
  | Latency_spike -> config.latency_spike_rate
  | Disconnect -> config.disconnect_rate
  | Session_crash -> config.session_crash_rate

let describe config =
  let active =
    List.filter_map
      (fun kind ->
         let rate = rate_of config kind in
         if rate > 0.0 then
           Some (Printf.sprintf "%s %.0f%%" (kind_name kind) (rate *. 100.0))
         else None)
      all_kinds
  in
  match active with
  | [] -> "clean channel"
  | active ->
    Printf.sprintf "%s (seed %d)" (String.concat ", " active) config.seed

type injector = {
  config : config;
  prng : Prng.t;
  counts : (kind, int) Hashtbl.t;
}

let injector config =
  { config; prng = Prng.create config.seed; counts = Hashtbl.create 5 }

let split t = { t with prng = Prng.split t.prng }

let record t kind =
  Hashtbl.replace t.counts kind
    (1 + Option.value (Hashtbl.find_opt t.counts kind) ~default:0)

(* One uniform draw per kind per call keeps the stream aligned no matter
   which kinds are enabled, so "drop only" and "drop + corrupt" runs
   agree on where the drops land. [Session_crash] is the one exception:
   its uniform is consumed only when the kind is armed, so every legacy
   five-kind configuration replays the exact pre-session-layer stream
   (seeded cram runs pin those fault positions byte-for-byte). *)
let draw t =
  let hit =
    List.filter
      (fun kind ->
         match kind with
         | Session_crash when rate_of t.config Session_crash <= 0.0 -> false
         | _ -> Prng.float t.prng < rate_of t.config kind)
      all_kinds
  in
  match hit with
  | [] -> None
  | kind :: _ ->
    record t kind;
    Some kind

let fraction t = Prng.float t.prng

let mangle t payload =
  if String.length payload = 0 then payload
  else begin
    let i = Prng.int t.prng (String.length payload) in
    let flip = 1 + Prng.int t.prng 255 in
    let b = Bytes.of_string payload in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor flip));
    Bytes.to_string b
  end

let tally t =
  List.map
    (fun kind ->
       (kind, Option.value (Hashtbl.find_opt t.counts kind) ~default:0))
    all_kinds

let total_injected t = List.fold_left (fun acc (_, n) -> acc + n) 0 (tally t)
