(** Seeded fault taxonomy for the consumer-link scenarios of the paper's
    evaluation (modem / DSL clients, Section 4.2 and 4.4).

    The perfect-channel models in {!Jhdl_netproto.Network} and
    {!Jhdl_bundle.Download} accept a [config]; every transmission then
    draws from a deterministic stream ({!Prng}) to decide whether it is
    delivered intact, lost, mangled, duplicated, delayed, or cut off.
    Rates are independent per kind, so a test matrix can turn exactly one
    failure mode on at a time, and the whole run replays bit-for-bit from
    its seed. *)

type kind =
  | Drop  (** message or transfer silently lost in flight *)
  | Corrupt  (** delivered, but payload bytes mangled (checksums catch it) *)
  | Duplicate  (** delivered twice (sequence numbers catch it) *)
  | Latency_spike  (** delivered after an extra stall *)
  | Disconnect  (** connection torn down; the peer must reconnect *)
  | Session_crash
      (** the peer process dies mid-exchange, losing all volatile state;
          only a session layer with checkpoints can recover *)

val all_kinds : kind list
val kind_name : kind -> string

(** [kind_of_string s] — parse a CLI spelling ("drop", "corrupt",
    "duplicate", "latency", "disconnect"). *)
val kind_of_string : string -> kind option

type config = {
  drop_rate : float;
  corrupt_rate : float;
  duplicate_rate : float;
  latency_spike_rate : float;
  latency_spike_s : float;  (** extra seconds charged per spike *)
  disconnect_rate : float;
  session_crash_rate : float;
  seed : int;
}

(** [none] — all rates zero; injecting with it is a no-op. *)
val none : config

(** [only kind ~rate ~seed] — a single failure mode at [rate], everything
    else clean. The fault-matrix tests sweep this. *)
val only : kind -> rate:float -> seed:int -> config

(** [degraded ~rate ~seed] — every wire failure mode at [rate] at once:
    the "bad hotel wifi" preset. [Session_crash] stays off — peer-process
    death is armed explicitly where a session layer can recover it. *)
val degraded : rate:float -> seed:int -> config

val describe : config -> string

(** {1 Injection} *)

(** Stateful injector: a [config] plus its private draw stream and
    per-kind tallies of what it actually injected. *)
type injector

val injector : config -> injector

(** [split t] — independent child injector (same rates, forked stream):
    one per channel or per jar, so their draw orders cannot interfere. *)
val split : injector -> injector

(** [draw t] — decide the fate of one transmission. Kinds are tested in
    declaration order with independent probabilities; the first hit wins
    and is tallied. Exactly one decision per call, fully determined by
    the seed and the call sequence. A uniform is consumed per kind per
    call — except [Session_crash]'s, consumed only when armed, so
    configurations without it replay the historical five-kind stream. *)
val draw : injector -> kind option

(** [fraction t] — uniform draw in [0, 1); used for "how far through the
    transfer did it die" when resuming partial fetches. *)
val fraction : injector -> float

(** [mangle t payload] — flip one random byte of [payload] (the
    wire-level damage behind [Corrupt]). Empty payloads pass through. *)
val mangle : injector -> string -> string

(** [tally t] — per-kind counts of faults injected so far, in
    [all_kinds] order, zero entries included. *)
val tally : injector -> (kind * int) list

val total_injected : injector -> int
