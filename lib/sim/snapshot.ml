(* Checkpoint blob format, shared by [Simulator] and [Reference].

   Layout (integers big-endian):

     "JSNP"  magic                                   4 bytes
     version                                         1
     design signature                                4
     cycle counter                                   4
     net count N, then N code bytes                  4 + N
     seq count S, then S entries                     4 + ...
       path length (u16), path bytes
       'F' + 1 code byte          flip-flop
       'M' + 16 code bytes        SRL / RAM cells
     watch count W (u16), then W entries             2 + ...
       label length (u16), label bytes
       sample count (u32), then per sample:
         cycle (u32), width (u16), width code bytes
     CRC-16 over everything after the magic          2

   State entries are keyed by instance path, not evaluation rank: the
   kernel levelizes in rank order and the interpreter keeps hierarchy
   order, and paths are the one key both agree on. *)

module Bits = Jhdl_logic.Bits
module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init
module Prim = Jhdl_circuit.Prim
module Cell = Jhdl_circuit.Cell
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
let magic = "JSNP"
let version = 1

type seq_state =
  | Flop of int
  | Mem of Bytes.t

type image = {
  image_signature : int;
  image_cycles : int;
  image_nets : Bytes.t;
  image_seq : (string * seq_state) list;
  image_watches : (string * (int * Bits.t) list) list;
}

(* CRC-16/CCITT-FALSE, bit-identical to the wire protocol's checksum —
   both delegate to the one shared implementation *)
let crc16 = Jhdl_logic.Crc16.checksum

(* ------------------------------------------------------------------ *)
(* Design signature.                                                   *)

let fnv1a32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

(* FNV-1a/64 in Int64 arithmetic: OCaml's native int is 63 bits, one
   short of the hash width *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h :=
         Int64.mul
           (Int64.logxor !h (Int64.of_int (Char.code c)))
           0x100000001b3L)
    s;
  !h

(* [Prim.name] alone would collide distinct parameterizations (it drops
   INIT values), so the descriptor spells them out. *)
let describe_prim = function
  | Prim.Lut init ->
    Printf.sprintf "LUT%d=%x" (Lut_init.inputs init) (Lut_init.to_int init)
  | Prim.Ff { clock_enable; async_clear; sync_reset; init } ->
    Printf.sprintf "FF:%b:%b:%b:%d" clock_enable async_clear sync_reset
      (Bit.to_code init)
  | Prim.Srl16 { init } -> Printf.sprintf "SRL16=%x" init
  | Prim.Ram16x1 { init } -> Printf.sprintf "RAM16X1=%x" init
  | Prim.Black_box { model_name; _ } -> "BB:" ^ model_name
  | p -> Prim.name p

let descriptor design =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Design.name design);
  List.iter
    (fun p ->
       Buffer.add_char b '|';
       Buffer.add_string b p.Design.port_name;
       Buffer.add_char b
         (match p.Design.port_dir with
          | Jhdl_circuit.Types.Input -> '<'
          | Jhdl_circuit.Types.Output -> '>');
       Buffer.add_string b (string_of_int (Wire.width p.Design.port_wire)))
    (Design.ports design);
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int (List.length (Design.all_nets design)));
  List.iter
    (fun inst ->
       match Cell.prim_of inst with
       | None -> ()
       | Some prim ->
         Buffer.add_char b '|';
         Buffer.add_string b (Cell.path inst);
         Buffer.add_char b '=';
         Buffer.add_string b (describe_prim prim))
    (Design.all_prims design);
  Buffer.contents b

let signature design = fnv1a32 (descriptor design)
let signature64 design = fnv1a64 (descriptor design)

let check_design design =
  List.iter
    (fun inst ->
       match Cell.prim_of inst with
       | Some (Prim.Black_box { model_name; _ }) ->
         error
           "snapshot: design %s holds behavioural black box %s (%s) whose \
            opaque state cannot be serialized"
           (Design.name design) (Cell.path inst) model_name
       | _ -> ())
    (Design.all_prims design)

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

let add_str16 b s =
  if String.length s > 0xffff then error "snapshot: string too long";
  add_u16 b (String.length s);
  Buffer.add_string b s

let encode img =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_u8 b version;
  add_u32 b img.image_signature;
  add_u32 b img.image_cycles;
  add_u32 b (Bytes.length img.image_nets);
  Buffer.add_bytes b img.image_nets;
  add_u32 b (List.length img.image_seq);
  List.iter
    (fun (path, state) ->
       add_str16 b path;
       match state with
       | Flop code ->
         Buffer.add_char b 'F';
         add_u8 b code
       | Mem cells ->
         if Bytes.length cells <> 16 then
           error "snapshot: memory state must be 16 cells";
         Buffer.add_char b 'M';
         Buffer.add_bytes b cells)
    img.image_seq;
  add_u16 b (List.length img.image_watches);
  List.iter
    (fun (label, samples) ->
       add_str16 b label;
       add_u32 b (List.length samples);
       List.iter
         (fun (cyc, bits) ->
            add_u32 b cyc;
            let codes = Bits.to_codes bits in
            add_u16 b (Bytes.length codes);
            Buffer.add_bytes b codes)
         samples)
    img.image_watches;
  let body = Buffer.contents b in
  let payload = String.sub body 4 (String.length body - 4) in
  add_u16 b (crc16 payload);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding.                                                           *)

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then error "snapshot: truncated blob"

let u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let hi = u8 r in
  (hi lsl 8) lor u8 r

let u32 r =
  let hi = u16 r in
  (hi lsl 16) lor u16 r

let str r n =
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* explicit left-to-right loop: the reader is stateful, so the order the
   element parser runs in is part of the format *)
let read_list n f =
  let rec go acc i = if i = 0 then List.rev acc else go (f () :: acc) (i - 1) in
  go [] n

let code_byte r =
  let c = u8 r in
  if c > 3 then error "snapshot: invalid value code %d" c;
  c

let codes r n =
  let s = str r n in
  String.iter
    (fun c -> if Char.code c > 3 then error "snapshot: invalid value code %d" (Char.code c))
    s;
  Bytes.of_string s

let decode data =
  if String.length data < 4 || not (String.equal (String.sub data 0 4) magic)
  then error "snapshot: bad magic (not a snapshot blob)";
  if String.length data < 7 then error "snapshot: truncated blob";
  let stored =
    (Char.code data.[String.length data - 2] lsl 8)
    lor Char.code data.[String.length data - 1]
  in
  let payload = String.sub data 4 (String.length data - 6) in
  if crc16 payload <> stored then error "snapshot: CRC mismatch (corrupt blob)";
  let r = { data; pos = 4 } in
  let v = u8 r in
  if v <> version then
    error "snapshot: unsupported version %d (this build reads %d)" v version;
  let image_signature = u32 r in
  let image_cycles = u32 r in
  let n_nets = u32 r in
  let image_nets = codes r n_nets in
  let n_seq = u32 r in
  let image_seq =
    read_list n_seq (fun () ->
      let path = str r (u16 r) in
      match str r 1 with
      | "F" -> (path, Flop (code_byte r))
      | "M" -> (path, Mem (codes r 16))
      | t -> error "snapshot: unknown state tag %S" t)
  in
  let n_watch = u16 r in
  let image_watches =
    read_list n_watch (fun () ->
      let label = str r (u16 r) in
      let n = u32 r in
      let samples =
        read_list n (fun () ->
          let cyc = u32 r in
          let w = u16 r in
          (cyc, Bits.of_codes (codes r w)))
      in
      (label, samples))
  in
  ignore (u16 r : int) (* CRC trailer, verified above *);
  if r.pos <> String.length data then error "snapshot: trailing garbage";
  { image_signature; image_cycles; image_nets; image_seq; image_watches }
