(* The original interpreter-style evaluator, retained verbatim (minus the
   mem_read and hook-dispatch fixes shared with the kernel) as the golden
   model for differential testing of the compiled dense kernel in
   [Simulator]. Hot-path performance is a non-goal here; faithfulness to
   the documented 4-value semantics is the only requirement. *)

open Jhdl_circuit.Types
module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Levelize = Jhdl_circuit.Levelize

exception Combinational_cycle of string list

module Int_set = Set.Make (Int)

type node_state =
  | No_state
  | Ff_state of { value : Bit.t ref; init : Bit.t }
  | Mem_state of { cells : Bit.t array; init : Bit.t array }
  | Bb_state of Prim.behavior

type node = {
  inst : cell;
  prim : Prim.t;
  in_ports : (string * net array) list;
  out_ports : (string * net array) list;
  state : node_state;
}

type watch_entry = {
  watch_label : string;
  watch_wire : wire;
  mutable samples : (int * Bits.t) list; (* newest first *)
}

type t = {
  sim_design : Design.t;
  clock_nets : (int, unit) Hashtbl.t option;
  values : (int, Bit.t) Hashtbl.t;
  order : node array; (* topological evaluation order *)
  seq_nodes : (node * int) list; (* with their rank in [order] *)
  consumers : (int, int list) Hashtbl.t;
      (* net id -> ranks of nodes reading it combinationally *)
  mutable pending : Int_set.t; (* dirty node ranks, drained in rank order *)
  mutable cycles : int;
  mutable watches : watch_entry list; (* reverse watch order *)
  mutable cycle_hooks : (int -> unit) list; (* registration order *)
  depth : int;
  (* lifetime work counters, mirroring the kernel's *)
  mutable stat_evals : int;
  mutable stat_changes : int;
}

let read_net sim n =
  Option.value (Hashtbl.find_opt sim.values n.net_id) ~default:Bit.X

(* every net write is change-tracked: a changed value marks the net's
   combinational consumers dirty, which is what incremental propagation
   drains *)
let write_net sim n v =
  let before = Option.value (Hashtbl.find_opt sim.values n.net_id) ~default:Bit.X in
  if not (Bit.equal before v) then begin
    Hashtbl.replace sim.values n.net_id v;
    sim.stat_changes <- sim.stat_changes + 1;
    match Hashtbl.find_opt sim.consumers n.net_id with
    | None -> ()
    | Some ranks ->
      sim.pending <-
        List.fold_left (fun acc r -> Int_set.add r acc) sim.pending ranks
  end

let read_nets sim nets = Bits.init (Array.length nets) (fun i -> read_net sim nets.(i))

let port_nets ports name =
  match List.assoc_opt name ports with
  | Some nets -> nets
  | None -> invalid_arg (Printf.sprintf "Simulator: no port %s" name)

let read_in1 sim node name =
  let nets = port_nets node.in_ports name in
  read_net sim nets.(0)

let write_out1 sim node name v =
  let nets = port_nets node.out_ports name in
  write_net sim nets.(0) v

(* Reading a 16-entry memory with possibly-undefined address bits: every
   cell reachable under the unknown-bit mask must agree on a defined
   value, matching Lut_init.eval's pessimism. The reachable cells are
   visited by the subset walk [sub' = (sub - mask) land mask] — a direct
   scan, no 2^k address-list allocation. *)
let mem_read cells addr_bits =
  let mask = ref 0 in
  let base = ref 0 in
  Array.iteri
    (fun i b ->
       match Bit.to_bool b with
       | Some true -> base := !base lor (1 lsl i)
       | Some false -> ()
       | None -> mask := !mask lor (1 lsl i))
    addr_bits;
  let base = !base and mask = !mask in
  if mask = 0 then cells.(base)
  else
    let v = cells.(base) in
    if not (Bit.is_defined v) then Bit.X
    else
      let rec agree sub =
        if not (Bit.equal cells.(base lor sub) v) then Bit.X
        else if sub = mask then v
        else agree ((sub - mask) land mask)
      in
      agree ((0 - mask) land mask)

let addr_of sim node =
  Array.init 4 (fun i -> read_in1 sim node (Printf.sprintf "A%d" i))

let bb_read sim node port =
  match List.assoc_opt port node.in_ports with
  | Some nets -> read_nets sim nets
  | None -> read_nets sim (port_nets node.out_ports port)

(* Combinational evaluation of one node from current net values. *)
let eval_node sim node =
  match node.prim, node.state with
  | Prim.Lut init, _ ->
    let k = Lut_init.inputs init in
    let addr =
      Array.init k (fun i -> read_in1 sim node (Printf.sprintf "I%d" i))
    in
    write_out1 sim node "O" (Lut_init.eval init addr)
  | Prim.Ff { async_clear; _ }, Ff_state { value; _ } ->
    let q =
      if async_clear then
        Bit.mux ~sel:(read_in1 sim node "CLR") !value Bit.Zero
      else !value
    in
    write_out1 sim node "Q" q
  | Prim.Muxcy, _ ->
    let s = read_in1 sim node "S"
    and di = read_in1 sim node "DI"
    and ci = read_in1 sim node "CI" in
    write_out1 sim node "O" (Bit.mux ~sel:s di ci)
  | Prim.Xorcy, _ ->
    write_out1 sim node "O" (Bit.xor (read_in1 sim node "LI") (read_in1 sim node "CI"))
  | Prim.Mult_and, _ ->
    write_out1 sim node "LO" (Bit.and_ (read_in1 sim node "I0") (read_in1 sim node "I1"))
  | Prim.Srl16 _, Mem_state { cells; _ } ->
    write_out1 sim node "Q" (mem_read cells (addr_of sim node))
  | Prim.Ram16x1 _, Mem_state { cells; _ } ->
    write_out1 sim node "O" (mem_read cells (addr_of sim node))
  | Prim.Buf, _ -> write_out1 sim node "O" (read_in1 sim node "I")
  | Prim.Inv, _ -> write_out1 sim node "O" (Bit.not_ (read_in1 sim node "I"))
  | Prim.Gnd, _ -> write_out1 sim node "G" Bit.Zero
  | Prim.Vcc, _ -> write_out1 sim node "P" Bit.One
  | Prim.Black_box _, Bb_state behavior ->
    let outs = behavior.Prim.comb ~read:(bb_read sim node) in
    List.iter
      (fun (port, bits) ->
         let nets = port_nets node.out_ports port in
         if Array.length nets <> Bits.width bits then
           invalid_arg
             (Printf.sprintf "Simulator: black box %s wrote %d bits to %d-bit port %s"
                (Cell.path node.inst) (Bits.width bits) (Array.length nets) port);
         Array.iteri (fun i n -> write_net sim n (Bits.get bits i)) nets)
      outs
  | (Prim.Ff _ | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Black_box _), _ ->
    (* state construction below guarantees matching node_state *)
    assert false

(* Ports whose value combinationally affects the node's outputs; the
   shared levelizer only draws edges through these. *)
let node_comb_inputs node =
  match node.prim with
  | Prim.Black_box _ -> List.map fst node.in_ports
  | p -> Levelize.comb_input_ports p

let make_node inst =
  match Cell.prim_of inst with
  | None -> assert false
  | Some prim ->
    let ins = ref [] and outs = ref [] in
    List.iter
      (fun b ->
         match b.dir with
         | Input -> ins := (b.formal, b.actual.nets) :: !ins
         | Output -> outs := (b.formal, b.actual.nets) :: !outs)
      inst.port_bindings;
    let state =
      match prim with
      | Prim.Ff { init; _ } -> Ff_state { value = ref init; init }
      | Prim.Srl16 { init } | Prim.Ram16x1 { init } ->
        let init_bits =
          Array.init 16 (fun i -> Bit.of_bool ((init lsr i) land 1 = 1))
        in
        Mem_state { cells = Array.copy init_bits; init = init_bits }
      | Prim.Black_box { make_behavior; _ } -> Bb_state (make_behavior ())
      | Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Buf
      | Prim.Inv | Prim.Gnd | Prim.Vcc -> No_state
    in
    { inst; prim; in_ports = !ins; out_ports = !outs; state }

(* Shared Kahn levelization over combinational edges: project nodes to
   the bare [Levelize.source] view, walk, then map the resulting order
   back to the stateful nodes. *)
let levelize nodes =
  let by_id = Hashtbl.create 256 in
  List.iter (fun node -> Hashtbl.replace by_id node.inst.cell_id node) nodes;
  let sources =
    List.map
      (fun node ->
         { Levelize.inst = node.inst;
           prim = node.prim;
           in_ports = node.in_ports;
           out_ports = node.out_ports })
      nodes
  in
  let order, _, max_level =
    try Levelize.levelize sources
    with Levelize.Cycle cells ->
      raise (Combinational_cycle (List.map Cell.path cells))
  in
  Array.map (fun s -> Hashtbl.find by_id s.Levelize.inst.cell_id) order, max_level

(* full pass: evaluate everything once in topological order (used at
   create and reset); leaves no pending work *)
let propagate_full sim =
  Array.iter (eval_node sim) sim.order;
  sim.stat_evals <- sim.stat_evals + Array.length sim.order;
  sim.pending <- Int_set.empty

(* incremental settle: drain dirty nodes in rank order; evaluating a node
   re-marks downstream consumers only when an output actually changed *)
let propagate sim =
  let rec drain () =
    match Int_set.min_elt_opt sim.pending with
    | None -> ()
    | Some rank ->
      sim.pending <- Int_set.remove rank sim.pending;
      sim.stat_evals <- sim.stat_evals + 1;
      eval_node sim sim.order.(rank);
      drain ()
  in
  drain ()

let create ?clock design =
  (* Combinational loops are excluded from the design-rule pre-check so
     levelization reports them through the canonical [Combinational_cycle]
     exception, carrying the same cell list as [Design.validate]. *)
  (match
     List.filter
       (function Design.Combinational_loop _ -> false | _ -> true)
       (Design.errors design)
   with
   | [] -> ()
   | violation :: _ ->
     invalid_arg
       (Format.asprintf "Simulator.create: design-rule error: %a"
          Design.pp_violation violation));
  let clock_nets =
    match clock with
    | None -> None
    | Some w ->
      if Wire.width w <> 1 then
        invalid_arg "Simulator.create: clock wire must be 1 bit wide";
      let table = Hashtbl.create 4 in
      Array.iter (fun n -> Hashtbl.replace table n.net_id ()) (Wire.nets w);
      Some table
  in
  let nodes = List.map make_node (Design.all_prims design) in
  let order, depth = levelize nodes in
  let rank_of = Hashtbl.create 256 in
  Array.iteri (fun rank node -> Hashtbl.replace rank_of node.inst.cell_id rank) order;
  let seq_nodes =
    List.filter_map
      (fun n ->
         match n.prim with
         | Prim.Ff _ | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Black_box _ ->
           Some (n, Hashtbl.find rank_of n.inst.cell_id)
         | Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Buf
         | Prim.Inv | Prim.Gnd | Prim.Vcc -> None)
      nodes
  in
  let consumers = Hashtbl.create 512 in
  Array.iteri
    (fun rank node ->
       List.iter
         (fun port ->
            match List.assoc_opt port node.in_ports with
            | None -> ()
            | Some nets ->
              Array.iter
                (fun n ->
                   Hashtbl.replace consumers n.net_id
                     (rank
                      :: Option.value (Hashtbl.find_opt consumers n.net_id)
                        ~default:[]))
                nets)
         (node_comb_inputs node))
    order;
  let sim =
    { sim_design = design;
      clock_nets;
      values = Hashtbl.create 1024;
      order;
      seq_nodes;
      consumers;
      pending = Int_set.empty;
      cycles = 0;
      watches = [];
      cycle_hooks = [];
      depth;
      stat_evals = 0;
      stat_changes = 0 }
  in
  propagate_full sim;
  sim

let design sim = sim.sim_design

let set_input_wire sim w bits =
  if Bits.width bits <> Wire.width w then
    invalid_arg
      (Printf.sprintf "Simulator.set_input_wire: %d bits for %d-bit wire %s"
         (Bits.width bits) (Wire.width w) (Wire.name w));
  Array.iteri
    (fun i n ->
       (match n.driver with
        | Some term ->
          invalid_arg
            (Printf.sprintf "Simulator.set_input_wire: net %s[%d] is driven by %s"
               (Wire.name w) i (Cell.path term.term_cell))
        | None -> ());
       write_net sim n (Bits.get bits i))
    (Wire.nets w);
  propagate sim

let set_input sim port bits =
  match Design.find_port sim.sim_design port with
  | None -> invalid_arg (Printf.sprintf "Simulator.set_input: no port %s" port)
  | Some p ->
    (match p.Design.port_dir with
     | Input -> set_input_wire sim p.Design.port_wire bits
     | Output ->
       invalid_arg (Printf.sprintf "Simulator.set_input: %s is an output" port))

let get sim w = read_nets sim (Wire.nets w)

let get_port sim port =
  match Design.find_port sim.sim_design port with
  | None -> invalid_arg (Printf.sprintf "Simulator.get_port: no port %s" port)
  | Some p -> get sim p.Design.port_wire

let in_clock_domain sim node =
  match sim.clock_nets with
  | None -> true
  | Some table ->
    (match Prim.clock_port node.prim with
     | None -> true (* black boxes follow the global cycle *)
     | Some port ->
       (match List.assoc_opt port node.in_ports with
        | None -> false
        | Some nets ->
          Array.exists (fun n -> Hashtbl.mem table n.net_id) nets))

(* Next-state of one sequential node from pre-edge values, as a commit
   thunk so that all nodes sample the same pre-edge state. *)
let clock_compute sim node =
  match node.prim, node.state with
  | Prim.Ff { clock_enable; async_clear; sync_reset; _ }, Ff_state st ->
    let ce = if clock_enable then read_in1 sim node "CE" else Bit.One in
    let clr = if async_clear then read_in1 sim node "CLR" else Bit.Zero in
    let r = if sync_reset then read_in1 sim node "R" else Bit.Zero in
    let d = read_in1 sim node "D" in
    let next =
      if Bit.equal clr Bit.One then Bit.Zero
      else
        let loaded = Bit.mux ~sel:r d Bit.Zero in
        let held = Bit.mux ~sel:ce !(st.value) loaded in
        if Bit.equal clr Bit.Zero then held
        else (* CLR unknown: zero and the clocked value must agree *)
          Bit.mux ~sel:clr held Bit.Zero
    in
    Some
      (fun () ->
         let changed = not (Bit.equal !(st.value) next) in
         st.value := next;
         changed)
  | Prim.Srl16 _, Mem_state { cells; _ } ->
    let ce = read_in1 sim node "CE" in
    let d = read_in1 sim node "D" in
    (match Bit.to_bool ce with
     | Some false -> None
     | Some true ->
       let next = Array.init 16 (fun i -> if i = 0 then d else cells.(i - 1)) in
       Some
         (fun () ->
            let changed = not (Array.for_all2 Bit.equal next cells) in
            Array.blit next 0 cells 0 16;
            changed)
     | None ->
       let next =
         Array.init 16 (fun i ->
           let shifted = if i = 0 then d else cells.(i - 1) in
           if Bit.equal shifted cells.(i) && Bit.is_defined shifted then shifted
           else Bit.X)
       in
       Some
         (fun () ->
            let changed = not (Array.for_all2 Bit.equal next cells) in
            Array.blit next 0 cells 0 16;
            changed))
  | Prim.Ram16x1 _, Mem_state { cells; _ } ->
    let we = read_in1 sim node "WE" in
    let d = read_in1 sim node "D" in
    let addr = addr_of sim node in
    (match Bit.to_bool we with
     | Some false -> None
     | Some true ->
       let defined = Array.for_all Bit.is_defined addr in
       if defined then begin
         let index = ref 0 in
         Array.iteri
           (fun i b -> if Bit.equal b Bit.One then index := !index lor (1 lsl i))
           addr;
         let i = !index in
         Some
           (fun () ->
              let changed = not (Bit.equal cells.(i) d) in
              cells.(i) <- d;
              changed)
       end
       else
         Some
           (fun () ->
              let changed =
                Array.exists (fun c -> not (Bit.equal c Bit.X)) cells
              in
              Array.fill cells 0 16 Bit.X;
              changed)
     | None ->
       Some
         (fun () ->
            let changed =
              Array.exists (fun c -> not (Bit.equal c Bit.X)) cells
            in
            Array.fill cells 0 16 Bit.X;
            changed))
  | Prim.Black_box _, Bb_state behavior ->
    (match behavior.Prim.clock_edge with
     | None -> None
     | Some edge ->
       let read = bb_read sim node in
       (* behavioural state is opaque: conservatively re-evaluate *)
       Some
         (fun () ->
            edge ~read;
            true))
  | (Prim.Ff _ | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Black_box _), _ ->
    assert false
  | ( ( Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Buf
      | Prim.Inv | Prim.Gnd | Prim.Vcc ),
      _ ) -> None

let record_watches sim =
  List.iter
    (fun w -> w.samples <- (sim.cycles, get sim w.watch_wire) :: w.samples)
    sim.watches

let cycle ?(n = 1) sim =
  for _ = 1 to n do
    (* two-phase: compute every next-state from pre-edge values, then
       commit; committers whose state changed are re-evaluated so their
       outputs propagate *)
    let commits =
      List.filter_map
        (fun (node, rank) ->
           if in_clock_domain sim node then
             Option.map (fun commit -> (commit, rank)) (clock_compute sim node)
           else None)
        sim.seq_nodes
    in
    List.iter
      (fun (commit, rank) ->
         if commit () then sim.pending <- Int_set.add rank sim.pending)
      commits;
    sim.cycles <- sim.cycles + 1;
    propagate sim;
    (match sim.watches with [] -> () | _ -> record_watches sim);
    (match sim.cycle_hooks with
     | [] -> ()
     | hooks -> List.iter (fun hook -> hook sim.cycles) hooks)
  done

let reset sim =
  List.iter
    (fun (node, _) ->
       match node.state with
       | Ff_state st -> st.value := st.init
       | Mem_state { cells; init } -> Array.blit init 0 cells 0 16
       | Bb_state behavior ->
         (match behavior.Prim.state_reset with
          | None -> ()
          | Some f -> f ())
       | No_state -> ())
    sim.seq_nodes;
  sim.cycles <- 0;
  List.iter (fun w -> w.samples <- []) sim.watches;
  propagate_full sim;
  record_watches sim

let cycle_count sim = sim.cycles

let watch sim ?label w =
  let watch_label = Option.value label ~default:(Wire.full_name w) in
  let entry = { watch_label; watch_wire = w; samples = [ (sim.cycles, get sim w) ] } in
  sim.watches <- entry :: sim.watches

let history sim =
  List.rev_map
    (fun w -> (w.watch_label, List.rev w.samples))
    sim.watches

let on_cycle sim f = sim.cycle_hooks <- sim.cycle_hooks @ [ f ]
let prim_count sim = Array.length sim.order
let levels sim = sim.depth
let eval_count sim = sim.stat_evals
let event_count sim = sim.stat_changes

let register_metrics sim registry =
  let module M = Jhdl_metrics.Metrics in
  M.probe registry "cycles_total" (fun () -> sim.cycles);
  M.probe registry "settle_evals_total" (fun () -> sim.stat_evals);
  M.probe registry "net_events_total" (fun () -> sim.stat_changes);
  M.probe registry "prims" (fun () -> Array.length sim.order);
  M.probe registry "levels" (fun () -> sim.depth);
  if not (M.is_nil registry) then begin
    let per_cycle = M.histogram registry "settle_evals_per_cycle" in
    let last = ref sim.stat_evals in
    on_cycle sim (fun _ ->
        let now = sim.stat_evals in
        M.observe per_cycle (now - !last);
        last := now)
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing: same path-keyed blob format as [Simulator], so a
   kernel snapshot restores into the interpreter and vice versa.        *)

let seq_node_by_path sim =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (node, _) -> Hashtbl.replace table (Cell.path node.inst) node)
    sim.seq_nodes;
  table

let snapshot sim =
  Snapshot.check_design sim.sim_design;
  let nets_list = Design.all_nets sim.sim_design in
  let image_nets =
    Bytes.init (List.length nets_list) (fun _ -> '\002')
  in
  List.iteri
    (fun i n ->
       Bytes.set image_nets i (Char.chr (Bit.to_code (read_net sim n))))
    nets_list;
  let by_path = seq_node_by_path sim in
  let image_seq =
    List.filter_map
      (fun inst ->
         let path = Cell.path inst in
         match Hashtbl.find_opt by_path path with
         | None -> None
         | Some node ->
           (match node.state with
            | Ff_state { value; _ } ->
              Some (path, Snapshot.Flop (Bit.to_code !value))
            | Mem_state { cells; _ } ->
              Some
                ( path,
                  Snapshot.Mem
                    (Bytes.init 16 (fun i -> Char.chr (Bit.to_code cells.(i))))
                )
            | Bb_state _ | No_state -> None))
      (Design.all_prims sim.sim_design)
  in
  Snapshot.encode
    { Snapshot.image_signature = Snapshot.signature sim.sim_design;
      image_cycles = sim.cycles;
      image_nets;
      image_seq;
      image_watches = history sim }

let restore sim blob =
  let img = Snapshot.decode blob in
  let expect = Snapshot.signature sim.sim_design in
  if img.Snapshot.image_signature <> expect then
    raise
      (Snapshot.Error
         (Printf.sprintf
            "snapshot: design signature mismatch (blob %08x, design %s is %08x)"
            img.Snapshot.image_signature (Design.name sim.sim_design) expect));
  let nets_list = Design.all_nets sim.sim_design in
  if Bytes.length img.Snapshot.image_nets <> List.length nets_list then
    raise (Snapshot.Error "snapshot: net count mismatch");
  List.iteri
    (fun i n ->
       Hashtbl.replace sim.values n.net_id
         (Bit.of_code (Char.code (Bytes.get img.Snapshot.image_nets i))))
    nets_list;
  let by_path = seq_node_by_path sim in
  List.iter
    (fun (path, state) ->
       match Hashtbl.find_opt by_path path with
       | Some { state = Ff_state { value; _ }; _ } ->
         (match state with
          | Snapshot.Flop c -> value := Bit.of_code c
          | Snapshot.Mem _ ->
            raise
              (Snapshot.Error
                 ("snapshot: state entry does not match the design at " ^ path)))
       | Some { state = Mem_state { cells; _ }; _ } ->
         (match state with
          | Snapshot.Mem src ->
            for i = 0 to 15 do
              cells.(i) <- Bit.of_code (Char.code (Bytes.get src i))
            done
          | Snapshot.Flop _ ->
            raise
              (Snapshot.Error
                 ("snapshot: state entry does not match the design at " ^ path)))
       | Some _ | None ->
         raise
           (Snapshot.Error
              ("snapshot: state entry does not match the design at " ^ path)))
    img.Snapshot.image_seq;
  sim.cycles <- img.Snapshot.image_cycles;
  List.iter
    (fun w ->
       w.samples <-
         (match List.assoc_opt w.watch_label img.Snapshot.image_watches with
          | Some samples -> List.rev samples
          | None -> []))
    sim.watches;
  propagate_full sim
