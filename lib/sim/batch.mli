(** Bit-parallel batch simulation: up to 63 independent testbenches per
    machine word.

    A batch simulator compiles a design exactly like {!Simulator} —
    dense net numbering, CSR fan-out, level-bucketed dirty worklist —
    but stores each net's 4-valued code across [lanes] independent
    testbench lanes in two bit-plane words: bit [l] of the first
    (resp. second) plane holds bit 0 (resp. bit 1) of the lane's
    {!Jhdl_logic.Bit.to_code}, so Zero=(0,0), One=(1,0), X=(0,1),
    Z=(1,1). One settle pass then evaluates every lane at once:
    LUT1–LUT4 become word-wise possibility-set table lookups over the
    plane pair, MUXCY/XORCY/MULT_AND/INV/BUF become a handful of
    bitwise word operations, and FD*/SRL16E/RAM16X1S keep per-lane
    sequential state in packed planes.

    Every lane is bit-identical to a scalar {!Simulator} (and therefore
    to the golden {!Reference}) run of the same stimulus: the fuzz
    [batch] oracle and the qcheck lane-equivalence suite pin this.

    Unlike the scalar simulator, input forcing is deferred: {!set_input}
    and {!set_inputs} only record the forced values, and the next
    {!cycle}, {!propagate} or read ({!get}, {!get_port},
    {!read_outputs}, {!snapshot_lane}) settles combinational logic once
    for everything forced since — so driving all 63 lanes costs a
    single settle. Waveform watches and behavioural black boxes are
    scalar-only features and are not supported here. *)

type t

(** Hard lane capacity: 63 lanes per OCaml [int] plane word. *)
val max_lanes : int

(** [create ?clock ~lanes design] compiles [design] into a batch kernel
    with [lanes] independent testbench lanes, every net starting X in
    every lane. [clock] selects the clock domain exactly as in
    {!Simulator.create}.

    Raises [Invalid_argument] when [lanes] is outside [1..max_lanes]
    (lane counts are never silently truncated), when the design holds
    behavioural black boxes (their boxed state cannot be lane-packed),
    or on design-rule errors; raises {!Combinational_cycle} on a
    combinational loop. *)
val create : ?clock:Jhdl_circuit.Wire.t -> lanes:int -> Jhdl_circuit.Design.t -> t

val design : t -> Jhdl_circuit.Design.t

(** Number of active lanes, as passed to {!create}. *)
val lanes : t -> int

(** [set_input b ~lane port value] forces a top-level input port in one
    lane. Width must match; the settle is deferred (see above). Raises
    [Invalid_argument] for an unknown or output port, a driven net, or a
    lane outside [0..lanes-1]. *)
val set_input : t -> lane:int -> string -> Jhdl_logic.Bits.t -> unit

(** [set_inputs b ~lane assignments] forces several ports in one lane;
    equivalent to a sequence of {!set_input} calls. *)
val set_inputs : t -> lane:int -> (string * Jhdl_logic.Bits.t) list -> unit

(** [propagate b] settles combinational logic across all lanes at once;
    normally implicit in {!cycle} and the read accessors. *)
val propagate : t -> unit

(** [cycle ?n b] settles pending input forces, then advances [n]
    (default 1) rising clock edges — every lane steps together. *)
val cycle : ?n:int -> t -> unit

(** [reset b] restores every register to its INIT value in every lane
    and zeroes the shared cycle counter; forced inputs are kept, like
    {!Simulator.reset}. *)
val reset : t -> unit

(** Shared cycle counter (all lanes step together). *)
val cycle_count : t -> int

(** [get b ~lane wire] reads a wire's value in one lane (settles
    first). *)
val get : t -> lane:int -> Jhdl_circuit.Wire.t -> Jhdl_logic.Bits.t

(** [get_port b ~lane name] reads a top-level port in one lane. *)
val get_port : t -> lane:int -> string -> Jhdl_logic.Bits.t

(** [read_outputs b ~lane] reads every top-level output port of one
    lane, in declaration order. *)
val read_outputs : t -> lane:int -> (string * Jhdl_logic.Bits.t) list

(** {1 Lane extraction}

    One lane's complete architectural state serializes to a standard
    {!Snapshot} blob — byte-identical to {!Simulator.snapshot} of a
    watchless scalar simulator in the same state, so batch lanes
    check-point into, and restore from, the whole scalar ecosystem. *)

(** [snapshot_lane b ~lane] serializes one lane (settling first). *)
val snapshot_lane : t -> lane:int -> string

(** [restore_lane b ~lane blob] overwrites one lane's nets and
    sequential state from [blob] and settles. The shared cycle counter
    is {e not} changed — lanes step together, so a restored lane adopts
    the batch's clock position. Raises {!Snapshot.Error} on malformed or
    foreign blobs. *)
val restore_lane : t -> lane:int -> string -> unit

(** {1 Introspection}

    Work counters follow {!Simulator}: one "evaluation" or "event" here
    is a word-wise operation covering all lanes at once. *)

val prim_count : t -> int
val levels : t -> int

(** Lifetime word-wise node evaluations performed by settles. *)
val eval_count : t -> int

(** Lifetime change-tracked plane writes that stuck. *)
val event_count : t -> int

(** [register_metrics b registry] registers the batch kernel's counters
    following the scalar naming convention: probes [lanes_active],
    [batch_cycles_total], [batch_settle_evals_total] and
    [batch_net_events_total], plus a [words_per_settle] histogram
    (word-wise evaluations per non-empty settle) fed from inside the
    settle loop without allocating. *)
val register_metrics : t -> Jhdl_metrics.Metrics.t -> unit

(** [attach_settle_histogram b h] routes the per-settle word count into
    an externally owned histogram — lets a campaign aggregate
    [words_per_settle] across many short-lived batch sims under one
    registry. *)
val attach_settle_histogram : t -> Jhdl_metrics.Metrics.histogram -> unit
