(* Bit-parallel batch kernel: 63 testbench lanes per machine word.

   Same compilation scheme as [Simulator] — dense net renumbering, CSR
   fan-out, per-level dirty buckets drained in ascending level order —
   but the per-net state is a pair of bit-plane words instead of one
   code byte: bit [l] of plane 0 / plane 1 holds bit 0 / bit 1 of lane
   [l]'s 2-bit code (Zero=00, One=01(+0), X=10, Z=11 in plane order
   (p1,p0)). A node evaluation is then a handful of word-wise bitwise
   operations covering every lane at once:

   - INV/BUF/MULT_AND/XORCY are direct boolean-algebra translations of
     the scalar code tables;
   - MUXCY and the FF next-state chain use a word-wise [Bit.mux]
     ([mux4] below);
   - LUT1-4 build the 2^k per-lane address-possibility products with a
     doubling tree over per-input could-be-0/could-be-1 words, then OR
     the products into "can produce 0"/"can produce 1" accumulators:
     exactly the scalar subset walk, all lanes at once;
   - SRL16/RAM16X1 reads run the same product tree over the 4 address
     bits, with an exact pass-through path (Z included) for lanes whose
     address is fully defined;
   - FF/SRL/RAM sequential state lives in per-node plane words with the
     same two-phase compute/commit step as the scalar kernel.

   Evaluation is change-tracked per word: a write marks consumers when
   any lane changed, and re-evaluating an unchanged lane reproduces the
   same value (node outputs are pure functions of the store), so lanes
   are bit-identical to scalar [Simulator]/[Reference] runs — the fuzz
   [batch] oracle and the qcheck lane suite pin this.

   The hot loops allocate nothing: plane words are immediates, the mux
   scratch and the product tree live on the sim record, and local
   accumulators are unboxed refs. *)

open Jhdl_circuit.Types
module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Levelize = Jhdl_circuit.Levelize

exception Combinational_cycle of string list

let max_lanes = 63

(* ------------------------------------------------------------------ *)
(* Plane store: two words per dense net, CSR fan-out, level buckets.   *)

type store = {
  p0 : int array; (* plane 0 (code bit 0) per dense net *)
  p1 : int array; (* plane 1 (code bit 1) per dense net *)
  mask : int; (* low [lanes] bits set *)
  row : int array; (* CSR offsets, length n_nets + 1 *)
  col : int array; (* consumer node ranks *)
  level_of : int array; (* per rank *)
  dirty : Bytes.t; (* per-rank pending flag *)
  level_pending : int array; (* dirty count per level *)
  mutable pending_total : int;
  mutable stat_evals : int; (* word-wise node evaluations *)
  mutable stat_changes : int; (* plane writes that stuck *)
}

(* mux/product scratch shared by every closure of one sim; results land
   in [m0]/[m1] because returning a tuple would allocate *)
type scratch = {
  mutable m0 : int;
  mutable m1 : int;
  prod : int array; (* 2^k address products, k <= 6 *)
}

let mark st rank =
  if Bytes.unsafe_get st.dirty rank = '\000' then begin
    Bytes.unsafe_set st.dirty rank '\001';
    let lv = Array.unsafe_get st.level_of rank in
    st.level_pending.(lv) <- st.level_pending.(lv) + 1;
    st.pending_total <- st.pending_total + 1
  end

(* change-tracked plane write: any changed lane marks the net's CSR
   consumers dirty (re-evaluating unchanged lanes is idempotent) *)
let write st idx n0 n1 =
  if
    Array.unsafe_get st.p0 idx <> n0 || Array.unsafe_get st.p1 idx <> n1
  then begin
    Array.unsafe_set st.p0 idx n0;
    Array.unsafe_set st.p1 idx n1;
    st.stat_changes <- st.stat_changes + 1;
    for k = st.row.(idx) to st.row.(idx + 1) - 1 do
      mark st st.col.(k)
    done
  end

(* word-wise Bit.mux: per lane [a] when sel=0, [b] when sel=1, else X
   unless a and b agree on a defined value *)
let mux4 sc mask s0 s1 a0 a1 b0 b1 =
  let zs = lnot s0 land lnot s1 in
  let os = s0 land lnot s1 in
  let su = mask land lnot (zs lor os) in
  let eq = lnot (a0 lxor b0) land lnot a1 land lnot b1 in
  sc.m0 <- (zs land a0) lor (os land b0) lor (su land eq land a0);
  sc.m1 <- (zs land a1) lor (os land b1) lor (su land lnot eq)

(* Fill sc.prod.(0 .. 2^k-1) with the per-lane address-possibility
   products over inputs [addrs]: bit [l] of prod.(j) is set when lane
   [l]'s address can resolve to [j] — exactly one j for a fully defined
   address, every j matching the defined bits otherwise (X and Z
   address bits are both "unknown", as in the scalar [gather]). The
   tree descends so slot writes never clobber unread parents, and
   inputs are folded high-to-low so table bit [i] of [j] corresponds to
   input [i]. [root] restricts all products to a lane subset. *)
let build_products sc st addrs k root =
  let prod = sc.prod in
  Array.unsafe_set prod 0 root;
  let width = ref 1 in
  for i = k - 1 downto 0 do
    let idx = Array.unsafe_get addrs i in
    let v0 = Array.unsafe_get st.p0 idx
    and v1 = Array.unsafe_get st.p1 idx in
    let hi = v0 lor v1 and lo = lnot v0 lor v1 in
    for j = !width - 1 downto 0 do
      let t = Array.unsafe_get prod j in
      Array.unsafe_set prod (2 * j) (t land lo);
      Array.unsafe_set prod ((2 * j) + 1) (t land hi)
    done;
    width := !width * 2
  done

(* SRL16/RAM16X1 read port: one product tree over the 4 address bits,
   then an exact pass-through path (X and Z cells included) for lanes
   whose address is fully defined, and a reachable-cell possibility
   analysis for the rest — mirroring the scalar [mem_code] base lookup
   plus unknown-subset walk, all lanes at once. *)
let mem_read_eval sc st a c0 c1 o () =
  let mask = st.mask in
  let au =
    Array.unsafe_get st.p1 (Array.unsafe_get a 0)
    lor Array.unsafe_get st.p1 (Array.unsafe_get a 1)
    lor Array.unsafe_get st.p1 (Array.unsafe_get a 2)
    lor Array.unsafe_get st.p1 (Array.unsafe_get a 3)
  in
  let da = mask land lnot au in
  build_products sc st a 4 mask;
  let ones = ref 0 and zeros = ref 0 and undef = ref 0 and zeds = ref 0 in
  for j = 0 to 15 do
    let p = Array.unsafe_get sc.prod j in
    let v0 = Array.unsafe_get c0 j and v1 = Array.unsafe_get c1 j in
    let pv0 = p land v0 and pv1 = p land v1 in
    ones := !ones lor (pv0 land lnot v1);
    zeros := !zeros lor (p land lnot (v0 lor v1));
    undef := !undef lor pv1;
    zeds := !zeds lor (pv0 land v1)
  done;
  (* defined address: exactly one hot product selects the cell, whose
     code passes through untouched *)
  let r0d = da land (!ones lor !zeds) and r1d = da land !undef in
  (* unknown address: a defined result needs every reachable cell to
     agree on that one defined value (X/Z cells spoil it via [undef]) *)
  let u1 = au land !ones land lnot !zeros land lnot !undef in
  let u0 = au land !zeros land lnot !ones land lnot !undef in
  write st o (r0d lor u1) (r1d lor (au land lnot (u0 lor u1)))

(* ------------------------------------------------------------------ *)
(* Sequential nodes: per-lane state in plane words (FF) or plane-word
   arrays (SRL/RAM cells), with preallocated next-state buffers.       *)

type ff_node = {
  ff_rank : int;
  ff_d : int;
  ff_ce : int; (* dense net index, -1 when the pin is absent *)
  ff_clr : int;
  ff_r : int;
  mutable ff_cur0 : int;
  mutable ff_cur1 : int;
  mutable ff_next0 : int;
  mutable ff_next1 : int;
  ff_init : int; (* 2-bit code *)
}

type srl_node = {
  srl_rank : int;
  srl_d : int;
  srl_ce : int;
  srl_c0 : int array; (* 16 taps, plane words *)
  srl_c1 : int array;
  srl_n0 : int array;
  srl_n1 : int array;
  srl_init : int; (* 16 init bits *)
}

type ram_node = {
  ram_rank : int;
  ram_d : int;
  ram_we : int;
  ram_a : int array;
  ram_c0 : int array; (* 16 cells, plane words *)
  ram_c1 : int array;
  ram_n0 : int array;
  ram_n1 : int array;
  ram_init : int;
}

type snode =
  | S_ff of ff_node
  | S_srl of srl_node
  | S_ram of ram_node

(* precompiled input-port target: dense index per bit, or the error a
   forced write must raise (output direction, driven net) *)
type force_target = {
  ft_idx : int array;
  ft_reject : string option;
}

type t = {
  sim_design : Design.t;
  net_idx : (int, int) Hashtbl.t; (* net_id -> dense index *)
  st : store;
  sc : scratch;
  n_lanes : int;
  eval : (unit -> unit) array; (* compiled per-node evaluators, by rank *)
  level_lo : int array; (* first rank of each level *)
  depth : int;
  seq_all : snode array;
  seq_clocked : snode array;
  seq_by_path : (string, snode) Hashtbl.t;
  in_targets : (string, force_target) Hashtbl.t;
  out_ports : (string * int array) list; (* declaration order *)
  mutable cycles : int;
  mutable words_hist : Jhdl_metrics.Metrics.histogram option;
}

(* ------------------------------------------------------------------ *)
(* Settle.                                                             *)

let observe_settle b words =
  match b.words_hist with
  | None -> ()
  | Some h -> Jhdl_metrics.Metrics.observe h words

let propagate_full b =
  let eval = b.eval in
  for r = 0 to Array.length eval - 1 do
    (Array.unsafe_get eval r) ()
  done;
  b.st.stat_evals <- b.st.stat_evals + Array.length eval;
  Bytes.fill b.st.dirty 0 (Bytes.length b.st.dirty) '\000';
  Array.fill b.st.level_pending 0 (Array.length b.st.level_pending) 0;
  b.st.pending_total <- 0;
  observe_settle b (Array.length eval)

(* drain dirty levels in ascending order: combinational edges strictly
   increase level, so one sweep reaches the all-lane fixpoint *)
let propagate b =
  let st = b.st in
  if st.pending_total > 0 then begin
    let before = st.stat_evals in
    for lv = 0 to b.depth do
      let cnt = st.level_pending.(lv) in
      if cnt > 0 then begin
        st.level_pending.(lv) <- 0;
        st.pending_total <- st.pending_total - cnt;
        st.stat_evals <- st.stat_evals + cnt;
        let left = ref cnt in
        let r = ref b.level_lo.(lv) in
        while !left > 0 do
          if Bytes.unsafe_get st.dirty !r <> '\000' then begin
            Bytes.unsafe_set st.dirty !r '\000';
            decr left;
            (Array.unsafe_get b.eval !r) ()
          end;
          incr r
        done
      end
    done;
    observe_settle b (st.stat_evals - before)
  end

(* ------------------------------------------------------------------ *)
(* Two-phase clock step (identical structure to the scalar kernel).    *)

let compute_snode st sc = function
  | S_ff f ->
    let mask = st.mask in
    let d0 = Array.unsafe_get st.p0 f.ff_d
    and d1 = Array.unsafe_get st.p1 f.ff_d in
    let ce0 = if f.ff_ce >= 0 then Array.unsafe_get st.p0 f.ff_ce else mask
    and ce1 = if f.ff_ce >= 0 then Array.unsafe_get st.p1 f.ff_ce else 0 in
    let clr0 = if f.ff_clr >= 0 then Array.unsafe_get st.p0 f.ff_clr else 0
    and clr1 = if f.ff_clr >= 0 then Array.unsafe_get st.p1 f.ff_clr else 0 in
    let r0 = if f.ff_r >= 0 then Array.unsafe_get st.p0 f.ff_r else 0
    and r1 = if f.ff_r >= 0 then Array.unsafe_get st.p1 f.ff_r else 0 in
    (* loaded = mux(R, D, 0); held = mux(CE, cur, loaded);
       next = mux(CLR, held, 0) — each branch matches the scalar
       [compute_snode] case analysis, CLR-unknown agreement included *)
    mux4 sc mask r0 r1 d0 d1 0 0;
    let l0 = sc.m0 and l1 = sc.m1 in
    mux4 sc mask ce0 ce1 f.ff_cur0 f.ff_cur1 l0 l1;
    let h0 = sc.m0 and h1 = sc.m1 in
    mux4 sc mask clr0 clr1 h0 h1 0 0;
    f.ff_next0 <- sc.m0;
    f.ff_next1 <- sc.m1
  | S_srl s ->
    let mask = st.mask in
    let ce0 = Array.unsafe_get st.p0 s.srl_ce
    and ce1 = Array.unsafe_get st.p1 s.srl_ce in
    let c0 = s.srl_c0 and c1 = s.srl_c1 in
    (* per tap: next = mux(CE, cur, shifted) — hold when CE=0, shift
       when CE=1, CE-unknown keeps a tap only where shifting would not
       change a defined value (the scalar rule) *)
    for i = 0 to 15 do
      let sh0 =
        if i = 0 then Array.unsafe_get st.p0 s.srl_d
        else Array.unsafe_get c0 (i - 1)
      and sh1 =
        if i = 0 then Array.unsafe_get st.p1 s.srl_d
        else Array.unsafe_get c1 (i - 1)
      in
      mux4 sc mask ce0 ce1 (Array.unsafe_get c0 i) (Array.unsafe_get c1 i)
        sh0 sh1;
      Array.unsafe_set s.srl_n0 i sc.m0;
      Array.unsafe_set s.srl_n1 i sc.m1
    done
  | S_ram m ->
    let mask = st.mask in
    let we0 = Array.unsafe_get st.p0 m.ram_we
    and we1 = Array.unsafe_get st.p1 m.ram_we in
    let we_one = we0 land lnot we1 in
    let a = m.ram_a in
    let au =
      Array.unsafe_get st.p1 (Array.unsafe_get a 0)
      lor Array.unsafe_get st.p1 (Array.unsafe_get a 1)
      lor Array.unsafe_get st.p1 (Array.unsafe_get a 2)
      lor Array.unsafe_get st.p1 (Array.unsafe_get a 3)
    in
    (* WE unknown, or WE=1 at an unknown address: every cell of the
       lane goes X; WE=1 at a defined address writes D (X/Z included)
       to the decoded cell; WE=0 holds *)
    let clobber = we1 lor (we_one land au) in
    let wen = we_one land lnot au land mask in
    build_products sc st a 4 wen;
    let d0 = Array.unsafe_get st.p0 m.ram_d
    and d1 = Array.unsafe_get st.p1 m.ram_d in
    let prod = sc.prod in
    for j = 0 to 15 do
      let w = Array.unsafe_get prod j in
      let keep = lnot (w lor clobber) in
      Array.unsafe_set m.ram_n0 j
        ((w land d0) lor (keep land Array.unsafe_get m.ram_c0 j));
      Array.unsafe_set m.ram_n1 j
        ((w land d1) lor clobber
        lor (keep land Array.unsafe_get m.ram_c1 j))
    done

let commit_snode st = function
  | S_ff f ->
    if f.ff_cur0 <> f.ff_next0 || f.ff_cur1 <> f.ff_next1 then begin
      f.ff_cur0 <- f.ff_next0;
      f.ff_cur1 <- f.ff_next1;
      mark st f.ff_rank
    end
  | S_srl s ->
    let changed = ref false in
    for i = 0 to 15 do
      if
        Array.unsafe_get s.srl_c0 i <> Array.unsafe_get s.srl_n0 i
        || Array.unsafe_get s.srl_c1 i <> Array.unsafe_get s.srl_n1 i
      then begin
        changed := true;
        Array.unsafe_set s.srl_c0 i (Array.unsafe_get s.srl_n0 i);
        Array.unsafe_set s.srl_c1 i (Array.unsafe_get s.srl_n1 i)
      end
    done;
    if !changed then mark st s.srl_rank
  | S_ram m ->
    let changed = ref false in
    for i = 0 to 15 do
      if
        Array.unsafe_get m.ram_c0 i <> Array.unsafe_get m.ram_n0 i
        || Array.unsafe_get m.ram_c1 i <> Array.unsafe_get m.ram_n1 i
      then begin
        changed := true;
        Array.unsafe_set m.ram_c0 i (Array.unsafe_get m.ram_n0 i);
        Array.unsafe_set m.ram_c1 i (Array.unsafe_get m.ram_n1 i)
      end
    done;
    if !changed then mark st m.ram_rank

(* ------------------------------------------------------------------ *)
(* Compilation (mirrors [Simulator.create]).                           *)

type proto = Levelize.source = {
  inst : cell;
  prim : Prim.t;
  in_ports : (string * net array) list;
  out_ports : (string * net array) list;
}

let make_proto inst =
  match Levelize.source_of inst with
  | None -> assert false
  | Some s -> s

let levelize nodes =
  let kahn, kahn_levels, max_level =
    try Levelize.levelize nodes
    with Levelize.Cycle cells ->
      raise (Combinational_cycle (List.map Cell.path cells))
  in
  let tagged = Array.mapi (fun i node -> (kahn_levels.(i), i, node)) kahn in
  Array.sort
    (fun (l1, i1, _) (l2, i2, _) ->
       if l1 <> l2 then Int.compare l1 l2 else Int.compare i1 i2)
    tagged;
  let order = Array.map (fun (_, _, n) -> n) tagged in
  let level_of = Array.map (fun (l, _, _) -> l) tagged in
  (order, level_of, max_level)

let port_idx ports name =
  match List.assoc_opt name ports with
  | Some arr -> arr
  | None -> invalid_arg (Printf.sprintf "Simulator.Batch: no port %s" name)

(* plane words of a broadcast 2-bit code *)
let bcast0 mask c = if c land 1 = 1 then mask else 0
let bcast1 mask c = if c land 2 = 2 then mask else 0

let create ?clock ~lanes design =
  if lanes < 1 || lanes > max_lanes then
    invalid_arg
      (Printf.sprintf
         "Simulator.Batch.create: lanes must be within 1..%d (got %d)"
         max_lanes lanes);
  List.iter
    (fun inst ->
       match Cell.prim_of inst with
       | Some (Prim.Black_box { model_name; _ }) ->
         invalid_arg
           (Printf.sprintf
              "Simulator.Batch.create: behavioural black box %s (%s) cannot \
               be lane-packed; use the scalar Simulator"
              (Cell.path inst) model_name)
       | _ -> ())
    (Design.all_prims design);
  (match
     List.filter
       (function Design.Combinational_loop _ -> false | _ -> true)
       (Design.errors design)
   with
   | [] -> ()
   | violation :: _ ->
     invalid_arg
       (Format.asprintf "Simulator.Batch.create: design-rule error: %a"
          Design.pp_violation violation));
  let clock_nets =
    match clock with
    | None -> None
    | Some w ->
      if Wire.width w <> 1 then
        invalid_arg "Simulator.Batch.create: clock wire must be 1 bit wide";
      let table = Hashtbl.create 4 in
      Array.iter (fun n -> Hashtbl.replace table n.net_id ()) (Wire.nets w);
      Some table
  in
  let mask = if lanes = max_lanes then -1 else (1 lsl lanes) - 1 in
  let protos = List.map make_proto (Design.all_prims design) in
  let order, level_of, depth = levelize protos in
  let n_ranks = Array.length order in
  let net_idx = Hashtbl.create 1024 in
  let n_nets = ref 0 in
  let index_net n =
    if not (Hashtbl.mem net_idx n.net_id) then begin
      Hashtbl.add net_idx n.net_id !n_nets;
      incr n_nets
    end
  in
  List.iter index_net (Design.all_nets design);
  Array.iter
    (fun p ->
       List.iter (fun (_, nets) -> Array.iter index_net nets) p.in_ports;
       List.iter (fun (_, nets) -> Array.iter index_net nets) p.out_ports)
    order;
  let n_nets = !n_nets in
  let row = Array.make (n_nets + 1) 0 in
  let iter_comb_nets p f =
    List.iter
      (fun port ->
         match List.assoc_opt port p.in_ports with
         | None -> ()
         | Some nets ->
           Array.iter (fun n -> f (Hashtbl.find net_idx n.net_id)) nets)
      (Levelize.comb_inputs p)
  in
  Array.iter
    (fun p -> iter_comb_nets p (fun idx -> row.(idx + 1) <- row.(idx + 1) + 1))
    order;
  for i = 1 to n_nets do
    row.(i) <- row.(i) + row.(i - 1)
  done;
  let col = Array.make row.(n_nets) 0 in
  let cursor = Array.sub row 0 n_nets in
  Array.iteri
    (fun rank p ->
       iter_comb_nets p (fun idx ->
         col.(cursor.(idx)) <- rank;
         cursor.(idx) <- cursor.(idx) + 1))
    order;
  let level_lo = Array.make (depth + 1) n_ranks in
  for r = n_ranks - 1 downto 0 do
    level_lo.(level_of.(r)) <- r
  done;
  let st =
    { p0 = Array.make n_nets 0;
      p1 = Array.make n_nets mask (* everything starts X in every lane *);
      mask;
      row;
      col;
      level_of;
      dirty = Bytes.make n_ranks '\000';
      level_pending = Array.make (depth + 1) 0;
      pending_total = 0;
      stat_evals = 0;
      stat_changes = 0 }
  in
  let sc = { m0 = 0; m1 = 0; prod = Array.make 64 0 } in
  let in_domain p =
    match clock_nets with
    | None -> true
    | Some table ->
      (match Prim.clock_port p.prim with
       | None -> true
       | Some port ->
         (match List.assoc_opt port p.in_ports with
          | None -> false
          | Some nets ->
            Array.exists (fun n -> Hashtbl.mem table n.net_id) nets))
  in
  let eval = Array.make n_ranks (fun () -> ()) in
  let seq_all = ref [] and seq_clocked = ref [] in
  let seq_by_path = Hashtbl.create 64 in
  Array.iteri
    (fun rank p ->
       let add_seq sn clocked =
         seq_all := sn :: !seq_all;
         Hashtbl.replace seq_by_path (Cell.path p.inst) sn;
         if clocked then seq_clocked := sn :: !seq_clocked
       in
       let ins =
         List.map
           (fun (name, nets) ->
              (name, Array.map (fun n -> Hashtbl.find net_idx n.net_id) nets))
           p.in_ports
       and outs =
         List.map
           (fun (name, nets) ->
              (name, Array.map (fun n -> Hashtbl.find net_idx n.net_id) nets))
           p.out_ports
       in
       let p1 ports name = (port_idx ports name).(0) in
       match p.prim with
       | Prim.Lut init ->
         let k = Lut_init.inputs init in
         let table = Lut_init.to_int init in
         let addrs = Array.init k (fun i -> p1 ins (Printf.sprintf "I%d" i)) in
         let o = p1 outs "O" in
         let n_addr = 1 lsl k in
         eval.(rank) <-
           (fun () ->
              build_products sc st addrs k mask;
              (* possibility sets: can0/can1 collect the lanes that can
                 reach a 0/1 table bit; both reachable = X, exactly the
                 scalar unknown-subset walk *)
              let can0 = ref 0 and can1 = ref 0 in
              for j = 0 to n_addr - 1 do
                let pr = Array.unsafe_get sc.prod j in
                if (table lsr j) land 1 = 1 then can1 := !can1 lor pr
                else can0 := !can0 lor pr
              done;
              write st o (!can1 land lnot !can0) (!can1 land !can0))
       | Prim.Ff { clock_enable; async_clear; sync_reset; init } ->
         let c = Bit.to_code init in
         let f =
           { ff_rank = rank;
             ff_d = p1 ins "D";
             ff_ce = (if clock_enable then p1 ins "CE" else -1);
             ff_clr = (if async_clear then p1 ins "CLR" else -1);
             ff_r = (if sync_reset then p1 ins "R" else -1);
             ff_cur0 = bcast0 mask c;
             ff_cur1 = bcast1 mask c;
             ff_next0 = bcast0 mask c;
             ff_next1 = bcast1 mask c;
             ff_init = c }
         in
         let q = p1 outs "Q" in
         eval.(rank) <-
           (if async_clear then
              let clr = f.ff_clr in
              fun () ->
                mux4 sc mask
                  (Array.unsafe_get st.p0 clr)
                  (Array.unsafe_get st.p1 clr)
                  f.ff_cur0 f.ff_cur1 0 0;
                write st q sc.m0 sc.m1
            else fun () -> write st q f.ff_cur0 f.ff_cur1);
         add_seq (S_ff f) (in_domain p)
       | Prim.Muxcy ->
         let s = p1 ins "S" and di = p1 ins "DI" and ci = p1 ins "CI" in
         let o = p1 outs "O" in
         eval.(rank) <-
           (fun () ->
              mux4 sc mask
                (Array.unsafe_get st.p0 s)
                (Array.unsafe_get st.p1 s)
                (Array.unsafe_get st.p0 di)
                (Array.unsafe_get st.p1 di)
                (Array.unsafe_get st.p0 ci)
                (Array.unsafe_get st.p1 ci);
              write st o sc.m0 sc.m1)
       | Prim.Xorcy ->
         let li = p1 ins "LI" and ci = p1 ins "CI" in
         let o = p1 outs "O" in
         eval.(rank) <-
           (fun () ->
              let a1 = Array.unsafe_get st.p1 li
              and b1 = Array.unsafe_get st.p1 ci in
              let r1 = a1 lor b1 in
              write st o
                ((Array.unsafe_get st.p0 li lxor Array.unsafe_get st.p0 ci)
                 land mask land lnot r1)
                r1)
       | Prim.Mult_and ->
         let i0 = p1 ins "I0" and i1 = p1 ins "I1" in
         let lo = p1 outs "LO" in
         eval.(rank) <-
           (fun () ->
              let a0 = Array.unsafe_get st.p0 i0
              and a1 = Array.unsafe_get st.p1 i0
              and b0 = Array.unsafe_get st.p0 i1
              and b1 = Array.unsafe_get st.p1 i1 in
              let ones = a0 land lnot a1 land b0 land lnot b1 in
              let zeros = lnot (a0 lor a1) lor lnot (b0 lor b1) in
              write st lo ones (mask land lnot (zeros lor ones)))
       | Prim.Srl16 { init } ->
         let s =
           { srl_rank = rank;
             srl_d = p1 ins "D";
             srl_ce = p1 ins "CE";
             srl_c0 = Array.init 16 (fun i -> bcast0 mask ((init lsr i) land 1));
             srl_c1 = Array.make 16 0;
             srl_n0 = Array.make 16 0;
             srl_n1 = Array.make 16 0;
             srl_init = init }
         in
         let a = Array.init 4 (fun i -> p1 ins (Printf.sprintf "A%d" i)) in
         let q = p1 outs "Q" in
         let c0 = s.srl_c0 and c1 = s.srl_c1 in
         eval.(rank) <- mem_read_eval sc st a c0 c1 q;
         add_seq (S_srl s) (in_domain p)
       | Prim.Ram16x1 { init } ->
         let m =
           { ram_rank = rank;
             ram_d = p1 ins "D";
             ram_we = p1 ins "WE";
             ram_a = Array.init 4 (fun i -> p1 ins (Printf.sprintf "A%d" i));
             ram_c0 = Array.init 16 (fun i -> bcast0 mask ((init lsr i) land 1));
             ram_c1 = Array.make 16 0;
             ram_n0 = Array.make 16 0;
             ram_n1 = Array.make 16 0;
             ram_init = init }
         in
         let o = p1 outs "O" in
         eval.(rank) <- mem_read_eval sc st m.ram_a m.ram_c0 m.ram_c1 o;
         add_seq (S_ram m) (in_domain p)
       | Prim.Buf ->
         let i = p1 ins "I" and o = p1 outs "O" in
         eval.(rank) <-
           (fun () ->
              write st o (Array.unsafe_get st.p0 i) (Array.unsafe_get st.p1 i))
       | Prim.Inv ->
         let i = p1 ins "I" and o = p1 outs "O" in
         eval.(rank) <-
           (fun () ->
              let a0 = Array.unsafe_get st.p0 i
              and a1 = Array.unsafe_get st.p1 i in
              write st o (mask land lnot (a0 lor a1)) a1)
       | Prim.Gnd ->
         let g = p1 outs "G" in
         eval.(rank) <- (fun () -> write st g 0 0)
       | Prim.Vcc ->
         let v = p1 outs "P" in
         eval.(rank) <- (fun () -> write st v mask 0)
       | Prim.Black_box _ -> assert false (* rejected above *))
    order;
  let in_targets = Hashtbl.create 16 in
  List.iter
    (fun port ->
       let name = port.Design.port_name in
       let nets = Wire.nets port.Design.port_wire in
       let reject = ref None in
       let idx =
         Array.mapi
           (fun i n ->
              (match n.driver with
               | Some term when !reject = None ->
                 reject :=
                   Some
                     (Printf.sprintf
                        "Simulator.Batch.set_input: net %s[%d] is driven by %s"
                        (Wire.name port.Design.port_wire) i
                        (Cell.path term.term_cell))
               | _ -> ());
              match Hashtbl.find_opt net_idx n.net_id with
              | Some idx -> idx
              | None -> -1)
           nets
       in
       Hashtbl.replace in_targets name { ft_idx = idx; ft_reject = !reject })
    (Design.inputs design);
  let out_ports =
    List.map
      (fun port ->
         ( port.Design.port_name,
           Array.map
             (fun n ->
                match Hashtbl.find_opt net_idx n.net_id with
                | Some idx -> idx
                | None -> -1)
             (Wire.nets port.Design.port_wire) ))
      (Design.outputs design)
  in
  let b =
    { sim_design = design;
      net_idx;
      st;
      sc;
      n_lanes = lanes;
      eval;
      level_lo;
      depth;
      seq_all = Array.of_list (List.rev !seq_all);
      seq_clocked = Array.of_list (List.rev !seq_clocked);
      seq_by_path;
      in_targets;
      out_ports;
      cycles = 0;
      words_hist = None }
  in
  propagate_full b;
  b

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)

let design b = b.sim_design
let lanes b = b.n_lanes

let check_lane b lane =
  if lane < 0 || lane >= b.n_lanes then
    invalid_arg
      (Printf.sprintf "Simulator.Batch: lane %d out of range 0..%d" lane
         (b.n_lanes - 1))

(* lane-bit plane write without settling; marking is shared with the
   word-wise [write] *)
let write_lane st idx lane c0 c1 =
  let bit = 1 lsl lane in
  let o0 = Array.unsafe_get st.p0 idx
  and o1 = Array.unsafe_get st.p1 idx in
  let n0 = o0 land lnot bit lor (c0 land bit)
  and n1 = o1 land lnot bit lor (c1 land bit) in
  write st idx n0 n1

let set_input b ~lane port bits =
  check_lane b lane;
  match Hashtbl.find_opt b.in_targets port with
  | None ->
    (match Design.find_port b.sim_design port with
     | Some _ ->
       invalid_arg
         (Printf.sprintf "Simulator.Batch.set_input: %s is an output" port)
     | None ->
       invalid_arg
         (Printf.sprintf "Simulator.Batch.set_input: no port %s" port))
  | Some ft ->
    (match ft.ft_reject with
     | Some msg -> invalid_arg msg
     | None -> ());
    let w = Array.length ft.ft_idx in
    if Bits.width bits <> w then
      invalid_arg
        (Printf.sprintf "Simulator.Batch.set_input: %d bits for %d-bit port %s"
           (Bits.width bits) w port);
    let st = b.st in
    if w <= 63 then begin
      (* fast path: one packed-plane conversion, then per-net lane writes *)
      let v0, v1 = Bits.to_planes bits in
      for i = 0 to w - 1 do
        let idx = Array.unsafe_get ft.ft_idx i in
        if idx >= 0 then
          write_lane st idx lane
            (0 - ((v0 lsr i) land 1))
            (0 - ((v1 lsr i) land 1))
      done
    end
    else
      for i = 0 to w - 1 do
        let idx = Array.unsafe_get ft.ft_idx i in
        if idx >= 0 then begin
          let c = Bit.to_code (Bits.get bits i) in
          write_lane st idx lane (0 - (c land 1)) (0 - ((c lsr 1) land 1))
        end
      done

let set_inputs b ~lane assignments =
  List.iter (fun (port, bits) -> set_input b ~lane port bits) assignments

let lane_code st idx lane =
  ((Array.unsafe_get st.p0 idx lsr lane) land 1)
  lor (((Array.unsafe_get st.p1 idx lsr lane) land 1) lsl 1)

let read_nets b ~lane nets =
  Bits.init (Array.length nets) (fun i ->
    match Hashtbl.find_opt b.net_idx nets.(i).net_id with
    | None -> Bit.X
    | Some idx -> Bit.of_code (lane_code b.st idx lane))

let get b ~lane w =
  check_lane b lane;
  propagate b;
  read_nets b ~lane (Wire.nets w)

let get_port b ~lane port =
  check_lane b lane;
  propagate b;
  match Design.find_port b.sim_design port with
  | None ->
    invalid_arg (Printf.sprintf "Simulator.Batch.get_port: no port %s" port)
  | Some p -> read_nets b ~lane (Wire.nets p.Design.port_wire)

let read_outputs b ~lane =
  check_lane b lane;
  propagate b;
  List.map
    (fun (name, idx) ->
       ( name,
         Bits.init (Array.length idx) (fun i ->
           let ix = Array.unsafe_get idx i in
           if ix < 0 then Bit.X else Bit.of_code (lane_code b.st ix lane)) ))
    b.out_ports

let cycle ?(n = 1) b =
  propagate b (* settle deferred input forces before the edge *);
  let st = b.st and sc = b.sc in
  let seq = b.seq_clocked in
  let k = Array.length seq in
  for _ = 1 to n do
    for i = 0 to k - 1 do
      compute_snode st sc (Array.unsafe_get seq i)
    done;
    for i = 0 to k - 1 do
      commit_snode st (Array.unsafe_get seq i)
    done;
    b.cycles <- b.cycles + 1;
    propagate b
  done

let reset b =
  let mask = b.st.mask in
  Array.iter
    (function
      | S_ff f ->
        f.ff_cur0 <- bcast0 mask f.ff_init;
        f.ff_cur1 <- bcast1 mask f.ff_init
      | S_srl s ->
        for i = 0 to 15 do
          s.srl_c0.(i) <- bcast0 mask ((s.srl_init lsr i) land 1);
          s.srl_c1.(i) <- 0
        done
      | S_ram m ->
        for i = 0 to 15 do
          m.ram_c0.(i) <- bcast0 mask ((m.ram_init lsr i) land 1);
          m.ram_c1.(i) <- 0
        done)
    b.seq_all;
  b.cycles <- 0;
  propagate_full b

let cycle_count b = b.cycles
let prim_count b = Array.length b.eval
let levels b = b.depth
let eval_count b = b.st.stat_evals
let event_count b = b.st.stat_changes

let attach_settle_histogram b h = b.words_hist <- Some h

let register_metrics b registry =
  let module M = Jhdl_metrics.Metrics in
  M.probe registry "lanes_active" (fun () -> b.n_lanes);
  M.probe registry "batch_cycles_total" (fun () -> b.cycles);
  M.probe registry "batch_settle_evals_total" (fun () -> b.st.stat_evals);
  M.probe registry "batch_net_events_total" (fun () -> b.st.stat_changes);
  if not (M.is_nil registry) then
    attach_settle_histogram b (M.histogram registry "words_per_settle")

(* ------------------------------------------------------------------ *)
(* Lane extraction: one lane's state as a standard [Snapshot] blob,
   byte-identical to [Simulator.snapshot] of a watchless scalar sim in
   the same state.                                                     *)

let snapshot_lane b ~lane =
  check_lane b lane;
  propagate b;
  let nets_list = Design.all_nets b.sim_design in
  let image_nets = Bytes.create (List.length nets_list) in
  List.iteri
    (fun i n ->
       let c =
         match Hashtbl.find_opt b.net_idx n.net_id with
         | Some idx -> lane_code b.st idx lane
         | None -> 2
       in
       Bytes.set image_nets i (Char.chr c))
    nets_list;
  let lane_mem c0 c1 =
    Bytes.init 16 (fun i ->
      Char.chr
        (((c0.(i) lsr lane) land 1) lor (((c1.(i) lsr lane) land 1) lsl 1)))
  in
  let image_seq =
    List.filter_map
      (fun inst ->
         let path = Cell.path inst in
         match Hashtbl.find_opt b.seq_by_path path with
         | None -> None
         | Some (S_ff f) ->
           Some
             ( path,
               Snapshot.Flop
                 (((f.ff_cur0 lsr lane) land 1)
                  lor (((f.ff_cur1 lsr lane) land 1) lsl 1)) )
         | Some (S_srl s) ->
           Some (path, Snapshot.Mem (lane_mem s.srl_c0 s.srl_c1))
         | Some (S_ram m) ->
           Some (path, Snapshot.Mem (lane_mem m.ram_c0 m.ram_c1)))
      (Design.all_prims b.sim_design)
  in
  Snapshot.encode
    { Snapshot.image_signature = Snapshot.signature b.sim_design;
      image_cycles = b.cycles;
      image_nets;
      image_seq;
      image_watches = [] }

let restore_lane b ~lane blob =
  check_lane b lane;
  let img = Snapshot.decode blob in
  let expect = Snapshot.signature b.sim_design in
  if img.Snapshot.image_signature <> expect then
    raise
      (Snapshot.Error
         (Printf.sprintf
            "snapshot: design signature mismatch (blob %08x, design %s is %08x)"
            img.Snapshot.image_signature
            (Design.name b.sim_design)
            expect));
  let nets_list = Design.all_nets b.sim_design in
  if Bytes.length img.Snapshot.image_nets <> List.length nets_list then
    raise (Snapshot.Error "snapshot: net count mismatch");
  let bit = 1 lsl lane in
  let put_plane arr i c_bit =
    arr.(i) <- (if c_bit = 1 then arr.(i) lor bit else arr.(i) land lnot bit)
  in
  List.iteri
    (fun i n ->
       match Hashtbl.find_opt b.net_idx n.net_id with
       | None -> ()
       | Some idx ->
         let c = Char.code (Bytes.get img.Snapshot.image_nets i) in
         put_plane b.st.p0 idx (c land 1);
         put_plane b.st.p1 idx ((c lsr 1) land 1))
    nets_list;
  List.iter
    (fun (path, state) ->
       match (Hashtbl.find_opt b.seq_by_path path, state) with
       | Some (S_ff f), Snapshot.Flop c ->
         f.ff_cur0 <-
           (if c land 1 = 1 then f.ff_cur0 lor bit else f.ff_cur0 land lnot bit);
         f.ff_cur1 <-
           (if c land 2 = 2 then f.ff_cur1 lor bit else f.ff_cur1 land lnot bit)
       | Some (S_srl s), Snapshot.Mem cells ->
         for i = 0 to 15 do
           let c = Char.code (Bytes.get cells i) in
           put_plane s.srl_c0 i (c land 1);
           put_plane s.srl_c1 i ((c lsr 1) land 1)
         done
       | Some (S_ram m), Snapshot.Mem cells ->
         for i = 0 to 15 do
           let c = Char.code (Bytes.get cells i) in
           put_plane m.ram_c0 i (c land 1);
           put_plane m.ram_c1 i ((c lsr 1) land 1)
         done
       | _ ->
         raise
           (Snapshot.Error
              ("snapshot: state entry does not match the design at " ^ path)))
    img.Snapshot.image_seq;
  (* the shared cycle counter is deliberately left unchanged: lanes step
     together, so the restored lane adopts the batch's clock position *)
  propagate_full b
