(* Compiled cycle simulator.

   Instead of interpreting the netlist each cycle (hashtable net store,
   string port lookups, closure lists — see [Reference]), [create] lowers
   the levelized design into flat int-indexed structures once:

   - nets are renumbered to a dense [0..n-1] range and their 4-value
     state lives in one [Bytes.t] of 2-bit codes ([Bit.to_code]);
   - each node's input/output nets become int arrays captured by a
     per-node evaluation closure compiled at [create], so the cycle loop
     never touches association lists or formats port names;
   - net fan-out is a CSR int-array pair ([row]/[col]) mapping a net to
     the ranks of its combinational consumers;
   - the dirty worklist is a per-rank byte flag plus a per-level pending
     count, drained in ascending level order (combinational edges
     strictly increase level, so one sweep settles the cone);
   - sequential elements carry preallocated next-state buffers and the
     two-phase clock step writes into those, allocating nothing.

   Black boxes keep the boxed [Bits.t] path through their [Prim.behavior]
   closures. Evaluation semantics — pessimistic X propagation, clock
   domains, two-phase edges — are identical to [Reference], which is kept
   as the golden model for differential tests. *)

open Jhdl_circuit.Types
module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Levelize = Jhdl_circuit.Levelize

exception Combinational_cycle of string list

(* ------------------------------------------------------------------ *)
(* 2-bit code arithmetic (Zero=0 One=1 X=2 Z=3; defined iff < 2).      *)
(* Each function mirrors the corresponding Bit operation exactly.      *)

let not_code a = if a < 2 then a lxor 1 else 2
let and_code a b = if a = 0 || b = 0 then 0 else if a = 1 && b = 1 then 1 else 2
let xor_code a b = if a < 2 && b < 2 then a lxor b else 2

(* Bit.mux ~sel a b: [a] when sel=0, [b] when sel=1, else X unless both
   agree on a defined value. *)
let mux_code sel a b =
  if sel = 0 then a
  else if sel = 1 then b
  else if a = b && a < 2 then a
  else 2

(* ------------------------------------------------------------------ *)
(* Dense store: net values, fan-out CSR, level-bucketed dirty list.    *)

type store = {
  vals : Bytes.t; (* one code byte per dense net *)
  row : int array; (* CSR offsets, length n_nets + 1 *)
  col : int array; (* consumer node ranks *)
  level_of : int array; (* per rank *)
  dirty : Bytes.t; (* per-rank pending flag *)
  level_pending : int array; (* dirty count per level *)
  mutable pending_total : int;
  (* lifetime work counters: plain int stores, so the steady-state
     cycle stays allocation-free with instrumentation attached *)
  mutable stat_evals : int; (* node evaluations during settles *)
  mutable stat_changes : int; (* change-tracked net writes that stuck *)
}

let code st idx = Char.code (Bytes.unsafe_get st.vals idx)

let mark st rank =
  if Bytes.unsafe_get st.dirty rank = '\000' then begin
    Bytes.unsafe_set st.dirty rank '\001';
    let lv = Array.unsafe_get st.level_of rank in
    st.level_pending.(lv) <- st.level_pending.(lv) + 1;
    st.pending_total <- st.pending_total + 1
  end

(* change-tracked net write: a changed code marks the net's CSR
   consumers dirty *)
let write st idx c =
  if Char.code (Bytes.unsafe_get st.vals idx) <> c then begin
    Bytes.unsafe_set st.vals idx (Char.unsafe_chr c);
    st.stat_changes <- st.stat_changes + 1;
    for k = st.row.(idx) to st.row.(idx + 1) - 1 do
      mark st st.col.(k)
    done
  end

(* Read [ins] into a packed (base, unknown-mask) pair: bit i of the low
   half is set for a One input, bit i of the high half for an undefined
   one. Packing both into one int keeps the hot path allocation-free;
   LUTs and memories have at most 6 address bits so 16 bits per half is
   ample. *)
let rec gather st ins i acc =
  if i < 0 then acc
  else
    let c = Char.code (Bytes.unsafe_get st.vals (Array.unsafe_get ins i)) in
    gather st ins (i - 1)
      (if c = 1 then acc lor (1 lsl i)
       else if c >= 2 then acc lor (1 lsl (i + 16))
       else acc)

(* Truth-table lookup under an unknown-bit mask: every address reachable
   by flipping masked bits must agree, else X — the subset walk
   [sub' = (sub - umask) land umask] enumerates them without
   allocating. *)
let lut_code table base umask =
  let v = (table lsr base) land 1 in
  if umask = 0 then v
  else
    let rec agree sub =
      if (table lsr (base lor sub)) land 1 <> v then 2
      else if sub = umask then v
      else agree ((sub - umask) land umask)
    in
    agree ((0 - umask) land umask)

(* Same walk over a 16-cell memory; the base cell must itself be defined
   (memories can hold X after a clobbered write). *)
let mem_code cells base umask =
  let v = Char.code (Bytes.unsafe_get cells base) in
  if umask = 0 then v
  else if v >= 2 then 2
  else
    let rec agree sub =
      if Char.code (Bytes.unsafe_get cells (base lor sub)) <> v then 2
      else if sub = umask then v
      else agree ((sub - umask) land umask)
    in
    agree ((0 - umask) land umask)

(* ------------------------------------------------------------------ *)
(* Sequential nodes: preallocated current/next buffers, filled by the
   compute phase and applied by the commit phase of [cycle].           *)

type ff_node = {
  ff_rank : int;
  ff_d : int;
  ff_ce : int; (* dense net index, -1 when the pin is absent *)
  ff_clr : int;
  ff_r : int;
  mutable ff_cur : int;
  mutable ff_next : int;
  ff_init : int;
}

type srl_node = {
  srl_rank : int;
  srl_d : int;
  srl_ce : int;
  srl_cells : Bytes.t;
  srl_next : Bytes.t;
  mutable srl_commit : bool;
  srl_init : Bytes.t;
}

type ram_node = {
  ram_rank : int;
  ram_d : int;
  ram_we : int;
  ram_a : int array;
  ram_cells : Bytes.t;
  mutable ram_wr : int; (* -1 no write, -2 clobber with X, else cell *)
  mutable ram_wd : int;
  ram_init : Bytes.t;
}

type bb_node = {
  bb_rank : int;
  bb_behavior : Prim.behavior;
  bb_read : string -> Bits.t;
}

type snode =
  | S_ff of ff_node
  | S_srl of srl_node
  | S_ram of ram_node
  | S_bb of bb_node

type watch_entry = {
  watch_label : string;
  watch_idx : int array; (* dense index per bit, -1 when unmapped *)
  mutable samples : (int * Bits.t) list; (* newest first *)
}

type t = {
  sim_design : Design.t;
  net_idx : (int, int) Hashtbl.t; (* net_id -> dense index *)
  st : store;
  eval : (unit -> unit) array; (* compiled per-node evaluators, by rank *)
  level_lo : int array; (* first rank of each level *)
  depth : int;
  seq_all : snode array; (* every sequential node, for [reset] *)
  seq_clocked : snode array; (* the selected clock domain *)
  seq_by_path : (string, snode) Hashtbl.t; (* checkpoint state keys *)
  mutable cycles : int;
  mutable watches : watch_entry list; (* reverse watch order *)
  mutable cycle_hooks : (int -> unit) list; (* registration order *)
}

(* ------------------------------------------------------------------ *)
(* Construction-time netlist view (never touched after [create]).
   The node shape and the walk are the shared [Levelize] ones, so the
   simulator, the reference interpreter, the validator and the timing
   estimator all agree on combinational edges and cycle membership.     *)

type proto = Levelize.source = {
  inst : cell;
  prim : Prim.t;
  in_ports : (string * net array) list;
  out_ports : (string * net array) list;
}

let make_proto inst =
  match Levelize.source_of inst with
  | None -> assert false
  | Some s -> s

let node_comb_inputs = Levelize.comb_inputs

(* Shared Kahn levelization, then a stable sort by level so each level
   occupies a contiguous rank range — what the level-bucketed worklist
   drains. *)
let levelize nodes =
  let kahn, kahn_levels, max_level =
    try Levelize.levelize nodes
    with Levelize.Cycle cells ->
      raise (Combinational_cycle (List.map Cell.path cells))
  in
  let tagged = Array.mapi (fun i node -> (kahn_levels.(i), i, node)) kahn in
  Array.sort
    (fun (l1, i1, _) (l2, i2, _) ->
       if l1 <> l2 then Int.compare l1 l2 else Int.compare i1 i2)
    tagged;
  let order = Array.map (fun (_, _, n) -> n) tagged in
  let level_of = Array.map (fun (l, _, _) -> l) tagged in
  order, level_of, max_level

(* ------------------------------------------------------------------ *)
(* Settle.                                                             *)

(* full pass: evaluate everything once in level order (used at create
   and reset); leaves no pending work *)
let propagate_full sim =
  let eval = sim.eval in
  for r = 0 to Array.length eval - 1 do
    (Array.unsafe_get eval r) ()
  done;
  sim.st.stat_evals <- sim.st.stat_evals + Array.length eval;
  Bytes.fill sim.st.dirty 0 (Bytes.length sim.st.dirty) '\000';
  Array.fill sim.st.level_pending 0 (Array.length sim.st.level_pending) 0;
  sim.st.pending_total <- 0

(* incremental settle: drain dirty levels in ascending order. A node's
   evaluation can only mark strictly higher levels (combinational edges
   increase level), so one sweep reaches the fixpoint and each dirty
   node is evaluated exactly once. *)
let propagate sim =
  let st = sim.st in
  if st.pending_total > 0 then
    for lv = 0 to sim.depth do
      let cnt = st.level_pending.(lv) in
      if cnt > 0 then begin
        st.level_pending.(lv) <- 0;
        st.pending_total <- st.pending_total - cnt;
        st.stat_evals <- st.stat_evals + cnt;
        let left = ref cnt in
        let r = ref sim.level_lo.(lv) in
        while !left > 0 do
          if Bytes.unsafe_get st.dirty !r <> '\000' then begin
            Bytes.unsafe_set st.dirty !r '\000';
            decr left;
            (Array.unsafe_get sim.eval !r) ()
          end;
          incr r
        done
      end
    done

(* ------------------------------------------------------------------ *)
(* Two-phase clock step. Compute reads pre-edge values into the
   preallocated next buffers; commit applies them and marks the node's
   rank dirty when its outputs may have changed. Commits touch only
   internal state, so black-box edge closures still observe pre-edge
   nets regardless of commit order. *)

let compute_snode st = function
  | S_ff f ->
    let ce = if f.ff_ce >= 0 then code st f.ff_ce else 1 in
    let clr = if f.ff_clr >= 0 then code st f.ff_clr else 0 in
    let r = if f.ff_r >= 0 then code st f.ff_r else 0 in
    let d = code st f.ff_d in
    f.ff_next <-
      (if clr = 1 then 0
       else
         let loaded = mux_code r d 0 in
         let held = mux_code ce f.ff_cur loaded in
         if clr = 0 then held
         else (* CLR unknown: zero and the clocked value must agree *)
           mux_code clr held 0)
  | S_srl s ->
    let ce = code st s.srl_ce in
    if ce = 0 then s.srl_commit <- false
    else begin
      s.srl_commit <- true;
      let d = code st s.srl_d in
      if ce = 1 then begin
        Bytes.blit s.srl_cells 0 s.srl_next 1 15;
        Bytes.unsafe_set s.srl_next 0 (Char.unsafe_chr d)
      end
      else
        (* CE unknown: a tap keeps its value only where shifting would
           not change it *)
        for i = 0 to 15 do
          let sh =
            if i = 0 then d else Char.code (Bytes.unsafe_get s.srl_cells (i - 1))
          in
          let cur = Char.code (Bytes.unsafe_get s.srl_cells i) in
          Bytes.unsafe_set s.srl_next i
            (if sh = cur && sh < 2 then Char.unsafe_chr sh else '\002')
        done
    end
  | S_ram m ->
    let we = code st m.ram_we in
    if we = 0 then m.ram_wr <- -1
    else if we = 1 then begin
      let acc = gather st m.ram_a 3 0 in
      if acc lsr 16 = 0 then begin
        m.ram_wr <- acc land 0xffff;
        m.ram_wd <- code st m.ram_d
      end
      else m.ram_wr <- -2 (* write enabled at an unknown address *)
    end
    else m.ram_wr <- -2
  | S_bb _ -> ()

let commit_snode st = function
  | S_ff f ->
    if f.ff_cur <> f.ff_next then begin
      f.ff_cur <- f.ff_next;
      mark st f.ff_rank
    end
  | S_srl s ->
    if s.srl_commit && not (Bytes.equal s.srl_next s.srl_cells) then begin
      Bytes.blit s.srl_next 0 s.srl_cells 0 16;
      mark st s.srl_rank
    end
  | S_ram m ->
    if m.ram_wr >= 0 then begin
      if Char.code (Bytes.get m.ram_cells m.ram_wr) <> m.ram_wd then begin
        Bytes.set m.ram_cells m.ram_wr (Char.chr m.ram_wd);
        mark st m.ram_rank
      end
    end
    else if m.ram_wr = -2 then begin
      (* any non-X cell (defined or Z) changes under the clobber and
         must re-evaluate the read port *)
      let changed = ref false in
      for i = 0 to 15 do
        if Char.code (Bytes.unsafe_get m.ram_cells i) <> 2 then changed := true
      done;
      Bytes.fill m.ram_cells 0 16 '\002';
      if !changed then mark st m.ram_rank
    end
  | S_bb b ->
    (match b.bb_behavior.Prim.clock_edge with
     | Some edge ->
       edge ~read:b.bb_read;
       (* behavioural state is opaque: conservatively re-evaluate *)
       mark st b.bb_rank
     | None -> ())

(* ------------------------------------------------------------------ *)
(* Compilation.                                                        *)

let port_idx ports name =
  match List.assoc_opt name ports with
  | Some arr -> arr
  | None -> invalid_arg (Printf.sprintf "Simulator: no port %s" name)

let create ?clock design =
  (* Combinational loops are excluded from the design-rule pre-check so
     levelization reports them through the canonical [Combinational_cycle]
     exception, carrying the same cell list as [Design.validate]. *)
  (match
     List.filter
       (function Design.Combinational_loop _ -> false | _ -> true)
       (Design.errors design)
   with
   | [] -> ()
   | violation :: _ ->
     invalid_arg
       (Format.asprintf "Simulator.create: design-rule error: %a"
          Design.pp_violation violation));
  let clock_nets =
    match clock with
    | None -> None
    | Some w ->
      if Wire.width w <> 1 then
        invalid_arg "Simulator.create: clock wire must be 1 bit wide";
      let table = Hashtbl.create 4 in
      Array.iter (fun n -> Hashtbl.replace table n.net_id ()) (Wire.nets w);
      Some table
  in
  let protos = List.map make_proto (Design.all_prims design) in
  let order, level_of, depth = levelize protos in
  let n_ranks = Array.length order in
  (* dense net numbering: design nets first (creation order), then any
     node-port net not reachable from a declared wire *)
  let net_idx = Hashtbl.create 1024 in
  let n_nets = ref 0 in
  let index_net n =
    if not (Hashtbl.mem net_idx n.net_id) then begin
      Hashtbl.add net_idx n.net_id !n_nets;
      incr n_nets
    end
  in
  List.iter index_net (Design.all_nets design);
  Array.iter
    (fun p ->
       List.iter (fun (_, nets) -> Array.iter index_net nets) p.in_ports;
       List.iter (fun (_, nets) -> Array.iter index_net nets) p.out_ports)
    order;
  let n_nets = !n_nets in
  (* consumer fan-out as CSR: count, prefix-sum, fill *)
  let row = Array.make (n_nets + 1) 0 in
  let iter_comb_nets p f =
    List.iter
      (fun port ->
         match List.assoc_opt port p.in_ports with
         | None -> ()
         | Some nets ->
           Array.iter (fun n -> f (Hashtbl.find net_idx n.net_id)) nets)
      (node_comb_inputs p)
  in
  Array.iter (fun p -> iter_comb_nets p (fun idx -> row.(idx + 1) <- row.(idx + 1) + 1)) order;
  for i = 1 to n_nets do
    row.(i) <- row.(i) + row.(i - 1)
  done;
  let col = Array.make row.(n_nets) 0 in
  let cursor = Array.sub row 0 n_nets in
  Array.iteri
    (fun rank p ->
       iter_comb_nets p (fun idx ->
         col.(cursor.(idx)) <- rank;
         cursor.(idx) <- cursor.(idx) + 1))
    order;
  let level_lo = Array.make (depth + 1) n_ranks in
  for r = n_ranks - 1 downto 0 do
    level_lo.(level_of.(r)) <- r
  done;
  let st =
    { vals = Bytes.make n_nets '\002' (* everything starts X *);
      row;
      col;
      level_of;
      dirty = Bytes.make n_ranks '\000';
      level_pending = Array.make (depth + 1) 0;
      pending_total = 0;
      stat_evals = 0;
      stat_changes = 0 }
  in
  let in_domain p =
    match clock_nets with
    | None -> true
    | Some table ->
      (match Prim.clock_port p.prim with
       | None -> true (* black boxes follow the global cycle *)
       | Some port ->
         (match List.assoc_opt port p.in_ports with
          | None -> false
          | Some nets ->
            Array.exists (fun n -> Hashtbl.mem table n.net_id) nets))
  in
  let eval = Array.make n_ranks (fun () -> ()) in
  let seq_all = ref [] and seq_clocked = ref [] in
  let seq_by_path = Hashtbl.create 64 in
  Array.iteri
    (fun rank p ->
       let add_seq sn clocked =
         seq_all := sn :: !seq_all;
         Hashtbl.replace seq_by_path (Cell.path p.inst) sn;
         if clocked then seq_clocked := sn :: !seq_clocked
       in
       let ins =
         List.map
           (fun (name, nets) ->
              (name, Array.map (fun n -> Hashtbl.find net_idx n.net_id) nets))
           p.in_ports
       and outs =
         List.map
           (fun (name, nets) ->
              (name, Array.map (fun n -> Hashtbl.find net_idx n.net_id) nets))
           p.out_ports
       in
       let p1 ports name = (port_idx ports name).(0) in
       match p.prim with
       | Prim.Lut init ->
         let k = Lut_init.inputs init in
         let table = Lut_init.to_int init in
         let addrs = Array.init k (fun i -> p1 ins (Printf.sprintf "I%d" i)) in
         let o = p1 outs "O" in
         eval.(rank) <-
           (fun () ->
              let acc = gather st addrs (k - 1) 0 in
              write st o (lut_code table (acc land 0xffff) (acc lsr 16)))
       | Prim.Ff { clock_enable; async_clear; sync_reset; init } ->
         let f =
           { ff_rank = rank;
             ff_d = p1 ins "D";
             ff_ce = (if clock_enable then p1 ins "CE" else -1);
             ff_clr = (if async_clear then p1 ins "CLR" else -1);
             ff_r = (if sync_reset then p1 ins "R" else -1);
             ff_cur = Bit.to_code init;
             ff_next = Bit.to_code init;
             ff_init = Bit.to_code init }
         in
         let q = p1 outs "Q" in
         eval.(rank) <-
           (if async_clear then
              let clr = f.ff_clr in
              fun () -> write st q (mux_code (code st clr) f.ff_cur 0)
            else fun () -> write st q f.ff_cur);
         add_seq (S_ff f) (in_domain p)
       | Prim.Muxcy ->
         let s = p1 ins "S" and di = p1 ins "DI" and ci = p1 ins "CI" in
         let o = p1 outs "O" in
         eval.(rank) <-
           (fun () -> write st o (mux_code (code st s) (code st di) (code st ci)))
       | Prim.Xorcy ->
         let li = p1 ins "LI" and ci = p1 ins "CI" in
         let o = p1 outs "O" in
         eval.(rank) <- (fun () -> write st o (xor_code (code st li) (code st ci)))
       | Prim.Mult_and ->
         let i0 = p1 ins "I0" and i1 = p1 ins "I1" in
         let lo = p1 outs "LO" in
         eval.(rank) <- (fun () -> write st lo (and_code (code st i0) (code st i1)))
       | Prim.Srl16 { init } ->
         let init_b = Bytes.init 16 (fun i -> Char.chr ((init lsr i) land 1)) in
         let s =
           { srl_rank = rank;
             srl_d = p1 ins "D";
             srl_ce = p1 ins "CE";
             srl_cells = Bytes.copy init_b;
             srl_next = Bytes.make 16 '\000';
             srl_commit = false;
             srl_init = init_b }
         in
         let a = Array.init 4 (fun i -> p1 ins (Printf.sprintf "A%d" i)) in
         let q = p1 outs "Q" in
         let cells = s.srl_cells in
         eval.(rank) <-
           (fun () ->
              let acc = gather st a 3 0 in
              write st q (mem_code cells (acc land 0xffff) (acc lsr 16)));
         add_seq (S_srl s) (in_domain p)
       | Prim.Ram16x1 { init } ->
         let init_b = Bytes.init 16 (fun i -> Char.chr ((init lsr i) land 1)) in
         let m =
           { ram_rank = rank;
             ram_d = p1 ins "D";
             ram_we = p1 ins "WE";
             ram_a = Array.init 4 (fun i -> p1 ins (Printf.sprintf "A%d" i));
             ram_cells = Bytes.copy init_b;
             ram_wr = -1;
             ram_wd = 0;
             ram_init = init_b }
         in
         let o = p1 outs "O" in
         let cells = m.ram_cells and a = m.ram_a in
         eval.(rank) <-
           (fun () ->
              let acc = gather st a 3 0 in
              write st o (mem_code cells (acc land 0xffff) (acc lsr 16)));
         add_seq (S_ram m) (in_domain p)
       | Prim.Buf ->
         let i = p1 ins "I" and o = p1 outs "O" in
         eval.(rank) <- (fun () -> write st o (code st i))
       | Prim.Inv ->
         let i = p1 ins "I" and o = p1 outs "O" in
         eval.(rank) <- (fun () -> write st o (not_code (code st i)))
       | Prim.Gnd ->
         let g = p1 outs "G" in
         eval.(rank) <- (fun () -> write st g 0)
       | Prim.Vcc ->
         let v = p1 outs "P" in
         eval.(rank) <- (fun () -> write st v 1)
       | Prim.Black_box { make_behavior; _ } ->
         let behavior = make_behavior () in
         let read port =
           let arr =
             match List.assoc_opt port ins with
             | Some a -> a
             | None -> port_idx outs port
           in
           Bits.init (Array.length arr) (fun i -> Bit.of_code (code st arr.(i)))
         in
         let inst_path = Cell.path p.inst in
         eval.(rank) <-
           (fun () ->
              let written = behavior.Prim.comb ~read in
              List.iter
                (fun (port, bits) ->
                   let nets = port_idx outs port in
                   if Array.length nets <> Bits.width bits then
                     invalid_arg
                       (Printf.sprintf
                          "Simulator: black box %s wrote %d bits to %d-bit port %s"
                          inst_path (Bits.width bits) (Array.length nets) port);
                   Array.iteri
                     (fun i idx -> write st idx (Bit.to_code (Bits.get bits i)))
                     nets)
                written);
         add_seq
           (S_bb { bb_rank = rank; bb_behavior = behavior; bb_read = read })
           (in_domain p && Option.is_some behavior.Prim.clock_edge))
    order;
  let sim =
    { sim_design = design;
      net_idx;
      st;
      eval;
      level_lo;
      depth;
      seq_all = Array.of_list (List.rev !seq_all);
      seq_clocked = Array.of_list (List.rev !seq_clocked);
      seq_by_path;
      cycles = 0;
      watches = [];
      cycle_hooks = [] }
  in
  propagate_full sim;
  sim

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)

let design sim = sim.sim_design

let read_nets sim nets =
  Bits.init (Array.length nets) (fun i ->
    match Hashtbl.find_opt sim.net_idx nets.(i).net_id with
    | None -> Bit.X
    | Some idx -> Bit.of_code (code sim.st idx))

let get sim w = read_nets sim (Wire.nets w)

let get_port sim port =
  match Design.find_port sim.sim_design port with
  | None -> invalid_arg (Printf.sprintf "Simulator.get_port: no port %s" port)
  | Some p -> get sim p.Design.port_wire

(* write the wire's nets without settling (shared by the single and
   batch input entry points) *)
let force_wire sim w bits =
  if Bits.width bits <> Wire.width w then
    invalid_arg
      (Printf.sprintf "Simulator.set_input_wire: %d bits for %d-bit wire %s"
         (Bits.width bits) (Wire.width w) (Wire.name w));
  Array.iteri
    (fun i n ->
       (match n.driver with
        | Some term ->
          invalid_arg
            (Printf.sprintf "Simulator.set_input_wire: net %s[%d] is driven by %s"
               (Wire.name w) i (Cell.path term.term_cell))
        | None -> ());
       match Hashtbl.find_opt sim.net_idx n.net_id with
       | Some idx -> write sim.st idx (Bit.to_code (Bits.get bits i))
       | None -> ())
    (Wire.nets w)

let set_input_wire sim w bits =
  force_wire sim w bits;
  propagate sim

let force_port sim port bits =
  match Design.find_port sim.sim_design port with
  | None -> invalid_arg (Printf.sprintf "Simulator.set_input: no port %s" port)
  | Some p ->
    (match p.Design.port_dir with
     | Input -> force_wire sim p.Design.port_wire bits
     | Output ->
       invalid_arg (Printf.sprintf "Simulator.set_input: %s is an output" port))

let set_input sim port bits =
  force_port sim port bits;
  propagate sim

let set_inputs sim assignments =
  match assignments with
  | [] -> ()
  | _ ->
    (* settle once for the whole batch; on error settle what was already
       applied so the simulator is left in a consistent state *)
    (try List.iter (fun (port, bits) -> force_port sim port bits) assignments
     with e ->
       propagate sim;
       raise e);
    propagate sim

let record_watches sim =
  List.iter
    (fun w ->
       let v =
         Bits.init (Array.length w.watch_idx) (fun i ->
           let idx = w.watch_idx.(i) in
           if idx < 0 then Bit.X else Bit.of_code (code sim.st idx))
       in
       w.samples <- (sim.cycles, v) :: w.samples)
    sim.watches

(* top-level recursion instead of [List.iter (fun hook -> ...)]: the
   iter closure would capture [sim] and cost a minor allocation on every
   instrumented cycle *)
let rec run_cycle_hooks hooks cycles =
  match hooks with
  | [] -> ()
  | hook :: rest ->
    hook cycles;
    run_cycle_hooks rest cycles

let cycle ?(n = 1) sim =
  let st = sim.st in
  let seq = sim.seq_clocked in
  let k = Array.length seq in
  for _ = 1 to n do
    for i = 0 to k - 1 do
      compute_snode st (Array.unsafe_get seq i)
    done;
    for i = 0 to k - 1 do
      commit_snode st (Array.unsafe_get seq i)
    done;
    sim.cycles <- sim.cycles + 1;
    propagate sim;
    (match sim.watches with [] -> () | _ -> record_watches sim);
    run_cycle_hooks sim.cycle_hooks sim.cycles
  done

let reset sim =
  Array.iter
    (function
      | S_ff f -> f.ff_cur <- f.ff_init
      | S_srl s -> Bytes.blit s.srl_init 0 s.srl_cells 0 16
      | S_ram m -> Bytes.blit m.ram_init 0 m.ram_cells 0 16
      | S_bb b ->
        (match b.bb_behavior.Prim.state_reset with
         | None -> ()
         | Some f -> f ()))
    sim.seq_all;
  sim.cycles <- 0;
  List.iter (fun w -> w.samples <- []) sim.watches;
  propagate_full sim;
  record_watches sim

let cycle_count sim = sim.cycles

let watch sim ?label w =
  let watch_label = Option.value label ~default:(Wire.full_name w) in
  let watch_idx =
    Array.map
      (fun n ->
         match Hashtbl.find_opt sim.net_idx n.net_id with
         | None -> -1
         | Some idx -> idx)
      (Wire.nets w)
  in
  let entry = { watch_label; watch_idx; samples = [ (sim.cycles, get sim w) ] } in
  sim.watches <- entry :: sim.watches

let history sim =
  List.rev_map (fun w -> (w.watch_label, List.rev w.samples)) sim.watches

let on_cycle sim f = sim.cycle_hooks <- sim.cycle_hooks @ [ f ]
let prim_count sim = Array.length sim.eval
let levels sim = sim.depth
let eval_count sim = sim.st.stat_evals
let event_count sim = sim.st.stat_changes

(* Pull-based registration: the kernel's own counters are sampled as
   probes (zero per-cycle cost) and a per-cycle settle-size histogram
   rides the existing hook list.  Everything the installed hook touches
   is preallocated here, so the steady-state cycle stays allocation-free
   with a live registry attached. *)
let register_metrics sim registry =
  let module M = Jhdl_metrics.Metrics in
  M.probe registry "cycles_total" (fun () -> sim.cycles);
  M.probe registry "settle_evals_total" (fun () -> sim.st.stat_evals);
  M.probe registry "net_events_total" (fun () -> sim.st.stat_changes);
  M.probe registry "prims" (fun () -> Array.length sim.eval);
  M.probe registry "levels" (fun () -> sim.depth);
  if not (M.is_nil registry) then begin
    let per_cycle = M.histogram registry "settle_evals_per_cycle" in
    let last = ref sim.st.stat_evals in
    on_cycle sim (fun _ ->
        let now = sim.st.stat_evals in
        M.observe per_cycle (now - !last);
        last := now)
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing. State entries are keyed by instance path ([Snapshot]'s
   contract), so blobs restore across [Simulator]/[Reference] and across
   processes as long as the design signature matches.                   *)

let snapshot sim =
  Snapshot.check_design sim.sim_design;
  let nets_list = Design.all_nets sim.sim_design in
  let image_nets = Bytes.create (List.length nets_list) in
  List.iteri
    (fun i n ->
       let c =
         match Hashtbl.find_opt sim.net_idx n.net_id with
         | Some idx -> code sim.st idx
         | None -> 2
       in
       Bytes.set image_nets i (Char.chr c))
    nets_list;
  let image_seq =
    List.filter_map
      (fun inst ->
         let path = Cell.path inst in
         match Hashtbl.find_opt sim.seq_by_path path with
         | None | Some (S_bb _) -> None
         | Some (S_ff f) -> Some (path, Snapshot.Flop f.ff_cur)
         | Some (S_srl s) -> Some (path, Snapshot.Mem (Bytes.copy s.srl_cells))
         | Some (S_ram m) -> Some (path, Snapshot.Mem (Bytes.copy m.ram_cells)))
      (Design.all_prims sim.sim_design)
  in
  Snapshot.encode
    { Snapshot.image_signature = Snapshot.signature sim.sim_design;
      image_cycles = sim.cycles;
      image_nets;
      image_seq;
      image_watches = history sim }

let restore sim blob =
  let img = Snapshot.decode blob in
  let expect = Snapshot.signature sim.sim_design in
  if img.Snapshot.image_signature <> expect then
    raise
      (Snapshot.Error
         (Printf.sprintf
            "snapshot: design signature mismatch (blob %08x, design %s is %08x)"
            img.Snapshot.image_signature (Design.name sim.sim_design) expect));
  let nets_list = Design.all_nets sim.sim_design in
  if Bytes.length img.Snapshot.image_nets <> List.length nets_list then
    raise (Snapshot.Error "snapshot: net count mismatch");
  List.iteri
    (fun i n ->
       match Hashtbl.find_opt sim.net_idx n.net_id with
       | None -> ()
       | Some idx ->
         Bytes.set sim.st.vals idx (Bytes.get img.Snapshot.image_nets i))
    nets_list;
  List.iter
    (fun (path, state) ->
       match Hashtbl.find_opt sim.seq_by_path path, state with
       | Some (S_ff f), Snapshot.Flop c -> f.ff_cur <- c
       | Some (S_srl s), Snapshot.Mem cells -> Bytes.blit cells 0 s.srl_cells 0 16
       | Some (S_ram m), Snapshot.Mem cells -> Bytes.blit cells 0 m.ram_cells 0 16
       | _ ->
         raise
           (Snapshot.Error
              ("snapshot: state entry does not match the design at " ^ path)))
    img.Snapshot.image_seq;
  sim.cycles <- img.Snapshot.image_cycles;
  List.iter
    (fun w ->
       w.samples <-
         (match List.assoc_opt w.watch_label img.Snapshot.image_watches with
          | Some samples -> List.rev samples
          | None -> []))
    sim.watches;
  propagate_full sim

(* ------------------------------------------------------------------ *)
(* Bit-parallel batch mode: 63 testbench lanes per machine word.       *)

module Batch = Batch
