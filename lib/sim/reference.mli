(** Reference cycle simulator (golden model).

    The original interpreter-style evaluator, kept alongside the compiled
    dense kernel in {!Simulator} as an independently-implemented golden
    model: differential tests drive both simulators over the same design
    and input sequences and require bit-identical port values and watch
    histories. The API mirrors {!Simulator} (minus the batch entry
    point); semantics are identical by construction — levelized
    event-driven propagation, pessimistic four-valued logic, two-phase
    clock edges. Nothing here is optimised for cycle throughput. *)

type t

exception
  Combinational_cycle of string list
      (** instance paths forming the cycle *)

(** [create ?clock design] elaborates and levelizes [design]; see
    {!Simulator.create} for the contract. *)
val create : ?clock:Jhdl_circuit.Wire.t -> Jhdl_circuit.Design.t -> t

val design : t -> Jhdl_circuit.Design.t

val set_input : t -> string -> Jhdl_logic.Bits.t -> unit
val set_input_wire : t -> Jhdl_circuit.Wire.t -> Jhdl_logic.Bits.t -> unit
val get : t -> Jhdl_circuit.Wire.t -> Jhdl_logic.Bits.t
val get_port : t -> string -> Jhdl_logic.Bits.t
val propagate : t -> unit
val cycle : ?n:int -> t -> unit
val reset : t -> unit
val cycle_count : t -> int

val watch : t -> ?label:string -> Jhdl_circuit.Wire.t -> unit
val history : t -> (string * (int * Jhdl_logic.Bits.t) list) list

(** Checkpointing, blob-compatible with {!Simulator.snapshot}: a kernel
    snapshot restores into the interpreter and vice versa. See
    {!Simulator.snapshot} for the contract. *)

val snapshot : t -> string
val restore : t -> string -> unit

val on_cycle : t -> (int -> unit) -> unit
val prim_count : t -> int
val levels : t -> int
val eval_count : t -> int
val event_count : t -> int

(** Same probe set as {!Simulator.register_metrics}. *)
val register_metrics : t -> Jhdl_metrics.Metrics.t -> unit
