(** Cycle-based circuit simulator, compiled to a dense array kernel.

    The JHDL design suite's built-in simulator, reproduced: designs are
    elaborated to a flat list of primitive instances, combinational logic
    is levelized once at construction, and the user steps the design with
    {!cycle} and {!reset} — the two buttons the paper's applets expose.
    Propagation is incremental and event-driven: a changed net marks its
    combinational consumers dirty and the dirty set is drained in
    level order, so settling after an input change or a clock edge costs
    only the affected cone of logic.

    {!create} compiles the levelized netlist once into flat int-indexed
    structures: net values live in a contiguous byte store of 2-bit codes
    ({!Jhdl_logic.Bit.to_code}), each primitive becomes a closure over
    precomputed dense net indices, fan-out is a CSR int-array pair, and
    the dirty worklist is a bitset bucketed by level. The steady-state
    cycle loop performs no string port lookups, hashtable probes or
    per-cycle allocation. The retained interpreter, {!Reference}, is the
    golden model the kernel is differentially tested against.

    Values are four-valued ({!Jhdl_logic.Bit}); registers power up to
    their INIT value and {!reset} models the Virtex global set/reset.
    Sequential primitives update on the rising edge of the designated
    clock with two-phase semantics (all next-states are computed from
    pre-edge values, then committed). Behavioural {!Jhdl_circuit.Prim.Black_box}
    models participate through their [comb] and [clock_edge] closures,
    which is also the hook for the protected black-box IP of Section 4.2
    of the paper. *)

type t

exception
  Combinational_cycle of string list
      (** instance paths forming the cycle *)

(** [create ?clock design] elaborates and levelizes [design].

    [clock], if given, must be a 1-bit top-level input wire; sequential
    primitives whose clock pin is attached to it update on {!cycle}. When
    omitted, every sequential primitive is treated as belonging to the
    single implicit clock domain (the common JHDL case).

    Raises {!Combinational_cycle} on a combinational loop and
    [Invalid_argument] when the design has design-rule errors. *)
val create : ?clock:Jhdl_circuit.Wire.t -> Jhdl_circuit.Design.t -> t

val design : t -> Jhdl_circuit.Design.t

(** [set_input sim port value] forces a top-level input port. Width must
    match. Combinational logic is re-propagated immediately. *)
val set_input : t -> string -> Jhdl_logic.Bits.t -> unit

(** [set_input_wire sim wire value] forces any root-scope wire (or view)
    bound to a top-level input; useful with sliced wires. *)
val set_input_wire : t -> Jhdl_circuit.Wire.t -> Jhdl_logic.Bits.t -> unit

(** [set_inputs sim assignments] forces several top-level input ports and
    settles combinational logic once for the whole batch — the fast path
    for protocol endpoints that update many ports per step. Equivalent to
    a sequence of {!set_input} calls. If an assignment is invalid, logic
    settles for the assignments already applied before the exception is
    re-raised. *)
val set_inputs : t -> (string * Jhdl_logic.Bits.t) list -> unit

(** [get sim wire] reads the current value of any wire in the design. *)
val get : t -> Jhdl_circuit.Wire.t -> Jhdl_logic.Bits.t

(** [get_port sim name] reads a top-level port by name. *)
val get_port : t -> string -> Jhdl_logic.Bits.t

(** [propagate sim] settles combinational logic; normally implicit. *)
val propagate : t -> unit

(** [cycle ?n sim] advances [n] (default 1) rising clock edges. *)
val cycle : ?n:int -> t -> unit

(** [reset sim] restores every register to its INIT value, zeroes the
    cycle counter and clears recorded history, like the applet's Reset
    button. Forced input values are kept. *)
val reset : t -> unit

val cycle_count : t -> int

(** {1 Waveform recording}

    Watched wires are sampled after every {!cycle} (and once at watch
    time). The recorded history feeds the waveform viewer and VCD
    export. *)

val watch : t -> ?label:string -> Jhdl_circuit.Wire.t -> unit

(** [history sim] returns, per watched label in watch order, the samples
    as [(cycle, value)] pairs in increasing cycle order. *)
val history : t -> (string * (int * Jhdl_logic.Bits.t) list) list

(** {1 Checkpointing}

    Crash-safe co-simulation serializes the running state into
    {!Snapshot} blobs; a restarted endpoint restores the blob and
    replays its journal to the exact pre-crash state. *)

(** [snapshot sim] serializes the complete architectural state — net
    codes, register/SRL/RAM contents, cycle counter, watch histories —
    into a versioned, CRC-checked blob. Raises {!Snapshot.Error} when
    the design holds behavioural black boxes (opaque state). *)
val snapshot : t -> string

(** [restore sim blob] overwrites [sim]'s state with [blob] and settles
    combinational logic. The blob must come from a design with the same
    {!Snapshot.signature} — either simulator implementation qualifies.
    Raises {!Snapshot.Error} on malformed, corrupt, wrong-version or
    foreign blobs; [sim] is only modified once the blob has been fully
    validated against the design. *)
val restore : t -> string -> unit

(** {1 Introspection for tools}

    The open-API surface that lets viewers and third-party tools attach to
    a running simulation (Section 2.3). *)

(** [on_cycle sim f] registers a callback invoked after each clock cycle
    with the new cycle count. *)
val on_cycle : t -> (int -> unit) -> unit

(** [prim_count sim] is the number of elaborated primitive instances. *)
val prim_count : t -> int

(** [levels sim] is the depth of the levelized combinational network. *)
val levels : t -> int

(** [eval_count sim] is the lifetime number of node evaluations
    performed by settles (full passes included). *)
val eval_count : t -> int

(** [event_count sim] is the lifetime number of change-tracked net
    writes that actually changed a value. *)
val event_count : t -> int

(** [register_metrics sim registry] registers the kernel's work
    counters as pull-based probes ([cycles_total], [settle_evals_total],
    [net_events_total], [prims], [levels]) plus a
    [settle_evals_per_cycle] histogram fed from a cycle hook.  On a live
    registry the hook's updates are allocation-free, so the pinned
    zero-allocation steady-state cycle is preserved. *)
val register_metrics : t -> Jhdl_metrics.Metrics.t -> unit

(** {1 Batch mode}

    {!Batch} packs up to 63 independent testbench lanes into the bit
    positions of one machine word per net plane, so a single settle
    pass evaluates every lane at once — the data-parallel engine behind
    the fuzz oracles, the differential corpus sweeps and multi-user
    co-simulation. Each lane is bit-identical to a scalar run of this
    simulator. *)

module Batch = Batch
