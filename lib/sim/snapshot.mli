(** Versioned, CRC-checked simulator checkpoint blobs.

    A snapshot serializes the complete architectural state of a running
    simulation — net codes, register/SRL/RAM contents, the cycle counter
    and recorded watch histories — so a crashed or migrated session can
    be restored bit-exactly. The encoding is shared by the compiled
    kernel ({!Simulator}) and the golden interpreter ({!Reference}):
    state entries are keyed by stable instance paths rather than
    evaluation rank, so a blob taken from one simulator restores into
    the other.

    Blobs carry a format version, a 32-bit design signature (hashed over
    the design's name, port interface, net count and every primitive's
    path and descriptor — including LUT/SRL/RAM INIT values) and a
    trailing CRC-16. {!decode} rejects truncated, corrupt, wrong-version
    and foreign blobs with {!Error}. *)

exception Error of string

(** Current blob format version. *)
val version : int

(** State of one sequential primitive. *)
type seq_state =
  | Flop of int  (** flip-flop value as a 2-bit code *)
  | Mem of Bytes.t  (** 16 SRL/RAM cells, one code byte each *)

(** The decoded in-memory form of a checkpoint. *)
type image = {
  image_signature : int;  (** {!signature} of the source design *)
  image_cycles : int;
  image_nets : Bytes.t;
      (** one code byte per design net, in [Design.all_nets] order *)
  image_seq : (string * seq_state) list;
      (** keyed by instance path, in [Design.all_prims] order *)
  image_watches : (string * (int * Jhdl_logic.Bits.t) list) list;
      (** per watch label, samples oldest first (the [history] shape) *)
}

(** [descriptor design] — the canonical identity string the signatures
    hash: name, ports (name/direction/width), net count, and each
    primitive instance's path and full descriptor (LUT truth tables, FF
    pin configuration and INIT, SRL/RAM INIT contents). Two designs are
    snapshot-compatible iff their descriptors are byte-equal — the
    content-address the delivery cache verifies against on a hit. *)
val descriptor : Jhdl_circuit.Design.t -> string

(** [signature design] — FNV-1a/32 over {!descriptor}. Kept at 32 bits
    for [JSNP] blob format compatibility; collision-unsafe as a cache
    key (birthday bound ~77k designs), use {!signature64} for content
    addressing. *)
val signature : Jhdl_circuit.Design.t -> int

(** [signature64 design] — FNV-1a/64 over {!descriptor}, the
    collision-safe cache key ({!Jhdl_cache} additionally stores the
    descriptor length and verifies the full descriptor on a hit, so
    even a 64-bit collision degrades to a miss). *)
val signature64 : Jhdl_circuit.Design.t -> int64

(** The raw hashes, exposed for cache-key derivation over non-design
    descriptors and for collision-regression tests. *)
val fnv1a32 : string -> int

val fnv1a64 : string -> int64

(** [check_design design] raises {!Error} when [design] cannot be
    snapshotted — behavioural black boxes carry opaque closure state the
    blob format cannot capture. *)
val check_design : Jhdl_circuit.Design.t -> unit

val encode : image -> string

(** [decode blob] — raises {!Error} on bad magic, unsupported version,
    CRC mismatch, truncation or trailing garbage. *)
val decode : string -> image

(** CRC-16/CCITT-FALSE over a string (poly 0x1021, init 0xFFFF) — the
    same checksum the wire protocol uses, reimplemented here so the sim
    library stays dependency-free. *)
val crc16 : string -> int
