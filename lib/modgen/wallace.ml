module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Bits = Jhdl_logic.Bits

type t = {
  cell : Cell.t;
  latency : int;
  full_width : int;
  stages : int;
  full_adders : int;
  half_adders : int;
}

let expected_product ~a_width ~b_width ~product_width a b =
  let full_width = a_width + b_width in
  let full = a * b in
  if product_width <= full_width then
    Bits.of_int ~width:product_width (full lsr (full_width - product_width))
  else Bits.of_int ~width:product_width full

let create parent ?(name = "wallace") ~a ~b ~product () =
  let wa = Wire.width a and wb = Wire.width b in
  let full_width = wa + wb in
  let cell =
    Cell.composite parent ~name ~type_name:"WallaceTreeMultiplier"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("product", Types.Output, product) ]
      ()
  in
  let zero = Virtex.gnd cell in
  (* partial-product matrix, bucketed by output column *)
  let columns = Array.make full_width [] in
  for j = 0 to wb - 1 do
    for i = 0 to wa - 1 do
      let pp = Wire.create cell ~name:(Printf.sprintf "pp%d_%d" j i) 1 in
      let _ =
        Virtex.and2 cell
          ~name:(Printf.sprintf "ppand%d_%d" j i)
          (Wire.bit a i) (Wire.bit b j) pp
      in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  let full_adders = ref 0 and half_adders = ref 0 and stages = ref 0 in
  (* one Wallace stage: every 3 bits of a column fold into a (3,2)
     counter, a leftover pair into a (2,2); carries land one column up *)
  let reduce_once cols =
    let stage = !stages in
    let next = Array.make full_width [] in
    let fresh k tag idx =
      Wire.create cell ~name:(Printf.sprintf "s%d_c%d_%s%d" stage k tag idx) 1
    in
    Array.iteri
      (fun k bits ->
         let rec go idx = function
           | x :: y :: z :: rest ->
             let s = fresh k "s" idx and c = fresh k "co" idx in
             let _ =
               Adders.full_adder cell
                 ~name:(Printf.sprintf "s%d_c%d_fa%d" stage k idx)
                 ~a:x ~b:y ~ci:z ~s ~co:c ()
             in
             incr full_adders;
             next.(k) <- s :: next.(k);
             if k + 1 < full_width then next.(k + 1) <- c :: next.(k + 1);
             go (idx + 1) rest
           | [ x; y ] ->
             let s = fresh k "hs" idx and c = fresh k "hc" idx in
             let _ =
               Virtex.xor2 cell
                 ~name:(Printf.sprintf "s%d_c%d_hx%d" stage k idx)
                 x y s
             in
             let _ =
               Virtex.and2 cell
                 ~name:(Printf.sprintf "s%d_c%d_ha%d" stage k idx)
                 x y c
             in
             incr half_adders;
             next.(k) <- s :: next.(k);
             if k + 1 < full_width then next.(k + 1) <- c :: next.(k + 1)
           | [ x ] -> next.(k) <- x :: next.(k)
           | [] -> ()
         in
         go 0 bits)
      cols;
    incr stages;
    next
  in
  let rec reduce cols =
    if Array.for_all (fun c -> List.length c <= 2) cols then cols
    else reduce (reduce_once cols)
  in
  let cols = reduce columns in
  (* final two rows, vector-assembled LSB up; empty slots ride the
     shared ground net *)
  let row pick label =
    let bits =
      List.init full_width (fun k ->
          match pick cols.(k) with Some w -> w | None -> zero)
    in
    match bits with
    | [] -> invalid_arg ("Wallace.create: empty " ^ label)
    | lsb :: rest -> List.fold_left (fun acc w -> Wire.concat w acc) lsb rest
  in
  let row_a =
    row (function x :: _ -> Some x | [] -> None) "row_a"
  in
  let row_b =
    row (function _ :: y :: _ -> Some y | _ -> None) "row_b"
  in
  let full = Wire.create cell ~name:"full" full_width in
  let _ =
    Adders.carry_chain cell ~name:"final_add" ~a:row_a ~b:row_b ~sum:full ()
  in
  (* same delivery semantics as the KCM: top bits of the full product
     when the product wire is narrower, zero-extension when wider *)
  let pw = Wire.width product in
  let view =
    if pw <= full_width then
      Wire.slice full ~lo:(full_width - pw) ~hi:(full_width - 1)
    else Wire.concat (Util.fanout_bit zero ~width:(pw - full_width)) full
  in
  Util.buffer cell ~name:"prod" ~from:view ~into:product ();
  { cell; latency = 0; full_width; stages = !stages;
    full_adders = !full_adders; half_adders = !half_adders }
