module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

type t = {
  cell : Cell.t;
  latency : int;
  stages : int;
}

let reference ~dividend_width ~divisor_width a b =
  if b = 0 then
    (* what the restoring array does on a zero divisor: every trial
       subtract succeeds, so the quotient saturates and the remainder
       column shifts the dividend through *)
    ((1 lsl dividend_width) - 1, a land ((1 lsl divisor_width) - 1))
  else (a / b, a mod b)

let create parent ?(name = "divider") ?clk ~dividend ~divisor ~quotient
    ~remainder ~pipelined () =
  let n = Wire.width dividend and m = Wire.width divisor in
  if Wire.width quotient <> n then
    invalid_arg "Divider.create: quotient width must match dividend";
  if Wire.width remainder <> m then
    invalid_arg "Divider.create: remainder width must match divisor";
  let clk =
    match clk, pipelined with
    | Some c, _ -> Some c
    | None, false -> None
    | None, true -> invalid_arg "Divider.create: pipelined mode requires a clock"
  in
  let cell =
    Cell.composite parent ~name ~type_name:"RestoringDivider"
      ~ports:
        ([ ("dividend", Types.Input, dividend);
           ("divisor", Types.Input, divisor);
           ("quotient", Types.Output, quotient);
           ("remainder", Types.Output, remainder) ]
         @ (match clk with Some c -> [ ("clk", Types.Input, c) ] | None -> []))
      ()
  in
  let zero = Virtex.gnd cell in
  let one = Virtex.vcc cell in
  let acc0 = Util.fanout_bit zero ~width:m in
  (* Stage k peels the next dividend bit, MSB first. The shifted partial
     remainder 2*acc + bit is m+1 bits wide, but the top bit is just the
     accumulator's old MSB, so the trial subtract runs on the low m bits
     (inverted divisor, carry-in 1) and the stage's quotient bit — "the
     divisor fit" — is (old MSB) | (carry out): a shifted-out MSB alone
     already exceeds any m-bit divisor. The restore plane muxes the
     shift back in on a miss. Every net is consumed; no dead logic. *)
  let stage k (acc, div_p, rest, q_sofar) =
    let sname s = Printf.sprintf "st%d_%s" k s in
    let rest_w = Wire.width rest in
    let div_bit = Wire.bit rest (rest_w - 1) in
    let shifted_low =
      if m = 1 then div_bit
      else Wire.concat (Wire.slice acc ~lo:0 ~hi:(m - 2)) div_bit
    in
    let shifted_msb = Wire.bit acc (m - 1) in
    let div_inv = Wire.create cell ~name:(sname "dinv") m in
    for i = 0 to m - 1 do
      let _ =
        Virtex.inv cell ~name:(sname (Printf.sprintf "inv%d" i))
          (Wire.bit div_p i) (Wire.bit div_inv i)
      in
      ()
    done;
    let diff = Wire.create cell ~name:(sname "diff") m in
    let no_borrow = Wire.create cell ~name:(sname "noborrow") 1 in
    let _ =
      Adders.carry_chain cell ~name:(sname "trial") ~a:shifted_low ~b:div_inv
        ~sum:diff ~cin:one ~cout:no_borrow ()
    in
    let q_bit = Wire.create cell ~name:(sname "q") 1 in
    let _ = Virtex.or2 cell ~name:(sname "fit") shifted_msb no_borrow q_bit in
    let kept = Wire.create cell ~name:(sname "kept") m in
    for i = 0 to m - 1 do
      let _ =
        Virtex.mux2 cell ~name:(sname (Printf.sprintf "keep%d" i)) ~sel:q_bit
          (Wire.bit shifted_low i) (Wire.bit diff i) (Wire.bit kept i)
      in
      ()
    done;
    let q_next =
      match q_sofar with
      | None -> q_bit
      | Some q -> Wire.concat q q_bit
    in
    let rest_next =
      if rest_w > 1 then Some (Wire.slice rest ~lo:0 ~hi:(rest_w - 2))
      else None
    in
    match clk with
    | Some clk when pipelined ->
      let reg w label =
        let out =
          Wire.create cell ~name:(sname (label ^ "_r")) (Wire.width w)
        in
        Util.register_vector cell ~name:(sname (label ^ "_reg")) ~clk ~d:w
          ~q:out ();
        out
      in
      let last = k = n - 1 in
      (* the divisor and leftover dividend bits only ride the pipe while
         a later stage still reads them *)
      (reg kept "acc",
       (if last then div_p else reg div_p "div"),
       Option.map (fun r -> reg r "divd") rest_next,
       Some (reg q_next "qv"))
    | Some _ | None -> (kept, div_p, rest_next, Some q_next)
  in
  let rec run k (acc, div_p, rest, q_sofar) =
    if k = n then (acc, q_sofar)
    else
      match rest with
      | None -> assert false (* n dividend bits feed n stages *)
      | Some rest -> run (k + 1) (stage k (acc, div_p, rest, q_sofar))
  in
  let acc_f, q_f = run 0 (acc0, divisor, Some dividend, None) in
  let q_f = match q_f with Some q -> q | None -> assert false in
  Util.buffer cell ~name:"quot" ~from:q_f ~into:quotient ();
  Util.buffer cell ~name:"rem" ~from:acc_f ~into:remainder ();
  { cell; latency = (if pipelined then n else 0); stages = n }
