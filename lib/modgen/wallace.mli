(** Wallace-tree multiplier module generator.

    A variable-by-variable unsigned multiplier in the ArithsGen style:
    the AND-gate partial-product matrix is reduced column-wise with
    (3,2) and (2,2) counters — full and half adders — until every
    column holds at most two bits, then one carry-chain adder produces
    the product. Against {!Multiplier.array_mult}'s row of [wb - 1]
    chained adders, the tree's depth grows with [log] of the operand
    width, the classic area/delay trade the catalog lets customers
    compare parameter-by-parameter. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  latency : int;  (** always 0: combinational *)
  full_width : int;  (** [width a + width b] *)
  stages : int;  (** reduction stages instanced *)
  full_adders : int;
  half_adders : int;
}

(** [create parent ~a ~b ~product ()] — unsigned product. Delivery
    follows {!Kcm.create}: the top bits of the full product when
    [product] is narrower than [width a + width b], zero-extension when
    wider. *)
val create :
  Cell.t -> ?name:string -> a:Wire.t -> b:Wire.t -> product:Wire.t -> unit -> t

(** [expected_product ~a_width ~b_width ~product_width a b] — golden
    model with the same delivery truncation. *)
val expected_product :
  a_width:int -> b_width:int -> product_width:int -> int -> int ->
  Jhdl_logic.Bits.t
