(** Restoring-array divider module generator.

    An unsigned divider unrolled one stage per dividend bit, MSB first:
    each stage shifts the next dividend bit into the partial remainder,
    trial-subtracts the divisor on the carry chain (inverted operand,
    carry-in 1, so the chain's carry out is the no-borrow flag), and a
    mux plane restores the pre-subtract value when the divisor did not
    fit. The no-borrow flag is that stage's quotient bit. In pipelined
    mode a register plane follows every stage — latency [width dividend]
    cycles, one division per cycle — the throughput shape a served
    divider IP wants. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  latency : int;  (** [width dividend] when pipelined, else 0 *)
  stages : int;
}

(** [create parent ?clk ~dividend ~divisor ~quotient ~remainder
    ~pipelined ()]. [quotient] must match the dividend's width,
    [remainder] the divisor's. [clk] required when pipelined. A zero
    divisor yields the all-ones quotient (every trial subtract
    "succeeds") — see {!reference}. *)
val create :
  Cell.t ->
  ?name:string ->
  ?clk:Wire.t ->
  dividend:Wire.t ->
  divisor:Wire.t ->
  quotient:Wire.t ->
  remainder:Wire.t ->
  pipelined:bool ->
  unit ->
  t

(** [reference ~dividend_width ~divisor_width a b] — golden
    [(quotient, remainder)], matching the hardware bit-for-bit
    including the zero-divisor case. *)
val reference :
  dividend_width:int -> divisor_width:int -> int -> int -> int * int
