module Metrics = Jhdl_metrics.Metrics

type action =
  | Build
  | Simulate
  | Netlist_export
  | Download

let action_name = function
  | Build -> "build"
  | Simulate -> "simulate"
  | Netlist_export -> "netlist-export"
  | Download -> "download"

type t = {
  limits : (action * int) list;
  counts : (string * action, int) Hashtbl.t;
  (* over-limit attempts: invisible charges are exactly what a vendor
     wants to see, so refusals are tallied per user/action too *)
  denials : (string * action, int) Hashtbl.t;
  mutable denials_counter : Metrics.counter;
}

let create ~limits =
  { limits;
    counts = Hashtbl.create 16;
    denials = Hashtbl.create 16;
    denials_counter = Metrics.counter Metrics.nil "metering_denials_total" }

let register_metrics meter registry =
  meter.denials_counter <- Metrics.counter registry "metering_denials_total"

let used meter ~user action =
  Option.value (Hashtbl.find_opt meter.counts (user, action)) ~default:0

let denied meter ~user action =
  Option.value (Hashtbl.find_opt meter.denials (user, action)) ~default:0

let record meter ~user action =
  let current = used meter ~user action in
  match List.assoc_opt action meter.limits with
  | Some limit when current >= limit ->
    Hashtbl.replace meter.denials (user, action)
      (denied meter ~user action + 1);
    Metrics.incr meter.denials_counter;
    Error current
  | limit ->
    Hashtbl.replace meter.counts (user, action) (current + 1);
    Ok (Option.map (fun l -> l - current - 1) limit)

let report meter =
  (* a user/action pair appears if it was ever used *or* ever denied —
     a licensee stuck at a zero-use cap must still show up *)
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun key _ -> Hashtbl.replace keys key ()) meter.counts;
  Hashtbl.iter (fun key _ -> Hashtbl.replace keys key ()) meter.denials;
  let entries =
    Hashtbl.fold (fun (user, action) () acc -> (user, action) :: acc) keys []
    |> List.sort compare
  in
  let line (user, action) =
    let count = used meter ~user action in
    let cap =
      match List.assoc_opt action meter.limits with
      | Some limit -> Printf.sprintf "/%d" limit
      | None -> ""
    in
    let refusals =
      match denied meter ~user action with
      | 0 -> ""
      | n -> Printf.sprintf " (%d denied)" n
    in
    Printf.sprintf "  %-12s %-16s %d%s%s" user (action_name action) count cap
      refusals
  in
  match entries with
  | [] -> "(no metered activity)\n"
  | entries -> String.concat "\n" (List.map line entries) ^ "\n"
