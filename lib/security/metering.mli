(** Hardware/usage metering, after Koushanfar & Qu (the paper's [6]):
    the vendor counts and caps IP uses per licensee. Applets consult the
    meter before each metered action (build, netlist export), so an
    evaluation license can allow, say, unlimited builds but three netlist
    exports. *)

type t

type action =
  | Build
  | Simulate
  | Netlist_export
  | Download

val action_name : action -> string

(** [create ~limits] — per-action caps; absent action means unlimited. *)
val create : limits:(action * int) list -> t

(** [register_metrics meter registry] — export a
    [metering_denials_total] counter on [registry], incremented on every
    refused over-limit use from then on. *)
val register_metrics : t -> Jhdl_metrics.Metrics.t -> unit

(** [record meter ~user action] — count one use. Returns [Ok remaining]
    (remaining uses after this one, [None] = unlimited) or [Error used]
    when the cap was already reached (the use is not recorded, but the
    denial is tallied — see {!denied}). *)
val record : t -> user:string -> action -> (int option, int) result

(** [used meter ~user action] — uses so far. *)
val used : t -> user:string -> action -> int

(** [denied meter ~user action] — over-limit attempts refused so far.
    Denials also appear in {!report} as a [(n denied)] suffix, and a
    user/action pair that was only ever denied still gets a line. *)
val denied : t -> user:string -> action -> int

(** [report meter] — per-user, per-action usage lines for the vendor. *)
val report : t -> string
