(* Dual-rail BDD cone extraction. The gate rules here mirror the batch
   simulation kernel's word-wise plane rules operation for operation
   (lib/sim/batch.ml) — that correspondence is what makes a pair an
   exact closed form of the simulators' 4-valued semantics, and the
   absint fuzz oracle checks it on every campaign. *)

open Jhdl_circuit
module B = Bdd
module Bit = Jhdl_logic.Bit
module Lut_init = Jhdl_logic.Lut_init

type pair = { p0 : B.t; p1 : B.t }

type leaf =
  | Input of { port : string; bit : int }
  | State of { key : string }
  | Opaque of { net_id : int }

type mode =
  | Full
  | Defined

type state_spec =
  | State_leaf of string
  | State_const of Bit.t

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Leaf allocator                                                      *)

type alloc = {
  aman : B.man;
  mutable leaf_rev : leaf list;
  mutable n_leaves : int;
  by_key : (string, int) Hashtbl.t;
}

let allocator aman =
  { aman; leaf_rev = []; n_leaves = 0; by_key = Hashtbl.create 64 }

let man al = al.aman
let leaves al = Array.of_list (List.rev al.leaf_rev)

let alloc_leaf al leaf =
  let i = al.n_leaves in
  al.n_leaves <- i + 1;
  al.leaf_rev <- leaf :: al.leaf_rev;
  i

let intern al key leaf =
  match Hashtbl.find_opt al.by_key key with
  | Some i -> i
  | None ->
    let i = alloc_leaf al leaf in
    Hashtbl.add al.by_key key i;
    i

(* [dual] selects both planes free (Full mode, and opaque leaves in
   every mode) versus plane 1 pinned false (Defined mode). *)
let pair_from_index al ~dual i =
  let p0 = B.var al.aman (2 * i) in
  let p1 = if dual then B.var al.aman ((2 * i) + 1) else B.zero in
  { p0; p1 }

(* ------------------------------------------------------------------ *)
(* Constant pairs                                                      *)

let const_pair b =
  let code = Bit.to_code b in
  { p0 = (if code land 1 = 1 then B.one else B.zero);
    p1 = (if code land 2 <> 0 then B.one else B.zero) }

let pair_is_const p =
  match (B.is_const p.p0, B.is_const p.p1) with
  | Some b0, Some b1 ->
    Some (Bit.of_code ((if b0 then 1 else 0) lor (if b1 then 2 else 0)))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Gate rules (batch.ml plane rules, word ops replaced by BDD ops)     *)

(* mux4 sel a b: a when sel=Zero, b when sel=One, X-or-agreement
   otherwise — the kernel's universal selector. *)
let mux4 m s a b =
  let zs = B.and_ m (B.not_ m s.p0) (B.not_ m s.p1) in
  let os = B.and_ m s.p0 (B.not_ m s.p1) in
  let su = B.not_ m (B.or_ m zs os) in
  let eq =
    B.and_ m
      (B.not_ m (B.xor m a.p0 b.p0))
      (B.and_ m (B.not_ m a.p1) (B.not_ m b.p1))
  in
  let m0 =
    B.or_ m
      (B.or_ m (B.and_ m zs a.p0) (B.and_ m os b.p0))
      (B.and_ m (B.and_ m su eq) a.p0)
  in
  let m1 =
    B.or_ m
      (B.or_ m (B.and_ m zs a.p1) (B.and_ m os b.p1))
      (B.and_ m su (B.not_ m eq))
  in
  { p0 = m0; p1 = m1 }

(* Possibility products: prod.(j) is "the inputs can select entry j",
   with bit i of j owned by input i. *)
let build_products m (ins : pair array) root =
  let k = Array.length ins in
  let prod = Array.make (1 lsl k) B.zero in
  prod.(0) <- root;
  let width = ref 1 in
  for i = k - 1 downto 0 do
    let v = ins.(i) in
    let hi = B.or_ m v.p0 v.p1 in
    let lo = B.or_ m (B.not_ m v.p0) v.p1 in
    for j = !width - 1 downto 0 do
      let t = prod.(j) in
      prod.(2 * j) <- B.and_ m t lo;
      prod.((2 * j) + 1) <- B.and_ m t hi
    done;
    width := !width * 2
  done;
  prod

let lut_eval m init ins =
  let tbl = Lut_init.to_int init in
  let prod = build_products m ins B.one in
  let can0 = ref B.zero and can1 = ref B.zero in
  Array.iteri
    (fun j p ->
       if (tbl lsr j) land 1 = 1 then can1 := B.or_ m !can1 p
       else can0 := B.or_ m !can0 p)
    prod;
  { p0 = B.and_ m !can1 (B.not_ m !can0); p1 = B.and_ m !can1 !can0 }

let xorcy_eval m li ci =
  let r1 = B.or_ m li.p1 ci.p1 in
  { p0 = B.and_ m (B.xor m li.p0 ci.p0) (B.not_ m r1); p1 = r1 }

let mult_and_eval m a b =
  let def1 p = B.and_ m p.p0 (B.not_ m p.p1) in
  let def0 p = B.not_ m (B.or_ m p.p0 p.p1) in
  let ones = B.and_ m (def1 a) (def1 b) in
  let zeros = B.or_ m (def0 a) (def0 b) in
  { p0 = ones; p1 = B.not_ m (B.or_ m zeros ones) }

let inv_eval m a =
  { p0 = B.not_ m (B.or_ m a.p0 a.p1); p1 = a.p1 }

(* 16-cell possibility-set read shared by SRL16E taps and RAM16X1S. *)
let mem_read m (addrs : pair array) (cells : pair array) =
  let au = Array.fold_left (fun acc a -> B.or_ m acc a.p1) B.zero addrs in
  let da = B.not_ m au in
  let prod = build_products m addrs B.one in
  let ones = ref B.zero
  and zeros = ref B.zero
  and undef = ref B.zero
  and zeds = ref B.zero in
  Array.iteri
    (fun j p ->
       let v = cells.(j) in
       let pv0 = B.and_ m p v.p0 and pv1 = B.and_ m p v.p1 in
       ones := B.or_ m !ones (B.and_ m pv0 (B.not_ m v.p1));
       zeros := B.or_ m !zeros (B.and_ m p (B.not_ m (B.or_ m v.p0 v.p1)));
       undef := B.or_ m !undef pv1;
       zeds := B.or_ m !zeds (B.and_ m pv0 v.p1))
    prod;
  let r0d = B.and_ m da (B.or_ m !ones !zeds) in
  let r1d = B.and_ m da !undef in
  let nu = B.not_ m !undef in
  let u1 = B.and_ m au (B.and_ m !ones (B.and_ m (B.not_ m !zeros) nu)) in
  let u0 = B.and_ m au (B.and_ m !zeros (B.and_ m (B.not_ m !ones) nu)) in
  { p0 = B.or_ m r0d u1;
    p1 = B.or_ m r1d (B.and_ m au (B.not_ m (B.or_ m u0 u1))) }

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)

type t = {
  al : alloc;
  tdesign : Design.t;
  tmode : mode;
  values : (int, pair) Hashtbl.t;
  states : (int, pair array) Hashtbl.t;  (* cell_id -> current-state pairs *)
  mutable n_cuts : int;
  mutable n_opaque : int;
}

let design t = t.tdesign
let alloc t = t.al
let mode t = t.tmode
let cuts t = t.n_cuts
let opaque_leaves t = t.n_opaque

let init_bits (s : Levelize.source) =
  match s.Levelize.prim with
  | Prim.Ff { init; _ } -> [| init |]
  | Prim.Srl16 { init } | Prim.Ram16x1 { init } ->
    Array.init 16 (fun i -> Bit.of_bool ((init lsr i) land 1 = 1))
  | _ -> invalid_arg "Cone.init_bits: combinational source"

let opaque_pair t (net : Types.net) =
  t.n_opaque <- t.n_opaque + 1;
  let i = alloc_leaf t.al (Opaque { net_id = net.Types.net_id }) in
  pair_from_index t.al ~dual:true i

let set_net t (net : Types.net) p = Hashtbl.replace t.values net.Types.net_id p
let have_net t (net : Types.net) = Hashtbl.mem t.values net.Types.net_id

let pair_of_net t (net : Types.net) =
  match Hashtbl.find_opt t.values net.Types.net_id with
  | Some v -> v
  | None ->
    (* undriven nets read as constant X, as in the simulators; a
       driven-but-unvisited net would be a walk defect — cut it so the
       result stays sound and the gap visible *)
    let v =
      if net.Types.driver = None && net.Types.extra_drivers = [] then
        const_pair Bit.X
      else begin
        t.n_cuts <- t.n_cuts + 1;
        opaque_pair t net
      end
    in
    set_net t net v;
    v

let in_net (s : Levelize.source) port =
  match List.assoc_opt port s.Levelize.in_ports with
  | Some a when Array.length a > 0 -> a.(0)
  | _ -> raise (Unsupported (Prim.name s.Levelize.prim ^ ": missing " ^ port))

(* Single-output combinational gate evaluation, shared between the
   forward pass and the observability re-evaluation probe. *)
let eval_comb_prim m (s : Levelize.source) vf =
  match s.Levelize.prim with
  | Prim.Lut init ->
    let k = Lut_init.inputs init in
    let ins =
      Array.init k (fun i -> vf (in_net s (Printf.sprintf "I%d" i)))
    in
    Some (lut_eval m init ins)
  | Prim.Muxcy ->
    Some (mux4 m (vf (in_net s "S")) (vf (in_net s "DI")) (vf (in_net s "CI")))
  | Prim.Xorcy -> Some (xorcy_eval m (vf (in_net s "LI")) (vf (in_net s "CI")))
  | Prim.Mult_and ->
    Some (mult_and_eval m (vf (in_net s "I0")) (vf (in_net s "I1")))
  | Prim.Buf -> Some (vf (in_net s "I"))
  | Prim.Inv -> Some (inv_eval m (vf (in_net s "I")))
  | Prim.Gnd -> Some (const_pair Bit.Zero)
  | Prim.Vcc -> Some (const_pair Bit.One)
  | Prim.Ff _ | Prim.Srl16 _ | Prim.Ram16x1 _ | Prim.Black_box _ -> None

let addr_pairs t s =
  Array.init 4 (fun i -> pair_of_net t (in_net s (Printf.sprintf "A%d" i)))

let default_state s cell =
  State_leaf (Printf.sprintf "%s#%d" (Cell.path s.Levelize.inst) cell)

let analyze ?(mode = Full) ?budget ?alloc:al0 ?(state = default_state) dsn =
  let al =
    match al0 with Some a -> a | None -> allocator (B.create ?budget ())
  in
  let t =
    { al;
      tdesign = dsn;
      tmode = mode;
      values = Hashtbl.create 256;
      states = Hashtbl.create 32;
      n_cuts = 0;
      n_opaque = 0 }
  in
  let m = al.aman in
  let dual = mode = Full in
  let sources = Levelize.sources_of_root (Design.root dsn) in
  let order, _, _ = Levelize.levelize sources in
  (* contended nets are pinned opaque before anything reads them,
     mirroring Const_prop's pessimistic pinning *)
  List.iter
    (fun (n : Types.net) ->
       if n.Types.extra_drivers <> [] then set_net t n (opaque_pair t n))
    (Design.all_nets dsn);
  (* input-port bits become shared leaves; a driven input net is
     contention and stays opaque *)
  List.iter
    (fun (p : Design.port) ->
       Array.iteri
         (fun bit net ->
            if not (have_net t net) then
              if net.Types.driver <> None then set_net t net (opaque_pair t net)
              else begin
                let key = Printf.sprintf "in:%s:%d" p.Design.port_name bit in
                let i =
                  intern al key (Input { port = p.Design.port_name; bit })
                in
                set_net t net (pair_from_index al ~dual i)
              end)
         p.Design.port_wire.Types.nets)
    (Design.inputs dsn);
  let get_states s =
    let cid = s.Levelize.inst.Types.cell_id in
    match Hashtbl.find_opt t.states cid with
    | Some a -> a
    | None ->
      let a =
        Array.mapi
          (fun cell _ ->
             match state s cell with
             | State_const b -> const_pair b
             | State_leaf k ->
               let i = intern al ("st:" ^ k) (State { key = k }) in
               pair_from_index al ~dual i)
          (init_bits s)
      in
      Hashtbl.add t.states cid a;
      a
  in
  let czero = const_pair Bit.Zero in
  let set_out s p =
    match s.Levelize.out_ports with
    | (_, nets) :: _ when Array.length nets > 0 ->
      if not (have_net t nets.(0)) then set_net t nets.(0) p
    | _ -> ()
  in
  let eval_source s =
    match s.Levelize.prim with
    | Prim.Ff { async_clear; _ } ->
      let st = get_states s in
      let q =
        if async_clear then
          mux4 m (pair_of_net t (in_net s "CLR")) st.(0) czero
        else st.(0)
      in
      set_out s q
    | Prim.Srl16 _ ->
      let st = get_states s in
      set_out s (mem_read m (addr_pairs t s) st)
    | Prim.Ram16x1 _ ->
      let st = get_states s in
      set_out s (mem_read m (addr_pairs t s) st)
    | Prim.Black_box _ ->
      List.iter
        (fun (_, nets) ->
           Array.iter
             (fun n -> if not (have_net t n) then set_net t n (opaque_pair t n))
             nets)
        s.Levelize.out_ports
    | _ ->
      (match eval_comb_prim m s (pair_of_net t) with
       | Some p -> set_out s p
       | None -> ())
  in
  Array.iter
    (fun s ->
       try eval_source s
       with B.Budget_exceeded ->
         (* cut the cone: this source's outputs become fresh opaque
            leaves and the pass continues *)
         t.n_cuts <- t.n_cuts + 1;
         List.iter
           (fun (_, nets) ->
              Array.iter
                (fun n ->
                   if not (have_net t n) then set_net t n (opaque_pair t n))
                nets)
           s.Levelize.out_ports)
    order;
  t

let output_pairs t =
  List.map
    (fun (p : Design.port) ->
       ( p.Design.port_name,
         Array.map (pair_of_net t) p.Design.port_wire.Types.nets ))
    (Design.outputs t.tdesign)

let state_pairs t (s : Levelize.source) =
  match Hashtbl.find_opt t.states s.Levelize.inst.Types.cell_id with
  | Some a -> a
  | None -> raise Not_found

let next_state t (s : Levelize.source) =
  let m = t.al.aman in
  let czero = const_pair Bit.Zero and cone_ = const_pair Bit.One in
  match s.Levelize.prim with
  | Prim.Ff { clock_enable; async_clear; sync_reset; _ } ->
    let st = state_pairs t s in
    let d = pair_of_net t (in_net s "D") in
    let ce = if clock_enable then pair_of_net t (in_net s "CE") else cone_ in
    let r = if sync_reset then pair_of_net t (in_net s "R") else czero in
    let clr = if async_clear then pair_of_net t (in_net s "CLR") else czero in
    let loaded = mux4 m r d czero in
    let held = mux4 m ce st.(0) loaded in
    [| mux4 m clr held czero |]
  | Prim.Srl16 _ ->
    let st = state_pairs t s in
    let ce = pair_of_net t (in_net s "CE") in
    let d = pair_of_net t (in_net s "D") in
    Array.init 16 (fun i ->
        let shifted = if i = 0 then d else st.(i - 1) in
        mux4 m ce st.(i) shifted)
  | Prim.Ram16x1 _ ->
    let st = state_pairs t s in
    let we = pair_of_net t (in_net s "WE") in
    let d = pair_of_net t (in_net s "D") in
    let addrs = addr_pairs t s in
    let au = Array.fold_left (fun acc a -> B.or_ m acc a.p1) B.zero addrs in
    let we_one = B.and_ m we.p0 (B.not_ m we.p1) in
    let clobber = B.or_ m we.p1 (B.and_ m we_one au) in
    let wen = B.and_ m we_one (B.not_ m au) in
    let prod = build_products m addrs wen in
    Array.init 16 (fun j ->
        let w = prod.(j) in
        let keep = B.not_ m (B.or_ m w clobber) in
        { p0 = B.or_ m (B.and_ m w d.p0) (B.and_ m keep st.(j).p0);
          p1 =
            B.or_ m
              (B.or_ m (B.and_ m w d.p1) clobber)
              (B.and_ m keep st.(j).p1) })
  | _ -> invalid_arg "Cone.next_state: combinational source"

let probe_pair al =
  let i = alloc_leaf al (Opaque { net_id = -1 }) in
  { p0 = B.var al.aman (2 * i); p1 = B.zero }

let pair_support_leaves t p =
  let ls = leaves t.al in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v -> Hashtbl.replace seen (v / 2) ())
    (B.support p.p0 @ B.support p.p1);
  Hashtbl.fold (fun i () acc -> i :: acc) seen []
  |> List.sort compare
  |> List.map (fun i -> ls.(i))

let reeval_comb t (s : Levelize.source) ~subst =
  let vf net =
    match subst net with Some p -> p | None -> pair_of_net t net
  in
  eval_comb_prim t.al.aman s vf

let eval_pair t p f =
  let ls = leaves t.al in
  let env v =
    let code = Bit.to_code (f ls.(v / 2)) in
    (code lsr (v land 1)) land 1 = 1
  in
  let b0 = B.eval p.p0 env and b1 = B.eval p.p1 env in
  Bit.of_code ((if b0 then 1 else 0) lor (if b1 then 2 else 0))
