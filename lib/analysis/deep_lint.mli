(** Analysis-backed lint rules (the [L5xx] range).

    These rules need the BDD cone engine, so they live here rather
    than in {!Jhdl_lint.Lint} — the base engine stays dependency-light
    while [lint_tool --deep] merges both reports through the same
    text/JSON renderers:

    - [L501] {e provable-constant-net} — a net the abstract
      interpreter proves constant (always, or whenever its fan-in
      leaves are defined) that {!Jhdl_lint.Const_prop} reports as
      varying: [x XOR x], equal-arm muxes, cancelled carry chains.
    - [L502] {e redundant-cell-pair} — combinational cells whose cone
      pairs hash-cons to the same nodes: a BDD proof that they compute
      identical 4-valued functions.
    - [L503] {e unobservable-cone} — cells that structurally reach an
      output but provably cannot affect any output port for defined
      inputs (constant-selected muxes, masked logic).

    All three default to [Info]: they are optimization opportunities,
    not defects, and never fail an [--fail-on error] gate by default. *)

val rules : Jhdl_lint.Lint.rule_info list
(** The deep registry, id order — append to {!Jhdl_lint.Lint.rules}
    for [--rules] listings. *)

val run :
  ?config:Jhdl_lint.Lint.config ->
  ?budget:int ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  Jhdl_circuit.Design.t ->
  Jhdl_lint.Lint.report
(** Deep diagnostics only, honouring [config]'s only/disabled/override
    /cap settings exactly like the base engine. [budget] bounds BDD
    nodes (overflowing cones degrade to fewer findings, never wrong
    ones). [metrics] registers the manager's node/cache probes.
    Designs with combinational cycles yield an empty report — the base
    engine already diagnoses those. *)

val merge :
  ?max_diagnostics:int ->
  Jhdl_lint.Lint.report ->
  Jhdl_lint.Lint.report ->
  Jhdl_lint.Lint.report
(** [merge base deep] — one report for the renderers: base rules
    first, then deep, re-capped when [max_diagnostics] is given. *)
