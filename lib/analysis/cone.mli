(** Cone extraction: a whole {!Jhdl_circuit.Design} as dual-rail BDDs.

    Every net of the design gets a {e pair} of BDDs mirroring
    {!Jhdl_sim.Simulator.Batch}'s two bit-plane encoding of the
    4-valued codes: [(p0, p1)] with Zero=(0,0), One=(1,0), X=(0,1),
    Z=(1,1). The forward pass walks the shared {!Levelize} order and
    applies {e exactly} the batch kernel's word-wise gate rules —
    possibility-set LUT lookup, the three-input [mux4], XORCY poison
    planes, memory-read possibility products — so a cone pair is a
    closed-form description of what the simulators compute, not an
    approximation of it. The [absint] fuzz oracle holds the two
    accountable to each other.

    Leaves are the free inputs of the cone: top-level input-port bits,
    sequential state cells, and {e opaque} cut-points (contended nets,
    black-box outputs, and cones abandoned when the node budget
    overflows). Leaf [i] owns BDD variables [2i] (plane 0) and
    [2i + 1] (plane 1); inputs are allocated in port-declaration
    order, then state and opaque leaves in Levelize-walk discovery
    order.

    Two modes select what the leaves range over:
    - {!Full}: both planes free — pairs describe the exact 4-valued
      function of arbitrary (even X/Z) leaf values.
    - {!Defined}: input and state leaves get a single plane-0
      variable with plane 1 pinned to false — pairs describe
      behaviour when every leaf holds a defined 0/1 value, which is
      what vector sweeps exercise and what defined-input equivalence
      means. Opaque leaves stay dual-rail in both modes.

    Sharing an {!alloc} between two analyses (same manager, same leaf
    keys) makes their pairs directly comparable: physical equality of
    pairs is functional equality — the basis of {!Jhdl_verify}'s
    [Proved] result. *)

open Jhdl_circuit

type pair = { p0 : Bdd.t; p1 : Bdd.t }
(** Plane 0 holds bit 0 of the {!Jhdl_logic.Bit.to_code}, plane 1 bit 1. *)

type leaf =
  | Input of { port : string; bit : int }
  | State of { key : string }
      (** one sequential state cell; [key] identifies it for sharing *)
  | Opaque of { net_id : int }
      (** cut-point: contended net, black-box output, or budget cut *)

type mode =
  | Full
  | Defined

type state_spec =
  | State_leaf of string
      (** free leaf under this sharing key (equal keys — even across
          designs on a shared allocator — mean "assumed equal") *)
  | State_const of Jhdl_logic.Bit.t
      (** hypothesis: the cell always holds this value (the abstract
          interpreter's reachable-state refinement supplies these) *)

(** {1 Leaf allocator} *)

type alloc

val allocator : Bdd.man -> alloc
val man : alloc -> Bdd.man

val leaves : alloc -> leaf array
(** Leaf [i] of the result owns variables [2i] and [2i + 1]. *)

(** {1 Analysis} *)

type t

exception Unsupported of string
(** Raised for designs outside the engine's scope (none currently —
    black boxes degrade to opaque leaves — but callers must be ready). *)

val analyze :
  ?mode:mode ->
  ?budget:int ->
  ?alloc:alloc ->
  ?state:(Levelize.source -> int -> state_spec) ->
  Design.t ->
  t
(** [analyze design] runs the forward pass. [mode] defaults to {!Full}.
    [budget] bounds BDD nodes when no [alloc] is supplied (a fresh
    manager is created); overflowing cones are cut to opaque leaves
    and counted in {!cuts}, and the pass continues. [state] chooses
    per state cell (argument: its {!Levelize.source} and cell index)
    between a shared leaf and a constant hypothesis; the default is a
    design-local leaf per cell. Raises {!Levelize.Cycle} on
    combinational cycles. *)

val design : t -> Design.t
val alloc : t -> alloc
val mode : t -> mode

val cuts : t -> int
(** Budget (and defect) cut-points taken; [0] means every pair is
    exact. Contended nets and black-box outputs are opaque by design
    and not counted here. *)

val opaque_leaves : t -> int
(** Total opaque leaves this analysis introduced (cuts included). *)

val pair_of_net : t -> Types.net -> pair
(** Undriven nets read as constant X, exactly as in the simulators. *)

val output_pairs : t -> (string * pair array) list
(** Output ports in declaration order, pairs per bit (LSB first). *)

val state_pairs : t -> Levelize.source -> pair array
(** The {e current-state} pairs backing a sequential source's cells
    (1 for FF, 16 for SRL16E/RAM16X1S), as chosen by [state]. Raises
    [Not_found] for combinational sources. *)

val next_state : t -> Levelize.source -> pair array
(** Next-state pairs after one clock edge, mirroring the batch
    kernel's edge rules (FD* load chain, SRL shift, RAM write). *)

val init_bits : Levelize.source -> Jhdl_logic.Bit.t array
(** INIT value per state cell of a sequential source. *)

val probe_pair : alloc -> pair
(** A fresh single-variable (defined) probe pair: substitute it for an
    input net and test the recomputed output's support for its
    variable — the observability pass's counterfactual relevance
    check. *)

val pair_support_leaves : t -> pair -> leaf list
(** Distinct leaves in the support of either plane, ascending by
    allocation index. *)

val reeval_comb : t -> Levelize.source -> subst:(Types.net -> pair option) -> pair option
(** [reeval_comb t s ~subst] recomputes a purely combinational
    source's single output pair with [subst] overriding input-net
    pairs — the observability pass's local-relevance probe. [None]
    for sequential sources, black boxes, and multi-output prims. *)

(** {1 Concrete evaluation} *)

val eval_pair : t -> pair -> (leaf -> Jhdl_logic.Bit.t) -> Jhdl_logic.Bit.t
(** Evaluate a pair under concrete leaf values ({!Full}-mode analyses
    only — {!Defined} pairs assume defined leaves by construction). *)

val const_pair : Jhdl_logic.Bit.t -> pair
(** The constant pair of a bit ([Leaf] terminals only). *)

val pair_is_const : pair -> Jhdl_logic.Bit.t option
