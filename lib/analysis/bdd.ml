(* Hash-consed ROBDDs. See bdd.mli for the design notes. *)

type t =
  | Leaf of bool
  | Node of { id : int; var : int; lo : t; hi : t }

type man = {
  unique : (int * int * int, t) Hashtbl.t;
  cache : (int * int * int, t) Hashtbl.t;
  deps : (int * int, bool) Hashtbl.t;
  budget : int;
  mutable next_id : int;
  mutable created : int;
  mutable lookups : int;
  mutable hits : int;
}

exception Budget_exceeded

let zero = Leaf false
let one = Leaf true

let id = function
  | Leaf false -> 0
  | Leaf true -> 1
  | Node n -> n.id

let top_var = function
  | Leaf _ -> max_int
  | Node n -> n.var

(* Shannon cofactors with respect to [v], which must be <= the node's
   top variable. *)
let cof v t =
  match t with
  | Node n when n.var = v -> (n.lo, n.hi)
  | _ -> (t, t)

let create ?(budget = max_int) () =
  { unique = Hashtbl.create 1024;
    cache = Hashtbl.create 1024;
    deps = Hashtbl.create 1024;
    budget;
    next_id = 2;
    created = 0;
    lookups = 0;
    hits = 0 }

let mk ~checked m var lo hi =
  if lo == hi then lo
  else begin
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if checked && m.created >= m.budget then raise Budget_exceeded;
      let n = Node { id = m.next_id; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      m.created <- m.created + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk ~checked:false m i zero one

(* Binary apply with a shared memo cache. Operations are tagged so one
   table serves them all; AND/OR/XOR are commutative, so operand ids
   are normalized ascending to double the hit-rate. *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op a b =
  let terminal =
    match op with
    | 0 ->
      if a == zero || b == zero then Some zero
      else if a == one then Some b
      else if b == one then Some a
      else if a == b then Some a
      else None
    | 1 ->
      if a == one || b == one then Some one
      else if a == zero then Some b
      else if b == zero then Some a
      else if a == b then Some a
      else None
    | _ ->
      if a == b then Some zero
      else if a == zero then Some b
      else if b == zero then Some a
      else None
  in
  match terminal with
  | Some r -> r
  | None ->
    let ia = id a and ib = id b in
    let key = if ia <= ib then (op, ia, ib) else (op, ib, ia) in
    m.lookups <- m.lookups + 1;
    (match Hashtbl.find_opt m.cache key with
     | Some r ->
       m.hits <- m.hits + 1;
       r
     | None ->
       let v = min (top_var a) (top_var b) in
       let a0, a1 = cof v a and b0, b1 = cof v b in
       let lo = apply m op a0 b0 in
       let hi = apply m op a1 b1 in
       let r = mk ~checked:true m v lo hi in
       Hashtbl.add m.cache key r;
       r)

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor m a b = apply m op_xor a b
let not_ m a = apply m op_xor one a

let ite m s a b =
  (* if s then a else b, via the cached binary ops: s&a | ~s&b *)
  or_ m (and_ m s a) (and_ m (not_ m s) b)

let equal a b = a == b

let is_const = function
  | Leaf b -> Some b
  | Node _ -> None

let rec eval t env =
  match t with
  | Leaf b -> b
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let support t =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

(* Ordered-BDD pruning (vars strictly increase along every path) plus a
   persistent per-manager memo: across a whole observability pass each
   distinct node is classified once per probe variable, so thousands of
   probes against shared cones cost one walk of the live node set. *)
let rec depends_on m t v =
  match t with
  | Leaf _ -> false
  | Node n ->
    if n.var = v then true
    else if n.var > v then false
    else begin
      let key = (n.id, v) in
      match Hashtbl.find_opt m.deps key with
      | Some r -> r
      | None ->
        let r = depends_on m n.lo v || depends_on m n.hi v in
        Hashtbl.add m.deps key r;
        r
    end

let any_sat t =
  (* every internal node of a reduced BDD has a path to [one] *)
  let rec go acc = function
    | Leaf true -> Some (List.rev acc)
    | Leaf false -> None
    | Node n ->
      (match go ((n.var, false) :: acc) n.lo with
       | Some _ as r -> r
       | None -> go ((n.var, true) :: acc) n.hi)
  in
  go [] t

let size t =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

let nodes_created m = m.created
let cache_lookups m = m.lookups
let cache_hits m = m.hits

let register_metrics m registry =
  let module M = Jhdl_metrics.Metrics in
  M.probe registry "bdd_nodes_total" (fun () -> m.created);
  M.probe registry "bdd_cache_lookups_total" (fun () -> m.lookups);
  M.probe registry "bdd_cache_hits_total" (fun () -> m.hits)
