(* Analysis-backed lint rules (L5xx). These live above Jhdl_lint — the
   lint engine stays dependency-light, the BDD rules plug their
   diagnostics into the same report/renderer conventions. *)

open Jhdl_circuit
module Lint = Jhdl_lint.Lint
module Const_prop = Jhdl_lint.Const_prop
module Bit = Jhdl_logic.Bit

let l501 =
  { Lint.id = "L501";
    name = "provable-constant-net";
    default_severity = Lint.Info;
    doc =
      "Net is provably constant by BDD cone analysis but invisible to \
       constant propagation (e.g. x XOR x, a mux with equal arms)." }

let l502 =
  { Lint.id = "L502";
    name = "redundant-cell-pair";
    default_severity = Lint.Info;
    doc =
      "Two or more combinational cells compute the same 4-valued \
       function of the same leaves (hash-consed cone pairs coincide); \
       all but one can be removed." }

let l503 =
  { Lint.id = "L503";
    name = "unobservable-cone";
    default_severity = Lint.Info;
    doc =
      "Cell is structurally connected toward an output but provably \
       cannot affect any output port for defined inputs." }

let rules = [ l501; l502; l503 ]

let net_label (n : Types.net) =
  match n.Types.source_wire with
  | Some w -> Printf.sprintf "%s[%d]" (Wire.full_name w) n.Types.source_bit
  | None -> Printf.sprintf "net#%d" n.Types.net_id

let diag (info : Lint.rule_info) ?(cells = []) ?(nets = []) message =
  { Lint.rule_id = info.Lint.id;
    rule_name = info.Lint.name;
    severity = info.Lint.default_severity;
    message;
    cells;
    nets }

let driver_cell (n : Types.net) =
  match n.Types.driver with
  | Some t -> Some t.Types.term_cell
  | None -> None

let check_constants absint cp =
  List.filter_map
    (fun (c : Absint.claim_info) ->
       let n = c.Absint.net in
       let trivially_const =
         match driver_cell n with
         | Some cell ->
           (match cell.Types.kind with
            | Types.Primitive (Prim.Gnd | Prim.Vcc) -> true
            | _ -> false)
         | None -> true
       in
       if trivially_const then None
       else
         match (c.Absint.claim, Const_prop.net_value cp n) with
         | _, Const_prop.Const _ -> None  (* const-prop sees it already *)
         | Absint.Always b, _ when Bit.is_defined b ->
           Some
             (diag l501
                ~cells:
                  (match driver_cell n with
                   | Some cell -> [ Cell.path cell ]
                   | None -> [])
                ~nets:[ net_label n ]
                (Printf.sprintf
                   "net %s is provably constant %c under every stimulus; \
                    constant propagation reports it as varying"
                   (net_label n) (Bit.to_char b)))
         | Absint.When_defined b, _ when Bit.is_defined b ->
           Some
             (diag l501
                ~cells:
                  (match driver_cell n with
                   | Some cell -> [ Cell.path cell ]
                   | None -> [])
                ~nets:[ net_label n ]
                (Printf.sprintf
                   "net %s is provably constant %c whenever its %d fan-in \
                    leaves are defined; constant propagation reports it as \
                    varying"
                   (net_label n) (Bit.to_char b)
                   (List.length c.Absint.gate)))
         | _ -> None)
    (Absint.claims absint)

let check_redundant absint =
  let full = Absint.cone_full absint in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (s : Levelize.source) ->
       let interesting =
         match s.Levelize.prim with
         | Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Inv ->
           true
         | _ -> false  (* BUFs copy their input; GND/VCC are L501's domain *)
       in
       if interesting then
         match s.Levelize.out_ports with
         | (_, nets) :: _ when Array.length nets > 0 ->
           let n = nets.(0) in
           if n.Types.extra_drivers = [] then begin
             let p = Cone.pair_of_net full n in
             if Cone.pair_is_const p = None then begin
               let key = (Bdd.id p.Cone.p0, Bdd.id p.Cone.p1) in
               let prev =
                 Option.value ~default:[] (Hashtbl.find_opt groups key)
               in
               Hashtbl.replace groups key ((s, n) :: prev)
             end
           end
         | _ -> ())
    (Levelize.sources_of_root (Design.root (Absint.design absint)));
  Hashtbl.fold (fun _ members acc -> members :: acc) groups []
  |> List.filter (fun members -> List.length members >= 2)
  |> List.map (fun members ->
      let members = List.rev members in
      let cells =
        List.map
          (fun ((s : Levelize.source), _) -> Cell.path s.Levelize.inst)
          members
      in
      let nets = List.map (fun (_, n) -> net_label n) members in
      diag l502 ~cells ~nets
        (Printf.sprintf
           "%d cells compute the same 4-valued function (BDD-proved): %s"
           (List.length members)
           (String.concat ", " cells)))
  |> List.sort (fun a b -> compare a.Lint.cells b.Lint.cells)

let check_unobservable absint =
  let design = Absint.design absint in
  (* structural liveness: nets on some undirected driver path from an
     output port — cells outside it are plain dead logic (L008's
     business), not an analysis result worth repeating *)
  let live = Hashtbl.create 256 in
  let queue = Queue.create () in
  let mark (n : Types.net) =
    if not (Hashtbl.mem live n.Types.net_id) then begin
      Hashtbl.replace live n.Types.net_id ();
      Queue.add n queue
    end
  in
  let src_of = Hashtbl.create 64 in
  let sources = Levelize.sources_of_root (Design.root design) in
  List.iter
    (fun (s : Levelize.source) ->
       Hashtbl.replace src_of s.Levelize.inst.Types.cell_id s)
    sources;
  List.iter
    (fun (p : Design.port) ->
       Array.iter mark p.Design.port_wire.Types.nets)
    (Design.outputs design);
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun (t : Types.terminal) ->
         match Hashtbl.find_opt src_of t.Types.term_cell.Types.cell_id with
         | None -> ()
         | Some s ->
           List.iter
             (fun (_, nets) -> Array.iter mark nets)
             s.Levelize.in_ports)
      (match n.Types.driver with
       | Some d -> d :: n.Types.extra_drivers
       | None -> n.Types.extra_drivers)
  done;
  List.filter_map
    (fun (s : Levelize.source) ->
       let outs =
         List.concat_map
           (fun (_, nets) -> Array.to_list nets)
           s.Levelize.out_ports
       in
       let structurally_live =
         List.exists (fun n -> Hashtbl.mem live n.Types.net_id) outs
       in
       let unobservable =
         outs <> []
         && List.for_all (fun n -> not (Absint.observable absint n)) outs
       in
       if structurally_live && unobservable then
         Some
           (diag l503
              ~cells:[ Cell.path s.Levelize.inst ]
              ~nets:(List.map net_label outs)
              (Printf.sprintf
                 "cell %s reaches an output structurally but provably \
                  cannot affect any output port for defined inputs"
                 (Cell.path s.Levelize.inst)))
       else None)
    sources

let apply_config (config : Lint.config) diags =
  let enabled (d : Lint.diagnostic) =
    (match config.Lint.only with
     | Some ids -> List.mem d.Lint.rule_id ids
     | None -> true)
    && not (List.mem d.Lint.rule_id config.Lint.disabled)
  in
  let override (d : Lint.diagnostic) =
    match List.assoc_opt d.Lint.rule_id config.Lint.overrides with
    | Some sev -> { d with Lint.severity = sev }
    | None -> d
  in
  let diags = List.map override (List.filter enabled diags) in
  let n = List.length diags in
  if n <= config.Lint.max_diagnostics then (diags, 0)
  else
    ( List.filteri (fun i _ -> i < config.Lint.max_diagnostics) diags,
      n - config.Lint.max_diagnostics )

let run ?(config = Lint.default_config) ?budget ?metrics design =
  match
    let absint = Absint.analyze ?budget design in
    (match metrics with
     | Some registry ->
       Bdd.register_metrics (Cone.man (Cone.alloc (Absint.cone_full absint)))
         registry
     | None -> ());
    let cp = Const_prop.analyze design in
    check_constants absint cp @ check_redundant absint
    @ check_unobservable absint
  with
  | diags ->
    let diagnostics, dropped = apply_config config diags in
    { Lint.design = Design.name design; diagnostics; dropped }
  | exception Levelize.Cycle _ ->
    (* the base engine reports combinational cycles; nothing sound to
       analyse here *)
    { Lint.design = Design.name design; diagnostics = []; dropped = 0 }

let merge ?max_diagnostics (base : Lint.report) (deep : Lint.report) =
  let diagnostics = base.Lint.diagnostics @ deep.Lint.diagnostics in
  let dropped = base.Lint.dropped + deep.Lint.dropped in
  match max_diagnostics with
  | Some cap when List.length diagnostics > cap ->
    { Lint.design = base.Lint.design;
      diagnostics = List.filteri (fun i _ -> i < cap) diagnostics;
      dropped = dropped + (List.length diagnostics - cap) }
  | _ -> { Lint.design = base.Lint.design; diagnostics; dropped }
