(* Exact constant/X/observability analysis on top of the cone engine.
   See absint.mli for the claim semantics. *)

open Jhdl_circuit
module B = Bdd
module Bit = Jhdl_logic.Bit

type claim =
  | Always of Bit.t
  | When_defined of Bit.t

type claim_info = {
  net : Types.net;
  claim : claim;
  gate : Cone.leaf list;
}

type t = {
  tdesign : Design.t;
  full : Cone.t;
  defined : Cone.t;
  nrounds : int;
  claim_tbl : (int, claim) Hashtbl.t;
  claim_list : claim_info list;
  obs : (int, unit) Hashtbl.t;  (* net_id present = (possibly) observable *)
}

let design t = t.tdesign
let cone_full t = t.full
let cone_defined t = t.defined
let rounds t = t.nrounds
let claims t = t.claim_list
let claim_of_net t (n : Types.net) = Hashtbl.find_opt t.claim_tbl n.Types.net_id
let observable t (n : Types.net) = Hashtbl.mem t.obs n.Types.net_id

let is_opaque = function Cone.Opaque _ -> true | _ -> false

(* Reachable-state refinement: start from "every state cell forever
   holds its INIT value", demote any cell whose next-state cone can
   leave the hypothesis, repeat to fixpoint. Each round re-runs the
   forward pass with the surviving constants baked in; the shared
   manager's memo cache makes re-runs cheap. The fixpoint is what lets
   the analysis dominate Const_prop on stuck registers and
   never-written memories. *)
let refine_states ~al ~state_key design seq =
  let hyp = Hashtbl.create 16 in
  List.iter
    (fun (s : Levelize.source) ->
       Hashtbl.replace hyp s.Levelize.inst.Types.cell_id
         (Array.map (fun b -> Some b) (Cone.init_bits s)))
    seq;
  let state_fn (s : Levelize.source) cell =
    match (Hashtbl.find hyp s.Levelize.inst.Types.cell_id).(cell) with
    | Some b -> Cone.State_const b
    | None -> Cone.State_leaf (state_key s cell)
  in
  let rec loop n =
    let c = Cone.analyze ~mode:Cone.Full ~alloc:al ~state:state_fn design in
    let changed = ref false in
    List.iter
      (fun (s : Levelize.source) ->
         let h = Hashtbl.find hyp s.Levelize.inst.Types.cell_id in
         if Array.exists Option.is_some h then begin
           let demote i =
             if h.(i) <> None then begin
               h.(i) <- None;
               changed := true
             end
           in
           match Cone.next_state c s with
           | next ->
             Array.iteri
               (fun i p ->
                  match h.(i) with
                  | None -> ()
                  | Some b ->
                    (match Cone.pair_is_const p with
                     | Some b' when Bit.equal b b' -> ()
                     | _ -> demote i))
               next
           | exception B.Budget_exceeded ->
             Array.iteri (fun i _ -> demote i) h
         end)
      seq;
    if !changed then loop (n + 1) else (c, state_fn, n)
  in
  loop 1

(* Backward observability: a net is marked when some output port can
   see it. Combinational drivers get an exact local-relevance probe
   (substitute a fresh variable for the input net, test the recomputed
   output's support); sequential primitives, black boxes and contended
   nets propagate pessimistically. *)
let compute_observability defined_cone design sources =
  let al = Cone.alloc defined_cone in
  let src_of = Hashtbl.create 64 in
  List.iter
    (fun (s : Levelize.source) ->
       Hashtbl.replace src_of s.Levelize.inst.Types.cell_id s)
    sources;
  let probe = Cone.probe_pair al in
  let probe_var =
    match B.support probe.Cone.p0 with [ v ] -> v | _ -> assert false
  in
  let obs = Hashtbl.create 256 in
  let queue = Queue.create () in
  let mark (n : Types.net) =
    if not (Hashtbl.mem obs n.Types.net_id) then begin
      Hashtbl.replace obs n.Types.net_id ();
      Queue.add n queue
    end
  in
  List.iter
    (fun (p : Design.port) ->
       Array.iter mark p.Design.port_wire.Types.nets)
    (Design.outputs design);
  let input_nets (s : Levelize.source) =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (_, nets) ->
         Array.iter
           (fun (n : Types.net) -> Hashtbl.replace tbl n.Types.net_id n)
           nets)
      s.Levelize.in_ports;
    Hashtbl.fold (fun _ n acc -> n :: acc) tbl []
  in
  let relevant s (target : Types.net) =
    let subst (n : Types.net) =
      if n.Types.net_id = target.Types.net_id then Some probe else None
    in
    match Cone.reeval_comb defined_cone s ~subst with
    | Some p ->
      let m = Cone.man al in
      B.depends_on m p.Cone.p0 probe_var
      || B.depends_on m p.Cone.p1 probe_var
    | None -> true
    | exception B.Budget_exceeded -> true
  in
  let visit_driver (n : Types.net) (term : Types.terminal) =
    match Hashtbl.find_opt src_of term.Types.term_cell.Types.cell_id with
    | None -> ()
    | Some s ->
      let comb =
        match s.Levelize.prim with
        | Prim.Lut _ | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Buf
        | Prim.Inv | Prim.Gnd | Prim.Vcc ->
          true
        | _ -> false
      in
      let contended = n.Types.extra_drivers <> [] in
      List.iter
        (fun m -> if (not comb) || contended || relevant s m then mark m)
        (input_nets s)
  in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter (visit_driver n)
      (match n.Types.driver with
       | Some d -> d :: n.Types.extra_drivers
       | None -> n.Types.extra_drivers)
  done;
  obs

let analyze ?budget dsn =
  let al = Cone.allocator (B.create ?budget ()) in
  let sources = Levelize.sources_of_root (Design.root dsn) in
  let seq =
    List.filter (fun s -> Prim.is_sequential s.Levelize.prim) sources
  in
  let state_key (s : Levelize.source) cell =
    Printf.sprintf "%s#%d" (Cell.path s.Levelize.inst) cell
  in
  let full, state_fn, nrounds = refine_states ~al ~state_key dsn seq in
  let defined =
    Cone.analyze ~mode:Cone.Defined ~alloc:al ~state:state_fn dsn
  in
  let claim_tbl = Hashtbl.create 64 in
  let claim_list =
    List.filter_map
      (fun (n : Types.net) ->
         if n.Types.driver = None || n.Types.extra_drivers <> [] then None
         else begin
           let pf = Cone.pair_of_net full n in
           match Cone.pair_is_const pf with
           | Some b ->
             Hashtbl.replace claim_tbl n.Types.net_id (Always b);
             Some { net = n; claim = Always b; gate = [] }
           | None ->
             (match Cone.pair_is_const (Cone.pair_of_net defined n) with
              | None -> None
              | Some b ->
                let gate = Cone.pair_support_leaves full pf in
                if List.exists is_opaque gate then None
                else begin
                  Hashtbl.replace claim_tbl n.Types.net_id (When_defined b);
                  Some { net = n; claim = When_defined b; gate }
                end)
         end)
      (Design.all_nets dsn)
  in
  let obs = compute_observability defined dsn sources in
  { tdesign = dsn;
    full;
    defined;
    nrounds;
    claim_tbl;
    claim_list;
    obs }
