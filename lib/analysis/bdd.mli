(** Hash-consed reduced ordered binary decision diagrams.

    A dependency-free BDD engine sized for netlist cones: one manager
    owns a unique-node table and a memoized apply cache, so two
    functions built in the same manager are equivalent iff they are
    physically equal ([==]) — the property the equivalence prover, the
    redundant-cell lint rule and the abstract interpreter all lean on.

    Nodes are hash-consed on [(var, low, high)] with the standard
    reduction rules (no node with [low == high], no duplicate
    triples). Complement edges are intentionally left out: plain
    hash-consing keeps negation a cached [xor] with {!one} and the
    code auditable. Variables are plain [int]s ordered ascending from
    the root; {!Cone} allocates them in {!Jhdl_circuit.Levelize} walk
    order, two per leaf net (bit-plane pair).

    Managers are not thread-safe; build one per analysis. *)

type t
(** A BDD node. Physical equality is semantic equality within one
    manager. *)

type man
(** A manager: unique table, apply cache, allocation counters. *)

exception Budget_exceeded
(** Raised by the logical operations when the manager's node budget is
    exhausted; see {!create}. The manager stays usable — {!var} and
    already-built nodes keep working — so a caller can cut the current
    cone (replace it by a fresh opaque leaf) and continue. *)

val create : ?budget:int -> unit -> man
(** [create ?budget ()] — a fresh manager. [budget] bounds the number
    of internal nodes ever allocated by logical operations (default:
    unbounded); crossing it raises {!Budget_exceeded}. *)

val zero : t
val one : t

val var : man -> int -> t
(** [var m i] — the function of variable [i]. Exempt from the budget so
    opaque-leaf cuts always succeed after an overflow. *)

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool
(** Physical equality — constant time. *)

val id : t -> int
(** Stable node id within the owning manager ([0] and [1] are the
    terminals) — usable as a perfect structural hash of the function. *)

val is_const : t -> bool option
(** [Some b] when the function is the constant [b], else [None]. *)

val eval : t -> (int -> bool) -> bool
(** [eval f env] — the value of [f] under the assignment [env]. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val depends_on : man -> t -> int -> bool
(** [depends_on m f v] — does [f] depend on variable [v]? Equivalent to
    [List.mem v (support f)] but memoized in the manager and pruned by
    the variable order, so repeated probes against large shared cones
    amortize to one walk of the live node set. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (variables absent from the result
    are don't-cares), or [None] for {!zero}. *)

val size : t -> int
(** Distinct internal nodes reachable from a root (terminals excluded). *)

(** {1 Counters}

    Lifetime totals for the manager — deterministic for a fixed build
    sequence, pinned by the node-table stress tests and exported
    through {!register_metrics}. *)

val nodes_created : man -> int
val cache_lookups : man -> int
val cache_hits : man -> int

val register_metrics : man -> Jhdl_metrics.Metrics.t -> unit
(** Probes [bdd_nodes_total], [bdd_cache_lookups_total] and
    [bdd_cache_hits_total] on the registry. *)
