(** Bit-level abstract interpretation over the BDD cone engine.

    The lattice is the one {!Jhdl_lint.Const_prop} approximates —
    constant / unknown per net, extended with definedness and
    observability — but evaluated exactly: every net's dual-rail cone
    pair ({!Cone}) is inspected for constancy, a reachable-state
    refinement turns stuck registers and never-written memory cells
    into constants (so the result {e strictly dominates}
    [Const_prop]: every net it proves constant is proved here too,
    pinned by regression tests), and a backward pass proves nets
    unobservable.

    Two claim strengths:
    - {!Always}[ b] — the net holds [b] under {e every} stimulus,
      including X and Z inputs (the full-mode pair is constant).
    - {!When_defined}[ b] — the net holds [b] whenever the leaves in
      its {!claim_info.gate} list hold defined 0/1 values (the
      defined-mode pair is constant). This is where [x XOR x = 0] and
      equal-arm muxes land: their value is pinned even though an X
      input still poisons them in 4-valued simulation.

    Soundness of every claim is fuzz-checked by the [absint] oracle:
    a claimed net must hold its value in simulation at every step
    whose leaf values satisfy the gate. *)

open Jhdl_circuit

type claim =
  | Always of Jhdl_logic.Bit.t
  | When_defined of Jhdl_logic.Bit.t

type claim_info = {
  net : Types.net;
  claim : claim;
  gate : Cone.leaf list;
      (** leaves that must be defined for a {!When_defined} claim;
          empty for {!Always} *)
}

type t

val analyze : ?budget:int -> Design.t -> t
(** Runs the forward passes (full and defined mode, shared manager and
    leaf allocator) with the reachable-state fixpoint in between.
    Raises {!Levelize.Cycle} on combinational cycles. *)

val design : t -> Design.t
val cone_full : t -> Cone.t
val cone_defined : t -> Cone.t

val rounds : t -> int
(** Reachable-state refinement rounds taken (≥ 1). *)

val claims : t -> claim_info list
(** Constancy claims for driven, uncontended nets, in
    {!Design.all_nets} order. Claims whose gate would include an
    opaque leaf are dropped — they could not be checked or acted on. *)

val claim_of_net : t -> Types.net -> claim option

val observable : t -> Types.net -> bool
(** [false] means {e proved} unobservable: under defined leaf values,
    no assignment to this net can change any output port. Contended
    nets, black-box fan-in and budget-cut cones stay observable
    (pessimistic). *)
