(** A generic content-addressed LRU artifact store.

    Entries are keyed by a descriptor string — the canonical spelling
    of everything the cached artifact is a pure function of (for
    elaborated designs, {!Jhdl_sim.Snapshot.descriptor}; for generator
    outputs, the (generator, parameters, tech-library version) tuple).
    Internally the key is the FNV-1a/64 hash of the descriptor plus the
    descriptor's length, and every entry retains its full descriptor:
    a lookup whose hash matches but whose descriptor differs is a
    {e verify reject} — counted, treated as a miss, never served — so
    even a 64-bit hash collision degrades to a miss, not a wrong
    artifact.

    Capacity is bounded in both entries and bytes (caller-sized, since
    artifact types are opaque here); eviction is least-recently-used.
    Time is the caller's ([~now], seconds on any consistent clock), the
    same discipline as {!Jhdl_resilience.Admission}, so cached runs
    replay deterministically.

    Accounting is closed: [inserted = live + evicted + replaced] at
    every step — {!accounting_closes} checks the identity and the
    property suite asserts it after every operation. *)

type 'a t

(** Running totals; [live_entries]/[live_bytes] are the current
    residency, everything else is monotonic. *)
type stats = {
  lookups : int;
  hits : int;
  misses : int;  (** includes verify rejects *)
  verify_rejects : int;  (** hash matched, descriptor differed *)
  inserted : int;
  evicted : int;  (** pushed out by the LRU bound *)
  replaced : int;  (** overwritten by an insert under the same key *)
  removed : int;  (** explicitly {!remove}d *)
  live_entries : int;
  live_bytes : int;
}

(** [inserted = live + evicted + replaced + removed] — the closed
    eviction accounting every store must satisfy. *)
val accounting_closes : stats -> bool

(** [create ?metrics ?name ~cap_entries ~cap_bytes ()] — an empty
    store. A live [metrics] registry gains [<name>cache_lookups_total],
    [<name>cache_hits_total], [<name>cache_misses_total],
    [<name>cache_evictions_total], [<name>cache_insertions_total],
    [<name>cache_verify_rejects_total] counters and
    [<name>cache_entries] / [<name>cache_bytes] probes, where [<name>]
    is ["name."] when a name is given. Raises [Invalid_argument] when
    either capacity is not positive. *)
val create :
  ?metrics:Jhdl_metrics.Metrics.t ->
  ?name:string ->
  cap_entries:int ->
  cap_bytes:int ->
  unit ->
  'a t

val cap_entries : 'a t -> int
val cap_bytes : 'a t -> int

(** [find t ~now ~descriptor] — the artifact stored under [descriptor],
    bumping its recency; [None] (a counted miss) when absent or when
    the stored descriptor fails verification. *)
val find : 'a t -> now:float -> descriptor:string -> 'a option

(** [peek t ~descriptor] — {!find} without the recency bump (still a
    counted lookup). *)
val peek : 'a t -> descriptor:string -> 'a option

(** [add t ~now ~descriptor ~bytes v] — insert [v] under [descriptor],
    charging [bytes] against the byte capacity, evicting
    least-recently-used entries until both bounds hold. An insert under
    an existing key replaces that entry (counted in [replaced], not
    [evicted]). Returns the descriptors evicted, LRU first. Artifacts
    larger than [cap_bytes] are refused (returns [[]], nothing
    counted as inserted). *)
val add : 'a t -> now:float -> descriptor:string -> bytes:int -> 'a -> string list

(** [find_or_add t ~now ~descriptor ~bytes build] — {!find}, building
    and inserting on a miss. [bytes] sizes the built artifact. *)
val find_or_add :
  'a t -> now:float -> descriptor:string -> bytes:('a -> int) ->
  (unit -> 'a) -> 'a

(** [remove t ~descriptor] — drop the entry if present; [true] when one
    was dropped. *)
val remove : 'a t -> descriptor:string -> bool

val mem : 'a t -> descriptor:string -> bool

(** [to_list t] — live [(descriptor, value)] pairs, most recently used
    first. *)
val to_list : 'a t -> (string * 'a) list

val stats : 'a t -> stats

(** [hit_rate t] — hits over lookups, 0 when never consulted. *)
val hit_rate : 'a t -> float
