module Metrics = Jhdl_metrics.Metrics
module Snapshot = Jhdl_sim.Snapshot
module Lint = Jhdl_lint.Lint

type 'design t = {
  designs : 'design Store.t;
  verdicts : Lint.report Store.t;
  netlists : string Store.t;
  bundles : Jhdl_bundle.Jar.t list Store.t;
}

let tech_library_version = "virtex-1"

let sum_stats (stores : Store.stats list) =
  List.fold_left
    (fun (a : Store.stats) (s : Store.stats) ->
       Store.
         { lookups = a.lookups + s.lookups;
           hits = a.hits + s.hits;
           misses = a.misses + s.misses;
           verify_rejects = a.verify_rejects + s.verify_rejects;
           inserted = a.inserted + s.inserted;
           evicted = a.evicted + s.evicted;
           replaced = a.replaced + s.replaced;
           removed = a.removed + s.removed;
           live_entries = a.live_entries + s.live_entries;
           live_bytes = a.live_bytes + s.live_bytes })
    Store.
      { lookups = 0; hits = 0; misses = 0; verify_rejects = 0; inserted = 0;
        evicted = 0; replaced = 0; removed = 0; live_entries = 0;
        live_bytes = 0 }
    stores

let combined_stats t =
  sum_stats
    [ Store.stats t.designs; Store.stats t.verdicts; Store.stats t.netlists;
      Store.stats t.bundles ]

let hit_rate t =
  let s = combined_stats t in
  if s.Store.lookups = 0 then 0.0
  else float_of_int s.Store.hits /. float_of_int s.Store.lookups

let create ?(metrics = Metrics.nil) ?name ~cap_entries ~cap_bytes () =
  (* the stores themselves stay unregistered; the registry gets compact
     aggregate probes instead of 4x8 per-class rows *)
  let store () = Store.create ~cap_entries ~cap_bytes () in
  let t =
    { designs = store (); verdicts = store (); netlists = store ();
      bundles = store () }
  in
  let prefix = match name with None -> "" | Some n -> n ^ "." in
  let probe suffix read =
    Metrics.probe metrics (prefix ^ "cache_" ^ suffix) (fun () ->
        read (combined_stats t))
  in
  probe "lookups_total" (fun s -> s.Store.lookups);
  probe "hits_total" (fun s -> s.Store.hits);
  probe "misses_total" (fun s -> s.Store.misses);
  probe "verify_rejects_total" (fun s -> s.Store.verify_rejects);
  probe "insertions_total" (fun s -> s.Store.inserted);
  probe "evictions_total" (fun s -> s.Store.evicted);
  probe "entries" (fun s -> s.Store.live_entries);
  probe "bytes" (fun s -> s.Store.live_bytes);
  t

let generator_descriptor ~generator ~params =
  let b = Buffer.create 128 in
  Buffer.add_string b "gen:";
  Buffer.add_string b tech_library_version;
  Buffer.add_char b ':';
  Buffer.add_string b generator;
  List.iter
    (fun (k, v) ->
       Buffer.add_char b '|';
       Buffer.add_string b k;
       Buffer.add_char b '=';
       Buffer.add_string b v)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) params);
  Buffer.contents b

let artifact_descriptor ~kind design =
  kind ^ "\x00" ^ Snapshot.descriptor design

(* a report's resident size, approximated by its stable rendering *)
let report_bytes (r : Lint.report) = String.length (Lint.to_json r)

let verdict t ~now design build =
  Store.find_or_add t.verdicts ~now
    ~descriptor:(artifact_descriptor ~kind:"lint" design)
    ~bytes:report_bytes build

let netlist t ~now ~kind design build =
  Store.find_or_add t.netlists ~now
    ~descriptor:(artifact_descriptor ~kind:("netlist:" ^ kind) design)
    ~bytes:String.length build

let netlist_keyed t ~now ~kind ~descriptor build =
  Store.find_or_add t.netlists ~now
    ~descriptor:("netlist:" ^ kind ^ "\x00" ^ descriptor)
    ~bytes:String.length build
