module Metrics = Jhdl_metrics.Metrics

(* the one FNV-1a/64, shared with the design signature *)
let fnv1a64 = Jhdl_sim.Snapshot.fnv1a64

type 'a node = {
  n_key : int64 * int;
  n_descriptor : string;
  n_value : 'a;
  n_bytes : int;
  mutable n_last_used : float;
  (* intrusive doubly-linked recency list, MRU at the head *)
  mutable n_prev : 'a node option;
  mutable n_next : 'a node option;
}

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  verify_rejects : int;
  inserted : int;
  evicted : int;
  replaced : int;
  removed : int;
  live_entries : int;
  live_bytes : int;
}

let accounting_closes s =
  s.inserted = s.live_entries + s.evicted + s.replaced + s.removed

type 'a t = {
  cap_entries : int;
  cap_bytes : int;
  table : (int64 * int, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable live_bytes : int;
  (* counters double as the metric instruments: minted from [nil] they
     are live unregistered records, so stats read one source of truth *)
  c_lookups : Metrics.counter;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_verify_rejects : Metrics.counter;
  c_inserted : Metrics.counter;
  c_evicted : Metrics.counter;
  c_replaced : Metrics.counter;
  c_removed : Metrics.counter;
}

let create ?(metrics = Metrics.nil) ?name ~cap_entries ~cap_bytes () =
  if cap_entries < 1 then
    invalid_arg
      (Printf.sprintf "Store.create: cap_entries %d must be positive"
         cap_entries);
  if cap_bytes < 1 then
    invalid_arg
      (Printf.sprintf "Store.create: cap_bytes %d must be positive" cap_bytes);
  let prefix = match name with None -> "" | Some n -> n ^ "." in
  let counter suffix = Metrics.counter metrics (prefix ^ "cache_" ^ suffix) in
  let t =
    { cap_entries; cap_bytes; table = Hashtbl.create 64; head = None;
      tail = None; live_bytes = 0;
      c_lookups = counter "lookups_total";
      c_hits = counter "hits_total";
      c_misses = counter "misses_total";
      c_verify_rejects = counter "verify_rejects_total";
      c_inserted = counter "insertions_total";
      c_evicted = counter "evictions_total";
      c_replaced = counter "replacements_total";
      c_removed = counter "removals_total" }
  in
  Metrics.probe metrics (prefix ^ "cache_entries") (fun () ->
      Hashtbl.length t.table);
  Metrics.probe metrics (prefix ^ "cache_bytes") (fun () -> t.live_bytes);
  t

let cap_entries t = t.cap_entries
let cap_bytes t = t.cap_bytes

let key_of descriptor = (fnv1a64 descriptor, String.length descriptor)

(* ------------------------------------------------------------------ *)
(* recency list surgery                                                *)

let unlink t node =
  (match node.n_prev with
   | Some p -> p.n_next <- node.n_next
   | None -> t.head <- node.n_next);
  (match node.n_next with
   | Some n -> n.n_prev <- node.n_prev
   | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_prev <- None;
  node.n_next <- t.head;
  (match t.head with
   | Some h -> h.n_prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let drop t node =
  unlink t node;
  Hashtbl.remove t.table node.n_key;
  t.live_bytes <- t.live_bytes - node.n_bytes

(* ------------------------------------------------------------------ *)

let lookup t ~descriptor =
  Metrics.incr t.c_lookups;
  match Hashtbl.find_opt t.table (key_of descriptor) with
  | None ->
    Metrics.incr t.c_misses;
    None
  | Some node when not (String.equal node.n_descriptor descriptor) ->
    (* hash collision: verify-on-hit failed, degrade to a miss *)
    Metrics.incr t.c_verify_rejects;
    Metrics.incr t.c_misses;
    None
  | Some node ->
    Metrics.incr t.c_hits;
    Some node

let find t ~now ~descriptor =
  match lookup t ~descriptor with
  | None -> None
  | Some node ->
    node.n_last_used <- now;
    unlink t node;
    push_front t node;
    Some node.n_value

let peek t ~descriptor =
  match lookup t ~descriptor with
  | None -> None
  | Some node -> Some node.n_value

let add t ~now ~descriptor ~bytes value =
  if bytes > t.cap_bytes then []
  else begin
    let key = key_of descriptor in
    (match Hashtbl.find_opt t.table key with
     | Some old ->
       (* same key: a genuine re-insert, or a colliding descriptor whose
          entry the honest newcomer displaces — either way replacement,
          never two entries under one key *)
       Metrics.incr t.c_replaced;
       drop t old
     | None -> ());
    let node =
      { n_key = key; n_descriptor = descriptor; n_value = value;
        n_bytes = max 0 bytes; n_last_used = now; n_prev = None;
        n_next = None }
    in
    Hashtbl.replace t.table key node;
    push_front t node;
    t.live_bytes <- t.live_bytes + node.n_bytes;
    Metrics.incr t.c_inserted;
    let evicted = ref [] in
    while
      Hashtbl.length t.table > t.cap_entries || t.live_bytes > t.cap_bytes
    do
      match t.tail with
      | None -> assert false (* a live entry is always listed *)
      | Some lru ->
        Metrics.incr t.c_evicted;
        evicted := lru.n_descriptor :: !evicted;
        drop t lru
    done;
    List.rev !evicted
  end

let find_or_add t ~now ~descriptor ~bytes build =
  match find t ~now ~descriptor with
  | Some v -> v
  | None ->
    let v = build () in
    let _ = add t ~now ~descriptor ~bytes:(bytes v) v in
    v

let remove t ~descriptor =
  match Hashtbl.find_opt t.table (key_of descriptor) with
  | Some node when String.equal node.n_descriptor descriptor ->
    Metrics.incr t.c_removed;
    drop t node;
    true
  | Some _ | None -> false

let mem t ~descriptor =
  match Hashtbl.find_opt t.table (key_of descriptor) with
  | Some node -> String.equal node.n_descriptor descriptor
  | None -> false

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.n_descriptor, node.n_value) :: acc) node.n_next
  in
  go [] t.head

let stats t =
  { lookups = Metrics.count t.c_lookups;
    hits = Metrics.count t.c_hits;
    misses = Metrics.count t.c_misses;
    verify_rejects = Metrics.count t.c_verify_rejects;
    inserted = Metrics.count t.c_inserted;
    evicted = Metrics.count t.c_evicted;
    replaced = Metrics.count t.c_replaced;
    removed = Metrics.count t.c_removed;
    live_entries = Hashtbl.length t.table;
    live_bytes = t.live_bytes }

let hit_rate t =
  let lookups = Metrics.count t.c_lookups in
  if lookups = 0 then 0.0
  else float_of_int (Metrics.count t.c_hits) /. float_of_int lookups
