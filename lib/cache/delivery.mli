(** The delivery-path artifact cache: one {!Store} per artifact class.

    A module-generator output is a pure function of (generator,
    parameters, tech-library version) — the shape ArithsGen and the
    web multiplier-IP service exploit — so every stage of serving a
    request can be content-addressed: the elaborated design, its lint
    verdict, the exported netlist and the jar bundle each live in their
    own store, keyed by descriptors derived from
    {!Jhdl_sim.Snapshot.descriptor} (and therefore collision-safe per
    the store's verify-on-hit discipline).

    The cache is polymorphic in the elaborated-design payload so this
    library stays below the applet layer: the server instantiates
    ['design] with its built-module record. *)

type 'design t = {
  designs : 'design Store.t;  (** elaborated builds *)
  verdicts : Jhdl_lint.Lint.report Store.t;  (** lint runs *)
  netlists : string Store.t;  (** exported netlist text *)
  bundles : Jhdl_bundle.Jar.t list Store.t;  (** jar sets *)
}

(** Version tag of the primitive library the generators elaborate
    against; part of every generator-keyed descriptor, so a tech-library
    upgrade invalidates the whole cache instead of serving stale
    netlists. *)
val tech_library_version : string

(** [create ?metrics ?name ~cap_entries ~cap_bytes ()] — four stores,
    each bounded by [cap_entries]/[cap_bytes]. A live [metrics] registry
    gains aggregate probes summed across the classes
    ([<name>cache_lookups_total], [..hits..], [..misses..],
    [..verify_rejects..], [..insertions..], [..evictions..],
    [<name>cache_entries], [<name>cache_bytes]) rather than 4×8
    per-store rows. *)
val create :
  ?metrics:Jhdl_metrics.Metrics.t ->
  ?name:string ->
  cap_entries:int ->
  cap_bytes:int ->
  unit ->
  'design t

(** [generator_descriptor ~generator ~params] — content address of a
    generator invocation before elaboration: the tech-library version,
    generator name and canonicalized parameter assignment. Sorted by
    parameter name so argument order cannot split the cache. *)
val generator_descriptor :
  generator:string -> params:(string * string) list -> string

(** [artifact_descriptor ~kind design] — content address of an artifact
    derived from an elaborated design: [kind] (e.g. ["lint"],
    ["netlist:edif"]) prefixed onto the full
    {!Jhdl_sim.Snapshot.descriptor}, so distinct artifact classes of
    one design can never alias and a descriptor match still implies
    structural identity. *)
val artifact_descriptor : kind:string -> Jhdl_circuit.Design.t -> string

(** [verdict t ~now design build] — the cached lint report for
    [design], running [build] on a miss. *)
val verdict :
  'design t -> now:float -> Jhdl_circuit.Design.t ->
  (unit -> Jhdl_lint.Lint.report) -> Jhdl_lint.Lint.report

(** [netlist t ~now ~kind design build] — the cached export of [design]
    in format [kind]. *)
val netlist :
  'design t -> now:float -> kind:string -> Jhdl_circuit.Design.t ->
  (unit -> string) -> string

(** [netlist_keyed t ~now ~kind ~descriptor build] — like {!netlist}
    but keyed by a caller-supplied invocation descriptor (typically
    {!generator_descriptor}), for the serving path where the invocation
    already determines the design: the same verify-on-hit discipline
    without re-serializing the design on every lookup. *)
val netlist_keyed :
  'design t -> now:float -> kind:string -> descriptor:string ->
  (unit -> string) -> string

(** [combined_stats t] — per-field sum of the four stores' stats. *)
val combined_stats : 'design t -> Store.stats

(** [hit_rate t] — hits over lookups across all classes. *)
val hit_rate : 'design t -> float
