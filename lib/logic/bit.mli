(** Four-valued logic bit, in the tradition of hardware simulators.

    [Zero] and [One] are the two defined logic levels. [X] is an unknown or
    uninitialized value; any operation whose result cannot be determined from
    its defined operands yields [X]. [Z] is high impedance (an undriven net);
    when used as an operand of a logic gate it behaves like [X]. *)

type t =
  | Zero
  | One
  | X
  | Z

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Packed 2-bit code view}

    Dense simulation kernels store net values as flat arrays of 2-bit
    codes instead of boxed-looking variants: [Zero] is 0, [One] is 1,
    [X] is 2, [Z] is 3. A code [c] is a defined logic level iff [c < 2],
    and [c lxor 1] negates a defined code — properties the simulator's
    compiled kernel relies on. *)

(** [to_code b] is the 2-bit code of [b] (identical to the {!compare}
    rank). *)
val to_code : t -> int

(** [of_code c] is the inverse of {!to_code}; raises [Invalid_argument]
    outside 0..3. *)
val of_code : int -> t

(** [of_bool b] is [One] if [b], else [Zero]. *)
val of_bool : bool -> t

(** [to_bool b] is [Some true] / [Some false] for defined bits, [None] for
    [X] and [Z]. *)
val to_bool : t -> bool option

(** [of_char c] parses ['0'], ['1'], ['x'], ['X'], ['z'], ['Z']. Raises
    [Invalid_argument] on any other character. *)
val of_char : char -> t

val to_char : t -> char

(** [is_defined b] is true for [Zero] and [One] only. *)
val is_defined : t -> bool

(** Logic operations use pessimistic X-propagation with the usual dominance
    rules: [and_ Zero _ = Zero], [or_ One _ = One]; otherwise any undefined
    operand makes the result [X]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xnor : t -> t -> t

(** [mux ~sel a b] is [a] when [sel] is [Zero], [b] when [sel] is [One].
    When [sel] is undefined the result is [X] unless [a] and [b] agree on a
    defined value. *)
val mux : sel:t -> t -> t -> t

(** [resolve a b] is the resolution of two drivers on one net: [Z] yields to
    the other value; conflicting defined values resolve to [X]. *)
val resolve : t -> t -> t

val pp : Format.formatter -> t -> unit
