(** Fixed-width vectors of four-valued bits.

    Bit 0 is the least-significant bit. Vectors are immutable values; all
    operations return fresh vectors. Arithmetic is two's-complement and
    truncates to the width of the result (the wider operand unless stated
    otherwise). Any arithmetic involving an undefined bit produces an
    all-[X] result of the appropriate width, matching the pessimistic model
    used by the simulator. *)

type t

val width : t -> int

(** [create n b] is an [n]-wide vector with every bit equal to [b]. *)
val create : int -> Bit.t -> t

(** [zero n], [ones n], [undefined n] are the all-0, all-1, all-X vectors. *)
val zero : int -> t
val ones : int -> t
val undefined : int -> t

(** [init n f] builds a vector whose bit [i] is [f i], for [0 <= i < n]. *)
val init : int -> (int -> Bit.t) -> t

(** [get v i] is bit [i]; raises [Invalid_argument] when out of range. *)
val get : t -> int -> Bit.t

(** [set v i b] is [v] with bit [i] replaced by [b]. *)
val set : t -> int -> Bit.t -> t

val of_list : Bit.t list -> t

(** [to_list v] lists bits LSB first. *)
val to_list : t -> Bit.t list

(** [of_int ~width n] encodes the low [width] bits of [n] (two's
    complement, so negative [n] works). *)
val of_int : width:int -> int -> t

(** [to_int v] decodes an unsigned integer; [None] if any bit is
    undefined or the value exceeds [max_int]. *)
val to_int : t -> int option

(** [to_signed_int v] decodes a two's-complement integer; [None] if any
    bit is undefined. *)
val to_signed_int : t -> int option

(** [of_string s] parses a binary string, MSB first, e.g. ["1010"], with
    optional ["0b"] prefix; characters follow {!Bit.of_char}. Underscores
    are ignored. *)
val of_string : string -> t

(** [to_string v] prints MSB first. *)
val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val is_fully_defined : t -> bool

(** {1 Packed code view}

    Exchange format with dense simulation kernels: one {!Bit.to_code}
    byte per bit, LSB at offset 0. *)

val to_codes : t -> Bytes.t
val of_codes : Bytes.t -> t

(** {1 Packed plane view}

    Exchange format with bit-parallel simulation kernels: the vector's
    codes split into two machine-word planes, bit [i] of the first
    (resp. second) word holding bit 0 (resp. bit 1) of
    [Bit.to_code v.(i)] — so Zero=(0,0), One=(1,0), X=(0,1), Z=(1,1).
    Widths are limited to 63 bits (one OCaml [int] per plane);
    [to_planes] and [of_planes] raise [Invalid_argument] beyond that. *)

val to_planes : t -> int * int
val of_planes : width:int -> int -> int -> t

(** [slice v ~lo ~hi] is bits [lo..hi] inclusive, LSB at [lo]. *)
val slice : t -> lo:int -> hi:int -> t

(** [concat hi lo] places [lo] in the low bits and [hi] above it. *)
val concat : t -> t -> t

(** [zero_extend v n] / [sign_extend v n] widen [v] to [n] bits; if [n] is
    not larger than the current width the vector is truncated to [n]. *)
val zero_extend : t -> int -> t
val sign_extend : t -> int -> t

val map : (Bit.t -> Bit.t) -> t -> t
val map2 : (Bit.t -> Bit.t -> Bit.t) -> t -> t -> t

(** Bitwise operations; operands must have equal widths. *)
val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** Reductions over all bits. *)
val reduce_and : t -> Bit.t
val reduce_or : t -> Bit.t
val reduce_xor : t -> Bit.t

(** [add a b] / [sub a b]: operands must have equal widths; result has the
    same width (carry-out discarded). *)
val add : t -> t -> t
val sub : t -> t -> t

(** [add_carry a b ~cin] returns the sum and the carry-out. *)
val add_carry : t -> t -> cin:Bit.t -> t * Bit.t

val neg : t -> t

(** [mul a b] is the full-width product, [width a + width b] bits wide.
    [mul_signed] treats both operands as two's complement. *)
val mul : t -> t -> t
val mul_signed : t -> t -> t

(** Logical shifts by a constant amount. *)
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val pp : Format.formatter -> t -> unit
