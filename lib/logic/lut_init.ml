type t = {
  inputs : int;
  table : int; (* bit i = output for input address i *)
}

let check_inputs k =
  if k < 1 || k > 6 then
    invalid_arg (Printf.sprintf "Lut_init: %d inputs not in 1..6" k)

let inputs t = t.inputs

let of_function ~inputs f =
  check_inputs inputs;
  let n = 1 lsl inputs in
  let table = ref 0 in
  for addr = 0 to n - 1 do
    if f addr then table := !table lor (1 lsl addr)
  done;
  { inputs; table = !table }

let of_int ~inputs init =
  check_inputs inputs;
  let mask = (1 lsl (1 lsl inputs)) - 1 in
  { inputs; table = init land mask }

let to_int t = t.table

let hex_digits t = max 1 ((1 lsl t.inputs) / 4)

let of_hex ~inputs s =
  check_inputs inputs;
  let init = int_of_string ("0x" ^ s) in
  of_int ~inputs init

let to_hex t = Printf.sprintf "%0*X" (hex_digits t) t.table

let eval_int t addr =
  if addr < 0 || addr >= 1 lsl t.inputs then
    invalid_arg (Printf.sprintf "Lut_init.eval_int: address %d" addr);
  (t.table lsr addr) land 1 = 1

(* With undefined inputs, every address reachable under the unknown-bit
   mask must agree for the output to stay defined. The reachable set is
   enumerated by the subset-walk [sub' = (sub - mask) land mask], which
   visits each subset of [mask] exactly once — no list allocation. *)
let eval t addr_bits =
  if Array.length addr_bits <> t.inputs then
    invalid_arg
      (Printf.sprintf "Lut_init.eval: %d address bits for a LUT%d"
         (Array.length addr_bits) t.inputs);
  let mask = ref 0 in
  let base = ref 0 in
  Array.iteri
    (fun i b ->
       match Bit.to_bool b with
       | Some true -> base := !base lor (1 lsl i)
       | Some false -> ()
       | None -> mask := !mask lor (1 lsl i))
    addr_bits;
  let base = !base and mask = !mask in
  if mask = 0 then Bit.of_bool (eval_int t base)
  else
    let value = eval_int t base in
    let rec agree sub =
      if eval_int t (base lor sub) <> value then Bit.X
      else if sub = mask then Bit.of_bool value
      else agree ((sub - mask) land mask)
    in
    agree ((0 - mask) land mask)

let equal a b = a.inputs = b.inputs && a.table = b.table

let const_false ~inputs = of_function ~inputs (fun _ -> false)
let const_true ~inputs = of_function ~inputs (fun _ -> true)

let and_all ~inputs =
  of_function ~inputs (fun addr -> addr = (1 lsl inputs) - 1)

let or_all ~inputs = of_function ~inputs (fun addr -> addr <> 0)

let xor_all ~inputs =
  let rec popcount n = if n = 0 then 0 else (n land 1) + popcount (n lsr 1) in
  of_function ~inputs (fun addr -> popcount addr land 1 = 1)

let passthrough ~inputs ~input =
  if input < 0 || input >= inputs then
    invalid_arg "Lut_init.passthrough: input out of range";
  of_function ~inputs (fun addr -> (addr lsr input) land 1 = 1)

let pp fmt t = Format.fprintf fmt "LUT%d:%s" t.inputs (to_hex t)
