(* CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no
   final xor): detects every single-byte error, unlike Fletcher/Adler
   whose 0x00/0xFF classes collide.  This is the one checksum shared by
   the wire protocol's packet frames and the snapshot blob trailer —
   both formats are pinned byte-for-byte by cram tests, so any change
   here is a wire-format break. *)

let checksum s =
  let crc = ref 0xFFFF in
  String.iter
    (fun c ->
       crc := !crc lxor (Char.code c lsl 8);
       for _ = 1 to 8 do
         if !crc land 0x8000 <> 0 then
           crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
         else crc := (!crc lsl 1) land 0xFFFF
       done)
    s;
  !crc
