type t =
  | Zero
  | One
  | X
  | Z

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X | Z, Z -> true
  | Zero, (One | X | Z)
  | One, (Zero | X | Z)
  | X, (Zero | One | Z)
  | Z, (Zero | One | X) -> false

let rank = function Zero -> 0 | One -> 1 | X -> 2 | Z -> 3
let compare a b = Int.compare (rank a) (rank b)

let to_code = rank

let of_code = function
  | 0 -> Zero
  | 1 -> One
  | 2 -> X
  | 3 -> Z
  | c -> invalid_arg (Printf.sprintf "Bit.of_code: %d" c)

let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X | Z -> None

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | 'z' | 'Z' -> Z
  | c -> invalid_arg (Printf.sprintf "Bit.of_char: %C" c)

let to_char = function Zero -> '0' | One -> '1' | X -> 'x' | Z -> 'z'

let is_defined = function Zero | One -> true | X | Z -> false

let not_ = function Zero -> One | One -> Zero | X | Z -> X

let and_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X | Z), (X | Z) | (X | Z), One -> X

let or_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X | Z), (X | Z) | (X | Z), Zero -> X

let xor a b =
  match a, b with
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One
  | (X | Z), (Zero | One | X | Z) | (Zero | One), (X | Z) -> X

let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)
let xnor a b = not_ (xor a b)

let mux ~sel a b =
  match sel with
  | Zero -> a
  | One -> b
  | X | Z -> if equal a b && is_defined a then a else X

let resolve a b =
  match a, b with
  | Z, v | v, Z -> v
  | v, w -> if equal v w then v else X

let pp fmt b = Format.pp_print_char fmt (to_char b)
