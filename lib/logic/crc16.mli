(** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).

    Shared by the cosim wire protocol's packet checksum and the
    simulator snapshot trailer.  Known answer: [checksum "123456789"]
    is [0x29B1]; the empty string checksums to [0xFFFF]. *)

val checksum : string -> int
(** [checksum s] is the CRC-16/CCITT-FALSE of [s], in [0, 0xFFFF]. *)
