(* Bit 0 of the array is the LSB. *)
type t = Bit.t array

let width = Array.length

let create n b =
  if n < 0 then invalid_arg "Bits.create: negative width";
  Array.make n b

let zero n = create n Bit.Zero
let ones n = create n Bit.One
let undefined n = create n Bit.X

let init n f =
  if n < 0 then invalid_arg "Bits.init: negative width";
  Array.init n f

let get v i =
  if i < 0 || i >= Array.length v then
    invalid_arg (Printf.sprintf "Bits.get: index %d out of [0,%d)" i (Array.length v));
  v.(i)

let set v i b =
  if i < 0 || i >= Array.length v then
    invalid_arg (Printf.sprintf "Bits.set: index %d out of [0,%d)" i (Array.length v));
  let v' = Array.copy v in
  v'.(i) <- b;
  v'

let of_list bits = Array.of_list bits
let to_list v = Array.to_list v

let of_int ~width:n k =
  init n (fun i -> Bit.of_bool ((k lsr i) land 1 = 1))

let to_int v =
  let n = Array.length v in
  let rec loop acc i =
    if i < 0 then Some acc
    else
      match Bit.to_bool v.(i) with
      | None -> None
      | Some b ->
        if acc > (max_int - (if b then 1 else 0)) / 2 then None
        else loop ((acc * 2) + if b then 1 else 0) (i - 1)
  in
  if n = 0 then Some 0 else loop 0 (n - 1)

let to_signed_int v =
  let n = Array.length v in
  if n = 0 then Some 0
  else
    match to_int v with
    | None -> None
    | Some u ->
      (match Bit.to_bool v.(n - 1) with
       | None -> None
       | Some true when n <= 62 -> Some (u - (1 lsl n))
       | Some _ -> Some u)

let of_string s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  let chars =
    String.fold_left (fun acc c -> if c = '_' then acc else c :: acc) [] s
  in
  (* fold_left reversed the string, which conveniently puts the LSB first *)
  of_list (List.map Bit.of_char chars)

let to_string v =
  String.init (Array.length v) (fun i -> Bit.to_char v.(Array.length v - 1 - i))

let equal a b =
  Array.length a = Array.length b
  && (let rec loop i = i < 0 || (Bit.equal a.(i) b.(i) && loop (i - 1)) in
      loop (Array.length a - 1))

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec loop i =
      if i < 0 then 0
      else
        let c = Bit.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i - 1)
    in
    loop (Array.length a - 1)

let is_fully_defined v = Array.for_all Bit.is_defined v

let to_codes v =
  Bytes.init (Array.length v) (fun i -> Char.chr (Bit.to_code v.(i)))

let of_codes b =
  init (Bytes.length b) (fun i -> Bit.of_code (Char.code (Bytes.get b i)))

let to_planes v =
  let n = Array.length v in
  if n > 63 then
    invalid_arg (Printf.sprintf "Bits.to_planes: width %d exceeds 63" n);
  let p0 = ref 0 and p1 = ref 0 in
  for i = 0 to n - 1 do
    let c = Bit.to_code (Array.unsafe_get v i) in
    p0 := !p0 lor ((c land 1) lsl i);
    p1 := !p1 lor ((c lsr 1) lsl i)
  done;
  (!p0, !p1)

let of_planes ~width p0 p1 =
  if width < 0 || width > 63 then
    invalid_arg (Printf.sprintf "Bits.of_planes: width %d out of 0..63" width);
  init width (fun i ->
    Bit.of_code (((p0 lsr i) land 1) lor (((p1 lsr i) land 1) lsl 1)))

let slice v ~lo ~hi =
  if lo < 0 || hi >= Array.length v || lo > hi then
    invalid_arg
      (Printf.sprintf "Bits.slice: [%d,%d] out of width %d" lo hi (Array.length v));
  Array.sub v lo (hi - lo + 1)

let concat hi lo = Array.append lo hi

let extend fill v n =
  let w = Array.length v in
  if n <= w then Array.sub v 0 n
  else init n (fun i -> if i < w then v.(i) else fill v)

let zero_extend v n = extend (fun _ -> Bit.Zero) v n

let sign_extend v n =
  extend (fun v -> if Array.length v = 0 then Bit.Zero else v.(Array.length v - 1)) v n

let map = Array.map

let map2 f a b =
  if Array.length a <> Array.length b then
    invalid_arg "Bits.map2: width mismatch";
  Array.map2 f a b

let lognot = map Bit.not_
let logand = map2 Bit.and_
let logor = map2 Bit.or_
let logxor = map2 Bit.xor

let reduce f v =
  if Array.length v = 0 then invalid_arg "Bits.reduce: empty vector"
  else Array.fold_left f v.(0) (Array.sub v 1 (Array.length v - 1))

let reduce_and = reduce Bit.and_
let reduce_or = reduce Bit.or_
let reduce_xor = reduce Bit.xor

let add_carry a b ~cin =
  if Array.length a <> Array.length b then
    invalid_arg "Bits.add_carry: width mismatch";
  let n = Array.length a in
  let out = Array.make n Bit.X in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let x = a.(i) and y = b.(i) and c = !carry in
    out.(i) <- Bit.xor (Bit.xor x y) c;
    carry := Bit.or_ (Bit.and_ x y) (Bit.and_ c (Bit.xor x y))
  done;
  out, !carry

let add a b = fst (add_carry a b ~cin:Bit.Zero)
let sub a b = fst (add_carry a (lognot b) ~cin:Bit.One)
let neg v = fst (add_carry (lognot v) (zero (Array.length v)) ~cin:Bit.One)

(* Shift-add over partial products; any X operand poisons the product. *)
let mul_general ~extend_a a b =
  let wa = Array.length a and wb = Array.length b in
  let w = wa + wb in
  if not (is_fully_defined a && is_fully_defined b) then undefined w
  else
    let aw = extend_a a w in
    let acc = ref (zero w) in
    for i = 0 to wb - 1 do
      match Bit.to_bool b.(i) with
      | Some true ->
        let shifted = Array.init w (fun j -> if j < i then Bit.Zero else aw.(j - i)) in
        acc := add !acc shifted
      | Some false | None -> ()
    done;
    !acc

let mul a b = mul_general ~extend_a:zero_extend a b

(* Sign-extend both operands to the full product width and multiply modulo
   2^w; two's-complement products are exact under that truncation, including
   for the most negative inputs. *)
let mul_signed a b =
  let w = Array.length a + Array.length b in
  if not (is_fully_defined a && is_fully_defined b) then undefined w
  else
    let aw = sign_extend a w and bw = sign_extend b w in
    let acc = ref (zero w) in
    for i = 0 to w - 1 do
      match Bit.to_bool bw.(i) with
      | Some true ->
        let shifted = Array.init w (fun j -> if j < i then Bit.Zero else aw.(j - i)) in
        acc := add !acc shifted
      | Some false | None -> ()
    done;
    !acc

let shift_left v k =
  let n = Array.length v in
  init n (fun i -> if i < k then Bit.Zero else v.(i - k))

let shift_right v k =
  let n = Array.length v in
  init n (fun i -> if i + k < n then v.(i + k) else Bit.Zero)

let pp fmt v = Format.pp_print_string fmt (to_string v)
