(** Facade: one [open Jhdl] exposes the whole system under short names.

    Layering, bottom up:
    - {!Bit}, {!Bits}, {!Lut_init}: four-valued logic values.
    - {!Wire}, {!Cell}, {!Design}, {!Prim}, {!Types}: the circuit data
      structure (structural netlists built JHDL-style, by construction).
    - {!Virtex}: the technology library (primitives, area/delay models).
    - {!Simulator}: cycle-based simulation (compiled dense kernel), with
      {!Reference} as the retained golden-model interpreter.
    - {!Model}, {!Edif}, {!Vhdl}, {!Verilog}, {!Format_kind}, {!Ident}:
      netlist interchange.
    - {!Estimate}: area and static-timing estimation.
    - {!Lint}, {!Const_prop}, {!Levelize}: the rule-based netlist lint
      engine and the analyses it shares with the simulators.
    - {!Bdd}, {!Cone}, {!Absint}, {!Deep_lint}: the formal analysis
      engine — hash-consed BDDs, dual-rail cone extraction, the
      constancy/observability abstract interpreter and the
      proof-backed lint rules it powers ([lint_tool --deep]).
    - {!Adders}, {!Kcm}, {!Fir}, {!Counter}, {!Datapath}, {!Multiplier},
      {!Modgen_util}: module generators.
    - {!Hierarchy}, {!Schematic}, {!Floorplan}, {!Waveform}, {!Vcd}:
      viewers.
    - {!Class_file}, {!Jar}, {!Partition}, {!Download}: delivery bundles.
    - {!Obfuscator}, {!Crypto}, {!Watermark}, {!Metering}: IP protection.
    - {!Cache_store}, {!Delivery_cache}: the content-addressed artifact
      cache for the delivery path (collision-safe 64-bit signatures,
      verify-on-hit, closed LRU accounting).
    - {!Feature}, {!License}, {!Ip_module}, {!Applet}, {!Catalog}: the IP
      delivery applets.
    - {!Server}: the vendor web server.
    - {!Admission}, {!Breaker}, {!Chaos}: overload control — admission
      queues with deadlines and tier-aware shedding, circuit breakers,
      and the chaos scenario scheduler that audits recovery.
    - {!Prng}, {!Fault}: seeded fault injection for lossy consumer links.
    - {!Network}, {!Protocol}, {!Endpoint}, {!Cosim}: black-box
      co-simulation.
    - {!Fuzz}, {!Fuzz_recipe}, {!Fuzz_gen}, {!Fuzz_oracle},
      {!Fuzz_reduce}: the seeded netlist fuzzer and its differential
      validation oracles. *)

module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Types = Jhdl_circuit.Types
module Prim = Jhdl_circuit.Prim
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator
module Reference = Jhdl_sim.Reference
module Snapshot = Jhdl_sim.Snapshot
module Testbench = Jhdl_sim.Testbench
module Model = Jhdl_netlist.Model
module Ident = Jhdl_netlist.Ident
module Edif = Jhdl_netlist.Edif
module Vhdl = Jhdl_netlist.Vhdl
module Verilog = Jhdl_netlist.Verilog
module Format_kind = Jhdl_netlist.Format_kind
module Xnf = Jhdl_netlist.Xnf
module Edif_reader = Jhdl_netlist.Edif_reader
module Estimate = Jhdl_estimate.Estimate
module Levelize = Jhdl_circuit.Levelize
module Lint = Jhdl_lint.Lint
module Const_prop = Jhdl_lint.Const_prop
module Bdd = Jhdl_analysis.Bdd
module Cone = Jhdl_analysis.Cone
module Absint = Jhdl_analysis.Absint
module Deep_lint = Jhdl_analysis.Deep_lint
module Adders = Jhdl_modgen.Adders
module Kcm = Jhdl_modgen.Kcm
module Fir = Jhdl_modgen.Fir
module Dafir = Jhdl_modgen.Dafir
module Cordic = Jhdl_modgen.Cordic
module Counter = Jhdl_modgen.Counter
module Datapath = Jhdl_modgen.Datapath
module Multiplier = Jhdl_modgen.Multiplier
module Misc_logic = Jhdl_modgen.Misc_logic
module Modgen_util = Jhdl_modgen.Util
module Hierarchy = Jhdl_viewer.Hierarchy
module Schematic = Jhdl_viewer.Schematic
module Floorplan = Jhdl_viewer.Floorplan
module Waveform = Jhdl_viewer.Waveform
module Vcd = Jhdl_viewer.Vcd
module Class_file = Jhdl_bundle.Class_file
module Jar = Jhdl_bundle.Jar
module Partition = Jhdl_bundle.Partition
module Download = Jhdl_bundle.Download
module Placer = Jhdl_place.Placer
module Equiv = Jhdl_verify.Equiv
module Router = Jhdl_place.Router
module Config_mem = Jhdl_bitstream.Config_mem
module Jbits = Jhdl_bitstream.Jbits
module Obfuscator = Jhdl_security.Obfuscator
module Crypto = Jhdl_security.Crypto
module Watermark = Jhdl_security.Watermark
module Metering = Jhdl_security.Metering
module Cache_store = Jhdl_cache.Store
module Delivery_cache = Jhdl_cache.Delivery
module Feature = Jhdl_applet.Feature
module License = Jhdl_applet.License
module Ip_module = Jhdl_applet.Ip_module
module Applet = Jhdl_applet.Applet
module Catalog = Jhdl_applet.Catalog
module Suite = Jhdl_applet.Suite
module Server = Jhdl_webserver.Server
module Secure_channel = Jhdl_webserver.Secure_channel
module Session_manager = Jhdl_webserver.Session_manager
module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker
module Chaos = Jhdl_chaos.Chaos
module Prng = Jhdl_faults.Prng
module Fault = Jhdl_faults.Fault
module Network = Jhdl_netproto.Network
module Protocol = Jhdl_netproto.Protocol
module Endpoint = Jhdl_netproto.Endpoint
module Cosim = Jhdl_netproto.Cosim
module Verilog_tb = Jhdl_netproto.Verilog_tb
module Metrics = Jhdl_metrics.Metrics
module Crc16 = Jhdl_logic.Crc16
module Fuzz = Jhdl_fuzz.Fuzz
module Fuzz_recipe = Jhdl_fuzz.Recipe
module Fuzz_gen = Jhdl_fuzz.Gen
module Fuzz_stimulus = Jhdl_fuzz.Stimulus
module Fuzz_oracle = Jhdl_fuzz.Oracle
module Fuzz_reduce = Jhdl_fuzz.Reduce
