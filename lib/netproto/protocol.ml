module Bits = Jhdl_logic.Bits

type message =
  | Set_inputs of (string * Bits.t) list
  | Cycle of int
  | Reset
  | Get_outputs of string list
  | Outputs_are of (string * Bits.t) list
  | Ack
  | Protocol_error of string
  | Hello of string
  | Resume of string * int
  | Session_state of int
  | Heartbeat
  | Checkpoint

(* Wire format: 1 tag byte, then tag-specific payload. Strings are
   2-byte big-endian length + bytes; counts are 2 bytes; Cycle carries a
   4-byte big-endian count. Values travel as bit characters (MSB first),
   preserving X/Z. Sequence numbers inside session messages (Resume /
   Session_state) are offset by one on the wire so the "nothing applied
   yet" sentinel -1 fits an unsigned field. *)

let add_u16 buffer n =
  Buffer.add_char buffer (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buffer (Char.chr (n land 0xFF))

let add_u32 buffer n =
  add_u16 buffer ((n lsr 16) land 0xFFFF);
  add_u16 buffer (n land 0xFFFF)

let add_string buffer s =
  add_u16 buffer (String.length s);
  Buffer.add_string buffer s

let add_pairs buffer pairs =
  add_u16 buffer (List.length pairs);
  List.iter
    (fun (name, value) ->
       add_string buffer name;
       add_string buffer (Bits.to_string value))
    pairs

let encode message =
  let buffer = Buffer.create 64 in
  (match message with
   | Set_inputs pairs ->
     Buffer.add_char buffer 'I';
     add_pairs buffer pairs
   | Cycle n ->
     Buffer.add_char buffer 'C';
     add_u32 buffer n
   | Reset -> Buffer.add_char buffer 'R'
   | Get_outputs names ->
     Buffer.add_char buffer 'G';
     add_u16 buffer (List.length names);
     List.iter (add_string buffer) names
   | Outputs_are pairs ->
     Buffer.add_char buffer 'O';
     add_pairs buffer pairs
   | Ack -> Buffer.add_char buffer 'A'
   | Protocol_error text ->
     Buffer.add_char buffer 'E';
     add_string buffer text
   | Hello session_id ->
     Buffer.add_char buffer 'H';
     add_string buffer session_id
   | Resume (session_id, last_acked) ->
     Buffer.add_char buffer 'U';
     add_string buffer session_id;
     add_u32 buffer (last_acked + 1)
   | Session_state last_applied ->
     Buffer.add_char buffer 'S';
     add_u32 buffer (last_applied + 1)
   | Heartbeat -> Buffer.add_char buffer 'B'
   | Checkpoint -> Buffer.add_char buffer 'K');
  Buffer.contents buffer

let size message = String.length (encode message)

exception Malformed of string

let decode s =
  let pos = ref 0 in
  let byte () =
    if !pos >= String.length s then raise (Malformed "truncated");
    let c = s.[!pos] in
    incr pos;
    Char.code c
  in
  let u16 () =
    let hi = byte () in
    (hi lsl 8) lor byte ()
  in
  let u32 () =
    let hi = u16 () in
    (hi lsl 16) lor u16 ()
  in
  let str () =
    let len = u16 () in
    if !pos + len > String.length s then raise (Malformed "truncated string");
    let r = String.sub s !pos len in
    pos := !pos + len;
    r
  in
  let bits () =
    let text = str () in
    match Bits.of_string text with
    | v -> v
    | exception Invalid_argument _ -> raise (Malformed "bad bit string")
  in
  let pairs () =
    let n = u16 () in
    List.init n (fun _ ->
      let name = str () in
      let value = bits () in
      (name, value))
  in
  match
    let tag = byte () in
    let message =
      match Char.chr tag with
      | 'I' -> Set_inputs (pairs ())
      | 'C' -> Cycle (u32 ())
      | 'R' -> Reset
      | 'G' ->
        let n = u16 () in
        Get_outputs (List.init n (fun _ -> str ()))
      | 'O' -> Outputs_are (pairs ())
      | 'A' -> Ack
      | 'E' -> Protocol_error (str ())
      | 'H' -> Hello (str ())
      | 'U' ->
        let session_id = str () in
        Resume (session_id, u32 () - 1)
      | 'S' -> Session_state (u32 () - 1)
      | 'B' -> Heartbeat
      | 'K' -> Checkpoint
      | c -> raise (Malformed (Printf.sprintf "unknown tag %C" c))
    in
    if !pos <> String.length s then raise (Malformed "trailing bytes");
    message
  with
  | message -> Ok message
  | exception Malformed reason -> Error reason

(* CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF): detects every
   single-byte error, unlike Fletcher/Adler whose 0x00/0xFF classes
   collide — and corrupt-channel recovery hinges on detection.  The
   snapshot trailer uses the same shared implementation. *)
let checksum = Jhdl_logic.Crc16.checksum

type packet = {
  seq : int;
  payload : message;
}

let max_seq = 0xFFFF

(* Frame: 2-byte big-endian sequence number, 2-byte CRC over the
   sequence bytes plus the encoded message, then the message itself. *)
let encode_packet ~seq payload =
  if seq < 0 || seq > max_seq then
    invalid_arg (Printf.sprintf "Protocol.encode_packet: seq %d out of range" seq);
  let body = encode payload in
  let buffer = Buffer.create (String.length body + 4) in
  add_u16 buffer seq;
  add_u16 buffer (checksum (Buffer.contents buffer ^ body));
  Buffer.add_string buffer body;
  Buffer.contents buffer

let packet_size packet = 4 + size packet.payload

let decode_packet s =
  if String.length s < 4 then Error "packet too short"
  else begin
    let u16 i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1] in
    let seq = u16 0 in
    let claimed = u16 2 in
    let body = String.sub s 4 (String.length s - 4) in
    let actual = checksum (String.sub s 0 2 ^ body) in
    if claimed <> actual then
      Error
        (Printf.sprintf "checksum mismatch (claimed %04X, computed %04X)"
           claimed actual)
    else
      match decode body with
      | Ok payload -> Ok { seq; payload }
      | Error reason -> Error reason
  end

let pp fmt message =
  let pair (n, v) = Printf.sprintf "%s=%s" n (Bits.to_string v) in
  match message with
  | Set_inputs pairs ->
    Format.fprintf fmt "SetInputs{%s}" (String.concat "," (List.map pair pairs))
  | Cycle n -> Format.fprintf fmt "Cycle(%d)" n
  | Reset -> Format.fprintf fmt "Reset"
  | Get_outputs names ->
    Format.fprintf fmt "GetOutputs{%s}" (String.concat "," names)
  | Outputs_are pairs ->
    Format.fprintf fmt "Outputs{%s}" (String.concat "," (List.map pair pairs))
  | Ack -> Format.fprintf fmt "Ack"
  | Protocol_error text -> Format.fprintf fmt "Error(%s)" text
  | Hello session_id -> Format.fprintf fmt "Hello(%s)" session_id
  | Resume (session_id, last_acked) ->
    Format.fprintf fmt "Resume(%s,%d)" session_id last_acked
  | Session_state last_applied ->
    Format.fprintf fmt "SessionState(%d)" last_applied
  | Heartbeat -> Format.fprintf fmt "Heartbeat"
  | Checkpoint -> Format.fprintf fmt "Checkpoint"
