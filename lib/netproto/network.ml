module Fault = Jhdl_faults.Fault

type params = {
  one_way_latency_s : float;
  bandwidth_bits_per_s : float;
  per_message_overhead_bytes : int;
}

let loopback =
  { one_way_latency_s = 0.000_000_5;
    bandwidth_bits_per_s = 8.0e9;
    per_message_overhead_bytes = 0 }

let lan =
  { one_way_latency_s = 0.000_25;
    bandwidth_bits_per_s = 100.0e6;
    per_message_overhead_bytes = 66 }

let campus =
  { one_way_latency_s = 0.002;
    bandwidth_bits_per_s = 10.0e6;
    per_message_overhead_bytes = 66 }

let dsl =
  { one_way_latency_s = 0.015;
    bandwidth_bits_per_s = 1.0e6;
    per_message_overhead_bytes = 66 }

let modem =
  { one_way_latency_s = 0.075;
    bandwidth_bits_per_s = 56.0e3;
    per_message_overhead_bytes = 66 }

let with_rtt params seconds = { params with one_way_latency_s = seconds /. 2.0 }
let rtt params = params.one_way_latency_s *. 2.0

type t = {
  net_params : params;
  faults : Fault.config option;
  injector : Fault.injector option;
  mutable clock_s : float;
  mutable message_count : int;
  mutable byte_count : int;
}

let create ?faults net_params =
  { net_params;
    faults;
    injector = Option.map Fault.injector faults;
    clock_s = 0.0;
    message_count = 0;
    byte_count = 0 }

let params t = t.net_params

let send t ~bytes =
  let total = bytes + t.net_params.per_message_overhead_bytes in
  t.clock_s <-
    t.clock_s
    +. t.net_params.one_way_latency_s
    +. (float_of_int total *. 8.0 /. t.net_params.bandwidth_bits_per_s);
  t.message_count <- t.message_count + 1;
  t.byte_count <- t.byte_count + total

type delivery =
  | Delivered
  | Dropped
  | Corrupted
  | Disconnected
  | Crashed

(* a torn-down TCP connection costs a reconnect handshake before the
   sender can try again: SYN, SYN-ACK, ACK — three one-way trips *)
let reconnect_seconds params = 3.0 *. params.one_way_latency_s

let transmit t ~bytes =
  send t ~bytes;
  match t.injector with
  | None -> Delivered
  | Some injector ->
    (match Fault.draw injector with
     | None -> Delivered
     | Some Fault.Drop -> Dropped
     | Some Fault.Corrupt -> Corrupted
     | Some Fault.Duplicate ->
       (* the wire carries the frame twice; the receiver's sequence
          numbers discard the copy, but the traffic and time are real *)
       send t ~bytes;
       Delivered
     | Some Fault.Latency_spike ->
       let spike =
         match t.faults with
         | Some config -> config.Fault.latency_spike_s
         | None -> 0.0
       in
       t.clock_s <- t.clock_s +. spike;
       Delivered
     | Some Fault.Disconnect ->
       t.clock_s <- t.clock_s +. reconnect_seconds t.net_params;
       Disconnected
     | Some Fault.Session_crash ->
       (* the peer process died; the frame vanishes into a dead socket
          and the sender hears only its own timeout *)
       Crashed)

let mangle t payload =
  match t.injector with
  | None -> payload
  | Some injector -> Fault.mangle injector payload

let fault_counts t =
  match t.injector with
  | None -> List.map (fun kind -> (kind, 0)) Fault.all_kinds
  | Some injector -> Fault.tally injector

let faults_injected t =
  match t.injector with
  | None -> 0
  | Some injector -> Fault.total_injected injector

let stall t seconds = t.clock_s <- t.clock_s +. seconds

let elapsed_seconds t = t.clock_s
let messages t = t.message_count
let bytes_transferred t = t.byte_count
let add_compute t seconds = t.clock_s <- t.clock_s +. seconds
