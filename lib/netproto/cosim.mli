(** System co-simulation (Figure 4) and the delivery-architecture cost
    comparison (the paper's speed claim against Web-CAD and JavaCAD).

    A co-simulation connects a user's system simulator to one or more
    black-box endpoints through protocol channels. Every exchange sends
    genuinely-encoded messages through the channel, so the elapsed-time
    and traffic numbers come from real message sizes, and the functional
    results come from the real simulators behind the endpoints.

    Channels may be faulty ({!Jhdl_faults.Fault.config}): exchanges are
    then framed with sequence numbers and checksums
    ({!Protocol.encode_packet}), lost or mangled frames cost a timeout
    plus a capped exponential backoff before retransmission, and the
    endpoint dedupes retransmissions so a retried [Cycle] never clocks
    the simulator twice. With the seed fixed the whole run — faults,
    retries and functional outputs — replays identically.

    {2 Crash-safe sessions}

    Attaching with a {!session_policy} arms the reconnect path: the
    client opens a session ([Hello]), the endpoint checkpoints and
    journals, and when the endpoint process dies mid-run (a
    [Session_crash] fault, or a scripted {!crash_at}) the client
    restarts it from its checkpoint + journal, re-handshakes with
    [Resume], and retransmits the interrupted request under its original
    sequence number — so the endpoint's dedup cache replays rather than
    re-executes, and the resumed run's outputs are bit-identical to an
    unfaulted one. *)

(** {1 Retry policy} *)

type retry_policy = {
  max_attempts : int;  (** total tries per exchange, including the first *)
  base_backoff_s : float;  (** wait before the first retransmission *)
  backoff_cap_s : float;  (** backoff doubles per retry up to this cap *)
  exchange_timeout_s : float;
      (** simulated seconds the sender waits before declaring a frame
          lost; charged to the channel clock per failed attempt *)
}

(** [default_retry] — 6 attempts, 50 ms base backoff capped at 2 s, 1 s
    timeout. Survives heavy loss on consumer links. *)
val default_retry : retry_policy

(** [no_retry] — a single attempt: the first injected fault on an
    exchange fails it. The Web-CAD / JavaCAD baselines behave this way
    in the under-loss comparison. *)
val no_retry : retry_policy

(** Raised when an exchange exhausts [max_attempts] (and, with a session
    armed, its resume budget); the message names the box and sequence
    number. This is the "clean failure" of the fault-matrix tests — the
    session state is still consistent. *)
exception Exchange_failed of string

(** {1 Session policy} *)

type session_policy = {
  resume_attempts : int;
      (** crash-recovery budget per exchange: how many restart + resume
          rounds before giving up with {!Exchange_failed} *)
  checkpoint_every : int;
      (** request an endpoint checkpoint after this many data exchanges;
          0 disables client-driven checkpoints (the endpoint still
          auto-checkpoints when its journal cap overflows) *)
  heartbeat_every : int;
      (** send a liveness probe after this many data exchanges;
          0 disables heartbeats *)
}

(** [default_session_policy] — 3 resume attempts, checkpoint every 16
    data exchanges, no heartbeats. *)
val default_session_policy : session_policy

type t

val create : unit -> t

(** [attach t ?faults ?retry ?session ?metrics ?tracer endpoint params]
    — connect a black box over a channel with the given network
    parameters. [faults] arms the seeded injector on that channel;
    [retry] (default {!default_retry}) governs recovery. [session] arms
    the crash-safe session layer: a [Hello] handshake runs immediately
    (the endpoint checkpoints and starts journaling). Endpoint names
    must be unique.

    [breaker] guards the link's exchanges: exhausted recovery counts as
    a failure, a completed exchange as a success. Because this channel's
    clock only advances through traffic, an {e open} breaker does not
    fast-fail — the client stalls (on the simulated clock) until the
    probe is due and proceeds as the probe, so the circuit always gets
    its chance to close again.

    With a live [metrics] registry the link registers, under
    [<name>.] prefixes: an [exchanges_total] / [resume_handshakes_total]
    counter pair, an [rtt_us] round-trip histogram fed from the
    channel's {e simulated} clock (so seeded runs are deterministic),
    and probes over the wire tallies ([messages_total], [bytes_total],
    [retries_total], [retransmitted_bytes_total],
    [faults_injected_total], [faults_<kind>]). [tracer] records an
    enter/exit span per exchange, labeled with the message kind and
    carrying the sequence number. *)
val attach :
  t ->
  ?faults:Jhdl_faults.Fault.config ->
  ?retry:retry_policy ->
  ?session:session_policy ->
  ?breaker:Jhdl_resilience.Breaker.t ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  ?tracer:Jhdl_metrics.Metrics.tracer ->
  Endpoint.t ->
  Network.params ->
  unit

(** [crash_at t ~box ~exchange:n] — scripted, deterministic crash: the
    endpoint behind [box] dies as its [n]th subsequent exchange starts
    (counting handshakes and maintenance traffic). One-shot. Raises
    [Invalid_argument] when [n < 1] or the box is unknown. *)
val crash_at : t -> box:string -> exchange:int -> unit

(** [set_inputs t ~box pairs] — drive input ports of one black box. *)
val set_inputs : t -> box:string -> (string * Jhdl_logic.Bits.t) list -> unit

(** [cycle t] — clock every attached black box once (inputs are expected
    to have been driven first). *)
val cycle : t -> unit

(** [reset t] — reset every black box. *)
val reset : t -> unit

(** [get_output t ~box port] — read one output port. Raises
    [Invalid_argument] on protocol errors or unknown boxes. *)
val get_output : t -> box:string -> string -> Jhdl_logic.Bits.t

(** Accumulated simulated wall time across all channels, plus compute. *)
val elapsed_seconds : t -> float

val total_messages : t -> int
val total_bytes : t -> int

(** {1 Recovery statistics} *)

val total_retries : t -> int

(** [total_retransmitted_bytes t] — request bytes sent again after a
    timeout (the recovery traffic a lossy link extracts). *)
val total_retransmitted_bytes : t -> int

val total_faults_injected : t -> int

(** [fault_counts t] — injected faults by kind across all channels. *)
val fault_counts : t -> (Jhdl_faults.Fault.kind * int) list

(** [total_session_crashes t] — endpoint process deaths (injected
    [Session_crash] faults plus scripted {!crash_at} ones). *)
val total_session_crashes : t -> int

(** [total_resumes t] — restart + [Resume] rounds performed. *)
val total_resumes : t -> int

(** [total_checkpoints t] — endpoint checkpoints taken (the [Hello]
    one, client-requested ones, and journal-overflow ones). *)
val total_checkpoints : t -> int

(** [total_replayed_messages t] — journal entries re-executed by
    endpoint restarts. *)
val total_replayed_messages : t -> int

(** {1 Delivery-architecture comparison (claim C1)} *)

type architecture =
  | Local_applet
      (** the paper's approach: the model was downloaded once and runs in
          the user's browser; events cross a loopback *)
  | Webcad
      (** Fin & Fummi (DAC 2000): the model stays at the vendor server;
          every event crosses the network *)
  | Javacad
      (** Dalpasso, Bogliolo & Benini (DAC 1999): remote method
          invocation per event, with RMI marshalling overhead *)

val architecture_name : architecture -> string

type session_cost = {
  wall_seconds : float;
  network_seconds : float;
  compute_seconds : float;
  message_count : int;
  byte_count : int;
  retry_count : int;  (** retransmissions performed *)
  retransmitted_bytes : int;  (** request bytes re-sent *)
  faults_injected : int;  (** what the channel actually did to us *)
}

(** [simulation_cost ~arch ~network ~endpoint ~cycles ~drive ~observe] —
    run [cycles] clock cycles against [endpoint] under the given
    architecture over [network]: each cycle drives [drive cycle_index]
    into the box, clocks it and reads [observe]. Returns the accumulated
    cost; functional outputs are written to [on_outputs] when given.
    [Local_applet] replaces the channel with a loopback (the network is
    only traversed for the initial download, which is priced separately
    in the benches via {!Jhdl_bundle.Download}) and ignores [faults] —
    method calls do not drop. [faults]/[retry] arm the remote
    architectures' channels; may raise {!Exchange_failed} when recovery
    is exhausted. *)
val simulation_cost :
  arch:architecture ->
  network:Network.params ->
  endpoint:Endpoint.t ->
  cycles:int ->
  drive:(int -> (string * Jhdl_logic.Bits.t) list) ->
  observe:string list ->
  ?faults:Jhdl_faults.Fault.config ->
  ?retry:retry_policy ->
  ?on_outputs:(int -> (string * Jhdl_logic.Bits.t) list -> unit) ->
  unit ->
  session_cost
