(** Simulation-event wire protocol.

    "Simulation events are exchanged over network sockets and a custom
    communication protocol" (Section 4.2). Messages carry port/value
    pairs as four-valued bit strings; the encoding is a real byte format
    (length-prefixed fields), so channel accounting uses genuine message
    sizes and the decoder round-trips everything the encoder emits. *)

type message =
  | Set_inputs of (string * Jhdl_logic.Bits.t) list
  | Cycle of int
  | Reset
  | Get_outputs of string list
  | Outputs_are of (string * Jhdl_logic.Bits.t) list
  | Ack
  | Protocol_error of string
  | Hello of string
      (** open a crash-safe session under this id; the endpoint takes an
          initial checkpoint and starts journaling applied messages *)
  | Resume of string * int
      (** [(session_id, last_acked)] — re-handshake after a crash or
          exhausted retries; [last_acked] is the highest sequence number
          the client saw acknowledged, [-1] for none *)
  | Session_state of int
      (** reply to [Resume]: the endpoint's last applied sequence
          number after checkpoint restore and journal replay, [-1] for
          none *)
  | Heartbeat  (** liveness probe; answered with [Ack] *)
  | Checkpoint
      (** ask the endpoint to checkpoint now and truncate its journal *)

val encode : message -> string

(** [decode s] — [Error _] on malformed input. *)
val decode : string -> (message, string) result

(** [size message] — encoded byte length. *)
val size : message -> int

val pp : Format.formatter -> message -> unit

(** {1 Framed packets}

    Over a faulty channel ({!Fault.config} on the {!Network}), bare
    messages are not enough: a lost reply makes the sender retransmit,
    and the receiver must recognize the duplicate rather than clock the
    simulator twice; a flipped byte must be detected rather than decoded
    into a wrong value. Packets add a 16-bit sequence number and a
    CRC-16/CCITT checksum over the whole frame (4 bytes total). *)

type packet = {
  seq : int;  (** 0..65535, assigned per exchange by the sender *)
  payload : message;
}

val max_seq : int

(** [checksum s] — CRC-16/CCITT-FALSE over [s]; detects all single-byte
    corruptions. *)
val checksum : string -> int

(** [encode_packet ~seq payload] — frame one message. Raises
    [Invalid_argument] when [seq] is out of range. *)
val encode_packet : seq:int -> message -> string

(** [decode_packet s] — [Error _] on short frames, checksum mismatches
    (corruption) or malformed payloads. *)
val decode_packet : string -> (packet, string) result

(** [packet_size packet] — framed byte length: [4 + size payload]. *)
val packet_size : packet -> int
