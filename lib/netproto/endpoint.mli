(** Black-box simulation endpoint.

    The protected side of Figure 4: wraps a live simulator (typically one
    inside a served applet) behind the wire protocol. The peer sees only
    port names and simulation values — no structure, no netlist —
    exactly the visibility contract of the black-box applet (Section
    4.2). *)

type t

(** [of_simulator ~name sim] — expose [sim]'s top-level ports. The
    per-cycle compute cost the endpoint charges to a channel is derived
    from the design's primitive count. *)
val of_simulator : name:string -> Jhdl_sim.Simulator.t -> t

(** [of_applet ~name applet] — wrap a built applet's simulator; [None]
    when the applet has no simulator linked or nothing built. *)
val of_applet : name:string -> Jhdl_applet.Applet.t -> t option

val name : t -> string

(** [compute_seconds_per_cycle t] — modeled evaluation cost of one clock
    cycle (primitive count x per-primitive JVM evaluation cost). *)
val compute_seconds_per_cycle : t -> float

(** [handle t message] — process one protocol message and produce the
    reply ([Ack] for writes, [Outputs_are] for reads, [Protocol_error]
    for unknown ports). *)
val handle : t -> Protocol.message -> Protocol.message

(** [handle_packet t packet] — [handle] with at-most-once semantics: a
    packet repeating the previous sequence number (a duplicate, or a
    retransmission after the reply was lost) replays the cached reply
    without re-executing — a retried [Cycle] must not clock the
    simulator twice. The reply carries the request's sequence number. *)
val handle_packet : t -> Protocol.packet -> Protocol.packet
