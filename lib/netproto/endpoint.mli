(** Black-box simulation endpoint.

    The protected side of Figure 4: wraps a live simulator (typically one
    inside a served applet) behind the wire protocol. The peer sees only
    port names and simulation values — no structure, no netlist —
    exactly the visibility contract of the black-box applet (Section
    4.2).

    {2 Crash safety}

    A [Hello] opens a session: the endpoint takes a checkpoint
    ({!Jhdl_sim.Simulator.snapshot}) and starts a bounded write-ahead
    journal of every applied data message. {!crash} models the applet
    process dying — volatile state (the live simulator, the reply cache)
    is lost; {!restart} restores the checkpoint and replays the journal,
    reconstructing the exact pre-crash state including the cached reply
    a resuming client is about to ask for again. The journal is
    truncated by [Checkpoint] messages and, automatically, when it
    outgrows the cap. *)

type t

(** [of_simulator ?journal_cap ?metrics ~name sim] — expose [sim]'s
    top-level ports. The per-cycle compute cost the endpoint charges to
    a channel is derived from the design's primitive count.
    [journal_cap] (default 64) bounds the write-ahead journal: one more
    applied message forces an automatic checkpoint. Raises
    [Invalid_argument] when it is not positive.

    With a live [metrics] registry the endpoint registers, under
    [<name>.] prefixes: [checkpoint_bytes] and [journal_message_bytes]
    histograms plus [crashes_total], [heartbeats_total],
    [journal_entries], [checkpoints_total] and [replayed_messages_total]
    probes. *)
val of_simulator :
  ?journal_cap:int ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  name:string ->
  Jhdl_sim.Simulator.t ->
  t

(** [of_applet ~name applet] — wrap a built applet's simulator; [None]
    when the applet has no simulator linked or nothing built. *)
val of_applet :
  ?journal_cap:int ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  name:string ->
  Jhdl_applet.Applet.t ->
  t option

val name : t -> string

(** [compute_seconds_per_cycle t] — modeled evaluation cost of one clock
    cycle (primitive count x per-primitive JVM evaluation cost). *)
val compute_seconds_per_cycle : t -> float

(** [handle t message] — process one protocol message and produce the
    reply ([Ack] for writes, [Outputs_are] for reads, [Protocol_error]
    for unknown ports). Session messages: [Hello] opens a session
    (checkpointing now), [Resume] answers [Session_state] with the last
    applied sequence number, [Heartbeat] acks, [Checkpoint] snapshots
    and truncates the journal. *)
val handle : t -> Protocol.message -> Protocol.message

(** [handle_packet t packet] — [handle] with at-most-once semantics: a
    packet repeating the previous sequence number (a duplicate, or a
    retransmission after the reply was lost) replays the cached reply
    without re-executing — a retried [Cycle] must not clock the
    simulator twice. A sequence number strictly {e behind} the last
    applied one (mod 2{^16}, half-window) is a late duplicate from an
    earlier exchange — say, from before a [Reset] — and is refused with
    a [Protocol_error] rather than re-executed. Session-control
    messages are idempotent and bypass the dedup cache. The reply
    carries the request's sequence number.

    Raises [Invalid_argument] when the endpoint has {!crash}ed — a dead
    process answers nothing (transport layers check {!is_alive}). *)
val handle_packet : t -> Protocol.packet -> Protocol.packet

(** {1 Crash / restart} *)

val is_alive : t -> bool

(** [crash t] — the endpoint process dies: volatile state (live
    simulator values, the reply cache) is lost. Durable session state
    (checkpoint + journal) survives. Idempotent on a dead endpoint. *)
val crash : t -> unit

(** [restart t] — bring a crashed endpoint back: restore the session
    checkpoint into the simulator and replay the journal. Returns
    [Ok replayed_count]; [Ok 0] if the endpoint was alive. [Error _]
    when no session was ever opened (nothing durable to restore from)
    or the checkpoint fails to restore. *)
val restart : t -> (int, string) result

(** {1 Checkpoint access}

    Direct snapshot/restore of the wrapped simulator, for session
    managers and CLI checkpoint files. *)

val snapshot : t -> (string, string) result
val restore : t -> string -> (unit, string) result

(** {1 Introspection} *)

val session_id : t -> string option

(** [journal_length t] — applied messages since the last checkpoint. *)
val journal_length : t -> int

(** [checkpoints_taken t] — checkpoints in the current session,
    including the [Hello] one and automatic overflow checkpoints. *)
val checkpoints_taken : t -> int

(** [replayed_messages t] — journal entries re-executed by {!restart}s. *)
val replayed_messages : t -> int

val crash_count : t -> int
val heartbeats_received : t -> int
