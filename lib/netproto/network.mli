(** Simulated network channel with a time budget.

    Carries the wire-level cost model for Figure 4 (black-box
    co-simulation over sockets) and for the Web-CAD / JavaCAD baselines:
    each send pays one-way latency plus serialized payload over
    bandwidth; the channel accumulates simulated seconds and traffic
    counters. Deterministic — no wall clock involved, and when a
    {!Jhdl_faults.Fault.config} is attached every injected fault is a
    pure function of the seed. *)

type params = {
  one_way_latency_s : float;
  bandwidth_bits_per_s : float;
  per_message_overhead_bytes : int;
      (** framing/headers (TCP+protocol, or RMI serialization) *)
}

(** In-process "loopback": the local applet case — a method call, not a
    socket. *)
val loopback : params

(** [lan], [campus], [dsl], [modem] presets; [with_rtt params seconds]
    overrides the round-trip time (both directions split evenly). *)
val lan : params

val campus : params
val dsl : params
val modem : params
val with_rtt : params -> float -> params
val rtt : params -> float

type t

(** [create ?faults params] — a fresh channel; [faults] arms the seeded
    injector consulted by {!transmit} (absent = perfect channel). *)
val create : ?faults:Jhdl_faults.Fault.config -> params -> t

val params : t -> params

(** [send t ~bytes] — account one message of [bytes] payload,
    unconditionally delivered (the pre-fault accounting primitive; kept
    for cost models that handle loss themselves). *)
val send : t -> bytes:int -> unit

(** What the channel did to one transmitted frame. *)
type delivery =
  | Delivered  (** arrived intact (possibly duplicated or delayed) *)
  | Dropped  (** lost in flight; the sender sees only silence *)
  | Corrupted  (** arrived with mangled bytes; checksums must catch it *)
  | Disconnected
      (** connection torn down mid-flight; reconnect already charged *)
  | Crashed
      (** the peer process died mid-exchange ([Fault.Session_crash]):
          the frame is gone and the peer's volatile state with it; only
          a session layer with checkpoints can resume *)

(** [transmit t ~bytes] — account one frame and roll the fault dice.
    Duplicates account a second copy of the frame; latency spikes and
    reconnects charge extra seconds. Without a fault config this is
    [send] returning [Delivered]. *)
val transmit : t -> bytes:int -> delivery

(** [mangle t payload] — the wire damage behind [Corrupted]: flip one
    seeded-random byte (identity on fault-free channels). *)
val mangle : t -> string -> string

(** [fault_counts t] — injected faults by kind, zero entries included. *)
val fault_counts : t -> (Jhdl_faults.Fault.kind * int) list

val faults_injected : t -> int

(** [stall t seconds] — charge waiting time (retry backoff, timeout
    expiry) to the channel clock. *)
val stall : t -> float -> unit

(** [elapsed_seconds t], [messages t], [bytes_transferred t] — counters. *)
val elapsed_seconds : t -> float

val messages : t -> int
val bytes_transferred : t -> int

(** [add_compute t seconds] — charge non-network time (model evaluation)
    to the same clock. *)
val add_compute : t -> float -> unit
